// anonsvc — the live anonymous-service daemon and its command-line client.
//
//   anonsvc serve [--n N] [--socket udp|tcp] [--period-ms MS] [--seed S]
//                 [--loss P] [--jitter-ms MS] [--watchdog ROUNDS]
//                 [--duration-s S]
//       Boots an N-node loopback cluster (one event-loop thread per node)
//       serving consensus decisions, weak-set add/get and the ABD register
//       to concurrent clients.  Prints one "client_port <i> <port>" line
//       per node on stdout, then runs until SIGINT/SIGTERM (or the
//       optional duration elapses).
//
//   anonsvc call --port P <op> [value] [--timeout-ms MS]
//       One-shot client: op is status | decision | ws-add V | ws-get |
//       reg-read | reg-write V.  Prints the response; exit 0 on kOk,
//       4 on a node-reported timeout (the watchdog's undecided face),
//       1 on any other failure.
//
// The daemon is the deployment face of the same stack the scenario layer
// drives via `anonsim run --transport live`; see DESIGN.md (anonsvc
// service) for the frame format and the synchrony-detection contract.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace {

using namespace anon;

std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  anonsvc serve [--n N] [--socket udp|tcp] [--period-ms MS]\n"
        "                [--seed S] [--loss P] [--jitter-ms MS]\n"
        "                [--watchdog ROUNDS] [--duration-s S]\n"
        "  anonsvc call --port P (status | decision | ws-add V | ws-get |\n"
        "                         reg-read | reg-write V) [--timeout-ms MS]\n";
  return code;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    return false;
  *out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

int cmd_serve(const std::vector<std::string>& args) {
  LiveClusterOptions opt;
  std::uint64_t duration_s = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (i + 1 >= args.size()) {
      std::cerr << "anonsvc: " << a << " needs a value\n";
      return usage(std::cerr, 2);
    }
    const std::string v = args[++i];
    std::uint64_t u = 0;
    if (a == "--n" && parse_u64(v, &u) && u >= 1) {
      opt.n = static_cast<std::size_t>(u);
    } else if (a == "--socket" && (v == "udp" || v == "tcp")) {
      opt.socket = v == "udp" ? SvcSocketKind::kUdp : SvcSocketKind::kTcp;
    } else if (a == "--period-ms" && parse_u64(v, &u) && u >= 1) {
      opt.period = std::chrono::milliseconds(u);
    } else if (a == "--seed" && parse_u64(v, &u)) {
      opt.seed = u;
    } else if (a == "--loss") {
      char* rest = nullptr;
      const double d = std::strtod(v.c_str(), &rest);
      if (v.empty() || *rest != '\0' || d < 0 || d > 1) {
        std::cerr << "anonsvc: --loss needs a probability in [0, 1]\n";
        return 2;
      }
      opt.loss = d;
    } else if (a == "--jitter-ms" && parse_u64(v, &u)) {
      opt.max_jitter = std::chrono::milliseconds(u);
    } else if (a == "--watchdog" && parse_u64(v, &u)) {
      opt.watchdog_rounds = static_cast<Round>(u);
    } else if (a == "--duration-s" && parse_u64(v, &u)) {
      duration_s = u;
    } else {
      std::cerr << "anonsvc: bad argument " << a << " " << v << "\n";
      return usage(std::cerr, 2);
    }
  }

  LiveCluster cluster(opt);
  if (!cluster.start()) {
    std::cerr << "anonsvc: cluster failed to start: " << cluster.error()
              << "\n";
    return 1;
  }
  for (std::size_t i = 0; i < cluster.n(); ++i)
    std::cout << "client_port " << i << " " << cluster.client_port(i) << "\n";
  std::cout.flush();

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    if (duration_s != 0 && std::chrono::steady_clock::now() - started >=
                               std::chrono::seconds(duration_s))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  cluster.stop_all();
  cluster.join();
  return 0;
}

void print_result(const SvcClient::Result& r) {
  std::cout << "status " << static_cast<int>(r.status) << " info " << r.info;
  std::cout << " values";
  for (const Value& v : r.values) std::cout << " " << v.to_string();
  std::cout << "\n";
}

int cmd_call(const std::vector<std::string>& args) {
  std::uint64_t port = 0;
  std::uint64_t timeout_ms = 10000;
  std::string op;
  std::int64_t value = 0;
  bool has_value = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--port" || a == "--timeout-ms") {
      if (i + 1 >= args.size() ||
          !parse_u64(args[i + 1], a == "--port" ? &port : &timeout_ms)) {
        std::cerr << "anonsvc: " << a << " needs a non-negative integer\n";
        return 2;
      }
      ++i;
    } else if (op.empty()) {
      op = a;
      if (op == "ws-add" || op == "reg-write") {
        if (i + 1 >= args.size()) {
          std::cerr << "anonsvc: " << op << " needs a value\n";
          return 2;
        }
        value = std::strtoll(args[++i].c_str(), nullptr, 10);
        has_value = true;
      }
    } else {
      std::cerr << "anonsvc: bad argument " << a << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (port == 0 || op.empty()) {
    std::cerr << "anonsvc: call needs --port and an operation\n";
    return usage(std::cerr, 2);
  }
  (void)has_value;

  SvcClient client;
  if (!client.connect(static_cast<std::uint16_t>(port))) {
    std::cerr << "anonsvc: connect failed: " << client.error() << "\n";
    return 1;
  }
  const auto timeout = std::chrono::milliseconds(timeout_ms);
  SvcClient::Result r;
  if (op == "status")
    r = client.status(timeout);
  else if (op == "decision")
    r = client.decision(timeout);
  else if (op == "ws-add")
    r = client.ws_add(value, timeout);
  else if (op == "ws-get")
    r = client.ws_get(timeout);
  else if (op == "reg-read")
    r = client.reg_read(timeout);
  else if (op == "reg-write")
    r = client.reg_write(value, timeout);
  else {
    std::cerr << "anonsvc: unknown operation \"" << op << "\"\n";
    return usage(std::cerr, 2);
  }
  if (!r.transport_ok) {
    std::cerr << "anonsvc: " << client.error() << "\n";
    return 1;
  }
  print_result(r);
  if (r.status == SvcStatus::kOk) return 0;
  return r.status == SvcStatus::kTimeout ? 4 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "call") return cmd_call(args);
  if (cmd == "--help" || cmd == "-h" || cmd == "help")
    return usage(std::cout, 0);
  std::cerr << "anonsvc: unknown command \"" << cmd << "\"\n";
  return usage(std::cerr, 2);
}
