// anonsim — the one scenario driver.
//
//   anonsim list                         families + named presets
//   anonsim describe <preset>            canonical spec JSON to stdout
//   anonsim run --preset e1 [--threads N] [--json out.json] [--no-timing]
//   anonsim run --spec file.json ...     same, from a spec file
//   anonsim schema --preset e1 [...]     sorted report key paths (CI golden)
//
// Multi-seed specs shard across worker threads (--threads, default: one
// per hardware thread); the report is identical at any thread count.
// Consensus, weakset and emulation specs additionally parallelize inside
// each run on either backend (--engine-threads, default: the spec's own
// value; 0 = one per hardware thread) — also byte-identical at any
// setting.  --backend switches those families between the expanded and
// cohort engines (cohort turns the trace surfaces off — validate_env,
// certify, record_trace — since it never materializes per-process
// traces); `anonsim describe` notes each preset's backend support.
// Fault injection (env/faults.hpp) can be layered onto any consensus spec
// from the command line: `--faults loss_prob=0.1,reorder_prob=0.2` patches
// scalar FaultParams fields after the spec loads (list-valued fields —
// omission_senders, churn — need a spec file), and `--watchdog N` arms the
// no-progress watchdog so fault-starved runs end `undecided` instead of
// spinning to max_rounds.
// `--transport sim|live` switches a spec between the simulators and the
// anonsvc loopback service (real UDP/TCP sockets, one event-loop thread
// per node); only the consensus, weakset and abd families are served live
// — requesting live for any other family is a usage error (exit 2).
// `anonsim describe` notes each preset's transport support next to its
// backend support.
// Exit codes: 0 success, 1 run failed to write output, 2 usage error,
// 3 invalid spec (field-path diagnostics on stderr), 4 at least one cell
// ended undecided and --fail-undecided was given.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"

namespace {

using namespace anon;

int usage(std::ostream& os, int code) {
  os << "usage:\n"
        "  anonsim list\n"
        "  anonsim describe <preset>\n"
        "  anonsim run  (--preset NAME | --spec FILE) [--threads N]\n"
        "               [--engine-threads N] [--backend expanded|cohort]\n"
        "               [--transport sim|live] [--json OUT] [--no-timing]\n"
        "               [--quiet] [--faults K=V[,K=V...]] [--watchdog N]\n"
        "               [--fail-undecided]\n"
        "  anonsim schema (--preset NAME | --spec FILE) [--threads N]\n";
  return code;
}

int cmd_list() {
  const auto& reg = ScenarioRegistry::instance();
  std::cout << "families:\n";
  for (ScenarioFamily f : all_scenario_families())
    std::cout << "  " << to_string(f)
              << (reg.has_family(f) ? "" : "  (no runner!)") << "\n";
  std::cout << "\npresets:\n";
  std::size_t width = 0;
  for (const auto& p : reg.presets()) width = std::max(width, p.name.size());
  for (const auto& p : reg.presets()) {
    std::cout << "  " << p.name << std::string(width - p.name.size() + 2, ' ')
              << "[" << to_string(p.spec.family) << "] " << p.description
              << "\n";
  }
  return 0;
}

// Which engines `--backend` can switch a family between.  The cohort
// engines execute state-equivalence classes and record no per-process
// traces, so the trace-consuming switches go dark with them.
const char* family_backend_support(ScenarioFamily f) {
  switch (f) {
    case ScenarioFamily::kConsensus:
      return "expanded, cohort (cohort disables trace surfaces)";
    case ScenarioFamily::kWeakset:
      return "expanded, cohort (cohort disables validate_env)";
    case ScenarioFamily::kEmulation:
      return "expanded, cohort (cohort needs engine \"interned\" and "
             "disables certify)";
    default:
      return "expanded only";
  }
}

// Which transports can execute a family: every family runs on the
// simulators; the anonsvc live service hosts the paper's three objects.
const char* family_transport_support(ScenarioFamily f) {
  return family_live_supported(f) ? "sim, live (anonsvc loopback cluster)"
                                  : "sim only";
}

int cmd_describe(const std::string& name) {
  const ScenarioPreset* p = ScenarioRegistry::instance().find_preset(name);
  if (p == nullptr) {
    std::cerr << "anonsim: unknown preset \"" << name
              << "\" (try `anonsim list`)\n";
    return 2;
  }
  // The canonical JSON is the stdout contract (golden files redirect it);
  // the advisory note rides on stderr.
  std::cout << scenario_spec_to_json(p->spec);
  std::cerr << "backends: " << family_backend_support(p->spec.family) << "\n";
  std::cerr << "transports: " << family_transport_support(p->spec.family)
            << "\n";
  return 0;
}

struct RunArgs {
  std::string preset;
  std::string spec_file;
  std::string json_out;
  std::size_t threads = 0;
  bool engine_threads_set = false;   // --engine-threads given on the cmdline
  std::size_t engine_threads = 1;    // override value when set
  std::string backend;               // --backend expanded|cohort override
  std::string transport;             // --transport sim|live override
  std::string faults;                // --faults K=V,... override text
  bool faults_set = false;
  bool watchdog_set = false;
  Round watchdog = 0;                // --watchdog override value when set
  bool fail_undecided = false;
  bool no_timing = false;
  bool quiet = false;
};

// Patch scalar FaultParams fields from "key=value,key=value" text.  Keys
// match the spec JSON (env.faults.*); list-valued fields need a spec file.
bool apply_fault_overrides(const std::string& text, FaultParams* f,
                           std::string* error) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string pair = text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "expected key=value, got \"" + pair + "\"";
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    char* rest = nullptr;
    if (key == "loss_prob" || key == "dup_prob" || key == "reorder_prob") {
      const double d = std::strtod(val.c_str(), &rest);
      if (val.empty() || *rest != '\0') {
        *error = key + " needs a number, got \"" + val + "\"";
        return false;
      }
      (key == "loss_prob" ? f->loss_prob
                          : key == "dup_prob" ? f->dup_prob
                                              : f->reorder_prob) = d;
    } else if (key == "seed" || key == "dup_extra_delay" ||
               key == "max_extra_delay") {
      const std::uint64_t u = std::strtoull(val.c_str(), &rest, 10);
      if (val.empty() || *rest != '\0') {
        *error = key + " needs a non-negative integer, got \"" + val + "\"";
        return false;
      }
      if (key == "seed")
        f->seed = u;
      else if (key == "dup_extra_delay")
        f->dup_extra_delay = static_cast<Round>(u);
      else
        f->max_extra_delay = static_cast<Round>(u);
    } else if (key == "exempt_source") {
      if (val == "true" || val == "1")
        f->exempt_source = true;
      else if (val == "false" || val == "0")
        f->exempt_source = false;
      else {
        *error = "exempt_source needs true/false, got \"" + val + "\"";
        return false;
      }
    } else {
      *error = "unknown fault field \"" + key +
               "\" (scalar fields: seed, loss_prob, dup_prob, "
               "dup_extra_delay, reorder_prob, max_extra_delay, "
               "exempt_source)";
      return false;
    }
  }
  return true;
}

bool parse_run_args(const std::vector<std::string>& args, RunArgs* out,
                    std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--preset") {
      const std::string* v = value("--preset");
      if (v == nullptr) return false;
      out->preset = *v;
    } else if (a == "--spec") {
      const std::string* v = value("--spec");
      if (v == nullptr) return false;
      out->spec_file = *v;
    } else if (a == "--json") {
      const std::string* v = value("--json");
      if (v == nullptr) return false;
      out->json_out = *v;
    } else if (a == "--threads") {
      const std::string* v = value("--threads");
      if (v == nullptr) return false;
      if (v->empty() ||
          v->find_first_not_of("0123456789") != std::string::npos) {
        *error = "--threads needs a non-negative integer, got \"" + *v + "\"";
        return false;
      }
      out->threads = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                            nullptr, 10));
    } else if (a == "--engine-threads") {
      const std::string* v = value("--engine-threads");
      if (v == nullptr) return false;
      if (v->empty() ||
          v->find_first_not_of("0123456789") != std::string::npos) {
        *error =
            "--engine-threads needs a non-negative integer, got \"" + *v + "\"";
        return false;
      }
      out->engine_threads_set = true;
      out->engine_threads = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                                   nullptr, 10));
    } else if (a == "--backend") {
      const std::string* v = value("--backend");
      if (v == nullptr) return false;
      if (*v != "expanded" && *v != "cohort") {
        *error = "--backend needs expanded or cohort, got \"" + *v + "\"";
        return false;
      }
      out->backend = *v;
    } else if (a == "--transport") {
      const std::string* v = value("--transport");
      if (v == nullptr) return false;
      if (*v != "sim" && *v != "live") {
        *error = "--transport needs sim or live, got \"" + *v + "\"";
        return false;
      }
      out->transport = *v;
    } else if (a == "--faults") {
      const std::string* v = value("--faults");
      if (v == nullptr) return false;
      out->faults = *v;
      out->faults_set = true;
    } else if (a == "--watchdog") {
      const std::string* v = value("--watchdog");
      if (v == nullptr) return false;
      if (v->empty() ||
          v->find_first_not_of("0123456789") != std::string::npos) {
        *error = "--watchdog needs a non-negative integer, got \"" + *v + "\"";
        return false;
      }
      out->watchdog_set = true;
      out->watchdog = static_cast<Round>(std::strtoull(v->c_str(), nullptr,
                                                       10));
    } else if (a == "--fail-undecided") {
      out->fail_undecided = true;
    } else if (a == "--no-timing") {
      out->no_timing = true;
    } else if (a == "--quiet") {
      out->quiet = true;
    } else {
      *error = "unknown argument " + a;
      return false;
    }
  }
  if (out->preset.empty() == out->spec_file.empty()) {
    *error = "exactly one of --preset / --spec is required";
    return false;
  }
  return true;
}

// 0 on success with *spec filled; 2/3 exit code otherwise.
int load_spec(const RunArgs& args, ScenarioSpec* spec) {
  if (!args.preset.empty()) {
    const ScenarioPreset* p =
        ScenarioRegistry::instance().find_preset(args.preset);
    if (p == nullptr) {
      std::cerr << "anonsim: unknown preset \"" << args.preset
                << "\" (try `anonsim list`)\n";
      return 2;
    }
    *spec = p->spec;
    return 0;
  }
  std::ifstream f(args.spec_file);
  if (!f) {
    std::cerr << "anonsim: cannot open " << args.spec_file << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  auto decoded = parse_scenario_spec(buf.str());
  if (!decoded.ok()) {
    std::cerr << "anonsim: " << args.spec_file << " is not a valid spec:\n";
    for (const auto& e : decoded.errors)
      std::cerr << "  " << e.to_string() << "\n";
    return 3;
  }
  *spec = std::move(*decoded.spec);
  return 0;
}

int cmd_run(const RunArgs& args, bool schema_only) {
  ScenarioSpec spec;
  if (int rc = load_spec(args, &spec); rc != 0) return rc;

  const bool has_backend = spec.family == ScenarioFamily::kConsensus ||
                           spec.family == ScenarioFamily::kWeakset ||
                           spec.family == ScenarioFamily::kEmulation;
  if (args.engine_threads_set) {
    if (!has_backend) {
      std::cerr << "anonsim: --engine-threads applies to the consensus, "
                   "weakset and emulation families (intra-run sharding), "
                   "not \""
                << to_string(spec.family) << "\"\n";
      return 2;
    }
    switch (spec.family) {
      case ScenarioFamily::kConsensus:
        spec.consensus.engine_threads = args.engine_threads;
        break;
      case ScenarioFamily::kWeakset:
        spec.weakset.engine_threads = args.engine_threads;
        break;
      default:
        spec.emulation.engine_threads = args.engine_threads;
        break;
    }
  }
  if (!args.backend.empty()) {
    if (!has_backend) {
      std::cerr << "anonsim: --backend applies to the consensus, weakset "
                   "and emulation families, not \""
                << to_string(spec.family) << "\"\n";
      return 2;
    }
    const bool cohort = args.backend == "cohort";
    switch (spec.family) {
      case ScenarioFamily::kConsensus:
        // The cohort engines never materialize per-process traces, so the
        // trace surfaces go dark with them (same contract as spec
        // validation enforces).
        spec.consensus.backend =
            cohort ? ConsensusBackend::kCohort : ConsensusBackend::kExpanded;
        if (cohort) {
          spec.consensus.record_trace = false;
          spec.consensus.record_deliveries = false;
          spec.consensus.validate_env = false;
        }
        break;
      case ScenarioFamily::kWeakset:
        spec.weakset.backend = cohort ? WeaksetSpecSection::Backend::kCohort
                                      : WeaksetSpecSection::Backend::kExpanded;
        if (cohort) spec.weakset.validate_env = false;
        break;
      default:
        spec.emulation.backend = cohort
                                     ? EmulationSpecSection::Backend::kCohort
                                     : EmulationSpecSection::Backend::kExpanded;
        if (cohort) spec.emulation.certify = false;
        break;
    }
  }
  if (!args.transport.empty()) {
    spec.transport = args.transport == "live" ? TransportKind::kLive
                                              : TransportKind::kSim;
    if (spec.transport == TransportKind::kSim) spec.live = LiveSpecSection{};
  }
  // Unserved family + live is a usage error (exit 2), whether the request
  // came from --transport or the spec file itself.
  if (spec.transport == TransportKind::kLive &&
      !family_live_supported(spec.family)) {
    std::cerr << "anonsim: transport \"live\" serves the consensus, weakset "
                 "and abd families, not \""
              << to_string(spec.family) << "\"\n";
    return 2;
  }
  if (args.faults_set) {
    std::string error;
    if (!apply_fault_overrides(args.faults, &spec.faults, &error)) {
      std::cerr << "anonsim: --faults: " << error << "\n";
      return 2;
    }
  }
  if (args.watchdog_set) {
    if (spec.family != ScenarioFamily::kConsensus) {
      std::cerr << "anonsim: --watchdog applies to consensus specs, not "
                   "family \""
                << to_string(spec.family) << "\"\n";
      return 2;
    }
    spec.consensus.watchdog_rounds = args.watchdog;
  }

  ScenarioReport report;
  try {
    report = ScenarioRegistry::instance().run(spec, {.threads = args.threads});
  } catch (const ScenarioSpecError& e) {
    std::cerr << "anonsim: " << e.what() << "\n";
    return 3;
  }

  if (schema_only) {
    for (const auto& path : report_schema(report.to_json(!args.no_timing)))
      std::cout << path << "\n";
    return 0;
  }

  if (!args.quiet) std::cout << report.summary() << "\n";
  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out || !(out << report.to_json_string(!args.no_timing))) {
      std::cerr << "anonsim: cannot write " << args.json_out << "\n";
      return 1;
    }
    if (!args.quiet) std::cout << "report written to " << args.json_out << "\n";
  } else if (args.quiet) {
    std::cout << report.to_json_string(!args.no_timing);
  }
  if (args.fail_undecided) {
    for (const auto& c : report.consensus_cells)
      if (c.report.undecided) return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage(std::cerr, 2);
  const std::string cmd = args[0];
  args.erase(args.begin());

  if (cmd == "list" && args.empty()) return cmd_list();
  if (cmd == "describe" && args.size() == 1) return cmd_describe(args[0]);
  if (cmd == "run" || cmd == "schema") {
    RunArgs run_args;
    std::string error;
    if (!parse_run_args(args, &run_args, &error)) {
      std::cerr << "anonsim: " << error << "\n";
      return usage(std::cerr, 2);
    }
    return cmd_run(run_args, cmd == "schema");
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help")
    return usage(std::cout, 0);
  std::cerr << "anonsim: unknown command \"" << cmd << "\"\n";
  return usage(std::cerr, 2);
}
