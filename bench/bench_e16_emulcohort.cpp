// E16 — the cohort-collapsed §5 stack (weak-set and emulation families on
// backend=cohort).
//
// The weak-set harness (weakset/ms_weak_set.cpp) and the emulation runner
// (scenario/runner_emulation.cpp) now dispatch on a backend knob: the
// expanded engines keep one automaton per process, the cohort engines keep
// one representative per state-equivalence class (net/cohort.hpp,
// emul/ms_emulation_cohort.hpp).  An idle weak-set run is ONE class until
// a scripted op splits a member out, and the e16 emulation shape bounds
// the echo-probe seed support to an 8-value cycle, so both runs collapse
// to O(1) classes and the expanded engines' Θ(n²)-ish per-round work
// drops to the O(n) observe/setup passes.
//
//   E16.a  weak-set A/B at n=4096: e16-ws-cohort's workload on the
//          expanded vs the cohort backend, interleaved, reports verified
//          byte-identical before any timing.  This is the committed
//          ≥100× number.  The serial expanded engine is the reference —
//          it schedules all Θ(n²) per-link calendar entries each round —
//          so the byte-identity check runs on the sharded expanded
//          engine instead (same bytes by PR 6's wave contract, but its
//          uniform-delay pregroup path skips the per-link fan-out), and
//          the sharded wall clock is reported alongside for honesty.
//   E16.b  weak-set cohort-only scale ladder to n=10^5.
//   E16.c  emulation A/B over n ∈ {32, 128, 512, 1024} — the expanded
//          engine records a Θ(r·n²) trace (every delivery to every
//          process), so n=4096 on the A side would hold multi-GB of
//          trace; the ladder stops where the A side is honest (the
//          cohort engine overtakes around n≈512) and the cohort side
//          continues alone in E16.d.
//   E16.d  emulation cohort-only at n=4096 and n=10^5 (8-value probe
//          cycle, certification off — the engine records no trace).
//
// BENCH_E16.json records the A/B ratios and the scale-ladder wall clocks.
#include "bench_common.hpp"

#include <string>
#include <vector>

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec ws_spec(std::size_t n, bool cohort) {
  ScenarioSpec spec = bench::preset_spec("e16-ws-cohort");
  spec.name = "";
  spec.n = n;
  if (!cohort) spec.weakset.backend = WeaksetSpecSection::Backend::kExpanded;
  return spec;
}

ScenarioSpec emul_spec(std::size_t n, bool cohort) {
  ScenarioSpec spec = bench::preset_spec("e16-emul-cohort");
  spec.name = "";
  spec.n = n;
  if (!cohort)
    spec.emulation.backend = EmulationSpecSection::Backend::kExpanded;
  return spec;
}

// Both backends must produce the same report bytes (timing excluded).
bool identical_reports(const ScenarioReport& a, const ScenarioReport& b) {
  return a.to_json_string(false) == b.to_json_string(false);
}

void print_tables() {
  // ---- E16.a: weak-set expanded vs cohort at n=4096 ------------------------
  const std::size_t n_a = bench::smoke() ? 512 : 4096;
  double ws_expanded_s = 0, ws_sharded_s = 0, ws_cohort_s = 0;
  {
    // Byte-identity gate on the cheap engines: the sharded expanded wave
    // produces the serial engine's exact bytes (verified by the cohort
    // equivalence suites at small n, where the serial engine is feasible)
    // without its Θ(n²) calendar, so verification here does not cost a
    // second multi-minute serial run.
    ScenarioSpec sharded = ws_spec(n_a, false);
    sharded.weakset.engine_threads = 4;
    const ScenarioReport ref = run_scenario(sharded, 1);
    const ScenarioReport coh = run_scenario(ws_spec(n_a, true), 1);
    ANON_CHECK_MSG(!ref.weakset_cells.empty() &&
                       ref.weakset_cells[0].spec_ok,
                   "E16.a weak-set run must satisfy the spec");
    ANON_CHECK_MSG(identical_reports(ref, coh),
                   "E16.a cohort report must be byte-identical to expanded");
    // The committed number: serial expanded vs cohort, interleaved once
    // (the serial run is the multi-minute side; more reps buy nothing).
    const bench::AbSeconds ab = bench::interleaved_ab_seconds(
        1, [&] { run_scenario(ws_spec(n_a, false), 1); },
        [&] { run_scenario(ws_spec(n_a, true), 1); });
    ws_expanded_s = ab.a;
    ws_cohort_s = ab.b;
    ws_sharded_s = bench::best_seconds(3, [&] { run_scenario(sharded, 1); });
    Table t("E16.a  weak-set backend A/B, e16-ws-cohort workload n=" +
                Table::num(static_cast<std::uint64_t>(n_a)) +
                " (serial expanded vs cohort interleaved; sharded expanded "
                "best-of-3 for reference)",
            {"backend", "wall-clock s", "speedup", "reports identical"});
    t.add_row({"expanded (serial)", Table::num(ws_expanded_s, 3), "1.00x",
               "-"});
    t.add_row({"expanded (sharded)", Table::num(ws_sharded_s, 3),
               Table::ratio(ws_sharded_s > 0 ? ws_expanded_s / ws_sharded_s
                                             : 0.0),
               "yes"});
    t.add_row({"cohort", Table::num(ws_cohort_s, 3), Table::ratio(ab.ratio()),
               "yes"});
    t.print();
  }

  // ---- E16.b: weak-set cohort-only scale ladder ----------------------------
  std::vector<std::size_t> ladder_b = {10000, 100000};
  if (bench::smoke()) ladder_b = {10000};
  std::vector<double> ws_scale_s(ladder_b.size(), 0);
  {
    Table t("E16.b  cohort weak-set scale ladder (e16-ws-cohort workload)",
            {"n", "wall-clock s", "spec ok"});
    for (std::size_t i = 0; i < ladder_b.size(); ++i) {
      ScenarioReport rep;
      const double s =
          bench::timed_seconds([&] { rep = run_scenario(ws_spec(ladder_b[i], true), 1); });
      ws_scale_s[i] = s;
      ANON_CHECK_MSG(!rep.weakset_cells.empty() &&
                         rep.weakset_cells[0].spec_ok,
                     "E16.b weak-set run must satisfy the spec");
      t.add_row({Table::num(static_cast<std::uint64_t>(ladder_b[i])),
                 Table::num(s, 3), "yes"});
    }
    t.print();
  }

  // ---- E16.c: emulation A/B where the expanded engine is honest ------------
  std::vector<std::size_t> ladder_c = {32, 128, 512, 1024};
  if (bench::smoke()) ladder_c = {32, 128};
  const int reps_c = bench::smoke() ? 1 : 3;
  std::vector<double> emul_expanded_s(ladder_c.size(), 0);
  std::vector<double> emul_cohort_s(ladder_c.size(), 0);
  {
    Table t("E16.c  emulation backend A/B, e16-emul-cohort workload "
            "(interleaved best-of-" +
                std::to_string(reps_c) +
                "; the expanded engine's Θ(r·n²) trace makes larger n "
                "dishonest on the A side)",
            {"n", "expanded s", "cohort s", "speedup", "reports identical"});
    for (std::size_t i = 0; i < ladder_c.size(); ++i) {
      const std::size_t n = ladder_c[i];
      const ScenarioReport ref = run_scenario(emul_spec(n, false), 1);
      const ScenarioReport coh = run_scenario(emul_spec(n, true), 1);
      ANON_CHECK_MSG(!ref.emulation_cells.empty() && ref.emulation_cells[0].ran,
                     "E16.c emulation run must reach its round goal");
      ANON_CHECK_MSG(identical_reports(ref, coh),
                     "E16.c cohort report must be byte-identical to expanded");
      const bench::AbSeconds ab = bench::interleaved_ab_seconds(
          reps_c, [&] { run_scenario(emul_spec(n, false), 1); },
          [&] { run_scenario(emul_spec(n, true), 1); });
      emul_expanded_s[i] = ab.a;
      emul_cohort_s[i] = ab.b;
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(ab.a, 3), Table::num(ab.b, 3),
                 Table::ratio(ab.ratio()), "yes"});
    }
    t.print();
  }

  // ---- E16.d: emulation cohort-only at scale -------------------------------
  std::vector<std::size_t> ladder_d = {4096, 100000};
  if (bench::smoke()) ladder_d = {4096};
  std::vector<double> emul_scale_s(ladder_d.size(), 0);
  {
    Table t("E16.d  cohort emulation scale ladder (8-value probe cycle)",
            {"n", "wall-clock s", "ran"});
    for (std::size_t i = 0; i < ladder_d.size(); ++i) {
      ScenarioReport rep;
      const double s = bench::timed_seconds(
          [&] { rep = run_scenario(emul_spec(ladder_d[i], true), 1); });
      emul_scale_s[i] = s;
      ANON_CHECK_MSG(!rep.emulation_cells.empty() &&
                         rep.emulation_cells[0].ran,
                     "E16.d emulation run must reach its round goal");
      t.add_row({Table::num(static_cast<std::uint64_t>(ladder_d[i])),
                 Table::num(s, 3), "yes"});
    }
    t.print();
  }

  {
    BenchJson j;
    j.set("experiment", std::string("E16"));
    j.set("workload",
          std::string("cohort-collapsed weak-set and emulation backends: "
                      "expanded-vs-cohort A/B + cohort scale ladders"));
    j.set("a_n", static_cast<std::uint64_t>(n_a));
    j.set("a_wall_expanded_s", ws_expanded_s);
    j.set("a_wall_expanded_sharded_s", ws_sharded_s);
    j.set("a_wall_cohort_s", ws_cohort_s);
    j.set("a_speedup", ws_cohort_s > 0 ? ws_expanded_s / ws_cohort_s : 0.0);
    j.set("a_speedup_vs_sharded",
          ws_cohort_s > 0 ? ws_sharded_s / ws_cohort_s : 0.0);
    j.set("b_n_max", static_cast<std::uint64_t>(ladder_b.back()));
    j.set("b_wall_nmax_s", ws_scale_s.back());
    j.set("c_n_max", static_cast<std::uint64_t>(ladder_c.back()));
    j.set("c_wall_expanded_nmax_s", emul_expanded_s.back());
    j.set("c_wall_cohort_nmax_s", emul_cohort_s.back());
    j.set("c_speedup_nmax",
          emul_cohort_s.back() > 0
              ? emul_expanded_s.back() / emul_cohort_s.back()
              : 0.0);
    j.set("d_n_max", static_cast<std::uint64_t>(ladder_d.back()));
    j.set("d_wall_nmax_s", emul_scale_s.back());
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E16.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: a_speedup="
                << (ws_cohort_s > 0 ? ws_expanded_s / ws_cohort_s : 0.0)
                << "x at n=" << n_a << ", cohort ladders to n="
                << ladder_b.back() << " (weak-set) / " << ladder_d.back()
                << " (emulation)]\n";
  }
}

void BM_CohortWeakset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec = ws_spec(n, true);
    spec.seeds = {seed++};
    const ScenarioReport rep = run_scenario(spec, 1);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_CohortWeakset)->Arg(512)->Arg(4096);

void BM_CohortEmulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec = emul_spec(n, true);
    spec.seeds = {seed++};
    const ScenarioReport rep = run_scenario(spec, 1);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_CohortEmulation)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
