// E17 — the anonsvc live service on loopback sockets (src/svc/).
//
// Everything before E17 measures simulators; this binary measures the
// deployment stack itself: real UDP datagrams, wall-clock-paced GIRAF
// rounds (source-gated closing), blocking clients over TCP.  Numbers here
// are TIMING, not protocol facts — the protocol outcomes (decisions,
// checker-clean histories, quorum completion) are asserted before any
// clock is read, and the committed BENCH_E17.json records the ladder:
//
//   E17.a  decision via the scenario surface: the e17-live presets run
//          through `run_scenario` exactly as `anonsim run --transport
//          live` would, outcomes CHECKed (consensus decides, weak-set
//          history passes the spec checker, ABD write/read completes).
//   E17.b  round latency ladder, n ∈ {3, 5, 9}: a cluster free-runs for a
//          fixed window; latency = window / rounds executed.  The floor
//          is the pacemaker period (2 ms here) — the interesting number
//          is the overhead above it at growing fan-out (n-1 datagrams
//          out, n-1 in, per node per round).
//   E17.c  client op throughput ladder, n ∈ {3, 5, 9}: one blocking
//          client, ABD write/read pairs (two quorum phases each) and
//          weak-set gets (answered from the node's current PROPOSED
//          without touching the mesh) — the quorum-bound vs local-bound
//          service paths.
#include "bench_common.hpp"

#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace anon {
namespace {

using namespace std::chrono_literals;

constexpr auto kOpTimeout = 10s;

LiveClusterOptions ladder_options(std::size_t n) {
  LiveClusterOptions opt;
  opt.n = n;
  opt.seed = 42;
  opt.period = 2ms;
  return opt;
}

void print_tables() {
  const std::vector<std::size_t> ladder = {3, 5, 9};

  // ---- E17.a: the scenario surface end-to-end ------------------------------
  double consensus_wall_s = 0, weakset_wall_s = 0, abd_wall_s = 0;
  Round decision_round = 0;
  {
    ScenarioReport rep;
    consensus_wall_s = bench::timed_seconds(
        [&] { rep = bench::run_scenario(bench::preset_spec("e17-live-consensus")); });
    ANON_CHECK_MSG(!rep.consensus_cells.empty() &&
                       rep.consensus_cells[0].report.all_correct_decided &&
                       rep.consensus_cells[0].report.agreement &&
                       rep.consensus_cells[0].report.validity,
                   "E17.a live consensus must decide with safety intact");
    decision_round = rep.consensus_cells[0].report.last_decision_round;

    ScenarioReport ws;
    weakset_wall_s = bench::timed_seconds(
        [&] { ws = bench::run_scenario(bench::preset_spec("e17-live-weakset")); });
    ANON_CHECK_MSG(!ws.weakset_cells.empty() && ws.weakset_cells[0].spec_ok &&
                       ws.weakset_cells[0].all_adds_completed,
                   "E17.a live weak-set history must pass the spec checker");

    ScenarioReport abd;
    abd_wall_s = bench::timed_seconds(
        [&] { abd = bench::run_scenario(bench::preset_spec("e17-live-abd")); });
    ANON_CHECK_MSG(!abd.abd_cells.empty() && abd.abd_cells[0].completed,
                   "E17.a live ABD write/read probe must complete");

    Table t("E17.a  scenario surface on transport \"live\" (5-node loopback "
            "UDP, 2 ms period; protocol outcomes CHECKed before timing)",
            {"preset", "outcome", "wall-clock s"});
    t.add_row({"e17-live-consensus",
               "decided r" + Table::num(static_cast<std::uint64_t>(
                                 decision_round)),
               Table::num(consensus_wall_s, 3)});
    t.add_row({"e17-live-weakset", "history spec-clean",
               Table::num(weakset_wall_s, 3)});
    t.add_row({"e17-live-abd", "write/read completed",
               Table::num(abd_wall_s, 3)});
    t.print();
  }

  // ---- E17.b: round latency ladder -----------------------------------------
  const auto window = bench::smoke() ? 200ms : 1000ms;
  std::vector<double> round_latency_ms(ladder.size(), 0);
  {
    Table t("E17.b  live round latency, free-running mesh (window " +
                Table::num(static_cast<std::uint64_t>(window.count())) +
                " ms, 2 ms pacemaker period = the floor)",
            {"n", "rounds", "latency ms/round"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      LiveCluster cluster(ladder_options(ladder[i]));
      ANON_CHECK_MSG(cluster.start(), "E17.b cluster must start");
      std::this_thread::sleep_for(window);
      cluster.stop_all();
      cluster.join();
      Round rounds = 0;
      for (std::size_t p = 0; p < cluster.n(); ++p)
        rounds = std::max(rounds, cluster.node(p).rounds_executed());
      ANON_CHECK_MSG(rounds > 0, "E17.b mesh must make round progress");
      round_latency_ms[i] =
          std::chrono::duration<double, std::milli>(window).count() /
          static_cast<double>(rounds);
      t.add_row({Table::num(static_cast<std::uint64_t>(ladder[i])),
                 Table::num(static_cast<std::uint64_t>(rounds)),
                 Table::num(round_latency_ms[i], 3)});
    }
    t.print();
  }

  // ---- E17.c: client op throughput ladder ----------------------------------
  const std::size_t abd_pairs = bench::smoke() ? 16 : 64;
  const std::size_t gets = bench::smoke() ? 64 : 256;
  std::vector<double> abd_ops_per_s(ladder.size(), 0);
  std::vector<double> get_ops_per_s(ladder.size(), 0);
  {
    Table t("E17.c  client op throughput, one blocking client (" +
                Table::num(static_cast<std::uint64_t>(abd_pairs)) +
                " ABD write/read pairs, " +
                Table::num(static_cast<std::uint64_t>(gets)) +
                " weak-set gets)",
            {"n", "abd ops/s", "ws-get ops/s"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      LiveCluster cluster(ladder_options(ladder[i]));
      ANON_CHECK_MSG(cluster.start(), "E17.c cluster must start");
      SvcClient client;
      ANON_CHECK_MSG(client.connect(cluster.client_port(0)),
                     "E17.c client must connect");
      const double abd_s = bench::timed_seconds([&] {
        for (std::size_t k = 0; k < abd_pairs; ++k) {
          ANON_CHECK_MSG(
              client.reg_write(static_cast<std::int64_t>(k), kOpTimeout).ok(),
              "E17.c write must complete");
          ANON_CHECK_MSG(client.reg_read(kOpTimeout).ok(),
                         "E17.c read must complete");
        }
      });
      const double get_s = bench::timed_seconds([&] {
        for (std::size_t k = 0; k < gets; ++k)
          ANON_CHECK_MSG(client.ws_get(kOpTimeout).ok(),
                         "E17.c get must complete");
      });
      cluster.stop_all();
      cluster.join();
      abd_ops_per_s[i] = static_cast<double>(2 * abd_pairs) / abd_s;
      get_ops_per_s[i] = static_cast<double>(gets) / get_s;
      t.add_row({Table::num(static_cast<std::uint64_t>(ladder[i])),
                 Table::num(abd_ops_per_s[i], 1),
                 Table::num(get_ops_per_s[i], 1)});
    }
    t.print();
  }

  {
    BenchJson j;
    j.set("experiment", std::string("E17"));
    j.set("workload",
          std::string("anonsvc live service on loopback UDP: scenario-surface "
                      "outcomes + round-latency and op-throughput ladders"));
    j.set("a_consensus_wall_s", consensus_wall_s);
    j.set("a_consensus_decision_round",
          static_cast<std::uint64_t>(decision_round));
    j.set("a_weakset_wall_s", weakset_wall_s);
    j.set("a_abd_wall_s", abd_wall_s);
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      const std::string n = std::to_string(ladder[i]);
      j.set("b_round_latency_ms_n" + n, round_latency_ms[i]);
      j.set("c_abd_ops_per_s_n" + n, abd_ops_per_s[i]);
      j.set("c_wsget_ops_per_s_n" + n, get_ops_per_s[i]);
    }
    j.set("period_ms", static_cast<std::uint64_t>(2));
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E17.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: round latency "
                << round_latency_ms.front() << " -> "
                << round_latency_ms.back() << " ms/round over n=3..9, abd "
                << abd_ops_per_s.front() << " -> " << abd_ops_per_s.back()
                << " ops/s]\n";
  }
}

void BM_LiveDecision(benchmark::State& state) {
  // One full boot-to-decision cycle per iteration (cluster setup included —
  // that IS the deployment cost of a decision).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    LiveClusterOptions opt = ladder_options(n);
    opt.seed = seed++;
    LiveCluster cluster(opt);
    if (!cluster.start()) { state.SkipWithError("cluster failed to start"); break; }
    SvcClient client;
    if (!client.connect(cluster.client_port(0)) ||
        !client.decision(kOpTimeout).ok()) {
      state.SkipWithError("decision failed");
      break;
    }
    cluster.stop_all();
    cluster.join();
  }
}
BENCHMARK(BM_LiveDecision)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
