// E8 — the impossibility results, executable:
//  (a) consensus is impossible in MS (FLP corollary via Theorem 4): the
//      bivalent two-camp MS schedule blocks Algorithm 2 forever, while the
//      trace stays a certified MS run — a consensus-family scenario with
//      schedule "bivalent-ms";
//  (b) naive "hostile" MS schedules let Algorithm 2 converge — schedule
//      "hostile-ms" (bivalence needs the two-camp structure);
//  (c) Σ is not emulable in MS even with IDs (Proposition 4): the two-run
//      adversary defeats every candidate emulator (bespoke harness).
// BENCH_E8.json tracks the preset e8-bivalent cell via the unified emitter.
#include "bench_common.hpp"

#include "emul/sigma_adversary.hpp"

namespace anon {
namespace {

using bench::run_scenario;

// The preset workload, rescaled: one source of truth for the two-camp
// schedule's shape (src/scenario/presets.cpp), n/horizon varied here.
ScenarioSpec bivalent_spec(std::size_t n, Round horizon) {
  ScenarioSpec spec = bench::preset_spec("e8-bivalent");
  spec.n = n;
  spec.consensus.max_rounds = horizon;
  return spec;
}

void write_bench_json() {
  ScenarioSpec spec = bench::preset_spec("e8-bivalent");
  if (bench::smoke()) {
    spec.n = 5;
    spec.consensus.max_rounds = 500;
  }
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport report;
  const double best =
      bench::best_seconds(reps, [&] { report = run_scenario(spec); });
  const auto& cell = report.consensus_cells[0];
  BenchJson j;
  j.set("experiment", std::string("E8"));
  j.set("workload",
        std::string("bivalent two-camp MS schedule vs Alg 2 (must never "
                    "decide; trace must certify MS)"));
  j.set("n", static_cast<std::uint64_t>(spec.n));
  j.set("horizon", static_cast<std::uint64_t>(spec.consensus.max_rounds));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_s", best);
  j.set("decided", static_cast<std::uint64_t>(
                       cell.report.all_correct_decided ? 1 : 0));
  j.set("camps_intact",
        static_cast<std::uint64_t>(cell.camps_intact == 1 ? 1 : 0));
  j.set("ms_certified",
        static_cast<std::uint64_t>(cell.report.env_check.ms_ok ? 1 : 0));
  add_report_totals(j, report);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E8.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: wall_s=" << best << "]\n";
}

void print_tables() {
  const Round horizon = bench::smoke() ? 500 : 4000;
  {
    Table t("E8.a  bivalent two-camp MS schedule vs Algorithm 2 (horizon " +
                Table::num(static_cast<std::uint64_t>(horizon)) + " rounds)",
            {"n", "decided?", "camps intact?", "trace MS-certified?"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      const auto report = run_scenario(bivalent_spec(n, horizon));
      const auto& cell = report.consensus_cells[0];
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 cell.report.all_correct_decided ? "DECIDED (unexpected!)"
                                                 : "no (forever)",
                 cell.camps_intact == 1 ? "yes" : "no",
                 cell.report.env_check.ms_ok ? "yes" : "NO"});
    }
    t.print();
  }

  {
    Table t("E8.b  naive hostile MS schedules DO converge in lock-step (context)",
            {"schedule", "n", "decision round"});
    for (std::size_t n : {4u, 8u}) {
      ScenarioSpec spec;
      spec.family = ScenarioFamily::kConsensus;
      spec.seeds = {21};
      spec.env_kind = EnvKind::kMS;
      spec.n = n;
      spec.consensus.algo = ConsensusAlgo::kEs;
      spec.consensus.schedule = ConsensusSpecSection::Schedule::kHostileMs;
      spec.consensus.max_rounds = 2000;
      const auto report = run_scenario(spec);
      const auto& rep = report.consensus_cells[0].report;
      t.add_row({"rotating source, rest late",
                 Table::num(static_cast<std::uint64_t>(n)),
                 rep.all_correct_decided ? Table::num(rep.rounds_executed)
                                         : "none"});
    }
    t.print();
    std::cout
        << "  (The per-round source relays one value to everybody and the\n"
           "   max-adoption rule collapses bivalence; only the two-camp\n"
           "   asymmetric schedule of E8.a keeps two estimates alive.)\n";
  }

  {
    Table t("E8.c  Proposition 4: every Σ candidate loses a property (horizon 300)",
            {"candidate", "completeness r1", "completeness r2",
             "intersection", "witness t"});
    std::vector<std::unique_ptr<SigmaFactory>> factories;
    factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(2));
    factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(25));
    factories.push_back(std::make_unique<CumulativeSigmaFactory>());
    factories.push_back(std::make_unique<FullSetSigmaFactory>());
    for (const auto& f : factories) {
      auto v = run_prop4_scenario(*f, 300);
      t.add_row({f->name(), v.completeness_r1 ? "ok" : "VIOLATED",
                 v.completeness_r1
                     ? (v.completeness_r2 ? "ok" : "VIOLATED")
                     : "-",
                 v.completeness_r1 && v.completeness_r2
                     ? (v.intersection_violated ? "VIOLATED" : "held?!")
                     : "-",
                 v.completeness_r1 ? Table::num(v.t) : "-"});
    }
    t.print();
  }

  write_bench_json();
}

void BM_BivalentSchedule(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioSpec spec = bivalent_spec(5, 1000);
    spec.consensus.record_trace = false;
    spec.consensus.validate_env = false;
    const auto report = run_scenario(spec, 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_BivalentSchedule);

void BM_SigmaScenario(benchmark::State& state) {
  RecentlyHeardSigmaFactory f(4);
  for (auto _ : state) {
    auto v = run_prop4_scenario(f, 300);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SigmaScenario);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
