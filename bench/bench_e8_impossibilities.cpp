// E8 — the impossibility results, executable:
//  (a) consensus is impossible in MS (FLP corollary via Theorem 4): the
//      bivalent two-camp MS schedule blocks Algorithm 2 forever, while the
//      trace stays a certified MS run;
//  (b) Σ is not emulable in MS even with IDs (Proposition 4): the two-run
//      adversary defeats every candidate emulator.
//  Also documents the lock-step finding: naive "hostile" MS schedules let
//  Algorithm 2 converge — bivalence needs the two-camp structure.
#include "bench_common.hpp"

#include "algo/es_consensus.hpp"
#include "emul/sigma_adversary.hpp"
#include "env/validate.hpp"

namespace anon {
namespace {

void print_tables() {
  {
    Table t("E8.a  bivalent two-camp MS schedule vs Algorithm 2 (horizon 4000 rounds)",
            {"n", "decided?", "camps intact?", "trace MS-certified?"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
      for (auto v : BivalentMsModel::initial_values(n))
        autos.push_back(std::make_unique<EsConsensus>(v));
      BivalentMsModel delays(n);
      LockstepOptions opt;
      opt.max_rounds = 4000;
      LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
      auto res = net.run_until_all_correct_decided();
      bool camps = dynamic_cast<const EsConsensus&>(net.process(0).automaton())
                           .val() == Value(1);
      for (ProcId p = 1; p < n; ++p)
        if (!(dynamic_cast<const EsConsensus&>(net.process(p).automaton())
                  .val() == Value(2)))
          camps = false;
      auto env = check_environment(net.trace(), n, CrashPlan{}.correct(n));
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 res.stopped ? "DECIDED (unexpected!)" : "no (forever)",
                 camps ? "yes" : "no", env.ms_ok ? "yes" : "NO"});
    }
    t.print();
  }

  {
    Table t("E8.b  naive hostile MS schedules DO converge in lock-step (context)",
            {"schedule", "n", "decision round"});
    for (std::size_t n : {4u, 8u}) {
      std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
      for (auto v : distinct_values(n))
        autos.push_back(std::make_unique<EsConsensus>(v));
      HostileMsModel delays(n, 21);
      LockstepOptions opt;
      opt.max_rounds = 2000;
      LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
      auto res = net.run_until_all_correct_decided();
      t.add_row({"rotating source, rest late",
                 Table::num(static_cast<std::uint64_t>(n)),
                 res.stopped ? Table::num(net.round()) : "none"});
    }
    t.print();
    std::cout
        << "  (The per-round source relays one value to everybody and the\n"
           "   max-adoption rule collapses bivalence; only the two-camp\n"
           "   asymmetric schedule of E8.a keeps two estimates alive.)\n";
  }

  {
    Table t("E8.c  Proposition 4: every Σ candidate loses a property (horizon 300)",
            {"candidate", "completeness r1", "completeness r2",
             "intersection", "witness t"});
    std::vector<std::unique_ptr<SigmaFactory>> factories;
    factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(2));
    factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(25));
    factories.push_back(std::make_unique<CumulativeSigmaFactory>());
    factories.push_back(std::make_unique<FullSetSigmaFactory>());
    for (const auto& f : factories) {
      auto v = run_prop4_scenario(*f, 300);
      t.add_row({f->name(), v.completeness_r1 ? "ok" : "VIOLATED",
                 v.completeness_r1
                     ? (v.completeness_r2 ? "ok" : "VIOLATED")
                     : "-",
                 v.completeness_r1 && v.completeness_r2
                     ? (v.intersection_violated ? "VIOLATED" : "held?!")
                     : "-",
                 v.completeness_r1 ? Table::num(v.t) : "-"});
    }
    t.print();
  }
}

void BM_BivalentSchedule(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
    for (auto v : BivalentMsModel::initial_values(5))
      autos.push_back(std::make_unique<EsConsensus>(v));
    BivalentMsModel delays(5);
    LockstepOptions opt;
    opt.max_rounds = 1000;
    opt.record_trace = false;
    LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
    auto res = net.run_until_all_correct_decided();
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_BivalentSchedule);

void BM_SigmaScenario(benchmark::State& state) {
  RecentlyHeardSigmaFactory f(4);
  for (auto _ : state) {
    auto v = run_prop4_scenario(f, 300);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SigmaScenario);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
