// E11 — set-operation microbenchmark: isolates the FlatSet (sorted
// small-buffer flat set) win over the previous `std::set<Value>`
// representation from simulation noise.  Union / intersection / subset at
// |V| ∈ {2, 8, 64}, plus the in-place variants the consensus hot path uses
// (WRITTEN ∩= m, PROPOSED ∪= m).
#include "bench_common.hpp"

#include <set>

#include "common/value.hpp"

namespace anon {
namespace {

// Two half-overlapping sets of size n: a = {0..n-1}, b = {n/2..n/2+n-1}.
ValueSet flat_input(std::size_t n, std::int64_t offset) {
  ValueSet s;
  for (std::size_t i = 0; i < n; ++i)
    s.insert(Value(offset + static_cast<std::int64_t>(i)));
  return s;
}

std::set<Value> std_input(std::size_t n, std::int64_t offset) {
  std::set<Value> s;
  for (std::size_t i = 0; i < n; ++i)
    s.insert(Value(offset + static_cast<std::int64_t>(i)));
  return s;
}

void BM_FlatUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ValueSet a = flat_input(n, 0), b = flat_input(n, static_cast<std::int64_t>(n / 2));
  for (auto _ : state) {
    ValueSet out = set_union(a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FlatUnion)->Arg(2)->Arg(8)->Arg(64);

void BM_StdUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = std_input(n, 0), b = std_input(n, static_cast<std::int64_t>(n / 2));
  for (auto _ : state) {
    std::set<Value> out = a;  // the pre-refactor set_union
    out.insert(b.begin(), b.end());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StdUnion)->Arg(2)->Arg(8)->Arg(64);

void BM_FlatUnionInplace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ValueSet a = flat_input(n, 0), b = flat_input(n, static_cast<std::int64_t>(n / 2));
  ValueSet acc;
  for (auto _ : state) {
    acc = a;  // capacity is retained: steady state allocates nothing
    set_union_inplace(acc, b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FlatUnionInplace)->Arg(2)->Arg(8)->Arg(64);

void BM_FlatIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ValueSet a = flat_input(n, 0), b = flat_input(n, static_cast<std::int64_t>(n / 2));
  for (auto _ : state) {
    ValueSet out = set_intersect(a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FlatIntersect)->Arg(2)->Arg(8)->Arg(64);

void BM_StdIntersect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = std_input(n, 0), b = std_input(n, static_cast<std::int64_t>(n / 2));
  for (auto _ : state) {
    std::set<Value> out;  // the pre-refactor set_intersect
    for (const Value& v : a)
      if (b.count(v) > 0) out.insert(v);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StdIntersect)->Arg(2)->Arg(8)->Arg(64);

void BM_FlatIntersectInplace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ValueSet a = flat_input(n, 0), b = flat_input(n, static_cast<std::int64_t>(n / 2));
  ValueSet acc;
  for (auto _ : state) {
    acc = a;
    set_intersect_inplace(acc, b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FlatIntersectInplace)->Arg(2)->Arg(8)->Arg(64);

void BM_FlatSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ValueSet a = flat_input(n, 0), big = flat_input(2 * n, 0);
  for (auto _ : state) {
    bool sub = subset_of(a, big);
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_FlatSubset)->Arg(2)->Arg(8)->Arg(64);

void BM_StdSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = std_input(n, 0), big = std_input(2 * n, 0);
  for (auto _ : state) {
    bool sub = true;  // the pre-refactor subset_of
    for (const Value& v : a)
      if (big.count(v) == 0) {
        sub = false;
        break;
      }
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_StdSubset)->Arg(2)->Arg(8)->Arg(64);

void print_tables() {
  // Quick comparative table (wall clock of 200k op pairs), so the flat-set
  // win is visible without the google-benchmark pass.
  Table t("E11  set ops: FlatSet (flat/merge) vs std::set (tree/probe), 200k ops",
          {"|V|", "flat union ms", "std union ms", "flat intersect ms",
           "std intersect ms"});
  const int iters = bench::smoke() ? 20000 : 200000;
  for (std::size_t n : {2u, 8u, 64u}) {
    const ValueSet fa = flat_input(n, 0),
                   fb = flat_input(n, static_cast<std::int64_t>(n / 2));
    const auto sa = std_input(n, 0),
               sb = std_input(n, static_cast<std::int64_t>(n / 2));
    const double flat_u = bench::timed_seconds([&] {
      for (int i = 0; i < iters; ++i) {
        ValueSet out = set_union(fa, fb);
        benchmark::DoNotOptimize(out);
      }
    });
    const double std_u = bench::timed_seconds([&] {
      for (int i = 0; i < iters; ++i) {
        std::set<Value> out = sa;
        out.insert(sb.begin(), sb.end());
        benchmark::DoNotOptimize(out);
      }
    });
    const double flat_i = bench::timed_seconds([&] {
      for (int i = 0; i < iters; ++i) {
        ValueSet out = set_intersect(fa, fb);
        benchmark::DoNotOptimize(out);
      }
    });
    const double std_i = bench::timed_seconds([&] {
      for (int i = 0; i < iters; ++i) {
        std::set<Value> out;
        for (const Value& v : sa)
          if (sb.count(v) > 0) out.insert(v);
        benchmark::DoNotOptimize(out);
      }
    });
    t.add_row({Table::num(static_cast<std::uint64_t>(n)),
               Table::num(flat_u * 1e3, 2), Table::num(std_u * 1e3, 2),
               Table::num(flat_i * 1e3, 2), Table::num(std_i * 1e3, 2)});
  }
  t.print();
}

}  // namespace
}  // namespace anon

// E11 is the one pure microbenchmark (no simulation, nothing to drive
// through the scenario registry) — it still uses the shared entry point.
ANON_BENCH_MAIN(&anon::print_tables)

