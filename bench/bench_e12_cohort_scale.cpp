// E12 — cohort-collapsed execution at scale (PR 3 tentpole).
//
// The cohort engine simulates anonymous processes by state-equivalence
// class (net/cohort.hpp), so a failure-free post-GST run costs O(C²) per
// round in the number of distinct states — independent of n.  The
// E1-shaped workload is the preset `e12-cohort` scenario (cycle-generated
// proposals bound the domain to 8 classes at ANY n); only E12.c (the
// heavy-message CohortNet probe) still drives the engine directly.
//
//   E12.a  E1-shaped ES consensus ladder, n = 1e3 … 1e6, cohort engine:
//          wall clock stays flat-ish in n (dominated by O(n) setup) while
//          the simulated link traffic grows ~n².
//   E12.b  cohort vs expanded engine at n = 4096 on the same workload,
//          interleaved A/B — the committed speedup number.
//   E12.c  E10-shaped workload (Algorithm 3 message shape, no decision,
//          fixed horizon) on the cohort engine: heavy per-message state,
//          same collapse.
//
// BENCH_E12.json records the n = 1e6 completion and the n = 4096 speedup.
#include "bench_common.hpp"

#include <memory>
#include <vector>

#include "algo/ess_consensus.hpp"
#include "common/history.hpp"
#include "net/cohort.hpp"

namespace anon {
namespace {

using bench::run_scenario;

constexpr std::size_t kDomain = 8;

ScenarioSpec e1_shaped(std::size_t n, ConsensusBackend backend) {
  ScenarioSpec spec = bench::preset_spec("e12-cohort");
  spec.n = n;
  spec.consensus.backend = backend;
  spec.consensus.record_trace = false;
  return spec;
}

void print_tables() {
  const std::vector<std::size_t> ladder =
      bench::smoke() ? std::vector<std::size_t>{1000u, 10000u}
                     : std::vector<std::size_t>{1000u, 10000u, 100000u,
                                                1000000u};
  double wall_nmax = 0;
  std::uint64_t rounds_nmax = 0, cohorts_nmax = 0;

  {
    Table t("E12.a  cohort engine, E1-shaped ES run (GST=0, 8 proposal values)",
            {"n", "wall-clock s", "rounds", "max cohorts", "link deliveries"});
    for (std::size_t n : ladder) {
      ScenarioReport report;
      const double s = bench::timed_seconds([&] {
        report = run_scenario(e1_shaped(n, ConsensusBackend::kCohort), 1);
      });
      const auto& rep = report.consensus_cells[0].report;
      ANON_CHECK_MSG(rep.all_correct_decided && rep.agreement,
                     "cohort run must decide consensus");
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(s, 3), Table::num(rep.rounds_executed),
                 Table::num(static_cast<std::uint64_t>(rep.cohorts_max)),
                 Table::num(rep.deliveries)});
      if (n == ladder.back()) {
        wall_nmax = s;
        rounds_nmax = rep.rounds_executed;
        cohorts_nmax = rep.cohorts_max;
      }
    }
    t.print();
    std::cout << "  (the expanded engine is O(n²) per round: its n=1e6 row\n"
                 "   would be ~10⁶× the n=1e3 one — see E12.b for the\n"
                 "   measured head-to-head at n=4096.)\n";
  }

  const std::size_t ab_n = bench::smoke() ? 256 : 4096;
  double ab_cohort_s = 0, ab_expanded_s = 0;
  {
    const int reps = bench::smoke() ? 1 : 2;
    ScenarioReport rep_c, rep_e;
    const bench::AbSeconds ab = bench::interleaved_ab_seconds(
        reps,
        [&] {
          rep_e = run_scenario(e1_shaped(ab_n, ConsensusBackend::kExpanded), 1);
        },
        [&] {
          rep_c = run_scenario(e1_shaped(ab_n, ConsensusBackend::kCohort), 1);
        });
    ab_expanded_s = ab.a;
    ab_cohort_s = ab.b;
    const bool identical = rep_e.consensus_cells[0].report.to_string() ==
                           rep_c.consensus_cells[0].report.to_string();
    Table t("E12.b  expanded vs cohort engine, same workload (n=" +
                Table::num(static_cast<std::uint64_t>(ab_n)) +
                ", interleaved A/B best-of-" + std::to_string(reps) + ")",
            {"engine", "wall-clock s", "speedup", "reports identical"});
    t.add_row({"expanded (LockstepNet)", Table::num(ab_expanded_s, 3), "1.00x",
               "-"});
    t.add_row({"cohort (CohortNet)", Table::num(ab_cohort_s, 3),
               Table::ratio(ab.ratio()), identical ? "yes" : "NO — BUG"});
    t.print();
    ANON_CHECK_MSG(identical, "cohort A/B must reproduce the expanded report");
  }

  {
    // E10-shaped: Algorithm 3's heavy messages (history + counters), no
    // decision, fixed horizon — the state-growth workload, collapsed.
    // CohortNet is driven directly: the scenario layer's state-growth
    // probe is expanded-only (it inspects a representative automaton).
    const Round horizon = bench::smoke() ? 50u : 100u;
    Table t("E12.c  cohort engine, E10-shaped run (Alg 3 messages, no decide, " +
                Table::num(static_cast<std::uint64_t>(horizon)) + " rounds)",
            {"n", "wall-clock s", "max cohorts", "bytes on the wire"});
    for (std::size_t n : {ladder.front(), ladder[1]}) {
      const SynchronousDelays delays;
      HistoryArena arena;
      EssConsensus::Options no_decide;
      no_decide.decide = false;
      std::vector<Value> init;
      init.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        init.push_back(Value(100 + static_cast<std::int64_t>(i % kDomain)));
      auto groups = groups_by_initial_value<EssMessage>(
          init, [&](const Value& v) {
            return std::make_unique<EssConsensus>(v, &arena, no_decide);
          });
      CohortOptions opt;
      opt.max_rounds = horizon + 5;
      CohortNet<EssMessage> net(std::move(groups), delays, CrashPlan{}, opt);
      const double s =
          bench::timed_seconds([&] { net.run_rounds(horizon); });
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(s, 3),
                 Table::num(static_cast<std::uint64_t>(net.stats().max_cohorts)),
                 Table::num(net.bytes_sent())});
    }
    t.print();
  }

  {
    BenchJson j;
    j.set("experiment", std::string("E12"));
    j.set("workload",
          std::string("E1-shaped ES consensus (GST=0, 8 proposal values), "
                      "cohort-collapsed engine"));
    j.set("n_max", static_cast<std::uint64_t>(ladder.back()));
    j.set("wall_nmax_s", wall_nmax);
    j.set("rounds_nmax", rounds_nmax);
    j.set("cohorts_max_nmax", cohorts_nmax);
    j.set("ab_n", static_cast<std::uint64_t>(ab_n));
    j.set("wall_expanded_s", ab_expanded_s);
    j.set("wall_cohort_s", ab_cohort_s);
    j.set("speedup",
          ab_cohort_s > 0 ? ab_expanded_s / ab_cohort_s : 0.0);
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E12.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: n_max=" << ladder.back()
                << " wall=" << wall_nmax << "s, n=" << ab_n
                << " speedup=" << (ab_cohort_s > 0
                                       ? ab_expanded_s / ab_cohort_s
                                       : 0.0)
                << "x]\n";
  }
}

void BM_CohortEsConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec = e1_shaped(n, ConsensusBackend::kCohort);
    spec.seeds = {seed++};
    const auto report = run_scenario(spec, 1);
    benchmark::DoNotOptimize(report);
    const auto& cell = report.consensus_cells[0];
    state.counters["rounds"] =
        static_cast<double>(cell.report.last_decision_round);
    state.counters["cohorts"] = static_cast<double>(cell.report.cohorts_max);
  }
}
BENCHMARK(BM_CohortEsConsensus)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
