// E2 — Theorem 2: Algorithm 3 solves consensus in ESS via pseudo leader
// election.  Decision rounds vs n / stabilization / crashes; identical vs
// distinct initial values (identical = fully symmetric anonymity case).
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::consensus_config;

void print_tables() {
  const auto seeds = experiment_seeds(10);

  {
    Table t("E2.a  Algorithm 3 in ESS: decision round vs n (stabilization=0)",
            {"n", "last decision round", "messages", "bytes/process"});
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
      std::vector<double> rounds, msgs, bytes;
      for (auto seed : seeds) {
        auto rep = run_consensus(ConsensusAlgo::kEss,
                                 consensus_config(EnvKind::kESS, n, 0, seed));
        rounds.push_back(static_cast<double>(rep.last_decision_round));
        msgs.push_back(static_cast<double>(rep.deliveries));
        bytes.push_back(static_cast<double>(rep.bytes_sent) /
                        static_cast<double>(n));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(rounds).to_string(),
                 Table::num(aggregate(msgs).mean, 0),
                 Table::num(aggregate(bytes).mean, 0)});
    }
    t.print();
  }

  {
    Table t("E2.b  decision round vs stabilization round (n=8)",
            {"stabilization", "last decision round", "decision - stab"});
    for (Round stab : {0u, 8u, 16u, 32u, 64u}) {
      std::vector<double> rounds, slack;
      for (auto seed : seeds) {
        auto rep = run_consensus(ConsensusAlgo::kEss,
                                 consensus_config(EnvKind::kESS, 8, stab, seed));
        rounds.push_back(static_cast<double>(rep.last_decision_round));
        slack.push_back(static_cast<double>(rep.last_decision_round) -
                        static_cast<double>(stab));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(stab)),
                 aggregate(rounds).to_string(),
                 aggregate(slack).to_string()});
    }
    t.print();
  }

  {
    Table t("E2.c  crash tolerance (n=8, stabilization=12)",
            {"crashes f", "all correct decided", "agreement",
             "last decision round"});
    for (std::size_t f : {0u, 2u, 4u, 7u}) {
      std::size_t decided = 0, agree = 0;
      std::vector<double> rounds;
      for (auto seed : seeds) {
        auto rep = run_consensus(
            ConsensusAlgo::kEss,
            consensus_config(EnvKind::kESS, 8, 12, seed, f));
        decided += rep.all_correct_decided ? 1 : 0;
        agree += rep.agreement ? 1 : 0;
        rounds.push_back(static_cast<double>(rep.last_decision_round));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(decided)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(agree)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(rounds).to_string()});
    }
    t.print();
  }

  {
    Table t("E2.d  symmetric (identical values) vs distinct proposals (n=8, stab=0)",
            {"workload", "last decision round"});
    for (bool identical : {true, false}) {
      std::vector<double> rounds;
      for (auto seed : seeds) {
        auto cfg = consensus_config(EnvKind::kESS, 8, 0, seed);
        if (identical) cfg.initial = identical_values(8, 42);
        auto rep = run_consensus(ConsensusAlgo::kEss, cfg);
        rounds.push_back(static_cast<double>(rep.last_decision_round));
      }
      t.add_row({identical ? "identical (symmetric)" : "distinct",
                 aggregate(rounds).to_string()});
    }
    t.print();
  }
}

void BM_EssConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto rep = run_consensus(ConsensusAlgo::kEss,
                             consensus_config(EnvKind::kESS, n, 8, seed++));
    benchmark::DoNotOptimize(rep);
    state.counters["rounds"] = static_cast<double>(rep.last_decision_round);
  }
}
BENCHMARK(BM_EssConsensus)->Arg(4)->Arg(16)->Arg(32);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
