// E2 — Theorem 2: Algorithm 3 solves consensus in ESS via pseudo leader
// election.  Decision rounds vs n / stabilization / crashes; identical vs
// distinct initial values (identical = fully symmetric anonymity case).
// All cells are ScenarioSpecs through the registry; BENCH_E2.json tracks
// the preset `e2` sweep via the unified report emitter.
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::consensus_spec;
using bench::run_scenario;

// The tracked workload (BENCH_E2.json): the preset `e2` ESS n=32 sweep.
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec = bench::preset_spec("e2");
  spec.seeds = seeds;
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport report;
  const double best = bench::best_seconds(
      reps, [&] { report = run_scenario(spec, /*threads=*/1); });
  Round last = 0;
  for (const auto& cell : report.consensus_cells)
    last = std::max(last, cell.report.last_decision_round);
  BenchJson j;
  j.set("experiment", std::string("E2"));
  j.set("workload", std::string("ESS consensus sweep, n=32, stab=0, serial"));
  j.set("n", static_cast<std::uint64_t>(spec.n));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_s", best);
  j.set("max_last_decision_round", static_cast<std::uint64_t>(last));
  add_report_totals(j, report);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E2.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: wall_s=" << best << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u, 8u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};

  {
    Table t("E2.a  Algorithm 3 in ESS: decision round vs n (stabilization=0)",
            {"n", "last decision round", "messages", "bytes/process"});
    for (std::size_t n : sizes) {
      std::vector<double> rounds, msgs, bytes;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, n, 0, seeds));
      for (const auto& cell : report.consensus_cells) {
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
        msgs.push_back(static_cast<double>(cell.report.deliveries));
        bytes.push_back(static_cast<double>(cell.report.bytes_sent) /
                        static_cast<double>(n));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(rounds).to_string(),
                 Table::num(aggregate(msgs).mean, 0),
                 Table::num(aggregate(bytes).mean, 0)});
    }
    t.print();
  }

  {
    Table t("E2.b  decision round vs stabilization round (n=8)",
            {"stabilization", "last decision round", "decision - stab"});
    for (Round stab : {0u, 8u, 16u, 32u, 64u}) {
      std::vector<double> rounds, slack;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, 8, stab, seeds));
      for (const auto& cell : report.consensus_cells) {
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
        slack.push_back(static_cast<double>(cell.report.last_decision_round) -
                        static_cast<double>(stab));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(stab)),
                 aggregate(rounds).to_string(),
                 aggregate(slack).to_string()});
    }
    t.print();
  }

  {
    Table t("E2.c  crash tolerance (n=8, stabilization=12)",
            {"crashes f", "all correct decided", "agreement",
             "last decision round"});
    for (std::size_t f : {0u, 2u, 4u, 7u}) {
      std::size_t decided = 0, agree = 0;
      std::vector<double> rounds;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, 8, 12, seeds, f));
      for (const auto& cell : report.consensus_cells) {
        decided += cell.report.all_correct_decided ? 1 : 0;
        agree += cell.report.agreement ? 1 : 0;
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(decided)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(agree)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(rounds).to_string()});
    }
    t.print();
  }

  {
    Table t("E2.d  symmetric (identical values) vs distinct proposals (n=8, stab=0)",
            {"workload", "last decision round"});
    for (bool identical : {true, false}) {
      std::vector<double> rounds;
      ScenarioSpec spec =
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, 8, 0, seeds);
      if (identical) {
        spec.initial.kind = ValueGenSpec::Kind::kIdentical;
        spec.initial.base = 42;
      }
      for (const auto& cell : run_scenario(spec).consensus_cells)
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
      t.add_row({identical ? "identical (symmetric)" : "distinct",
                 aggregate(rounds).to_string()});
    }
    t.print();
  }

  write_bench_json(seeds);
}

void BM_EssConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(
        consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, n, 8, {seed++}), 1);
    benchmark::DoNotOptimize(report);
    state.counters["rounds"] = static_cast<double>(
        report.consensus_cells[0].report.last_decision_round);
  }
}
BENCHMARK(BM_EssConsensus)->Arg(4)->Arg(16)->Arg(32);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
