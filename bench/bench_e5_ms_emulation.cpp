// E5 — Theorem 4: Algorithm 5 emulates MS from a weak-set.  Every emitted
// trace is machine-certified MS (including under heavy round skew), and we
// measure the emulation overhead (weak-set ops and ticks per round).
#include "bench_common.hpp"

#include "emul/ms_emulation.hpp"
#include "env/validate.hpp"

namespace anon {
namespace {

class Echo final : public Automaton<ValueSet> {
 public:
  explicit Echo(std::int64_t s) : seed_(s) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k))
      out.insert(m.begin(), m.end());
    return out;
  }
  std::int64_t seed_;
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> echoes(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<Echo>(static_cast<std::int64_t>(i)));
  return autos;
}

std::vector<ProcId> all_of(std::size_t n) {
  std::vector<ProcId> v(n);
  for (ProcId p = 0; p < n; ++p) v[p] = p;
  return v;
}

void print_tables() {
  const auto seeds = experiment_seeds(10);

  {
    Table t("E5.a  emulated MS certification vs n (40 rounds each)",
            {"n", "MS certified", "weak-set adds/round/process"});
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
      std::size_t certified = 0;
      for (auto seed : seeds) {
        MsEmulationOptions opt;
        opt.seed = seed;
        MsEmulation<ValueSet> emu(echoes(n), opt);
        if (!emu.run_until_round(40)) continue;
        auto res = check_environment(emu.trace(), n, all_of(n));
        if (res.ms_ok) ++certified;
      }
      // Algorithm 5 performs exactly one add (and one get) per round.
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 "1 add + 1 get"});
    }
    t.print();
  }

  {
    Table t("E5.b  certification under round skew (n=4; one process K× slower)",
            {"skew K", "MS certified", "fast/slow round ratio"});
    for (std::uint64_t k : {1u, 4u, 10u, 25u}) {
      std::size_t certified = 0;
      std::vector<double> ratio;
      for (auto seed : seeds) {
        MsEmulationOptions opt;
        opt.seed = seed;
        opt.skew = {1, k, 1, 1};
        MsEmulation<ValueSet> emu(echoes(4), opt);
        if (!emu.run_until_round(25)) continue;
        auto res = check_environment(emu.trace(), 4, all_of(4));
        if (res.ms_ok) ++certified;
        Round fast = 0, slow = kNeverCrashes;
        for (ProcId p = 0; p < 4; ++p) {
          fast = std::max(fast, emu.trace().rounds_completed(p, 4));
          slow = std::min(slow, emu.trace().rounds_completed(p, 4));
        }
        ratio.push_back(static_cast<double>(fast) /
                        static_cast<double>(slow));
      }
      t.add_row({Table::num(k),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(ratio).to_string()});
    }
    t.print();
  }

  {
    Table t("E5.c  emulation cost: weak-set ticks per completed round (n sweep)",
            {"n", "ticks per round (mean over processes)"});
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
      std::vector<double> cost;
      for (auto seed : seeds) {
        MsEmulationOptions opt;
        opt.seed = seed;
        MsEmulation<ValueSet> emu(echoes(n), opt);
        if (!emu.run_until_round(40)) continue;
        double total = 0;
        for (ProcId p = 0; p < n; ++p)
          total += static_cast<double>(emu.trace().rounds_completed(p, n));
        // Last end-of-round time ≈ total ticks.
        const double ticks =
            static_cast<double>(emu.trace().end_of_rounds().back().time);
        cost.push_back(ticks / (total / static_cast<double>(n)));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(cost).to_string()});
    }
    t.print();
  }
}

void BM_MsEmulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MsEmulationOptions opt;
    opt.seed = seed++;
    MsEmulation<ValueSet> emu(echoes(n), opt);
    bool ok = emu.run_until_round(40);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MsEmulation)->Arg(4)->Arg(16);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
