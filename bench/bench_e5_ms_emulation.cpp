// E5 — Theorem 4: Algorithm 5 emulates MS from a weak-set.  Every emitted
// trace is machine-certified MS (including under heavy round skew), and we
// measure the emulation overhead (weak-set ops and ticks per round) plus —
// BENCH_E5.json — the interleaved A/B of the interned watermark engine
// against the retained seed implementation (MsEmulationRef) on a
// scaled-up configuration.
#include "bench_common.hpp"

#include "emul/ms_emulation.hpp"
#include "emul/ms_emulation_ref.hpp"
#include "env/validate.hpp"

namespace anon {
namespace {

class Echo final : public Automaton<ValueSet> {
 public:
  explicit Echo(std::int64_t s) : seed_(s) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k))
      out.insert(m.begin(), m.end());
    return out;
  }
  std::int64_t seed_;
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> echoes(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<Echo>(static_cast<std::int64_t>(i)));
  return autos;
}

std::vector<ProcId> all_of(std::size_t n) {
  std::vector<ProcId> v(n);
  for (ProcId p = 0; p < n; ++p) v[p] = p;
  return v;
}

// The tracked hot path (BENCH_E5.json): the largest emulation cell, seed
// engine (A) vs interned watermark engine (B), interleaved per seed so the
// committed speedup is drift-free.  Certification counts must agree — the
// refactor is a behavioural no-op (byte-identity is pinned by
// tests/emulation_regression_test.cpp; here we cross-check the reports).
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  const std::size_t n = bench::smoke() ? 8 : 32;
  const Round rounds = bench::smoke() ? 25 : 160;
  const int reps = bench::smoke() ? 2 : 3;
  std::size_t certified_ref = 0, certified_new = 0;
  std::size_t deliveries_ref = 0, deliveries_new = 0;
  bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps,
      [&] {
        certified_ref = deliveries_ref = 0;
        for (auto seed : seeds) {
          MsEmulationOptions opt;
          opt.seed = seed;
          MsEmulationRef<ValueSet> emu(echoes(n), opt);
          if (!emu.run_until_round(rounds)) continue;
          deliveries_ref += emu.trace().deliveries().size();
          if (check_environment(emu.trace(), n, all_of(n)).ms_ok)
            ++certified_ref;
        }
      },
      [&] {
        certified_new = deliveries_new = 0;
        for (auto seed : seeds) {
          MsEmulationOptions opt;
          opt.seed = seed;
          MsEmulation<ValueSet> emu(echoes(n), opt);
          if (!emu.run_until_round(rounds)) continue;
          deliveries_new += emu.trace().deliveries().size();
          if (check_environment(emu.trace(), n, all_of(n)).ms_ok)
            ++certified_new;
        }
      });
  BenchJson j;
  j.set("experiment", std::string("E5"));
  j.set("workload",
        std::string("Alg5 MS-from-weak-set emulation: seed std::set engine "
                    "(ref) vs interned watermark engine"));
  j.set("n", static_cast<std::uint64_t>(n));
  j.set("rounds", static_cast<std::uint64_t>(rounds));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ref_s", ab.a);
  j.set("wall_interned_s", ab.b);
  j.set("speedup", ab.ratio());
  j.set("certified_ref", static_cast<std::uint64_t>(certified_ref));
  j.set("certified_interned", static_cast<std::uint64_t>(certified_new));
  j.set("trace_deliveries_ref", static_cast<std::uint64_t>(deliveries_ref));
  j.set("trace_deliveries_interned",
        static_cast<std::uint64_t>(deliveries_new));
  j.set("reports_identical",
        std::string(certified_ref == certified_new &&
                            deliveries_ref == deliveries_new
                        ? "yes"
                        : "NO"));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E5.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ref_s=" << ab.a
              << " interned_s=" << ab.b << " speedup=" << ab.ratio() << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u, 8u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};
  const Round horizon = bench::smoke() ? 15 : 40;

  {
    Table t("E5.a  emulated MS certification vs n (sharded seed grid)",
            {"n", "MS certified", "weak-set adds/round/process"});
    for (std::size_t n : sizes) {
      // One independent emulation per seed: sharded like E1's sweep.
      auto cells = parallel_sweep(seeds.size(), [&](std::size_t i) -> int {
        MsEmulationOptions opt;
        opt.seed = seeds[i];
        MsEmulation<ValueSet> emu(echoes(n), opt);
        if (!emu.run_until_round(horizon)) return 0;
        return check_environment(emu.trace(), n, all_of(n)).ms_ok ? 1 : 0;
      });
      std::size_t certified = 0;
      for (int c : cells) certified += static_cast<std::size_t>(c);
      // Algorithm 5 performs exactly one add (and one get) per round.
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 "1 add + 1 get"});
    }
    t.print();
  }

  {
    Table t("E5.b  certification under round skew (n=4; one process K× slower)",
            {"skew K", "MS certified", "fast/slow round ratio"});
    for (std::uint64_t k : {1u, 4u, 10u, 25u}) {
      struct Cell {
        int certified = 0;
        double ratio = 0;
        int ran = 0;
      };
      auto cells = parallel_sweep(seeds.size(), [&](std::size_t i) -> Cell {
        MsEmulationOptions opt;
        opt.seed = seeds[i];
        opt.skew = {1, k, 1, 1};
        MsEmulation<ValueSet> emu(echoes(4), opt);
        if (!emu.run_until_round(25)) return {};
        Cell c;
        c.ran = 1;
        c.certified = check_environment(emu.trace(), 4, all_of(4)).ms_ok;
        Round fast = 0, slow = kNeverCrashes;
        for (ProcId p = 0; p < 4; ++p) {
          fast = std::max(fast, emu.trace().rounds_completed(p, 4));
          slow = std::min(slow, emu.trace().rounds_completed(p, 4));
        }
        c.ratio = static_cast<double>(fast) / static_cast<double>(slow);
        return c;
      });
      std::size_t certified = 0;
      std::vector<double> ratio;
      for (const Cell& c : cells) {
        certified += static_cast<std::size_t>(c.certified);
        if (c.ran != 0) ratio.push_back(c.ratio);
      }
      t.add_row({Table::num(k),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(ratio).to_string()});
    }
    t.print();
  }

  {
    Table t("E5.c  emulation cost: weak-set ticks per completed round (n sweep)",
            {"n", "ticks per round (mean over processes)"});
    for (std::size_t n : sizes) {
      auto cells = parallel_sweep(seeds.size(), [&](std::size_t i) -> double {
        MsEmulationOptions opt;
        opt.seed = seeds[i];
        MsEmulation<ValueSet> emu(echoes(n), opt);
        if (!emu.run_until_round(horizon)) return -1;
        double total = 0;
        for (ProcId p = 0; p < n; ++p)
          total += static_cast<double>(emu.trace().rounds_completed(p, n));
        // Last end-of-round time ≈ total ticks.
        const double ticks =
            static_cast<double>(emu.trace().end_of_rounds().back().time);
        return ticks / (total / static_cast<double>(n));
      });
      std::vector<double> cost;
      for (double c : cells)
        if (c >= 0) cost.push_back(c);
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(cost).to_string()});
    }
    t.print();
  }

  write_bench_json(seeds);
}

void BM_MsEmulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MsEmulationOptions opt;
    opt.seed = seed++;
    MsEmulation<ValueSet> emu(echoes(n), opt);
    bool ok = emu.run_until_round(40);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MsEmulation)->Arg(4)->Arg(16);

void BM_MsEmulationRef(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    MsEmulationOptions opt;
    opt.seed = seed++;
    MsEmulationRef<ValueSet> emu(echoes(n), opt);
    bool ok = emu.run_until_round(40);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MsEmulationRef)->Arg(4)->Arg(16);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
