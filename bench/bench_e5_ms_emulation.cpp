// E5 — Theorem 4: Algorithm 5 emulates MS from a weak-set.  Every emitted
// trace is machine-certified MS (including under heavy round skew), and we
// measure the emulation overhead (weak-set ops and ticks per round) plus —
// BENCH_E5.json — the interleaved A/B of the interned watermark engine
// against the retained seed implementation (MsEmulationRef) on a
// scaled-up configuration.  All cells run through the emulation scenario
// family (presets e5 / e5-ref / e5-fast).
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec emulation_spec(std::size_t n, Round rounds,
                            const std::vector<std::uint64_t>& seeds,
                            EmulationSpecSection::Engine engine =
                                EmulationSpecSection::Engine::kInterned) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kEmulation;
  spec.seeds = seeds;
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.emulation.engine = engine;
  spec.emulation.rounds = rounds;
  return spec;
}

// The tracked hot path (BENCH_E5.json): the largest emulation cell, seed
// engine (A) vs interned watermark engine (B), interleaved per rep so the
// committed speedup is drift-free.  Certification counts must agree — the
// refactor is a behavioural no-op (byte-identity is pinned by
// tests/emulation_regression_test.cpp; here we cross-check the reports).
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec interned = bench::preset_spec("e5");
  ScenarioSpec ref = bench::preset_spec("e5-ref");
  interned.seeds = seeds;
  ref.seeds = seeds;
  // One label for both sides: the byte-identity check below compares the
  // deterministic report JSON, which carries the scenario name.
  interned.name = ref.name = "e5-ab";
  if (bench::smoke()) {
    for (ScenarioSpec* s : {&interned, &ref}) {
      s->n = 8;
      s->emulation.rounds = 25;
    }
  }
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport rep_ref, rep_new;
  bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps, [&] { rep_ref = run_scenario(ref, 1); },
      [&] { rep_new = run_scenario(interned, 1); });
  auto certified = [](const ScenarioReport& r) {
    std::size_t c = 0;
    for (const auto& cell : r.emulation_cells) c += cell.ms_certified ? 1 : 0;
    return c;
  };
  BenchJson j;
  j.set("experiment", std::string("E5"));
  j.set("workload",
        std::string("Alg5 MS-from-weak-set emulation: seed std::set engine "
                    "(ref) vs interned watermark engine"));
  j.set("n", static_cast<std::uint64_t>(interned.n));
  j.set("rounds", static_cast<std::uint64_t>(interned.emulation.rounds));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ref_s", ab.a);
  j.set("wall_interned_s", ab.b);
  j.set("speedup", ab.ratio());
  j.set("certified_ref", static_cast<std::uint64_t>(certified(rep_ref)));
  j.set("certified_interned", static_cast<std::uint64_t>(certified(rep_new)));
  j.set("trace_deliveries_ref", rep_ref.deliveries);
  j.set("trace_deliveries_interned", rep_new.deliveries);
  // The engines must be observationally identical: the deterministic
  // report JSON (everything but timing) has to match byte for byte.
  j.set("reports_identical",
        std::string(rep_ref.to_json_string(false) ==
                            rep_new.to_json_string(false)
                        ? "yes"
                        : "NO"));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E5.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ref_s=" << ab.a
              << " interned_s=" << ab.b << " speedup=" << ab.ratio() << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u, 8u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};
  const Round horizon = bench::smoke() ? 15 : 40;

  {
    Table t("E5.a  emulated MS certification vs n (sharded seed grid)",
            {"n", "MS certified", "weak-set adds/round/process"});
    for (std::size_t n : sizes) {
      std::size_t certified = 0;
      for (const auto& cell :
           run_scenario(emulation_spec(n, horizon, seeds)).emulation_cells)
        certified += cell.ms_certified ? 1 : 0;
      // Algorithm 5 performs exactly one add (and one get) per round.
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 "1 add + 1 get"});
    }
    t.print();
  }

  {
    Table t("E5.b  certification under round skew (n=4; one process K× slower)",
            {"skew K", "MS certified", "fast/slow round ratio"});
    for (std::uint64_t k : {1u, 4u, 10u, 25u}) {
      ScenarioSpec spec = emulation_spec(4, 25, seeds);
      spec.emulation.skew = {1, k, 1, 1};
      std::size_t certified = 0;
      std::vector<double> ratio;
      for (const auto& cell : run_scenario(spec).emulation_cells) {
        certified += cell.ms_certified ? 1 : 0;
        if (cell.ran && cell.rounds_min > 0)
          ratio.push_back(static_cast<double>(cell.rounds_max) /
                          static_cast<double>(cell.rounds_min));
      }
      t.add_row({Table::num(k),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(ratio).to_string()});
    }
    t.print();
  }

  {
    Table t("E5.c  emulation cost: weak-set ticks per completed round (n sweep)",
            {"n", "ticks per round (mean over processes)"});
    for (std::size_t n : sizes) {
      std::vector<double> cost;
      for (const auto& cell :
           run_scenario(emulation_spec(n, horizon, seeds)).emulation_cells) {
        if (!cell.ran || cell.rounds_total == 0) continue;
        const double mean_rounds = static_cast<double>(cell.rounds_total) /
                                   static_cast<double>(n);
        cost.push_back(static_cast<double>(cell.ticks) / mean_rounds);
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(cost).to_string()});
    }
    t.print();
  }

  write_bench_json(seeds);
}

void BM_MsEmulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(emulation_spec(n, 40, {seed++}), 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_MsEmulation)->Arg(4)->Arg(16);

void BM_MsEmulationRef(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report =
        run_scenario(emulation_spec(n, 40, {seed++},
                                    EmulationSpecSection::Engine::kRef),
                     1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_MsEmulationRef)->Arg(4)->Arg(16);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
