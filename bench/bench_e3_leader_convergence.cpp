// E3 — pseudo leader election convergence (Lemmas 4–6): rounds until the
// self-considered-leader set stabilizes on the eventual source's history,
// compared against the ID-based Ω accusation tracker.  Both probes are
// scenario families now (consensus probe=leader-convergence, omega
// probe=leader-convergence); BENCH_E3.json tracks the two preset cells
// through the unified emitter.
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec pseudo_spec(std::size_t n, Round stab, Round horizon,
                         const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = seeds;
  spec.env_kind = EnvKind::kESS;
  spec.n = n;
  spec.stabilization = stab;
  spec.consensus.algo = ConsensusAlgo::kEss;
  spec.consensus.probe = ConsensusSpecSection::Probe::kLeaderConvergence;
  spec.consensus.horizon = horizon;
  spec.consensus.record_trace = false;
  return spec;
}

ScenarioSpec omega_spec(std::size_t n, Round stab, Round horizon,
                        const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kOmega;
  spec.seeds = seeds;
  spec.env_kind = EnvKind::kESS;
  spec.n = n;
  spec.stabilization = stab;
  spec.omega.probe = OmegaSpecSection::Probe::kLeaderConvergence;
  spec.omega.horizon = horizon;
  return spec;
}

SeriesStat pseudo_convergence(const ScenarioReport& report) {
  std::vector<double> rounds;
  for (const auto& cell : report.consensus_cells)
    rounds.push_back(static_cast<double>(cell.convergence_round));
  return aggregate(std::move(rounds));
}

SeriesStat omega_convergence(const ScenarioReport& report) {
  std::vector<double> rounds;
  for (const auto& cell : report.omega_cells)
    rounds.push_back(static_cast<double>(cell.convergence_round));
  return aggregate(std::move(rounds));
}

// The tracked workload (BENCH_E3.json): the two preset probes (ESS n=5,
// horizon 300), interleaved A/B so the committed pseudo-vs-Ω gap is
// drift-free.
void write_bench_json() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 8);
  ScenarioSpec pseudo = bench::preset_spec("e3-pseudo");
  ScenarioSpec omega = bench::preset_spec("e3-omega");
  pseudo.seeds = seeds;
  omega.seeds = seeds;
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport rep_pseudo, rep_omega;
  const bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps, [&] { rep_pseudo = run_scenario(pseudo, 1); },
      [&] { rep_omega = run_scenario(omega, 1); });
  BenchJson j;
  j.set("experiment", std::string("E3"));
  j.set("workload",
        std::string("leader convergence, ESS n=5 stab=0 horizon=300: pseudo "
                    "leaders (histories) vs Omega (IDs)"));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_pseudo_s", ab.a);
  j.set("wall_omega_s", ab.b);
  j.set("mean_convergence_pseudo", pseudo_convergence(rep_pseudo).mean);
  j.set("mean_convergence_omega", omega_convergence(rep_omega).mean);
  j.set("deliveries_pseudo", rep_pseudo.deliveries);
  j.set("deliveries_omega", rep_omega.deliveries);
  j.set("bytes_pseudo", rep_pseudo.bytes);
  j.set("bytes_omega", rep_omega.bytes);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E3.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: pseudo_s=" << ab.a
              << " omega_s=" << ab.b << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 8);
  const Round horizon = 300;

  {
    Table t("E3.a  leader convergence round vs n (stabilization=0, horizon=300)",
            {"n", "pseudo-leaders (histories, anonymous)",
             "Ω accusations (IDs)"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      // Both election races shard their seed lists inside the driver;
      // every cell builds its own net, so sharding cannot perturb results.
      const SeriesStat pseudo =
          pseudo_convergence(run_scenario(pseudo_spec(n, 0, horizon, seeds)));
      const SeriesStat omega =
          omega_convergence(run_scenario(omega_spec(n, 0, horizon, seeds)));
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 pseudo.to_string(), omega.to_string()});
    }
    t.print();
  }

  {
    Table t("E3.b  leader convergence vs stabilization round (n=5)",
            {"stabilization", "pseudo-leaders", "Ω (IDs)",
             "pseudo - stabilization"});
    for (Round stab : {0u, 10u, 40u, 100u}) {
      const auto pseudo_report =
          run_scenario(pseudo_spec(5, stab, horizon + stab, seeds));
      const SeriesStat omega = omega_convergence(
          run_scenario(omega_spec(5, stab, horizon + stab, seeds)));
      std::vector<double> pseudo, slack;
      for (const auto& cell : pseudo_report.consensus_cells) {
        pseudo.push_back(static_cast<double>(cell.convergence_round));
        slack.push_back(static_cast<double>(cell.convergence_round) -
                        static_cast<double>(stab));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(stab)),
                 aggregate(pseudo).to_string(), omega.to_string(),
                 aggregate(slack).to_string()});
    }
    t.print();
  }

  write_bench_json();
}

void BM_PseudoLeaderElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(pseudo_spec(n, 0, 200, {seed++}), 1);
    benchmark::DoNotOptimize(report);
    state.counters["conv_round"] = static_cast<double>(
        report.consensus_cells[0].convergence_round);
  }
}
BENCHMARK(BM_PseudoLeaderElection)->Arg(5)->Arg(17);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
