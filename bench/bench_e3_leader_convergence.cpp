// E3 — pseudo leader election convergence (Lemmas 4–6): rounds until the
// self-considered-leader set stabilizes on the eventual source's history,
// compared against the ID-based Ω accusation tracker.  Decisions are
// disabled to observe the election in steady state.
#include "bench_common.hpp"

#include "algo/ess_consensus.hpp"
#include "baseline/omega_consensus.hpp"

namespace anon {
namespace {

// Rounds after stabilization until leaders == {source history} and stay so.
Round pseudo_leader_convergence(std::size_t n, Round stab, std::uint64_t seed,
                                Round horizon) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = n;
  env.seed = seed;
  env.stabilization = stab;
  HistoryArena arena;
  EssConsensus::Options no_decide;
  no_decide.decide = false;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (auto v : distinct_values(n))
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, no_decide));
  EnvDelayModel delays(env, CrashPlan{});
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.max_rounds = horizon;
  opt.record_trace = false;
  LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);

  Round last_bad = 0;
  net.run([&](const LockstepNet<EssMessage>& nn) {
    if (nn.round() < 2) return false;
    const auto& s = dynamic_cast<const EssConsensus&>(nn.process(src).automaton());
    bool good = s.considers_self_leader();
    for (ProcId p = 0; p < nn.n(); ++p) {
      const auto& a = dynamic_cast<const EssConsensus&>(nn.process(p).automaton());
      if (a.considers_self_leader() && !(a.history() == s.history()))
        good = false;
    }
    if (!good) last_bad = nn.round();
    return false;
  });
  return last_bad + 1;  // first round of the converged suffix
}

// Rounds until everyone's Ω estimate equals the source and stays so.
Round omega_convergence(std::size_t n, Round stab, std::uint64_t seed,
                        Round horizon) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = n;
  env.seed = seed;
  env.stabilization = stab;
  std::vector<std::unique_ptr<Automaton<OmegaMessage>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<OmegaConsensus>(
        Value(100 + static_cast<std::int64_t>(i)), i, 2, /*decide=*/false));
  EnvDelayModel delays(env, CrashPlan{});
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.max_rounds = horizon;
  opt.record_trace = false;
  LockstepNet<OmegaMessage> net(std::move(autos), delays, CrashPlan{}, opt);

  Round last_bad = 0;
  net.run([&](const LockstepNet<OmegaMessage>& nn) {
    for (ProcId p = 0; p < nn.n(); ++p) {
      const auto& a =
          dynamic_cast<const OmegaConsensus&>(nn.process(p).automaton());
      if (a.current_leader() != src) last_bad = nn.round();
    }
    return false;
  });
  return last_bad + 1;
}

void print_tables() {
  const auto seeds = experiment_seeds(8);
  const Round horizon = 300;

  {
    Table t("E3.a  leader convergence round vs n (stabilization=0, horizon=300)",
            {"n", "pseudo-leaders (histories, anonymous)",
             "Ω accusations (IDs)"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      // Both election races sweep their seeds in parallel (core/sweep.hpp);
      // every cell builds its own net, so sharding cannot perturb results.
      const SeriesStat pseudo =
          sweep_aggregate(seeds, [&](std::uint64_t seed) {
            return static_cast<double>(
                pseudo_leader_convergence(n, 0, seed, horizon));
          });
      const SeriesStat omega = sweep_aggregate(seeds, [&](std::uint64_t seed) {
        return static_cast<double>(omega_convergence(n, 0, seed, horizon));
      });
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 pseudo.to_string(), omega.to_string()});
    }
    t.print();
  }

  {
    Table t("E3.b  leader convergence vs stabilization round (n=5)",
            {"stabilization", "pseudo-leaders", "Ω (IDs)",
             "pseudo - stabilization"});
    for (Round stab : {0u, 10u, 40u, 100u}) {
      const std::vector<double> pseudo = parallel_sweep(
          seeds.size(), [&](std::size_t i) {
            return static_cast<double>(
                pseudo_leader_convergence(5, stab, seeds[i], horizon + stab));
          });
      const SeriesStat omega = sweep_aggregate(seeds, [&](std::uint64_t seed) {
        return static_cast<double>(
            omega_convergence(5, stab, seed, horizon + stab));
      });
      std::vector<double> slack;
      for (double p : pseudo) slack.push_back(p - static_cast<double>(stab));
      t.add_row({Table::num(static_cast<std::uint64_t>(stab)),
                 aggregate(pseudo).to_string(), omega.to_string(),
                 aggregate(slack).to_string()});
    }
    t.print();
  }
}

void BM_PseudoLeaderElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Round r = pseudo_leader_convergence(n, 0, seed++, 200);
    benchmark::DoNotOptimize(r);
    state.counters["conv_round"] = static_cast<double>(r);
  }
}
BENCHMARK(BM_PseudoLeaderElection)->Arg(5)->Arg(17);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
