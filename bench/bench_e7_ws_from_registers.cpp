// E7 — Propositions 2/3: weak-sets from registers.  Spec violations
// (always 0) under adversarial interleavings; step costs per operation
// (Prop 2 gets cost n reads; Prop 3 gets cost |domain| reads).
#include "bench_common.hpp"

#include "weakset/ws_from_mwmr.hpp"
#include "weakset/ws_from_swmr.hpp"

namespace anon {
namespace {

void print_tables() {
  const auto seeds = experiment_seeds(10);

  {
    Table t("E7.a  Prop 2 (SWMR, known IDs): spec under adversarial interleavings",
            {"n", "ops", "spec violations", "steps/get"});
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
      std::size_t violations = 0;
      for (auto seed : seeds) {
        std::vector<ShmWsScriptOp> script;
        for (std::uint64_t i = 0; i < 30; ++i) {
          script.push_back({i * 2, i % n, true,
                            Value(static_cast<std::int64_t>(i % 13))});
          script.push_back({i * 2 + 1, (i + 1) % n, false, Value()});
        }
        auto records = run_ws_from_swmr(n, script, seed);
        if (!check_weak_set_spec(records).ok) ++violations;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)), "60",
                 Table::num(static_cast<std::uint64_t>(violations)),
                 Table::num(static_cast<std::uint64_t>(n))});
    }
    t.print();
  }

  {
    Table t("E7.b  Prop 3 (MWMR, finite domain, anonymous): spec + step cost",
            {"|domain|", "spec violations", "steps/get", "steps/add"});
    for (std::size_t d : {4u, 16u, 64u}) {
      std::vector<Value> domain;
      for (std::size_t i = 0; i < d; ++i)
        domain.push_back(Value(static_cast<std::int64_t>(i)));
      std::size_t violations = 0;
      for (auto seed : seeds) {
        std::vector<MwmrWsScriptOp> script;
        for (std::uint64_t i = 0; i < 30; ++i) {
          script.push_back({i * 2, i % 5, true,
                            Value(static_cast<std::int64_t>(i % d))});
          script.push_back({i * 2 + 1, (i + 2) % 5, false, Value()});
        }
        auto records = run_ws_from_mwmr(domain, script, seed);
        if (!check_weak_set_spec(records).ok) ++violations;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(d)),
                 Table::num(static_cast<std::uint64_t>(violations)),
                 Table::num(static_cast<std::uint64_t>(d)), "1"});
    }
    t.print();
    std::cout << "  (Prop 2 needs identities but any domain; Prop 3 is fully\n"
                 "   anonymous but pays gets linear in the domain size — the\n"
                 "   two sides of the paper's knowledge trade-off.)\n";
  }
}

void BM_WsFromSwmr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<ShmWsScriptOp> script;
    for (std::uint64_t i = 0; i < 30; ++i) {
      script.push_back({i * 2, i % n, true, Value(static_cast<std::int64_t>(i))});
      script.push_back({i * 2 + 1, (i + 1) % n, false, Value()});
    }
    auto records = run_ws_from_swmr(n, script, seed++);
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_WsFromSwmr)->Arg(4)->Arg(16);

void BM_WsFromMwmr(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  std::vector<Value> domain;
  for (std::size_t i = 0; i < d; ++i)
    domain.push_back(Value(static_cast<std::int64_t>(i)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<MwmrWsScriptOp> script;
    for (std::uint64_t i = 0; i < 30; ++i) {
      script.push_back({i * 2, i % 5, true,
                        Value(static_cast<std::int64_t>(i % d))});
      script.push_back({i * 2 + 1, (i + 2) % 5, false, Value()});
    }
    auto records = run_ws_from_mwmr(domain, script, seed++);
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_WsFromMwmr)->Arg(4)->Arg(64);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
