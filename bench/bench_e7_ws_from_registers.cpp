// E7 — Propositions 2/3: weak-sets from registers.  Spec violations
// (always 0) under adversarial interleavings; step costs per operation
// (Prop 2 gets cost n reads; Prop 3 gets cost |domain| reads).  The
// construction sweeps run through the weakset-shm scenario family.
// BENCH_E7.json tracks the whole-history certification cost: the seed
// reads×writes² regularity checker (kept as ref_check_regular_register)
// vs the sort-plus-sweep rewrite, interleaved, plus the sweep checker's
// wall clock on a 100k-operation history and the scaled shm-runner wall.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "weakset/reference_checkers.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec swmr_spec(std::size_t n, std::uint64_t ops,
                       const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kWeaksetShm;
  spec.seeds = seeds;
  spec.n = n;
  spec.shm.construction = ShmSpecSection::Construction::kSwmr;
  spec.shm.gen_ops = ops;
  return spec;
}

ScenarioSpec mwmr_spec(std::uint64_t domain, std::uint64_t ops,
                       const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kWeaksetShm;
  spec.seeds = seeds;
  spec.shm.construction = ShmSpecSection::Construction::kMwmr;
  spec.shm.gen_ops = ops;
  spec.shm.domain = domain;
  return spec;
}

std::size_t violations_of(const ScenarioReport& report) {
  std::size_t violations = 0;
  for (const auto& cell : report.shm_cells) violations += cell.spec_ok ? 0 : 1;
  return violations;
}

// A valid-by-construction register history: sequential non-overlapping
// writes, reads returning the latest completed write (or a concurrent
// one), so the checkers exercise their accept path end to end.
std::vector<RegOpRecord> synth_reg_history(std::size_t n_ops,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RegOpRecord> ops;
  ops.reserve(n_ops);
  std::optional<Value> last_completed;  // value of newest completed write
  std::int64_t next_val = 1;
  std::uint64_t t = 1;
  while (ops.size() < n_ops) {
    if (rng.chance(0.4)) {
      const Value v(next_val++);
      const std::uint64_t len = 1 + rng.below(4);
      ops.push_back({RegOpRecord::Kind::kWrite, v, t, t + len, 0});
      t += len + 1;  // writes are sequential: each completes before the next
      last_completed = v;
    } else {
      // A read strictly after the last write completed returns its value
      // (⊥ while no write has completed yet).
      ops.push_back({RegOpRecord::Kind::kRead, last_completed, t,
                     t + rng.below(2), 1 + ops.size() % 3});
      t += 1 + rng.below(3);
    }
  }
  return ops;
}

// The tracked hot path (BENCH_E7.json).
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  const int reps = bench::smoke() ? 2 : 3;
  // The reference checker is ~cubic on this history shape (per read it
  // rescans every write's whole superseder candidate prefix), so the A/B
  // history must stay small for the A side to terminate at all; the sweep
  // side additionally proves 100k ops below.
  const std::size_t ab_ops = bench::smoke() ? 1000 : 4000;
  const std::size_t big_ops = bench::smoke() ? 10000 : 100000;

  // (1) Interleaved A/B: seed quadratic/cubic checker vs sweep checker on
  // the same valid histories (one per seed).
  std::vector<std::vector<RegOpRecord>> histories;
  for (std::size_t i = 0; i < 2; ++i)
    histories.push_back(synth_reg_history(ab_ops, 1000 + i));
  std::size_t ok_ref = 0, ok_sweep = 0;
  bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps,
      [&] {
        ok_ref = 0;
        for (const auto& h : histories)
          if (ref_check_regular_register(h).ok) ++ok_ref;
      },
      [&] {
        ok_sweep = 0;
        for (const auto& h : histories)
          if (check_regular_register(h).ok) ++ok_sweep;
      });

  // (2) The acceptance bar: a 100k-op history certified in one sweep.
  const auto big = synth_reg_history(big_ops, 4242);
  bool big_ok = false;
  const double big_s =
      bench::best_seconds(reps, [&] { big_ok = check_regular_register(big).ok; });

  // (3) The scaled shm-runner workload through the driver: the preset
  // `e7-swmr` Prop-2 construction certified by the sweep checker
  // (sweep-vs-ref verdict agreement is pinned in tests/spec_sweep_test.cpp).
  ScenarioSpec spec = bench::preset_spec("e7-swmr");
  spec.seeds = seeds;
  if (bench::smoke()) {
    spec.n = 4;
    spec.shm.gen_ops = 100;
  }
  ScenarioReport report;
  const double run_s =
      bench::best_seconds(reps, [&] { report = run_scenario(spec); });

  BenchJson j;
  j.set("experiment", std::string("E7"));
  j.set("workload",
        std::string("regular-register certification: seed reads*writes^2 "
                    "checker (ref) vs sort-plus-sweep; Prop-2 shm sweep"));
  j.set("checker_ab_ops", static_cast<std::uint64_t>(ab_ops));
  j.set("checker_ab_histories", static_cast<std::uint64_t>(histories.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ref_s", ab.a);
  j.set("wall_sweep_s", ab.b);
  j.set("speedup", ab.ratio());
  j.set("verdicts_identical", std::string(ok_ref == ok_sweep ? "yes" : "NO"));
  j.set("certify_big_ops", static_cast<std::uint64_t>(big_ops));
  j.set("certify_big_s", big_s);
  j.set("certify_big_ok", static_cast<std::uint64_t>(big_ok ? 1 : 0));
  j.set("shm_sweep_n", static_cast<std::uint64_t>(spec.n));
  j.set("shm_sweep_script_ops",
        static_cast<std::uint64_t>(2 * spec.shm.gen_ops));
  j.set("shm_sweep_cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("shm_sweep_wall_s", run_s);
  j.set("shm_sweep_violations",
        static_cast<std::uint64_t>(violations_of(report)));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E7.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ref_s=" << ab.a
              << " sweep_s=" << ab.b << " speedup=" << ab.ratio()
              << " certify_" << big_ops << "_s=" << big_s << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::uint64_t ops = bench::smoke() ? 30 : 100;
  const std::vector<std::size_t> swmr_sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};
  const std::vector<std::size_t> domains =
      bench::smoke() ? std::vector<std::size_t>{4u, 16u}
                     : std::vector<std::size_t>{4u, 16u, 64u, 128u};

  {
    Table t("E7.a  Prop 2 (SWMR, known IDs): spec under adversarial interleavings",
            {"n", "ops", "spec violations", "steps/get"});
    for (std::size_t n : swmr_sizes) {
      const auto report = run_scenario(swmr_spec(n, ops, seeds));
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(2 * ops),
                 Table::num(static_cast<std::uint64_t>(violations_of(report))),
                 Table::num(static_cast<std::uint64_t>(n))});
    }
    t.print();
  }

  {
    Table t("E7.b  Prop 3 (MWMR, finite domain, anonymous): spec + step cost",
            {"|domain|", "spec violations", "steps/get", "steps/add"});
    for (std::size_t d : domains) {
      const auto report = run_scenario(mwmr_spec(d, ops, seeds));
      t.add_row({Table::num(static_cast<std::uint64_t>(d)),
                 Table::num(static_cast<std::uint64_t>(violations_of(report))),
                 Table::num(static_cast<std::uint64_t>(d)), "1"});
    }
    t.print();
    std::cout << "  (Prop 2 needs identities but any domain; Prop 3 is fully\n"
                 "   anonymous but pays gets linear in the domain size — the\n"
                 "   two sides of the paper's knowledge trade-off.)\n";
  }

  write_bench_json(seeds);
}

void BM_WsFromSwmr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec = swmr_spec(n, 30, {seed++});
    spec.shm.domain = 30;  // every add writes a distinct value
    const auto report = run_scenario(spec, 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WsFromSwmr)->Arg(4)->Arg(16);

void BM_WsFromMwmr(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(mwmr_spec(d, 30, {seed++}), 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WsFromMwmr)->Arg(4)->Arg(64);

void BM_RegCheckerSweep(benchmark::State& state) {
  const auto ops = static_cast<std::size_t>(state.range(0));
  const auto history = synth_reg_history(ops, 7);
  for (auto _ : state) {
    auto res = check_regular_register(history);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_RegCheckerSweep)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
