// E4 — Theorem 3: Algorithm 4 implements a weak-set in MS.  Spec
// violations (always 0), add latency in rounds vs n / link quality /
// crashes; gets are free (local).  BENCH_E4.json tracks the whole-history
// certification cost: the seed gets×adds checker (kept as
// ref_check_weak_set_spec) vs the completed-add-watermark sweep,
// interleaved, plus the sweep checker on a 100k-operation history.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/reference_checkers.hpp"

namespace anon {
namespace {

std::vector<WsScriptOp> workload(std::size_t n, int ops) {
  std::vector<WsScriptOp> script;
  for (int i = 0; i < ops; ++i) {
    script.push_back({static_cast<Round>(2 + 3 * i),
                      static_cast<std::size_t>(i % n), true, Value(100 + i)});
    script.push_back({static_cast<Round>(3 + 3 * i),
                      static_cast<std::size_t>((i + 1) % n), false, Value()});
  }
  return script;
}

// A valid-by-construction weak-set history over a bounded value domain —
// the shape Algorithm 4 histories have (every value eventually everywhere,
// gets grow towards the full domain).  Adds are generated in start order;
// each get returns every value already completed plus a coin-flip subset
// of the concurrently-added ones.
std::vector<WsOpRecord> synth_ws_history(std::size_t n_ops,
                                         std::int64_t domain,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WsOpRecord> ops;
  ops.reserve(n_ops);
  ValueSet completed;            // values with some add completed
  std::vector<std::pair<std::uint64_t, Value>> completions;  // (end, v) pending
  std::size_t next_done = 0;     // completions merged into `completed`
  std::uint64_t t = 1;
  while (ops.size() < n_ops) {
    // Merge adds that completed by now (completions are generated in
    // nondecreasing end order below, so this is a cursor).
    while (next_done < completions.size() &&
           completions[next_done].first < t)
      completed.insert(completions[next_done++].second);
    if (rng.chance(0.5)) {
      WsOpRecord add;
      add.kind = WsOpRecord::Kind::kAdd;
      add.value = Value(static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(domain))));
      add.start = t;
      add.end = t + 1 + rng.below(3);
      add.process = ops.size() % 7;
      completions.emplace_back(add.end, add.value);
      // Keep the completion cursor's order: bounded end jitter, sort tail.
      for (std::size_t i = completions.size() - 1;
           i > next_done && completions[i].first < completions[i - 1].first;
           --i)
        std::swap(completions[i], completions[i - 1]);
      ops.push_back(std::move(add));
    } else {
      WsOpRecord get;
      get.kind = WsOpRecord::Kind::kGet;
      get.start = t;
      get.end = t + rng.below(2);
      get.process = ops.size() % 7;
      get.result = completed;  // every completed value: condition (1)
      // Plus any concurrent adds, at a coin flip: condition (2) allows it.
      for (std::size_t i = next_done; i < completions.size(); ++i)
        if (rng.chance(0.5)) get.result.insert(completions[i].second);
      ops.push_back(std::move(get));
    }
    t += 1 + rng.below(2);
  }
  return ops;
}

// The tracked hot path (BENCH_E4.json).
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  const int reps = bench::smoke() ? 2 : 3;
  const std::size_t ab_ops = bench::smoke() ? 2000 : 20000;
  const std::size_t big_ops = bench::smoke() ? 10000 : 100000;

  // (1) Interleaved A/B: seed gets×adds checker vs watermark sweep on the
  // same valid histories.
  std::vector<std::vector<WsOpRecord>> histories;
  for (std::size_t i = 0; i < 3; ++i)
    histories.push_back(synth_ws_history(ab_ops, 16, 2000 + i));
  std::size_t ok_ref = 0, ok_sweep = 0;
  bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps,
      [&] {
        ok_ref = 0;
        for (const auto& h : histories)
          if (ref_check_weak_set_spec(h).ok) ++ok_ref;
      },
      [&] {
        ok_sweep = 0;
        for (const auto& h : histories)
          if (check_weak_set_spec(h).ok) ++ok_sweep;
      });

  // (2) The acceptance bar: 100k operations certified in one sweep.
  const auto big = synth_ws_history(big_ops, 16, 4242);
  bool big_ok = false;
  const double big_s =
      bench::best_seconds(reps, [&] { big_ok = check_weak_set_spec(big).ok; });

  // (3) Scaled Algorithm 4 harness wall (records + certification).
  const std::size_t run_n = bench::smoke() ? 4 : 16;
  const int run_ops = bench::smoke() ? 12 : 48;
  std::size_t run_violations = 0;
  const double run_s = bench::best_seconds(reps, [&] {
    run_violations = 0;
    auto cells = parallel_sweep(seeds.size(), [&](std::size_t i) -> int {
      EnvParams env;
      env.kind = EnvKind::kMS;
      env.n = run_n;
      env.seed = seeds[i];
      auto run = run_ms_weak_set(env, CrashPlan{}, workload(run_n, run_ops),
                                 50, false);
      return check_weak_set_spec(run.records).ok ? 0 : 1;
    });
    for (int v : cells) run_violations += static_cast<std::size_t>(v);
  });

  BenchJson j;
  j.set("experiment", std::string("E4"));
  j.set("workload",
        std::string("weak-set spec certification: seed gets*adds checker "
                    "(ref) vs completed-add-watermark sweep; Alg4 harness"));
  j.set("checker_ab_ops", static_cast<std::uint64_t>(ab_ops));
  j.set("checker_ab_histories", static_cast<std::uint64_t>(histories.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ref_s", ab.a);
  j.set("wall_sweep_s", ab.b);
  j.set("speedup", ab.ratio());
  j.set("verdicts_identical", std::string(ok_ref == ok_sweep ? "yes" : "NO"));
  j.set("certify_big_ops", static_cast<std::uint64_t>(big_ops));
  j.set("certify_big_s", big_s);
  j.set("certify_big_ok", static_cast<std::uint64_t>(big_ok ? 1 : 0));
  j.set("alg4_sweep_n", static_cast<std::uint64_t>(run_n));
  j.set("alg4_sweep_script_ops", static_cast<std::uint64_t>(2 * run_ops));
  j.set("alg4_sweep_cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("alg4_sweep_wall_s", run_s);
  j.set("alg4_sweep_violations", static_cast<std::uint64_t>(run_violations));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E4.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ref_s=" << ab.a
              << " sweep_s=" << ab.b << " speedup=" << ab.ratio()
              << " certify_" << big_ops << "_s=" << big_s << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u, 8u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};

  {
    Table t("E4.a  weak-set in MS: add latency (rounds) vs n",
            {"n", "add latency (rounds)", "spec violations", "env=MS certified"});
    for (std::size_t n : sizes) {
      std::vector<double> lat;
      std::size_t violations = 0, certified = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = n;
        env.seed = seed;
        auto run = run_ms_weak_set(env, CrashPlan{}, workload(n, 12));
        lat.push_back(static_cast<double>(run.add_latency_rounds_total) /
                      static_cast<double>(run.adds));
        if (!check_weak_set_spec(run.records).ok) ++violations;
        if (run.env_check.ms_ok) ++certified;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(lat).to_string(),
                 Table::num(static_cast<std::uint64_t>(violations)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size()))});
    }
    t.print();
  }

  {
    Table t("E4.b  add latency vs link quality (n=8; timely_prob of non-source links)",
            {"timely_prob", "add latency (rounds)"});
    for (double p : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      std::vector<double> lat;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = 8;
        env.seed = seed;
        env.timely_prob = p;
        auto run = run_ms_weak_set(env, CrashPlan{}, workload(8, 12));
        lat.push_back(static_cast<double>(run.add_latency_rounds_total) /
                      static_cast<double>(run.adds));
      }
      t.add_row({Table::num(p, 2), aggregate(lat).to_string()});
    }
    t.print();
  }

  {
    Table t("E4.c  crash resilience (n=8): adds by survivors still complete",
            {"crashes f", "all survivor adds completed", "spec violations"});
    for (std::size_t f : {0u, 3u, 6u}) {
      std::size_t completed = 0, violations = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = 8;
        env.seed = seed;
        auto crashes = random_crashes(8, f, 20, seed + 3);
        auto run = run_ms_weak_set(env, crashes, workload(8, 12));
        completed += run.all_adds_completed ? 1 : 0;
        if (!check_weak_set_spec(run.records).ok) ++violations;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(completed)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(violations))});
    }
    t.print();
  }

  write_bench_json(seeds);
}

void BM_WeakSetMs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EnvParams env;
    env.kind = EnvKind::kMS;
    env.n = n;
    env.seed = seed++;
    auto run = run_ms_weak_set(env, CrashPlan{}, workload(n, 12), 50, false);
    benchmark::DoNotOptimize(run);
    state.counters["add_rounds"] =
        static_cast<double>(run.add_latency_rounds_total) /
        static_cast<double>(run.adds);
  }
}
BENCHMARK(BM_WeakSetMs)->Arg(4)->Arg(16)->Arg(32);

void BM_WsCheckerSweep(benchmark::State& state) {
  const auto ops = static_cast<std::size_t>(state.range(0));
  const auto history = synth_ws_history(ops, 16, 7);
  for (auto _ : state) {
    auto res = check_weak_set_spec(history);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_WsCheckerSweep)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
