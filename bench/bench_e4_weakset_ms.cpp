// E4 — Theorem 3: Algorithm 4 implements a weak-set in MS.  Spec
// violations (always 0), add latency in rounds vs n / link quality /
// crashes; gets are free (local).  Harness cells run through the weakset
// scenario family; BENCH_E4.json additionally tracks the whole-history
// certification cost: the seed gets×adds checker (kept as
// ref_check_weak_set_spec) vs the completed-add-watermark sweep,
// interleaved, plus the sweep checker on a 100k-operation history.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/reference_checkers.hpp"

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec weakset_spec(std::size_t n, std::size_t ops,
                          const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kWeakset;
  spec.seeds = seeds;
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.weakset.gen_ops = ops;
  return spec;
}

// A valid-by-construction weak-set history over a bounded value domain —
// the shape Algorithm 4 histories have (every value eventually everywhere,
// gets grow towards the full domain).  Adds are generated in start order;
// each get returns every value already completed plus a coin-flip subset
// of the concurrently-added ones.
std::vector<WsOpRecord> synth_ws_history(std::size_t n_ops,
                                         std::int64_t domain,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WsOpRecord> ops;
  ops.reserve(n_ops);
  ValueSet completed;            // values with some add completed
  std::vector<std::pair<std::uint64_t, Value>> completions;  // (end, v) pending
  std::size_t next_done = 0;     // completions merged into `completed`
  std::uint64_t t = 1;
  while (ops.size() < n_ops) {
    // Merge adds that completed by now (completions are generated in
    // nondecreasing end order below, so this is a cursor).
    while (next_done < completions.size() &&
           completions[next_done].first < t)
      completed.insert(completions[next_done++].second);
    if (rng.chance(0.5)) {
      WsOpRecord add;
      add.kind = WsOpRecord::Kind::kAdd;
      add.value = Value(static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(domain))));
      add.start = t;
      add.end = t + 1 + rng.below(3);
      add.process = ops.size() % 7;
      completions.emplace_back(add.end, add.value);
      // Keep the completion cursor's order: bounded end jitter, sort tail.
      for (std::size_t i = completions.size() - 1;
           i > next_done && completions[i].first < completions[i - 1].first;
           --i)
        std::swap(completions[i], completions[i - 1]);
      ops.push_back(std::move(add));
    } else {
      WsOpRecord get;
      get.kind = WsOpRecord::Kind::kGet;
      get.start = t;
      get.end = t + rng.below(2);
      get.process = ops.size() % 7;
      get.result = completed;  // every completed value: condition (1)
      // Plus any concurrent adds, at a coin flip: condition (2) allows it.
      for (std::size_t i = next_done; i < completions.size(); ++i)
        if (rng.chance(0.5)) get.result.insert(completions[i].second);
      ops.push_back(std::move(get));
    }
    t += 1 + rng.below(2);
  }
  return ops;
}

// The tracked hot path (BENCH_E4.json).
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  const int reps = bench::smoke() ? 2 : 3;
  const std::size_t ab_ops = bench::smoke() ? 2000 : 20000;
  const std::size_t big_ops = bench::smoke() ? 10000 : 100000;

  // (1) Interleaved A/B: seed gets×adds checker vs watermark sweep on the
  // same valid histories.
  std::vector<std::vector<WsOpRecord>> histories;
  for (std::size_t i = 0; i < 3; ++i)
    histories.push_back(synth_ws_history(ab_ops, 16, 2000 + i));
  std::size_t ok_ref = 0, ok_sweep = 0;
  bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps,
      [&] {
        ok_ref = 0;
        for (const auto& h : histories)
          if (ref_check_weak_set_spec(h).ok) ++ok_ref;
      },
      [&] {
        ok_sweep = 0;
        for (const auto& h : histories)
          if (check_weak_set_spec(h).ok) ++ok_sweep;
      });

  // (2) The acceptance bar: 100k operations certified in one sweep.
  const auto big = synth_ws_history(big_ops, 16, 4242);
  bool big_ok = false;
  const double big_s =
      bench::best_seconds(reps, [&] { big_ok = check_weak_set_spec(big).ok; });

  // (3) Scaled Algorithm 4 harness (records + certification), through the
  // driver: the preset `e4` workload at the smoke-scaled grid.
  ScenarioSpec spec = bench::preset_spec("e4");
  spec.seeds = seeds;
  if (bench::smoke()) {
    spec.n = 4;
    spec.weakset.gen_ops = 12;
  }
  ScenarioReport report;
  const double run_s =
      bench::best_seconds(reps, [&] { report = run_scenario(spec); });
  std::size_t run_violations = 0;
  for (const auto& cell : report.weakset_cells)
    run_violations += cell.spec_ok ? 0 : 1;

  BenchJson j;
  j.set("experiment", std::string("E4"));
  j.set("workload",
        std::string("weak-set spec certification: seed gets*adds checker "
                    "(ref) vs completed-add-watermark sweep; Alg4 harness"));
  j.set("checker_ab_ops", static_cast<std::uint64_t>(ab_ops));
  j.set("checker_ab_histories", static_cast<std::uint64_t>(histories.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ref_s", ab.a);
  j.set("wall_sweep_s", ab.b);
  j.set("speedup", ab.ratio());
  j.set("verdicts_identical", std::string(ok_ref == ok_sweep ? "yes" : "NO"));
  j.set("certify_big_ops", static_cast<std::uint64_t>(big_ops));
  j.set("certify_big_s", big_s);
  j.set("certify_big_ok", static_cast<std::uint64_t>(big_ok ? 1 : 0));
  j.set("alg4_sweep_n", static_cast<std::uint64_t>(spec.n));
  j.set("alg4_sweep_script_ops",
        static_cast<std::uint64_t>(2 * spec.weakset.gen_ops));
  j.set("alg4_sweep_cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("alg4_sweep_wall_s", run_s);
  j.set("alg4_sweep_violations", static_cast<std::uint64_t>(run_violations));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E4.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ref_s=" << ab.a
              << " sweep_s=" << ab.b << " speedup=" << ab.ratio()
              << " certify_" << big_ops << "_s=" << big_s << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{2u, 4u, 8u}
                     : std::vector<std::size_t>{2u, 4u, 8u, 16u, 32u};

  {
    Table t("E4.a  weak-set in MS: add latency (rounds) vs n",
            {"n", "add latency (rounds)", "spec violations", "env=MS certified"});
    for (std::size_t n : sizes) {
      ScenarioSpec spec = weakset_spec(n, 12, seeds);
      spec.weakset.validate_env = true;
      std::vector<double> lat;
      std::size_t violations = 0, certified = 0;
      for (const auto& cell : run_scenario(spec).weakset_cells) {
        lat.push_back(static_cast<double>(cell.add_latency_total) /
                      static_cast<double>(cell.adds));
        if (!cell.spec_ok) ++violations;
        if (cell.env_ms_ok) ++certified;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(lat).to_string(),
                 Table::num(static_cast<std::uint64_t>(violations)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size()))});
    }
    t.print();
  }

  {
    Table t("E4.b  add latency vs link quality (n=8; timely_prob of non-source links)",
            {"timely_prob", "add latency (rounds)"});
    for (double p : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      ScenarioSpec spec = weakset_spec(8, 12, seeds);
      spec.timely_prob = p;
      std::vector<double> lat;
      for (const auto& cell : run_scenario(spec).weakset_cells)
        lat.push_back(static_cast<double>(cell.add_latency_total) /
                      static_cast<double>(cell.adds));
      t.add_row({Table::num(p, 2), aggregate(lat).to_string()});
    }
    t.print();
  }

  {
    Table t("E4.c  crash resilience (n=8): adds by survivors still complete",
            {"crashes f", "all survivor adds completed", "spec violations"});
    for (std::size_t f : {0u, 3u, 6u}) {
      ScenarioSpec spec = weakset_spec(8, 12, seeds);
      if (f > 0) {
        spec.crashes.kind = CrashGenSpec::Kind::kRandom;
        spec.crashes.count = f;
        spec.crashes.horizon = 20;
        spec.crashes.seed_offset = 3;
      }
      std::size_t completed = 0, violations = 0;
      for (const auto& cell : run_scenario(spec).weakset_cells) {
        completed += cell.all_adds_completed ? 1 : 0;
        if (!cell.spec_ok) ++violations;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(completed)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(violations))});
    }
    t.print();
  }

  write_bench_json(seeds);
}

void BM_WeakSetMs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(weakset_spec(n, 12, {seed++}), 1);
    benchmark::DoNotOptimize(report);
    const auto& cell = report.weakset_cells[0];
    state.counters["add_rounds"] = static_cast<double>(cell.add_latency_total) /
                                   static_cast<double>(cell.adds);
  }
}
BENCHMARK(BM_WeakSetMs)->Arg(4)->Arg(16)->Arg(32);

void BM_WsCheckerSweep(benchmark::State& state) {
  const auto ops = static_cast<std::size_t>(state.range(0));
  const auto history = synth_ws_history(ops, 16, 7);
  for (auto _ : state) {
    auto res = check_weak_set_spec(history);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_WsCheckerSweep)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
