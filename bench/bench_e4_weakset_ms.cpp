// E4 — Theorem 3: Algorithm 4 implements a weak-set in MS.  Spec
// violations (always 0), add latency in rounds vs n / link quality /
// crashes; gets are free (local).
#include "bench_common.hpp"

#include "weakset/ms_weak_set.hpp"

namespace anon {
namespace {

std::vector<WsScriptOp> workload(std::size_t n, int ops) {
  std::vector<WsScriptOp> script;
  for (int i = 0; i < ops; ++i) {
    script.push_back({static_cast<Round>(2 + 3 * i),
                      static_cast<std::size_t>(i % n), true, Value(100 + i)});
    script.push_back({static_cast<Round>(3 + 3 * i),
                      static_cast<std::size_t>((i + 1) % n), false, Value()});
  }
  return script;
}

void print_tables() {
  const auto seeds = experiment_seeds(10);

  {
    Table t("E4.a  weak-set in MS: add latency (rounds) vs n",
            {"n", "add latency (rounds)", "spec violations", "env=MS certified"});
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
      std::vector<double> lat;
      std::size_t violations = 0, certified = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = n;
        env.seed = seed;
        auto run = run_ms_weak_set(env, CrashPlan{}, workload(n, 12));
        lat.push_back(static_cast<double>(run.add_latency_rounds_total) /
                      static_cast<double>(run.adds));
        if (!check_weak_set_spec(run.records).ok) ++violations;
        if (run.env_check.ms_ok) ++certified;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(lat).to_string(),
                 Table::num(static_cast<std::uint64_t>(violations)),
                 Table::num(static_cast<std::uint64_t>(certified)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size()))});
    }
    t.print();
  }

  {
    Table t("E4.b  add latency vs link quality (n=8; timely_prob of non-source links)",
            {"timely_prob", "add latency (rounds)"});
    for (double p : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      std::vector<double> lat;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = 8;
        env.seed = seed;
        env.timely_prob = p;
        auto run = run_ms_weak_set(env, CrashPlan{}, workload(8, 12));
        lat.push_back(static_cast<double>(run.add_latency_rounds_total) /
                      static_cast<double>(run.adds));
      }
      t.add_row({Table::num(p, 2), aggregate(lat).to_string()});
    }
    t.print();
  }

  {
    Table t("E4.c  crash resilience (n=8): adds by survivors still complete",
            {"crashes f", "all survivor adds completed", "spec violations"});
    for (std::size_t f : {0u, 3u, 6u}) {
      std::size_t completed = 0, violations = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = 8;
        env.seed = seed;
        auto crashes = random_crashes(8, f, 20, seed + 3);
        auto run = run_ms_weak_set(env, crashes, workload(8, 12));
        completed += run.all_adds_completed ? 1 : 0;
        if (!check_weak_set_spec(run.records).ok) ++violations;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(completed)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(violations))});
    }
    t.print();
  }
}

void BM_WeakSetMs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EnvParams env;
    env.kind = EnvKind::kMS;
    env.n = n;
    env.seed = seed++;
    auto run = run_ms_weak_set(env, CrashPlan{}, workload(n, 12), 50, false);
    benchmark::DoNotOptimize(run);
    state.counters["add_rounds"] =
        static_cast<double>(run.add_latency_rounds_total) /
        static_cast<double>(run.adds);
  }
}
BENCHMARK(BM_WeakSetMs)->Arg(4)->Arg(16)->Arg(32);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
