// E9 — the cost of anonymity (ablation): Algorithm 3 (anonymous pseudo
// leaders) vs the Ω-with-IDs baseline on the SAME environment sweep, plus
// Algorithm 2 where ES holds.  Shape: IDs buy faster convergence and
// bounded state; anonymity costs rounds and (without compression) bytes.
// Both sides are scenario families (consensus / omega).
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::consensus_spec;
using bench::run_scenario;

ScenarioSpec omega_spec(std::size_t n, Round stab, EnvKind kind,
                        const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kOmega;
  spec.seeds = seeds;
  spec.env_kind = kind;
  spec.n = n;
  spec.stabilization = stab;
  return spec;
}

std::vector<double> cell_rounds(const ScenarioReport& report) {
  std::vector<double> out;
  for (const auto& c : report.consensus_cells)
    out.push_back(static_cast<double>(c.report.last_decision_round));
  for (const auto& c : report.omega_cells)
    out.push_back(static_cast<double>(c.last_decision_round));
  return out;
}

std::vector<double> cell_bytes_per_proc(const ScenarioReport& report,
                                        std::size_t n) {
  std::vector<double> out;
  for (const auto& c : report.consensus_cells)
    out.push_back(static_cast<double>(c.report.bytes_sent) /
                  static_cast<double>(n));
  for (const auto& c : report.omega_cells)
    out.push_back(static_cast<double>(c.bytes) / static_cast<double>(n));
  return out;
}

// The tracked hot path of this experiment (BENCH_E9.json): the largest
// ESS cell, Algorithm 3 (anonymous) vs Ω-with-IDs across the seed list,
// interleaved A/B so the committed anonymity-cost ratio is drift-free.
void write_bench_json(const std::vector<std::uint64_t>& seeds,
                      std::size_t n) {
  ScenarioSpec alg3 = bench::preset_spec("e9-alg3");
  ScenarioSpec omega = bench::preset_spec("e9-omega");
  alg3.seeds = seeds;
  omega.seeds = seeds;
  alg3.n = omega.n = n;
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport rep_a3, rep_om;
  const bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps, [&] { rep_a3 = run_scenario(alg3, 1); },
      [&] { rep_om = run_scenario(omega, 1); });
  auto mean = [](std::vector<double> v) { return aggregate(std::move(v)).mean; };
  BenchJson j;
  j.set("experiment", std::string("E9"));
  j.set("workload",
        std::string("ESS stab=10 sweep: Alg3 (anonymous) vs Omega (IDs)"));
  j.set("n", static_cast<std::uint64_t>(n));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_alg3_s", ab.a);
  j.set("wall_omega_s", ab.b);
  j.set("mean_rounds_alg3", mean(cell_rounds(rep_a3)));
  j.set("mean_rounds_omega", mean(cell_rounds(rep_om)));
  j.set("mean_bytes_per_proc_alg3", mean(cell_bytes_per_proc(rep_a3, n)));
  j.set("mean_bytes_per_proc_omega", mean(cell_bytes_per_proc(rep_om, n)));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E9.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: alg3_s=" << ab.a
              << " omega_s=" << ab.b << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{3u, 5u}
                     : std::vector<std::size_t>{3u, 5u, 9u, 17u};

  {
    Table t("E9.a  decision round in ESS (stab=10): anonymous vs IDs",
            {"n", "Alg 3 (anonymous)", "Ω-consensus (IDs)", "anonymity cost"});
    for (std::size_t n : sizes) {
      const auto a3 = cell_rounds(run_scenario(
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, n, 10, seeds)));
      const auto om =
          cell_rounds(run_scenario(omega_spec(n, 10, EnvKind::kESS, seeds)));
      const double cost =
          aggregate(a3).mean / std::max(1.0, aggregate(om).mean);
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(a3).to_string(), aggregate(om).to_string(),
                 Table::ratio(cost)});
    }
    t.print();
  }

  {
    Table t("E9.b  decision round in ES (GST=10): all three algorithms",
            {"n", "Alg 2 (anonymous, ES)", "Alg 3 (anonymous, ESS-style)",
             "Ω-consensus (IDs)"});
    for (std::size_t n : sizes) {
      const auto a2 = cell_rounds(run_scenario(
          consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, n, 10, seeds)));
      const auto a3 = cell_rounds(run_scenario(
          consensus_spec(ConsensusAlgo::kEss, EnvKind::kES, n, 10, seeds)));
      const auto om =
          cell_rounds(run_scenario(omega_spec(n, 10, EnvKind::kES, seeds)));
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(a2).to_string(), aggregate(a3).to_string(),
                 aggregate(om).to_string()});
    }
    t.print();
  }

  {
    Table t("E9.c  bytes sent per process until decision (ESS, stab=10)",
            {"n", "Alg 3 (histories+counters)", "Ω-consensus (bounded state)",
             "ratio"});
    for (std::size_t n : sizes) {
      const auto a3 = cell_bytes_per_proc(
          run_scenario(
              consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, n, 10, seeds)),
          n);
      const auto om = cell_bytes_per_proc(
          run_scenario(omega_spec(n, 10, EnvKind::kESS, seeds)), n);
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(aggregate(a3).mean, 0),
                 Table::num(aggregate(om).mean, 0),
                 Table::ratio(aggregate(a3).mean /
                              std::max(1.0, aggregate(om).mean))});
    }
    t.print();
  }

  write_bench_json(seeds, sizes.back());
}

void BM_Alg3VsOmega(benchmark::State& state) {
  const bool omega = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const ScenarioSpec spec =
        omega ? omega_spec(9, 10, EnvKind::kESS, {seed++})
              : consensus_spec(ConsensusAlgo::kEss, EnvKind::kESS, 9, 10,
                               {seed++});
    const auto report = run_scenario(spec, 1);
    benchmark::DoNotOptimize(report);
    const auto rounds = cell_rounds(report);
    state.counters["rounds"] = rounds.empty() ? 0 : rounds[0];
  }
}
BENCHMARK(BM_Alg3VsOmega)->Arg(0)->Arg(1);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
