// E9 — the cost of anonymity (ablation): Algorithm 3 (anonymous pseudo
// leaders) vs the Ω-with-IDs baseline on the SAME environment sweep, plus
// Algorithm 2 where ES holds.  Shape: IDs buy faster convergence and
// bounded state; anonymity costs rounds and (without compression) bytes.
#include "bench_common.hpp"

#include "baseline/omega_consensus.hpp"

namespace anon {
namespace {

using bench::consensus_config;

struct Outcome {
  double rounds;
  double bytes_per_proc;
};

Outcome run_omega(std::size_t n, Round stab, std::uint64_t seed,
                  EnvKind kind) {
  EnvParams env;
  env.kind = kind;
  env.n = n;
  env.seed = seed;
  env.stabilization = stab;
  std::vector<std::unique_ptr<Automaton<OmegaMessage>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<OmegaConsensus>(
        Value(100 + static_cast<std::int64_t>(i)), i));
  EnvDelayModel delays(env, CrashPlan{});
  LockstepOptions opt;
  opt.max_rounds = 60000;
  opt.record_trace = false;
  LockstepNet<OmegaMessage> net(std::move(autos), delays, CrashPlan{}, opt);
  net.run_until_all_correct_decided();
  Round last = 0;
  for (ProcId p = 0; p < n; ++p) last = std::max(last, net.decision_round(p));
  return {static_cast<double>(last),
          static_cast<double>(net.bytes_sent()) / static_cast<double>(n)};
}

Outcome run_alg(ConsensusAlgo algo, std::size_t n, Round stab,
                std::uint64_t seed, EnvKind kind) {
  auto rep = run_consensus(algo, consensus_config(kind, n, stab, seed));
  return {static_cast<double>(rep.last_decision_round),
          static_cast<double>(rep.bytes_sent) / static_cast<double>(n)};
}

// The tracked hot path of this experiment (BENCH_E9.json): the largest
// ESS cell, Algorithm 3 (anonymous) vs Ω-with-IDs across the seed list,
// interleaved A/B so the committed anonymity-cost ratio is drift-free.
void write_bench_json(const std::vector<std::uint64_t>& seeds,
                      std::size_t n) {
  const int reps = bench::smoke() ? 2 : 3;
  double rounds_a3 = 0, rounds_om = 0, bytes_a3 = 0, bytes_om = 0;
  const bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps,
      [&] {
        rounds_a3 = bytes_a3 = 0;
        for (auto seed : seeds) {
          const Outcome o = run_alg(ConsensusAlgo::kEss, n, 10, seed,
                                    EnvKind::kESS);
          rounds_a3 += o.rounds;
          bytes_a3 += o.bytes_per_proc;
        }
      },
      [&] {
        rounds_om = bytes_om = 0;
        for (auto seed : seeds) {
          const Outcome o = run_omega(n, 10, seed, EnvKind::kESS);
          rounds_om += o.rounds;
          bytes_om += o.bytes_per_proc;
        }
      });
  BenchJson j;
  j.set("experiment", std::string("E9"));
  j.set("workload",
        std::string("ESS stab=10 sweep: Alg3 (anonymous) vs Omega (IDs)"));
  j.set("n", static_cast<std::uint64_t>(n));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_alg3_s", ab.a);
  j.set("wall_omega_s", ab.b);
  j.set("mean_rounds_alg3", rounds_a3 / static_cast<double>(seeds.size()));
  j.set("mean_rounds_omega", rounds_om / static_cast<double>(seeds.size()));
  j.set("mean_bytes_per_proc_alg3",
        bytes_a3 / static_cast<double>(seeds.size()));
  j.set("mean_bytes_per_proc_omega",
        bytes_om / static_cast<double>(seeds.size()));
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E9.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: alg3_s=" << ab.a
              << " omega_s=" << ab.b << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{3u, 5u}
                     : std::vector<std::size_t>{3u, 5u, 9u, 17u};

  {
    Table t("E9.a  decision round in ESS (stab=10): anonymous vs IDs",
            {"n", "Alg 3 (anonymous)", "Ω-consensus (IDs)", "anonymity cost"});
    for (std::size_t n : sizes) {
      std::vector<double> a3, om;
      for (auto seed : seeds) {
        a3.push_back(run_alg(ConsensusAlgo::kEss, n, 10, seed, EnvKind::kESS).rounds);
        om.push_back(run_omega(n, 10, seed, EnvKind::kESS).rounds);
      }
      const double cost = aggregate(a3).mean / std::max(1.0, aggregate(om).mean);
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(a3).to_string(), aggregate(om).to_string(),
                 Table::ratio(cost)});
    }
    t.print();
  }

  {
    Table t("E9.b  decision round in ES (GST=10): all three algorithms",
            {"n", "Alg 2 (anonymous, ES)", "Alg 3 (anonymous, ESS-style)",
             "Ω-consensus (IDs)"});
    for (std::size_t n : sizes) {
      std::vector<double> a2, a3, om;
      for (auto seed : seeds) {
        a2.push_back(run_alg(ConsensusAlgo::kEs, n, 10, seed, EnvKind::kES).rounds);
        a3.push_back(run_alg(ConsensusAlgo::kEss, n, 10, seed, EnvKind::kES).rounds);
        om.push_back(run_omega(n, 10, seed, EnvKind::kES).rounds);
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(a2).to_string(), aggregate(a3).to_string(),
                 aggregate(om).to_string()});
    }
    t.print();
  }

  {
    Table t("E9.c  bytes sent per process until decision (ESS, stab=10)",
            {"n", "Alg 3 (histories+counters)", "Ω-consensus (bounded state)",
             "ratio"});
    for (std::size_t n : sizes) {
      std::vector<double> a3, om;
      for (auto seed : seeds) {
        a3.push_back(run_alg(ConsensusAlgo::kEss, n, 10, seed, EnvKind::kESS)
                         .bytes_per_proc);
        om.push_back(run_omega(n, 10, seed, EnvKind::kESS).bytes_per_proc);
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(aggregate(a3).mean, 0),
                 Table::num(aggregate(om).mean, 0),
                 Table::ratio(aggregate(a3).mean /
                              std::max(1.0, aggregate(om).mean))});
    }
    t.print();
  }

  write_bench_json(seeds, sizes.back());
}

void BM_Alg3VsOmega(benchmark::State& state) {
  const bool omega = state.range(0) == 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Outcome o = omega ? run_omega(9, 10, seed++, EnvKind::kESS)
                      : run_alg(ConsensusAlgo::kEss, 9, 10, seed++, EnvKind::kESS);
    benchmark::DoNotOptimize(o);
    state.counters["rounds"] = o.rounds;
  }
}
BENCHMARK(BM_Alg3VsOmega)->Arg(0)->Arg(1);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
