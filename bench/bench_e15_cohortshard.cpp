// E15 — sharded cohort execution (PR 8 tentpole).
//
// The cohort engine (net/cohort.hpp) now partitions its class list into
// shards and runs each round's compute/broadcast and delivery waves on the
// shared worker pool, with a deterministic barrier that canonicalizes
// batch payloads by content digest across shards.  Reports are
// byte-identical to the serial cohort engine at every shard/thread count,
// and per-round scratch (digest buckets, split maps, unicast fan-out)
// lives in a bump arena so steady-state rounds are allocation-free
// (tests/allocation_steady_state_test.cpp pins this).
//
//   E15.a  non-collapsing ES run (distinct proposals, so the class count
//          stays at n and the O(C²) waves dominate): single-threaded
//          8-shard baseline vs 2/4/8 worker threads on the SAME
//          decomposition, interleaved A/B.  Reports verified identical
//          before any timing.
//   E15.b  collapsed run at scale — the e12-huge shape (8 proposal
//          values, so C=8 and the O(n) setup/metric passes dominate):
//          serial cohort engine vs the sharded engine, interleaved A/B.
//          n = 1e8 in the full configuration; this is the committed
//          serial-vs-sharded number behind the e12-huge preset.
//
// BENCH_E15.json records both ladders plus hardware_threads — on a
// single-core container the thread ratios honestly sit near 1.0; the
// multi-core CI runners show the real scaling.
#include "bench_common.hpp"

#include <thread>
#include <vector>

#include "algo/runner.hpp"

namespace anon {
namespace {

using bench::run_scenario;

// E15.a: distinct proposals keep every process in its own class, so the
// cohort engine's per-round cost is the full O(C²) compute/delivery wave —
// the part the shards absorb.  Fixed 8-shard decomposition across the
// thread ladder, mirroring E13.a's protocol.
ConsensusConfig e15a_config(std::size_t n, std::size_t engine_threads) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = n;
  cfg.env.seed = 42;
  cfg.env.stabilization = 0;
  cfg.initial.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cfg.initial.push_back(Value(100 + static_cast<std::int64_t>(i)));
  cfg.net.seed = 42;
  cfg.net.record_trace = false;
  cfg.net.record_deliveries = false;
  cfg.net.engine_threads = engine_threads;
  cfg.net.engine_shards = 8;  // fixed decomposition across the ladder
  cfg.validate_env = false;
  cfg.backend = ConsensusBackend::kCohort;
  return cfg;
}

// E15.b: the e12-huge shape at a bench-controlled n — fully collapsed
// (C=8), so the timed work is the O(n) membership/metric passes.
ScenarioSpec e15b_spec(std::size_t n, std::size_t engine_threads) {
  ScenarioSpec spec = bench::preset_spec("e12-huge");
  spec.name = "";
  spec.n = n;
  spec.consensus.engine_threads = engine_threads;
  return spec;
}

void print_tables() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> ladder = {2, 4, 8};

  // ---- E15.a: thread scaling on a non-collapsing run -----------------------
  const std::size_t n_a = bench::smoke() ? 512 : 2048;
  const int reps_a = bench::smoke() ? 1 : 3;
  double base_s = 0;
  std::vector<double> wall_a(ladder.size(), 0);
  std::uint64_t rounds_a = 0, cohorts_a = 0;
  {
    // Verify once, before any timing: every thread count must reproduce
    // the 1-thread report exactly.
    const ConsensusReport ref =
        run_consensus(ConsensusAlgo::kEs, e15a_config(n_a, 1));
    ANON_CHECK_MSG(ref.all_correct_decided && ref.agreement,
                   "E15.a must decide consensus");
    rounds_a = ref.rounds_executed;
    cohorts_a = ref.cohorts_max;
    for (std::size_t t : ladder) {
      const ConsensusReport rep =
          run_consensus(ConsensusAlgo::kEs, e15a_config(n_a, t));
      ANON_CHECK_MSG(rep.to_string() == ref.to_string(),
                     "E15.a reports must be identical at every thread count");
    }

    Table t("E15.a  sharded cohort thread scaling, distinct-value ES n=" +
                Table::num(static_cast<std::uint64_t>(n_a)) +
                " (8 shards, interleaved A/B best-of-" +
                std::to_string(reps_a) + ")",
            {"engine threads", "wall-clock s", "speedup vs 1 thread"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      const bench::AbSeconds ab = bench::interleaved_ab_seconds(
          reps_a,
          [&] { run_consensus(ConsensusAlgo::kEs, e15a_config(n_a, 1)); },
          [&] {
            run_consensus(ConsensusAlgo::kEs, e15a_config(n_a, ladder[i]));
          });
      if (i == 0 || ab.a < base_s) base_s = ab.a;
      wall_a[i] = ab.b;
    }
    t.add_row({"1 (baseline)", Table::num(base_s, 3), "1.00x"});
    for (std::size_t i = 0; i < ladder.size(); ++i)
      t.add_row({std::to_string(ladder[i]), Table::num(wall_a[i], 3),
                 Table::ratio(wall_a[i] > 0 ? base_s / wall_a[i] : 0)});
    t.print();
    std::cout << "  (" << Table::num(cohorts_a) << " cohorts over "
              << Table::num(rounds_a) << " rounds; this machine has " << hw
              << " hardware thread(s) — thread ratios only exceed 1.0 on "
                 "multi-core runners.)\n";
  }

  // ---- E15.b: serial vs sharded at scale (the e12-huge shape) --------------
  const std::size_t n_b = bench::smoke() ? 1000000 : 100000000;
  const int reps_b = 1;  // each side is a multi-second O(n) run
  double serial_b = 0, sharded_b = 0;
  std::uint64_t rounds_b = 0;
  {
    ScenarioReport rep_serial, rep_sharded;
    const bench::AbSeconds ab = bench::interleaved_ab_seconds(
        reps_b,
        [&] { rep_serial = run_scenario(e15b_spec(n_b, 1), 1); },
        [&] { rep_sharded = run_scenario(e15b_spec(n_b, 0), 1); });
    serial_b = ab.a;
    sharded_b = ab.b;
    const auto& cell_s = rep_serial.consensus_cells[0].report;
    const auto& cell_p = rep_sharded.consensus_cells[0].report;
    ANON_CHECK_MSG(cell_s.all_correct_decided && cell_s.agreement,
                   "E15.b must decide consensus");
    const bool identical = cell_s.to_string() == cell_p.to_string();
    rounds_b = cell_s.rounds_executed;
    Table t("E15.b  serial vs sharded cohort engine, e12-huge shape (n=" +
                Table::num(static_cast<std::uint64_t>(n_b)) +
                ", 8 proposal values, interleaved A/B)",
            {"engine", "wall-clock s", "speedup", "reports identical"});
    t.add_row({"serial cohort", Table::num(serial_b, 3), "1.00x", "-"});
    t.add_row({"sharded cohort (threads=0)", Table::num(sharded_b, 3),
               Table::ratio(ab.ratio()), identical ? "yes" : "NO — BUG"});
    t.print();
    ANON_CHECK_MSG(identical,
                   "E15.b sharded report must reproduce the serial one");
  }

  {
    BenchJson j;
    j.set("experiment", std::string("E15"));
    j.set("workload",
          std::string("sharded cohort engine: distinct-value ES thread "
                      "ladder + e12-huge-shaped serial-vs-sharded A/B"));
    j.set("a_n", static_cast<std::uint64_t>(n_a));
    j.set("a_wall_1t_s", base_s);
    j.set("a_wall_2t_s", wall_a[0]);
    j.set("a_wall_4t_s", wall_a[1]);
    j.set("a_wall_8t_s", wall_a[2]);
    j.set("a_rounds", rounds_a);
    j.set("b_n", static_cast<std::uint64_t>(n_b));
    j.set("b_wall_serial_s", serial_b);
    j.set("b_wall_sharded_s", sharded_b);
    j.set("b_speedup", sharded_b > 0 ? serial_b / sharded_b : 0.0);
    j.set("b_rounds", rounds_b);
    j.set("hardware_threads", static_cast<std::uint64_t>(hw));
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E15.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: a_n=" << n_a
                << " b_n=" << n_b << " b_speedup="
                << (sharded_b > 0 ? serial_b / sharded_b : 0.0) << "x]\n";
  }
}

void BM_ShardedCohortEsConsensus(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ConsensusConfig cfg = e15a_config(1024, threads);
    cfg.env.seed = seed;
    cfg.net.seed = seed++;
    const auto report = run_consensus(ConsensusAlgo::kEs, cfg);
    benchmark::DoNotOptimize(report);
    state.counters["rounds"] =
        static_cast<double>(report.last_decision_round);
    state.counters["cohorts"] = static_cast<double>(report.cohorts_max);
  }
}
BENCHMARK(BM_ShardedCohortEsConsensus)->Arg(1)->Arg(4);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
