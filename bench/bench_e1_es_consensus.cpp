// E1 — Theorem 1: Algorithm 2 solves consensus in ES.
//
// Tables: decision round vs n; decision round vs GST (shape: GST + small
// constant); decision round vs crash count (any minority/majority — no
// quorum).  Every cell is a ScenarioSpec dispatched through the scenario
// registry; E1.d pins the thread-count invariance of the driver itself.
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::consensus_spec;
using bench::run_scenario;
using bench::timed_seconds;

// The tracked hot-path workload of this experiment (BENCH_E1.json): the
// preset `e1` sweep (full E1.a n=64 cell), serial, best wall clock over a
// few repetitions — now produced by the unified driver + report emitter.
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec = bench::preset_spec("e1");
  spec.seeds = seeds;
  const int reps = bench::smoke() ? 2 : 5;
  ScenarioReport report;
  const double best = bench::best_seconds(
      reps, [&] { report = run_scenario(spec, /*threads=*/1); });
  BenchJson j;
  j.set("experiment", std::string("E1"));
  j.set("workload", std::string("ES consensus sweep, n=64, GST=0, serial"));
  j.set("n", static_cast<std::uint64_t>(spec.n));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_s", best);
  add_report_totals(j, report);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E1.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: wall_s=" << best << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);

  {
    Table t("E1.a  Algorithm 2 in ES: decision round vs n (GST=0, distinct values)",
            {"n", "last decision round", "messages", "bytes/process"});
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
      std::vector<double> rounds, msgs, bytes;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, n, 0, seeds));
      for (const auto& cell : report.consensus_cells) {
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
        msgs.push_back(static_cast<double>(cell.report.deliveries));
        bytes.push_back(static_cast<double>(cell.report.bytes_sent) /
                        static_cast<double>(n));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(rounds).to_string(),
                 Table::num(aggregate(msgs).mean, 0),
                 Table::num(aggregate(bytes).mean, 0)});
    }
    t.print();
  }

  {
    Table t("E1.b  decision round vs GST under the adversarial (bivalent-until-GST) schedule (n=8)",
            {"GST", "last decision round", "decision - GST"});
    for (Round gst : {0u, 8u, 16u, 32u, 64u, 128u}) {
      ScenarioSpec spec;
      spec.family = ScenarioFamily::kConsensus;
      spec.seeds = {1};
      spec.env_kind = EnvKind::kES;
      spec.n = 8;
      spec.stabilization = gst;
      spec.initial.kind = ValueGenSpec::Kind::kBivalent;
      spec.consensus.algo = ConsensusAlgo::kEs;
      spec.consensus.schedule =
          ConsensusSpecSection::Schedule::kBivalentUntilGst;
      spec.consensus.max_rounds = gst + 200;
      spec.consensus.record_trace = false;
      const auto report = run_scenario(spec);
      const Round last = report.consensus_cells[0].report.last_decision_round;
      t.add_row({Table::num(static_cast<std::uint64_t>(gst)),
                 Table::num(last),
                 Table::num(static_cast<std::uint64_t>(last - gst))});
    }
    t.print();
  }

  {
    Table t("E1.c' decision round vs GST with a RANDOMIZED pre-GST prefix (n=8) — often early",
            {"GST", "last decision round"});
    for (Round gst : {0u, 16u, 64u}) {
      std::vector<double> rounds;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, 8, gst, seeds));
      for (const auto& cell : report.consensus_cells)
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
      t.add_row({Table::num(static_cast<std::uint64_t>(gst)),
                 aggregate(rounds).to_string()});
    }
    t.print();
    std::cout << "  (Randomized benign prefixes let decisions land before\n"
                 "   GST — ES only bounds the WORST case, shown in E1.b.)\n";
  }

  {
    Table t("E1.c  crash tolerance (n=8, GST=12): ANY number of crashes < n",
            {"crashes f", "all correct decided", "agreement", "last decision round"});
    for (std::size_t f : {0u, 2u, 4u, 7u}) {
      std::size_t decided = 0, agree = 0;
      std::vector<double> rounds;
      const auto report = run_scenario(
          consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, 8, 12, seeds, f));
      for (const auto& cell : report.consensus_cells) {
        decided += cell.report.all_correct_decided ? 1 : 0;
        agree += cell.report.agreement ? 1 : 0;
        rounds.push_back(static_cast<double>(cell.report.last_decision_round));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(decided)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(agree)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(rounds).to_string()});
    }
    t.print();
  }

  {
    // The E1.a grid again, through the driver at 1 vs 4 worker threads:
    // the scenario layer's determinism contract is that the DETERMINISTIC
    // report JSON (everything but timing) is byte-identical at any thread
    // count, while wall clock drops with cores.
    std::vector<ScenarioSpec> specs;
    for (std::size_t n : {8u, 16u, 32u, 64u})
      specs.push_back(
          consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, n, 0, seeds));

    double serial_s = 0, parallel_s = 0;
    bool identical = true;
    for (const auto& spec : specs) {
      ScenarioReport serial, parallel;
      serial_s += timed_seconds([&] { serial = run_scenario(spec, 1); });
      parallel_s += timed_seconds([&] { parallel = run_scenario(spec, 4); });
      identical = identical && serial.to_json_string(false) ==
                                   parallel.to_json_string(false);
    }
    Table t("E1.d  scenario driver: serial vs 4-thread shard over the E1.a grid (" +
                Table::num(static_cast<std::uint64_t>(specs.size() * seeds.size())) +
                " cells)",
            {"runner", "wall-clock s", "speedup", "reports identical"});
    t.add_row({"serial (1 thread)", Table::num(serial_s, 3), "1.00x", "-"});
    t.add_row({"sharded (4 threads)", Table::num(parallel_s, 3),
               Table::ratio(serial_s / parallel_s),
               identical ? "yes" : "NO — BUG"});
    t.print();
    std::cout << "  (hardware threads available: "
              << resolve_sweep_threads(0) << ")\n";
  }

  write_bench_json(seeds);
}

void BM_EsConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(
        consensus_spec(ConsensusAlgo::kEs, EnvKind::kES, n, 8, {seed++}), 1);
    benchmark::DoNotOptimize(report);
    const auto& rep = report.consensus_cells[0].report;
    state.counters["rounds"] = static_cast<double>(rep.last_decision_round);
    state.counters["msgs"] = static_cast<double>(rep.deliveries);
  }
}
BENCHMARK(BM_EsConsensus)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
