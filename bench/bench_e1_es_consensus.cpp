// E1 — Theorem 1: Algorithm 2 solves consensus in ES.
//
// Tables: decision round vs n; decision round vs GST (shape: GST + small
// constant); decision round vs crash count (any minority/majority — no
// quorum).  Timings: full runs.
#include "bench_common.hpp"

#include "algo/es_consensus.hpp"

namespace anon {
namespace {

using bench::consensus_config;
using bench::seed_grid;
using bench::timed_seconds;

// The tracked hot-path workload of this experiment (BENCH_E1.json): the
// full E1.a n=64 sweep, serial, best wall clock over a few repetitions.
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  const std::size_t n = 64;
  std::vector<ConsensusConfig> grid = seed_grid(EnvKind::kES, n, 0, seeds);
  const int reps = bench::smoke() ? 2 : 5;
  std::vector<ConsensusReport> reports;
  const double best = bench::best_seconds(reps, [&] {
    reports = run_consensus_sweep(ConsensusAlgo::kEs, grid, {.threads = 1});
  });
  std::uint64_t rounds = 0, sends = 0, bytes = 0, deliveries = 0;
  for (const auto& rep : reports) {
    rounds += rep.rounds_executed;
    sends += rep.sends;
    bytes += rep.bytes_sent;
    deliveries += rep.deliveries;
  }
  BenchJson j;
  j.set("experiment", std::string("E1"));
  j.set("workload", std::string("ES consensus sweep, n=64, GST=0, serial"));
  j.set("n", static_cast<std::uint64_t>(n));
  j.set("cells", static_cast<std::uint64_t>(grid.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_s", best);
  j.set("rounds", rounds);
  j.set("sends", sends);
  j.set("bytes", bytes);
  j.set("deliveries", deliveries);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E1.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: wall_s=" << best << "]\n";
}

// A genuinely adversarial ES schedule: the bivalent two-camp MS adversary
// (E8) rules until GST, full synchrony afterwards.  Under it Algorithm 2
// cannot decide before GST, so the decision round tracks GST + a small
// constant — the paper's termination shape, with the promise made tight.
class BivalentUntilGst final : public DelayModel {
 public:
  BivalentUntilGst(std::size_t n, Round gst) : camps_(n), gst_(gst) {}
  Round delay(Round k, ProcId s, ProcId r) const override {
    return k > gst_ ? 0 : camps_.delay(k, s, r);
  }
  std::optional<ProcId> planned_source(Round k) const override {
    return camps_.planned_source(k);
  }

 private:
  BivalentMsModel camps_;
  Round gst_;
};

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);

  {
    Table t("E1.a  Algorithm 2 in ES: decision round vs n (GST=0, distinct values)",
            {"n", "last decision round", "messages", "bytes/process"});
    for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
      std::vector<double> rounds, msgs, bytes;
      for (const auto& rep : run_consensus_sweep(
               ConsensusAlgo::kEs, seed_grid(EnvKind::kES, n, 0, seeds))) {
        rounds.push_back(static_cast<double>(rep.last_decision_round));
        msgs.push_back(static_cast<double>(rep.deliveries));
        bytes.push_back(static_cast<double>(rep.bytes_sent) /
                        static_cast<double>(n));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(rounds).to_string(),
                 Table::num(aggregate(msgs).mean, 0),
                 Table::num(aggregate(bytes).mean, 0)});
    }
    t.print();
  }

  {
    Table t("E1.b  decision round vs GST under the adversarial (bivalent-until-GST) schedule (n=8)",
            {"GST", "last decision round", "decision - GST"});
    for (Round gst : {0u, 8u, 16u, 32u, 64u, 128u}) {
      std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
      for (auto v : BivalentMsModel::initial_values(8))
        autos.push_back(std::make_unique<EsConsensus>(v));
      BivalentUntilGst delays(8, gst);
      LockstepOptions opt;
      opt.max_rounds = gst + 200;
      opt.record_trace = false;
      LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
      net.run_until_all_correct_decided();
      Round last = 0;
      for (ProcId p = 0; p < 8; ++p)
        last = std::max(last, net.decision_round(p));
      t.add_row({Table::num(static_cast<std::uint64_t>(gst)),
                 Table::num(last),
                 Table::num(static_cast<std::uint64_t>(last - gst))});
    }
    t.print();
  }

  {
    Table t("E1.c' decision round vs GST with a RANDOMIZED pre-GST prefix (n=8) — often early",
            {"GST", "last decision round"});
    for (Round gst : {0u, 16u, 64u}) {
      std::vector<double> rounds;
      for (const auto& rep : run_consensus_sweep(
               ConsensusAlgo::kEs, seed_grid(EnvKind::kES, 8, gst, seeds))) {
        rounds.push_back(static_cast<double>(rep.last_decision_round));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(gst)),
                 aggregate(rounds).to_string()});
    }
    t.print();
    std::cout << "  (Randomized benign prefixes let decisions land before\n"
                 "   GST — ES only bounds the WORST case, shown in E1.b.)\n";
  }

  {
    Table t("E1.c  crash tolerance (n=8, GST=12): ANY number of crashes < n",
            {"crashes f", "all correct decided", "agreement", "last decision round"});
    for (std::size_t f : {0u, 2u, 4u, 7u}) {
      std::size_t decided = 0, agree = 0;
      std::vector<double> rounds;
      for (const auto& rep : run_consensus_sweep(
               ConsensusAlgo::kEs, seed_grid(EnvKind::kES, 8, 12, seeds, f))) {
        decided += rep.all_correct_decided ? 1 : 0;
        agree += rep.agreement ? 1 : 0;
        rounds.push_back(static_cast<double>(rep.last_decision_round));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(decided)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(agree)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 aggregate(rounds).to_string()});
    }
    t.print();
  }

  {
    // The whole (n × seed) grid of E1.a as one flat sweep, serial vs
    // sharded: the parallel runner must reproduce the serial results
    // report-for-report while cutting wall clock with available cores.
    std::vector<ConsensusConfig> grid;
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
      auto rows = seed_grid(EnvKind::kES, n, 0, seeds);
      grid.insert(grid.end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
    }

    std::vector<ConsensusReport> serial, parallel;
    const double serial_s = timed_seconds([&] {
      serial = run_consensus_sweep(ConsensusAlgo::kEs, grid, {.threads = 1});
    });
    const double parallel_s = timed_seconds([&] {
      parallel = run_consensus_sweep(ConsensusAlgo::kEs, grid, {.threads = 4});
    });
    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
      identical = serial[i].to_string() == parallel[i].to_string();

    Table t("E1.d  sweep runner: serial vs 4-thread shard over the E1.a grid (" +
                Table::num(static_cast<std::uint64_t>(grid.size())) + " cells)",
            {"runner", "wall-clock s", "speedup", "results identical"});
    t.add_row({"serial (1 thread)", Table::num(serial_s, 3), "1.00x", "-"});
    t.add_row({"sharded (4 threads)", Table::num(parallel_s, 3),
               Table::ratio(serial_s / parallel_s),
               identical ? "yes" : "NO — BUG"});
    t.print();
    std::cout << "  (hardware threads available: "
              << resolve_sweep_threads(0) << ")\n";
  }

  write_bench_json(seeds);
}

void BM_EsConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto rep = run_consensus(ConsensusAlgo::kEs,
                             consensus_config(EnvKind::kES, n, 8, seed++));
    benchmark::DoNotOptimize(rep);
    state.counters["rounds"] = static_cast<double>(rep.last_decision_round);
    state.counters["msgs"] = static_cast<double>(rep.deliveries);
  }
}
BENCHMARK(BM_EsConsensus)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
