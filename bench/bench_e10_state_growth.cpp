// E10 — state growth (§4.1's unbounded-space caveat) and the
// digest-chain compression extension.  Algorithm 3's wire size grows
// quadratically with rounds (histories grow linearly AND the counter map
// accumulates ~1 surviving prefix entry per round); the digest-chain
// encoding makes the per-round increment O(#counter entries); the Ω
// baseline is O(n) regardless.
#include "bench_common.hpp"

#include "algo/compressed_history.hpp"
#include "algo/ess_consensus.hpp"

namespace anon {
namespace {

void print_tables() {
  const Round horizon = bench::smoke() ? 150u : 750u;
  double table_a_s = 0, table_a_plain_s = 0, table_a_gc_s = 0;
  std::uint64_t table_a_bytes = 0, table_a_sends = 0, table_a_rounds = 0;
  {
    Table t("E10.a  Algorithm 3 message size vs rounds executed (n=5, no decision)",
            {"round", "|C| plain", "plain bytes", "digest-chain bytes",
             "compression", "|C| with GC", "GC'd plain bytes"});
    // Two identical runs: paper-faithful vs the counter-GC extension.
    HistoryArena arena_plain, arena_gc;
    EnvParams env;
    env.kind = EnvKind::kESS;
    env.n = 5;
    env.seed = 23;
    env.stabilization = 6;
    EnvDelayModel delays(env, CrashPlan{});
    LockstepOptions opt;
    opt.max_rounds = horizon + 50;
    opt.record_trace = false;
    auto build = [&](bool gc, HistoryArena* arena) {
      EssConsensus::Options o;
      o.decide = false;
      o.gc_counters = gc;
      std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
      for (auto v : distinct_values(5))
        autos.push_back(std::make_unique<EssConsensus>(v, arena, o));
      return std::make_unique<LockstepNet<EssMessage>>(std::move(autos), delays,
                                                       CrashPlan{}, opt);
    };
    auto plain_net = build(false, &arena_plain);
    auto gc_net = build(true, &arena_gc);

    std::vector<Round> targets = {25u, 50u, 100u, 200u, 400u, 750u};
    while (targets.back() > horizon) targets.pop_back();
    if (targets.back() != horizon) targets.push_back(horizon);
    // Paper-faithful (A) vs counter-GC (B) stepped to each shared horizon
    // in interleaved segments (bench_common's shared A/B protocol).
    bench::InterleavedTimer ab;
    for (Round target : targets) {
      ab.lap_a([&] {
        plain_net->run([&](const LockstepNet<EssMessage>& nn) {
          return nn.round() >= target;
        });
      });
      ab.lap_b([&] {
        gc_net->run([&](const LockstepNet<EssMessage>& nn) {
          return nn.round() >= target;
        });
      });
      const auto& a =
          dynamic_cast<const EssConsensus&>(plain_net->process(0).automaton());
      const auto& g =
          dynamic_cast<const EssConsensus&>(gc_net->process(0).automaton());
      EssMessage m{a.proposed(), a.history(), a.counters()};
      EssMessage mg{g.proposed(), g.history(), g.counters()};
      const std::size_t plain = MessageSizeOf<EssMessage>::size(m);
      const std::size_t comp =
          compressed_wire_size(m.proposed.size(), m.counters.size());
      t.add_row({Table::num(target),
                 Table::num(static_cast<std::uint64_t>(a.counters().size())),
                 Table::num(static_cast<std::uint64_t>(plain)),
                 Table::num(static_cast<std::uint64_t>(comp)),
                 Table::ratio(static_cast<double>(plain) /
                              static_cast<double>(comp)),
                 Table::num(static_cast<std::uint64_t>(g.counters().size())),
                 Table::num(static_cast<std::uint64_t>(
                     MessageSizeOf<EssMessage>::size(mg)))});
    }
    table_a_s = ab.total();
    table_a_plain_s = ab.a();
    table_a_gc_s = ab.b();
    table_a_bytes = plain_net->bytes_sent() + gc_net->bytes_sent();
    table_a_sends = plain_net->sends() + gc_net->sends();
    table_a_rounds = plain_net->round() + gc_net->round();
    t.print();
  }

  {
    Table t("E10.b  history interning: arena nodes vs naive copies (n=6, 400 rounds)",
            {"workload", "rounds", "interned nodes", "naive (n×rounds)",
             "sharing"});
    // The four (workload × horizon) cells are independent runs with their
    // own arena and net, so they shard across the core sweep runner; rows
    // stay in grid order regardless of thread count.
    struct Cell {
      bool clustered;
      Round rounds;
    };
    const Round long_run = bench::smoke() ? 150u : 400u;
    const std::vector<Cell> cells = {
        {false, 100u}, {false, long_run}, {true, 100u}, {true, long_run}};
    const auto interned = parallel_sweep(cells.size(), [&](std::size_t i) {
      const Cell& cell = cells[i];
      EnvParams env;
      env.kind = EnvKind::kESS;
      env.n = 6;
      env.seed = 7;
      env.stabilization = 0;
      HistoryArena arena;
      EssConsensus::Options no_decide;
      no_decide.decide = false;
      std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
      // Clustered: three pairs of identical clones — their histories are
      // shared in the arena until (if ever) they diverge.
      std::vector<Value> init =
          cell.clustered ? std::vector<Value>{Value(1), Value(1), Value(2),
                                              Value(2), Value(3), Value(3)}
                         : distinct_values(6);
      for (auto v : init)
        autos.push_back(std::make_unique<EssConsensus>(v, &arena, no_decide));
      EnvDelayModel delays(env, CrashPlan{});
      LockstepOptions opt;
      opt.max_rounds = cell.rounds + 5;
      opt.record_trace = false;
      LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);
      net.run_rounds(cell.rounds);
      return static_cast<std::uint64_t>(arena.interned_nodes());
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::uint64_t naive = 6ull * cells[i].rounds;
      t.add_row({cells[i].clustered ? "3 clone pairs" : "all distinct",
                 Table::num(cells[i].rounds), Table::num(interned[i]),
                 Table::num(naive),
                 Table::ratio(static_cast<double>(naive) /
                              static_cast<double>(interned[i]))});
    }
    t.print();
  }

  {
    Table t("E10.c  digest-chain codec: decode success & table size (one sender)",
            {"rounds", "increments decoded", "full fallbacks", "decoder table"});
    for (int rounds : {100, 1000}) {
      HistoryArena sender, receiver;
      HistoryDecoder dec(&receiver);
      History h = sender.singleton(Value(1));
      std::size_t ok = 0, fallback = 0;
      for (int i = 0; i < rounds; ++i) {
        auto got = dec.decode_increment(encode_increment(h));
        if (got.has_value()) {
          ++ok;
        } else {
          dec.decode_full(encode_full(h));
          ++fallback;
        }
        h = sender.append(h, Value(i % 3));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(rounds)),
                 Table::num(static_cast<std::uint64_t>(ok)),
                 Table::num(static_cast<std::uint64_t>(fallback)),
                 Table::num(static_cast<std::uint64_t>(dec.table_size()))});
    }
    t.print();
  }

  // Machine-readable result (BENCH_E10.json): the tracked workload is the
  // same dual run as a pair of state-growth scenarios (presets e10 /
  // e10-gc) through the driver, interleaved A/B.  The in-table timings
  // above remain the stepping-protocol measurement; the committed numbers
  // come from the driver so every experiment family shares one emitter.
  {
    ScenarioSpec plain = bench::preset_spec("e10");
    ScenarioSpec gc = bench::preset_spec("e10-gc");
    plain.consensus.horizon = gc.consensus.horizon = horizon;
    ScenarioReport rep_plain, rep_gc;
    const bench::AbSeconds ab = bench::interleaved_ab_seconds(
        bench::smoke() ? 1 : 2,
        [&] { rep_plain = bench::run_scenario(plain, 1); },
        [&] { rep_gc = bench::run_scenario(gc, 1); });
    BenchJson j;
    j.set("experiment", std::string("E10"));
    j.set("workload",
          std::string("ESS no-decide state growth, n=5, plain+GC runs"));
    j.set("horizon", static_cast<std::uint64_t>(horizon));
    j.set("wall_s", ab.a + ab.b);
    j.set("wall_plain_s", ab.a);
    j.set("wall_gc_s", ab.b);
    j.set("rounds", rep_plain.rounds + rep_gc.rounds);
    j.set("sends", rep_plain.sends + rep_gc.sends);
    j.set("bytes", rep_plain.bytes + rep_gc.bytes);
    j.set("state_bytes_plain", rep_plain.consensus_cells[0].state_bytes);
    j.set("state_bytes_gc", rep_gc.consensus_cells[0].state_bytes);
    j.set("counters_plain", rep_plain.consensus_cells[0].counter_entries);
    j.set("counters_gc", rep_gc.consensus_cells[0].counter_entries);
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E10.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: wall_s=" << ab.a + ab.b
                << " (stepping-protocol wall " << table_a_s << "s: plain "
                << table_a_plain_s << " / GC " << table_a_gc_s << ", "
                << table_a_rounds << " rounds, " << table_a_sends
                << " sends, " << table_a_bytes << " bytes)]\n";
  }
}

void BM_Alg3LongRun(benchmark::State& state) {
  const Round rounds = static_cast<Round>(state.range(0));
  for (auto _ : state) {
    ScenarioSpec spec = bench::preset_spec("e10");
    spec.seeds = {3};
    spec.stabilization = 0;
    spec.consensus.horizon = rounds;
    const auto report = bench::run_scenario(spec, 1);
    benchmark::DoNotOptimize(report.bytes);
  }
}
BENCHMARK(BM_Alg3LongRun)->Arg(100)->Arg(400);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)

