// E13 — sharded intra-run execution (PR 6 tentpole).
//
// The sharded lock-step engine (net/lockstep.hpp) partitions processes
// into S shards and runs each round's end-of-round and delivery waves
// across the shared worker pool, aggregating uniform-delay broadcasts into
// per-payload groups so the serial engine's n² per-link calendar entries
// exist only as counter arithmetic.  Reports are byte-identical to the
// serial reference at every shard/thread count.
//
//   E13.a  adversarial non-collapsing ES run at n = 1e5 (cycle-64
//          proposals, 8 mid-flight crashes): single-threaded 8-shard
//          baseline vs 2/4/8 worker threads on the SAME decomposition,
//          interleaved A/B.  The serial engine is not a feasible baseline
//          here — its per-link calendar at n = 1e5 is ~10^10 entries per
//          round (hundreds of GB), so the 1-thread sharded engine (which
//          runs the identical wave/merge code, just without workers) is
//          the honest denominator for thread scaling.
//   E13.b  E12-shaped run (ES, GST=0, 8 proposal values) on the expanded
//          engine at n = 4096, where the serial reference IS feasible:
//          serial vs the sharded engine at 1/2/4/8 threads, reports
//          verified identical before any timing.
//
// BENCH_E13.json records both ladders plus hardware_threads — on a
// single-core container the thread ratios honestly sit near 1.0 and the
// multi-core CI runners show the real scaling; the serial-vs-sharded
// aggregation win in E13.b is machine-independent.
#include "bench_common.hpp"

#include <thread>
#include <vector>

#include "algo/runner.hpp"

namespace anon {
namespace {

using bench::run_scenario;

// The E13.a workload: adversarial in the sense that the proposal domain
// (64 values) keeps round-1 payload contents non-collapsing across
// senders, and the mid-flight crashes exercise the exact per-link
// fallback inside otherwise-uniform rounds.
ConsensusConfig e13a_config(std::size_t n, std::size_t engine_threads) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = n;
  cfg.env.seed = 42;
  cfg.env.stabilization = 0;
  cfg.initial.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cfg.initial.push_back(Value(100 + static_cast<std::int64_t>(i % 64)));
  cfg.crashes = random_crashes(n, 8, 9, 42 + 7);
  cfg.net.seed = 42;
  cfg.net.record_trace = false;
  cfg.net.record_deliveries = false;
  cfg.net.engine_threads = engine_threads;
  cfg.net.engine_shards = 8;  // fixed decomposition across the ladder
  return cfg;
}

ScenarioSpec e13b_spec(std::size_t n, std::size_t engine_threads) {
  ScenarioSpec spec = bench::preset_spec("e12-cohort");
  spec.name = "";
  spec.n = n;
  spec.consensus.backend = ConsensusBackend::kExpanded;
  spec.consensus.engine_threads = engine_threads;
  spec.consensus.record_trace = false;
  return spec;
}

void print_tables() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<std::size_t> ladder = {2, 4, 8};

  // ---- E13.a: thread scaling at n = 1e5 ------------------------------------
  const std::size_t n_a = bench::smoke() ? 8192 : 100000;
  const int reps_a = bench::smoke() ? 1 : 3;
  double base_s = 0;
  std::vector<double> wall_a(ladder.size(), 0);
  std::uint64_t rounds_a = 0, deliveries_a = 0;
  {
    // Verify once, before any timing: every thread count must reproduce
    // the 1-thread report exactly.
    const ConsensusReport ref =
        run_consensus(ConsensusAlgo::kEs, e13a_config(n_a, 1));
    ANON_CHECK_MSG(ref.all_correct_decided && ref.agreement,
                   "E13.a must decide consensus");
    rounds_a = ref.rounds_executed;
    deliveries_a = ref.deliveries;
    for (std::size_t t : ladder) {
      const ConsensusReport rep =
          run_consensus(ConsensusAlgo::kEs, e13a_config(n_a, t));
      ANON_CHECK_MSG(rep.to_string() == ref.to_string(),
                     "E13.a reports must be identical at every thread count");
    }

    Table t("E13.a  sharded engine thread scaling, adversarial ES n=" +
                Table::num(static_cast<std::uint64_t>(n_a)) +
                " (8 shards, interleaved A/B best-of-" +
                std::to_string(reps_a) + ")",
            {"engine threads", "wall-clock s", "speedup vs 1 thread"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      const bench::AbSeconds ab = bench::interleaved_ab_seconds(
          reps_a,
          [&] { run_consensus(ConsensusAlgo::kEs, e13a_config(n_a, 1)); },
          [&] {
            run_consensus(ConsensusAlgo::kEs, e13a_config(n_a, ladder[i]));
          });
      if (i == 0 || ab.a < base_s) base_s = ab.a;
      wall_a[i] = ab.b;
    }
    t.add_row({"1 (baseline)", Table::num(base_s, 3), "1.00x"});
    for (std::size_t i = 0; i < ladder.size(); ++i)
      t.add_row({std::to_string(ladder[i]), Table::num(wall_a[i], 3),
                 Table::ratio(wall_a[i] > 0 ? base_s / wall_a[i] : 0)});
    t.print();
    std::cout << "  (" << Table::num(deliveries_a)
              << " simulated link deliveries in " << Table::num(rounds_a)
              << " rounds; this machine has " << hw
              << " hardware thread(s) — thread ratios only exceed 1.0 on "
                 "multi-core hosts.)\n";
  }

  // ---- E13.b: serial reference vs sharded engine where both fit ------------
  const std::size_t n_b = bench::smoke() ? 512 : 4096;
  const int reps_b = 1;  // the serial side alone is ~30 s at n=4096
  double serial_s = 0, sharded_1t_s = 0;
  std::vector<double> wall_b(ladder.size(), 0);
  {
    ScenarioReport ref;
    serial_s = bench::best_seconds(reps_b, [&] {
      ref = run_scenario(e13b_spec(n_b, 1), 1);
    });
    const std::string ref_json = ref.to_json_string(false);
    auto timed_identical = [&](std::size_t threads) {
      ScenarioReport rep;
      const double s = bench::best_seconds(reps_b, [&] {
        rep = run_scenario(e13b_spec(n_b, threads), 1);
      });
      ANON_CHECK_MSG(rep.to_json_string(false) == ref_json,
                     "E13.b sharded report must be byte-identical to serial");
      return s;
    };
    // engine_threads=1 is the serial engine through the spec surface, so
    // the 1-thread *sharded* row drives LockstepOptions directly.
    {
      ScenarioReport rep;
      ConsensusConfig cfg;  // e13b shape, sharded single-thread
      const ScenarioSpec spec = e13b_spec(n_b, 1);
      cfg.env = spec.env_params(spec.seeds[0]);
      cfg.initial = spec.initial_values();
      cfg.net.seed = spec.seeds[0];
      cfg.net.record_trace = false;
      cfg.net.engine_shards = 8;
      ConsensusReport serial_rep, sharded_rep;
      sharded_1t_s = bench::best_seconds(reps_b, [&] {
        sharded_rep = run_consensus(ConsensusAlgo::kEs, cfg);
      });
      cfg.net.engine_shards = 0;  // the serial reference
      serial_rep = run_consensus(ConsensusAlgo::kEs, cfg);
      ANON_CHECK_MSG(sharded_rep.to_string() == serial_rep.to_string(),
                     "E13.b aggregated engine must reproduce the serial "
                     "report");
    }
    for (std::size_t i = 0; i < ladder.size(); ++i)
      wall_b[i] = timed_identical(ladder[i]);

    Table t("E13.b  serial vs sharded engine, E12-shaped ES run (n=" +
                Table::num(static_cast<std::uint64_t>(n_b)) + ")",
            {"engine", "wall-clock s", "speedup vs serial"});
    t.add_row({"serial reference", Table::num(serial_s, 3), "1.00x"});
    t.add_row({"sharded, 1 thread", Table::num(sharded_1t_s, 3),
               Table::ratio(sharded_1t_s > 0 ? serial_s / sharded_1t_s : 0)});
    for (std::size_t i = 0; i < ladder.size(); ++i)
      t.add_row({"sharded, " + std::to_string(ladder[i]) + " threads",
                 Table::num(wall_b[i], 3),
                 Table::ratio(wall_b[i] > 0 ? serial_s / wall_b[i] : 0)});
    t.print();
    std::cout << "  (the serial engine materializes n² per-link calendar\n"
                 "   entries per round; the sharded engine aggregates\n"
                 "   uniform rounds into per-payload groups, so the win is\n"
                 "   algorithmic, on top of thread scaling.)\n";
  }

  {
    BenchJson j;
    j.set("experiment", std::string("E13"));
    j.set("workload",
          std::string("sharded intra-run execution: adversarial ES thread "
                      "ladder (a) + serial-vs-sharded E12 shape (b)"));
    j.set("hardware_threads", static_cast<std::uint64_t>(hw));
    j.set("a_n", static_cast<std::uint64_t>(n_a));
    j.set("a_rounds", rounds_a);
    j.set("a_deliveries", deliveries_a);
    j.set("a_wall_1t_s", base_s);
    j.set("a_wall_2t_s", wall_a[0]);
    j.set("a_wall_4t_s", wall_a[1]);
    j.set("a_wall_8t_s", wall_a[2]);
    j.set("a_speedup_8t", wall_a[2] > 0 ? base_s / wall_a[2] : 0.0);
    j.set("b_n", static_cast<std::uint64_t>(n_b));
    j.set("b_wall_serial_s", serial_s);
    j.set("b_wall_sharded_1t_s", sharded_1t_s);
    j.set("b_wall_sharded_8t_s", wall_b[2]);
    j.set("b_speedup_sharded_1t",
          sharded_1t_s > 0 ? serial_s / sharded_1t_s : 0.0);
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E13.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: a_n=" << n_a
                << " 8t speedup=" << (wall_a[2] > 0 ? base_s / wall_a[2] : 0.0)
                << "x on " << hw << " hw thread(s), b_n=" << n_b
                << " serial/sharded=" <<
          (sharded_1t_s > 0 ? serial_s / sharded_1t_s : 0.0) << "x]\n";
  }
}

void BM_ShardedEsConsensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ConsensusConfig cfg = e13a_config(n, 2);
    cfg.env.seed = seed;
    cfg.net.seed = seed++;
    const ConsensusReport rep = run_consensus(ConsensusAlgo::kEs, cfg);
    benchmark::DoNotOptimize(rep);
    state.counters["rounds"] = static_cast<double>(rep.last_decision_round);
  }
}
BENCHMARK(BM_ShardedEsConsensus)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
