// E6 — Proposition 1: the weak-set register (anonymous, MS, tolerates ANY
// crash count) vs the ABD majority register (IDs, async, needs f < n/2).
// Shape: ABD is cheaper per op in its comfort zone; the weak-set register
// keeps working where ABD blocks forever.
#include "bench_common.hpp"

#include "baseline/abd.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

void print_tables() {
  const auto seeds = experiment_seeds(10);

  {
    Table t("E6.a  write latency & regularity over MS (weak-set register) vs n",
            {"n", "write latency (rounds)", "regularity violations"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      std::vector<double> lat;
      std::size_t violations = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = n;
        env.seed = seed;
        std::vector<RegScriptOp> script;
        for (int i = 0; i < 8; ++i) {
          script.push_back({static_cast<Round>(2 + 5 * i),
                            static_cast<std::size_t>(i % 2), true,
                            Value(10 + i)});
          script.push_back({static_cast<Round>(4 + 5 * i), 2, false, Value()});
        }
        auto run = run_register_over_ms(env, CrashPlan{}, script);
        if (!run.check.ok) ++violations;
        lat.push_back(static_cast<double>(run.write_latency_rounds_total) /
                      static_cast<double>(run.writes_completed));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(lat).to_string(),
                 Table::num(static_cast<std::uint64_t>(violations))});
    }
    t.print();
  }

  {
    Table t("E6.b  ABD (IDs, async, majority) per-op cost vs n",
            {"n", "messages/write", "virtual time/write"});
    for (std::size_t n : {3u, 5u, 9u, 17u}) {
      std::vector<double> msgs, vtime;
      for (auto seed : seeds) {
        AsyncNet net(n, seed);
        AbdRegister reg(&net);
        std::uint64_t end = 0;
        reg.write(0, Value(1), [&](std::uint64_t e) { end = e; });
        net.events().run();
        msgs.push_back(static_cast<double>(reg.messages()));
        vtime.push_back(static_cast<double>(end));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(aggregate(msgs).mean, 0),
                 aggregate(vtime).to_string()});
    }
    t.print();
  }

  {
    Table t("E6.c  crash tolerance head-to-head (n=5): who still completes a write?",
            {"crashes f", "weak-set register (MS)", "ABD (majority)"});
    for (std::size_t f : {0u, 2u, 3u, 4u}) {
      // Weak-set register over MS.
      std::size_t ws_ok = 0, abd_ok = 0;
      for (auto seed : seeds) {
        EnvParams env;
        env.kind = EnvKind::kMS;
        env.n = 5;
        env.seed = seed;
        CrashPlan crashes;  // crash early, before the write
        for (std::size_t i = 0; i < f; ++i) crashes.crash_at(4 - i, 1);
        std::vector<RegScriptOp> script{{5, 0, true, Value(7)},
                                        {30, 1, false, Value()}};
        auto run = run_register_over_ms(env, crashes, script, 80);
        if (run.writes_completed == 1 && run.check.ok) ++ws_ok;

        AsyncNet net(5, seed);
        for (std::size_t i = 0; i < f; ++i) net.crash(4 - i);
        AbdRegister reg(&net);
        bool done = false;
        reg.write(0, Value(7), [&](std::uint64_t) { done = true; });
        net.events().run();
        if (done) ++abd_ok;
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(ws_ok)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(abd_ok)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size()))});
    }
    t.print();
    std::cout << "  (weak-set register keeps completing with f = n-1; ABD "
                 "blocks as soon as the majority is gone — the paper's "
                 "synchrony-for-quorums trade.)\n";
  }
}

void BM_WsRegisterWrite(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    EnvParams env;
    env.kind = EnvKind::kMS;
    env.n = static_cast<std::size_t>(state.range(0));
    env.seed = seed++;
    std::vector<RegScriptOp> script{{2, 0, true, Value(7)}};
    auto run = run_register_over_ms(env, CrashPlan{}, script, 40);
    benchmark::DoNotOptimize(run);
  }
}
BENCHMARK(BM_WsRegisterWrite)->Arg(5)->Arg(17);

void BM_AbdWrite(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    AsyncNet net(static_cast<std::size_t>(state.range(0)), seed++);
    AbdRegister reg(&net);
    reg.write(0, Value(1), [](std::uint64_t) {});
    net.events().run();
    benchmark::DoNotOptimize(reg);
  }
}
BENCHMARK(BM_AbdWrite)->Arg(5)->Arg(17);

}  // namespace
}  // namespace anon

int main(int argc, char** argv) {
  return anon::bench::main_with_tables(argc, argv, &anon::print_tables);
}
