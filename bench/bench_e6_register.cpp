// E6 — Proposition 1: the weak-set register (anonymous, MS, tolerates ANY
// crash count) vs the ABD majority register (IDs, async, needs f < n/2).
// Shape: ABD is cheaper per op in its comfort zone; the weak-set register
// keeps working where ABD blocks forever.  Both sides are scenario
// families (weakset register mode / abd); BENCH_E6.json tracks the two
// preset cells through the unified emitter.
#include "bench_common.hpp"

namespace anon {
namespace {

using bench::run_scenario;

// The preset workloads, rescaled: one source of truth for each shape
// (src/scenario/presets.cpp), n / crash prefix / seeds varied here.
ScenarioSpec register_spec(std::size_t n,
                           const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec = bench::preset_spec("e6-register");
  spec.seeds = seeds;
  spec.n = n;
  return spec;
}

ScenarioSpec abd_spec(std::size_t n, std::size_t crash_prefix,
                      const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec spec = bench::preset_spec("e6-abd");
  spec.seeds = seeds;
  spec.n = n;
  spec.abd.crash_prefix = crash_prefix;
  return spec;
}

// The tracked workload (BENCH_E6.json): the two preset cells (weak-set
// register n=9 / ABD n=9), interleaved A/B.
void write_bench_json(const std::vector<std::uint64_t>& seeds) {
  ScenarioSpec ws = bench::preset_spec("e6-register");
  ScenarioSpec abd = bench::preset_spec("e6-abd");
  ws.seeds = seeds;
  abd.seeds = seeds;
  const int reps = bench::smoke() ? 2 : 3;
  ScenarioReport rep_ws, rep_abd;
  const bench::AbSeconds ab = bench::interleaved_ab_seconds(
      reps, [&] { rep_ws = run_scenario(ws, 1); },
      [&] { rep_abd = run_scenario(abd, 1); });
  std::size_t ws_ok = 0, write_lat = 0, writes = 0;
  for (const auto& cell : rep_ws.weakset_cells) {
    ws_ok += cell.spec_ok ? 1 : 0;
    write_lat += cell.write_latency_total;
    writes += cell.writes_completed;
  }
  std::size_t abd_done = 0;
  std::uint64_t abd_msgs = 0;
  for (const auto& cell : rep_abd.abd_cells) {
    abd_done += cell.completed ? 1 : 0;
    abd_msgs += cell.messages;
  }
  BenchJson j;
  j.set("experiment", std::string("E6"));
  j.set("workload",
        std::string("Prop-1 weak-set register over MS vs ABD majority "
                    "register, n=9"));
  j.set("n", static_cast<std::uint64_t>(ws.n));
  j.set("cells", static_cast<std::uint64_t>(seeds.size()));
  j.set("reps", static_cast<std::uint64_t>(reps));
  j.set("wall_ws_register_s", ab.a);
  j.set("wall_abd_s", ab.b);
  j.set("ws_regular", static_cast<std::uint64_t>(ws_ok));
  j.set("ws_writes_completed", static_cast<std::uint64_t>(writes));
  j.set("ws_write_latency_rounds", static_cast<std::uint64_t>(write_lat));
  j.set("abd_writes_completed", static_cast<std::uint64_t>(abd_done));
  j.set("abd_messages", abd_msgs);
  j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
  const std::string path = bench::json_path("BENCH_E6.json");
  if (j.write(path))
    std::cout << "  [" << path << " written: ws_s=" << ab.a
              << " abd_s=" << ab.b << "]\n";
}

void print_tables() {
  const auto seeds = experiment_seeds(bench::smoke() ? 3 : 10);
  const std::vector<std::size_t> sizes =
      bench::smoke() ? std::vector<std::size_t>{3u, 5u}
                     : std::vector<std::size_t>{3u, 5u, 9u, 17u};

  {
    Table t("E6.a  write latency & regularity over MS (weak-set register) vs n",
            {"n", "write latency (rounds)", "regularity violations"});
    for (std::size_t n : sizes) {
      std::vector<double> lat;
      std::size_t violations = 0;
      for (const auto& cell : run_scenario(register_spec(n, seeds)).weakset_cells) {
        if (!cell.spec_ok) ++violations;
        lat.push_back(static_cast<double>(cell.write_latency_total) /
                      static_cast<double>(cell.writes_completed));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 aggregate(lat).to_string(),
                 Table::num(static_cast<std::uint64_t>(violations))});
    }
    t.print();
  }

  {
    Table t("E6.b  ABD (IDs, async, majority) per-op cost vs n",
            {"n", "messages/write", "virtual time/write"});
    for (std::size_t n : sizes) {
      std::vector<double> msgs, vtime;
      for (const auto& cell : run_scenario(abd_spec(n, 0, seeds)).abd_cells) {
        msgs.push_back(static_cast<double>(cell.messages));
        vtime.push_back(static_cast<double>(cell.end_time));
      }
      t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                 Table::num(aggregate(msgs).mean, 0),
                 aggregate(vtime).to_string()});
    }
    t.print();
  }

  {
    Table t("E6.c  crash tolerance head-to-head (n=5): who still completes a write?",
            {"crashes f", "weak-set register (MS)", "ABD (majority)"});
    for (std::size_t f : {0u, 2u, 3u, 4u}) {
      // Weak-set register over MS: crash f processes up front (before the
      // write), one write at round 5, one read at round 30.
      ScenarioSpec ws;
      ws.family = ScenarioFamily::kWeakset;
      ws.seeds = seeds;
      ws.env_kind = EnvKind::kMS;
      ws.n = 5;
      ws.weakset.mode = WeaksetSpecSection::Mode::kRegister;
      ws.weakset.script = {{5, 0, true, 7}, {30, 1, false, 0}};
      ws.weakset.extra_rounds = 80;
      ws.weakset.validate_env = false;
      if (f > 0) {
        ws.crashes.kind = CrashGenSpec::Kind::kExplicit;
        for (std::size_t i = 0; i < f; ++i)
          ws.crashes.entries.push_back({4 - i, 1});
      }
      std::size_t ws_ok = 0, abd_ok = 0;
      for (const auto& cell : run_scenario(ws).weakset_cells)
        if (cell.writes_completed == 1 && cell.spec_ok) ++ws_ok;
      for (const auto& cell : run_scenario(abd_spec(5, f, seeds)).abd_cells)
        if (cell.completed) ++abd_ok;
      t.add_row({Table::num(static_cast<std::uint64_t>(f)),
                 Table::num(static_cast<std::uint64_t>(ws_ok)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size())),
                 Table::num(static_cast<std::uint64_t>(abd_ok)) + "/" +
                     Table::num(static_cast<std::uint64_t>(seeds.size()))});
    }
    t.print();
    std::cout << "  (weak-set register keeps completing with f = n-1; ABD "
                 "blocks as soon as the majority is gone — the paper's "
                 "synchrony-for-quorums trade.)\n";
  }

  write_bench_json(seeds);
}

void BM_WsRegisterWrite(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec;
    spec.family = ScenarioFamily::kWeakset;
    spec.seeds = {seed++};
    spec.env_kind = EnvKind::kMS;
    spec.n = static_cast<std::size_t>(state.range(0));
    spec.weakset.mode = WeaksetSpecSection::Mode::kRegister;
    spec.weakset.script = {{2, 0, true, 7}};
    spec.weakset.extra_rounds = 40;
    spec.weakset.validate_env = false;
    const auto report = run_scenario(spec, 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WsRegisterWrite)->Arg(5)->Arg(17);

void BM_AbdWrite(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto report = run_scenario(
        abd_spec(static_cast<std::size_t>(state.range(0)), 0, {seed++}), 1);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AbdWrite)->Arg(5)->Arg(17);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
