// E14 — the fault-injection survival map (PR 7 tentpole).
//
// Sweeps fault intensity × environment (MS / ES / ESS) with the seeded
// FaultPlan layer (env/faults.hpp) over the E14 preset shape: per-link
// loss at `intensity`, duplication at intensity/2, reorder at `intensity`,
// one omission-faulty sender, one churn window, the no-progress watchdog
// armed.  Per cell the map reports how many runs still decide, how many
// degrade to `undecided`, and how far the decision round stretches —
// while agreement/validity are CHECKed to hold in every exempt-source
// cell (the safety contract: the planned source's links are fault-free,
// which is exactly what Algorithm 2's agreement proof consumes).
//
// A second, smaller table clears the exemption (the e14-hostile shape) to
// map where the guarantees actually break: agreement violations are
// *counted* there, not checked, because breaking is the datum.
//
// BENCH_E14.json records the survival row at the heaviest intensity per
// environment plus the hostile violation count, so the tracked numbers
// catch both a fault layer that stops degrading (too kind) and one that
// breaks safety under exemption (the real regression).
#include "bench_common.hpp"

#include <vector>

#include "algo/runner.hpp"

namespace anon {
namespace {

using bench::run_scenario;

ScenarioSpec grid_spec(EnvKind kind, double intensity, std::size_t n,
                       std::size_t seed_count, bool exempt_source) {
  ScenarioSpec spec = bench::preset_spec("e14-survival");
  spec.name = "";
  spec.env_kind = kind;
  spec.n = n;
  spec.seeds = experiment_seeds(seed_count);
  spec.consensus.algo =
      kind == EnvKind::kESS ? ConsensusAlgo::kEss : ConsensusAlgo::kEs;
  spec.faults.loss_prob = intensity;
  spec.faults.dup_prob = intensity / 2;
  spec.faults.reorder_prob = intensity;
  spec.faults.exempt_source = exempt_source;
  if (intensity == 0) {
    // The fault-free baseline column: an inactive plan, not a plan that
    // only omits/churns.
    spec.faults.omission_senders.clear();
    spec.faults.churn.clear();
  }
  return spec;
}

struct CellStats {
  std::size_t cells = 0, decided = 0, undecided = 0, safety_ok = 0;
  std::uint64_t drops = 0, dups = 0;
  double mean_last = 0;  // mean last decision round over the decided cells
};

CellStats stats_of(const ScenarioReport& rep) {
  CellStats s;
  std::uint64_t last_sum = 0;
  for (const auto& c : rep.consensus_cells) {
    ++s.cells;
    if (c.report.all_correct_decided) {
      ++s.decided;
      last_sum += c.report.last_decision_round;
    }
    if (c.report.undecided) ++s.undecided;
    if (c.report.agreement && c.report.validity) ++s.safety_ok;
    s.drops += c.report.fault_drops;
    s.dups += c.report.fault_dups;
  }
  s.mean_last =
      s.decided > 0 ? static_cast<double>(last_sum) / s.decided : 0;
  return s;
}

const char* env_name(EnvKind k) {
  switch (k) {
    case EnvKind::kMS: return "MS";
    case EnvKind::kES: return "ES";
    case EnvKind::kESS: return "ESS";
  }
  return "?";
}

void print_tables() {
  const std::size_t n = bench::smoke() ? 8 : 32;
  const std::size_t seeds = bench::smoke() ? 3 : 10;
  const std::vector<double> intensities =
      bench::smoke() ? std::vector<double>{0, 0.2}
                     : std::vector<double>{0, 0.05, 0.1, 0.2, 0.35, 0.5};
  const std::vector<EnvKind> envs = {EnvKind::kMS, EnvKind::kES,
                                     EnvKind::kESS};

  // ---- The survival map (source exempt: safety must hold) ------------------
  Table t("E14  fault survival map, n=" + std::to_string(n) + ", " +
              std::to_string(seeds) +
              " seeds per cell (source exempt: safety CHECKed, only "
              "termination degrades)",
          {"env", "intensity", "decided", "undecided", "mean last round",
           "link drops", "link dups"});
  // Indexed [env][intensity]; the JSON below reads the heaviest column.
  std::vector<std::vector<CellStats>> grid(envs.size());
  double grid_wall_s = 0;
  for (std::size_t e = 0; e < envs.size(); ++e) {
    for (const double intensity : intensities) {
      ScenarioReport rep;
      grid_wall_s += bench::timed_seconds([&] {
        rep = run_scenario(grid_spec(envs[e], intensity, n, seeds, true), 1);
      });
      const CellStats s = stats_of(rep);
      ANON_CHECK_MSG(s.safety_ok == s.cells,
                     "E14: agreement/validity must hold in every "
                     "exempt-source cell");
      grid[e].push_back(s);
      t.add_row({env_name(envs[e]), Table::num(intensity, 2),
                 std::to_string(s.decided) + "/" + std::to_string(s.cells),
                 std::to_string(s.undecided), Table::num(s.mean_last, 1),
                 Table::num(s.drops), Table::num(s.dups)});
    }
  }
  t.print();
  std::cout << "  (every cell above kept agreement and validity; cells that "
               "stopped deciding\n   degraded to a graceful watchdog "
               "`undecided`, never an abort.)\n";

  // ---- Where safety actually breaks (exemption off) ------------------------
  const double hostile_intensity = bench::smoke() ? 0.2 : 0.35;
  Table h("E14  exemption OFF at intensity " +
              Table::num(hostile_intensity, 2) +
              " (the contract deliberately broken)",
          {"env", "decided", "undecided", "safety held"});
  std::size_t hostile_cells = 0, hostile_safety_ok = 0;
  for (const EnvKind kind : envs) {
    const ScenarioReport rep =
        run_scenario(grid_spec(kind, hostile_intensity, n, seeds, false), 1);
    const CellStats s = stats_of(rep);
    hostile_cells += s.cells;
    hostile_safety_ok += s.safety_ok;
    h.add_row({env_name(kind),
               std::to_string(s.decided) + "/" + std::to_string(s.cells),
               std::to_string(s.undecided),
               std::to_string(s.safety_ok) + "/" + std::to_string(s.cells)});
  }
  h.print();
  std::cout << "  (violations here are the survival map's edge, not a bug: "
               "without the source\n   exemption the agreement proof's "
               "premise is gone.)\n";

  {
    const CellStats& ms = grid[0].back();
    const CellStats& es = grid[1].back();
    const CellStats& ess = grid[2].back();
    BenchJson j;
    j.set("experiment", std::string("E14"));
    j.set("workload",
          std::string("fault survival map: intensity x env grid, seeded "
                      "loss/dup/reorder + omission + churn, watchdog-bounded"));
    j.set("n", static_cast<std::uint64_t>(n));
    j.set("seeds", static_cast<std::uint64_t>(seeds));
    j.set("max_intensity", intensities.back());
    j.set("ms_decided", static_cast<std::uint64_t>(ms.decided));
    j.set("ms_undecided", static_cast<std::uint64_t>(ms.undecided));
    j.set("es_decided", static_cast<std::uint64_t>(es.decided));
    j.set("es_undecided", static_cast<std::uint64_t>(es.undecided));
    j.set("es_mean_last_round", es.mean_last);
    j.set("ess_decided", static_cast<std::uint64_t>(ess.decided));
    j.set("ess_undecided", static_cast<std::uint64_t>(ess.undecided));
    j.set("es_link_drops", es.drops);
    j.set("es_link_dups", es.dups);
    j.set("hostile_intensity", hostile_intensity);
    j.set("hostile_cells", static_cast<std::uint64_t>(hostile_cells));
    j.set("hostile_safety_held",
          static_cast<std::uint64_t>(hostile_safety_ok));
    j.set("grid_wall_s", grid_wall_s);
    j.set("smoke", static_cast<std::uint64_t>(bench::smoke() ? 1 : 0));
    const std::string path = bench::json_path("BENCH_E14.json");
    if (j.write(path))
      std::cout << "  [" << path << " written: es " << es.decided << "/"
                << es.cells << " decided at intensity "
                << intensities.back() << ", " << hostile_safety_ok << "/"
                << hostile_cells << " hostile cells kept safety]\n";
  }
}

void BM_FaultedEsConsensus(benchmark::State& state) {
  // Per-run cost of the fault layer at intensity range(0)/100 (0 = the
  // inactive-plan fast path, for the overhead baseline).
  const double intensity = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ScenarioSpec spec = grid_spec(EnvKind::kES, intensity, 16, 1, true);
    spec.seeds = {seed++};
    const ScenarioReport rep = run_scenario(spec, 1);
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_FaultedEsConsensus)->Arg(0)->Arg(10)->Arg(35);

}  // namespace
}  // namespace anon

ANON_BENCH_MAIN(&anon::print_tables)
