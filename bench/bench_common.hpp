// Shared helpers for the experiment binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>

#include "algo/runner.hpp"
#include "core/sweep.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace anon::bench {

// CI smoke mode (ANON_BENCH_SMOKE=1): benches shrink their grids to a
// seconds-long configuration that still exercises every code path, so the
// Release bench job catches regressions without the full table cost.
inline bool smoke() {
  const char* v = std::getenv("ANON_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Where the machine-readable results go (BENCH_E1.json etc.).  Defaults to
// the working directory; override with ANON_BENCH_JSON_DIR.
inline std::string json_path(const std::string& filename) {
  const char* dir = std::getenv("ANON_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  return std::string(dir) + "/" + filename;
}

// Runs the experiment tables first, then google-benchmark.
// Usage:  int main(int argc, char** argv) { return anon::bench::main_with_tables(argc, argv, &print_tables); }
inline int main_with_tables(int argc, char** argv, void (*print_tables)()) {
  print_tables();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

inline ConsensusConfig consensus_config(EnvKind kind, std::size_t n,
                                        Round stab, std::uint64_t seed,
                                        std::size_t crashes = 0) {
  ConsensusConfig cfg;
  cfg.env.kind = kind;
  cfg.env.n = n;
  cfg.env.seed = seed;
  cfg.env.stabilization = stab;
  cfg.initial = distinct_values(n);
  cfg.net.seed = seed;
  cfg.net.max_rounds = 60000;
  cfg.net.record_deliveries = false;  // perf: traces can be huge
  cfg.validate_env = false;
  if (crashes > 0)
    cfg.crashes = random_crashes(n, crashes, std::max<Round>(2, stab), seed + 7);
  return cfg;
}

// One config per seed, for the parallel sweep runner.
inline std::vector<ConsensusConfig> seed_grid(
    EnvKind kind, std::size_t n, Round stab,
    const std::vector<std::uint64_t>& seeds, std::size_t crashes = 0) {
  std::vector<ConsensusConfig> grid;
  grid.reserve(seeds.size());
  for (auto seed : seeds)
    grid.push_back(consensus_config(kind, n, stab, seed, crashes));
  return grid;
}

// Wall-clock seconds of `fn()`.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace anon::bench
