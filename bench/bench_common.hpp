// Shared helpers for the experiment binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>

#include "algo/runner.hpp"
#include "common/check.hpp"
#include "core/sweep.hpp"
#include "scenario/registry.hpp"
#include "sim/bench_json.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace anon::bench {

// CI smoke mode (ANON_BENCH_SMOKE=1): benches shrink their grids to a
// seconds-long configuration that still exercises every code path, so the
// Release bench job catches regressions without the full table cost.
inline bool smoke() {
  const char* v = std::getenv("ANON_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Where the machine-readable results go (BENCH_E1.json etc.).  Defaults to
// the working directory; override with ANON_BENCH_JSON_DIR.
inline std::string json_path(const std::string& filename) {
  const char* dir = std::getenv("ANON_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  return std::string(dir) + "/" + filename;
}

// Runs the experiment tables first, then google-benchmark.  Every bench
// uses the ANON_BENCH_MAIN macro below rather than its own main().
inline int main_with_tables(int argc, char** argv, void (*print_tables)()) {
  print_tables();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

// Runs a spec through the one scenario surface (ScenarioRegistry).  All
// bench tables dispatch here; the per-family setup loops the benches used
// to hand-roll live behind the family runners now.
inline ScenarioReport run_scenario(const ScenarioSpec& spec,
                                   std::size_t threads = 0) {
  return ScenarioRegistry::instance().run(spec, {.threads = threads});
}

// A copy of a registered preset's spec, for benches that rescale it
// (seed counts, smoke grids) before running.
inline ScenarioSpec preset_spec(const std::string& name) {
  const ScenarioPreset* p = ScenarioRegistry::instance().find_preset(name);
  ANON_CHECK_MSG(p != nullptr, "unknown preset " + name);
  return p->spec;
}

// The standard consensus scenario shape of the experiment grids (the
// ex-`consensus_config`, declaratively): distinct proposals, crash-free or
// f random crashes in [1, max(2, stab)] drawn from seed+7.
inline ScenarioSpec consensus_spec(ConsensusAlgo algo, EnvKind kind,
                                   std::size_t n, Round stab,
                                   std::vector<std::uint64_t> seeds,
                                   std::size_t crashes = 0) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = std::move(seeds);
  spec.env_kind = kind;
  spec.n = n;
  spec.stabilization = stab;
  spec.consensus.algo = algo;
  if (crashes > 0) {
    spec.crashes.kind = CrashGenSpec::Kind::kRandom;
    spec.crashes.count = crashes;
    spec.crashes.horizon = std::max<Round>(2, stab);
    spec.crashes.seed_offset = 7;
  }
  return spec;
}

// Wall-clock seconds of `fn()`.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// --- Shared timing helpers (single home for the patterns the tracked
// --- BENCH_*.json numbers are produced with; previously copy-pasted
// --- per bench binary) -------------------------------------------------

// Best wall clock of `fn()` over `reps` repetitions (first rep included:
// tracked workloads are long enough that warm-up noise loses to the min).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const double s = timed_seconds(fn);
    if (r == 0 || s < best) best = s;
  }
  return best;
}

// Interleaved A/B comparison on the same machine: alternate the two
// workloads rep by rep so thermal/frequency drift hits both equally, and
// report each side's best rep.  This is the protocol behind every
// "N× speedup" number committed in the BENCH_*.json files.
struct AbSeconds {
  double a = 0;
  double b = 0;
  double ratio() const { return b > 0 ? a / b : 0; }  // a vs b speedup
};

template <typename FnA, typename FnB>
AbSeconds interleaved_ab_seconds(int reps, FnA&& fa, FnB&& fb) {
  AbSeconds out;
  for (int r = 0; r < reps; ++r) {
    const double sa = timed_seconds(fa);
    const double sb = timed_seconds(fb);
    if (r == 0 || sa < out.a) out.a = sa;
    if (r == 0 || sb < out.b) out.b = sb;
  }
  return out;
}

// Accumulating variant for benches that interleave A/B *segments* inside
// one pass (e.g. E10 steps two engines to a shared horizon): lap each
// segment into its stream and read the per-stream totals at the end.
class InterleavedTimer {
 public:
  template <typename Fn>
  void lap_a(Fn&& fn) {
    a_ += timed_seconds(fn);
  }
  template <typename Fn>
  void lap_b(Fn&& fn) {
    b_ += timed_seconds(fn);
  }
  double a() const { return a_; }
  double b() const { return b_; }
  double total() const { return a_ + b_; }

 private:
  double a_ = 0;
  double b_ = 0;
};

}  // namespace anon::bench

// The shared bench entry point: tables first (through the scenario
// registry), then google-benchmark.  One macro instead of a copy of main()
// per binary.
#define ANON_BENCH_MAIN(print_tables_fn)                                      \
  int main(int argc, char** argv) {                                           \
    return ::anon::bench::main_with_tables(argc, argv, (print_tables_fn));    \
  }
