// MsEmulationCohort ≡ MsEmulation: the cohort-collapsed Algorithm 5 engine
// must reproduce the expanded engine's observable state byte-for-byte —
// every report-feeding quantity, per-process automaton state, and the
// weak-set content — across randomized (seed, shape, fault-plan) configs,
// at every engine thread/shard mode, and across the max_ticks boundary.
#include "emul/ms_emulation_cohort.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "emul/echo.hpp"
#include "emul/ms_emulation.hpp"
#include "weakset/ms_weak_set.hpp"

namespace anon {
namespace {

struct EmuConfig {
  std::size_t n = 8;
  std::uint64_t seed = 1;
  std::uint64_t min_lat = 1, max_lat = 6;
  std::vector<std::uint64_t> skew;        // empty = uniform
  Round rounds = 6;
  std::uint64_t max_ticks = 1000000;
  bool weakset_inner = false;
  std::vector<std::int64_t> echo_seeds;   // echo inner: per-process seed
  std::vector<std::pair<ProcId, std::int64_t>> adds;  // weakset inner
  FaultParams faults;
  std::size_t threads = 1, shards = 0;
};

struct Observed {
  bool ran = false;
  std::uint64_t deliveries = 0;
  std::uint64_t last_eor_tick = 0;
  std::vector<Round> rounds;
  std::size_t weak_set_size = 0;
  std::size_t interned = 0;
  // Weakset inner: per-process (blocked, get contents).
  std::vector<bool> blocked;
  std::vector<std::vector<std::int64_t>> gets;
};

MsEmulationOptions base_options(const EmuConfig& cfg) {
  MsEmulationOptions opt;
  opt.seed = cfg.seed;
  opt.min_add_latency = cfg.min_lat;
  opt.max_add_latency = cfg.max_lat;
  opt.skew = cfg.skew;
  opt.max_ticks = cfg.max_ticks;
  if (cfg.faults.active())
    opt.faults = EmulFaultModel(cfg.faults, cfg.seed, cfg.n);
  return opt;
}

std::vector<std::int64_t> set_contents(const ValueSet& s) {
  std::vector<std::int64_t> out;
  for (const Value& v : s) out.push_back(v.get());
  return out;
}

Observed run_expanded(const EmuConfig& cfg) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < cfg.n; ++i) {
    if (cfg.weakset_inner)
      autos.push_back(std::make_unique<MsWeakSetAutomaton>());
    else
      autos.push_back(std::make_unique<EchoAutomaton>(cfg.echo_seeds[i]));
  }
  MsEmulation<ValueSet> emu(std::move(autos), base_options(cfg));
  for (const auto& [p, v] : cfg.adds)
    dynamic_cast<MsWeakSetAutomaton&>(
        const_cast<GirafProcess<ValueSet>&>(emu.process(p)).automaton())
        .start_add(Value(v));

  Observed o;
  o.ran = emu.run_until_round(cfg.rounds);
  o.deliveries = emu.trace().deliveries().size();
  o.last_eor_tick = emu.trace().end_of_rounds().back().time;
  for (ProcId p = 0; p < cfg.n; ++p) o.rounds.push_back(emu.round(p));
  o.weak_set_size = emu.weak_set_size();
  o.interned = emu.interned_elements();
  if (cfg.weakset_inner) {
    for (ProcId p = 0; p < cfg.n; ++p) {
      const auto& w =
          dynamic_cast<const MsWeakSetAutomaton&>(emu.process(p).automaton());
      o.blocked.push_back(w.add_blocked());
      o.gets.push_back(set_contents(w.get()));
    }
  }
  return o;
}

Observed run_cohort(const EmuConfig& cfg, EmulCohortStats* stats = nullptr) {
  using Engine = MsEmulationCohort<ValueSet>;
  std::vector<Engine::InitGroup> groups;
  if (cfg.weakset_inner) {
    Engine::InitGroup g;
    g.automaton = std::make_unique<MsWeakSetAutomaton>();
    for (ProcId p = 0; p < cfg.n; ++p) g.members.push_back(p);
    groups.push_back(std::move(g));
  } else {
    std::map<std::int64_t, std::vector<ProcId>> by_seed;
    for (ProcId p = 0; p < cfg.n; ++p) by_seed[cfg.echo_seeds[p]].push_back(p);
    for (auto& [seed, members] : by_seed) {
      Engine::InitGroup g;
      g.automaton = std::make_unique<EchoAutomaton>(seed);
      g.members = std::move(members);
      groups.push_back(std::move(g));
    }
  }
  MsEmulationCohortOptions copt;
  copt.base = base_options(cfg);
  copt.engine_threads = cfg.threads;
  copt.engine_shards = cfg.shards;
  Engine emu(std::move(groups), copt);
  for (const auto& [p, v] : cfg.adds)
    emu.mutate_member(p, [v = v](Automaton<ValueSet>& a) {
      dynamic_cast<MsWeakSetAutomaton&>(a).start_add(Value(v));
    });

  Observed o;
  o.ran = emu.run_until_round(cfg.rounds);
  o.deliveries = emu.deliveries();
  o.last_eor_tick = emu.last_eor_tick();
  for (ProcId p = 0; p < cfg.n; ++p) o.rounds.push_back(emu.round(p));
  o.weak_set_size = emu.weak_set_size();
  o.interned = emu.interned_elements();
  if (cfg.weakset_inner) {
    for (ProcId p = 0; p < cfg.n; ++p) {
      const auto& w = dynamic_cast<const MsWeakSetAutomaton&>(
          emu.representative(p).automaton());
      o.blocked.push_back(w.add_blocked());
      o.gets.push_back(set_contents(w.get()));
    }
  }
  if (stats != nullptr) *stats = emu.stats();
  return o;
}

void expect_equal(const Observed& a, const Observed& b, const char* what) {
  EXPECT_EQ(a.ran, b.ran) << what;
  EXPECT_EQ(a.deliveries, b.deliveries) << what;
  EXPECT_EQ(a.last_eor_tick, b.last_eor_tick) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.weak_set_size, b.weak_set_size) << what;
  EXPECT_EQ(a.interned, b.interned) << what;
  EXPECT_EQ(a.blocked, b.blocked) << what;
  EXPECT_EQ(a.gets, b.gets) << what;
}

EmuConfig random_config(std::uint32_t idx) {
  Rng rng(0xe16c0de + idx * 977);
  EmuConfig cfg;
  cfg.n = 2 + rng.below(13);
  cfg.seed = 1 + rng.below(100000);
  cfg.min_lat = 1 + rng.below(3);
  cfg.max_lat = cfg.min_lat + rng.below(5);
  cfg.rounds = 3 + static_cast<Round>(rng.below(7));
  if (rng.below(2) == 0) {
    cfg.skew.resize(cfg.n);
    for (auto& s : cfg.skew) s = 1 + rng.below(3);
  }
  cfg.weakset_inner = idx % 2 == 1;
  if (cfg.weakset_inner) {
    const std::size_t adds = rng.below(std::min<std::size_t>(cfg.n, 4));
    for (std::size_t a = 0; a < adds; ++a)
      cfg.adds.emplace_back(static_cast<ProcId>((a * 5 + 1) % cfg.n),
                            static_cast<std::int64_t>(10 + a));
  } else {
    cfg.echo_seeds.resize(cfg.n);
    for (auto& s : cfg.echo_seeds)
      s = static_cast<std::int64_t>(rng.below(4));
  }
  if (idx % 3 == 2) {
    cfg.max_ticks = 3000;  // bound fault runs that may never finish
    switch (rng.below(4)) {
      case 0:
        cfg.faults.loss_prob = 0.4;
        break;
      case 1:
        cfg.faults.reorder_prob = 0.5;
        cfg.faults.max_extra_delay = 3;
        break;
      case 2:
        cfg.faults.omission_senders = {static_cast<ProcId>(rng.below(cfg.n))};
        break;
      default:
        cfg.faults.churn = {{static_cast<ProcId>(rng.below(cfg.n)),
                             static_cast<Round>(4 + rng.below(20)),
                             static_cast<Round>(30 + rng.below(40))}};
        break;
    }
  }
  return cfg;
}

TEST(EmulationCohort, MatchesExpandedAcrossRandomConfigs) {
  for (std::uint32_t idx = 0; idx < 30; ++idx) {
    SCOPED_TRACE(idx);
    const EmuConfig cfg = random_config(idx);
    expect_equal(run_expanded(cfg), run_cohort(cfg), "config");
  }
}

TEST(EmulationCohort, ThreadAndShardModesAreByteIdentical) {
  const std::pair<std::size_t, std::size_t> kModes[] = {
      {1, 0}, {2, 0}, {8, 0}, {1, 8}};
  for (std::uint32_t idx : {0u, 1u, 5u, 8u}) {
    SCOPED_TRACE(idx);
    EmuConfig cfg = random_config(idx);
    const Observed expanded = run_expanded(cfg);
    for (const auto& [threads, shards] : kModes) {
      cfg.threads = threads;
      cfg.shards = shards;
      expect_equal(expanded, run_cohort(cfg), "mode");
    }
  }
}

// Identical echo seeds with mixed skew: a lagging class catches up to
// content a faster class already published, interning an element that is
// already in the visible log — the exact per-member fallback must engage
// and stay equivalent.
TEST(EmulationCohort, CatchUpCornerStaysExact) {
  EmuConfig cfg;
  cfg.n = 10;
  cfg.seed = 77;
  cfg.rounds = 8;
  cfg.echo_seeds.assign(cfg.n, 3);
  cfg.skew.assign(cfg.n, 1);
  cfg.skew[2] = 3;
  cfg.skew[7] = 2;
  EmulCohortStats stats;
  expect_equal(run_expanded(cfg), run_cohort(cfg, &stats), "corner");
  EXPECT_GE(stats.corner_ticks, 1u);
}

// An injected weakset add on one member of a collapsed class must split
// that member off and still reproduce the expanded run exactly.
TEST(EmulationCohort, InjectedAddSplitsOneMemberOut) {
  EmuConfig cfg;
  cfg.n = 12;
  cfg.seed = 5;
  cfg.rounds = 7;
  cfg.weakset_inner = true;
  cfg.adds = {{3, 42}};
  EmulCohortStats stats;
  expect_equal(run_expanded(cfg), run_cohort(cfg, &stats), "split");
  EXPECT_GE(stats.splits, 1u);
  EXPECT_GE(stats.clones, 1u);
}

// Anonymity pays: identical probes collapse to a class count driven by the
// latency/round-drift support, which saturates — quadrupling n must not
// come close to quadrupling the classes, and classes stay well under n.
TEST(EmulationCohort, IdenticalProbesCollapse) {
  std::size_t max_classes_small = 0, max_classes_large = 0;
  for (const std::size_t n : {64u, 256u}) {
    EmuConfig cfg;
    cfg.n = n;
    cfg.seed = 9;
    cfg.rounds = 10;
    cfg.echo_seeds.assign(cfg.n, 1);
    EmulCohortStats stats;
    expect_equal(run_expanded(cfg), run_cohort(cfg, &stats), "collapse");
    (n == 64 ? max_classes_small : max_classes_large) = stats.max_classes;
  }
  EXPECT_LE(max_classes_large, 3 * max_classes_small);
  EXPECT_LE(max_classes_large, 256u / 2);
}

// `ran` must flip at exactly the same max_ticks cutoff as the expanded
// loop (including the completion-on-the-last-tick edge, which the
// expanded engine reports as false).
TEST(EmulationCohort, MaxTicksBoundaryMatches) {
  for (std::uint64_t max_ticks = 2; max_ticks <= 48; ++max_ticks) {
    SCOPED_TRACE(max_ticks);
    EmuConfig cfg;
    cfg.n = 6;
    cfg.seed = 21;
    cfg.rounds = 4;
    cfg.max_ticks = max_ticks;
    cfg.echo_seeds = {0, 1, 0, 1, 2, 0};
    expect_equal(run_expanded(cfg), run_cohort(cfg), "boundary");
  }
}

// A never-rejoining churn window pins its process down: both engines must
// degrade gracefully to ran=false with identical partial progress.
TEST(EmulationCohort, ChurnPinnedProcessDegradesGracefully) {
  EmuConfig cfg;
  cfg.n = 8;
  cfg.seed = 13;
  cfg.rounds = 6;
  cfg.max_ticks = 800;
  cfg.echo_seeds.assign(cfg.n, 2);
  cfg.faults.churn = {{4, 10, 0}};  // leaves at tick 10, never returns
  const Observed expanded = run_expanded(cfg);
  EXPECT_FALSE(expanded.ran);
  expect_equal(expanded, run_cohort(cfg), "churn");
}

}  // namespace
}  // namespace anon
