// CohortNet (PR 3 tentpole): cohort-collapsed execution must be
// OBSERVATION-EQUIVALENT to the expanded LockstepNet — identical decision
// values, decision rounds and per-round aggregate transport metrics — for
// randomized (seed, environment, crash-plan) configurations, while
// actually collapsing (few cohorts) when the run is symmetric and
// degrading to singletons when the adversary differentiates everyone.
#include "net/cohort.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/es_consensus.hpp"
#include "algo/ess_consensus.hpp"
#include "algo/runner.hpp"
#include "common/rng.hpp"
#include "env/generate.hpp"
#include "net/lockstep.hpp"
#include "sim/experiment.hpp"

namespace anon {
namespace {

// ---------------------------------------------------------------------------
// Harness: run the same configuration through both engines and compare
// every observation the engines share.

struct Observed {
  Round rounds = 0;
  bool stopped = false;
  std::vector<std::optional<Value>> decisions;
  std::vector<Round> decision_rounds;
  std::uint64_t sends = 0, bytes = 0, deliveries = 0;
  std::uint64_t fault_drops = 0, fault_dups = 0;
};

template <typename Net>
Observed observe(Net& net, RunResult run) {
  Observed o;
  o.rounds = run.rounds;
  o.stopped = run.stopped;
  for (ProcId p = 0; p < net.n(); ++p) {
    o.decisions.push_back(net.decision(p));
    o.decision_rounds.push_back(net.decision_round(p));
  }
  o.sends = net.sends();
  o.bytes = net.bytes_sent();
  o.deliveries = net.deliveries();
  o.fault_drops = net.fault_drops();
  o.fault_dups = net.fault_dups();
  return o;
}

void expect_equal(const Observed& a, const Observed& b,
                  const std::string& what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.stopped, b.stopped) << what;
  EXPECT_EQ(a.sends, b.sends) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.deliveries, b.deliveries) << what;
  EXPECT_EQ(a.fault_drops, b.fault_drops) << what;
  EXPECT_EQ(a.fault_dups, b.fault_dups) << what;
  ASSERT_EQ(a.decisions.size(), b.decisions.size()) << what;
  for (std::size_t p = 0; p < a.decisions.size(); ++p) {
    EXPECT_EQ(a.decisions[p], b.decisions[p]) << what << " p=" << p;
    EXPECT_EQ(a.decision_rounds[p], b.decision_rounds[p]) << what << " p=" << p;
  }
}

struct Scenario {
  ConsensusAlgo algo = ConsensusAlgo::kEs;
  EnvParams env;
  CrashPlan crashes;
  std::vector<Value> initial;
  FaultParams faults;  // compiled into a FaultPlan by the harness
  LockstepOptions net;
};

std::vector<std::unique_ptr<Automaton<EsMessage>>> es_autos(
    const std::vector<Value>& initial) {
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (const Value& v : initial) autos.push_back(std::make_unique<EsConsensus>(v));
  return autos;
}

std::vector<CohortNet<EsMessage>::InitGroup> es_groups(
    const std::vector<Value>& initial) {
  return groups_by_initial_value<EsMessage>(
      initial, [](const Value& v) { return std::make_unique<EsConsensus>(v); });
}

std::vector<CohortNet<EssMessage>::InitGroup> ess_groups(
    const std::vector<Value>& initial, HistoryArena* arena) {
  return groups_by_initial_value<EssMessage>(
      initial, [arena](const Value& v) {
        return std::make_unique<EssConsensus>(v, arena);
      });
}

// Runs the scenario on both engines (to decision or round limit) and
// checks observation equivalence.  Returns the cohort stats for shape
// assertions.
CohortStats check_equivalent(const Scenario& sc, const std::string& what) {
  const EnvDelayModel delays(sc.env, sc.crashes);
  Observed expanded, cohort;
  CohortStats stats;
  if (sc.algo == ConsensusAlgo::kEs) {
    LockstepNet<EsMessage> e(es_autos(sc.initial), delays, sc.crashes, sc.net);
    expanded = observe(e, e.run_until_all_correct_decided());
    CohortNet<EsMessage> c(es_groups(sc.initial), delays, sc.crashes,
                           CohortOptions::from(sc.net));
    cohort = observe(c, c.run_until_all_correct_decided());
    stats = c.stats();
  } else {
    HistoryArena arena_e;
    std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
    for (const Value& v : sc.initial)
      autos.push_back(std::make_unique<EssConsensus>(v, &arena_e));
    LockstepNet<EssMessage> e(std::move(autos), delays, sc.crashes, sc.net);
    expanded = observe(e, e.run_until_all_correct_decided());
    HistoryArena arena_c;
    CohortNet<EssMessage> c(ess_groups(sc.initial, &arena_c), delays,
                            sc.crashes, CohortOptions::from(sc.net));
    cohort = observe(c, c.run_until_all_correct_decided());
    stats = c.stats();
  }
  expect_equal(expanded, cohort, what);
  return stats;
}

// ---------------------------------------------------------------------------

TEST(CohortEquivalence, RandomizedConfigsAgreeWithExpandedExecution) {
  // ≥ 50 randomized (seed, env, crash-plan) configurations across both
  // algorithms, ES and ESS environments, clustered and distinct initial
  // values, 0–3 crashes, n ≤ 32.
  std::size_t checked = 0;
  for (std::uint64_t cfg = 0; cfg < 56; ++cfg) {
    Rng rng(0xc0ff33 + cfg * 977);
    Scenario sc;
    sc.algo = (cfg % 2 == 0) ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    sc.env.kind = (cfg % 4 < 2) ? EnvKind::kES : EnvKind::kESS;
    sc.env.n = 2 + static_cast<std::size_t>(rng.below(31));  // 2..32
    sc.env.seed = rng.below(1u << 30);
    sc.env.stabilization = static_cast<Round>(rng.below(7));
    sc.env.max_delay = 1 + static_cast<Round>(rng.below(3));
    sc.env.timely_prob = 0.1 + 0.3 * rng.real();
    const std::size_t f =
        std::min<std::size_t>(sc.env.n - 1, rng.below(4));  // 0..3 crashes
    if (f > 0)
      sc.crashes = random_crashes(
          sc.env.n, f, std::max<Round>(2, sc.env.stabilization + 2),
          sc.env.seed + 13);
    // Half the configs propose from a small value domain so same-value
    // clusters exist; the other half propose all-distinct values.
    sc.initial = (cfg % 3 == 0)
                     ? distinct_values(sc.env.n)
                     : random_values(sc.env.n, sc.env.seed + 7, 100, 103);
    sc.net.seed = sc.env.seed;
    sc.net.max_rounds = 4000;
    sc.net.record_trace = false;
    sc.net.relay_partial_broadcast = (cfg % 5 != 4);
    const CohortStats stats =
        check_equivalent(sc, "cfg " + std::to_string(cfg));
    EXPECT_LE(stats.max_cohorts, sc.env.n);
    ++checked;
  }
  EXPECT_GE(checked, 50u);
}

TEST(CohortEquivalence, PerRoundMetricSeriesMatchesExpanded) {
  // Fixed-horizon stepping: the cumulative (sends, bytes, deliveries)
  // series must match round for round, not just at the end.
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    Scenario sc;
    sc.env.kind = EnvKind::kES;
    sc.env.n = 9;
    sc.env.seed = seed;
    sc.env.stabilization = 4;
    sc.crashes.crash_at(2, 3);
    sc.initial = random_values(sc.env.n, seed, 100, 102);
    sc.net.seed = seed;
    sc.net.record_trace = false;

    const EnvDelayModel delays(sc.env, sc.crashes);
    LockstepNet<EsMessage> e(es_autos(sc.initial), delays, sc.crashes, sc.net);
    CohortNet<EsMessage> c(es_groups(sc.initial), delays, sc.crashes,
                           CohortOptions::from(sc.net));
    const auto se = collect_round_series(e, 30);
    const auto sc2 = collect_round_series(c, 30);
    ASSERT_EQ(se.size(), sc2.size());
    for (std::size_t i = 0; i < se.size(); ++i)
      EXPECT_EQ(se[i], sc2[i]) << "seed " << seed << " step " << i << ": "
                               << se[i].to_string() << " vs "
                               << sc2[i].to_string();
  }
}

TEST(CohortSplit, CrashInsideACohortMidRoundSplitsAudienceFromRest) {
  // One big cohort (identical proposals); one member crashes mid-run in a
  // fully uniform environment.  The partial final broadcast reaches only
  // its audience (the rest sees it relayed, late), which must split the
  // receivers — and the run must still match expanded execution exactly.
  Scenario sc;
  sc.algo = ConsensusAlgo::kEs;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 8;
  sc.env.seed = 5;
  sc.env.stabilization = 0;  // uniform from round 1: only the crash differs
  CrashSpec spec;
  spec.crash_round = 3;
  spec.final_recipients = std::vector<ProcId>{0, 1, 2};  // a proper subset
  sc.crashes.set(3, spec);
  sc.initial = identical_values(sc.env.n, 7);
  sc.net.seed = 5;
  sc.net.record_trace = false;
  const CohortStats stats = check_equivalent(sc, "crash mid-round");
  EXPECT_GE(stats.splits, 1u);       // audience vs non-audience
  EXPECT_GE(stats.max_cohorts, 2u);
  EXPECT_LT(stats.max_cohorts, 8u);  // but nowhere near full expansion
}

TEST(CohortMerge, DistinctInitialValuesConvergeAndRemerge) {
  // Two initial classes; a failure-free uniform run drives every process
  // to the same decided state — the classes must merge back into one.
  Scenario sc;
  sc.algo = ConsensusAlgo::kEs;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 8;
  sc.env.seed = 9;
  sc.env.stabilization = 0;
  std::vector<Value> init;
  for (std::size_t i = 0; i < 8; ++i) init.push_back(Value(i < 4 ? 100 : 200));
  sc.initial = init;
  sc.net.seed = 9;
  sc.net.record_trace = false;

  const EnvDelayModel delays(sc.env, sc.crashes);
  CohortNet<EsMessage> c(es_groups(sc.initial), delays, sc.crashes,
                         CohortOptions::from(sc.net));
  EXPECT_EQ(c.cohort_count(), 2u);
  c.run_until_all_correct_decided();
  c.run_rounds(4);  // give the merge pass a post-decision round
  EXPECT_EQ(c.cohort_count(), 1u);
  EXPECT_GE(c.stats().merges, 1u);
  // And the merged run still matches expanded execution.
  check_equivalent(sc, "converging initial values");
}

// A triangular reveal: in round 1, receiver q gets the round-1 messages of
// exactly the senders p ≤ q timely (the rest two rounds late).  With
// distinct proposals every receiver reads a different prefix of the value
// space — n pairwise-distinct states in a single delivery phase.  From
// round 2 on everything is timely (and says so via uniform_delay).
class TriangularRevealModel final : public DelayModel {
 public:
  Round delay(Round k, ProcId sender, ProcId receiver) const override {
    if (k != 1) return 0;
    return sender <= receiver ? 0 : 2;
  }
  std::optional<Round> uniform_delay(Round k) const override {
    if (k >= 2) return Round{0};
    return std::nullopt;  // round 1 differentiates by receiver
  }
};

TEST(CohortSplit, PreGstAsymmetryForcesFullSplitToSingletons) {
  const std::size_t n = 6;
  const TriangularRevealModel delays;
  const std::vector<Value> initial = distinct_values(n);
  LockstepOptions opt;
  opt.max_rounds = 40;
  opt.record_trace = false;

  LockstepNet<EsMessage> e(es_autos(initial), delays, CrashPlan{}, opt);
  CohortNet<EsMessage> c(es_groups(initial), delays, CrashPlan{},
                         CohortOptions::from(opt));
  const auto re = e.run_rounds(14);
  const auto rc = c.run_rounds(14);
  Observed oe = observe(e, re), oc = observe(c, rc);
  expect_equal(oe, oc, "triangular reveal");
  // Round 1 tells every process apart: n singleton classes at the peak...
  EXPECT_EQ(c.stats().max_cohorts, n);
  // ...and the symmetric rounds afterwards re-converge them.
  EXPECT_GE(c.stats().merges, 1u);
  EXPECT_LT(c.cohort_count(), n);
}

TEST(CohortBackend, RunnerSwitchProducesTheExpandedReport) {
  for (ConsensusAlgo algo : {ConsensusAlgo::kEs, ConsensusAlgo::kEss}) {
    ConsensusConfig cfg;
    cfg.env.kind = EnvKind::kES;
    cfg.env.n = 12;
    cfg.env.seed = 77;
    cfg.env.stabilization = 3;
    cfg.initial = random_values(cfg.env.n, 3, 100, 102);
    cfg.net.seed = 77;
    cfg.net.record_trace = false;
    cfg.validate_env = false;
    cfg.crashes = random_crashes(cfg.env.n, 2, 4, 123);

    const ConsensusReport expanded = run_consensus(algo, cfg);
    cfg.backend = ConsensusBackend::kCohort;
    const ConsensusReport cohort = run_consensus(algo, cfg);
    EXPECT_EQ(expanded.to_string(), cohort.to_string()) << to_string(algo);
    EXPECT_GT(cohort.cohorts_max, 0u);
    EXPECT_EQ(expanded.cohorts_max, 0u);
  }
}

TEST(CohortBackend, SweepDispatchesPerConfigBackend) {
  std::vector<ConsensusConfig> grid;
  for (std::uint64_t seed : {1u, 2u}) {
    ConsensusConfig cfg;
    cfg.env.kind = EnvKind::kES;
    cfg.env.n = 8;
    cfg.env.seed = seed;
    cfg.initial = identical_values(8, 5);
    cfg.net.record_trace = false;
    cfg.validate_env = false;
    grid.push_back(cfg);
    cfg.backend = ConsensusBackend::kCohort;
    grid.push_back(cfg);
  }
  const auto reports = run_consensus_sweep(ConsensusAlgo::kEs, grid);
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].to_string(), reports[1].to_string());
  EXPECT_EQ(reports[2].to_string(), reports[3].to_string());
  EXPECT_EQ(reports[1].cohorts_max, 1u);  // identical proposals: one class
}

TEST(CohortNet, RejectsNonClonableAutomatonsOnlyWhenSplitting) {
  // An automaton without clone support works as long as no split is ever
  // needed (uniform run)...
  class Opaque final : public Automaton<EsMessage> {
   public:
    EsMessage initialize() override { return EsMessage{Value(1)}; }
    EsMessage compute(Round, const Inboxes<EsMessage>&) override {
      return EsMessage{Value(1)};
    }
  };
  const SynchronousDelays delays;
  std::vector<CohortNet<EsMessage>::InitGroup> groups;
  std::vector<ProcId> members = {0, 1, 2};
  groups.push_back({std::make_unique<Opaque>(), std::move(members)});
  CohortOptions opt;
  opt.max_rounds = 10;
  CohortNet<EsMessage> net(std::move(groups), delays, CrashPlan{}, opt);
  EXPECT_NO_THROW(net.run_rounds(5));
  EXPECT_EQ(net.cohort_count(), 1u);

  // ...but a split (receiver-staggered delays) demands clone_state.
  const TriangularRevealModel stagger;
  std::vector<CohortNet<EsMessage>::InitGroup> groups2;
  std::vector<ProcId> members2 = {0, 1, 2};
  groups2.push_back({std::make_unique<Opaque>(), std::move(members2)});
  CohortNet<EsMessage> net2(std::move(groups2), stagger, CrashPlan{}, opt);
  EXPECT_THROW(net2.run_rounds(5), CheckFailure);
}

// ---------------------------------------------------------------------------
// Sharded cohort execution (PR 8 tentpole): the sharded cohort engine must
// be BYTE-IDENTICAL to the serial cohort engine — decisions, decision
// rounds, transport and fault counters, and the structural collapse stats
// (splits, merges, clones, peak class count) — at every thread/shard
// count, under randomized environments, crash plans and fault plans.

struct CohortRun {
  Observed obs;
  CohortStats stats;
  std::size_t shards = 0;
};

CohortRun run_cohort(const Scenario& sc, const DelayModel& delays,
                     const FaultPlan* plan, std::size_t threads,
                     std::size_t shards) {
  LockstepOptions opt = sc.net;
  opt.engine_threads = threads;
  opt.engine_shards = shards;
  CohortOptions copt = CohortOptions::from(opt);
  if (plan != nullptr && plan->active()) copt.faults = plan;
  CohortRun r;
  if (sc.algo == ConsensusAlgo::kEs) {
    CohortNet<EsMessage> c(es_groups(sc.initial), delays, sc.crashes, copt);
    r.obs = observe(c, c.run_until_all_correct_decided());
    r.stats = c.stats();
    r.shards = c.engine_shards();
  } else {
    HistoryArena arena;
    CohortNet<EssMessage> c(ess_groups(sc.initial, &arena), delays,
                            sc.crashes, copt);
    r.obs = observe(c, c.run_until_all_correct_decided());
    r.stats = c.stats();
    r.shards = c.engine_shards();
  }
  return r;
}

// Serial reference vs engine_threads ∈ {2, 8} and the decoupled
// single-threaded 8-shard engine.  Returns the serial stats for shape
// assertions.
CohortStats check_cohort_thread_invariance(const Scenario& sc0,
                                           const std::string& what) {
  Scenario sc = sc0;
  const EnvDelayModel delays(sc.env, sc.crashes);
  const FaultPlan plan(sc.faults, sc.net.seed, sc.env.n, &delays);
  const CohortRun serial = run_cohort(sc, delays, &plan, 1, 0);
  EXPECT_EQ(serial.shards, 1u) << what << ": engine_threads=1 must be serial";
  struct Mode {
    std::size_t threads, shards;
  };
  for (const Mode m : {Mode{2, 0}, Mode{8, 0}, Mode{1, 8}}) {
    const CohortRun sharded =
        run_cohort(sc, delays, &plan, m.threads, m.shards);
    const std::string label = what + " threads=" + std::to_string(m.threads) +
                              " shards=" + std::to_string(m.shards);
    EXPECT_GT(sharded.shards, 1u) << label;
    expect_equal(serial.obs, sharded.obs, label);
    EXPECT_EQ(serial.stats.cohorts, sharded.stats.cohorts) << label;
    EXPECT_EQ(serial.stats.max_cohorts, sharded.stats.max_cohorts) << label;
    EXPECT_EQ(serial.stats.splits, sharded.stats.splits) << label;
    EXPECT_EQ(serial.stats.merges, sharded.stats.merges) << label;
    EXPECT_EQ(serial.stats.clones, sharded.stats.clones) << label;
  }
  return serial.stats;
}

TEST(ShardedCohortEquivalence, RandomizedConfigsMatchSerialAtEveryThreadCount) {
  // Randomized (seed, env kind, crash plan, fault plan) configurations
  // across both algorithms; every one must be identical at engine_threads
  // ∈ {1, 2, 8} and at engine_shards = 8 on one thread.
  std::size_t checked = 0, faulted = 0;
  for (std::uint64_t cfg = 0; cfg < 20; ++cfg) {
    Rng rng(0xc04027 + cfg * 131);
    Scenario sc;
    sc.algo = (cfg % 2 == 0) ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    sc.env.kind = (cfg % 4 < 2) ? EnvKind::kES : EnvKind::kESS;
    sc.env.n = 3 + static_cast<std::size_t>(rng.below(30));  // 3..32
    sc.env.seed = rng.below(1u << 30);
    sc.env.stabilization = static_cast<Round>(rng.below(6));
    sc.env.max_delay = 1 + static_cast<Round>(rng.below(3));
    sc.env.timely_prob = 0.1 + 0.3 * rng.real();
    const std::size_t f =
        std::min<std::size_t>(sc.env.n - 1, rng.below(4));  // 0..3 crashes
    if (f > 0)
      sc.crashes = random_crashes(
          sc.env.n, f, std::max<Round>(2, sc.env.stabilization + 2),
          sc.env.seed + 13);
    sc.initial = (cfg % 3 == 0)
                     ? distinct_values(sc.env.n)
                     : random_values(sc.env.n, sc.env.seed + 7, 100, 103);
    sc.net.seed = sc.env.seed;
    sc.net.max_rounds = 800;
    sc.net.record_trace = false;
    sc.net.relay_partial_broadcast = (cfg % 5 != 4);
    if (cfg % 4 == 3) {  // a quarter of the configs also inject faults
      sc.faults.loss_prob = 0.15 * rng.real();
      sc.faults.dup_prob = 0.2 * rng.real();
      sc.faults.dup_extra_delay = 1 + static_cast<Round>(rng.below(3));
      sc.faults.reorder_prob = 0.2 * rng.real();
      sc.faults.max_extra_delay = 1 + static_cast<Round>(rng.below(3));
      ++faulted;
    }
    check_cohort_thread_invariance(sc, "cfg " + std::to_string(cfg));
    ++checked;
  }
  EXPECT_GE(checked, 20u);
  EXPECT_GE(faulted, 4u);
}

TEST(ShardedCohortSplit, MidRoundCrashSplitsClassStraddlingShardBoundaries) {
  // Directed: all 12 processes propose the same value — ONE class — and a
  // member crashes mid-run with a partial final audience spanning both
  // low and high process ids.  The resulting split products land in
  // different shards on the next reindex (classes are sorted by smallest
  // member), so the wave/merge barriers see a class list that straddles
  // shard boundaries while splitting and re-merging.
  Scenario sc;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 12;
  sc.env.seed = 5;
  sc.env.stabilization = 0;  // uniform from round 1: only the crash differs
  CrashSpec spec;
  spec.crash_round = 3;
  spec.final_recipients = std::vector<ProcId>{0, 1, 7, 8, 11};
  sc.crashes.set(3, spec);
  sc.initial = identical_values(sc.env.n, 7);
  sc.net.seed = 5;
  sc.net.record_trace = false;
  const CohortStats stats =
      check_cohort_thread_invariance(sc, "crash straddling shards");
  EXPECT_GE(stats.splits, 1u);
  EXPECT_GE(stats.max_cohorts, 2u);
}

TEST(ShardedCohortSplit, TriangularRevealFullSplitMatchesSerial) {
  // The hardest structural case for the sharded engine: round 1 splits
  // n distinct proposals into n singleton classes (every shard boundary
  // crossed, maximal cross-shard payload canonicalization), then the
  // uniform rounds re-merge them.
  const std::size_t n = 12;
  const TriangularRevealModel delays;
  const std::vector<Value> initial = distinct_values(n);
  LockstepOptions base;
  base.max_rounds = 60;
  base.record_trace = false;
  auto run = [&](std::size_t threads, std::size_t shards) {
    LockstepOptions o = base;
    o.engine_threads = threads;
    o.engine_shards = shards;
    CohortNet<EsMessage> c(es_groups(initial), delays, CrashPlan{},
                           CohortOptions::from(o));
    CohortRun r;
    r.obs = observe(c, c.run_rounds(20));
    r.stats = c.stats();
    r.shards = c.engine_shards();
    return r;
  };
  const CohortRun serial = run(1, 0);
  EXPECT_EQ(serial.stats.max_cohorts, n);
  EXPECT_GE(serial.stats.merges, 1u);
  struct Mode {
    std::size_t threads, shards;
  };
  for (const Mode m : {Mode{2, 0}, Mode{8, 0}, Mode{1, 8}}) {
    const CohortRun sharded = run(m.threads, m.shards);
    const std::string label = "triangular threads=" +
                              std::to_string(m.threads) +
                              " shards=" + std::to_string(m.shards);
    expect_equal(serial.obs, sharded.obs, label);
    EXPECT_EQ(serial.stats.max_cohorts, sharded.stats.max_cohorts) << label;
    EXPECT_EQ(serial.stats.splits, sharded.stats.splits) << label;
    EXPECT_EQ(serial.stats.merges, sharded.stats.merges) << label;
    EXPECT_EQ(serial.stats.clones, sharded.stats.clones) << label;
  }
}

TEST(ShardedCohortBackend, RunnerReportsMatchAtEveryThreadCount) {
  // End-to-end through run_consensus with backend=cohort: the full report
  // string must be identical at every engine_threads value.
  for (const ConsensusAlgo algo : {ConsensusAlgo::kEs, ConsensusAlgo::kEss}) {
    ConsensusConfig cfg;
    cfg.env.kind = algo == ConsensusAlgo::kEs ? EnvKind::kES : EnvKind::kESS;
    cfg.env.n = 14;
    cfg.env.seed = 77;
    cfg.env.stabilization = 5;
    cfg.crashes = random_crashes(cfg.env.n, 2, 6, 123);
    cfg.initial = random_values(cfg.env.n, 77, 100, 102);
    cfg.net.seed = 77;
    cfg.net.record_trace = false;
    cfg.validate_env = false;
    cfg.backend = ConsensusBackend::kCohort;

    cfg.net.engine_threads = 1;
    const ConsensusReport serial = run_consensus(algo, cfg);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      cfg.net.engine_threads = threads;
      const ConsensusReport rep = run_consensus(algo, cfg);
      EXPECT_EQ(serial.to_string(), rep.to_string())
          << to_string(algo) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace anon
