// Allocation-counter proof that the round engines stopped allocating in
// steady state (PR 8's arena + scratch-recycling work).
//
// Workload: ES consensus under synchronous delays with kContinueForever —
// after the decision round every process re-broadcasts its frozen {VAL}
// message, so round content repeats forever.  In that steady state a round
// must perform ZERO heap allocations on every engine:
//   * serial LockstepNet      (per-link calendar entries recycled),
//   * sharded LockstepNet     (pregroup/group pools, arena barrier scratch,
//                              [this]-only wave captures),
//   * serial CohortNet        (interner generation reuse, own-cache hits),
//   * sharded CohortNet       (per-shard interners, arena digest buckets).
// The measurement window is placed between BatchInterner compaction
// generations (every 64 round_resets) so the counter sees only the round
// path itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "algo/es_consensus.hpp"
#include "emul/echo.hpp"
#include "emul/ms_emulation_cohort.hpp"
#include "net/cohort.hpp"
#include "net/lockstep.hpp"
#include "net/schedule.hpp"

// Binary-global allocation counter (this test binary only).  GCC's
// -Wmismatched-new-delete sees the malloc inside the counting operator new
// paired with inlined deletes and mis-fires; the pairing is intentional
// (delete frees with std::free below).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace anon {
namespace {

// 66 warm-up rounds cross the interners' gen-64 compaction and wrap every
// calendar ring slot the measured rounds will touch; 30 measured rounds
// stay clear of the next compaction at gen 128.
constexpr Round kWarmup = 66;
constexpr Round kMeasure = 30;
constexpr std::size_t kN = 32;

// Three proposal values (≤ the FlatSet inline capacity of 4): the messages
// themselves never heap-allocate, so the counter isolates the engines.
std::vector<Value> initial_values() {
  std::vector<Value> init;
  init.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i)
    init.push_back(Value(100 + static_cast<std::int64_t>(i % 3)));
  return init;
}

template <typename Net>
std::size_t measure_steady_rounds(Net& net) {
  net.run_rounds(kWarmup);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  net.run_rounds(kMeasure);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

LockstepOptions lockstep_options(std::size_t engine_threads,
                                 std::size_t engine_shards) {
  LockstepOptions opt;
  opt.seed = 42;
  opt.record_trace = false;
  opt.record_deliveries = false;
  opt.halt_policy = HaltPolicy::kContinueForever;
  opt.engine_threads = engine_threads;
  opt.engine_shards = engine_shards;
  return opt;
}

std::size_t lockstep_steady_allocations(std::size_t engine_threads,
                                        std::size_t engine_shards) {
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (const Value& v : initial_values())
    autos.push_back(std::make_unique<EsConsensus>(v));
  const SynchronousDelays delays;
  LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{},
                             lockstep_options(engine_threads, engine_shards));
  const std::size_t allocs = measure_steady_rounds(net);
  EXPECT_TRUE(net.all_correct_decided()) << "run must converge in warm-up";
  return allocs;
}

std::size_t cohort_steady_allocations(std::size_t engine_threads) {
  CohortOptions opt;
  opt.seed = 42;
  opt.halt_policy = HaltPolicy::kContinueForever;
  opt.engine_threads = engine_threads;
  const SynchronousDelays delays;
  auto groups = groups_by_initial_value<EsMessage>(
      initial_values(),
      [](const Value& v) { return std::make_unique<EsConsensus>(v); });
  CohortNet<EsMessage> net(std::move(groups), delays, CrashPlan{}, opt);
  const std::size_t allocs = measure_steady_rounds(net);
  EXPECT_TRUE(net.all_correct_decided()) << "run must converge in warm-up";
  return allocs;
}

TEST(AllocationSteadyState, SerialLockstepRoundsAreAllocationFree) {
  EXPECT_EQ(lockstep_steady_allocations(1, 0), 0u)
      << "serial LockstepNet allocated on the steady-state round path";
}

TEST(AllocationSteadyState, ShardedLockstepRoundsAreAllocationFree) {
  EXPECT_EQ(lockstep_steady_allocations(4, 4), 0u)
      << "sharded LockstepNet allocated on the steady-state round path";
}

TEST(AllocationSteadyState, SerialCohortRoundsAreAllocationFree) {
  EXPECT_EQ(cohort_steady_allocations(1), 0u)
      << "serial CohortNet allocated on the steady-state round path";
}

TEST(AllocationSteadyState, ShardedCohortRoundsAreAllocationFree) {
  EXPECT_EQ(cohort_steady_allocations(4), 0u)
      << "sharded CohortNet allocated on the steady-state round path";
}

// The cohort-collapsed emulation cannot be allocation-free — every emulated
// round interns fresh elements and grows the visible log — but its round
// cost must track the CLASS count, not n.  With identical echo seeds the
// whole run is one class, so the per-window allocation count at n = 256
// must stay at the n = 32 level (the expanded engine walks all n processes
// and its Θ(r·n²) trace dwarfs this).
std::size_t emulation_cohort_window_allocations(std::size_t n,
                                                std::size_t engine_threads) {
  std::vector<MsEmulationCohort<ValueSet>::InitGroup> groups(1);
  groups[0].automaton = std::make_unique<EchoAutomaton>(7);
  for (ProcId p = 0; p < n; ++p) groups[0].members.push_back(p);
  MsEmulationCohortOptions copt;
  copt.base.seed = 42;
  copt.base.min_add_latency = 2;
  copt.base.max_add_latency = 2;  // deterministic: no latency-draw splits
  copt.engine_threads = engine_threads;
  MsEmulationCohort<ValueSet> emu(std::move(groups), copt);
  EXPECT_TRUE(emu.run_until_round(kWarmup));
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(emu.run_until_round(kWarmup + kMeasure));
  const std::size_t allocs =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(emu.class_count(), 1u) << "identical probes must stay one class";
  return allocs;
}

TEST(AllocationSteadyState, EmulationCohortRoundsAreClassBoundNotNBound) {
  const std::size_t small = emulation_cohort_window_allocations(32, 1);
  const std::size_t large = emulation_cohort_window_allocations(256, 1);
  // One class either way: the window's allocation count must not scale
  // with n (slack covers amortized vector doublings crossing the window).
  EXPECT_LE(large, small + small / 2 + 64)
      << "n=32 window: " << small << ", n=256 window: " << large;
  // And the absolute level stays modest: a handful per emulated round
  // (element interning + log growth), not hundreds.
  EXPECT_LE(small, static_cast<std::size_t>(kMeasure) * 32)
      << "n=32 window allocated " << small << " times";
}

TEST(AllocationSteadyState, ShardedEmulationCohortMatchesSerialAllocations) {
  const std::size_t serial = emulation_cohort_window_allocations(64, 1);
  const std::size_t sharded = emulation_cohort_window_allocations(64, 4);
  EXPECT_LE(sharded, serial + serial / 2 + 64)
      << "serial window: " << serial << ", sharded window: " << sharded;
}

}  // namespace
}  // namespace anon
