// Property sweeps (parameterized): agreement and validity must hold on
// EVERY run — any environment, any crash pattern, any seed; termination
// must hold on admissible ES/ESS runs.  This is the executable form of
// Theorems 1 and 2 quantifying over runs.  The sweeps are declarative
// ScenarioSpecs through the scenario registry (the same surface the
// benches and anonsim drive); only the engine-corner cases at the bottom
// still reach for the low-level ConsensusConfig knobs the spec surface
// deliberately does not expose (bespoke final_fraction, halt policies).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "algo/runner.hpp"
#include "scenario/registry.hpp"

namespace anon {
namespace {

struct SweepCase {
  ConsensusAlgo algo;
  std::size_t n;
  std::size_t crashes;
  Round stabilization;
  std::uint64_t seed;
  bool identical_values;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string s = c.algo == ConsensusAlgo::kEs ? "Es" : "Ess";
  s += "_n" + std::to_string(c.n) + "_f" + std::to_string(c.crashes) +
       "_st" + std::to_string(c.stabilization) + "_s" +
       std::to_string(c.seed) + (c.identical_values ? "_ident" : "_dist");
  return s;
}

class ConsensusSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConsensusSweep, SafetyAndTermination) {
  const SweepCase& c = GetParam();
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {c.seed};
  spec.env_kind = c.algo == ConsensusAlgo::kEs ? EnvKind::kES : EnvKind::kESS;
  spec.n = c.n;
  spec.stabilization = c.stabilization;
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  for (const Value& v : c.identical_values
                            ? identical_values(c.n, 5)
                            : random_values(c.n, c.seed * 7 + 1, -50, 50))
    spec.initial.values.push_back(v.get());
  if (c.crashes > 0) {
    spec.crashes.kind = CrashGenSpec::Kind::kRandom;
    spec.crashes.count = c.crashes;
    spec.crashes.horizon = std::max<Round>(2, c.stabilization);
    spec.crashes.seed_offset = 13;
  }
  spec.consensus.algo = c.algo;
  spec.consensus.max_rounds = 30000;
  spec.consensus.record_deliveries = true;
  spec.consensus.validate_env = true;

  const auto report = ScenarioRegistry::instance().run(spec);
  const auto& rep = report.consensus_cells[0].report;
  // Safety: unconditional.
  EXPECT_TRUE(rep.agreement) << rep.to_string();
  EXPECT_TRUE(rep.validity) << rep.to_string();
  // Liveness: the generated schedule is admissible for the algorithm's
  // environment, so everyone correct must decide.
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  // The trace must certify its environment.
  EXPECT_TRUE(rep.env_check.ms_ok) << rep.env_check.to_string();
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (ConsensusAlgo algo : {ConsensusAlgo::kEs, ConsensusAlgo::kEss}) {
    for (std::size_t n : {2u, 3u, 5u, 9u, 17u}) {
      const std::set<std::size_t> fs{0, 1, n / 2, n - 1};  // dedup (n=2)
      for (std::size_t f : fs) {
        if (f >= n) continue;
        for (Round stab : {0u, 7u, 25u}) {
          for (std::uint64_t seed : {1u, 42u}) {
            cases.push_back({algo, n, f, stab, seed, false});
          }
        }
      }
    }
  }
  // A few fully symmetric (identical-value) instances — the anonymity
  // stress case where every inbox is a singleton.
  for (ConsensusAlgo algo : {ConsensusAlgo::kEs, ConsensusAlgo::kEss})
    for (std::size_t n : {3u, 8u})
      cases.push_back({algo, n, 0, 5, 77, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsensusSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

// Safety must also hold on schedules the algorithm was NOT designed for:
// Algorithm 2 under a hostile MS-only adversary never decides wrongly —
// in fact never decides (FLP corollary); Algorithm 3 likewise keeps safety
// under ES-without-stable-source.
class HostileSweep : public ::testing::TestWithParam<std::uint64_t> {};

ScenarioSpec hostile_spec(ConsensusAlgo algo, std::uint64_t env_seed,
                          std::uint64_t value_seed) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {env_seed};
  spec.env_kind = EnvKind::kMS;
  spec.n = 5;
  spec.timely_prob = 0.15;
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  for (const Value& v : random_values(5, value_seed, 0, 9))
    spec.initial.values.push_back(v.get());
  spec.consensus.algo = algo;
  spec.consensus.max_rounds = 1500;
  return spec;
}

TEST_P(HostileSweep, Alg2SafeUnderMovingSourceOnly) {
  const auto report = ScenarioRegistry::instance().run(
      hostile_spec(ConsensusAlgo::kEs, GetParam(), GetParam()));
  const auto& rep = report.consensus_cells[0].report;
  EXPECT_TRUE(rep.agreement) << rep.to_string();
  EXPECT_TRUE(rep.validity) << rep.to_string();
  // NOTE: with a randomized MS schedule long benign stretches can occur,
  // so deciding is possible; non-termination is asserted separately under
  // the adversarial HostileMsModel (es_consensus_test / E8).
}

TEST_P(HostileSweep, Alg3SafeUnderMovingSourceOnly) {
  const auto report = ScenarioRegistry::instance().run(
      hostile_spec(ConsensusAlgo::kEss, GetParam() ^ 0xf00d, GetParam()));
  const auto& rep = report.consensus_cells[0].report;
  EXPECT_TRUE(rep.agreement) << rep.to_string();
  EXPECT_TRUE(rep.validity) << rep.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileSweep,
                         ::testing::Values(3, 1337, 2026, 555, 90210));

// Crash exactly around the decision round: the classic agreement hazard.
// Uses the low-level config surface: the probe needs a bespoke
// final_fraction, which the declarative spec intentionally leaves out.
class CrashAtDecisionSweep : public ::testing::TestWithParam<Round> {};

TEST_P(CrashAtDecisionSweep, AgreementSurvivesCrashNearDecision) {
  // First, find the natural decision round without crashes.
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 5;
  cfg.env.seed = 8;
  cfg.env.stabilization = 0;
  cfg.initial = distinct_values(5);
  cfg.net.max_rounds = 4000;
  auto base = run_consensus(ConsensusAlgo::kEs, cfg);
  ASSERT_TRUE(base.all_correct_decided);

  // Now crash one process at/near that round with a partial broadcast.
  const Round target = base.first_decision_round + GetParam();
  CrashSpec spec;
  spec.crash_round = std::max<Round>(1, target);
  spec.final_fraction = 0.34;
  cfg.crashes.set(0, spec);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.agreement) << rep.to_string();
  EXPECT_TRUE(rep.validity) << rep.to_string();
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  // If the crashed process decided before dying, its value must agree too
  // (covered by rep.agreement since decisions of crashed processes count).
}

INSTANTIATE_TEST_SUITE_P(Offsets, CrashAtDecisionSweep,
                         ::testing::Values(0, 1, 2));

// The literal decide-and-halt reading starves laggards (DESIGN.md).
// Halt policies are an engine knob, not a scenario one — low-level config.
TEST(HaltPolicy, LiteralHaltCanStarveLaggards) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 4;
  cfg.env.seed = 5;
  cfg.env.stabilization = 0;
  cfg.initial = distinct_values(4);
  cfg.net.max_rounds = 800;
  cfg.net.halt_policy = HaltPolicy::kStopAfterDecide;
  cfg.validate_env = false;  // halted processes void the env promises
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  // Under full synchrony everyone decides simultaneously, so literal halt
  // is harmless here…
  EXPECT_TRUE(rep.all_correct_decided);

  // …but with a GST and asymmetric delays, early deciders go silent and a
  // laggard can stall forever.  (This motivates kContinueForever.)
  ConsensusConfig lag = cfg;
  lag.env.stabilization = 9;
  lag.env.seed = 12;
  lag.env.timely_prob = 0.05;
  auto rep2 = run_consensus(ConsensusAlgo::kEs, lag);
  EXPECT_TRUE(rep2.agreement);
  // Not asserting starvation for every seed — just that safety held and
  // the default policy decides where the literal one may not.
  ConsensusConfig cont = lag;
  cont.net.halt_policy = HaltPolicy::kContinueForever;
  cont.validate_env = true;
  auto rep3 = run_consensus(ConsensusAlgo::kEs, cont);
  EXPECT_TRUE(rep3.all_correct_decided) << rep3.to_string();
}

}  // namespace
}  // namespace anon
