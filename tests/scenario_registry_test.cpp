// The scenario registry: byte-identity of driver-produced reports against
// the pre-redesign per-family pipelines (E1 consensus sweep, E5 emulation,
// E7 shm construction), thread-count invariance of the deterministic
// report JSON, and the first-class error surface.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/runner.hpp"
#include "emul/echo.hpp"
#include "emul/ms_emulation.hpp"
#include "env/validate.hpp"
#include "scenario/registry.hpp"
#include "sim/experiment.hpp"
#include "weakset/ws_from_swmr.hpp"

namespace anon {
namespace {

ScenarioRegistry& registry() { return ScenarioRegistry::instance(); }

// ---- byte-identity vs the pre-redesign pipelines ---------------------------

// The exact config builder the benches used before the redesign
// (bench_common::consensus_config), kept verbatim as the reference.
ConsensusConfig legacy_consensus_config(EnvKind kind, std::size_t n,
                                        Round stab, std::uint64_t seed,
                                        std::size_t crashes = 0) {
  ConsensusConfig cfg;
  cfg.env.kind = kind;
  cfg.env.n = n;
  cfg.env.seed = seed;
  cfg.env.stabilization = stab;
  cfg.initial = distinct_values(n);
  cfg.net.seed = seed;
  cfg.net.max_rounds = 60000;
  cfg.net.record_deliveries = false;
  cfg.validate_env = false;
  if (crashes > 0)
    cfg.crashes =
        random_crashes(n, crashes, std::max<Round>(2, stab), seed + 7);
  return cfg;
}

TEST(ScenarioByteIdentity, E1DriverReportsMatchThePreRedesignSweep) {
  const auto seeds = experiment_seeds(6);
  // Pre-redesign path: hand-built configs through run_consensus_sweep.
  std::vector<ConsensusConfig> grid;
  for (auto seed : seeds)
    grid.push_back(legacy_consensus_config(EnvKind::kES, 16, 0, seed));
  const auto legacy = run_consensus_sweep(ConsensusAlgo::kEs, grid);

  // Driver path: the E1-shaped spec.
  ScenarioSpec spec = registry().find_preset("e1")->spec;
  spec.n = 16;
  spec.seeds = seeds;
  const auto report = registry().run(spec);

  ASSERT_EQ(report.consensus_cells.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(report.consensus_cells[i].report.to_string(),
              legacy[i].to_string())
        << "cell " << i;
  }
}

TEST(ScenarioByteIdentity, E1CrashGridMatchesToo) {
  const auto seeds = experiment_seeds(4);
  std::vector<ConsensusConfig> grid;
  for (auto seed : seeds)
    grid.push_back(legacy_consensus_config(EnvKind::kES, 8, 12, seed, 3));
  const auto legacy = run_consensus_sweep(ConsensusAlgo::kEs, grid);

  ScenarioSpec spec = registry().find_preset("e1")->spec;
  spec.n = 8;
  spec.stabilization = 12;
  spec.seeds = seeds;
  spec.crashes.kind = CrashGenSpec::Kind::kRandom;
  spec.crashes.count = 3;
  spec.crashes.horizon = 12;
  spec.crashes.seed_offset = 7;
  const auto report = registry().run(spec);

  ASSERT_EQ(report.consensus_cells.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i)
    EXPECT_EQ(report.consensus_cells[i].report.to_string(),
              legacy[i].to_string());
}

TEST(ScenarioByteIdentity, E5DriverCellsMatchThePreRedesignLoop) {
  const auto seeds = experiment_seeds(4);
  const std::size_t n = 8;
  const Round rounds = 25;

  // Pre-redesign path: the bench's hand-rolled emulation loop.
  std::vector<std::pair<bool, std::size_t>> legacy;  // (certified, deliveries)
  for (auto seed : seeds) {
    MsEmulationOptions opt;
    opt.seed = seed;
    MsEmulation<ValueSet> emu(echo_automatons(n), opt);
    ASSERT_TRUE(emu.run_until_round(rounds));
    std::vector<ProcId> all(n);
    for (ProcId p = 0; p < n; ++p) all[p] = p;
    legacy.emplace_back(check_environment(emu.trace(), n, all).ms_ok,
                        emu.trace().deliveries().size());
  }

  ScenarioSpec spec = registry().find_preset("e5")->spec;
  spec.n = n;
  spec.emulation.rounds = rounds;
  spec.seeds = seeds;
  const auto report = registry().run(spec);

  ASSERT_EQ(report.emulation_cells.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(report.emulation_cells[i].ms_certified, legacy[i].first);
    EXPECT_EQ(report.emulation_cells[i].trace_deliveries, legacy[i].second);
  }
}

TEST(ScenarioByteIdentity, E7DriverCellsMatchThePreRedesignLoop) {
  const auto seeds = experiment_seeds(4);
  const std::size_t n = 4;
  const std::uint64_t ops = 100, domain = 13;

  // Pre-redesign path: the bench's script generator + runner, verbatim.
  auto legacy_script = [&] {
    std::vector<ShmWsScriptOp> script;
    for (std::uint64_t i = 0; i < ops; ++i) {
      script.push_back({i * 2, i % n, true,
                        Value(static_cast<std::int64_t>(i % domain))});
      script.push_back({i * 2 + 1, (i + 1) % n, false, Value()});
    }
    return script;
  }();
  std::vector<std::pair<bool, std::size_t>> legacy;  // (spec_ok, records)
  for (auto seed : seeds) {
    auto records = run_ws_from_swmr(n, legacy_script, seed);
    legacy.emplace_back(check_weak_set_spec(records).ok, records.size());
  }

  ScenarioSpec spec = registry().find_preset("e7-swmr")->spec;
  spec.n = n;
  spec.shm.gen_ops = ops;
  spec.seeds = seeds;
  const auto report = registry().run(spec);

  ASSERT_EQ(report.shm_cells.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(report.shm_cells[i].spec_ok, legacy[i].first);
    EXPECT_EQ(report.shm_cells[i].records, legacy[i].second);
  }
}

// ---- determinism: spec → run → report at any thread count ------------------

TEST(ScenarioDeterminism, ReportJsonIsIdenticalAtAnyThreadCount) {
  std::vector<std::string> preset_names = {"e1-fast", "e4-fast", "e5-fast",
                                           "e7-fast", "e6-abd-fast",
                                           "e9-omega-fast"};
  for (const auto& name : preset_names) {
    SCOPED_TRACE(name);
    const ScenarioSpec& spec = registry().find_preset(name)->spec;
    const std::string serial =
        registry().run(spec, {.threads = 1}).to_json_string(false);
    for (std::size_t threads : {2u, 8u}) {
      EXPECT_EQ(registry().run(spec, {.threads = threads}).to_json_string(false),
                serial)
          << "at " << threads << " threads";
    }
  }
}

TEST(ScenarioDeterminism, SameSpecSameSeedsSameReport) {
  const ScenarioSpec& spec = registry().find_preset("e2-fast")->spec;
  EXPECT_EQ(registry().run(spec).to_json_string(false),
            registry().run(spec).to_json_string(false));
}

// ---- registry surface -------------------------------------------------------

TEST(ScenarioRegistrySurface, EveryFamilyHasARunnerAndAPreset) {
  for (ScenarioFamily family : all_scenario_families()) {
    EXPECT_TRUE(registry().has_family(family)) << to_string(family);
    bool has_preset = false;
    for (const auto& p : registry().presets())
      if (p.spec.family == family) has_preset = true;
    EXPECT_TRUE(has_preset) << to_string(family);
  }
}

TEST(ScenarioRegistrySurface, InvalidSpecThrowsWithFieldPaths) {
  ScenarioSpec spec;  // consensus defaults...
  spec.n = 0;         // ...but a nonsense environment
  try {
    registry().run(spec);
    FAIL() << "expected ScenarioSpecError";
  } catch (const ScenarioSpecError& e) {
    ASSERT_FALSE(e.errors().empty());
    EXPECT_EQ(e.errors()[0].path, "env.n");
    EXPECT_NE(std::string(e.what()).find("env.n"), std::string::npos);
  }
}

TEST(ScenarioRegistrySurface, RunPresetAndSchemaWork) {
  const auto report = registry().run_preset("e1-fast");
  EXPECT_EQ(report.name, "e1-fast");
  EXPECT_EQ(report.family, ScenarioFamily::kConsensus);
  EXPECT_EQ(report.cells(), 3u);

  const auto schema = report_schema(report.to_json());
  auto contains = [&](const std::string& key) {
    return std::find(schema.begin(), schema.end(), key) != schema.end();
  };
  EXPECT_TRUE(contains("scenario.family"));
  EXPECT_TRUE(contains("outcome.cells[].decided"));
  EXPECT_TRUE(contains("metrics.deliveries"));
  EXPECT_TRUE(contains("timing.wall_s"));
  // The deterministic emission drops timing (and only timing).
  const auto det = report_schema(report.to_json(false));
  EXPECT_EQ(std::count_if(det.begin(), det.end(),
                          [](const std::string& k) {
                            return k.rfind("timing.", 0) == 0;
                          }),
            0);
}

TEST(ScenarioRegistrySurface, UnknownPresetThrows) {
  EXPECT_THROW(registry().run_preset("nope"), std::out_of_range);
}

}  // namespace
}  // namespace anon
