// Proposition 4 — Σ cannot be emulated in MS (even with known n and IDs):
// the two-run indistinguishability adversary defeats every candidate.
#include "emul/sigma_adversary.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

TEST(SigmaCandidates, RecentlyHeardPassesCompletenessButBreaksIntersection) {
  // The "reasonable" candidate: trusts whoever it heard from recently.  It
  // satisfies completeness in both runs — so the adversary extracts an
  // intersection violation, exactly as the paper's proof constructs it.
  for (Round window : {1u, 3u, 10u}) {
    RecentlyHeardSigmaFactory f(window);
    auto v = run_prop4_scenario(f, 200);
    EXPECT_TRUE(v.completeness_r1) << v.summary;
    EXPECT_TRUE(v.completeness_r2) << v.summary;
    EXPECT_TRUE(v.intersection_violated) << v.summary;
    EXPECT_GE(v.t, 1u);
  }
}

TEST(SigmaCandidates, CumulativeBreaksCompleteness) {
  // Trusting everyone ever heard keeps intersection but can never drop the
  // crashed process: completeness fails in r2 (p1 heard p0 before t).
  CumulativeSigmaFactory f;
  auto v = run_prop4_scenario(f, 200);
  // r1: p0 never heard p1, so {p0} is reached immediately.
  EXPECT_TRUE(v.completeness_r1) << v.summary;
  EXPECT_FALSE(v.completeness_r2) << v.summary;
}

TEST(SigmaCandidates, FullSetBreaksCompleteness) {
  FullSetSigmaFactory f;
  auto v = run_prop4_scenario(f, 200);
  EXPECT_FALSE(v.completeness_r1) << v.summary;
}

TEST(SigmaProp4, EveryCandidateLosesSomething) {
  // The dichotomy of Proposition 4, mechanically: each candidate violates
  // completeness (in r1 or r2) or intersection.
  std::vector<std::unique_ptr<SigmaFactory>> factories;
  factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(2));
  factories.push_back(std::make_unique<RecentlyHeardSigmaFactory>(25));
  factories.push_back(std::make_unique<CumulativeSigmaFactory>());
  factories.push_back(std::make_unique<FullSetSigmaFactory>());
  for (const auto& f : factories) {
    auto v = run_prop4_scenario(*f, 300);
    const bool completeness_ok = v.completeness_r1 && v.completeness_r2;
    EXPECT_TRUE(!completeness_ok || v.intersection_violated)
        << f->name() << ": " << v.summary;
  }
}

TEST(SigmaAdversary, WitnessRoundIsDeterministic) {
  RecentlyHeardSigmaFactory f(4);
  auto v1 = run_prop4_scenario(f, 100);
  auto v2 = run_prop4_scenario(f, 100);
  EXPECT_EQ(v1.t, v2.t);
  EXPECT_EQ(v1.intersection_violated, v2.intersection_violated);
}

}  // namespace
}  // namespace anon
