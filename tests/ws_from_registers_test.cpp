// Propositions 2 and 3 — weak-sets FROM registers, under adversarial
// interleavings of atomic register steps.
#include <gtest/gtest.h>

#include "weakset/ws_from_mwmr.hpp"
#include "weakset/ws_from_swmr.hpp"

namespace anon {
namespace {

// ---------- Proposition 2: SWMR registers, known process set ----------

class SwmrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwmrSweep, SpecHoldsUnderConcurrency) {
  const std::size_t n = 4;
  std::vector<ShmWsScriptOp> script;
  // Dense overlapping workload: adds and gets interleave heavily.
  for (std::uint64_t i = 0; i < 20; ++i) {
    script.push_back({i * 3, static_cast<std::size_t>(i % n), true,
                      Value(static_cast<std::int64_t>(i))});
    script.push_back({i * 3 + 1, static_cast<std::size_t>((i + 1) % n), false,
                      Value()});
  }
  auto records = run_ws_from_swmr(n, script, GetParam());
  auto check = check_weak_set_spec(records);
  EXPECT_TRUE(check.ok) << check.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwmrSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(WsFromSwmr, SequentialAddThenGet) {
  std::vector<ShmWsScriptOp> script{
      {0, 0, true, Value(42)},
      {100, 1, false, Value()},
  };
  auto records = run_ws_from_swmr(3, script, 7);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].result, ValueSet{Value(42)});
}

TEST(WsFromSwmr, GetUnionsAllWriters) {
  std::vector<ShmWsScriptOp> script{
      {0, 0, true, Value(1)},
      {1, 1, true, Value(2)},
      {2, 2, true, Value(3)},
      {100, 0, false, Value()},
  };
  auto records = run_ws_from_swmr(3, script, 11);
  EXPECT_EQ(records[3].result, (ValueSet{Value(1), Value(2), Value(3)}));
}

TEST(WsFromSwmr, ReAddingSameValueIsIdempotent) {
  std::vector<ShmWsScriptOp> script{
      {0, 0, true, Value(5)},
      {10, 1, true, Value(5)},
      {100, 2, false, Value()},
  };
  auto records = run_ws_from_swmr(3, script, 3);
  EXPECT_EQ(records[2].result, ValueSet{Value(5)});
}

// ---------- Proposition 3: MWMR registers, finite domain ----------

std::vector<Value> domain10() {
  std::vector<Value> d;
  for (int i = 0; i < 10; ++i) d.push_back(Value(i));
  return d;
}

class MwmrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MwmrSweep, SpecHoldsUnderConcurrency) {
  std::vector<MwmrWsScriptOp> script;
  for (std::uint64_t i = 0; i < 25; ++i) {
    script.push_back({i * 2, i % 7, true, Value(static_cast<std::int64_t>(i % 10))});
    script.push_back({i * 2 + 1, (i + 3) % 7, false, Value()});
  }
  auto records = run_ws_from_mwmr(domain10(), script, GetParam());
  auto check = check_weak_set_spec(records);
  EXPECT_TRUE(check.ok) << check.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwmrSweep,
                         ::testing::Values(4, 9, 16, 25, 36, 49));

TEST(WsFromMwmr, AnonymousConcurrentAddsOfSameValue) {
  // Two anonymous processes adding the same value concurrently write the
  // same constant: indistinguishable and harmless.
  std::vector<MwmrWsScriptOp> script{
      {0, 0, true, Value(3)},
      {0, 1, true, Value(3)},
      {50, 2, false, Value()},
  };
  auto records = run_ws_from_mwmr(domain10(), script, 1);
  EXPECT_EQ(records[2].result, ValueSet{Value(3)});
}

TEST(WsFromMwmr, RejectsValueOutsideDomain) {
  WsFromMwmr ws(domain10());
  EXPECT_THROW(ws.make_add(Value(999)), CheckFailure);
}

TEST(WsFromMwmr, EmptyGetOnFreshSet) {
  std::vector<MwmrWsScriptOp> script{{0, 0, false, Value()}};
  auto records = run_ws_from_mwmr(domain10(), script, 2);
  EXPECT_TRUE(records[0].result.empty());
}

// ---------- StepScheduler determinism ----------

TEST(StepScheduler, SameSeedSameSchedule) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<ShmWsScriptOp> script;
    for (std::uint64_t i = 0; i < 12; ++i) {
      script.push_back({i, i % 3, true, Value(static_cast<std::int64_t>(i))});
      script.push_back({i + 1, (i + 1) % 3, false, Value()});
    }
    return run_ws_from_swmr(3, script, seed);
  };
  auto a = run_once(99);
  auto b = run_once(99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].result, b[i].result);
  }
}

}  // namespace
}  // namespace anon
