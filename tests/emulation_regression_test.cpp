// The interning + watermark refactor of the Algorithm 5 emulation must be
// an exact behavioural no-op: for identical options the optimized engine
// and the retained seed implementation (MsEmulationRef) emit
// byte-identical traces — every end-of-round, every delivery record, in
// the same order with the same timestamps — and identical decisions.
#include <gtest/gtest.h>

#include "algo/es_consensus.hpp"
#include "algo/runner.hpp"
#include "emul/ms_emulation.hpp"
#include "emul/ms_emulation_ref.hpp"
#include "env/validate.hpp"

namespace anon {
namespace {

class Echo final : public Automaton<ValueSet> {
 public:
  explicit Echo(std::int64_t seed) : seed_(seed) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k))
      out.insert(m.begin(), m.end());
    return out;
  }
  std::int64_t seed_;
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> echoes(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<Echo>(static_cast<std::int64_t>(i)));
  return autos;
}

void expect_traces_identical(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.end_of_rounds().size(), b.end_of_rounds().size());
  for (std::size_t i = 0; i < a.end_of_rounds().size(); ++i) {
    const auto& x = a.end_of_rounds()[i];
    const auto& y = b.end_of_rounds()[i];
    ASSERT_TRUE(x.process == y.process && x.round == y.round &&
                x.time == y.time)
        << "end-of-round " << i << " differs";
  }
  ASSERT_EQ(a.deliveries().size(), b.deliveries().size());
  for (std::size_t i = 0; i < a.deliveries().size(); ++i) {
    const auto& x = a.deliveries()[i];
    const auto& y = b.deliveries()[i];
    ASSERT_TRUE(x.sender == y.sender && x.msg_round == y.msg_round &&
                x.receiver == y.receiver &&
                x.receiver_round == y.receiver_round && x.time == y.time)
        << "delivery " << i << " differs";
  }
}

class EmulationEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmulationEquivalence, TracesAreByteIdentical) {
  MsEmulationOptions opt;
  opt.seed = GetParam();
  MsEmulation<ValueSet> fast(echoes(5), opt);
  MsEmulationRef<ValueSet> ref(echoes(5), opt);
  ASSERT_TRUE(fast.run_until_round(30));
  ASSERT_TRUE(ref.run_until_round(30));
  expect_traces_identical(fast.trace(), ref.trace());
  EXPECT_EQ(fast.weak_set_size(), ref.weak_set_size());
  for (ProcId p = 0; p < 5; ++p) EXPECT_EQ(fast.round(p), ref.round(p));
}

TEST_P(EmulationEquivalence, SkewedTracesAreByteIdentical) {
  // Heavy round skew exercises the watermark path hardest: fast processes
  // drain long suffixes while the slow one catches up in bulk.
  MsEmulationOptions opt;
  opt.seed = GetParam() ^ 0xfeed;
  opt.skew = {1, 12, 1, 3};
  MsEmulation<ValueSet> fast(echoes(4), opt);
  MsEmulationRef<ValueSet> ref(echoes(4), opt);
  ASSERT_TRUE(fast.run_until_round(20));
  ASSERT_TRUE(ref.run_until_round(20));
  expect_traces_identical(fast.trace(), ref.trace());
  EXPECT_EQ(fast.weak_set_size(), ref.weak_set_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmulationEquivalence,
                         ::testing::Values(1, 3, 17, 99, 2024, 31337));

TEST(EmulationEquivalence, ConsensusDecisionsMatchTheReference) {
  // Algorithm 2 on top of the emulated MS: both engines must drive the
  // automatons through the identical execution, decisions included.
  MsEmulationOptions opt;
  opt.seed = 77;
  opt.skew = {1, 3, 1, 6};
  auto autos = [] {
    std::vector<std::unique_ptr<Automaton<EsMessage>>> a;
    for (auto v : distinct_values(4))
      a.push_back(std::make_unique<EsConsensus>(v));
    return a;
  };
  MsEmulation<EsMessage> fast(autos(), opt);
  MsEmulationRef<EsMessage> ref(autos(), opt);
  fast.run_until_round(150);
  ref.run_until_round(150);
  expect_traces_identical(fast.trace(), ref.trace());
  for (ProcId p = 0; p < 4; ++p)
    EXPECT_EQ(fast.process(p).decision(), ref.process(p).decision());
}

TEST(EmulationInterning, IdenticalAddsShareOneElement) {
  // Three behaviourally-identical processes intern every ⟨round, batch⟩
  // once: the element store stays at ~one element per round, not n per
  // round (the weak-set merge, now visible in the representation).
  MsEmulationOptions opt;
  opt.seed = 5;
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (int i = 0; i < 3; ++i) autos.push_back(std::make_unique<Echo>(7));
  MsEmulation<ValueSet> emu(std::move(autos), opt);
  ASSERT_TRUE(emu.run_until_round(10));
  Round max_round = 0;
  for (ProcId p = 0; p < 3; ++p) max_round = std::max(max_round, emu.round(p));
  EXPECT_LE(emu.interned_elements(), max_round);
}

}  // namespace
}  // namespace anon
