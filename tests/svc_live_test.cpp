// End-to-end tests of the anonsvc live stack: real loopback sockets, one
// event-loop thread per node, blocking clients.  Wall-clock timing is
// inherently nondeterministic — these tests assert protocol outcomes
// (agreement, validity, quorum completion, watchdog degradation), never
// durations.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "svc/client.hpp"
#include "svc/daemon.hpp"

namespace anon {
namespace {

using namespace std::chrono_literals;

constexpr auto kOpTimeout = 10s;  // generous: CI machines stall threads

LiveClusterOptions base_options(std::size_t n, std::uint64_t seed) {
  LiveClusterOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.period = 2ms;
  opt.max_rounds = 5000;
  return opt;
}

TEST(SvcLive, ThreeNodesDecideAndAgree) {
  LiveClusterOptions opt = base_options(3, 11);
  opt.proposals = {Value(10), Value(20), Value(30)};
  LiveCluster cluster(opt);
  ASSERT_TRUE(cluster.start()) << cluster.error();

  std::vector<Value> decisions;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    SvcClient client;
    ASSERT_TRUE(client.connect(cluster.client_port(i))) << client.error();
    const auto r = client.decision(kOpTimeout);
    ASSERT_TRUE(r.ok()) << "node " << i << ": " << client.error();
    ASSERT_EQ(r.values.size(), 1u);
    decisions.push_back(r.values[0]);
  }
  cluster.stop_all();
  cluster.join();

  // Agreement + validity.
  for (const Value& d : decisions) {
    EXPECT_EQ(d, decisions[0]);
    EXPECT_TRUE(std::find(opt.proposals.begin(), opt.proposals.end(), d) !=
                opt.proposals.end());
  }
  // Post-run observations line up with what the clients saw.
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    ASSERT_TRUE(cluster.node(i).decision().has_value());
    EXPECT_EQ(*cluster.node(i).decision(), decisions[0]);
    EXPECT_GE(cluster.node(i).rounds_executed(), 4u);
  }
}

TEST(SvcLive, TcpMeshDecides) {
  LiveClusterOptions opt = base_options(3, 12);
  opt.socket = SvcSocketKind::kTcp;
  opt.proposals = {Value(5), Value(6), Value(7)};
  LiveCluster cluster(opt);
  ASSERT_TRUE(cluster.start()) << cluster.error();

  std::vector<Value> decisions;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    SvcClient client;
    ASSERT_TRUE(client.connect(cluster.client_port(i))) << client.error();
    const auto r = client.decision(kOpTimeout);
    ASSERT_TRUE(r.ok()) << "node " << i << ": " << client.error();
    decisions.push_back(r.values.at(0));
  }
  cluster.stop_all();
  cluster.join();
  for (const Value& d : decisions) EXPECT_EQ(d, decisions[0]);
}

TEST(SvcLive, WeakSetAddsBecomeVisible) {
  LiveCluster cluster(base_options(3, 13));
  ASSERT_TRUE(cluster.start()) << cluster.error();

  // One client per node, each adding a distinct value; add blocks until
  // the value reaches WRITTEN, so after it returns every node proposed it.
  std::vector<std::unique_ptr<SvcClient>> clients;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    clients.push_back(std::make_unique<SvcClient>());
    ASSERT_TRUE(clients.back()->connect(cluster.client_port(i)));
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto r = clients[i]->ws_add(100 + static_cast<std::int64_t>(i),
                                      kOpTimeout);
    ASSERT_TRUE(r.ok()) << "add via node " << i;
  }
  // get() is non-blocking and returns PROPOSED ⊇ WRITTEN.  A completed add
  // is in WRITTEN at the adder; a laggard node may still have the carrying
  // frame in its inbox (live rounds are not lockstep), so visibility is
  // *eventual*: poll until every value shows up everywhere.
  const auto visible_deadline = std::chrono::steady_clock::now() + 5s;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    for (;;) {
      const auto r = clients[i]->ws_get(kOpTimeout);
      ASSERT_TRUE(r.ok());
      std::size_t present = 0;
      for (std::int64_t v = 100; v < 103; ++v)
        if (std::find(r.values.begin(), r.values.end(), Value(v)) !=
            r.values.end())
          ++present;
      if (present == 3) break;
      if (std::chrono::steady_clock::now() >= visible_deadline) {
        ADD_FAILURE() << "only " << present << " of 3 added values visible "
                      << "at node " << i;
        break;
      }
      std::this_thread::sleep_for(2ms);
    }
  }
  cluster.stop_all();
  cluster.join();
}

TEST(SvcLive, AbdRegisterRegularity) {
  LiveCluster cluster(base_options(3, 14));
  ASSERT_TRUE(cluster.start()) << cluster.error();

  SvcClient writer, reader;
  ASSERT_TRUE(writer.connect(cluster.client_port(0)));
  ASSERT_TRUE(reader.connect(cluster.client_port(2)));

  // Fresh register reads ⊥ (no values).
  auto r = reader.reg_read(kOpTimeout);
  ASSERT_TRUE(r.ok()) << reader.error();
  EXPECT_TRUE(r.values.empty());

  ASSERT_TRUE(writer.reg_write(42, kOpTimeout).ok()) << writer.error();
  r = reader.reg_read(kOpTimeout);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], Value(42));

  // A later write through a different coordinator supersedes (its tag is
  // max_ts + 1 over a majority that stored 42).
  ASSERT_TRUE(reader.reg_write(7, kOpTimeout).ok());
  r = writer.reg_read(kOpTimeout);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], Value(7));
  cluster.stop_all();
  cluster.join();
}

TEST(SvcLive, SafetyHoldsUnderLossAndJitter) {
  // loss = 0.3 on every ingress frame + 1ms jitter: termination slows down
  // but agreement/validity must hold (relayed round batches re-carry every
  // value, so partitions long enough to decide alone are vanishingly rare
  // at n = 5).
  LiveClusterOptions opt = base_options(5, 15);
  opt.loss = 0.3;
  opt.max_jitter = 1ms;
  opt.proposals = {Value(1), Value(2), Value(3), Value(4), Value(5)};
  LiveCluster cluster(opt);
  ASSERT_TRUE(cluster.start()) << cluster.error();

  std::vector<Value> decisions;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    SvcClient client;
    ASSERT_TRUE(client.connect(cluster.client_port(i)));
    const auto r = client.decision(kOpTimeout);
    ASSERT_TRUE(r.ok()) << "node " << i;
    decisions.push_back(r.values.at(0));
  }
  cluster.stop_all();
  cluster.join();
  for (const Value& d : decisions) {
    EXPECT_EQ(d, decisions[0]);
    EXPECT_TRUE(std::find(opt.proposals.begin(), opt.proposals.end(), d) !=
                opt.proposals.end());
  }
  // The loss coin actually fired.
  std::uint64_t drops = 0;
  for (std::size_t i = 0; i < cluster.n(); ++i)
    drops += cluster.node(i).fault_drops();
  EXPECT_GT(drops, 0u);
}

TEST(SvcLive, WatchdogDegradesToUndecidedTimeout) {
  // A watchdog deadline tighter than the earliest possible decision round
  // (ES cannot decide before round 4): the decision wait must degrade to a
  // kTimeout response — the live face of the sim's `undecided` outcome —
  // instead of hanging the client.
  LiveClusterOptions opt = base_options(3, 16);
  opt.watchdog_rounds = 2;
  opt.period = 5ms;
  opt.proposals = {Value(10), Value(20), Value(30)};
  LiveCluster cluster(opt);
  ASSERT_TRUE(cluster.start()) << cluster.error();

  SvcClient client;
  ASSERT_TRUE(client.connect(cluster.client_port(0)));
  const auto r = client.decision(kOpTimeout);
  EXPECT_TRUE(r.transport_ok);  // the node answered; no client-side timeout
  EXPECT_EQ(r.status, SvcStatus::kTimeout);
  cluster.stop_all();
  cluster.join();
}

TEST(SvcLive, CrashedMinorityStillServes) {
  // Node 2 goes silent at round 3; the surviving majority keeps deciding
  // and serving the ABD quorum (2 of 3).
  LiveClusterOptions opt = base_options(3, 17);
  opt.crash_at = {0, 0, 3};
  LiveCluster cluster(opt);
  ASSERT_TRUE(cluster.start()) << cluster.error();

  SvcClient client;
  ASSERT_TRUE(client.connect(cluster.client_port(0)));
  ASSERT_TRUE(client.decision(kOpTimeout).ok()) << client.error();
  ASSERT_TRUE(client.reg_write(9, kOpTimeout).ok()) << client.error();
  const auto r = client.reg_read(kOpTimeout);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0], Value(9));
  cluster.stop_all();
  cluster.join();
}

TEST(SvcLive, StatusReportsRoundAndStabilization) {
  LiveCluster cluster(base_options(3, 18));
  ASSERT_TRUE(cluster.start()) << cluster.error();
  SvcClient client;
  ASSERT_TRUE(client.connect(cluster.client_port(1)));
  ASSERT_TRUE(client.decision(kOpTimeout).ok());
  const auto r = client.status(kOpTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.info, 4u);  // rounds advanced past the decision point
  ASSERT_EQ(r.values.size(), 1u);  // status carries the decision once known
  // Stabilization needs a streak of timely rounds; the first rounds race
  // thread startup, so give the idle mesh a grace window before stopping.
  std::this_thread::sleep_for(200ms);
  cluster.stop_all();
  cluster.join();
  // On an idle loopback the mesh stabilizes (5 consecutive timely rounds).
  bool any_stabilized = false;
  for (std::size_t i = 0; i < cluster.n(); ++i)
    any_stabilized |= cluster.node(i).stabilized();
  EXPECT_TRUE(any_stabilized);
}

}  // namespace
}  // namespace anon
