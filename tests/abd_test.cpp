// The ABD majority-register baseline (known IDs, correct majority).
#include "baseline/abd.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue q;
  std::vector<int> order;
  q.at(5, [&] { order.push_back(2); });
  q.at(1, [&] { order.push_back(1); });
  q.at(5, [&] { order.push_back(3); });  // same time: FIFO
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 5u);
}

TEST(Abd, WriteThenReadReturnsValue) {
  AsyncNet net(5, 42);
  AbdRegister reg(&net);
  std::optional<Value> got;
  reg.write(0, Value(7), [&](std::uint64_t) {
    reg.read(1, [&](std::optional<Value> v, std::uint64_t) { got = v; });
  });
  net.events().run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Value(7));
}

TEST(Abd, FreshRegisterReadsInitial) {
  AsyncNet net(3, 7);
  AbdRegister reg(&net);
  std::optional<Value> got = Value(99);
  bool done = false;
  reg.read(0, [&](std::optional<Value> v, std::uint64_t) {
    got = v;
    done = true;
  });
  net.events().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, std::nullopt);
}

TEST(Abd, LaterWriteSupersedesEarlier) {
  AsyncNet net(5, 3);
  AbdRegister reg(&net);
  std::optional<Value> got;
  reg.write(0, Value(1), [&](std::uint64_t) {
    reg.write(1, Value(2), [&](std::uint64_t) {
      reg.read(2, [&](std::optional<Value> v, std::uint64_t) { got = v; });
    });
  });
  net.events().run();
  EXPECT_EQ(got, Value(2));
}

TEST(Abd, ToleratesMinorityCrashes) {
  AsyncNet net(5, 11);
  net.crash(3);
  net.crash(4);  // 3 of 5 alive: still a majority
  AbdRegister reg(&net);
  std::optional<Value> got;
  reg.write(0, Value(5), [&](std::uint64_t) {
    reg.read(1, [&](std::optional<Value> v, std::uint64_t) { got = v; });
  });
  net.events().run();
  EXPECT_EQ(got, Value(5));
}

TEST(Abd, BlocksWithoutMajority) {
  // THE contrast with the weak-set register (E6): lose the majority and
  // ABD's operations never return.
  AsyncNet net(5, 13);
  net.crash(2);
  net.crash(3);
  net.crash(4);  // only 2 of 5 alive
  AbdRegister reg(&net);
  bool done = false;
  reg.write(0, Value(5), [&](std::uint64_t) { done = true; });
  net.events().run();
  EXPECT_FALSE(done);
}

TEST(Abd, ConcurrentWritersConvergeByTag) {
  AsyncNet net(5, 17);
  AbdRegister reg(&net);
  int writes_done = 0;
  reg.write(0, Value(10), [&](std::uint64_t) { ++writes_done; });
  reg.write(1, Value(20), [&](std::uint64_t) { ++writes_done; });
  net.events().run();
  EXPECT_EQ(writes_done, 2);
  // After both complete, every subsequent read returns the same winner.
  std::optional<Value> r1, r2;
  reg.read(2, [&](std::optional<Value> v, std::uint64_t) { r1 = v; });
  reg.read(3, [&](std::optional<Value> v, std::uint64_t) { r2 = v; });
  net.events().run();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1, r2);
}

TEST(Abd, MessageCountPerOpIsLinearInN) {
  for (std::size_t n : {3u, 5u, 9u}) {
    AsyncNet net(n, 23);
    AbdRegister reg(&net);
    reg.write(0, Value(1), [](std::uint64_t) {});
    net.events().run();
    // Two phases, each n requests + n replies = 4n messages.
    EXPECT_EQ(reg.messages(), 4 * n);
  }
}

}  // namespace
}  // namespace anon
