// Environment generators produce traces that the validators certify, and
// the validators reject traces that violate the properties.
#include "env/generate.hpp"
#include "env/validate.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/value.hpp"
#include "net/lockstep.hpp"

namespace anon {
namespace {

class Noop final : public Automaton<ValueSet> {
 public:
  ValueSet initialize() override { return ValueSet{Value(1)}; }
  ValueSet compute(Round, const Inboxes<ValueSet>&) override {
    return ValueSet{Value(1)};
  }
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> noops(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i) autos.push_back(std::make_unique<Noop>());
  return autos;
}

Trace run_trace(const EnvParams& env, const CrashPlan& crashes, Round rounds) {
  EnvDelayModel delays(env, crashes);
  LockstepNet<ValueSet> net(noops(env.n), delays, crashes);
  net.run_rounds(rounds);
  return net.trace();
}

class EnvGenTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvGenTest, MsScheduleSatisfiesMs) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 5;
  env.seed = GetParam();
  Trace t = run_trace(env, CrashPlan{}, 30);
  auto res = check_environment(t, env.n, CrashPlan{}.correct(env.n));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  EXPECT_GE(res.checked_rounds, 29u);
}

TEST_P(EnvGenTest, EsScheduleHasEsWitnessAfterGst) {
  EnvParams env;
  env.kind = EnvKind::kES;
  env.n = 4;
  env.seed = GetParam();
  env.stabilization = 10;
  Trace t = run_trace(env, CrashPlan{}, 30);
  auto res = check_environment(t, env.n, CrashPlan{}.correct(env.n));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  ASSERT_TRUE(res.es_from.has_value()) << res.to_string();
  EXPECT_LE(*res.es_from, 11u);
}

TEST_P(EnvGenTest, EssScheduleHasStableSource) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 6;
  env.seed = GetParam();
  env.stabilization = 8;
  CrashPlan crashes;
  crashes.crash_at(2, 5);
  Trace t = run_trace(env, crashes, 40);
  auto res = check_environment(t, env.n, crashes.correct(env.n));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  ASSERT_TRUE(res.ess_from.has_value()) << res.to_string();
  EXPECT_LE(*res.ess_from, 9u);
  EnvDelayModel model(env, crashes);
  EXPECT_EQ(*res.ess_source, model.stable_source());
}

TEST_P(EnvGenTest, MsScheduleWithCrashesStillHasSources) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 6;
  env.seed = GetParam();
  CrashPlan crashes;
  crashes.crash_at(0, 3);
  crashes.crash_at(1, 7);
  crashes.crash_at(2, 7);
  Trace t = run_trace(env, crashes, 25);
  auto res = check_environment(t, env.n, crashes.correct(env.n));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvGenTest,
                         ::testing::Values(1, 2, 3, 7, 41, 1234, 99999));

TEST(EnvValidate, DetectsMissingSource) {
  // Hand-build a trace where round 2 has no timely source.
  Trace t;
  for (ProcId p = 0; p < 2; ++p)
    for (Round k = 1; k <= 3; ++k) t.record_end_of_round(p, k, k);
  // Round 1 and 3: p0 timely to p1. Round 2: nothing timely.
  t.record_delivery(0, 1, 1, 1, 1);
  t.record_delivery(1, 1, 0, 1, 1);
  t.record_delivery(0, 2, 1, 3, 3);  // late
  t.record_delivery(1, 2, 0, 3, 3);  // late
  t.record_delivery(0, 3, 1, 3, 3);
  t.record_delivery(1, 3, 0, 3, 3);
  auto res = check_environment(t, 2, {0, 1});
  EXPECT_FALSE(res.ms_ok);
  EXPECT_EQ(res.first_ms_violation, 2u);
}

TEST(EnvValidate, SingleProcessIsTriviallyMs) {
  // With one (correct) process, its own message is local: it is a source.
  Trace t;
  for (Round k = 1; k <= 5; ++k) t.record_end_of_round(0, k, k);
  auto res = check_environment(t, 1, {0});
  EXPECT_TRUE(res.ms_ok);
  EXPECT_EQ(res.checked_rounds, 4u);  // round 5 is still open
  EXPECT_TRUE(res.es_from.has_value());
  EXPECT_TRUE(res.ess_from.has_value());
}

TEST(EnvValidate, ChecksOnlyCommonClosedPrefix) {
  // A correct process stuck in round 2 limits the checkable prefix to
  // round 1 (its round 2 is still open: late timely deliveries possible).
  Trace t;
  t.record_end_of_round(0, 1, 1);
  t.record_end_of_round(1, 1, 1);
  t.record_delivery(0, 1, 1, 1, 1);
  t.record_delivery(1, 1, 0, 1, 1);
  t.record_end_of_round(0, 2, 2);
  t.record_end_of_round(1, 2, 2);
  t.record_end_of_round(0, 3, 3);  // p1 never finishes round 3
  auto res = check_environment(t, 2, {0, 1});
  EXPECT_EQ(res.checked_rounds, 1u);
  EXPECT_TRUE(res.ms_ok);
}

TEST(EnvValidate, EmptyTraceNotCheckable) {
  Trace t;
  auto res = check_environment(t, 3, {0, 1, 2});
  EXPECT_FALSE(res.ms_ok);
  EXPECT_EQ(res.checked_rounds, 0u);
}

TEST(EnvValidate, EssWitnessIdentifiesTheStableProcess) {
  // p1 is the source in every round; p0 only in round 1.
  Trace t;
  const std::size_t n = 3;
  for (ProcId p = 0; p < n; ++p)
    for (Round k = 1; k <= 4; ++k) t.record_end_of_round(p, k, k);
  for (Round k = 1; k <= 4; ++k)
    for (ProcId q = 0; q < n; ++q)
      if (q != 1) t.record_delivery(1, k, q, k, k);
  for (ProcId q = 1; q < n; ++q) t.record_delivery(0, 1, q, 1, 1);
  auto res = check_environment(t, n, {0, 1, 2});
  EXPECT_TRUE(res.ms_ok);
  ASSERT_TRUE(res.ess_from.has_value());
  EXPECT_EQ(*res.ess_from, 1u);
  EXPECT_EQ(*res.ess_source, 1u);
}

TEST(HostileMs, SatisfiesMsButNeverStabilizes) {
  HostileMsModel delays(4, 7);
  LockstepNet<ValueSet> net(noops(4), delays, CrashPlan{});
  net.run_rounds(40);
  auto res = check_environment(net.trace(), 4, CrashPlan{}.correct(4));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  // The source moves every round: no stable-source suffix of length > 1,
  // and no all-timely suffix.
  if (res.ess_from.has_value()) {
    EXPECT_GE(*res.ess_from, res.checked_rounds);  // only a trivial suffix
  }
  if (res.es_from.has_value()) {
    EXPECT_GE(*res.es_from, res.checked_rounds);
  }
}

}  // namespace
}  // namespace anon
