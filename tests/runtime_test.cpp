// Wire codecs, the broadcast bus, and the threaded real-time clusters.
#include "runtime/realtime.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

// ---------- byte primitives ----------

TEST(ByteCodec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.u8(), std::nullopt);  // past the end
}

// ---------- message codecs ----------

TEST(EsCodec, RoundTrip) {
  for (const EsMessage& m :
       {EsMessage{}, EsMessage{Value(1)}, EsMessage{Value(-5), Value(7)},
        EsMessage{Value::Bottom(), Value(0)}}) {
    auto back = decode_es_message(encode_es_message(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST(EsCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_es_message({}).has_value());
  EXPECT_FALSE(decode_es_message({'X', 1, 2, 3}).has_value());
  Bytes good = encode_es_message(EsMessage{Value(1)});
  good.pop_back();  // truncated
  EXPECT_FALSE(decode_es_message(good).has_value());
  good = encode_es_message(EsMessage{Value(1)});
  good.push_back(0);  // trailing junk
  EXPECT_FALSE(decode_es_message(good).has_value());
}

TEST(EssCodec, RoundTripWithHistoriesAndCounters) {
  HistoryArena tx, rx;
  History h = tx.of({Value(1), Value(2), Value(3)});
  CounterMap c;
  c.set(tx.of({Value(1)}), 4);
  c.set(h, 9);
  EssMessage m{ValueSet{Value(2), Value::Bottom()}, h, c};
  auto back = decode_ess_message(encode_ess_message(m), &rx);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->proposed, m.proposed);
  EXPECT_EQ(back->history.values(), m.history.values());
  EXPECT_EQ(back->counters.size(), 2u);
  EXPECT_EQ(back->counters.get(rx.of({Value(1)})), 4u);
  EXPECT_EQ(back->counters.get(rx.of({Value(1), Value(2), Value(3)})), 9u);
}

TEST(EssCodec, DecodedHistoriesInternIntoReceiverArena) {
  HistoryArena tx, rx;
  EssMessage m{ValueSet{}, tx.of({Value(1), Value(2)}), CounterMap{}};
  auto a = decode_ess_message(encode_ess_message(m), &rx);
  auto b = decode_ess_message(encode_ess_message(m), &rx);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->history, b->history);  // pointer-equal via rx interning
}

TEST(EssCodec, RejectsGarbage) {
  HistoryArena rx;
  EXPECT_FALSE(decode_ess_message({}, &rx).has_value());
  EXPECT_FALSE(decode_ess_message({'S'}, &rx).has_value());
}

// ---------- bus ----------

TEST(BroadcastBus, DeliversToAllSubscribers) {
  BroadcastBus bus(3);
  bus.broadcast({1, 2, 3});
  for (std::size_t s = 0; s < 3; ++s) {
    auto msgs = bus.drain(s);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0], (Bytes{1, 2, 3}));
  }
  EXPECT_TRUE(bus.drain(0).empty());  // drained
  EXPECT_EQ(bus.broadcasts(), 1u);
}

TEST(BroadcastBus, LossPolicyDrops) {
  BroadcastBus bus(2, std::make_unique<JitterPolicy>(
                          1, std::chrono::milliseconds(0), /*loss=*/1.0));
  bus.broadcast({9});
  EXPECT_TRUE(bus.drain(0).empty());
  EXPECT_TRUE(bus.drain(1).empty());
}

// The bus's loss knob and the simulator's FaultPlan share one coin: the
// JitterPolicy verdict sequence is exactly the hash_chance draws over the
// fault_stream_seed-derived stream.  Pins the unification so the two
// backends can't silently drift apart.
TEST(BroadcastBus, JitterLossMatchesFaultStreamHash) {
  const std::uint64_t seed = 42;
  const double loss = 0.5;
  JitterPolicy policy(seed, std::chrono::milliseconds(0), loss);
  const std::uint64_t stream = fault_stream_seed(seed, 0);
  std::size_t drops = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const bool dropped = !policy.delivery_delay(/*subscriber=*/1).has_value();
    EXPECT_EQ(dropped, hash_chance(hash_mix(stream, i, 1, 0), loss));
    drops += dropped ? 1 : 0;
  }
  EXPECT_GT(drops, 0u);    // the coin actually flips both ways
  EXPECT_LT(drops, 256u);
}

// ---------- real-time clusters (threads + wall clock) ----------

TEST(RealtimeCluster, EsConsensusDecidesOverTheBus) {
  const std::size_t n = 4;
  BroadcastBus bus(n, std::make_unique<JitterPolicy>(
                          7, std::chrono::milliseconds(1)));
  std::vector<RealtimeEsCluster::AutomatonFactory> factories;
  for (std::size_t i = 0; i < n; ++i)
    factories.push_back([i](HistoryArena*) {
      return std::make_unique<EsConsensus>(Value(10 + static_cast<std::int64_t>(i)));
    });
  RealtimeOptions opt;
  opt.round_period = std::chrono::milliseconds(8);  // >> jitter: ES holds
  opt.max_rounds = 500;
  RealtimeEsCluster cluster(std::move(factories), &bus, opt);
  ASSERT_TRUE(cluster.run());
  std::optional<Value> v;
  for (std::size_t p = 0; p < n; ++p) {
    auto d = cluster.decision(p);
    ASSERT_TRUE(d.has_value());
    if (!v) v = d;
    EXPECT_EQ(*v, *d);  // agreement
    EXPECT_GE(d->get(), 10);
    EXPECT_LE(d->get(), 13);  // validity
  }
}

TEST(RealtimeCluster, EssConsensusDecidesOverTheBus) {
  const std::size_t n = 3;
  BroadcastBus bus(n, std::make_unique<JitterPolicy>(
                          11, std::chrono::milliseconds(1)));
  std::vector<RealtimeEssCluster::AutomatonFactory> factories;
  for (std::size_t i = 0; i < n; ++i)
    factories.push_back([i](HistoryArena* arena) {
      return std::make_unique<EssConsensus>(
          Value(100 + static_cast<std::int64_t>(i)), arena);
    });
  RealtimeOptions opt;
  opt.round_period = std::chrono::milliseconds(8);
  opt.max_rounds = 500;
  RealtimeEssCluster cluster(std::move(factories), &bus, opt);
  ASSERT_TRUE(cluster.run());
  std::optional<Value> v;
  for (std::size_t p = 0; p < n; ++p) {
    auto d = cluster.decision(p);
    ASSERT_TRUE(d.has_value());
    if (!v) v = d;
    EXPECT_EQ(*v, *d);
  }
}

TEST(RealtimeCluster, ToleratesThreadCrash) {
  const std::size_t n = 4;
  BroadcastBus bus(n);
  std::vector<RealtimeEsCluster::AutomatonFactory> factories;
  for (std::size_t i = 0; i < n; ++i)
    factories.push_back([i](HistoryArena*) {
      return std::make_unique<EsConsensus>(Value(static_cast<std::int64_t>(i)));
    });
  RealtimeOptions opt;
  opt.round_period = std::chrono::milliseconds(6);
  opt.max_rounds = 500;
  RealtimeEsCluster cluster(std::move(factories), &bus, opt);
  cluster.crash_before_round(0, 3);  // dies early
  ASSERT_TRUE(cluster.run());
  EXPECT_FALSE(cluster.decision(0).has_value());
  std::optional<Value> v;
  for (std::size_t p = 1; p < n; ++p) {
    auto d = cluster.decision(p);
    ASSERT_TRUE(d.has_value());
    if (!v) v = d;
    EXPECT_EQ(*v, *d);
  }
}

}  // namespace
}  // namespace anon
