// Sharded intra-run execution (PR 6 tentpole): the sharded engine —
// per-shard interners/calendars/outboxes, canonical payload merge at the
// round barrier, uniform-delay group delivery — must be BYTE-IDENTICAL to
// the serial reference engine: same decisions, decision rounds, transport
// metrics, per-round metric series, and trace event streams, at every
// shard and thread count, under every schedule shape (uniform fast path,
// non-uniform fallback, crashing senders, adversarial overrides).
#include "net/lockstep.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "algo/es_consensus.hpp"
#include "algo/ess_consensus.hpp"
#include "algo/runner.hpp"
#include "common/rng.hpp"
#include "env/generate.hpp"
#include "net/cohort.hpp"
#include "sim/experiment.hpp"

namespace anon {
namespace {

// ---------------------------------------------------------------------------
// Compile-time lifetime guard (the PR-6 satellite fix): both engines alias
// their DelayModel for the whole run, so binding a temporary must be
// rejected at compile time, not discovered by ASan at the first probe.

static_assert(
    !std::is_constructible_v<LockstepNet<EsMessage>,
                             std::vector<std::unique_ptr<Automaton<EsMessage>>>,
                             SynchronousDelays, CrashPlan, LockstepOptions>,
    "LockstepNet must reject a temporary DelayModel");
static_assert(
    std::is_constructible_v<LockstepNet<EsMessage>,
                            std::vector<std::unique_ptr<Automaton<EsMessage>>>,
                            const SynchronousDelays&, CrashPlan,
                            LockstepOptions>,
    "LockstepNet must accept an lvalue DelayModel");
static_assert(
    !std::is_constructible_v<CohortNet<EsMessage>,
                             std::vector<CohortNet<EsMessage>::InitGroup>,
                             SynchronousDelays, CrashPlan, CohortOptions>,
    "CohortNet must reject a temporary DelayModel");
static_assert(
    std::is_constructible_v<CohortNet<EsMessage>,
                            std::vector<CohortNet<EsMessage>::InitGroup>,
                            const SynchronousDelays&, CrashPlan, CohortOptions>,
    "CohortNet must accept an lvalue DelayModel");

// ---------------------------------------------------------------------------
// Harness: run one configuration serially and sharded, compare everything.

struct Observed {
  Round rounds = 0;
  bool stopped = false;
  std::vector<std::optional<Value>> decisions;
  std::vector<Round> decision_rounds;
  std::uint64_t sends = 0, bytes = 0, deliveries = 0;
  std::uint64_t fault_drops = 0, fault_dups = 0;
  Trace trace;
};

template <typename Net>
Observed observe(Net& net, RunResult run) {
  Observed o;
  o.rounds = run.rounds;
  o.stopped = run.stopped;
  for (ProcId p = 0; p < net.n(); ++p) {
    o.decisions.push_back(net.decision(p));
    o.decision_rounds.push_back(net.decision_round(p));
  }
  o.sends = net.sends();
  o.bytes = net.bytes_sent();
  o.deliveries = net.deliveries();
  o.fault_drops = net.fault_drops();
  o.fault_dups = net.fault_dups();
  o.trace = net.trace();
  return o;
}

void expect_traces_equal(const Trace& a, const Trace& b,
                         const std::string& what) {
  ASSERT_EQ(a.end_of_rounds().size(), b.end_of_rounds().size()) << what;
  for (std::size_t i = 0; i < a.end_of_rounds().size(); ++i) {
    const EndOfRoundEvent &x = a.end_of_rounds()[i], &y = b.end_of_rounds()[i];
    ASSERT_TRUE(x.process == y.process && x.round == y.round &&
                x.time == y.time)
        << what << " eor event " << i;
  }
  ASSERT_EQ(a.deliveries().size(), b.deliveries().size()) << what;
  for (std::size_t i = 0; i < a.deliveries().size(); ++i) {
    const DeliveryEvent &x = a.deliveries()[i], &y = b.deliveries()[i];
    ASSERT_TRUE(x.sender == y.sender && x.msg_round == y.msg_round &&
                x.receiver == y.receiver &&
                x.receiver_round == y.receiver_round && x.time == y.time)
        << what << " delivery event " << i;
  }
  ASSERT_EQ(a.crashes().size(), b.crashes().size()) << what;
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    const CrashEvent &x = a.crashes()[i], &y = b.crashes()[i];
    ASSERT_TRUE(x.process == y.process && x.round == y.round)
        << what << " crash event " << i;
  }
}

void expect_equal(const Observed& serial, const Observed& sharded,
                  const std::string& what) {
  EXPECT_EQ(serial.rounds, sharded.rounds) << what;
  EXPECT_EQ(serial.stopped, sharded.stopped) << what;
  EXPECT_EQ(serial.sends, sharded.sends) << what;
  EXPECT_EQ(serial.bytes, sharded.bytes) << what;
  EXPECT_EQ(serial.deliveries, sharded.deliveries) << what;
  EXPECT_EQ(serial.fault_drops, sharded.fault_drops) << what;
  EXPECT_EQ(serial.fault_dups, sharded.fault_dups) << what;
  ASSERT_EQ(serial.decisions.size(), sharded.decisions.size()) << what;
  for (std::size_t p = 0; p < serial.decisions.size(); ++p) {
    EXPECT_EQ(serial.decisions[p], sharded.decisions[p]) << what << " p=" << p;
    EXPECT_EQ(serial.decision_rounds[p], sharded.decision_rounds[p])
        << what << " p=" << p;
  }
  expect_traces_equal(serial.trace, sharded.trace, what);
}

struct Scenario {
  ConsensusAlgo algo = ConsensusAlgo::kEs;
  EnvParams env;
  CrashPlan crashes;
  std::vector<Value> initial;
  FaultParams faults;   // compiled into a FaultPlan by the harness
  LockstepOptions net;  // engine_threads/engine_shards overridden per run
};

std::vector<std::unique_ptr<Automaton<EsMessage>>> es_autos(
    const std::vector<Value>& initial) {
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (const Value& v : initial)
    autos.push_back(std::make_unique<EsConsensus>(v));
  return autos;
}

Observed run_once(const Scenario& sc, const DelayModel& delays,
                  std::size_t engine_threads, std::size_t engine_shards,
                  std::size_t* shards_ran = nullptr) {
  LockstepOptions opt = sc.net;
  opt.engine_threads = engine_threads;
  opt.engine_shards = engine_shards;
  if (sc.algo == ConsensusAlgo::kEs) {
    LockstepNet<EsMessage> net(es_autos(sc.initial), delays, sc.crashes, opt);
    if (shards_ran) *shards_ran = net.engine_shards();
    return observe(net, net.run_until_all_correct_decided());
  }
  HistoryArena arena;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (const Value& v : sc.initial)
    autos.push_back(std::make_unique<EssConsensus>(v, &arena));
  LockstepNet<EssMessage> net(std::move(autos), delays, sc.crashes, opt);
  if (shards_ran) *shards_ran = net.engine_shards();
  return observe(net, net.run_until_all_correct_decided());
}

// Serial reference vs engine_threads ∈ {2, 8} (and the decoupled
// single-threaded 8-shard engine) on the env-generated schedule.
void check_thread_invariance(const Scenario& sc0, const std::string& what) {
  Scenario sc = sc0;
  const EnvDelayModel delays(sc.env, sc.crashes);
  const FaultPlan plan(sc.faults, sc.net.seed, sc.env.n, &delays);
  if (plan.active()) sc.net.faults = &plan;
  std::size_t shards = 0;
  const Observed serial = run_once(sc, delays, 1, 0, &shards);
  ASSERT_EQ(shards, 1u) << what << ": engine_threads=1 must stay serial";
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const Observed sharded = run_once(sc, delays, threads, 0, &shards);
    EXPECT_GT(shards, 1u) << what;
    expect_equal(serial, sharded,
                 what + " threads=" + std::to_string(threads));
  }
  const Observed aggregated = run_once(sc, delays, 1, 8, &shards);
  EXPECT_EQ(shards, std::min<std::size_t>(8, sc.env.n)) << what;
  expect_equal(serial, aggregated, what + " threads=1 shards=8");
}

// ---------------------------------------------------------------------------

TEST(ShardedEquivalence, RandomizedConfigsMatchSerialAtEveryThreadCount) {
  // Randomized (seed, env kind, crash plan, trace mode) configurations
  // across both algorithms; every one must be byte-identical — including
  // full per-link delivery traces on half the configs — at engine_threads
  // ∈ {1, 2, 8} and at engine_shards = 8 on one thread.
  std::size_t checked = 0;
  for (std::uint64_t cfg = 0; cfg < 24; ++cfg) {
    Rng rng(0x5eed + cfg * 131);
    Scenario sc;
    sc.algo = (cfg % 2 == 0) ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    sc.env.kind = (cfg % 4 < 2) ? EnvKind::kES : EnvKind::kESS;
    sc.env.n = 3 + static_cast<std::size_t>(rng.below(30));  // 3..32
    sc.env.seed = rng.below(1u << 30);
    sc.env.stabilization = static_cast<Round>(rng.below(6));
    sc.env.max_delay = 1 + static_cast<Round>(rng.below(3));
    sc.env.timely_prob = 0.1 + 0.3 * rng.real();
    const std::size_t f =
        std::min<std::size_t>(sc.env.n - 1, rng.below(4));  // 0..3 crashes
    if (f > 0)
      sc.crashes = random_crashes(
          sc.env.n, f, std::max<Round>(2, sc.env.stabilization + 2),
          sc.env.seed + 13);
    sc.initial = (cfg % 3 == 0)
                     ? distinct_values(sc.env.n)
                     : random_values(sc.env.n, sc.env.seed + 7, 100, 103);
    sc.net.seed = sc.env.seed;
    sc.net.max_rounds = 4000;
    sc.net.record_trace = true;
    sc.net.record_deliveries = (cfg % 2 == 0);  // per-link trace mode
    sc.net.relay_partial_broadcast = (cfg % 5 != 4);
    check_thread_invariance(sc, "cfg " + std::to_string(cfg));
    ++checked;
  }
  EXPECT_GE(checked, 20u);
}

TEST(ShardedEquivalence, MidRoundCrashAudienceStraddlesShardBoundaries) {
  // Directed: a fully uniform environment (the group fast path) with
  // senders crashing mid-run — each crashing sender falls back to exact
  // per-link entries whose final audience and relayed non-audience both
  // span multiple shards.  Run with and without the relay layer.
  for (const bool relay : {true, false}) {
    Scenario sc;
    sc.env.kind = EnvKind::kES;
    sc.env.n = 12;  // 8 shards: shard sizes 2,2,2,2,1,1,1,1
    sc.env.seed = 99;
    sc.env.stabilization = 0;  // GST = 0: every round is uniform
    sc.crashes.crash_at(1, 3);
    sc.crashes.crash_at(5, 3);  // two crashes in the same round
    sc.crashes.crash_at(10, 5);
    sc.initial = random_values(sc.env.n, 7, 100, 102);
    sc.net.seed = 99;
    sc.net.max_rounds = 2000;
    sc.net.record_deliveries = true;
    sc.net.relay_partial_broadcast = relay;
    check_thread_invariance(sc, relay ? "relay on" : "relay off");
  }
}

TEST(ShardedEquivalence, NonUniformRoundsUseTheExactFallback) {
  // Pre-GST ES rounds have genuinely per-link random delays, so the
  // sharded engine must run entire rounds through the exact per-link
  // path and still splice a byte-identical trace.
  Scenario sc;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 17;
  sc.env.seed = 1234;
  sc.env.stabilization = 8;  // rounds 1..8 are non-uniform
  sc.env.max_delay = 3;
  sc.initial = distinct_values(sc.env.n);
  sc.net.seed = 1234;
  sc.net.max_rounds = 2000;
  sc.net.record_deliveries = true;
  check_thread_invariance(sc, "pre-GST non-uniform");
}

TEST(ShardedEquivalence, AdversarialOverrideMatchesSerial) {
  // The E8 bivalent two-camp MS schedule (no uniform_delay hint at all):
  // a bounded no-decision run must produce identical metrics and traces.
  const std::size_t n = 9;
  const BivalentMsModel model(n);
  const std::vector<Value> initial = BivalentMsModel::initial_values(n);
  const CrashPlan no_crashes;
  LockstepOptions opt;
  opt.max_rounds = 60;
  opt.record_deliveries = true;

  LockstepNet<EsMessage> serial(es_autos(initial), model, no_crashes, opt);
  const Observed a = observe(serial, serial.run_rounds(50));

  LockstepOptions sharded_opt = opt;
  sharded_opt.engine_threads = 8;
  LockstepNet<EsMessage> sharded(es_autos(initial), model, no_crashes,
                                 sharded_opt);
  const Observed b = observe(sharded, sharded.run_rounds(50));
  expect_equal(a, b, "bivalent override");
  // The adversary keeps the run bivalent: nobody decided in either mode.
  for (ProcId p = 0; p < n; ++p) EXPECT_FALSE(a.decisions[p].has_value());
}

TEST(ShardedEquivalence, StopAfterDecideHaltsIdentically) {
  Scenario sc;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 11;
  sc.env.seed = 5;
  sc.env.stabilization = 3;
  sc.initial = random_values(sc.env.n, 5, 100, 101);
  sc.net.seed = 5;
  sc.net.max_rounds = 400;
  sc.net.halt_policy = HaltPolicy::kStopAfterDecide;
  sc.net.record_deliveries = true;
  const EnvDelayModel delays(sc.env, sc.crashes);
  // kStopAfterDecide can starve laggards forever, so run to a fixed
  // horizon instead of to all-decided.
  LockstepOptions serial_opt = sc.net;
  LockstepNet<EsMessage> serial(es_autos(sc.initial), delays, sc.crashes,
                                serial_opt);
  const Observed a = observe(serial, serial.run_rounds(60));
  LockstepOptions sharded_opt = sc.net;
  sharded_opt.engine_threads = 4;
  LockstepNet<EsMessage> sharded(es_autos(sc.initial), delays, sc.crashes,
                                 sharded_opt);
  const Observed b = observe(sharded, sharded.run_rounds(60));
  expect_equal(a, b, "stop-after-decide");
}

TEST(ShardedEquivalence, PerRoundMetricSeriesMatchesSerial) {
  // Single-round stepping (the collect_round_series pattern re-enters
  // deliver_due for the same round): the cumulative (sends, bytes,
  // deliveries) series must match round for round.
  for (const std::uint64_t seed : {3u, 17u, 29u}) {
    Scenario sc;
    sc.env.kind = EnvKind::kES;
    sc.env.n = 10;
    sc.env.seed = seed;
    sc.env.stabilization = 4;
    sc.crashes.crash_at(2, 3);
    sc.initial = random_values(sc.env.n, seed, 100, 102);
    sc.net.seed = seed;
    sc.net.record_trace = false;
    const EnvDelayModel delays(sc.env, sc.crashes);
    LockstepOptions serial_opt = sc.net;
    LockstepNet<EsMessage> serial(es_autos(sc.initial), delays, sc.crashes,
                                  serial_opt);
    LockstepOptions sharded_opt = sc.net;
    sharded_opt.engine_threads = 4;
    LockstepNet<EsMessage> sharded(es_autos(sc.initial), delays, sc.crashes,
                                   sharded_opt);
    const auto sa = collect_round_series(serial, 30);
    const auto sb = collect_round_series(sharded, 30);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
      EXPECT_EQ(sa[i], sb[i]) << "seed " << seed << " step " << i << ": "
                              << sa[i].to_string() << " vs "
                              << sb[i].to_string();
  }
}

TEST(ShardedEquivalence, ConsensusReportsMatchThroughTheRunnerSurface) {
  // End-to-end through run_consensus: the full report (decisions,
  // agreement/validity verdicts, metrics, env certification) and the
  // returned trace must be identical at every engine_threads value.
  for (const ConsensusAlgo algo : {ConsensusAlgo::kEs, ConsensusAlgo::kEss}) {
    ConsensusConfig cfg;
    cfg.env.kind = algo == ConsensusAlgo::kEs ? EnvKind::kES : EnvKind::kESS;
    cfg.env.n = 14;
    cfg.env.seed = 77;
    cfg.env.stabilization = 5;
    cfg.crashes = random_crashes(cfg.env.n, 2, 6, 123);
    cfg.initial = random_values(cfg.env.n, 77, 100, 102);
    cfg.net.seed = 77;
    cfg.net.record_deliveries = true;
    cfg.validate_env = true;

    cfg.net.engine_threads = 1;
    Trace serial_trace;
    const ConsensusReport serial = run_consensus(algo, cfg, &serial_trace);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      cfg.net.engine_threads = threads;
      Trace trace;
      const ConsensusReport rep = run_consensus(algo, cfg, &trace);
      EXPECT_EQ(serial.to_string(), rep.to_string())
          << to_string(algo) << " threads=" << threads;
      EXPECT_EQ(serial.rounds_executed, rep.rounds_executed);
      EXPECT_EQ(serial.last_decision_round, rep.last_decision_round);
      EXPECT_EQ(serial.deliveries, rep.deliveries);
      EXPECT_EQ(serial.bytes_sent, rep.bytes_sent);
      expect_traces_equal(serial_trace, trace,
                          std::string(to_string(algo)) + " threads=" +
                              std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection (PR 7 tentpole): seeded loss/duplication/reorder/omission/
// churn plans are a pure function of (fault seed, round, sender, receiver),
// so the sharded engine must stay byte-identical to serial under any plan —
// including full per-link delivery traces and the fault counters themselves.

TEST(FaultedEquivalence, RandomizedFaultPlansMatchSerialAtEveryThreadCount) {
  std::size_t faulted = 0;
  for (std::uint64_t cfg = 0; cfg < 12; ++cfg) {
    Rng rng(0xfa017 + cfg * 977);
    Scenario sc;
    sc.algo = (cfg % 2 == 0) ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    sc.env.kind = (cfg % 4 < 2) ? EnvKind::kES : EnvKind::kESS;
    sc.env.n = 3 + static_cast<std::size_t>(rng.below(14));  // 3..16
    sc.env.seed = rng.below(1u << 30);
    sc.env.stabilization = static_cast<Round>(rng.below(5));
    sc.initial = random_values(sc.env.n, sc.env.seed + 7, 100, 103);
    sc.net.seed = sc.env.seed;
    sc.net.max_rounds = 600;
    sc.net.record_trace = true;
    sc.net.record_deliveries = (cfg % 2 == 0);
    sc.faults.loss_prob = 0.2 * rng.real();
    sc.faults.dup_prob = 0.25 * rng.real();
    sc.faults.dup_extra_delay = 1 + static_cast<Round>(rng.below(3));
    sc.faults.reorder_prob = 0.25 * rng.real();
    sc.faults.max_extra_delay = 1 + static_cast<Round>(rng.below(4));
    if (cfg % 3 == 0)
      sc.faults.omission_senders = {
          static_cast<ProcId>(rng.below(sc.env.n))};
    if (cfg % 4 == 1) {
      ChurnSpec ch;
      ch.process = static_cast<ProcId>(rng.below(sc.env.n));
      ch.leave = 2 + static_cast<Round>(rng.below(4));
      ch.rejoin = (cfg % 8 == 1) ? 0 : ch.leave + 1 +
                                       static_cast<Round>(rng.below(8));
      sc.faults.churn.push_back(ch);
    }
    ASSERT_TRUE(sc.faults.active()) << "cfg " << cfg;
    check_thread_invariance(sc, "fault cfg " + std::to_string(cfg));
    ++faulted;
  }
  EXPECT_EQ(faulted, 12u);
}

TEST(FaultedEquivalence, DirectedFaultMixStraddlesShardBoundaries) {
  // Every fault type at once on an otherwise fully uniform environment
  // (GST = 0): an active plan forces the exact per-link path, and losses /
  // delayed duplicates / churn windows all cross shard boundaries at 8
  // shards over n = 12.
  Scenario sc;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 12;
  sc.env.seed = 4242;
  sc.env.stabilization = 0;
  sc.crashes.crash_at(4, 6);  // crash relay + faults interact
  sc.initial = random_values(sc.env.n, 11, 100, 102);
  sc.net.seed = 4242;
  sc.net.max_rounds = 800;
  sc.net.record_deliveries = true;
  sc.faults.loss_prob = 0.15;
  sc.faults.dup_prob = 0.2;
  sc.faults.dup_extra_delay = 2;
  sc.faults.reorder_prob = 0.2;
  sc.faults.max_extra_delay = 3;
  sc.faults.omission_senders = {3};
  sc.faults.churn.push_back({7, 4, 10});
  sc.faults.churn.push_back({1, 6, 0});  // leaves and never returns
  check_thread_invariance(sc, "directed fault mix");
}

TEST(FaultSafety, AgreementAndValidityHoldUnderAnySeededFaultPlan) {
  // The safety contract: with the planned source exempt (the default),
  // agreement and validity must hold under ANY fault intensity, on both
  // backends — only termination may degrade (bounded here by a watchdog,
  // never by an abort).
  for (std::uint64_t i = 0; i < 20; ++i) {
    Rng rng(0xab5afe + i * 613);
    ConsensusConfig cfg;
    const ConsensusAlgo algo =
        (i % 2 == 0) ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    cfg.env.kind = (i % 2 == 0) ? EnvKind::kES : EnvKind::kESS;
    cfg.env.n = 3 + static_cast<std::size_t>(rng.below(10));
    cfg.env.seed = rng.below(1u << 30);
    cfg.env.stabilization = static_cast<Round>(rng.below(5));
    cfg.initial = random_values(cfg.env.n, cfg.env.seed + 3, 100, 104);
    cfg.net.seed = cfg.env.seed;
    cfg.net.max_rounds = 1500;
    cfg.watchdog_rounds = 300;
    cfg.validate_env = false;  // the cohort backend records no trace
    cfg.backend = (i % 3 == 0) ? ConsensusBackend::kCohort
                               : ConsensusBackend::kExpanded;
    cfg.faults.loss_prob = 0.5 * rng.real();  // up to heavy loss
    cfg.faults.dup_prob = 0.4 * rng.real();
    cfg.faults.reorder_prob = 0.4 * rng.real();
    cfg.faults.max_extra_delay = 1 + static_cast<Round>(rng.below(5));
    if (i % 4 == 2)
      cfg.faults.omission_senders = {
          static_cast<ProcId>(rng.below(cfg.env.n))};
    if (i % 5 == 3)
      cfg.faults.churn.push_back(
          {static_cast<ProcId>(rng.below(cfg.env.n)),
           1 + static_cast<Round>(rng.below(6)), 0});
    const ConsensusReport rep = run_consensus(algo, cfg);
    EXPECT_TRUE(rep.agreement) << "i=" << i << " " << rep.to_string();
    EXPECT_TRUE(rep.validity) << "i=" << i << " " << rep.to_string();
  }
}

TEST(FaultWatchdog, TotalLossSplitsIntoSoloDecisions) {
  // exempt_source = false and loss_prob = 1: nobody ever hears anyone
  // else.  Under anonymity total isolation is indistinguishable from
  // n = 1, so every process decides *its own* value within a few rounds —
  // the run terminates, but agreement is gone.  (This is why a starving
  // run cannot be built from isolation alone: see the stalled-run test.)
  for (const ConsensusBackend backend :
       {ConsensusBackend::kExpanded, ConsensusBackend::kCohort}) {
    ConsensusConfig cfg;
    cfg.env.kind = EnvKind::kES;
    cfg.env.n = 4;
    cfg.env.seed = 9;
    cfg.initial = distinct_values(cfg.env.n);
    cfg.net.seed = 9;
    cfg.net.max_rounds = 5000;
    cfg.backend = backend;
    cfg.validate_env = false;
    cfg.faults.loss_prob = 1.0;
    cfg.faults.exempt_source = false;
    const ConsensusReport rep = run_consensus(ConsensusAlgo::kEs, cfg);
    EXPECT_TRUE(rep.all_correct_decided) << to_string(backend);
    EXPECT_FALSE(rep.agreement) << to_string(backend);  // distinct solos
    EXPECT_TRUE(rep.validity) << to_string(backend);
    EXPECT_FALSE(rep.undecided) << to_string(backend);
    EXPECT_LT(rep.last_decision_round, 10u) << to_string(backend);
    EXPECT_GT(rep.fault_drops, 0u) << to_string(backend);
  }
}

// The directed stalled run: at this (seed, fault mix) the free run's last
// straggler needs until round 378 to decide (loss + stale duplicates keep
// resurrecting conflicting values into its PROPOSED), with a > 40-round
// gap after the previous decision at round 46.  Pinned by probing; both
// engines compute identical fates, so the numbers below are exact.
ConsensusConfig stalled_run_config() {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 8;
  cfg.env.seed = 11;
  cfg.env.stabilization = 6;
  cfg.initial = distinct_values(cfg.env.n);
  cfg.net.seed = 11;
  cfg.net.max_rounds = 6000;
  cfg.validate_env = false;
  cfg.faults.loss_prob = 0.3;
  cfg.faults.dup_prob = 0.3;
  cfg.faults.dup_extra_delay = 3;
  cfg.faults.reorder_prob = 0.4;
  cfg.faults.max_extra_delay = 4;
  cfg.faults.omission_senders = {0};
  cfg.faults.churn.push_back({1, 3, 30});
  cfg.faults.exempt_source = false;
  return cfg;
}

TEST(FaultWatchdog, StalledRunEndsUndecidedInsteadOfSpinning) {
  // The watchdog is a patience bound: no new decision for 40 rounds ends
  // the run with a graceful `undecided` on both backends, hundreds of
  // rounds before the straggler would have decided (or max_rounds hit).
  for (const ConsensusBackend backend :
       {ConsensusBackend::kExpanded, ConsensusBackend::kCohort}) {
    ConsensusConfig cfg = stalled_run_config();
    cfg.watchdog_rounds = 40;
    cfg.backend = backend;
    const ConsensusReport rep = run_consensus(ConsensusAlgo::kEs, cfg);
    EXPECT_TRUE(rep.undecided) << to_string(backend);
    EXPECT_FALSE(rep.all_correct_decided) << to_string(backend);
    EXPECT_FALSE(rep.hit_round_limit) << to_string(backend);
    EXPECT_LT(rep.rounds_executed, 120u) << to_string(backend);
    EXPECT_TRUE(rep.validity) << to_string(backend);
    EXPECT_GT(rep.fault_drops, 0u) << to_string(backend);
    EXPECT_GT(rep.fault_dups, 0u) << to_string(backend);
  }
}

TEST(FaultWatchdog, OffByDefaultStillRunsToTheRoundLimit) {
  // watchdog_rounds = 0 keeps the old contract: the same stalled run
  // exhausts a small max_rounds and reports hit_round_limit, not
  // undecided — and given room, it eventually decides everywhere.
  ConsensusConfig cfg = stalled_run_config();
  cfg.net.max_rounds = 120;
  const ConsensusReport rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_FALSE(rep.undecided);
  EXPECT_TRUE(rep.hit_round_limit);
  EXPECT_FALSE(rep.all_correct_decided);

  ConsensusConfig free_cfg = stalled_run_config();
  const ConsensusReport free_rep = run_consensus(ConsensusAlgo::kEs, free_cfg);
  EXPECT_TRUE(free_rep.all_correct_decided);
  EXPECT_EQ(free_rep.last_decision_round, 378u);
  EXPECT_FALSE(free_rep.undecided);
}

TEST(ShardedEngine, ShardCountClampsToProcessCount) {
  Scenario sc;
  sc.env.kind = EnvKind::kES;
  sc.env.n = 3;
  sc.env.seed = 1;
  sc.initial = distinct_values(sc.env.n);
  sc.net.max_rounds = 200;
  const EnvDelayModel delays(sc.env, sc.crashes);
  std::size_t shards = 0;
  const Observed serial = run_once(sc, delays, 1, 0, &shards);
  ASSERT_EQ(shards, 1u);
  const Observed sharded = run_once(sc, delays, 16, 16, &shards);
  EXPECT_EQ(shards, 3u);  // min(16, n)
  expect_equal(serial, sharded, "n=3 with 16 requested shards");
}

}  // namespace
}  // namespace anon
