// Algorithm 5 — MS emulated from a weak-set (Theorem 4).  The emitted
// traces have genuinely unsynchronized rounds (per-process skew) and are
// machine-certified MS by the environment validator.
#include "emul/ms_emulation.hpp"

#include <gtest/gtest.h>

#include "algo/es_consensus.hpp"
#include "env/validate.hpp"
#include "algo/runner.hpp"

namespace anon {
namespace {

// A trivial inner automaton (the emulation is agnostic to it).
class Echo final : public Automaton<ValueSet> {
 public:
  explicit Echo(std::int64_t seed) : seed_(seed) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k))
      out.insert(m.begin(), m.end());
    return out;
  }
  std::int64_t seed_;
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> echoes(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<Echo>(static_cast<std::int64_t>(i)));
  return autos;
}

std::vector<ProcId> all_of(std::size_t n) {
  std::vector<ProcId> v(n);
  for (ProcId p = 0; p < n; ++p) v[p] = p;
  return v;
}

class EmulationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmulationSweep, EmulatedTraceIsCertifiedMs) {
  MsEmulationOptions opt;
  opt.seed = GetParam();
  MsEmulation<ValueSet> emu(echoes(4), opt);
  ASSERT_TRUE(emu.run_until_round(40));
  auto res = check_environment(emu.trace(), 4, all_of(4));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  EXPECT_GE(res.checked_rounds, 39u);
}

TEST_P(EmulationSweep, SkewedProcessesStillYieldMs) {
  // One process 10x slower: rounds are heavily unsynchronized — exactly
  // the regime the lock-step engine cannot express.  MS must still hold.
  MsEmulationOptions opt;
  opt.seed = GetParam() ^ 0x5e11;
  opt.skew = {1, 10, 1, 2};
  MsEmulation<ValueSet> emu(echoes(4), opt);
  ASSERT_TRUE(emu.run_until_round(25));
  auto res = check_environment(emu.trace(), 4, all_of(4));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
  // The skewed process really did lag behind the fast ones at some point:
  // round counts differ along the way, so deliveries exist with
  // receiver_round != msg_round.
  bool lag_seen = false;
  for (const auto& d : emu.trace().deliveries())
    if (d.receiver_round > d.msg_round) lag_seen = true;
  EXPECT_TRUE(lag_seen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmulationSweep,
                         ::testing::Values(1, 3, 17, 99, 2024));

TEST(MsEmulation, IdenticalProcessesMergeElements) {
  // Fully symmetric inner automatons produce identical ⟨m, k⟩ elements;
  // the weak-set (a set!) merges them — anonymity at the emulation level.
  MsEmulationOptions opt;
  opt.seed = 5;
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (int i = 0; i < 3; ++i) autos.push_back(std::make_unique<Echo>(7));
  MsEmulation<ValueSet> emu(std::move(autos), opt);
  ASSERT_TRUE(emu.run_until_round(10));
  // One element per round (all three processes add the same pair) — at
  // most as many elements as the furthest process's round count.
  Round max_round = 0;
  for (ProcId p = 0; p < 3; ++p) max_round = std::max(max_round, emu.round(p));
  EXPECT_LE(emu.weak_set_size(), max_round);
}

TEST(MsEmulation, RoundsProgressForEveryProcess) {
  MsEmulationOptions opt;
  opt.seed = 8;
  MsEmulation<ValueSet> emu(echoes(5), opt);
  ASSERT_TRUE(emu.run_until_round(15));
  for (ProcId p = 0; p < 5; ++p) EXPECT_GE(emu.round(p), 15u);
}

TEST(MsEmulation, ConsensusOverEmulatedMsStaysSafe) {
  // Algorithm 2 on top of Algorithm 5's emulated MS: the FLP corollary
  // says termination cannot be guaranteed, but safety must hold whenever
  // decisions happen.  With random benign timing decisions usually do
  // happen — we assert agreement/validity, not termination.
  MsEmulationOptions opt;
  opt.seed = 77;
  opt.skew = {1, 3, 1, 6};
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (auto v : distinct_values(4))
    autos.push_back(std::make_unique<EsConsensus>(v));
  MsEmulation<EsMessage> emu(std::move(autos), opt);
  emu.run_until_round(300);
  std::optional<Value> decided;
  for (ProcId p = 0; p < 4; ++p) {
    auto d = emu.process(p).decision();
    if (!d) continue;
    if (decided) {
      EXPECT_EQ(*decided, *d);  // agreement
    }
    decided = d;
    bool valid = false;
    for (auto v : distinct_values(4)) {
      if (v == *d) valid = true;
    }
    EXPECT_TRUE(valid);  // validity
  }
  auto res = check_environment(emu.trace(), 4, all_of(4));
  EXPECT_TRUE(res.ms_ok) << res.to_string();
}

}  // namespace
}  // namespace anon
