// Experiment-support utilities (tables, stats) and runner plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "algo/runner.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace anon {
namespace {

TEST(Aggregate, BasicStats) {
  auto s = aggregate({3, 1, 2});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 3);
  EXPECT_DOUBLE_EQ(s.mean, 2);
  EXPECT_DOUBLE_EQ(s.p50, 2);
}

TEST(Aggregate, EmptyIsZeroed) {
  auto s = aggregate({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Aggregate, ToStringFormat) {
  auto s = aggregate({1, 2});
  EXPECT_EQ(s.to_string(), "1.5 [1.0..2.0]");
}

TEST(ExperimentSeeds, DeterministicAndDistinct) {
  auto a = experiment_seeds(5);
  auto b = experiment_seeds(5);
  EXPECT_EQ(a, b);
  std::set<std::uint64_t> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(TablePrint, AlignsAndContainsCells) {
  Table t("title", {"col1", "longer column"});
  t.add_row({"a", "b"});
  t.add_row({"cccc", "d"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("longer column"), std::string::npos);
  EXPECT_NE(out.find("cccc"), std::string::npos);
}

TEST(TablePrint, RowWidthMismatchRejected) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(TableNum, Formats) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(1.5, 1), "1.5");
  EXPECT_EQ(Table::ratio(2.0), "2.00x");
}

// --- runner helpers ---

TEST(RunnerHelpers, DistinctAndIdenticalValues) {
  auto d = distinct_values(3);
  EXPECT_EQ(d, (std::vector<Value>{Value(100), Value(101), Value(102)}));
  auto i = identical_values(2, 9);
  EXPECT_EQ(i, (std::vector<Value>{Value(9), Value(9)}));
}

TEST(RunnerHelpers, RandomValuesInRangeAndDeterministic) {
  auto a = random_values(20, 7, -5, 5);
  auto b = random_values(20, 7, -5, 5);
  EXPECT_EQ(a, b);
  for (const Value& v : a) {
    EXPECT_GE(v.get(), -5);
    EXPECT_LE(v.get(), 5);
  }
}

TEST(RunnerHelpers, RandomCrashesRespectBounds) {
  auto plan = random_crashes(6, 3, 10, 42);
  EXPECT_EQ(plan.crash_count(), 3u);
  EXPECT_EQ(plan.correct(6).size(), 3u);
  for (ProcId p = 0; p < 6; ++p) {
    if (!plan.ever_crashes(p)) continue;
    EXPECT_GE(plan.crash_round(p), 1u);
    EXPECT_LE(plan.crash_round(p), 10u);
  }
  EXPECT_THROW(random_crashes(3, 3, 5, 1), CheckFailure);  // nobody left
}

TEST(RunnerReport, ToStringMentionsOutcome) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 2;
  cfg.env.seed = 4;
  cfg.initial = distinct_values(2);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  const std::string s = rep.to_string();
  EXPECT_NE(s.find("decided=all"), std::string::npos);
  EXPECT_NE(s.find("agreement=ok"), std::string::npos);
}

TEST(RunnerReport, AlgoNames) {
  EXPECT_STREQ(to_string(ConsensusAlgo::kEs), "ES/Alg2");
  EXPECT_STREQ(to_string(ConsensusAlgo::kEss), "ESS/Alg3");
  EXPECT_STREQ(to_string(EnvKind::kMS), "MS");
  EXPECT_STREQ(to_string(EnvKind::kES), "ES");
  EXPECT_STREQ(to_string(EnvKind::kESS), "ESS");
}

}  // namespace
}  // namespace anon
