// Cross-module integration and reproducibility properties — driven through
// the one scenario surface (ScenarioSpec → ScenarioRegistry → report),
// which is how every bench, example and the anonsim CLI run these stacks.
#include <gtest/gtest.h>

#include "algo/runner.hpp"
#include "scenario/registry.hpp"

namespace anon {
namespace {

ScenarioReport run(const ScenarioSpec& spec) {
  return ScenarioRegistry::instance().run(spec);
}

TEST(Determinism, IdenticalSpecsGiveIdenticalRuns) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {20260612};
  spec.env_kind = EnvKind::kESS;
  spec.n = 7;
  spec.stabilization = 9;
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  for (const Value& v : random_values(7, 5, -20, 20))
    spec.initial.values.push_back(v.get());
  spec.crashes.kind = CrashGenSpec::Kind::kRandom;
  spec.crashes.count = 2;
  spec.crashes.horizon = 8;
  spec.consensus.algo = ConsensusAlgo::kEss;

  const auto a = run(spec);
  const auto b = run(spec);
  // The whole deterministic report — decisions, rounds, every transport
  // metric — must be byte-identical.
  EXPECT_EQ(a.to_json_string(false), b.to_json_string(false));
}

TEST(Determinism, DifferentSeedsDiffer) {
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {1, 2, 3, 4, 5};
  spec.env_kind = EnvKind::kES;
  spec.n = 6;
  spec.stabilization = 20;
  spec.timely_prob = 0.3;
  spec.consensus.algo = ConsensusAlgo::kEs;

  // Not guaranteed for every pair, but across several seeds at least one
  // metric must differ — otherwise the seed plumbing is broken.
  const auto report = run(spec);
  const auto& base = report.consensus_cells[0].report;
  bool any_diff = false;
  for (std::size_t i = 1; i < report.consensus_cells.size(); ++i) {
    const auto& r = report.consensus_cells[i].report;
    if (r.deliveries != base.deliveries ||
        r.last_decision_round != base.last_decision_round)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Integration, EnvKindsFormAStrictnessHierarchyOnTraces) {
  // An ES-generated trace (GST=0) is also a valid ESS witness and MS run;
  // an MS-generated trace generally has neither ES nor early ESS witness.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {3};
  spec.env_kind = EnvKind::kES;
  spec.n = 4;
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.record_deliveries = true;
  spec.consensus.validate_env = true;

  const auto report = run(spec);
  const auto& check = report.consensus_cells[0].report.env_check;
  EXPECT_TRUE(check.ms_ok);
  ASSERT_TRUE(check.es_from.has_value());
  EXPECT_TRUE(check.ess_from.has_value());
  EXPECT_EQ(*check.es_from, 1u);
}

TEST(Integration, WeakSetValuesFlowIntoRegisterSemantics) {
  // The Prop-1 register and the raw weak-set share Algorithm 4: a raw add
  // of an encoded element is indistinguishable from a write — sanity-check
  // the layering by decoding what the register wrote.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kWeakset;
  spec.seeds = {12};
  spec.env_kind = EnvKind::kMS;
  spec.n = 3;
  spec.weakset.mode = WeaksetSpecSection::Mode::kRegister;
  spec.weakset.script = {{2, 0, true, 5}, {25, 1, false, 0}};
  spec.weakset.extra_rounds = 60;
  spec.weakset.keep_records = true;

  const auto report = run(spec);
  const auto& cell = report.weakset_cells[0];
  ASSERT_TRUE(cell.spec_ok) << cell.violation;
  ASSERT_EQ(cell.reg_records.size(), 2u);
  EXPECT_EQ(cell.reg_records[1].value, Value(5));
}

TEST(Integration, EmulatedMsRunsTheRealWeakSetAutomaton) {
  // weak-set → MS (Alg 5) → weak-set (Alg 4): the closing of the loop.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kEmulation;
  spec.seeds = {4};
  spec.env_kind = EnvKind::kMS;
  spec.n = 3;
  spec.emulation.inner = EmulationSpecSection::Inner::kWeakset;
  spec.emulation.rounds = 30;
  spec.emulation.adds = {{1, 77}};

  const auto report = run(spec);
  const auto& cell = report.emulation_cells[0];
  ASSERT_TRUE(cell.ran);
  EXPECT_TRUE(cell.adds_completed);  // the add completed over emulated rounds
  EXPECT_TRUE(cell.all_see);         // ...and every process sees the value
  EXPECT_TRUE(cell.ms_certified);
}

TEST(Integration, MemoryHygieneUnderLongRuns) {
  // The windowed inbox (giraf/inbox.hpp) bounds per-process inbox state
  // to the {k-1, k, k+1} slots even over long runs (the algorithms never
  // reread closed rounds).
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {6};
  spec.env_kind = EnvKind::kES;
  spec.n = 4;
  spec.stabilization = 500;  // long pre-GST phase
  spec.consensus.algo = ConsensusAlgo::kEs;

  const auto report = run(spec);
  const auto& rep = report.consensus_cells[0].report;
  EXPECT_TRUE(rep.all_correct_decided);
  EXPECT_TRUE(rep.agreement);
}

}  // namespace
}  // namespace anon
