// Cross-module integration and reproducibility properties.
#include <gtest/gtest.h>

#include "algo/runner.hpp"
#include "emul/ms_emulation.hpp"
#include "env/validate.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [] {
    ConsensusConfig cfg;
    cfg.env.kind = EnvKind::kESS;
    cfg.env.n = 7;
    cfg.env.seed = 20260612;
    cfg.env.stabilization = 9;
    cfg.initial = random_values(7, 5, -20, 20);
    cfg.crashes = random_crashes(7, 2, 8, 99);
    return run_consensus(ConsensusAlgo::kEss, cfg);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.last_decision_round, b.last_decision_round);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto run_once = [](std::uint64_t seed) {
    ConsensusConfig cfg;
    cfg.env.kind = EnvKind::kES;
    cfg.env.n = 6;
    cfg.env.seed = seed;
    cfg.env.stabilization = 20;
    cfg.env.timely_prob = 0.3;
    cfg.initial = distinct_values(6);
    return run_consensus(ConsensusAlgo::kEs, cfg);
  };
  // Not guaranteed for every pair, but across several seeds at least one
  // metric must differ — otherwise the seed plumbing is broken.
  auto base = run_once(1);
  bool any_diff = false;
  for (std::uint64_t s : {2u, 3u, 4u, 5u}) {
    auto r = run_once(s);
    if (r.deliveries != base.deliveries ||
        r.last_decision_round != base.last_decision_round)
      any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Integration, EnvKindsFormAStrictnessHierarchyOnTraces) {
  // An ES-generated trace (GST=0) is also a valid ESS witness and MS run;
  // an MS-generated trace generally has neither ES nor early ESS witness.
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 4;
  cfg.env.seed = 3;
  cfg.env.stabilization = 0;
  cfg.initial = distinct_values(4);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.env_check.ms_ok);
  ASSERT_TRUE(rep.env_check.es_from.has_value());
  EXPECT_TRUE(rep.env_check.ess_from.has_value());
  EXPECT_EQ(*rep.env_check.es_from, 1u);
}

TEST(Integration, WeakSetValuesFlowIntoRegisterSemantics) {
  // The Prop-1 register and the raw weak-set share Algorithm 4: a raw add
  // of an encoded element is indistinguishable from a write — sanity-check
  // the layering by decoding what the register wrote.
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 3;
  env.seed = 12;
  std::vector<RegScriptOp> script{{2, 0, true, Value(5)},
                                  {25, 1, false, Value()}};
  auto run = run_register_over_ms(env, CrashPlan{}, script, 60);
  ASSERT_TRUE(run.check.ok);
  ASSERT_EQ(run.records.size(), 2u);
  EXPECT_EQ(run.records[1].value, Value(5));
}

TEST(Integration, EmulatedMsRunsTheRealWeakSetAutomaton) {
  // weak-set → MS (Alg 5) → weak-set (Alg 4): the closing of the loop.
  MsEmulationOptions opt;
  opt.seed = 4;
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (int i = 0; i < 3; ++i)
    autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  MsEmulation<ValueSet> emu(std::move(autos), opt);
  auto& w = dynamic_cast<MsWeakSetAutomaton&>(
      const_cast<GirafProcess<ValueSet>&>(emu.process(1)).automaton());
  w.start_add(Value(77));
  ASSERT_TRUE(emu.run_until_round(30));
  EXPECT_FALSE(w.add_blocked());  // the add completed over emulated rounds
  for (ProcId p = 0; p < 3; ++p) {
    const auto& a = dynamic_cast<const MsWeakSetAutomaton&>(
        emu.process(p).automaton());
    EXPECT_EQ(a.get().count(Value(77)), 1u) << "process " << p;
  }
  std::vector<ProcId> correct{0, 1, 2};
  EXPECT_TRUE(check_environment(emu.trace(), 3, correct).ms_ok);
}

TEST(Integration, MemoryHygieneUnderLongRuns) {
  // The windowed inbox (giraf/inbox.hpp) bounds per-process inbox state
  // to the {k-1, k, k+1} slots even over long runs (the algorithms never
  // reread closed rounds).
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = 4;
  cfg.env.seed = 6;
  cfg.env.stabilization = 500;  // long pre-GST phase
  cfg.initial = distinct_values(4);
  cfg.net.record_deliveries = false;
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.all_correct_decided);
  EXPECT_TRUE(rep.agreement);
}

}  // namespace
}  // namespace anon
