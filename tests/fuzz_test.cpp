// Randomized (seeded, reproducible) property sweeps across the whole
// stack: codecs must never crash or mis-round-trip, random weak-set /
// register workloads must satisfy their specs, random consensus
// configurations must keep safety — hundreds of generated scenarios per
// run, all deterministic.
#include <gtest/gtest.h>

#include "algo/runner.hpp"
#include "common/rng.hpp"
#include "runtime/codec.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, EsCodecRoundTripsRandomMessages) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    EsMessage m;
    const std::size_t k = rng.below(12);
    for (std::size_t i = 0; i < k; ++i)
      m.insert(Value(rng.range(-1000000, 1000000)));
    if (rng.chance(0.3)) m.insert(Value::Bottom());
    auto back = decode_es_message(encode_es_message(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
}

TEST_P(FuzzSweep, EssCodecRoundTripsRandomMessages) {
  Rng rng(GetParam() ^ 0xe55);
  HistoryArena tx, rx;
  for (int iter = 0; iter < 100; ++iter) {
    EssMessage m;
    const std::size_t k = rng.below(5);
    for (std::size_t i = 0; i < k; ++i) m.proposed.insert(Value(rng.range(0, 50)));
    History h;
    const std::size_t len = 1 + rng.below(20);
    for (std::size_t i = 0; i < len; ++i)
      h = tx.append(h, Value(rng.range(0, 5)));
    m.history = h;
    const std::size_t nc = rng.below(6);
    for (std::size_t i = 0; i < nc; ++i)
      m.counters.set(h.prefix(1 + static_cast<std::uint32_t>(
                         rng.below(h.length()))),
                     1 + rng.below(100));
    auto back = decode_ess_message(encode_ess_message(m), &rx);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->proposed, m.proposed);
    EXPECT_EQ(back->history.values(), m.history.values());
    EXPECT_EQ(back->counters.size(), m.counters.size());
  }
}

TEST_P(FuzzSweep, DecodersSurviveRandomBytes) {
  // Defensive decoding: arbitrary garbage must yield nullopt, never UB or
  // a throw.
  Rng rng(GetParam() ^ 0xbad);
  HistoryArena rx;
  for (int iter = 0; iter < 500; ++iter) {
    Bytes junk;
    const std::size_t len = rng.below(64);
    for (std::size_t i = 0; i < len; ++i)
      junk.push_back(static_cast<std::uint8_t>(rng.below(256)));
    (void)decode_es_message(junk);
    (void)decode_ess_message(junk, &rx);
  }
  SUCCEED();
}

TEST_P(FuzzSweep, DecodersSurviveTruncatedValidMessages) {
  Rng rng(GetParam() ^ 0x7a1);
  HistoryArena tx, rx;
  History h = tx.of({Value(1), Value(2), Value(3)});
  CounterMap c;
  c.set(h, 5);
  EssMessage m{ValueSet{Value(7)}, h, c};
  const Bytes full = encode_ess_message(m);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_ess_message(truncated, &rx).has_value());
  }
}

TEST_P(FuzzSweep, RandomWeakSetWorkloadsMeetTheSpec) {
  Rng rng(GetParam() * 13 + 5);
  const std::size_t n = 2 + rng.below(6);
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = n;
  env.seed = rng.next_u64();
  env.timely_prob = rng.real() * 0.6;
  CrashPlan crashes;
  const std::size_t f = rng.below(n);  // up to n-1 crashes
  for (std::size_t i = 0; i < f; ++i)
    crashes.crash_at(n - 1 - i, 1 + rng.below(25));
  std::vector<WsScriptOp> script;
  const int ops = 6 + static_cast<int>(rng.below(20));
  for (int i = 0; i < ops; ++i) {
    script.push_back({1 + rng.below(40), rng.below(n), rng.chance(0.5),
                      Value(rng.range(0, 30))});
  }
  auto run = run_ms_weak_set(env, crashes, script);
  auto check = check_weak_set_spec(run.records);
  EXPECT_TRUE(check.ok) << check.violation;
  EXPECT_TRUE(run.all_adds_completed);
}

TEST_P(FuzzSweep, RandomRegisterWorkloadsStayRegular) {
  Rng rng(GetParam() * 29 + 3);
  const std::size_t n = 3 + rng.below(4);
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = n;
  env.seed = rng.next_u64();
  CrashPlan crashes;
  if (rng.chance(0.5)) crashes.crash_at(n - 1, 1 + rng.below(20));
  std::vector<RegScriptOp> script;
  const int ops = 6 + static_cast<int>(rng.below(14));
  for (int i = 0; i < ops; ++i) {
    script.push_back({1 + rng.below(60), rng.below(n), rng.chance(0.4),
                      Value(rng.range(0, 100))});
  }
  auto run = run_register_over_ms(env, crashes, script);
  EXPECT_TRUE(run.check.ok) << run.check.violation;
}

TEST_P(FuzzSweep, RandomConsensusConfigsKeepSafety) {
  Rng rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 3; ++iter) {
    ConsensusConfig cfg;
    cfg.env.kind = rng.chance(0.5) ? EnvKind::kES : EnvKind::kESS;
    cfg.env.n = 2 + rng.below(10);
    cfg.env.seed = rng.next_u64();
    cfg.env.stabilization = rng.below(30);
    cfg.env.timely_prob = rng.real();
    cfg.env.max_delay = 1 + rng.below(5);
    cfg.initial = random_values(cfg.env.n, rng.next_u64(), -9, 9);
    const std::size_t f = rng.below(cfg.env.n);
    if (f > 0)
      cfg.crashes = random_crashes(cfg.env.n, f, 1 + rng.below(20),
                                   rng.next_u64());
    cfg.net.max_rounds = 30000;
    cfg.net.record_deliveries = false;
    cfg.validate_env = false;
    const auto algo =
        cfg.env.kind == EnvKind::kES ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    auto rep = run_consensus(algo, cfg);
    EXPECT_TRUE(rep.agreement) << rep.to_string();
    EXPECT_TRUE(rep.validity) << rep.to_string();
    EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  }
}

TEST_P(FuzzSweep, RandomFaultPlansKeepSafetyAndNeverAbort) {
  // Mutated fault plans over random environments: with the planned source
  // exempt (the default), agreement and validity must survive ANY plan the
  // mutator produces, runs must end (watchdog) instead of spinning, and
  // nothing may CHECK-abort — overflow and starvation degrade to counted
  // drops and `undecided`.
  Rng rng(GetParam() * 37 + 11);
  for (int iter = 0; iter < 3; ++iter) {
    ConsensusConfig cfg;
    cfg.env.kind = rng.chance(0.5) ? EnvKind::kES : EnvKind::kESS;
    cfg.env.n = 2 + rng.below(10);
    cfg.env.seed = rng.next_u64();
    cfg.env.stabilization = rng.below(12);
    cfg.env.timely_prob = rng.real();
    cfg.env.max_delay = 1 + rng.below(4);
    cfg.initial = random_values(cfg.env.n, rng.next_u64(), -9, 9);
    const std::size_t f = rng.below(cfg.env.n);
    if (f > 0)
      cfg.crashes = random_crashes(cfg.env.n, f, 1 + rng.below(12),
                                   rng.next_u64());
    cfg.net.max_rounds = 4000;
    cfg.watchdog_rounds = 400;
    cfg.net.record_deliveries = false;
    cfg.validate_env = false;  // the cohort backend records no trace
    // The mutator: each fault dimension flips on independently, sometimes
    // at hostile intensity.
    cfg.faults.seed = rng.chance(0.5) ? rng.next_u64() : 0;
    if (rng.chance(0.6)) cfg.faults.loss_prob = rng.real() * 0.6;
    if (rng.chance(0.5)) cfg.faults.dup_prob = rng.real() * 0.5;
    cfg.faults.dup_extra_delay = 1 + rng.below(4);
    if (rng.chance(0.5)) cfg.faults.reorder_prob = rng.real() * 0.5;
    cfg.faults.max_extra_delay = 1 + rng.below(6);
    if (rng.chance(0.3))
      cfg.faults.omission_senders.push_back(rng.below(cfg.env.n));
    if (rng.chance(0.3)) {
      ChurnSpec ch;
      ch.process = static_cast<ProcId>(rng.below(cfg.env.n));
      ch.leave = 1 + static_cast<Round>(rng.below(10));
      ch.rejoin = rng.chance(0.5)
                      ? 0
                      : ch.leave + 1 + static_cast<Round>(rng.below(10));
      cfg.faults.churn.push_back(ch);
    }
    if (rng.chance(0.25)) cfg.backend = ConsensusBackend::kCohort;
    const auto algo =
        cfg.env.kind == EnvKind::kES ? ConsensusAlgo::kEs : ConsensusAlgo::kEss;
    auto rep = run_consensus(algo, cfg);
    EXPECT_TRUE(rep.agreement) << rep.to_string();
    EXPECT_TRUE(rep.validity) << rep.to_string();
    // Liveness is allowed to degrade, but only gracefully: a run that did
    // not decide must have been stopped by the watchdog, not the limit.
    if (!rep.all_correct_decided) {
      EXPECT_TRUE(rep.undecided || rep.hit_round_limit) << rep.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace anon
