// Digest-chain history compression (extension; §4.1 unbounded-space note).
#include "algo/compressed_history.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

class CodecTest : public ::testing::Test {
 protected:
  HistoryArena sender_arena;
  HistoryArena receiver_arena;
};

TEST_F(CodecTest, IncrementRoundTripFromSingleton) {
  HistoryDecoder dec(&receiver_arena);
  History h = sender_arena.singleton(Value(5));
  auto got = dec.decode_increment(encode_increment(h));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->values(), h.values());
}

TEST_F(CodecTest, ChainDecodesIncrementally) {
  HistoryDecoder dec(&receiver_arena);
  History h = sender_arena.singleton(Value(1));
  ASSERT_TRUE(dec.decode_increment(encode_increment(h)).has_value());
  for (int i = 0; i < 50; ++i) {
    h = sender_arena.append(h, Value(i % 4));
    auto got = dec.decode_increment(encode_increment(h));
    ASSERT_TRUE(got.has_value()) << "at length " << h.length();
    EXPECT_EQ(got->values(), h.values());
  }
}

TEST_F(CodecTest, GapForcesFullEncoding) {
  HistoryDecoder dec(&receiver_arena);
  History h = sender_arena.of({Value(1), Value(2), Value(3)});
  // Receiver never saw the prefix: increment decode fails…
  EXPECT_FALSE(dec.decode_increment(encode_increment(h)).has_value());
  // …full decode recovers and registers all prefixes.
  History full = dec.decode_full(encode_full(h));
  EXPECT_EQ(full.values(), h.values());
  // Now increments work again.
  History h2 = sender_arena.append(h, Value(4));
  EXPECT_TRUE(dec.decode_increment(encode_increment(h2)).has_value());
}

TEST_F(CodecTest, PrefixRelationSurvivesDecoding) {
  HistoryDecoder dec(&receiver_arena);
  History a = sender_arena.of({Value(1), Value(2)});
  History b = sender_arena.of({Value(1), Value(2), Value(3)});
  History da = dec.decode_full(encode_full(a));
  History db = dec.decode_full(encode_full(b));
  EXPECT_TRUE(da.is_prefix_of(db));
  EXPECT_FALSE(db.is_prefix_of(da));
}

TEST_F(CodecTest, CorruptedIncrementRejected) {
  HistoryDecoder dec(&receiver_arena);
  History h = sender_arena.singleton(Value(1));
  dec.decode_increment(encode_increment(h));
  History h2 = sender_arena.append(h, Value(2));
  WireHistory w = encode_increment(h2);
  w.digest ^= 0xdeadbeef;  // corrupt
  EXPECT_FALSE(dec.decode_increment(w).has_value());
  WireHistory w2 = encode_increment(h2);
  w2.length = 5;  // inconsistent length
  EXPECT_FALSE(dec.decode_increment(w2).has_value());
}

TEST_F(CodecTest, DecoderTableGrowsLinearly) {
  HistoryDecoder dec(&receiver_arena);
  History h = sender_arena.singleton(Value(0));
  dec.decode_increment(encode_increment(h));
  for (int i = 0; i < 100; ++i) {
    h = sender_arena.append(h, Value(1));
    dec.decode_increment(encode_increment(h));
  }
  EXPECT_EQ(dec.table_size(), 101u);
}

TEST(CompressedSize, ConstantPerRoundVsLinear) {
  // The uncompressed Algorithm 3 message ships the whole history; the
  // digest-chain encoding ships O(1) plus the counter entries.
  const std::size_t compressed = compressed_wire_size(2, 10);
  EXPECT_LT(compressed, 400u);
  // Independent of history length by construction — no length parameter.
}

}  // namespace
}  // namespace anon
