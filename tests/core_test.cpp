// The shared simulation core: ring-buffer calendar and parallel sweep.
#include "core/calendar.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "baseline/async_net.hpp"
#include "core/sweep.hpp"

namespace anon {
namespace {

TEST(RoundCalendar, StartsEmpty) {
  RoundCalendar<int> cal;
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  EXPECT_EQ(cal.base(), 0u);
  EXPECT_FALSE(cal.next_key().has_value());
}

TEST(RoundCalendar, TakesItemsInKeyOrder) {
  RoundCalendar<int> cal;
  cal.schedule(3, 30);
  cal.schedule(1, 10);
  cal.schedule(2, 20);
  std::vector<int> got;
  while (auto key = cal.next_key()) {
    cal.advance_to(*key);
    for (int v : cal.take_due()) got.push_back(v);
  }
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
  EXPECT_TRUE(cal.empty());
}

TEST(RoundCalendar, SameKeyIsFifo) {
  RoundCalendar<int> cal;
  for (int i = 0; i < 100; ++i) cal.schedule(5, i);
  cal.advance_to(5);
  const auto due = cal.take_due();
  ASSERT_EQ(due.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(due[i], i);
}

TEST(RoundCalendar, FarFutureKeysGoThroughOverflow) {
  RoundCalendar<int> cal(8);  // tiny window to force the overflow path
  cal.schedule(2, 1);
  cal.schedule(1000, 3);  // far beyond the 8-slot window
  cal.schedule(500, 2);
  std::vector<std::uint64_t> keys;
  std::vector<int> got;
  while (auto key = cal.next_key()) {
    cal.advance_to(*key);
    keys.push_back(*key);
    for (int v : cal.take_due()) got.push_back(v);
  }
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{2, 500, 1000}));
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(RoundCalendar, OverflowPreservesFifoWithinKey) {
  RoundCalendar<int> cal(4);
  for (int i = 0; i < 10; ++i) cal.schedule(100, i);  // all via overflow
  cal.advance_to(100);
  const auto due = cal.take_due();
  ASSERT_EQ(due.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(due[i], i);
}

TEST(RoundCalendar, SchedulingIntoThePastThrows) {
  RoundCalendar<int> cal;
  cal.schedule(4, 1);
  cal.advance_to(4);
  EXPECT_THROW(cal.schedule(3, 2), CheckFailure);
  cal.schedule(4, 3);  // the current key is still open
  EXPECT_EQ(cal.take_due(), (std::vector<int>{1, 3}));
}

TEST(RoundCalendar, LockstepStyleRoundByRoundDrain) {
  RoundCalendar<int> cal;
  for (std::uint64_t r = 1; r <= 200; ++r) cal.schedule(r, static_cast<int>(r));
  for (std::uint64_t r = 1; r <= 200; ++r) {
    cal.advance_to(r);
    const auto due = cal.take_due();
    ASSERT_EQ(due.size(), 1u);
    EXPECT_EQ(due[0], static_cast<int>(r));
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, FarFutureEventsStillFire) {
  EventQueue q;  // exercises overflow migration through the event loop
  std::vector<int> order;
  q.at(1u << 20, [&] { order.push_back(3); });
  q.at(2, [&] { order.push_back(1); });
  q.at(70, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 1u << 20);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsScheduledAtNowRunAfterCurrentBatch) {
  EventQueue q;
  std::vector<int> order;
  q.at(5, [&] {
    order.push_back(1);
    q.at(5, [&] { order.push_back(3); });
  });
  q.at(5, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, MaxEventsCutoffKeepsLeftoversRunnable) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i)
    q.at(7, [&order, i] { order.push_back(i); });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.run(), 2u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Sweep, ResolveThreadsIsAtLeastOne) {
  EXPECT_GE(resolve_sweep_threads(0), 1u);
  EXPECT_EQ(resolve_sweep_threads(3), 3u);
}

TEST(Sweep, EmptyGrid) {
  const auto out = parallel_sweep(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(Sweep, ResultsAreIndexAligned) {
  const auto out =
      parallel_sweep(100, [](std::size_t i) { return i * i; }, {.threads = 4});
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  auto cell = [](std::size_t i) {
    // A little deterministic work per cell.
    std::uint64_t acc = i;
    for (int k = 0; k < 1000; ++k) acc = acc * 6364136223846793005ull + 1;
    return acc;
  };
  const auto serial = parallel_sweep(64, cell, {.threads = 1});
  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto sharded = parallel_sweep(64, cell, {.threads = threads});
    EXPECT_EQ(sharded, serial) << threads << " threads";
  }
}

TEST(Sweep, AllCellsRunExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_sweep(
      hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1);
        return 0;
      },
      {.threads = 4});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, FirstExceptionPropagates) {
  EXPECT_THROW(parallel_sweep(
                   32,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("cell failed");
                     return i;
                   },
                   {.threads = 4}),
               std::runtime_error);
}

}  // namespace
}  // namespace anon
