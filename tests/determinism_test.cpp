// Determinism regressions (same seed ⇒ byte-identical traces and reports,
// serial ⇒ sharded sweep equivalence) and the decide/halt policy corners:
// HaltPolicy::kStopAfterDecide laggard starvation and best-effort
// (relay_partial_broadcast = false) broadcast safety.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "algo/runner.hpp"
#include "common/value.hpp"
#include "net/lockstep.hpp"
#include "sim/experiment.hpp"

namespace anon {
namespace {

std::string trace_bytes(const Trace& t) {
  std::ostringstream os;
  for (const auto& e : t.end_of_rounds())
    os << "E " << e.process << ' ' << e.round << ' ' << e.time << '\n';
  for (const auto& d : t.deliveries())
    os << "D " << d.sender << ' ' << d.msg_round << ' ' << d.receiver << ' '
       << d.receiver_round << ' ' << d.time << '\n';
  for (const auto& c : t.crashes())
    os << "C " << c.process << ' ' << c.round << '\n';
  return os.str();
}

std::string report_bytes(const ConsensusReport& rep) {
  return rep.to_string() + '|' + rep.env_check.to_string();
}

ConsensusConfig full_recording_config(EnvKind kind, std::size_t n, Round stab,
                                      std::uint64_t seed, std::size_t f) {
  ConsensusConfig cfg;
  cfg.env.kind = kind;
  cfg.env.n = n;
  cfg.env.seed = seed;
  cfg.env.stabilization = stab;
  cfg.initial = random_values(n, seed + 1, 1, 50);
  cfg.net.seed = seed;
  cfg.net.max_rounds = 5000;
  cfg.net.record_deliveries = true;  // the byte-identical claim covers all
  if (f > 0) cfg.crashes = random_crashes(n, f, stab + 4, seed + 7);
  return cfg;
}

void expect_identical_reruns(ConsensusAlgo algo, const ConsensusConfig& cfg) {
  Trace first_trace, second_trace;
  const auto first = run_consensus(algo, cfg, &first_trace);
  const auto second = run_consensus(algo, cfg, &second_trace);
  EXPECT_EQ(report_bytes(first), report_bytes(second));
  EXPECT_EQ(trace_bytes(first_trace), trace_bytes(second_trace));
  EXPECT_FALSE(trace_bytes(first_trace).empty());
}

TEST(Determinism, EsRunsAreByteIdentical) {
  for (std::uint64_t seed : {1u, 17u, 4242u})
    expect_identical_reruns(ConsensusAlgo::kEs,
                            full_recording_config(EnvKind::kES, 6, 8, seed, 2));
}

TEST(Determinism, EssRunsAreByteIdentical) {
  for (std::uint64_t seed : {3u, 99u})
    expect_identical_reruns(
        ConsensusAlgo::kEss,
        full_recording_config(EnvKind::kESS, 5, 6, seed, 1));
}

TEST(Determinism, ShardedSweepMatchesSerialSweep) {
  std::vector<ConsensusConfig> grid;
  for (std::uint64_t seed : experiment_seeds(6))
    for (std::size_t n : {3u, 6u})
      grid.push_back(full_recording_config(EnvKind::kES, n, 5, seed, n / 3));
  const auto serial =
      run_consensus_sweep(ConsensusAlgo::kEs, grid, {.threads = 1});
  const auto sharded =
      run_consensus_sweep(ConsensusAlgo::kEs, grid, {.threads = 4});
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(report_bytes(serial[i]), report_bytes(sharded[i])) << "cell " << i;
}

// --- Decide/halt policy (see DESIGN.md, "decide/halt"). ---

// Gossips its own seed every round; decides on the largest value the first
// time a round-k inbox (read at compute(k)) holds all n distinct seeds —
// i.e. it needs FRESH round-k messages from everybody, so it starves if
// the others stop sending.
class GossipDecide final : public Automaton<ValueSet> {
 public:
  GossipDecide(std::int64_t seed, std::size_t n) : seed_(seed), n_(n) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet seen;
    for (const ValueSet& m : inbox_at(inboxes, k))
      seen.insert(m.begin(), m.end());
    if (!decision_.has_value() && seen.size() >= n_)
      decision_ = *seen.rbegin();
    return ValueSet{Value(seed_)};
  }
  std::optional<Value> decision() const override { return decision_; }

 private:
  std::int64_t seed_;
  std::size_t n_;
  std::optional<Value> decision_;
};

// Process 2 is a laggard: everything sent to it before round 10 arrives
// two rounds late (its own sends stay timely).
class LaggardLinks final : public DelayModel {
 public:
  Round delay(Round k, ProcId, ProcId receiver) const override {
    return (receiver == 2 && k < 10) ? 2 : 0;
  }
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> gossipers(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(
        std::make_unique<GossipDecide>(static_cast<std::int64_t>(i), n));
  return autos;
}

TEST(HaltPolicy, ContinueForeverLetsTheLaggardCatchUp) {
  LaggardLinks delays;
  LockstepOptions opt;
  opt.max_rounds = 50;
  opt.halt_policy = HaltPolicy::kContinueForever;
  LockstepNet<ValueSet> net(gossipers(3), delays, CrashPlan{}, opt);
  const auto res = net.run_until_all_correct_decided();
  EXPECT_TRUE(res.stopped);
  for (ProcId p = 0; p < 3; ++p) {
    ASSERT_TRUE(net.decision(p).has_value()) << "process " << p;
    EXPECT_EQ(*net.decision(p), Value(2));
  }
  // The laggard could only decide once its links turned timely (round 10).
  EXPECT_GE(net.decision_round(2), 10u);
}

TEST(HaltPolicy, StopAfterDecideStarvesTheLaggard) {
  LaggardLinks delays;
  LockstepOptions opt;
  opt.max_rounds = 50;
  opt.halt_policy = HaltPolicy::kStopAfterDecide;
  LockstepNet<ValueSet> net(gossipers(3), delays, CrashPlan{}, opt);
  const auto res = net.run_until_all_correct_decided();
  // Processes 0 and 1 decide in round 1 and halt; the laggard then never
  // again sees a full fresh inbox — observable starvation at max_rounds.
  EXPECT_FALSE(res.stopped);
  EXPECT_EQ(res.rounds, 50u);
  ASSERT_TRUE(net.decision(0).has_value());
  ASSERT_TRUE(net.decision(1).has_value());
  EXPECT_FALSE(net.decision(2).has_value());
  // Safety still holds among those that did decide.
  EXPECT_EQ(*net.decision(0), *net.decision(1));
}

TEST(HaltPolicy, StopAfterDecideIsBenignWhenNobodyLags) {
  SynchronousDelays delays;
  LockstepOptions opt;
  opt.max_rounds = 50;
  opt.halt_policy = HaltPolicy::kStopAfterDecide;
  LockstepNet<ValueSet> net(gossipers(3), delays, CrashPlan{}, opt);
  const auto res = net.run_until_all_correct_decided();
  EXPECT_TRUE(res.stopped);
  for (ProcId p = 0; p < 3; ++p)
    EXPECT_EQ(net.decision(p), std::optional<Value>(Value(2)));
}

TEST(HaltPolicy, StopAfterDecideKeepsEsSafetyUnderCrashes) {
  for (std::uint64_t seed : experiment_seeds(5)) {
    auto cfg = full_recording_config(EnvKind::kES, 6, 6, seed, 2);
    cfg.net.max_rounds = 300;  // starvation may hit the limit; that's fine
    cfg.net.halt_policy = HaltPolicy::kStopAfterDecide;
    cfg.validate_env = false;  // halting breaks ES liveness, not safety
    const auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
    EXPECT_TRUE(rep.agreement) << "seed " << seed;
    EXPECT_TRUE(rep.validity) << "seed " << seed;
  }
}

// --- Best-effort broadcast for crashing senders. ---

TEST(BestEffortBroadcast, EsSafetyHoldsWithoutRelay) {
  for (std::uint64_t seed : experiment_seeds(6)) {
    auto cfg = full_recording_config(EnvKind::kES, 6, 6, seed, 2);
    cfg.net.relay_partial_broadcast = false;
    cfg.net.max_rounds = 2000;
    cfg.validate_env = false;  // lost finals void the delivery guarantees
    const auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
    EXPECT_TRUE(rep.agreement) << "seed " << seed;
    EXPECT_TRUE(rep.validity) << "seed " << seed;
    // With the reliable-broadcast relay restored, the same configuration
    // must also be live.
    auto relay_cfg = cfg;
    relay_cfg.net.relay_partial_broadcast = true;
    const auto relay_rep = run_consensus(ConsensusAlgo::kEs, relay_cfg);
    EXPECT_TRUE(relay_rep.all_correct_decided) << "seed " << seed;
    EXPECT_TRUE(relay_rep.agreement) << "seed " << seed;
  }
}

}  // namespace
}  // namespace anon
