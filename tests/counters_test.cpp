#include "common/counters.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

class CountersTest : public ::testing::Test {
 protected:
  HistoryArena arena;
  Value v(std::int64_t x) { return Value(x); }
};

TEST_F(CountersTest, DefaultIsZeroAndZeroMeansAbsent) {
  CounterMap c;
  History h = arena.singleton(v(1));
  EXPECT_EQ(c.get(h), 0u);
  c.set(h, 5);
  EXPECT_EQ(c.get(h), 5u);
  EXPECT_EQ(c.size(), 1u);
  c.set(h, 0);  // storing 0 erases — canonical form
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST_F(CountersTest, MinMergeIntersectsKeys) {
  // Line 8: a history absent from any message reads 0 there, so the merge
  // keeps only histories present in every message.
  History ha = arena.singleton(v(1));
  History hb = arena.singleton(v(2));
  CounterMap m1, m2;
  m1.set(ha, 3);
  m1.set(hb, 7);
  m2.set(ha, 5);  // hb absent from m2
  CounterMap merged = CounterMap::min_merge({&m1, &m2});
  EXPECT_EQ(merged.get(ha), 3u);
  EXPECT_EQ(merged.get(hb), 0u);
  EXPECT_EQ(merged.size(), 1u);
}

TEST_F(CountersTest, MinMergeSingleMapIsIdentity) {
  History ha = arena.singleton(v(1));
  CounterMap m;
  m.set(ha, 9);
  EXPECT_EQ(CounterMap::min_merge({&m}), m);
}

TEST_F(CountersTest, MinMergeEmptyInput) {
  EXPECT_TRUE(CounterMap::min_merge({}).empty());
}

TEST_F(CountersTest, PrefixMaxWalksAncestors) {
  History h1 = arena.of({v(1)});
  History h2 = arena.of({v(1), v(2)});
  History h3 = arena.of({v(1), v(2), v(3)});
  CounterMap c;
  c.set(h1, 4);
  c.set(h2, 2);
  EXPECT_EQ(c.prefix_max(h3), 4u);  // best among {h1:4, h2:2, h3:0}
  c.set(h3, 9);
  EXPECT_EQ(c.prefix_max(h3), 9u);  // reflexive: h3 itself counts
  // A diverged history shares only the length-1 prefix.
  History d = arena.of({v(1), v(9), v(9)});
  EXPECT_EQ(c.prefix_max(d), 4u);
}

TEST_F(CountersTest, BumpPrefixMaxIncrements) {
  History h = arena.of({v(1), v(2)});
  CounterMap c;
  c.bump_prefix_max(h);
  EXPECT_EQ(c.get(h), 1u);
  // Growing history keeps inheriting + incrementing (Lemma 4 mechanics).
  History h2 = arena.append(h, v(3));
  c.bump_prefix_max(h2);
  EXPECT_EQ(c.get(h2), 2u);
  History h3 = arena.append(h2, v(4));
  c.bump_prefix_max(h3);
  EXPECT_EQ(c.get(h3), 3u);
}

TEST_F(CountersTest, IsMaxOnEmptyMapIsTrue) {
  // Initially all counters are 0, so every process considers itself a
  // leader (everyone proposes at the start — required for safety).
  CounterMap c;
  EXPECT_TRUE(c.is_max(arena.singleton(v(1))));
}

TEST_F(CountersTest, IsMaxComparesAgainstAllEntries) {
  History mine = arena.singleton(v(1));
  History other = arena.singleton(v(2));
  CounterMap c;
  c.set(other, 5);
  EXPECT_FALSE(c.is_max(mine));
  c.set(mine, 5);
  EXPECT_TRUE(c.is_max(mine));  // ties count as maximal (≥)
  c.set(mine, 6);
  EXPECT_TRUE(c.is_max(mine));
}

TEST_F(CountersTest, MaxValueAndArgmax) {
  CounterMap c;
  EXPECT_EQ(c.max_value(), 0u);
  EXPECT_TRUE(c.argmax().empty());
  History a = arena.singleton(v(1));
  History b = arena.singleton(v(2));
  c.set(a, 3);
  c.set(b, 3);
  EXPECT_EQ(c.max_value(), 3u);
  EXPECT_EQ(c.argmax().size(), 2u);
  c.set(b, 4);
  ASSERT_EQ(c.argmax().size(), 1u);
  EXPECT_EQ(c.argmax()[0], b);
}

TEST_F(CountersTest, GcDropsDominatedPrefixesOnly) {
  History h1 = arena.of({v(1)});
  History h2 = arena.of({v(1), v(2)});
  History h3 = arena.of({v(1), v(2), v(3)});
  History d = arena.of({v(9)});  // unrelated branch
  CounterMap c;
  c.set(h1, 3);
  c.set(h2, 5);
  c.set(h3, 7);
  c.set(d, 2);
  EXPECT_EQ(c.gc_dominated_prefixes(), 2u);  // h1, h2 dominated by h3
  EXPECT_EQ(c.get(h3), 7u);
  EXPECT_EQ(c.get(d), 2u);
  EXPECT_EQ(c.size(), 2u);
  // prefix_max through the survivor is unchanged for extensions of h3.
  EXPECT_EQ(c.prefix_max(arena.append(h3, v(4))), 7u);
}

TEST_F(CountersTest, GcKeepsPrefixWithStrictlyHigherCount) {
  History h1 = arena.of({v(1)});
  History h2 = arena.of({v(1), v(2)});
  CounterMap c;
  c.set(h1, 9);  // higher than its extension: NOT dominated
  c.set(h2, 5);
  EXPECT_EQ(c.gc_dominated_prefixes(), 0u);
  EXPECT_EQ(c.size(), 2u);
}

TEST_F(CountersTest, EqualityAndOrdering) {
  History a = arena.singleton(v(1));
  CounterMap c1, c2;
  EXPECT_EQ(c1, c2);
  c1.set(a, 1);
  EXPECT_NE(c1, c2);
  EXPECT_TRUE(c2 < c1 || c1 < c2);
}

}  // namespace
}  // namespace anon
