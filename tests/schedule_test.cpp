// Crash plans, hash utilities, and lock-step delivery mechanics.
#include "net/schedule.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/value.hpp"
#include "net/lockstep.hpp"

namespace anon {
namespace {

TEST(HashMix, DeterministicAndSpread) {
  EXPECT_EQ(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 3, 4));
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(1, 2, 3, 5));
  EXPECT_NE(hash_mix(1, 2, 3, 4), hash_mix(2, 2, 3, 4));
}

TEST(HashBelow, InRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    std::uint64_t h = hash_mix(42, i, 0, 0);
    EXPECT_LT(hash_below(h, 7), 7u);
  }
}

TEST(CrashPlan, Defaults) {
  CrashPlan plan;
  EXPECT_EQ(plan.crash_round(0), kNeverCrashes);
  EXPECT_FALSE(plan.ever_crashes(0));
  EXPECT_TRUE(plan.executes_eor(0, 1000000));
  EXPECT_TRUE(plan.receives_in_round(0, 1000000));
  EXPECT_EQ(plan.correct(3).size(), 3u);
}

TEST(CrashPlan, CrashSemantics) {
  CrashPlan plan;
  plan.crash_at(1, 5);
  // Executes its 5th end-of-round (the crashing broadcast) but not the 6th.
  EXPECT_TRUE(plan.executes_eor(1, 5));
  EXPECT_FALSE(plan.executes_eor(1, 6));
  // Dead during round 5 for receiving purposes.
  EXPECT_TRUE(plan.receives_in_round(1, 4));
  EXPECT_FALSE(plan.receives_in_round(1, 5));
  EXPECT_EQ(plan.correct(3), (std::vector<ProcId>{0, 2}));
  EXPECT_EQ(plan.crash_count(), 1u);
}

TEST(CrashPlan, ExplicitFinalAudience) {
  CrashPlan plan;
  CrashSpec spec;
  spec.crash_round = 2;
  spec.final_recipients = std::vector<ProcId>{0, 3};
  plan.set(1, spec);
  EXPECT_TRUE(plan.in_final_audience(1, 0, 5, 99));
  EXPECT_TRUE(plan.in_final_audience(1, 3, 5, 99));
  EXPECT_FALSE(plan.in_final_audience(1, 2, 5, 99));
  // Non-crashing senders deliver to everyone.
  EXPECT_TRUE(plan.in_final_audience(0, 2, 5, 99));
}

TEST(CrashPlan, FractionAudienceIsDeterministic) {
  CrashPlan plan;
  CrashSpec spec;
  spec.crash_round = 3;
  spec.final_fraction = 0.5;
  plan.set(2, spec);
  for (ProcId q = 0; q < 10; ++q)
    EXPECT_EQ(plan.in_final_audience(2, q, 10, 7),
              plan.in_final_audience(2, q, 10, 7));
}

// --- Lock-step engine mechanics, using EchoUnion-style automata. ---

class Collect final : public Automaton<ValueSet> {
 public:
  explicit Collect(std::int64_t seed) : seed_(seed) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    seen_.clear();
    for (const ValueSet& m : inbox_at(inboxes, k))
      seen_.insert(m.begin(), m.end());
    return seen_;
  }
  ValueSet seen_;
  std::int64_t seed_;
};

std::vector<std::unique_ptr<Automaton<ValueSet>>> collectors(std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<Collect>(static_cast<std::int64_t>(i)));
  return autos;
}

TEST(Lockstep, SynchronousDeliveryReachesEveryoneInRound) {
  SynchronousDelays delays;
  LockstepNet<ValueSet> net(collectors(4), delays, CrashPlan{});
  net.run_rounds(2);
  // After compute(1) with timely delivery, every process saw all 4 seeds.
  for (ProcId p = 0; p < 4; ++p) {
    const auto& a = dynamic_cast<const Collect&>(net.process(p).automaton());
    EXPECT_EQ(a.seen_.size(), 4u) << "process " << p;
  }
}

TEST(Lockstep, TraceRecordsTimelyDeliveries) {
  SynchronousDelays delays;
  LockstepNet<ValueSet> net(collectors(3), delays, CrashPlan{});
  net.run_rounds(3);
  std::size_t timely = 0;
  for (const auto& d : net.trace().deliveries())
    if (d.msg_round == d.receiver_round) ++timely;
  EXPECT_EQ(timely, net.trace().deliveries().size());
  EXPECT_GT(timely, 0u);
}

// Delay model: process 0's messages always arrive 2 rounds late.
class SlowSender final : public DelayModel {
 public:
  Round delay(Round, ProcId sender, ProcId) const override {
    return sender == 0 ? 2 : 0;
  }
};

TEST(Lockstep, LateMessagesMissTheRoundCompute) {
  SlowSender delays;
  LockstepNet<ValueSet> net(collectors(3), delays, CrashPlan{});
  net.run_rounds(2);
  // compute(1): processes 1,2 see seeds {1,2} but not 0's.
  for (ProcId p = 1; p < 3; ++p) {
    const auto& a = dynamic_cast<const Collect&>(net.process(p).automaton());
    EXPECT_EQ(a.seen_.count(Value(0)), 0u);
    EXPECT_EQ(a.seen_.size(), 2u);
  }
  // Process 0 sees its own seed plus 1, 2.
  const auto& a0 = dynamic_cast<const Collect&>(net.process(0).automaton());
  EXPECT_EQ(a0.seen_.size(), 3u);
}

TEST(Lockstep, CrashedProcessStopsParticipating) {
  SynchronousDelays delays;
  CrashPlan crashes;
  CrashSpec spec;
  spec.crash_round = 2;
  spec.final_recipients = std::vector<ProcId>{};  // silent crash
  crashes.set(0, spec);
  LockstepOptions opt;
  opt.relay_partial_broadcast = false;
  LockstepNet<ValueSet> net(collectors(3), delays, crashes, opt);
  net.run_rounds(5);
  EXPECT_EQ(net.process(0).round(), 2u);  // executed eor 1, 2 only
  EXPECT_GT(net.process(1).round(), 4u);
}

TEST(Lockstep, PartialFinalBroadcastWithoutRelay) {
  SynchronousDelays delays;
  CrashPlan crashes;
  CrashSpec spec;
  spec.crash_round = 1;  // crashes during its very first broadcast
  spec.final_recipients = std::vector<ProcId>{1};
  crashes.set(0, spec);
  LockstepOptions opt;
  opt.relay_partial_broadcast = false;
  LockstepNet<ValueSet> net(collectors(3), delays, crashes, opt);
  net.run_rounds(4);
  // The network itself never delivers 0's final broadcast to process 2
  // (process 1 may still relay the VALUE at the application level, which is
  // exactly how reliable dissemination is built on top — but the message
  // delivery did not happen).
  for (const auto& d : net.trace().deliveries())
    EXPECT_FALSE(d.sender == 0 && d.receiver == 2);
  const auto& a1 = dynamic_cast<const Collect&>(net.process(1).automaton());
  EXPECT_EQ(a1.seen_.count(Value(0)), 1u);  // audience got it
}

TEST(Lockstep, PartialFinalBroadcastWithRelayEventuallyReachesAll) {
  SynchronousDelays delays;
  CrashPlan crashes;
  CrashSpec spec;
  spec.crash_round = 1;
  spec.final_recipients = std::vector<ProcId>{1};
  crashes.set(0, spec);
  LockstepOptions opt;
  opt.relay_partial_broadcast = true;  // reliable broadcast semantics
  opt.relay_extra_delay = 2;
  LockstepNet<ValueSet> net(collectors(3), delays, crashes, opt);
  net.run_rounds(6);
  // Process 2 received the round-1 message late; it sits in inbox slot 1.
  bool relayed = false;
  for (const auto& d : net.trace().deliveries())
    if (d.sender == 0 && d.receiver == 2 && d.msg_round == 1 &&
        d.receiver_round > 1)
      relayed = true;
  EXPECT_TRUE(relayed);
}

TEST(Lockstep, MetricsCount) {
  SynchronousDelays delays;
  LockstepNet<ValueSet> net(collectors(3), delays, CrashPlan{});
  net.run_rounds(2);
  EXPECT_GT(net.sends(), 0u);
  EXPECT_GT(net.deliveries(), 0u);
  EXPECT_GT(net.bytes_sent(), 0u);
}

TEST(Lockstep, MetricsCountPerMessageOnEveryLink) {
  // sends and bytes_sent are both per message per link, so their ratio is
  // the true mean wire size even for multi-message batches (E10).  Here
  // every batch is a single ValueSet, all delivered before the run stops:
  // 2 waves × 3 processes × 2 links.
  SynchronousDelays delays;
  LockstepNet<ValueSet> net(collectors(3), delays, CrashPlan{});
  net.run_rounds(2);
  EXPECT_EQ(net.sends(), 12u);
  EXPECT_EQ(net.deliveries(), net.sends());
  EXPECT_EQ(net.bytes_sent(), net.sends() * sizeof(ValueSet));
}

TEST(Lockstep, MaxRoundsStopsRun) {
  SynchronousDelays delays;
  LockstepOptions opt;
  opt.max_rounds = 7;
  LockstepNet<ValueSet> net(collectors(2), delays, CrashPlan{}, opt);
  auto res = net.run([](const LockstepNet<ValueSet>&) { return false; });
  EXPECT_FALSE(res.stopped);
  EXPECT_EQ(res.rounds, 7u);
}

}  // namespace
}  // namespace anon
