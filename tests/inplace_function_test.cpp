// InplaceFunction semantics plus the allocation-counter proof that the
// discrete-event hot path stopped allocating: scheduling and running
// ABD-sized events through EventQueue::after performs ZERO heap
// allocations in steady state (the seed stored events as std::function —
// one allocation per event — and takes a fresh due-batch vector per
// window).
#include "common/inplace_function.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "baseline/abd.hpp"
#include "baseline/async_net.hpp"
#include "shm/register_sim.hpp"
#include "weakset/ws_from_mwmr.hpp"

// Binary-global allocation counter (this test binary only).
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace anon {
namespace {

TEST(InplaceFunction, CallsAndMoves) {
  int hits = 0;
  InplaceFunction<void(), 16> f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
  InplaceFunction<void(), 16> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));
  g();
  EXPECT_EQ(hits, 2);
  g = [&hits] { hits += 10; };
  g();
  EXPECT_EQ(hits, 12);
}

TEST(InplaceFunction, ReturnsValuesAndTakesArgs) {
  InplaceFunction<int(int, int), 16> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InplaceFunction, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
  };
  int destroyed = 0;
  {
    InplaceFunction<void(), 32> f([p = Probe(&destroyed)] { (void)p; });
    InplaceFunction<void(), 32> g(std::move(f));
    (void)g;
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InplaceFunction, CallingEmptyThrows) {
  InplaceFunction<void(), 16> f;
  EXPECT_THROW(f(), CheckFailure);
}

// An ABD-shaped capture: about as large as the deepest closure the ABD
// store phase schedules through AsyncNet::send.
struct FatCapture {
  std::uint64_t payload[14] = {};
  std::uint64_t* sink;
  void operator()() { *sink += payload[0] + 1; }
};

TEST(EventQueueAllocation, SteadyStateAfterIsAllocationFree) {
  EventQueue q;
  std::uint64_t sink = 0;
  auto cycle = [&q, &sink] {
    // A burst of events over a spread of delays, then drain — the shape of
    // one ABD phase (all requests enqueued, then the event loop runs).
    for (int i = 0; i < 64; ++i) {
      FatCapture c;
      c.payload[0] = static_cast<std::uint64_t>(i);
      c.sink = &sink;
      q.after(1 + static_cast<std::uint64_t>(i % 8), c);
    }
    q.run();
  };
  // Warm-up: calendar ring slots and the due-batch buffer grow to steady
  // capacity (take_due_into recycles it afterwards).  Each cycle advances
  // `now` by 8, so 10 cycles wrap the whole 64-slot wheel: every slot the
  // measured cycles will touch has been grown once.
  for (int w = 0; w < 10; ++w) cycle();
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int r = 0; r < 16; ++r) cycle();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "EventQueue::after / run allocated on the hot path";
  EXPECT_GT(sink, 0u);
}

TEST(EventQueueAllocation, AbdEventsFitTheInlineBuffer) {
  // The real protocol stack compiles against the inline event buffer (a
  // too-large closure would fail the static_assert inside InplaceFunction)
  // and still completes: write quorum collected, read returns the value.
  AsyncNet net(5, 77);
  AbdRegister reg(&net);
  bool wrote = false;
  std::optional<Value> read_back;
  reg.write(0, Value(9), [&](std::uint64_t) { wrote = true; });
  net.events().run();
  reg.read(1, [&](std::optional<Value> v, std::uint64_t) { read_back = v; });
  net.events().run();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(read_back, Value(9));
}

TEST(StepSchedulerAllocation, DoneCallbacksAreInline) {
  // StepScheduler completion callbacks live inline too: injecting and
  // draining ops allocates only the ops themselves (unique_ptr), never
  // for the callbacks.  Proxy: a full run of the Prop-3 construction—
  // whose DoneFns carry records pointers and indices—completes and
  // certifies (sizes are enforced by the static_assert at compile time).
  std::vector<Value> domain{Value(0), Value(1), Value(2)};
  std::vector<MwmrWsScriptOp> script;
  for (std::uint64_t i = 0; i < 12; ++i) {
    script.push_back({i, i % 3, true, Value(static_cast<std::int64_t>(i % 3))});
    script.push_back({i + 1, (i + 1) % 3, false, Value()});
  }
  auto records = run_ws_from_mwmr(domain, script, 5);
  EXPECT_EQ(records.size(), script.size());
}

}  // namespace
}  // namespace anon
