// InboxWindow / InboxView / BatchInterner semantics (PR 2 tentpole):
// two-round read window, late-round clamping, early-round overflow,
// payload interning, and view determinism.
#include "giraf/inbox.hpp"

#include <gtest/gtest.h>

#include "common/value.hpp"

namespace anon {
namespace {

ValueSet vs(std::initializer_list<std::int64_t> xs) {
  ValueSet s;
  for (auto x : xs) s.insert(Value(x));
  return s;
}

TEST(InboxWindow, RejectsReadsOutsideTheTwoRoundWindow) {
  InboxWindow<ValueSet> w;
  w.advance_to(5);
  w.add_local(vs({1}), 5);
  w.add_local(vs({2}), 4);
  EXPECT_EQ(w.at(5).size(), 1u);
  EXPECT_EQ(w.at(4).size(), 1u);
  // Outside {k-1, k}: the regression the windowed inbox must keep.
  EXPECT_THROW(w.at(3), CheckFailure);
  EXPECT_THROW(w.at(6), CheckFailure);
  EXPECT_THROW(w.at(0), CheckFailure);
  w.advance_to(6);
  EXPECT_NO_THROW(w.at(5));
  EXPECT_THROW(w.at(4), CheckFailure);
}

TEST(InboxWindow, FarLateWritesClampIntoTheOldestReadableSlot) {
  InboxWindow<ValueSet> w;
  w.advance_to(10);
  w.add_local(vs({7}), 2);  // nine rounds late
  EXPECT_EQ(w.at(9).count(vs({7})), 1u);
  EXPECT_EQ(w.at(10).count(vs({7})), 0u);
}

TEST(InboxWindow, FarEarlyWritesWaitInOverflowAndMigrate) {
  InboxWindow<ValueSet> w;
  w.advance_to(1);
  w.add_local(vs({3}), 7);  // an unsynchronised peer is six rounds ahead
  EXPECT_THROW(w.at(7), CheckFailure);  // not readable yet
  w.advance_to(7);
  EXPECT_EQ(w.at(7).count(vs({3})), 1u);
}

TEST(InboxWindow, ForEachLiveSeesWindowAndOverflowOnce) {
  InboxWindow<ValueSet> w;
  w.advance_to(4);
  w.add_local(vs({1}), 1);  // clamps to round 3
  w.add_local(vs({2}), 4);
  w.add_local(vs({3}), 5);  // next round
  w.add_local(vs({4}), 9);  // overflow
  ValueSet all;
  std::size_t slots = 0;
  w.for_each_live([&](Round, const InboxView<ValueSet>& view) {
    ++slots;
    for (const ValueSet& m : view) set_union_inplace(all, m);
  });
  EXPECT_EQ(slots, 4u);
  EXPECT_EQ(all, vs({1, 2, 3, 4}));
}

TEST(InboxWindow, IdenticalContentDedupsAcrossBatches) {
  InboxWindow<ValueSet> w;
  w.advance_to(2);
  w.add_local(vs({5}), 2);
  w.add_local(vs({5}), 2);  // identical content, separate local batch
  w.add_local(vs({6}), 2);
  EXPECT_EQ(w.at(2).size(), 2u);
  EXPECT_EQ(w.at(2).count(vs({5})), 1u);
  EXPECT_EQ(w.at(2).count(vs({6})), 1u);
  EXPECT_EQ(w.at(2).count(vs({7})), 0u);
}

TEST(InboxWindow, SlotsAreClearedWhenReusedByTheRing) {
  // The 4-slot ring aliases round k and k+4; sliding must clear slots
  // before they are reused, so round-5 reads never see round-1 messages.
  InboxWindow<ValueSet> w;
  w.advance_to(1);
  w.add_local(vs({1}), 1);
  w.advance_to(5);
  EXPECT_EQ(w.at(5).size(), 0u);
  EXPECT_EQ(w.at(4).size(), 0u);
}

TEST(BatchInterner, IdenticalPayloadsShareOneObject) {
  BatchInterner<ValueSet> interner;
  InboxWindow<ValueSet> a, b, c;
  a.advance_to(1);
  b.advance_to(1);
  c.advance_to(1);
  a.add_local(vs({1, 2}), 1);
  b.add_local(vs({1, 2}), 1);  // same content, different "sender"
  c.add_local(vs({9}), 1);
  const SharedBatch<ValueSet> pa = interner.intern(a.at(1));
  const SharedBatch<ValueSet> pb = interner.intern(b.at(1));
  const SharedBatch<ValueSet> pc = interner.intern(c.at(1));
  EXPECT_EQ(pa.get(), pb.get());  // anonymity collapse: one payload
  EXPECT_NE(pa.get(), pc.get());
  interner.round_reset();
  // Content recurring in the very next round is *promoted*: the previous
  // round's object is reused (the steady state allocates nothing) and it
  // re-appears in fresh() so sharded barriers still canonicalize it.
  const SharedBatch<ValueSet> pa2 = interner.intern(a.at(1));
  EXPECT_EQ(pa.get(), pa2.get());
  ASSERT_EQ(interner.fresh().size(), 1u);
  EXPECT_EQ(interner.fresh()[0].get(), pa.get());
  interner.round_reset();
  interner.round_reset();  // content skipped a round: no longer promotable
  const SharedBatch<ValueSet> pa3 = interner.intern(a.at(1));
  EXPECT_NE(pa.get(), pa3.get());
  EXPECT_EQ(pa->msgs, pa3->msgs);
}

TEST(BatchInterner, SharedBatchesFeedReceiverInboxes) {
  BatchInterner<ValueSet> interner;
  InboxWindow<ValueSet> sender1, sender2;
  sender1.advance_to(1);
  sender2.advance_to(1);
  sender1.add_local(vs({4}), 1);
  sender2.add_local(vs({4}), 1);
  const auto p1 = interner.intern(sender1.at(1));
  const auto p2 = interner.intern(sender2.at(1));
  InboxWindow<ValueSet> receiver;
  receiver.advance_to(1);
  receiver.add_shared(p1, 1);
  receiver.add_shared(p2, 1);  // pointer-equal: dedups without compares
  EXPECT_EQ(receiver.at(1).size(), 1u);
  EXPECT_EQ(receiver.at(1).count(vs({4})), 1u);
}

TEST(InboxWindow, OverflowParkingIsCountedAndDrainsOnAdvance) {
  InboxWindow<ValueSet> w;
  w.advance_to(1);
  EXPECT_EQ(w.overflow_parked(), 0u);
  EXPECT_EQ(w.overflow_high_water(), 0u);
  w.add_local(vs({1}), 2);  // next round: ring slot, not overflow
  EXPECT_EQ(w.overflow_parked(), 0u);
  w.add_local(vs({2}), 5);  // far early: parked
  w.add_local(vs({3}), 6);
  w.add_local(vs({4}), 6);
  EXPECT_EQ(w.overflow_parked(), 3u);
  EXPECT_EQ(w.overflow_high_water(), 3u);
  w.advance_to(5);  // round-5 and round-6 parks migrate into the ring
  EXPECT_EQ(w.overflow_parked(), 0u);
  EXPECT_EQ(w.overflow_high_water(), 3u);  // high-water sticks
  EXPECT_EQ(w.at(5).count(vs({2})), 1u);
}

TEST(InboxWindow, OverflowParkingShedsGracefullyAtTheLimit) {
  // A peer running away from us hits the park limit — and the batch is
  // shed with a counted drop, NOT a CHECK abort (the pre-fault-layer
  // behavior).  Under heavy reorder/churn an over-eager peer is a
  // degradation to report, not a reason to kill the process.
  InboxWindow<ValueSet> w;
  w.advance_to(1);
  for (std::size_t i = 0; i < InboxWindow<ValueSet>::kOverflowParkLimit; ++i)
    w.add_local(vs({1}), 100 + static_cast<Round>(i));
  EXPECT_EQ(w.overflow_parked(), InboxWindow<ValueSet>::kOverflowParkLimit);
  EXPECT_EQ(w.overflow_dropped(), 0u);
  w.add_local(vs({2}), 99);  // over the cap: shed and counted
  EXPECT_EQ(w.overflow_parked(), InboxWindow<ValueSet>::kOverflowParkLimit);
  EXPECT_EQ(w.overflow_dropped(), 1u);
  // In-window writes are unaffected by a saturated park.
  w.add_local(vs({3}), 2);
  w.advance_to(2);
  EXPECT_EQ(w.at(2).count(vs({3})), 1u);
  // Sliding the window drains parks, re-opening capacity.
  w.advance_to(120);
  EXPECT_LT(w.overflow_parked(), InboxWindow<ValueSet>::kOverflowParkLimit);
  w.add_local(vs({4}), 100000);  // parks again, no drop
  EXPECT_EQ(w.overflow_dropped(), 1u);
}

TEST(InboxView, IterationOrderIsDeterministicAndDuplicateFree) {
  // Build the same inbox twice from batches arriving in different orders:
  // the materialized views must iterate identically (digest order is
  // content-derived).
  auto build = [](bool flip) {
    auto w = std::make_unique<InboxWindow<ValueSet>>();
    w->advance_to(3);
    if (flip) {
      w->add_local(vs({2, 3}), 3);
      w->add_local(vs({1}), 3);
      w->add_local(vs({2, 3}), 3);
    } else {
      w->add_local(vs({1}), 3);
      w->add_local(vs({2, 3}), 3);
    }
    return w;
  };
  auto wa = build(false);
  auto wb = build(true);
  const auto& va = wa->at(3);
  const auto& vb = wb->at(3);
  ASSERT_EQ(va.size(), 2u);
  ASSERT_EQ(vb.size(), 2u);
  auto ia = va.begin();
  auto ib = vb.begin();
  for (; ia != va.end(); ++ia, ++ib) EXPECT_EQ(*ia, *ib);
}

}  // namespace
}  // namespace anon
