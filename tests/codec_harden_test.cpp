// Codec hardening: every wire decoder in the tree — the runtime message
// codecs and the anonsvc service-frame surface — must treat the buffer as
// hostile.  Truncated prefixes, single-bit flips, random garbage and
// oversized length fields yield nullopt (or a well-formed value for the
// rare flip that lands on another valid encoding), never UB; the CI
// sanitizer job runs this file under ASan+UBSan so "never UB" is checked,
// not assumed.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "runtime/codec.hpp"
#include "svc/frame.hpp"

namespace anon {
namespace {

// Exemplar encodings, one per codec, exercised by every attack below.
Bytes sample_es() {
  EsMessage m;
  m.insert(Value(3));
  m.insert(Value(-44));
  m.insert(Value::Bottom());
  return encode_es_message(m);
}

Bytes sample_ess() {
  HistoryArena arena;
  History h = arena.of({Value(1), Value(2)});
  CounterMap c;
  c.set(h, 9);
  return encode_ess_message(EssMessage{ValueSet{Value(5)}, h, c});
}

Bytes sample_service_frame() {
  ServiceFrame f;
  f.kind = SvcFrameKind::kConsensusRound;
  f.epoch = 7;
  f.round = 12;
  f.payload = encode_valueset_batch({ValueSet{Value(1)}, ValueSet{Value(2)}});
  return encode_service_frame(f);
}

Bytes sample_batch() {
  return encode_valueset_batch(
      {ValueSet{Value(10), Value(20)}, ValueSet{}, ValueSet{Value(-3)}});
}

Bytes sample_abd() {
  AbdWire m;
  m.type = AbdWireType::kStore;
  m.op_id = 41;
  m.origin = 2;
  m.replica = 1;
  m.ts = 6;
  m.wid = 2;
  m.has_value = true;
  m.value = 99;
  return encode_abd_wire(m);
}

Bytes sample_request() {
  ClientRequest r;
  r.op = SvcOp::kWsAdd;
  r.request_id = 77;
  r.has_value = true;
  r.value = -5;
  return encode_client_request(r);
}

Bytes sample_response() {
  ClientResponse r;
  r.status = SvcStatus::kOk;
  r.request_id = 77;
  r.info = 4;
  r.values = {Value(1), Value(2)};
  return encode_client_response(r);
}

// Run every decoder over one buffer; none may crash (values are fine).
void feed_all(const Bytes& b) {
  HistoryArena arena;
  (void)decode_es_message(b);
  (void)decode_ess_message(b, &arena);
  (void)decode_service_frame(b);
  (void)decode_valueset_batch(b);
  (void)decode_abd_wire(b);
  (void)decode_client_request(b);
  (void)decode_client_response(b);
}

TEST(CodecHarden, RoundTripBaselines) {
  // The attacks below only mean something if the exemplars are valid.
  HistoryArena arena;
  EXPECT_TRUE(decode_es_message(sample_es()).has_value());
  EXPECT_TRUE(decode_ess_message(sample_ess(), &arena).has_value());
  const auto frame = decode_service_frame(sample_service_frame());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, SvcFrameKind::kConsensusRound);
  EXPECT_EQ(frame->epoch, 7u);
  EXPECT_EQ(frame->round, 12u);
  EXPECT_TRUE(decode_valueset_batch(frame->payload).has_value());
  const auto batch = decode_valueset_batch(sample_batch());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 3u);
  EXPECT_TRUE(decode_abd_wire(sample_abd()).has_value());
  EXPECT_TRUE(decode_client_request(sample_request()).has_value());
  EXPECT_TRUE(decode_client_response(sample_response()).has_value());
}

TEST(CodecHarden, EveryStrictPrefixIsRejected) {
  // All codecs are self-delimiting with a trailing exhausted() check, so a
  // truncated buffer is never "close enough".
  HistoryArena arena;
  const Bytes es = sample_es();
  for (std::size_t cut = 0; cut < es.size(); ++cut)
    EXPECT_FALSE(
        decode_es_message(Bytes(es.begin(), es.begin() + cut)).has_value());
  const Bytes ess = sample_ess();
  for (std::size_t cut = 0; cut < ess.size(); ++cut)
    EXPECT_FALSE(decode_ess_message(Bytes(ess.begin(), ess.begin() + cut),
                                    &arena)
                     .has_value());
  for (const Bytes& full : {sample_service_frame(), sample_batch(),
                            sample_abd(), sample_request(),
                            sample_response()}) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const Bytes truncated(full.begin(), full.begin() + cut);
      feed_all(truncated);  // no decoder may crash on any prefix
    }
  }
  const Bytes frame = sample_service_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut)
    EXPECT_FALSE(
        decode_service_frame(Bytes(frame.begin(), frame.begin() + cut))
            .has_value());
  const Bytes abd = sample_abd();
  for (std::size_t cut = 0; cut < abd.size(); ++cut)
    EXPECT_FALSE(
        decode_abd_wire(Bytes(abd.begin(), abd.begin() + cut)).has_value());
  const Bytes req = sample_request();
  for (std::size_t cut = 0; cut < req.size(); ++cut)
    EXPECT_FALSE(decode_client_request(Bytes(req.begin(), req.begin() + cut))
                     .has_value());
  const Bytes resp = sample_response();
  for (std::size_t cut = 0; cut < resp.size(); ++cut)
    EXPECT_FALSE(decode_client_response(Bytes(resp.begin(), resp.begin() + cut))
                     .has_value());
}

TEST(CodecHarden, SingleBitFlipsNeverCrash) {
  // A flipped bit may still decode (e.g. inside a value payload) — that is
  // a payload corruption, not a framing violation.  What must never happen
  // is UB: every (byte, bit) position of every exemplar goes through every
  // decoder under the sanitizers.
  for (const Bytes& original : {sample_es(), sample_ess(),
                                sample_service_frame(), sample_batch(),
                                sample_abd(), sample_request(),
                                sample_response()}) {
    Bytes mutated = original;
    for (std::size_t byte = 0; byte < mutated.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        feed_all(mutated);
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      }
    }
    ASSERT_EQ(mutated, original);
  }
  SUCCEED();
}

TEST(CodecHarden, FlippedFramingFieldsAreRejected) {
  // Structural bytes, as opposed to payload bytes, must reject: the
  // service frame's magic and version gate everything behind them.
  Bytes frame = sample_service_frame();
  Bytes bad = frame;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decode_service_frame(bad).has_value());
  bad = frame;
  bad[1] ^= 0xFF;  // version
  EXPECT_FALSE(decode_service_frame(bad).has_value());
  bad = frame;
  bad[2] = 0;  // kind 0 is not a SvcFrameKind
  EXPECT_FALSE(decode_service_frame(bad).has_value());
}

TEST(CodecHarden, OversizedLengthFieldsAreRejected) {
  // Length/count fields claiming more data than the buffer holds must not
  // drive allocation or reads past the end.  Each writer below mirrors its
  // codec's layout with a hostile count.
  {
    ByteWriter w;  // EsMessage: tag, count = 2^32-1, no elements
    w.u8('E');
    w.u32(std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(decode_es_message(w.take()).has_value());
  }
  {
    ByteWriter w;  // batch: count = 2^32-1, one truncated element
    w.u32(std::numeric_limits<std::uint32_t>::max());
    w.u32(8);
    EXPECT_FALSE(decode_valueset_batch(w.take()).has_value());
  }
  {
    ByteWriter w;  // service frame claiming a 4 GiB payload
    w.u8(kSvcMagic);
    w.u8(kSvcWireVersion);
    w.u8(static_cast<std::uint8_t>(SvcFrameKind::kHeartbeat));
    w.u64(1);
    w.u64(1);
    w.u32(std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(decode_service_frame(w.take()).has_value());
  }
  {
    ByteWriter w;  // client response with a hostile value count
    w.u8(kSvcWireVersion);
    w.u8(0);  // kOk
    w.u64(1);
    w.u64(1);
    w.u32(std::numeric_limits<std::uint32_t>::max());
    EXPECT_FALSE(decode_client_response(w.take()).has_value());
  }
}

TEST(CodecHarden, TrailingGarbageIsRejected) {
  // Self-delimiting means exact: a valid encoding plus one byte is not a
  // valid encoding.
  HistoryArena arena;
  Bytes b = sample_es();
  b.push_back(0);
  EXPECT_FALSE(decode_es_message(b).has_value());
  b = sample_ess();
  b.push_back(0);
  EXPECT_FALSE(decode_ess_message(b, &arena).has_value());
  b = sample_service_frame();
  b.push_back(0);
  EXPECT_FALSE(decode_service_frame(b).has_value());
  b = sample_abd();
  b.push_back(0);
  EXPECT_FALSE(decode_abd_wire(b).has_value());
  b = sample_request();
  b.push_back(0);
  EXPECT_FALSE(decode_client_request(b).has_value());
  b = sample_response();
  b.push_back(0);
  EXPECT_FALSE(decode_client_response(b).has_value());
}

TEST(CodecHarden, RandomGarbageNeverCrashesAnyDecoder) {
  Rng rng(0xc0dec);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk;
    const std::size_t len = rng.below(96);
    junk.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      junk.push_back(static_cast<std::uint8_t>(rng.below(256)));
    // Half the iterations start with plausible framing so the fuzz reaches
    // past the cheap magic/version checks.
    if (rng.chance(0.5) && junk.size() >= 3) {
      junk[0] = kSvcMagic;
      junk[1] = kSvcWireVersion;
      junk[2] = 1 + static_cast<std::uint8_t>(rng.below(4));
    }
    feed_all(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace anon
