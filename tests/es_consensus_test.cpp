// Algorithm 2 — consensus in ES (Theorem 1).
#include "algo/es_consensus.hpp"

#include <gtest/gtest.h>

#include "algo/runner.hpp"

namespace anon {
namespace {

ConsensusConfig basic(std::size_t n, Round gst, std::uint64_t seed) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.n = n;
  cfg.env.seed = seed;
  cfg.env.stabilization = gst;
  cfg.initial = distinct_values(n);
  cfg.net.seed = seed;
  cfg.net.max_rounds = 5000;
  return cfg;
}

TEST(EsConsensus, RejectsBottomProposal) {
  EXPECT_THROW(EsConsensus{Value::Bottom()}, CheckFailure);
}

TEST(EsConsensus, SingleProcessDecidesOwnValue) {
  auto cfg = basic(1, 0, 1);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.all_correct_decided);
  EXPECT_TRUE(rep.agreement);
  EXPECT_TRUE(rep.validity);
  ASSERT_TRUE(rep.value.has_value());
  EXPECT_EQ(*rep.value, Value(100));
  // First decision is possible at round 4 (two warm-up rounds, propose,
  // confirm).
  EXPECT_EQ(rep.first_decision_round, 4u);
}

TEST(EsConsensus, SynchronousFromStartDecidesQuickly) {
  auto cfg = basic(5, 0, 3);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  EXPECT_TRUE(rep.agreement);
  EXPECT_TRUE(rep.validity);
  EXPECT_LE(rep.last_decision_round, 10u) << rep.to_string();
}

TEST(EsConsensus, DecidesMaxOfProposalsUnderFullSynchrony) {
  // With GST=0 everything is timely: the max initial value wins (the
  // algorithm adopts max(WRITTEN)).
  auto cfg = basic(4, 0, 5);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  ASSERT_TRUE(rep.value.has_value());
  EXPECT_EQ(*rep.value, Value(103));  // distinct_values(4) = 100..103
}

TEST(EsConsensus, IdenticalProposalsStayAnonymousAndDecide) {
  // All processes identical ⇒ all messages identical ⇒ singleton inboxes.
  // The run must still decide (and trivially agree).
  auto cfg = basic(6, 0, 9);
  cfg.initial = identical_values(6, 42);
  auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
  EXPECT_TRUE(rep.all_correct_decided);
  ASSERT_TRUE(rep.value.has_value());
  EXPECT_EQ(*rep.value, Value(42));
}

TEST(EsConsensus, LateGstStillTerminatesWithinSlackAfterGst) {
  // Decisions may also land BEFORE the GST (a randomized pre-GST prefix can
  // be benign — the paper only promises termination after stabilization);
  // what must hold is termination within a small slack after GST.
  auto late = run_consensus(ConsensusAlgo::kEs, basic(4, 40, 7));
  EXPECT_TRUE(late.all_correct_decided) << late.to_string();
  EXPECT_LE(late.last_decision_round, 40u + 8u) << late.to_string();
}

TEST(EsConsensus, BivalentMsScheduleBlocksDecisionForever) {
  // E8 — the executable witness for "no consensus in MS": under the
  // stationary two-camp schedule (alternating sources p0/p1, asymmetric
  // delivery) Algorithm 2 stays bivalent and never decides, while every
  // round has a timely source (a legal MS run — certified below).
  for (std::size_t n : {3u, 5u, 9u}) {
    std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
    for (auto v : BivalentMsModel::initial_values(n))
      autos.push_back(std::make_unique<EsConsensus>(v));
    BivalentMsModel delays(n);
    LockstepOptions opt;
    opt.max_rounds = 3000;
    LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
    auto res = net.run_until_all_correct_decided();
    EXPECT_FALSE(res.stopped) << "n=" << n;
    for (ProcId p = 0; p < n; ++p)
      EXPECT_FALSE(net.decision(p).has_value()) << "n=" << n << " p=" << p;
    // The two camps persist: p0 still estimates a=1, the rest b=2.
    EXPECT_EQ(dynamic_cast<const EsConsensus&>(net.process(0).automaton()).val(),
              Value(1));
    for (ProcId p = 1; p < n; ++p)
      EXPECT_EQ(dynamic_cast<const EsConsensus&>(net.process(p).automaton()).val(),
                Value(2));
    // …and the run was a certified MS run.
    auto env = check_environment(net.trace(), n, CrashPlan{}.correct(n));
    EXPECT_TRUE(env.ms_ok) << env.to_string();
  }
}

TEST(EsConsensus, ToleratesMinorityAndMajorityCrashes) {
  // Any number of crashes is tolerated (no quorum assumption!) as long as
  // one process survives.
  for (std::size_t f : {1u, 3u, 5u}) {
    auto cfg = basic(6, 12, 11);
    cfg.crashes = random_crashes(6, f, /*horizon=*/10, /*seed=*/17 + f);
    auto rep = run_consensus(ConsensusAlgo::kEs, cfg);
    EXPECT_TRUE(rep.all_correct_decided) << "f=" << f << " " << rep.to_string();
    EXPECT_TRUE(rep.agreement) << "f=" << f;
    EXPECT_TRUE(rep.validity) << "f=" << f;
  }
}

TEST(EsConsensus, EnvironmentTraceCertifiedEs) {
  // Run well past GST (deciders keep re-broadcasting their frozen message)
  // so the validator can see the all-timely suffix.
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (auto v : distinct_values(4))
    autos.push_back(std::make_unique<EsConsensus>(v));
  EnvParams env;
  env.kind = EnvKind::kES;
  env.n = 4;
  env.seed = 13;
  env.stabilization = 6;
  EnvDelayModel delays(env, CrashPlan{});
  LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{});
  net.run_rounds(30);
  EXPECT_TRUE(net.all_correct_decided());
  auto check = check_environment(net.trace(), 4, CrashPlan{}.correct(4));
  EXPECT_TRUE(check.ms_ok) << check.to_string();
  ASSERT_TRUE(check.es_from.has_value()) << check.to_string();
  EXPECT_LE(*check.es_from, 7u);
}

TEST(EsConsensus, FrozenAfterDecision) {
  EsConsensus a(Value(5));
  a.initialize();
  // Drive it alone (n=1 view): inboxes contain only its own messages.
  Inboxes<EsMessage> inboxes;
  EsMessage m = {};
  for (Round k = 1; k <= 6 && !a.decision(); ++k) {
    inboxes.advance_to(k);
    inboxes.add_local(m, k);
    m = a.compute(k, inboxes);
  }
  ASSERT_TRUE(a.decision().has_value());
  EXPECT_EQ(*a.decision(), Value(5));
  // Further computes return the frozen proposal and keep the decision.
  inboxes.advance_to(7);
  inboxes.add_local(m, 7);
  EsMessage frozen = a.compute(7, inboxes);
  EXPECT_EQ(frozen, (ValueSet{Value(5)}));
  EXPECT_EQ(*a.decision(), Value(5));
}

TEST(EsConsensus, MovingSourceAloneStillSafeAndLockstepConverges) {
  // Under the hostile moving-source schedule Algorithm 2 must stay safe.
  // Noteworthy (documented in EXPERIMENTS.md/E8): in LOCK-STEP executions
  // it even converges — the per-round source relays one value to everybody
  // and max-adoption collapses bivalence.  The FLP adversary that defeats
  // every MS algorithm needs unbounded round skew; the constructive
  // unbounded-delay family is StagedRevealDelaysDecisionLinearlyInN.
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (auto v : distinct_values(4))
    autos.push_back(std::make_unique<EsConsensus>(v));
  HostileMsModel delays(4, 21);
  LockstepOptions opt;
  opt.max_rounds = 2000;
  LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
  auto res = net.run_until_all_correct_decided();
  EXPECT_TRUE(res.stopped);
  std::optional<Value> v;
  for (ProcId p = 0; p < 4; ++p) {
    auto d = net.decision(p);
    ASSERT_TRUE(d.has_value());
    if (!v) v = d;
    EXPECT_EQ(*v, *d);  // agreement
  }
}

RunResult run_variant(EsConsensus::Variants variant, Round max_rounds,
                      std::vector<Round>* decision_rounds) {
  std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
  for (auto v : distinct_values(3))
    autos.push_back(std::make_unique<EsConsensus>(v, variant));
  SynchronousDelays delays;  // fully synchronous: the friendliest setting
  LockstepOptions opt;
  opt.max_rounds = max_rounds;
  LockstepNet<EsMessage> net(std::move(autos), delays, CrashPlan{}, opt);
  auto res = net.run_until_all_correct_decided();
  if (decision_rounds)
    for (ProcId p = 0; p < 3; ++p)
      decision_rounds->push_back(net.decision_round(p));
  return res;
}

TEST(EsConsensusVariant, PaperSemanticsDecideAtRoundSix) {
  // Fully synchronous, 3 distinct proposals: warm-up (r1–2), propose (r3),
  // flood (r4, adopt max), confirm (r5), decide (r6).
  std::vector<Round> rounds;
  auto res = run_variant(EsConsensus::Variants{}, 300, &rounds);
  ASSERT_TRUE(res.stopped);
  for (Round r : rounds) EXPECT_EQ(r, 6u);
}

TEST(EsConsensusVariant, EvenOnlyWrittenOldLagsTwoRounds) {
  // Listing-ambiguity regression (DESIGN.md): assigning WRITTENOLD only at
  // even rounds makes the decide test compare against WRITTEN^{k-2}; the
  // run still terminates but two rounds later than the Lemma-2-consistent
  // semantics.
  EsConsensus::Variants variant;
  variant.written_old_every_round = false;
  std::vector<Round> rounds;
  auto res = run_variant(variant, 300, &rounds);
  ASSERT_TRUE(res.stopped);
  for (Round r : rounds) EXPECT_EQ(r, 8u);
}

TEST(EsConsensusVariant, ResettingProposedEveryRoundLivelocks) {
  // The union messages built during odd rounds are what make values
  // *written* (appear in every message of an even round).  Resetting
  // PROPOSED every round replaces the unions with singletons; with
  // distinct proposals the intersection stays empty forever and nobody
  // ever adopts or decides — even under full synchrony.
  EsConsensus::Variants variant;
  variant.reset_proposed_every_round = true;
  auto res = run_variant(variant, 400, nullptr);
  EXPECT_FALSE(res.stopped);
}

}  // namespace
}  // namespace anon
