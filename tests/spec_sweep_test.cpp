// The sweep-based history checkers (check_weak_set_spec,
// check_regular_register) against the retained brute-force reference
// implementations (reference_checkers.hpp): identical verdicts on
//  * valid-by-construction histories,
//  * fully random histories (mostly invalid),
//  * valid histories with one engineered violation of each kind,
//  * histories produced by the real constructions (Alg 4 / Prop 2 / 3).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/reference_checkers.hpp"
#include "weakset/ws_from_mwmr.hpp"
#include "weakset/ws_from_swmr.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

// ---------- weak-set spec ----------

WsOpRecord ws_add(Value v, std::uint64_t s, std::uint64_t e, std::size_t p) {
  WsOpRecord r;
  r.kind = WsOpRecord::Kind::kAdd;
  r.value = v;
  r.start = s;
  r.end = e;
  r.process = p;
  return r;
}

WsOpRecord ws_get(ValueSet res, std::uint64_t s, std::uint64_t e,
                  std::size_t p) {
  WsOpRecord r;
  r.kind = WsOpRecord::Kind::kGet;
  r.result = std::move(res);
  r.start = s;
  r.end = e;
  r.process = p;
  return r;
}

// A valid-by-construction history: each get returns every value whose add
// completed before the get started, plus a random subset of the values
// whose add started before the get ended.
std::vector<WsOpRecord> valid_ws_history(Rng& rng, std::size_t n_ops,
                                         std::int64_t domain) {
  std::vector<WsOpRecord> adds;
  std::vector<WsOpRecord> ops;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const std::uint64_t start = rng.below(4 * n_ops);
    if (rng.chance(0.5)) {
      const Value v(static_cast<std::int64_t>(rng.below(
          static_cast<std::uint64_t>(domain))));
      auto rec = ws_add(v, start, start + 1 + rng.below(12), i % 7);
      adds.push_back(rec);
      ops.push_back(rec);
    } else {
      ops.push_back(ws_get({}, start, start + rng.below(6), i % 7));
    }
  }
  for (WsOpRecord& op : ops) {
    if (op.kind != WsOpRecord::Kind::kGet) continue;
    for (const WsOpRecord& add : adds) {
      bool include = false;
      if (add.end < op.start) include = true;               // must
      else if (add.start <= op.end && rng.chance(0.5)) include = true;  // may
      if (include) op.result.insert(add.value);
    }
  }
  return ops;
}

class WsSweepAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WsSweepAgreement, ValidHistoriesAccepted) {
  Rng rng(GetParam());
  for (int it = 0; it < 20; ++it) {
    auto ops = valid_ws_history(rng, 40, 9);
    EXPECT_TRUE(ref_check_weak_set_spec(ops).ok);
    EXPECT_TRUE(check_weak_set_spec(ops).ok);
  }
}

TEST_P(WsSweepAgreement, RandomHistoriesAgree) {
  // Fully random results: usually invalid; the two checkers must agree on
  // every single verdict either way.
  Rng rng(GetParam() ^ 0xabcdef);
  for (int it = 0; it < 40; ++it) {
    std::vector<WsOpRecord> ops;
    const std::size_t n_ops = 2 + rng.below(30);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const std::uint64_t start = rng.below(60);
      if (rng.chance(0.5)) {
        ops.push_back(ws_add(Value(static_cast<std::int64_t>(rng.below(5))),
                             start, start + rng.below(10), i % 4));
      } else {
        ValueSet res;
        const std::size_t sz = rng.below(4);
        for (std::size_t j = 0; j < sz; ++j)
          res.insert(Value(static_cast<std::int64_t>(rng.below(6))));
        ops.push_back(ws_get(std::move(res), start, start + rng.below(6),
                             i % 4));
      }
    }
    const bool ref_ok = ref_check_weak_set_spec(ops).ok;
    const bool new_ok = check_weak_set_spec(ops).ok;
    EXPECT_EQ(ref_ok, new_ok);
  }
}

TEST_P(WsSweepAgreement, EngineeredViolationsBothRejected) {
  Rng rng(GetParam() * 31 + 5);
  int missed = 0, thin_air = 0;
  for (int it = 0; it < 60 && (missed < 5 || thin_air < 5); ++it) {
    auto ops = valid_ws_history(rng, 40, 9);
    // Pick a mutation: drop a must-see value from a get, or inject a value
    // nobody ever added.
    std::vector<std::size_t> gets;
    for (std::size_t i = 0; i < ops.size(); ++i)
      if (ops[i].kind == WsOpRecord::Kind::kGet) gets.push_back(i);
    if (gets.empty()) continue;
    WsOpRecord& victim = ops[gets[rng.below(gets.size())]];
    if (rng.chance(0.5)) {
      // Missed completed add: remove a value required by condition (1).
      std::optional<Value> must;
      for (const WsOpRecord& add : ops)
        if (add.kind == WsOpRecord::Kind::kAdd && add.end < victim.start)
          must = add.value;
      if (!must) continue;
      victim.result.erase(*must);
      ++missed;
    } else {
      victim.result.insert(Value(424242));  // never added: thin air
      ++thin_air;
    }
    auto ref = ref_check_weak_set_spec(ops);
    auto swept = check_weak_set_spec(ops);
    EXPECT_FALSE(ref.ok);
    EXPECT_FALSE(swept.ok);
  }
  EXPECT_GE(missed, 5);
  EXPECT_GE(thin_air, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsSweepAgreement,
                         ::testing::Values(1, 7, 42, 1234, 99991));

TEST(WsSweep, ReportsSameOffendingGetAsReference) {
  // Deterministic construction with two violating gets: both checkers must
  // flag the FIRST one in record order (the reference's scan order).
  std::vector<WsOpRecord> ops{
      ws_add(Value(1), 0, 5, 0),
      ws_get({}, 10, 11, 1),               // misses value 1
      ws_get({Value(9)}, 20, 21, 2),       // also thin-air value 9
  };
  auto ref = ref_check_weak_set_spec(ops);
  auto swept = check_weak_set_spec(ops);
  ASSERT_FALSE(ref.ok);
  ASSERT_FALSE(swept.ok);
  EXPECT_NE(ref.violation.find("get@[10,11)"), std::string::npos);
  EXPECT_NE(swept.violation.find("get@[10,11)"), std::string::npos);
  EXPECT_NE(swept.violation.find("missed"), std::string::npos);
}

// ---------- regular-register spec ----------

RegOpRecord reg_write(Value v, std::uint64_t s, std::uint64_t e,
                      std::size_t p = 0) {
  return {RegOpRecord::Kind::kWrite, v, s, e, p};
}
RegOpRecord reg_read(std::optional<Value> v, std::uint64_t s, std::uint64_t e,
                     std::size_t p = 1) {
  return {RegOpRecord::Kind::kRead, v, s, e, p};
}

class RegSweepAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegSweepAgreement, RandomHistoriesAgree) {
  Rng rng(GetParam());
  for (int it = 0; it < 60; ++it) {
    std::vector<RegOpRecord> ops;
    const std::size_t n_ops = 2 + rng.below(25);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const std::uint64_t start = rng.below(50);
      if (rng.chance(0.45)) {
        ops.push_back(reg_write(
            Value(static_cast<std::int64_t>(rng.below(6))), start,
            start + rng.below(10), i % 3));
      } else {
        std::optional<Value> v;
        if (!rng.chance(0.2))
          v = Value(static_cast<std::int64_t>(rng.below(7)));
        ops.push_back(reg_read(v, start, start + rng.below(6), i % 3));
      }
    }
    const bool ref_ok = ref_check_regular_register(ops).ok;
    const bool new_ok = check_regular_register(ops).ok;
    EXPECT_EQ(ref_ok, new_ok);
  }
}

TEST(RegSweep, DirectedCasesMatchReference) {
  using Ops = std::vector<RegOpRecord>;
  const Ops cases[] = {
      // Sequential read sees last write.
      {reg_write(Value(1), 0, 2), reg_read(Value(1), 5, 6)},
      // Stale value after a superseding write.
      {reg_write(Value(1), 0, 2), reg_write(Value(2), 3, 4),
       reg_read(Value(1), 7, 8)},
      // Concurrent write: either value fine.
      {reg_write(Value(1), 0, 2), reg_write(Value(2), 5, 9),
       reg_read(Value(2), 6, 7)},
      // ⊥ before any write completed; ⊥ after one completed.
      {reg_read(std::nullopt, 0, 1)},
      {reg_write(Value(1), 0, 2), reg_read(std::nullopt, 5, 6)},
      // A write that never completes (crashed writer, horizon end) stays
      // concurrent with every later read.
      {reg_write(Value(3), 0, 1000), reg_read(Value(3), 5, 6),
       reg_read(std::nullopt, 7, 8)},
      // Two superseding generations: only the newest non-superseded write
      // (plus concurrents) is valid.
      {reg_write(Value(1), 0, 1), reg_write(Value(2), 2, 3),
       reg_write(Value(3), 4, 5), reg_read(Value(3), 8, 9)},
      {reg_write(Value(1), 0, 1), reg_write(Value(2), 2, 3),
       reg_write(Value(3), 4, 5), reg_read(Value(2), 8, 9)},
  };
  for (const Ops& ops : cases) {
    EXPECT_EQ(ref_check_regular_register(ops).ok,
              check_regular_register(ops).ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegSweepAgreement,
                         ::testing::Values(2, 11, 23, 4242, 777));

// ---------- real construction histories ----------

TEST(SweepOnRealHistories, Alg4AndPropConstructionsCertify) {
  // Histories out of the real constructions: both checkers accept, i.e.
  // the E4/E7 certification columns are unchanged by the rewrite.
  {
    EnvParams env;
    env.kind = EnvKind::kMS;
    env.n = 5;
    env.seed = 42;
    std::vector<WsScriptOp> script;
    for (int i = 0; i < 10; ++i) {
      script.push_back({static_cast<Round>(2 + 3 * i),
                        static_cast<std::size_t>(i % 5), true, Value(100 + i)});
      script.push_back({static_cast<Round>(4 + 3 * i),
                        static_cast<std::size_t>((i + 2) % 5), false, Value()});
    }
    auto run = run_ms_weak_set(env, CrashPlan{}, script);
    EXPECT_TRUE(ref_check_weak_set_spec(run.records).ok);
    EXPECT_TRUE(check_weak_set_spec(run.records).ok);
  }
  {
    std::vector<ShmWsScriptOp> script;
    for (std::uint64_t i = 0; i < 25; ++i) {
      script.push_back({i * 2, i % 4, true,
                        Value(static_cast<std::int64_t>(i % 11))});
      script.push_back({i * 2 + 1, (i + 1) % 4, false, Value()});
    }
    auto records = run_ws_from_swmr(4, script, 7);
    EXPECT_TRUE(ref_check_weak_set_spec(records).ok);
    EXPECT_TRUE(check_weak_set_spec(records).ok);
  }
  {
    std::vector<Value> domain;
    for (int i = 0; i < 8; ++i) domain.push_back(Value(i));
    std::vector<MwmrWsScriptOp> script;
    for (std::uint64_t i = 0; i < 25; ++i) {
      script.push_back({i * 2, i % 5, true,
                        Value(static_cast<std::int64_t>(i % 8))});
      script.push_back({i * 2 + 1, (i + 2) % 5, false, Value()});
    }
    auto records = run_ws_from_mwmr(domain, script, 3);
    EXPECT_TRUE(ref_check_weak_set_spec(records).ok);
    EXPECT_TRUE(check_weak_set_spec(records).ok);
  }
}

}  // namespace
}  // namespace anon
