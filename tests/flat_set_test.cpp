// FlatSet/FlatValueSet property tests: the flat sorted small-buffer set
// must agree operation-for-operation with the previous `std::set<Value>`
// representation on randomized inputs (PR 2 tentpole regression).
#include "common/flat_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/value.hpp"

namespace anon {
namespace {

using StdSet = std::set<Value>;

std::vector<Value> to_vector(const ValueSet& s) {
  return std::vector<Value>(s.begin(), s.end());
}
std::vector<Value> to_vector(const StdSet& s) {
  return std::vector<Value>(s.begin(), s.end());
}

// Reference implementations — the pre-refactor set algebra, verbatim.
StdSet ref_union(const StdSet& a, const StdSet& b) {
  StdSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}
StdSet ref_intersect(const StdSet& a, const StdSet& b) {
  StdSet out;
  for (const Value& v : a)
    if (b.count(v) > 0) out.insert(v);
  return out;
}
bool ref_subset(const StdSet& s, const StdSet& allowed) {
  for (const Value& v : s)
    if (allowed.count(v) == 0) return false;
  return true;
}

Value random_value(Rng& rng) {
  if (rng.chance(0.1)) return Value::Bottom();
  // A narrow range provokes collisions, duplicates, and overlaps.
  return Value(rng.range(-8, 8));
}

TEST(FlatSet, RandomizedInsertEraseAgreesWithStdSet) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    ValueSet flat;
    StdSet ref;
    for (int op = 0; op < 60; ++op) {
      const Value v = random_value(rng);
      if (rng.chance(0.25)) {
        EXPECT_EQ(flat.erase(v), ref.erase(v));
      } else {
        const bool inserted_flat = flat.insert(v).second;
        const bool inserted_ref = ref.insert(v).second;
        EXPECT_EQ(inserted_flat, inserted_ref);
      }
      ASSERT_EQ(flat.size(), ref.size());
      EXPECT_EQ(to_vector(flat), to_vector(ref));  // same sorted order
      EXPECT_EQ(flat.count(v), ref.count(v));
      EXPECT_EQ(flat.empty(), ref.empty());
    }
  }
}

TEST(FlatSet, RandomizedAlgebraAgreesWithStdSet) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    ValueSet fa, fb;
    StdSet ra, rb;
    const int na = static_cast<int>(rng.below(10));
    const int nb = static_cast<int>(rng.below(10));
    for (int i = 0; i < na; ++i) {
      const Value v = random_value(rng);
      fa.insert(v);
      ra.insert(v);
    }
    for (int i = 0; i < nb; ++i) {
      const Value v = random_value(rng);
      fb.insert(v);
      rb.insert(v);
    }
    EXPECT_EQ(to_vector(set_union(fa, fb)), to_vector(ref_union(ra, rb)));
    EXPECT_EQ(to_vector(set_intersect(fa, fb)),
              to_vector(ref_intersect(ra, rb)));
    EXPECT_EQ(subset_of(fa, fb), ref_subset(ra, rb));
    EXPECT_EQ(subset_of(fa, set_union(fa, fb)), true);
    {
      StdSet rm = ra;
      rm.erase(Value::Bottom());
      EXPECT_EQ(to_vector(minus_bottom(fa)), to_vector(rm));
    }
    // In-place variants agree with the out-of-place ones.
    ValueSet u = fa;
    set_union_inplace(u, fb);
    EXPECT_EQ(u, set_union(fa, fb));
    ValueSet x = fa;
    set_intersect_inplace(x, fb);
    EXPECT_EQ(x, set_intersect(fa, fb));
    // Ordering/equality agree with the reference container semantics.
    EXPECT_EQ(fa == fb, ra == rb);
    EXPECT_EQ(fa < fb, ra < rb);
    // Equal sets hash equal; the digest is content-only.
    if (fa == fb) {
      EXPECT_EQ(stable_hash(fa), stable_hash(fb));
    }
  }
}

TEST(FlatSet, GrowsPastInlineCapacityAndBack) {
  ValueSet s;
  for (int i = 0; i < 100; ++i) s.insert(Value(i));
  EXPECT_EQ(s.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.count(Value(i)), 1u);
  EXPECT_EQ(s.rbegin()->get(), 99);
  for (int i = 0; i < 100; i += 2) s.erase(Value(i));
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(s.count(Value(4)), 0u);
  EXPECT_EQ(s.count(Value(5)), 1u);
  // Copy/move preserve content across the heap/inline boundary.
  ValueSet copy = s;
  EXPECT_EQ(copy, s);
  ValueSet moved = std::move(copy);
  EXPECT_EQ(moved, s);
  ValueSet small{Value(1), Value(2)};
  ValueSet small_copy = small;
  EXPECT_EQ(small_copy, small);
  small_copy = s;  // inline → heap assignment
  EXPECT_EQ(small_copy, s);
  s = small;  // heap → inline-sized assignment
  EXPECT_EQ(s, small);
}

TEST(FlatSet, ClearKeepsNoElements) {
  ValueSet s{Value(1), Value(2), Value(3)};
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.begin(), s.end());
  s.insert(Value(9));
  EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace anon
