// Semantics of the extended GIRAF framework (Algorithm 1): set-valued
// inboxes (anonymity!), round progression, batch relaying, late delivery.
#include "giraf/process.hpp"

#include <gtest/gtest.h>

#include "giraf/trace.hpp"

#include <memory>

#include "common/value.hpp"

namespace anon {
namespace {

// A trivial automaton over ValueSet messages: proposes {seed} initially and
// echoes the union of everything received each round.
class EchoUnion final : public Automaton<ValueSet> {
 public:
  explicit EchoUnion(std::int64_t seed) : seed_(seed) {}
  ValueSet initialize() override { return ValueSet{Value(seed_)}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k))
      out.insert(m.begin(), m.end());
    last_inbox_size_ = inbox_at(inboxes, k).size();
    return out;
  }
  std::size_t last_inbox_size_ = 0;
  std::int64_t seed_;
};

TEST(Giraf, RoundZeroRunsInitialize) {
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(7));
  EXPECT_EQ(p.round(), 0u);
  auto out = p.end_of_round();
  EXPECT_EQ(out.round, 1u);
  EXPECT_EQ(p.round(), 1u);
  // The round-1 batch contains exactly the own initialize() message.
  ASSERT_EQ(out.batch.size(), 1u);
  EXPECT_EQ(*out.batch.begin(), ValueSet{Value(7)});
}

TEST(Giraf, IdenticalMessagesMergeInSetInbox) {
  // Anonymity: two processes sending the same message are indistinguishable
  // — the inbox is a set, so the receiver sees ONE message.
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(1));
  p.end_of_round();  // enter round 1
  p.receive({ValueSet{Value(5)}}, 1);
  p.receive({ValueSet{Value(5)}}, 1);  // identical → merges
  p.receive({ValueSet{Value(6)}}, 1);
  EXPECT_EQ(p.inbox(1).size(), 3u);  // own {1}, {5}, {6}
}

TEST(Giraf, OwnMessageAlwaysInInbox) {
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(3));
  p.end_of_round();
  EXPECT_EQ(p.inbox(1).count(ValueSet{Value(3)}), 1u);
}

TEST(Giraf, ComputeSeesRoundInbox) {
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(1));
  p.end_of_round();
  p.receive({ValueSet{Value(2)}}, 1);
  auto out = p.end_of_round();  // compute(1) runs
  EXPECT_EQ(out.round, 2u);
  // Round-2 message = union {1,2}; batch contains it.
  EXPECT_EQ(out.batch.count(ValueSet{Value(1), Value(2)}), 1u);
}

TEST(Giraf, BatchRelaysReceivedRoundMessages) {
  // A process that already received round-k messages from others includes
  // them in its own round-k send (Algorithm 1 line 12 sends M_i[k_i]) —
  // the relay that makes unsynchronized rounds work.
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(1));
  p.end_of_round();  // now in round 1
  p.receive({ValueSet{Value(9)}}, 2);  // early round-2 message from a peer
  auto out = p.end_of_round();         // enter round 2
  EXPECT_EQ(out.round, 2u);
  EXPECT_EQ(out.batch.size(), 2u);  // own round-2 message + relayed {9}
  EXPECT_EQ(out.batch.count(ValueSet{Value(9)}), 1u);
}

TEST(Giraf, LateDeliveryLandsInOldRoundSlot) {
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(1));
  p.end_of_round();
  p.end_of_round();  // now in round 2
  p.receive({ValueSet{Value(4)}}, 1);  // late round-1 message
  EXPECT_EQ(p.inbox(1).count(ValueSet{Value(4)}), 1u);
  EXPECT_EQ(p.inbox(2).count(ValueSet{Value(4)}), 0u);
}

TEST(Giraf, WindowedInboxKeepsExactlyTwoReadableRounds) {
  GirafProcess<ValueSet> p(std::make_unique<EchoUnion>(1));
  p.end_of_round();
  p.end_of_round();
  p.end_of_round();  // round 3: readable window is {2, 3}
  EXPECT_FALSE(p.inbox(3).empty());
  EXPECT_FALSE(p.inbox(2).empty());  // k-1 still readable
  EXPECT_THROW(p.inbox(1), CheckFailure);  // dropped by the window
  EXPECT_THROW(p.inbox(4), CheckFailure);  // next round: write-only
  // Far-late messages clamp into the k-1 slot (they are only ever read by
  // the weak-set's all-rounds union, which treats rounds uniformly).
  p.receive({ValueSet{Value(8)}}, 1);
  EXPECT_EQ(p.inbox(2).count(ValueSet{Value(8)}), 1u);
}

// An automaton that decides and must keep its decision stable.
class DecideOnce final : public Automaton<ValueSet> {
 public:
  ValueSet initialize() override { return {}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>&) override {
    if (k >= 2) decision_ = Value(1);
    return {};
  }
  std::optional<Value> decision() const override { return decision_; }
  std::optional<Value> decision_;
};

TEST(Giraf, DecisionIsObservable) {
  GirafProcess<ValueSet> p(std::make_unique<DecideOnce>());
  p.end_of_round();
  p.end_of_round();
  EXPECT_FALSE(p.decision().has_value());
  p.end_of_round();  // compute(2) decides
  ASSERT_TRUE(p.decision().has_value());
  EXPECT_EQ(*p.decision(), Value(1));
}

// A buggy automaton that flips its decision; the framework must catch it.
class FlipFlop final : public Automaton<ValueSet> {
 public:
  ValueSet initialize() override { return {}; }
  ValueSet compute(Round k, const Inboxes<ValueSet>&) override {
    decision_ = Value(static_cast<std::int64_t>(k));
    return {};
  }
  std::optional<Value> decision() const override { return decision_; }
  std::optional<Value> decision_;
};

TEST(Giraf, ChangingDecisionIsRejected) {
  GirafProcess<ValueSet> p(std::make_unique<FlipFlop>());
  p.end_of_round();
  p.end_of_round();  // decides 1
  EXPECT_THROW(p.end_of_round(), CheckFailure);  // tries to decide 2
}

TEST(Trace, SummaryAndMaxRound) {
  Trace t;
  t.record_end_of_round(0, 1, 1);
  t.record_end_of_round(0, 2, 2);
  t.record_end_of_round(1, 1, 1);
  t.record_delivery(0, 1, 1, 1, 1);
  EXPECT_EQ(t.max_round(), 2u);
  EXPECT_EQ(t.rounds_completed(0, 2), 2u);
  EXPECT_EQ(t.rounds_completed(1, 2), 1u);
  EXPECT_NE(t.summary().find("max_round=2"), std::string::npos);
}

}  // namespace
}  // namespace anon
