// The Ω baseline (IDs + accusation counting) and Ω-oracle consensus.
#include "baseline/omega_consensus.hpp"

#include <gtest/gtest.h>

#include "env/generate.hpp"
#include "env/validate.hpp"

namespace anon {
namespace {

TEST(OmegaTracker, LeaderDefaultsToSelf) {
  OmegaTracker t(3, 2);
  EXPECT_EQ(t.leader(), 3u);
}

TEST(OmegaTracker, SilentProcessAccumulatesAccusations) {
  OmegaTracker t(0, 2);
  t.observe_round(1, {0, 1});
  for (Round k = 2; k <= 10; ++k) t.observe_round(k, {0});  // p1 silent
  EXPECT_GT(t.accusations().at(1), 0u);
  EXPECT_EQ(t.accusations().at(0), 0u);
  EXPECT_EQ(t.leader(), 0u);
}

TEST(OmegaTracker, TimelyProcessStaysUnaccused) {
  OmegaTracker t(1, 2);
  for (Round k = 1; k <= 20; ++k) t.observe_round(k, {0, 1});
  EXPECT_EQ(t.accusations().at(0), 0u);
  EXPECT_EQ(t.leader(), 0u);  // tie on 0 accusations → min id
}

TEST(OmegaTracker, MergeTakesMax) {
  OmegaTracker t(0, 2);
  t.observe_round(1, {0, 1});
  t.merge({{1, 7}});
  EXPECT_EQ(t.accusations().at(1), 7u);
  t.merge({{1, 3}});  // lower: ignored
  EXPECT_EQ(t.accusations().at(1), 7u);
}

std::vector<std::unique_ptr<Automaton<OmegaMessage>>> omega_autos(
    std::size_t n) {
  std::vector<std::unique_ptr<Automaton<OmegaMessage>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<OmegaConsensus>(
        Value(100 + static_cast<std::int64_t>(i)), i));
  return autos;
}

class OmegaConsensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmegaConsensusSweep, DecidesInEss) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 5;
  env.seed = GetParam();
  env.stabilization = 8;
  EnvDelayModel delays(env, CrashPlan{});
  LockstepOptions opt;
  opt.max_rounds = 20000;
  LockstepNet<OmegaMessage> net(omega_autos(5), delays, CrashPlan{}, opt);
  auto res = net.run_until_all_correct_decided();
  ASSERT_TRUE(res.stopped);
  std::optional<Value> v;
  for (ProcId p = 0; p < 5; ++p) {
    auto d = net.decision(p);
    ASSERT_TRUE(d.has_value());
    if (!v) v = d;
    EXPECT_EQ(*v, *d);
    EXPECT_GE(d->get(), 100);
    EXPECT_LE(d->get(), 104);
  }
}

TEST_P(OmegaConsensusSweep, DecidesWithCrashes) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 6;
  env.seed = GetParam() * 3 + 1;
  env.stabilization = 10;
  CrashPlan crashes;
  crashes.crash_at(0, 4);
  crashes.crash_at(5, 9);
  EnvDelayModel delays(env, crashes);
  LockstepOptions opt;
  opt.max_rounds = 20000;
  LockstepNet<OmegaMessage> net(omega_autos(6), delays, crashes, opt);
  auto res = net.run_until_all_correct_decided();
  EXPECT_TRUE(res.stopped);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaConsensusSweep,
                         ::testing::Values(2, 5, 19, 101, 555));

TEST(OmegaConsensus, LeaderStabilizesOnTheSource) {
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 4;
  env.seed = 9;
  env.stabilization = 5;
  EnvDelayModel delays(env, CrashPlan{});
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.max_rounds = 400;
  LockstepNet<OmegaMessage> net(omega_autos(4), delays, CrashPlan{}, opt);

  // Track the last round where any process disagreed with `src` as leader.
  Round last_disagreement = 0;
  net.run([&](const LockstepNet<OmegaMessage>& n) {
    if (n.all_correct_decided()) return n.round() >= 100;
    for (ProcId p = 0; p < n.n(); ++p) {
      const auto& a =
          dynamic_cast<const OmegaConsensus&>(n.process(p).automaton());
      if (!a.decision().has_value() && a.current_leader() != src)
        last_disagreement = n.round();
    }
    return false;
  });
  // Well before the end, everyone's Ω estimate settled on the source (or
  // they decided, which is just as good).
  EXPECT_LT(last_disagreement, 100u);
}

TEST(OmegaConsensus, MessageSizeStaysBounded) {
  // The point of the baseline: with IDs, state does not grow with rounds
  // (contrast: Algorithm 3's histories/counters — see E10).
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 4;
  env.seed = 21;
  env.stabilization = 0;
  EnvDelayModel delays(env, CrashPlan{});
  LockstepOptions opt;
  opt.max_rounds = 500;
  LockstepNet<OmegaMessage> net(omega_autos(4), delays, CrashPlan{}, opt);
  net.run_rounds(400);
  for (ProcId p = 0; p < 4; ++p) {
    const auto& a =
        dynamic_cast<const OmegaConsensus&>(net.process(p).automaton());
    OmegaMessage m{ValueSet{a.val()}, p, {}};
    EXPECT_LE(MessageSizeOf<OmegaMessage>::size(m), 200u);
  }
}

}  // namespace
}  // namespace anon
