#include "common/history.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace anon {
namespace {

class HistoryTest : public ::testing::Test {
 protected:
  HistoryArena arena;
  Value v(std::int64_t x) { return Value(x); }
};

TEST_F(HistoryTest, EmptyHistory) {
  History h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.length(), 0u);
  EXPECT_EQ(h.digest(), 0u);
}

TEST_F(HistoryTest, SingletonAndAppend) {
  History h1 = arena.singleton(v(7));
  EXPECT_FALSE(h1.empty());
  EXPECT_EQ(h1.length(), 1u);
  EXPECT_EQ(h1.last(), v(7));

  History h2 = arena.append(h1, v(8));
  EXPECT_EQ(h2.length(), 2u);
  EXPECT_EQ(h2.last(), v(8));
  EXPECT_EQ(h2.parent(), h1);
}

TEST_F(HistoryTest, InterningGivesPointerEquality) {
  History a = arena.of({v(1), v(2), v(3)});
  History b = arena.of({v(1), v(2), v(3)});
  EXPECT_EQ(a, b);  // O(1) pointer compare under the hood
  History c = arena.of({v(1), v(2), v(4)});
  EXPECT_FALSE(a == c);
}

TEST_F(HistoryTest, StructuralSharing) {
  History a = arena.of({v(1), v(2)});
  std::size_t before = arena.interned_nodes();
  History b = arena.of({v(1), v(2)});  // fully shared
  EXPECT_EQ(arena.interned_nodes(), before);
  arena.append(a, v(9));  // one new node
  EXPECT_EQ(arena.interned_nodes(), before + 1);
  (void)b;
}

TEST_F(HistoryTest, PrefixOfIsReflexiveAndCorrect) {
  History a = arena.of({v(1), v(2)});
  History b = arena.of({v(1), v(2), v(3)});
  History c = arena.of({v(1), v(9), v(3)});

  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_FALSE(b.is_prefix_of(a));
  EXPECT_FALSE(a.is_prefix_of(c));  // diverged at position 2
  EXPECT_FALSE(c.is_prefix_of(b));
  EXPECT_TRUE(History().is_prefix_of(a));  // empty is a prefix of all
}

TEST_F(HistoryTest, DivergedHistoriesNeverReconverge) {
  // Two processes with different round-k values have different histories
  // forever, even if they propose identically afterwards (§4: "their
  // histories diverge and will never become identical again").
  History a = arena.of({v(1), v(2)});
  History b = arena.of({v(1), v(3)});
  for (int i = 0; i < 50; ++i) {
    a = arena.append(a, v(7));
    b = arena.append(b, v(7));
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a.is_prefix_of(b));
    EXPECT_FALSE(b.is_prefix_of(a));
  }
}

TEST_F(HistoryTest, PrefixExtraction) {
  History h = arena.of({v(1), v(2), v(3), v(4)});
  EXPECT_EQ(h.prefix(4), h);
  EXPECT_EQ(h.prefix(2), arena.of({v(1), v(2)}));
  EXPECT_EQ(h.prefix(1), arena.singleton(v(1)));
}

TEST_F(HistoryTest, ValuesRoundTrip) {
  std::vector<Value> seq{v(5), v(4), v(3)};
  History h = arena.of(seq);
  EXPECT_EQ(h.values(), seq);
}

TEST_F(HistoryTest, OrderingIsStrictWeakAndLengthFirst) {
  History a = arena.of({v(9)});
  History b = arena.of({v(1), v(1)});
  EXPECT_TRUE(a < b);  // shorter first
  EXPECT_FALSE(b < a);
  History c = arena.of({v(1), v(2)});
  // Same length: some deterministic order, antisymmetric.
  EXPECT_NE(b < c, c < b);
  EXPECT_FALSE(b < b);
}

TEST_F(HistoryTest, DigestsDifferForDifferentSequences) {
  EXPECT_NE(arena.of({v(1), v(2)}).digest(), arena.of({v(2), v(1)}).digest());
  EXPECT_NE(arena.of({v(1)}).digest(), arena.of({v(1), v(1)}).digest());
}

TEST_F(HistoryTest, ToString) {
  EXPECT_EQ(arena.of({v(1), v(2)}).to_string(), "[1,2]");
  EXPECT_EQ(History().to_string(), "[]");
}

TEST_F(HistoryTest, LongChainsArePracticable) {
  History h = arena.singleton(v(0));
  for (int i = 1; i < 5000; ++i) h = arena.append(h, v(i % 3));
  EXPECT_EQ(h.length(), 5000u);
  History p = h.prefix(1);
  EXPECT_EQ(p, arena.singleton(v(0)));
  EXPECT_TRUE(p.is_prefix_of(h));
}

}  // namespace
}  // namespace anon
