// Algorithm 3 — consensus in ESS via pseudo leader election (Theorem 2).
#include "algo/ess_consensus.hpp"

#include <gtest/gtest.h>

#include "algo/runner.hpp"

namespace anon {
namespace {

ConsensusConfig basic(std::size_t n, Round stab, std::uint64_t seed) {
  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kESS;
  cfg.env.n = n;
  cfg.env.seed = seed;
  cfg.env.stabilization = stab;
  cfg.initial = distinct_values(n);
  cfg.net.seed = seed;
  cfg.net.max_rounds = 20000;
  return cfg;
}

TEST(EssConsensus, RejectsBottomProposal) {
  HistoryArena arena;
  EXPECT_THROW(EssConsensus(Value::Bottom(), &arena), CheckFailure);
}

TEST(EssConsensus, SingleProcessDecides) {
  auto rep = run_consensus(ConsensusAlgo::kEss, basic(1, 0, 1));
  EXPECT_TRUE(rep.all_correct_decided);
  ASSERT_TRUE(rep.value.has_value());
  EXPECT_EQ(*rep.value, Value(100));
}

TEST(EssConsensus, StableSourceFromStartDecides) {
  auto rep = run_consensus(ConsensusAlgo::kEss, basic(5, 0, 3));
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  EXPECT_TRUE(rep.agreement);
  EXPECT_TRUE(rep.validity);
}

TEST(EssConsensus, IdenticalProposalsDecide) {
  // Fully symmetric system: histories never diverge, everyone stays a
  // leader, and the common value is decided.
  auto cfg = basic(6, 0, 9);
  cfg.initial = identical_values(6, 7);
  auto rep = run_consensus(ConsensusAlgo::kEss, cfg);
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  ASSERT_TRUE(rep.value.has_value());
  EXPECT_EQ(*rep.value, Value(7));
}

TEST(EssConsensus, LateStabilizationStillDecides) {
  // (Decision may legitimately land before the stabilization round when the
  // randomized prefix happens to be benign; what the theorem promises is
  // termination, which must hold.)
  auto rep = run_consensus(ConsensusAlgo::kEss, basic(4, 30, 11));
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
  EXPECT_TRUE(rep.agreement);
  EXPECT_TRUE(rep.validity);
}

TEST(EssConsensus, ToleratesCrashes) {
  for (std::size_t f : {1u, 2u, 4u}) {
    auto cfg = basic(6, 15, 13 + f);
    cfg.crashes = random_crashes(6, f, /*horizon=*/12, /*seed=*/29 + f);
    auto rep = run_consensus(ConsensusAlgo::kEss, cfg);
    EXPECT_TRUE(rep.all_correct_decided) << "f=" << f << " " << rep.to_string();
    EXPECT_TRUE(rep.agreement) << "f=" << f;
    EXPECT_TRUE(rep.validity) << "f=" << f;
  }
}

TEST(EssConsensus, TraceCertifiedEss) {
  auto rep = run_consensus(ConsensusAlgo::kEss, basic(4, 10, 17));
  EXPECT_TRUE(rep.env_check.ms_ok) << rep.env_check.to_string();
  ASSERT_TRUE(rep.env_check.ess_from.has_value());
  EXPECT_LE(*rep.env_check.ess_from, 11u);
}

TEST(EssConsensus, WorksInEsEnvironmentToo) {
  // ES ⊆ ESS in guarantee terms is false in general (different promises),
  // but our ES generator keeps one timely source per round and after GST
  // everyone is timely — in particular the same process is a source
  // forever, so Algorithm 3 terminates there as well.
  auto cfg = basic(4, 8, 19);
  cfg.env.kind = EnvKind::kES;
  auto rep = run_consensus(ConsensusAlgo::kEss, cfg);
  EXPECT_TRUE(rep.all_correct_decided) << rep.to_string();
}

// --- Leader-election mechanics (Lemmas 4–6), observed directly. ---

TEST(EssLeaders, InitiallyEveryoneIsALeader) {
  HistoryArena arena;
  EssConsensus a(Value(1), &arena);
  a.initialize();
  EXPECT_TRUE(a.considers_self_leader());  // empty counters: 0 >= 0
}

TEST(EssLeaders, EventuallyOnlySourceHistoriesLeadAndConverge) {
  // Observe the pseudo-leader election in steady state (decisions disabled
  // so they don't freeze the run): after stabilization + slack, every
  // process that considers itself a leader carries the SAME history — the
  // guarantee that makes the leaders indistinguishable from one classical
  // leader — and the stable source is among them.
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 5;
  env.seed = 23;
  env.stabilization = 6;
  HistoryArena arena;
  EssConsensus::Options no_decide;
  no_decide.decide = false;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (auto v : distinct_values(5))
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, no_decide));
  EnvDelayModel delays(env, CrashPlan{});
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.max_rounds = 200;
  LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);

  Round converged_rounds = 0;
  net.run([&](const LockstepNet<EssMessage>& n) {
    if (n.round() <= env.stabilization + 30) return false;
    std::vector<const EssConsensus*> leaders;
    for (ProcId p = 0; p < n.n(); ++p) {
      const auto& a =
          dynamic_cast<const EssConsensus&>(n.process(p).automaton());
      if (a.considers_self_leader()) leaders.push_back(&a);
    }
    const auto& s = dynamic_cast<const EssConsensus&>(n.process(src).automaton());
    bool same = !leaders.empty() && s.considers_self_leader();
    for (const auto* l : leaders)
      if (!(l->history() == s.history())) same = false;
    converged_rounds = same ? converged_rounds + 1 : 0;
    return false;
  });
  // Leaders were converged (all = the source's history) for the whole
  // observed tail.
  EXPECT_GE(converged_rounds, 100u);
}

TEST(EssLeaders, CountersOfTimelySourceGrowEveryRound) {
  // Lemma 4, observed: under a stable source, the counter that corresponds
  // to the source's history increases by exactly one per round at every
  // process (decisions disabled to observe the steady state).
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 4;
  env.seed = 31;
  env.stabilization = 0;
  HistoryArena arena;
  EssConsensus::Options no_decide;
  no_decide.decide = false;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (auto v : distinct_values(4))
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, no_decide));
  EnvDelayModel delays(env, CrashPlan{});
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.max_rounds = 60;
  LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);

  std::vector<std::vector<std::uint64_t>> samples(4);
  net.run([&](const LockstepNet<EssMessage>& n) {
    const auto& s = dynamic_cast<const EssConsensus&>(n.process(src).automaton());
    if (n.round() >= 10) {
      for (ProcId p = 0; p < n.n(); ++p) {
        const auto& a =
            dynamic_cast<const EssConsensus&>(n.process(p).automaton());
        samples[p].push_back(a.counters().prefix_max(s.history()));
      }
    }
    return false;
  });
  for (ProcId p = 0; p < 4; ++p) {
    ASSERT_GE(samples[p].size(), 20u);
    // Skip a short settling prefix, then demand strict +1 per round.
    for (std::size_t i = 6; i < samples[p].size(); ++i)
      EXPECT_EQ(samples[p][i], samples[p][i - 1] + 1)
          << "process " << p << " sample " << i;
  }
}

TEST(EssGcExtension, StillDecidesAndAgrees) {
  // The counter-GC extension must not affect consensus correctness.
  for (std::uint64_t seed : {3u, 19u, 127u}) {
    EnvParams env;
    env.kind = EnvKind::kESS;
    env.n = 5;
    env.seed = seed;
    env.stabilization = 12;
    HistoryArena arena;
    EssConsensus::Options gc;
    gc.gc_counters = true;
    std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
    for (auto v : distinct_values(5))
      autos.push_back(std::make_unique<EssConsensus>(v, &arena, gc));
    EnvDelayModel delays(env, CrashPlan{});
    LockstepOptions opt;
    opt.max_rounds = 20000;
    LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);
    auto res = net.run_until_all_correct_decided();
    ASSERT_TRUE(res.stopped) << "seed " << seed;
    std::optional<Value> v;
    for (ProcId p = 0; p < 5; ++p) {
      auto d = net.decision(p);
      ASSERT_TRUE(d.has_value());
      if (!v) v = d;
      EXPECT_EQ(*v, *d);
    }
  }
}

TEST(EssGcExtension, CounterMapStaysBounded) {
  // Without GC the map accumulates ~1 entry per round (E10); with GC it
  // stays around the number of live history branches.
  EnvParams env;
  env.kind = EnvKind::kESS;
  env.n = 5;
  env.seed = 23;
  env.stabilization = 6;
  HistoryArena arena;
  EssConsensus::Options o;
  o.decide = false;
  o.gc_counters = true;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (auto v : distinct_values(5))
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, o));
  EnvDelayModel delays(env, CrashPlan{});
  LockstepOptions opt;
  opt.max_rounds = 320;
  LockstepNet<EssMessage> net(std::move(autos), delays, CrashPlan{}, opt);
  net.run_rounds(300);
  for (ProcId p = 0; p < 5; ++p) {
    const auto& a =
        dynamic_cast<const EssConsensus&>(net.process(p).automaton());
    EXPECT_LE(a.counters().size(), 30u) << "process " << p;
  }
}

TEST(EssMessage, OrderingAndEquality) {
  HistoryArena arena;
  EssMessage a{ValueSet{Value(1)}, arena.singleton(Value(1)), CounterMap{}};
  EssMessage b{ValueSet{Value(1)}, arena.singleton(Value(1)), CounterMap{}};
  EXPECT_EQ(a, b);
  EssMessage c{ValueSet{Value(2)}, arena.singleton(Value(1)), CounterMap{}};
  EXPECT_NE(a, c);
  EXPECT_TRUE((a < c) != (c < a));
  std::set<EssMessage> s{a, b, c};
  EXPECT_EQ(s.size(), 2u);  // a == b merge — anonymity at message level
}

TEST(EssMessage, SizeGrowsWithHistory) {
  HistoryArena arena;
  EssMessage small{ValueSet{Value(1)}, arena.singleton(Value(1)), CounterMap{}};
  History h = arena.singleton(Value(1));
  for (int i = 0; i < 100; ++i) h = arena.append(h, Value(1));
  EssMessage big{ValueSet{Value(1)}, h, CounterMap{}};
  EXPECT_GT(MessageSizeOf<EssMessage>::size(big),
            MessageSizeOf<EssMessage>::size(small) + 100 * 8 - 1);
}

}  // namespace
}  // namespace anon
