// ScenarioSpec JSON: canonical round trips (encode → decode → byte-identical
// re-encode), first-class validation diagnostics with field paths, and the
// golden files pinning every registered preset's spec.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace anon {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(ANON_REPO_DIR) + "/tests/golden/presets/" + name + ".json";
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

// Collects the error paths for compact assertions.
std::vector<std::string> error_paths(const SpecDecodeResult& res) {
  std::vector<std::string> paths;
  for (const auto& e : res.errors) paths.push_back(e.path);
  return paths;
}

bool has_error_at(const std::vector<SpecError>& errors,
                  const std::string& path) {
  for (const auto& e : errors)
    if (e.path == path) return true;
  return false;
}

// ---- round trips ------------------------------------------------------------

TEST(ScenarioSpecJson, EveryPresetRoundTripsByteIdentically) {
  const auto& presets = ScenarioRegistry::instance().presets();
  ASSERT_FALSE(presets.empty());
  for (const auto& preset : presets) {
    SCOPED_TRACE(preset.name);
    const std::string encoded = scenario_spec_to_json(preset.spec);
    auto decoded = parse_scenario_spec(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.errors_to_string();
    // Struct equality AND byte-identical re-encode.
    EXPECT_TRUE(*decoded.spec == preset.spec);
    EXPECT_EQ(scenario_spec_to_json(*decoded.spec), encoded);
  }
}

TEST(ScenarioSpecJson, HandwrittenSpecRoundTrips) {
  ScenarioSpec spec;
  spec.name = "rt";
  spec.family = ScenarioFamily::kWeakset;
  spec.seeds = {1, 2, 3};
  spec.env_kind = EnvKind::kMS;
  spec.n = 4;
  spec.weakset.mode = WeaksetSpecSection::Mode::kRegister;
  spec.weakset.script = {{2, 0, true, 7}, {9, 2, false, 0}};
  spec.weakset.extra_rounds = 33;
  spec.weakset.keep_records = true;
  spec.crashes.kind = CrashGenSpec::Kind::kExplicit;
  spec.crashes.entries = {{1, 4}};

  const std::string encoded = scenario_spec_to_json(spec);
  auto decoded = parse_scenario_spec(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.errors_to_string();
  EXPECT_TRUE(*decoded.spec == spec);
  EXPECT_EQ(scenario_spec_to_json(*decoded.spec), encoded);
}

TEST(ScenarioSpecJson, EngineThreadsRoundTripsAndDefaultsStayImplicit) {
  // engine_threads is encoded only when != 1, so every pre-existing spec
  // and golden stays byte-identical; a non-default value round-trips.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  EXPECT_EQ(scenario_spec_to_json(spec).find("engine_threads"),
            std::string::npos);

  spec.consensus.engine_threads = 8;
  const std::string encoded = scenario_spec_to_json(spec);
  EXPECT_NE(encoded.find("\"engine_threads\": 8"), std::string::npos);
  auto decoded = parse_scenario_spec(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.errors_to_string();
  EXPECT_EQ(decoded.spec->consensus.engine_threads, 8u);
  EXPECT_TRUE(*decoded.spec == spec);
  EXPECT_EQ(scenario_spec_to_json(*decoded.spec), encoded);

  // 0 (= one shard per hardware thread) is a valid, non-default value.
  auto zero = parse_scenario_spec(R"({
    "family": "consensus",
    "consensus": {"engine_threads": 0}
  })");
  ASSERT_TRUE(zero.ok()) << zero.errors_to_string();
  EXPECT_EQ(zero.spec->consensus.engine_threads, 0u);
}

TEST(ScenarioSpecJson, FaultPlanRoundTripsAndDefaultsStayImplicit) {
  // An inactive fault plan is not encoded at all (every pre-fault spec and
  // golden stays byte-identical); an active one round-trips canonically,
  // including the list-valued fields.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kConsensus;
  EXPECT_EQ(scenario_spec_to_json(spec).find("faults"), std::string::npos);

  spec.faults.seed = 99;
  spec.faults.loss_prob = 0.125;
  spec.faults.dup_prob = 0.25;
  spec.faults.dup_extra_delay = 2;
  spec.faults.reorder_prob = 0.5;
  spec.faults.max_extra_delay = 3;
  spec.faults.omission_senders = {1, 2};
  spec.faults.churn = {{0, 3, 8}, {2, 5, 0}};
  spec.faults.exempt_source = false;
  spec.consensus.watchdog_rounds = 500;

  const std::string encoded = scenario_spec_to_json(spec);
  EXPECT_NE(encoded.find("\"faults\""), std::string::npos);
  EXPECT_NE(encoded.find("\"watchdog_rounds\": 500"), std::string::npos);
  auto decoded = parse_scenario_spec(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.errors_to_string();
  EXPECT_TRUE(*decoded.spec == spec);
  EXPECT_EQ(scenario_spec_to_json(*decoded.spec), encoded);
}

TEST(ScenarioSpecJson, SparseSpecUsesDefaults) {
  auto decoded = parse_scenario_spec(R"({"family": "abd"})");
  ASSERT_TRUE(decoded.ok()) << decoded.errors_to_string();
  EXPECT_EQ(decoded.spec->family, ScenarioFamily::kAbd);
  EXPECT_EQ(decoded.spec->seeds, std::vector<std::uint64_t>{1});
  EXPECT_EQ(decoded.spec->n, 3u);
}

// ---- malformed JSON ---------------------------------------------------------

TEST(ScenarioSpecJson, MalformedJsonIsADiagnosticNotACrash) {
  auto res = parse_scenario_spec("{\"family\": \"consensus\",}");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.errors[0].path, "(json)");
  EXPECT_NE(res.errors[0].message.find("line"), std::string::npos);
}

TEST(ScenarioSpecJson, NonConformingNumbersAreRejected) {
  // RFC 8259 strictness: what jq/python reject, the spec parser rejects.
  for (const char* bad :
       {R"({"env": {"n": 04}})", R"({"env": {"timely_prob": 1.}})",
        R"({"env": {"timely_prob": .5}})", R"({"seeds": [1e]})"}) {
    SCOPED_TRACE(bad);
    auto res = parse_scenario_spec(bad);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.errors[0].path, "(json)");
  }
}

TEST(ScenarioSpecJson, PathologicalNestingIsADiagnosticNotACrash) {
  const std::string deep(100000, '[');
  auto res = parse_scenario_spec(deep);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.errors[0].message.find("nesting"), std::string::npos)
      << res.errors_to_string();
}

TEST(ScenarioSpecJson, DuplicateKeysAreRejected) {
  auto res = parse_scenario_spec(R"({"family": "abd", "family": "abd"})");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.errors[0].path, "(json)");
}

TEST(ScenarioSpecJson, UnknownFieldsCarryTheirPath) {
  auto res = parse_scenario_spec(
      R"({"family": "consensus", "consensus": {"algo": "es", "bckend": "cohort"}})");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "consensus.bckend"))
      << res.errors_to_string();
}

TEST(ScenarioSpecJson, UnknownEnumValueListsChoices) {
  auto res = parse_scenario_spec(R"({"family": "flooding"})");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "family"));
  EXPECT_NE(res.errors[0].message.find("weakset-shm"), std::string::npos);
}

TEST(ScenarioSpecJson, WrongFamilySectionIsRejected) {
  auto res = parse_scenario_spec(
      R"({"family": "abd", "emulation": {"rounds": 5}})");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "emulation")) << res.errors_to_string();
}

// ---- validation -------------------------------------------------------------

TEST(ScenarioSpecValidation, InitialSizeMustMatchN) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"n": 5},
    "workload": {"initial": {"kind": "explicit", "values": [1, 2, 3]}}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "workload.initial.values"))
      << res.errors_to_string();
  EXPECT_NE(res.errors[0].message.find("3"), std::string::npos);
  EXPECT_NE(res.errors[0].message.find("5"), std::string::npos);
}

TEST(ScenarioSpecValidation, CohortBackendWithTraceIsDiagnosed) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "consensus": {"backend": "cohort"}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "consensus.backend"))
      << res.errors_to_string();

  // With the trace surfaces off, the cohort backend is valid.
  auto ok = parse_scenario_spec(R"({
    "family": "consensus",
    "consensus": {"backend": "cohort", "record_trace": false,
                  "validate_env": false}
  })");
  EXPECT_TRUE(ok.ok()) << ok.errors_to_string();
}

TEST(ScenarioSpecValidation, CohortBackendAcceptsIntraRunSharding) {
  // engine_threads composes with both backends: the cohort engine shards
  // its class list the same way the expanded engine shards processes, and
  // the spec round-trips the knob regardless of backend.
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "consensus": {"backend": "cohort", "record_trace": false,
                  "validate_env": false, "engine_threads": 4}
  })");
  ASSERT_TRUE(res.ok()) << res.errors_to_string();
  EXPECT_EQ(res.spec->consensus.backend, ConsensusBackend::kCohort);
  EXPECT_EQ(res.spec->consensus.engine_threads, 4u);

  const std::string once = scenario_spec_to_json(*res.spec);
  auto again = parse_scenario_spec(once);
  ASSERT_TRUE(again.ok()) << again.errors_to_string();
  EXPECT_EQ(once, scenario_spec_to_json(*again.spec));
}

TEST(ScenarioSpecValidation, ValidateEnvNeedsTheFullTrace) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "consensus": {"validate_env": true}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "consensus.validate_env"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, WeaksetCohortBackendRoundTripsAndGates) {
  // backend/engine_threads stay implicit at their defaults (goldens are
  // untouched), round-trip when set, and cohort rejects validate_env.
  ScenarioSpec spec;
  spec.family = ScenarioFamily::kWeakset;
  EXPECT_EQ(scenario_spec_to_json(spec).find("backend"), std::string::npos);

  auto res = parse_scenario_spec(R"({
    "family": "weakset",
    "weakset": {"backend": "cohort", "engine_threads": 4, "gen_ops": 4,
                "validate_env": false}
  })");
  ASSERT_TRUE(res.ok()) << res.errors_to_string();
  EXPECT_EQ(res.spec->weakset.backend, WeaksetSpecSection::Backend::kCohort);
  EXPECT_EQ(res.spec->weakset.engine_threads, 4u);
  const std::string once = scenario_spec_to_json(*res.spec);
  auto again = parse_scenario_spec(once);
  ASSERT_TRUE(again.ok()) << again.errors_to_string();
  EXPECT_EQ(once, scenario_spec_to_json(*again.spec));

  auto bad = parse_scenario_spec(R"({
    "family": "weakset",
    "weakset": {"backend": "cohort", "validate_env": true}
  })");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(has_error_at(bad.errors, "weakset.validate_env"))
      << bad.errors_to_string();
}

TEST(ScenarioSpecValidation, EmulationCohortNeedsInternedAndNoCertify) {
  auto ok = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms"},
    "emulation": {"backend": "cohort", "certify": false, "engine_threads": 2}
  })");
  ASSERT_TRUE(ok.ok()) << ok.errors_to_string();
  EXPECT_EQ(ok.spec->emulation.backend,
            EmulationSpecSection::Backend::kCohort);

  auto certify = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms"},
    "emulation": {"backend": "cohort"}
  })");
  ASSERT_FALSE(certify.ok());
  EXPECT_TRUE(has_error_at(certify.errors, "emulation.certify"))
      << certify.errors_to_string();

  auto ref = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms"},
    "emulation": {"backend": "cohort", "engine": "ref", "certify": false}
  })");
  ASSERT_FALSE(ref.ok());
  EXPECT_TRUE(has_error_at(ref.errors, "emulation.engine"))
      << ref.errors_to_string();
}

TEST(ScenarioSpecValidation, EmulationProbeValuesShapeTheEchoSeeds) {
  // probe_values round-trips (implicit at the historical 0..n-1 default)
  // and is gated to the echo inner with value-shape rules.
  auto ok = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms", "n": 6},
    "emulation": {"probe_values": {"kind": "cycle", "base": 0, "period": 2}}
  })");
  ASSERT_TRUE(ok.ok()) << ok.errors_to_string();
  EXPECT_EQ(ok.spec->emulation.probe_values.kind, ValueGenSpec::Kind::kCycle);
  const std::string once = scenario_spec_to_json(*ok.spec);
  auto again = parse_scenario_spec(once);
  ASSERT_TRUE(again.ok()) << again.errors_to_string();
  EXPECT_EQ(once, scenario_spec_to_json(*again.spec));

  auto inner = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms"},
    "emulation": {"inner": "weakset",
                  "probe_values": {"kind": "identical", "base": 3}}
  })");
  ASSERT_FALSE(inner.ok());
  EXPECT_TRUE(has_error_at(inner.errors, "emulation.probe_values"))
      << inner.errors_to_string();

  auto bivalent = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms"},
    "emulation": {"probe_values": {"kind": "bivalent"}}
  })");
  ASSERT_FALSE(bivalent.ok());
  EXPECT_TRUE(has_error_at(bivalent.errors, "emulation.probe_values.kind"))
      << bivalent.errors_to_string();

  auto sized = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms", "n": 4},
    "emulation": {"probe_values": {"kind": "explicit", "values": [1, 2]}}
  })");
  ASSERT_FALSE(sized.ok());
  EXPECT_TRUE(has_error_at(sized.errors, "emulation.probe_values.values"))
      << sized.errors_to_string();
}

TEST(ScenarioSpecValidation, FaultPlansReachWeaksetAndInternedEmulation) {
  // The env.faults gate: weakset accepts any plan, emulation accepts them
  // on the interned engine only (the ref engine is the untouched oracle),
  // and trace-free families still reject.
  auto ws = parse_scenario_spec(R"({
    "family": "weakset",
    "env": {"faults": {"loss_prob": 0.25}},
    "weakset": {"gen_ops": 4}
  })");
  EXPECT_TRUE(ws.ok()) << ws.errors_to_string();

  auto emu = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms", "faults": {"loss_prob": 0.25}}
  })");
  EXPECT_TRUE(emu.ok()) << emu.errors_to_string();

  auto ref = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms", "faults": {"loss_prob": 0.25}},
    "emulation": {"engine": "ref"}
  })");
  ASSERT_FALSE(ref.ok());
  EXPECT_TRUE(has_error_at(ref.errors, "env.faults"))
      << ref.errors_to_string();

  auto shm = parse_scenario_spec(R"({
    "family": "weakset-shm",
    "env": {"faults": {"loss_prob": 0.25}}
  })");
  ASSERT_FALSE(shm.ok());
  EXPECT_TRUE(has_error_at(shm.errors, "env.faults"))
      << shm.errors_to_string();
}

TEST(ScenarioSpecValidation, RandomCrashesMustLeaveACorrectProcess) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"n": 4},
    "workload": {"crashes": {"kind": "random", "count": 4, "horizon": 5}}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "workload.crashes.count"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, ExplicitCrashesMustLeaveACorrectProcess) {
  // The runner layer CHECK-aborts on an all-crashed environment; the spec
  // layer must catch it first and return a diagnostic instead.
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"n": 2},
    "workload": {"crashes": {"kind": "explicit", "entries": [
      {"process": 0, "round": 1}, {"process": 1, "round": 1}]}}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "workload.crashes.entries"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, BivalentSchedulesNeedThreeProcesses) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"kind": "ms", "n": 2},
    "workload": {"initial": {"kind": "bivalent"}},
    "consensus": {"schedule": "bivalent-ms"}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "env.n")) << res.errors_to_string();
}

TEST(ScenarioSpecValidation, AdversarialSchedulesDriveAlgorithm2) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"kind": "ms", "n": 5},
    "consensus": {"algo": "ess", "schedule": "hostile-ms"}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "consensus.algo"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, EmulationSkewMustMatchN) {
  auto res = parse_scenario_spec(R"({
    "family": "emulation",
    "env": {"kind": "ms", "n": 4},
    "emulation": {"skew": [1, 2]}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "emulation.skew"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, ConvergenceProbeRequiresEss) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"kind": "ess", "n": 5},
    "consensus": {"algo": "es", "probe": "leader-convergence", "horizon": 50}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "consensus.algo"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, ErrorsAccumulateAcrossFields) {
  auto res = parse_scenario_spec(R"({
    "family": "weakset",
    "env": {"kind": "ms", "n": 2},
    "weakset": {"script": [{"round": 0, "process": 7, "mutate": true,
                            "value": 1}]}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_GE(res.errors.size(), 2u) << res.errors_to_string();
  EXPECT_TRUE(has_error_at(res.errors, "weakset.script[0].process"));
  EXPECT_TRUE(has_error_at(res.errors, "weakset.script[0].round"));
  (void)error_paths(res);
}

TEST(ScenarioSpecValidation, FaultProbabilitiesMustBeInRange) {
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"faults": {"loss_prob": 1.5}}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "env.faults.loss_prob"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, ChurnWindowsMustBeWellFormed) {
  // rejoin inside the leave window, and a process id off the end of n.
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"n": 3, "faults": {"churn": [
      {"process": 1, "leave": 5, "rejoin": 4},
      {"process": 7, "leave": 2}]}}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "env.faults.churn[0].rejoin"))
      << res.errors_to_string();
  EXPECT_TRUE(has_error_at(res.errors, "env.faults.churn[1].process"))
      << res.errors_to_string();
}

TEST(ScenarioSpecValidation, ActiveFaultsNeedTheEnvDecisionPath) {
  // Faults are wired through the env-schedule decision pipeline only; an
  // adversarial schedule with an active plan is a diagnostic, not a
  // silently fault-free run.
  auto res = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"kind": "ms", "n": 5, "faults": {"loss_prob": 0.1}},
    "consensus": {"schedule": "hostile-ms"}
  })");
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(has_error_at(res.errors, "env.faults"))
      << res.errors_to_string();

  // An inactive plan (all defaults) is fine anywhere.
  auto ok = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"kind": "ms", "n": 5, "faults": {"exempt_source": true}},
    "consensus": {"schedule": "hostile-ms"}
  })");
  EXPECT_TRUE(ok.ok()) << ok.errors_to_string();
}

TEST(ScenarioSpecValidation, LiveTransportGates) {
  // A live consensus spec with the live knobs round-trips and validates.
  auto ok = parse_scenario_spec(R"({
    "family": "consensus",
    "transport": "live",
    "env": {"n": 5},
    "live": {"period_ms": 2, "loss": 0.2, "jitter_ms": 1}
  })");
  EXPECT_TRUE(ok.ok()) << ok.errors_to_string();

  // Unserved family.
  auto emu = parse_scenario_spec(R"({
    "family": "emulation",
    "transport": "live",
    "env": {"kind": "ms"}
  })");
  ASSERT_FALSE(emu.ok());
  EXPECT_TRUE(has_error_at(emu.errors, "transport"))
      << emu.errors_to_string();

  // env.faults is the sim fault surface; live faults are live.loss/jitter.
  auto faults = parse_scenario_spec(R"({
    "family": "consensus",
    "transport": "live",
    "env": {"n": 5, "faults": {"loss_prob": 0.1}}
  })");
  ASSERT_FALSE(faults.ok());
  EXPECT_TRUE(has_error_at(faults.errors, "env.faults"))
      << faults.errors_to_string();

  // TCP cannot attribute senders, so loss would hit the rotating source's
  // frames too and break the exempt-source safety contract.
  auto tcp = parse_scenario_spec(R"({
    "family": "consensus",
    "transport": "live",
    "env": {"n": 5},
    "live": {"socket": "tcp", "loss": 0.2}
  })");
  ASSERT_FALSE(tcp.ok());
  EXPECT_TRUE(has_error_at(tcp.errors, "live.loss"))
      << tcp.errors_to_string();

  // A live section on a sim spec is a diagnostic, not silently ignored.
  auto sim = parse_scenario_spec(R"({
    "family": "consensus",
    "env": {"n": 5},
    "live": {"period_ms": 2}
  })");
  ASSERT_FALSE(sim.ok());
  EXPECT_TRUE(has_error_at(sim.errors, "live")) << sim.errors_to_string();
}

// ---- preset goldens ---------------------------------------------------------

// Every registered preset's canonical spec encoding is pinned to a golden
// file: editing a preset is a reviewed act, and `anonsim describe` output
// stays stable for scripts.  Regenerate with:
//   for p in $(build/anonsim list | awk '/^\s\s\S/ {print $1}'); do
//     build/anonsim describe $p > tests/golden/presets/$p.json; done
TEST(ScenarioPresetGoldens, EveryPresetMatchesItsGoldenFile) {
  const auto& presets = ScenarioRegistry::instance().presets();
  ASSERT_FALSE(presets.empty());
  for (const auto& preset : presets) {
    SCOPED_TRACE(preset.name);
    auto golden = read_file(golden_path(preset.name));
    ASSERT_TRUE(golden.has_value())
        << "missing golden file " << golden_path(preset.name)
        << " — regenerate with `anonsim describe " << preset.name << "`";
    EXPECT_EQ(scenario_spec_to_json(preset.spec), *golden);
  }
}

}  // namespace
}  // namespace anon
