// WorkerPool (PR 6): the process-wide pool behind parallel_sweep and the
// sharded lock-step engine.  The contracts under test: every index runs
// exactly once, the first exception cancels the rest and is rethrown on
// the caller, nested parallel_for runs inline (no oversubscription), the
// pool grows on demand to honour explicitly requested participant counts,
// and sequential jobs reuse the same threads without leaking state.
#include "core/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace anon {
namespace {

TEST(WorkerPool, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(3);
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, ZeroCountIsANoOp) {
  WorkerPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, SingleIndexRunsInlineOnTheCaller) {
  WorkerPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.parallel_for(1, [&](std::size_t) { executed = std::this_thread::get_id(); });
  EXPECT_EQ(executed, caller);
}

TEST(WorkerPool, MaxParticipantsOneRunsInlineOnTheCaller) {
  WorkerPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> executors;
  pool.parallel_for(
      64, [&](std::size_t) { executors.insert(std::this_thread::get_id()); },
      /*max_participants=*/1);
  // Inline execution: single-threaded, so the un-synchronized set is safe.
  ASSERT_EQ(executors.size(), 1u);
  EXPECT_EQ(*executors.begin(), caller);
}

TEST(WorkerPool, FirstExceptionPropagatesAndCancelsRemainingIndices) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  auto throwing = [&](std::size_t i) {
    if (i == 5) throw std::runtime_error("index 5 failed");
    ran.fetch_add(1);
  };
  EXPECT_THROW(pool.parallel_for(10000, throwing), std::runtime_error);
  // Cancellation drains the cursor: far fewer than all indices ran.
  EXPECT_LT(ran.load(), 10000);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<int> after{0};
  pool.parallel_for(32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}

TEST(WorkerPool, NestedParallelForRunsInline) {
  WorkerPool pool(3);
  constexpr std::size_t kOuter = 8, kInner = 16;
  std::vector<std::atomic<int>> inner_hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    const auto outer_thread = std::this_thread::get_id();
    // The inner call must not recruit workers (the outer job owns the
    // pool's parallelism) — it runs the whole loop on this thread.
    pool.parallel_for(kInner, [&](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      inner_hits[o * kInner + i].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i)
    EXPECT_EQ(inner_hits[i].load(), 1) << "inner index " << i;
}

TEST(WorkerPool, GrowsOnDemandToHonourRequestedParticipants) {
  WorkerPool pool(0);  // starts with no workers at all
  EXPECT_EQ(pool.workers(), 0u);
  std::atomic<int> ran{0};
  pool.parallel_for(
      64, [&](std::size_t) { ran.fetch_add(1); }, /*max_participants=*/4);
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GE(pool.workers(), 3u);  // caller + 3 workers = 4 participants
}

TEST(WorkerPool, SequentialJobsReuseThePool) {
  WorkerPool pool(2);
  for (int job = 0; job < 200; ++job) {
    std::atomic<int> ran{0};
    pool.parallel_for(17, [&](std::size_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 17) << "job " << job;
  }
}

TEST(WorkerPool, SharedPoolIsAProcessWideSingleton) {
  WorkerPool& a = WorkerPool::shared();
  WorkerPool& b = WorkerPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.workers(), 1u);
  std::atomic<int> ran{0};
  a.parallel_for(33, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 33);
}

TEST(WorkerPool, ConcurrentSubmittersAreSerializedNotLost) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int j = 0; j < 25; ++j)
        pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4 * 25 * 8);
}

}  // namespace
}  // namespace anon
