#include "common/value.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

TEST(Value, BottomOrdersBelowEverything) {
  EXPECT_LT(Value::Bottom(), Value(-1000000));
  EXPECT_LT(Value::Bottom(), Value(0));
  EXPECT_EQ(Value::Bottom(), Value::Bottom());
  EXPECT_EQ(Value(), Value::Bottom());
}

TEST(Value, OrderingMatchesPayload) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(-5), Value(5));
  EXPECT_EQ(Value(7), Value(7));
  EXPECT_NE(Value(7), Value(8));
  EXPECT_GT(Value(8), Value(7));
}

TEST(Value, IsBottomAndGet) {
  EXPECT_TRUE(Value::Bottom().is_bottom());
  EXPECT_FALSE(Value(3).is_bottom());
  EXPECT_EQ(Value(3).get(), 3);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value::Bottom().to_string(), "⊥");
}

TEST(Value, StableHashDistinguishes) {
  EXPECT_NE(Value(1).stable_hash(), Value(2).stable_hash());
  EXPECT_NE(Value::Bottom().stable_hash(), Value(0).stable_hash());
  EXPECT_EQ(Value(9).stable_hash(), Value(9).stable_hash());
}

TEST(ValueSet, UnionIntersect) {
  ValueSet a{Value(1), Value(2), Value(3)};
  ValueSet b{Value(2), Value(3), Value(4)};
  EXPECT_EQ(set_union(a, b), (ValueSet{Value(1), Value(2), Value(3), Value(4)}));
  EXPECT_EQ(set_intersect(a, b), (ValueSet{Value(2), Value(3)}));
  EXPECT_EQ(set_intersect(a, ValueSet{}), ValueSet{});
  EXPECT_EQ(set_union(a, ValueSet{}), a);
}

TEST(ValueSet, MinusBottom) {
  ValueSet s{Value::Bottom(), Value(5)};
  EXPECT_EQ(minus_bottom(s), ValueSet{Value(5)});
  EXPECT_EQ(minus_bottom(ValueSet{Value::Bottom()}), ValueSet{});
  EXPECT_EQ(minus_bottom(ValueSet{}), ValueSet{});
}

TEST(ValueSet, SubsetOf) {
  ValueSet allowed{Value(1), Value::Bottom()};
  EXPECT_TRUE(subset_of(ValueSet{}, allowed));
  EXPECT_TRUE(subset_of(ValueSet{Value(1)}, allowed));
  EXPECT_TRUE(subset_of(allowed, allowed));
  EXPECT_FALSE(subset_of(ValueSet{Value(2)}, allowed));
  EXPECT_FALSE(subset_of(ValueSet{Value(1), Value(2)}, allowed));
}

TEST(ValueSet, MaxViaRbegin) {
  ValueSet s{Value(3), Value(1), Value(9), Value::Bottom()};
  EXPECT_EQ(*s.rbegin(), Value(9));
}

TEST(ValueSet, ToString) {
  EXPECT_EQ(to_string(ValueSet{Value(1), Value(2)}), "{1,2}");
  EXPECT_EQ(to_string(ValueSet{}), "{}");
}

}  // namespace
}  // namespace anon
