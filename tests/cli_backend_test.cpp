// The anonsim CLI's backend surface: `describe` states each preset's
// backend support, and `run --backend cohort` flips the trace switches and
// produces byte-identical reports for the weakset and emulation families.
// These tests spawn the real binary (built next to the test in the build
// tree) and skip when it has not been built yet.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

struct CmdResult {
  int rc = -1;
  std::string output;
};

// Runs `cmd` under sh, capturing the requested stream(s).
CmdResult run_cmd(const std::string& cmd) {
  CmdResult res;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return res;
  std::array<char, 4096> buf;
  std::size_t got;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    res.output.append(buf.data(), got);
  const int status = pclose(pipe);
  res.rc = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return res;
}

bool have_anonsim() { return std::ifstream("./anonsim").good(); }

#define REQUIRE_ANONSIM() \
  if (!have_anonsim()) GTEST_SKIP() << "anonsim not built in this tree"

TEST(CliBackend, DescribeStatesBackendSupportPerFamily) {
  REQUIRE_ANONSIM();
  // The note rides on stderr; stdout stays the canonical golden JSON.
  const auto weakset =
      run_cmd("./anonsim describe e4-fast 2>&1 1>/dev/null");
  ASSERT_EQ(weakset.rc, 0);
  EXPECT_NE(weakset.output.find("backends: expanded, cohort"),
            std::string::npos)
      << weakset.output;

  const auto emulation =
      run_cmd("./anonsim describe e5-fast 2>&1 1>/dev/null");
  ASSERT_EQ(emulation.rc, 0);
  EXPECT_NE(emulation.output.find("cohort"), std::string::npos)
      << emulation.output;
  EXPECT_NE(emulation.output.find("interned"), std::string::npos)
      << emulation.output;

  const auto shm = run_cmd("./anonsim describe e7-fast 2>&1 1>/dev/null");
  ASSERT_EQ(shm.rc, 0);
  EXPECT_NE(shm.output.find("expanded only"), std::string::npos)
      << shm.output;

  // The stdout contract is untouched: no note leaks into the JSON.
  const auto json = run_cmd("./anonsim describe e4-fast 2>/dev/null");
  ASSERT_EQ(json.rc, 0);
  EXPECT_EQ(json.output.find("backends:"), std::string::npos);
}

TEST(CliBackend, WeaksetCohortRunIsByteIdentical) {
  REQUIRE_ANONSIM();
  const auto expanded =
      run_cmd("./anonsim run --preset e4-fast --quiet --no-timing");
  const auto cohort = run_cmd(
      "./anonsim run --preset e4-fast --backend cohort --quiet --no-timing");
  ASSERT_EQ(expanded.rc, 0);
  ASSERT_EQ(cohort.rc, 0);
  EXPECT_EQ(expanded.output, cohort.output);
  EXPECT_NE(cohort.output.find("\"spec_ok\": true"), std::string::npos);
}

TEST(CliBackend, EmulationCohortRunMatchesModuloCertification) {
  REQUIRE_ANONSIM();
  // --backend cohort force-flips certify, so ms_certified goes false;
  // every other field must match the expanded run byte-for-byte.
  const auto expanded =
      run_cmd("./anonsim run --preset e5-fast --quiet --no-timing");
  const auto cohort = run_cmd(
      "./anonsim run --preset e5-fast --backend cohort --quiet --no-timing");
  ASSERT_EQ(expanded.rc, 0);
  ASSERT_EQ(cohort.rc, 0);
  std::string normalized = expanded.output;
  for (std::size_t pos;
       (pos = normalized.find("\"ms_certified\": true")) != std::string::npos;)
    normalized.replace(pos, 20, "\"ms_certified\": false");
  EXPECT_EQ(normalized, cohort.output);
}

TEST(CliBackend, EngineThreadsComposeWithTheCohortBackend) {
  REQUIRE_ANONSIM();
  const auto one = run_cmd(
      "./anonsim run --preset e4-fast --backend cohort --engine-threads 1 "
      "--quiet --no-timing");
  const auto four = run_cmd(
      "./anonsim run --preset e4-fast --backend cohort --engine-threads 4 "
      "--quiet --no-timing");
  ASSERT_EQ(one.rc, 0);
  ASSERT_EQ(four.rc, 0);
  EXPECT_EQ(one.output, four.output);
}

TEST(CliBackend, BackendRejectsTraceFreeFamilies) {
  REQUIRE_ANONSIM();
  const auto res = run_cmd(
      "./anonsim run --preset e7-fast --backend cohort --quiet 2>&1");
  EXPECT_EQ(res.rc, 2);
  EXPECT_NE(res.output.find("--backend"), std::string::npos) << res.output;
}

}  // namespace
