// core/partition.hpp — the contiguous balanced partition shared by
// LockstepNet (uniform weights) and CohortNet (class-member weights).
#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace anon {
namespace {

void expect_contiguous_cover(const std::vector<ShardRange>& ranges,
                             std::size_t count) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().first, 0u);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second);
  EXPECT_EQ(ranges.back().second, count);
}

TEST(Partition, UniformMatchesBaseRemLayout) {
  std::vector<ShardRange> ranges;
  for (std::size_t count : {0u, 1u, 2u, 5u, 10u, 11u, 17u, 64u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
      balanced_ranges(count, shards, &ranges);
      expect_contiguous_cover(ranges, count);
      if (count == 0) continue;
      const std::size_t s = std::min(shards, count);
      ASSERT_EQ(ranges.size(), s);
      const std::size_t base = count / s, rem = count % s;
      for (std::size_t i = 0; i < s; ++i)
        EXPECT_EQ(ranges[i].second - ranges[i].first, base + (i < rem ? 1 : 0))
            << "count=" << count << " shards=" << shards << " i=" << i;
    }
  }
}

TEST(Partition, WeightedIsolatesTheGiantItem) {
  // The collapsed-run shape: one class holding almost every process plus
  // singleton stragglers.  The giant must get a shard to itself and the
  // stragglers must spread over the remaining shards, not pile onto one.
  std::vector<std::uint64_t> weights = {1000000, 1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<ShardRange> ranges;
  balanced_ranges_weighted(
      weights.size(), 4, [&](std::size_t i) { return weights[i]; }, &ranges);
  expect_contiguous_cover(ranges, weights.size());
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0], (ShardRange{0, 1}));  // the giant, alone
  for (std::size_t s = 1; s < 4; ++s)
    EXPECT_GE(ranges[s].second - ranges[s].first, 2u);
}

TEST(Partition, WeightedRandomizedInvariants) {
  Rng rng(0xba1a9ce);
  std::vector<std::uint64_t> weights;
  std::vector<ShardRange> ranges;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t count = 1 + rng.below(40);
    const std::size_t shards = 1 + rng.below(12);
    weights.clear();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      weights.push_back(rng.below(100));
      total += weights.back();
    }
    balanced_ranges_weighted(
        count, shards, [&](std::size_t i) { return weights[i]; }, &ranges);
    expect_contiguous_cover(ranges, count);
    ASSERT_EQ(ranges.size(), std::min(shards, count));
    // Every range non-empty, and no range except a single-item one may
    // exceed the greedy target by more than its last item (the bound that
    // matters: a shard is never more than one item past balanced).
    for (const ShardRange& r : ranges) EXPECT_GT(r.second, r.first);
    if (total > 0) {
      const std::uint64_t ceil_avg =
          (total + ranges.size() - 1) / ranges.size();
      for (const ShardRange& r : ranges) {
        if (r.second - r.first <= 1) continue;  // single item: unavoidable
        std::uint64_t w = 0;
        for (std::size_t i = r.first; i < r.second; ++i) w += weights[i];
        const std::uint64_t last = weights[r.second - 1];
        EXPECT_LE(w, ceil_avg + last);
      }
    }
  }
}

}  // namespace
}  // namespace anon
