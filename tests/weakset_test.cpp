// Algorithm 4 — the weak-set in MS (Theorem 3) — plus the spec checker.
#include "weakset/ms_weak_set.hpp"

#include <gtest/gtest.h>

namespace anon {
namespace {

// --- Spec checker unit tests (hand-built histories). ---

WsOpRecord add_rec(Value v, std::uint64_t s, std::uint64_t e, std::size_t p = 0) {
  WsOpRecord r;
  r.kind = WsOpRecord::Kind::kAdd;
  r.value = v;
  r.start = s;
  r.end = e;
  r.process = p;
  return r;
}
WsOpRecord get_rec(ValueSet res, std::uint64_t s, std::uint64_t e,
                   std::size_t p = 0) {
  WsOpRecord r;
  r.kind = WsOpRecord::Kind::kGet;
  r.result = std::move(res);
  r.start = s;
  r.end = e;
  r.process = p;
  return r;
}

TEST(WsSpecChecker, AcceptsSequentialHistory) {
  std::vector<WsOpRecord> ops{add_rec(Value(1), 0, 5),
                              get_rec({Value(1)}, 10, 11)};
  EXPECT_TRUE(check_weak_set_spec(ops).ok);
}

TEST(WsSpecChecker, RejectsMissedCompletedAdd) {
  std::vector<WsOpRecord> ops{add_rec(Value(1), 0, 5), get_rec({}, 10, 11)};
  auto res = check_weak_set_spec(ops);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("missed"), std::string::npos);
}

TEST(WsSpecChecker, RejectsValueFromThinAir) {
  std::vector<WsOpRecord> ops{add_rec(Value(1), 0, 5),
                              get_rec({Value(1), Value(9)}, 10, 11)};
  auto res = check_weak_set_spec(ops);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.violation.find("no add started"), std::string::npos);
  (void)res;
}

TEST(WsSpecChecker, ConcurrentAddMayOrMayNotBeVisible) {
  std::vector<WsOpRecord> with{add_rec(Value(1), 5, 20),
                               get_rec({Value(1)}, 10, 12)};
  std::vector<WsOpRecord> without{add_rec(Value(1), 5, 20),
                                  get_rec({}, 10, 12)};
  EXPECT_TRUE(check_weak_set_spec(with).ok);
  EXPECT_TRUE(check_weak_set_spec(without).ok);
}

// --- Algorithm 4 under generated MS schedules. ---

class MsWeakSetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsWeakSetSweep, SpecHoldsAndAddsComplete) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 5;
  env.seed = GetParam();
  // Workload: interleaved adds and gets across processes and rounds.
  std::vector<WsScriptOp> script;
  for (int i = 0; i < 10; ++i) {
    script.push_back({static_cast<Round>(2 + 3 * i),
                      static_cast<std::size_t>(i % 5), true,
                      Value(100 + i)});
    script.push_back({static_cast<Round>(4 + 3 * i),
                      static_cast<std::size_t>((i + 2) % 5), false, Value()});
  }
  auto run = run_ms_weak_set(env, CrashPlan{}, script);
  EXPECT_TRUE(run.all_adds_completed);
  auto check = check_weak_set_spec(run.records);
  EXPECT_TRUE(check.ok) << check.violation;
  EXPECT_TRUE(run.env_check.ms_ok) << run.env_check.to_string();
  EXPECT_GT(run.adds, 0u);
}

TEST_P(MsWeakSetSweep, SurvivesCrashes) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 6;
  env.seed = GetParam() ^ 0xc0ffee;
  CrashPlan crashes;
  crashes.crash_at(1, 6);
  crashes.crash_at(4, 11);
  std::vector<WsScriptOp> script;
  for (int i = 0; i < 12; ++i) {
    script.push_back({static_cast<Round>(2 + 2 * i),
                      static_cast<std::size_t>(i % 6), true, Value(50 + i)});
    script.push_back({static_cast<Round>(3 + 2 * i),
                      static_cast<std::size_t>((i + 3) % 6), false, Value()});
  }
  auto run = run_ms_weak_set(env, crashes, script);
  // Adds by surviving processes complete; the spec holds regardless.
  EXPECT_TRUE(run.all_adds_completed);
  auto check = check_weak_set_spec(run.records);
  EXPECT_TRUE(check.ok) << check.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsWeakSetSweep,
                         ::testing::Values(1, 7, 42, 1234, 777, 31337));

TEST(MsWeakSet, GetIsNonBlockingAndMonotone) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 3;
  env.seed = 5;
  std::vector<WsScriptOp> script;
  script.push_back({2, 0, true, Value(1)});
  for (Round r = 3; r <= 20; ++r) script.push_back({r, 1, false, Value()});
  auto run = run_ms_weak_set(env, CrashPlan{}, script);
  // Once the value appears in a get at p1, it never disappears (Lemma 9).
  bool seen = false;
  for (const auto& rec : run.records) {
    if (rec.kind != WsOpRecord::Kind::kGet) continue;
    if (seen) {
      EXPECT_EQ(rec.result.count(Value(1)), 1u);
    }
    if (rec.result.count(Value(1)) > 0) seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST(MsWeakSet, AddLatencyIsBoundedUnderFullSynchrony) {
  EnvParams env;
  env.kind = EnvKind::kES;  // all timely after GST 0: best case
  env.n = 4;
  env.seed = 3;
  env.stabilization = 0;
  std::vector<WsScriptOp> script{{2, 0, true, Value(9)}};
  auto run = run_ms_weak_set(env, CrashPlan{}, script, 30);
  ASSERT_TRUE(run.all_adds_completed);
  ASSERT_EQ(run.adds, 1u);
  // One round to broadcast, one to observe it written.
  EXPECT_LE(run.add_latency_rounds_total, 3u);
}

TEST(MsWeakSet, SerializesAddsPerProcess) {
  MsWeakSetAutomaton a;
  a.initialize();
  a.start_add(Value(1));
  EXPECT_TRUE(a.add_blocked());
  EXPECT_THROW(a.start_add(Value(2)), CheckFailure);
}

TEST(MsWeakSet, GetReflectsLocalAddImmediately) {
  MsWeakSetAutomaton a;
  a.initialize();
  a.start_add(Value(7));
  EXPECT_EQ(a.get().count(Value(7)), 1u);  // line 8 inserts before blocking
}

}  // namespace
}  // namespace anon
