// Backend equivalence for the Algorithm-4 harnesses: backend=cohort must
// reproduce the expanded LockstepNet runs byte-for-byte — same operation
// records (kind/value/result/timestamps), same latency accounting, same
// completion flags — across environments, crash plans, link-fault plans
// and thread/shard counts.  The cohort engine is only allowed to be
// faster, never different.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "weakset/ms_weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon {
namespace {

struct WsConfig {
  EnvParams env;
  CrashPlan crashes;
  std::vector<WsScriptOp> script;
  FaultParams faults;
  Round extra_rounds = 30;
};

MsWeakSetRunResult run_set(const WsConfig& cfg, WsBackend backend,
                           std::size_t threads = 1, std::size_t shards = 0) {
  WsRunOptions opt;
  opt.backend = backend;
  opt.validate_env = false;  // cohort records no trace; compare like-for-like
  opt.extra_rounds = cfg.extra_rounds;
  opt.engine_threads = threads;
  opt.engine_shards = shards;
  opt.faults = cfg.faults;
  return run_ms_weak_set(cfg.env, cfg.crashes, cfg.script, opt);
}

void expect_equal(const MsWeakSetRunResult& e, const MsWeakSetRunResult& c,
                  const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(e.records.size(), c.records.size());
  for (std::size_t i = 0; i < e.records.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(e.records[i].kind, c.records[i].kind);
    EXPECT_TRUE(e.records[i].value == c.records[i].value);
    EXPECT_TRUE(e.records[i].result == c.records[i].result);
    EXPECT_EQ(e.records[i].start, c.records[i].start);
    EXPECT_EQ(e.records[i].end, c.records[i].end);
    EXPECT_EQ(e.records[i].process, c.records[i].process);
  }
  EXPECT_EQ(e.all_adds_completed, c.all_adds_completed);
  EXPECT_EQ(e.rounds_executed, c.rounds_executed);
  EXPECT_EQ(e.add_latency_rounds_total, c.add_latency_rounds_total);
  EXPECT_EQ(e.adds, c.adds);
}

// A randomized workload: adds and gets interleaved over rounds/processes.
WsConfig random_config(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  WsConfig cfg;
  cfg.env.n = 4 + rng() % 9;  // 4..12
  cfg.env.seed = 1 + rng() % 1000;
  switch (rng() % 3) {
    case 0:
      cfg.env.kind = EnvKind::kES;
      cfg.env.stabilization = 0;
      break;
    case 1:
      cfg.env.kind = EnvKind::kES;
      cfg.env.stabilization = 3;
      break;
    default:
      cfg.env.kind = EnvKind::kMS;
      break;
  }
  const std::size_t n_crashes = rng() % 3;
  for (std::size_t i = 0; i < n_crashes; ++i)
    cfg.crashes.crash_at(rng() % cfg.env.n, 2 + rng() % 8);
  switch (rng() % 4) {
    case 0:
      break;  // fault-free
    case 1:
      cfg.faults.loss_prob = 0.3;
      break;
    case 2:
      cfg.faults.reorder_prob = 0.4;
      cfg.faults.max_extra_delay = 3;
      break;
    default:
      cfg.faults.churn.push_back(
          {static_cast<ProcId>(rng() % cfg.env.n),
           static_cast<Round>(2 + rng() % 4), static_cast<Round>(8 + rng() % 4)});
      break;
  }
  const std::size_t ops = 6 + rng() % 10;
  for (std::size_t i = 0; i < ops; ++i) {
    const Round r = 2 + static_cast<Round>(rng() % 20);
    const std::size_t p = rng() % cfg.env.n;
    if (rng() % 2 == 0) {
      cfg.script.push_back(
          {r, p, true, Value(100 + static_cast<std::int64_t>(rng() % 50))});
    } else {
      cfg.script.push_back({r, p, false, Value()});
    }
  }
  return cfg;
}

TEST(WeaksetCohort, SetMatchesExpandedAcrossRandomConfigs) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const WsConfig cfg = random_config(seed);
    const auto expanded = run_set(cfg, WsBackend::kExpanded);
    const auto cohort = run_set(cfg, WsBackend::kCohort);
    expect_equal(expanded, cohort, "config seed " + std::to_string(seed));
  }
}

TEST(WeaksetCohort, ThreadAndShardModesAreByteIdentical) {
  const WsConfig cfg = random_config(77);
  const auto expanded = run_set(cfg, WsBackend::kExpanded);
  const std::pair<std::size_t, std::size_t> modes[] = {
      {1, 0}, {2, 0}, {8, 0}, {1, 8}};
  for (const auto& [threads, shards] : modes) {
    const auto cohort = run_set(cfg, WsBackend::kCohort, threads, shards);
    expect_equal(expanded, cohort,
                 "threads=" + std::to_string(threads) +
                     " shards=" + std::to_string(shards));
  }
}

// Directed split: in a uniform ES run every process is one class until an
// add mutates ONE member.  A get by the adder in the same round already
// observes its own value (PROPOSED is local); a get by anyone else does
// not see it yet — the cohort engine must split the adder out to keep
// those two gets distinguishable.
TEST(WeaksetCohort, InjectedAddSplitsAdderAndGetsDiffer) {
  WsConfig cfg;
  cfg.env.kind = EnvKind::kES;
  cfg.env.stabilization = 0;
  cfg.env.n = 8;
  cfg.env.seed = 5;
  cfg.script = {{4, 3, true, Value(42)},   // add on p3
                {4, 3, false, Value()},    // same-round get by the adder
                {4, 5, false, Value()}};   // same-round get by a bystander
  const auto expanded = run_set(cfg, WsBackend::kExpanded);
  const auto cohort = run_set(cfg, WsBackend::kCohort);
  expect_equal(expanded, cohort, "directed split");

  ASSERT_EQ(cohort.records.size(), 3u);
  EXPECT_EQ(cohort.records[1].result.count(Value(42)), 1u);  // adder sees it
  EXPECT_EQ(cohort.records[2].result.count(Value(42)), 0u);  // bystander not
  EXPECT_GE(cohort.cohort_peak_classes, 2u);  // the add split one member out
  // Once the add completes the value is in everyone's PROPOSED and the
  // adder re-converges with the rest.
  EXPECT_LE(cohort.cohort_classes, 2u);
}

// A process crashing with its add still in flight: the expanded engine
// keeps polling the dead automaton (frozen at its final compute); the
// cohort engine serves the same reads from the death-time clone.  The
// record must keep end = horizon on both.
TEST(WeaksetCohort, CrashedAdderFrozenReadsMatch) {
  for (Round crash_round = 4; crash_round <= 8; ++crash_round) {
    WsConfig cfg;
    cfg.env.kind = EnvKind::kMS;
    cfg.env.n = 6;
    cfg.env.seed = 11;
    cfg.crashes.crash_at(2, crash_round);
    cfg.script = {{4, 2, true, Value(7)},  // add racing the crash
                  {6, 0, false, Value()},
                  {10, 1, false, Value()}};
    const auto expanded = run_set(cfg, WsBackend::kExpanded);
    const auto cohort = run_set(cfg, WsBackend::kCohort);
    expect_equal(expanded, cohort,
                 "crash_round " + std::to_string(crash_round));
  }
}

// Directed loss/churn (the weakset family's fault smoke): heavy loss slows
// adds but never blocks them forever; a churn window spanning the add
// delays completion past the rejoin.  Both backends agree on the degraded
// timings.
TEST(WeaksetCohort, DirectedLossAndChurnDegradeTimingOnly) {
  WsConfig loss;
  loss.env.kind = EnvKind::kES;
  loss.env.stabilization = 2;
  loss.env.n = 6;
  loss.env.seed = 3;
  loss.faults.loss_prob = 0.5;
  loss.script = {{3, 1, true, Value(10)}, {3, 4, true, Value(11)},
                 {12, 0, false, Value()}};
  const auto loss_exp = run_set(loss, WsBackend::kExpanded);
  const auto loss_coh = run_set(loss, WsBackend::kCohort);
  expect_equal(loss_exp, loss_coh, "loss");
  EXPECT_TRUE(loss_exp.all_adds_completed);

  WsConfig churn = loss;
  churn.faults = {};
  churn.faults.churn.push_back({1, 3, 9});  // p1 disconnected over its add
  const auto churn_exp = run_set(churn, WsBackend::kExpanded);
  const auto churn_coh = run_set(churn, WsBackend::kCohort);
  expect_equal(churn_exp, churn_coh, "churn");
  EXPECT_TRUE(churn_exp.all_adds_completed);
  // The disconnected process cannot finish inside the window: its add
  // completes only after rejoin, so total latency exceeds the fault-free
  // run's.
  WsConfig clean = churn;
  clean.faults = {};
  const auto clean_exp = run_set(clean, WsBackend::kExpanded);
  EXPECT_GT(churn_exp.add_latency_rounds_total,
            clean_exp.add_latency_rounds_total);
}

// ---- Register mode (Proposition 1 over the same harness) ----

RegisterRunResult run_reg(const WsConfig& cfg,
                          const std::vector<RegScriptOp>& script,
                          WsBackend backend) {
  WsRunOptions opt;
  opt.backend = backend;
  opt.validate_env = false;
  opt.extra_rounds = cfg.extra_rounds;
  opt.faults = cfg.faults;
  return run_register_over_ms(cfg.env, cfg.crashes, script, opt);
}

void expect_equal(const RegisterRunResult& e, const RegisterRunResult& c,
                  const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(e.records.size(), c.records.size());
  for (std::size_t i = 0; i < e.records.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(e.records[i].kind, c.records[i].kind);
    EXPECT_TRUE(e.records[i].value == c.records[i].value);
    EXPECT_EQ(e.records[i].start, c.records[i].start);
    EXPECT_EQ(e.records[i].end, c.records[i].end);
    EXPECT_EQ(e.records[i].process, c.records[i].process);
  }
  EXPECT_EQ(e.check.ok, c.check.ok);
  EXPECT_EQ(e.rounds_executed, c.rounds_executed);
  EXPECT_EQ(e.write_latency_rounds_total, c.write_latency_rounds_total);
  EXPECT_EQ(e.writes_completed, c.writes_completed);
}

TEST(WeaksetCohort, RegisterMatchesExpandedAcrossRandomConfigs) {
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    const WsConfig cfg = random_config(seed);
    std::mt19937_64 rng(seed * 31);
    std::vector<RegScriptOp> script;
    const std::size_t ops = 6 + rng() % 8;
    for (std::size_t i = 0; i < ops; ++i) {
      const Round r = 2 + static_cast<Round>(rng() % 18);
      const std::size_t p = rng() % cfg.env.n;
      if (rng() % 2 == 0)
        script.push_back(
            {r, p, true, Value(static_cast<std::int64_t>(rng() % 100))});
      else
        script.push_back({r, p, false, Value()});
    }
    const auto expanded = run_reg(cfg, script, WsBackend::kExpanded);
    const auto cohort = run_reg(cfg, script, WsBackend::kCohort);
    expect_equal(expanded, cohort, "config seed " + std::to_string(seed));
    EXPECT_TRUE(expanded.check.ok) << expanded.check.violation;
  }
}

}  // namespace
}  // namespace anon
