// Proposition 1 — the regular register built from a weak-set.
#include "weakset/ws_register.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anon {
namespace {

TEST(WsRegElement, EncodeDecodeRoundTrip) {
  for (std::int64_t v : {0LL, 1LL, 77LL, (1LL << 31) - 1}) {
    for (std::uint32_t rank : {0u, 1u, 900u}) {
      WsRegElement e{Value(v), rank};
      WsRegElement back = WsRegElement::decode(e.encode());
      EXPECT_EQ(back.value, e.value);
      EXPECT_EQ(back.rank, e.rank);
    }
  }
}

TEST(WsRegElement, EncodeRejectsOutOfRange) {
  WsRegElement e{Value(1LL << 40), 0};
  EXPECT_THROW(e.encode(), CheckFailure);
}

TEST(WsRegisterTransform, ReadPicksMaxRankThenMaxValue) {
  WsRegSnapshot snap;
  EXPECT_EQ(register_read(snap), std::nullopt);
  snap.push_back({Value(5), 0});
  EXPECT_EQ(register_read(snap), Value(5));
  snap.push_back({Value(3), 1});
  EXPECT_EQ(register_read(snap), Value(3));  // higher rank wins over value
  snap.push_back({Value(9), 1});
  EXPECT_EQ(register_read(snap), Value(9));  // rank tie: max value
}

TEST(WsRegisterTransform, ReadIsOrderAgnostic) {
  // The harness hands over snapshots in packed (rank, value) order, but
  // the transformation must not depend on it.
  WsRegSnapshot snap{{Value(9), 1}, {Value(5), 0}, {Value(3), 1}};
  EXPECT_EQ(register_read(snap), Value(9));
}

TEST(WsRegisterTransform, WriteRankIsSnapshotSize) {
  WsRegSnapshot snap{{Value(1), 0}, {Value(2), 1}};
  EXPECT_EQ(make_write_element(Value(7), snap).rank, 2u);
}

// --- Regularity checker unit tests. ---

RegOpRecord wr(Value v, std::uint64_t s, std::uint64_t e) {
  return {RegOpRecord::Kind::kWrite, v, s, e, 0};
}
RegOpRecord rd(std::optional<Value> v, std::uint64_t s, std::uint64_t e) {
  return {RegOpRecord::Kind::kRead, v, s, e, 1};
}

TEST(RegChecker, SequentialReadsSeeLastWrite) {
  EXPECT_TRUE(check_regular_register({wr(Value(1), 0, 2), rd(Value(1), 5, 6)}).ok);
  EXPECT_FALSE(
      check_regular_register({wr(Value(1), 0, 2), rd(Value(2), 5, 6)}).ok);
  EXPECT_FALSE(
      check_regular_register({wr(Value(1), 0, 2), rd(std::nullopt, 5, 6)}).ok);
}

TEST(RegChecker, StaleReadAfterSupersedingWriteRejected) {
  EXPECT_FALSE(check_regular_register({wr(Value(1), 0, 2), wr(Value(2), 3, 4),
                                       rd(Value(1), 7, 8)})
                   .ok);
}

TEST(RegChecker, ConcurrentWriteEitherValueAllowed) {
  // Write of 2 overlaps the read: old or new value both fine.
  EXPECT_TRUE(check_regular_register({wr(Value(1), 0, 2), wr(Value(2), 5, 9),
                                      rd(Value(1), 6, 7)})
                  .ok);
  EXPECT_TRUE(check_regular_register({wr(Value(1), 0, 2), wr(Value(2), 5, 9),
                                      rd(Value(2), 6, 7)})
                  .ok);
}

TEST(RegChecker, InitialReadOnlyBeforeAnyCompletedWrite) {
  EXPECT_TRUE(check_regular_register({rd(std::nullopt, 0, 1)}).ok);
  EXPECT_TRUE(
      check_regular_register({wr(Value(1), 5, 9), rd(std::nullopt, 6, 7)}).ok);
}

// --- The full construction over Algorithm 4 in MS. ---

class RegOverMsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegOverMsSweep, RegularityHolds) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 4;
  env.seed = GetParam();
  std::vector<RegScriptOp> script;
  // Writers 0 and 1 alternate; readers 2 and 3 poll.
  for (int i = 0; i < 8; ++i) {
    script.push_back({static_cast<Round>(2 + 5 * i),
                      static_cast<std::size_t>(i % 2), true, Value(10 + i)});
    script.push_back(
        {static_cast<Round>(4 + 5 * i), 2, false, Value()});
    script.push_back(
        {static_cast<Round>(5 + 5 * i), 3, false, Value()});
  }
  auto run = run_register_over_ms(env, CrashPlan{}, script);
  EXPECT_TRUE(run.check.ok) << run.check.violation;
  EXPECT_GT(run.writes_completed, 0u);
}

TEST_P(RegOverMsSweep, RegularityHoldsUnderCrashes) {
  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 5;
  env.seed = GetParam() * 31 + 1;
  CrashPlan crashes;
  crashes.crash_at(0, 12);  // a writer dies mid-history
  std::vector<RegScriptOp> script;
  for (int i = 0; i < 10; ++i) {
    script.push_back({static_cast<Round>(2 + 4 * i),
                      static_cast<std::size_t>(i % 2), true, Value(10 + i)});
    script.push_back({static_cast<Round>(3 + 4 * i), 2 + (i % 3 == 0 ? 1u : 0u),
                      false, Value()});
  }
  auto run = run_register_over_ms(env, crashes, script);
  EXPECT_TRUE(run.check.ok) << run.check.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegOverMsSweep,
                         ::testing::Values(2, 11, 23, 4242, 555));

TEST(RegOverMs, SequentialWritesAreObservedInOrder) {
  EnvParams env;
  env.kind = EnvKind::kES;
  env.n = 3;
  env.seed = 9;
  env.stabilization = 0;
  std::vector<RegScriptOp> script{
      {2, 0, true, Value(1)}, {20, 0, true, Value(2)},
      {40, 1, true, Value(3)}, {60, 2, false, Value()},
  };
  auto run = run_register_over_ms(env, CrashPlan{}, script);
  ASSERT_TRUE(run.check.ok) << run.check.violation;
  // The last read must return the last completed write.
  const RegOpRecord& last = run.records.back();
  ASSERT_EQ(last.kind, RegOpRecord::Kind::kRead);
  EXPECT_EQ(last.value, Value(3));
}

}  // namespace
}  // namespace anon
