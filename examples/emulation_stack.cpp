// The equivalence half of the paper, live: Algorithm 5 turns a plain
// weak-set into a full MS round environment (Theorem 4) — even when
// processes run at wildly different speeds — and the produced execution
// is machine-certified against the MS definition.
//
// We run Algorithm 4's weak-set AUTOMATON on top of the emulated MS rounds:
// a weak-set built from a weak-set, closing the MS ⟷ weak-set loop.
#include <iostream>

#include "emul/ms_emulation.hpp"
#include "env/validate.hpp"
#include "weakset/ms_weak_set.hpp"

int main() {
  using namespace anon;

  const std::size_t n = 4;

  MsEmulationOptions opt;
  opt.seed = 31337;
  opt.skew = {1, 7, 2, 1};  // process 1 is 7x slower: real round skew

  // Inner automatons: Algorithm 4 (the weak-set protocol) — running on
  // rounds that Algorithm 5 manufactures out of another weak-set.
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  MsEmulation<ValueSet> emu(std::move(autos), opt);

  // Drive a few adds through the inner weak-set while rounds are running.
  auto& w0 = dynamic_cast<MsWeakSetAutomaton&>(
      const_cast<GirafProcess<ValueSet>&>(emu.process(0)).automaton());
  auto& w2 = dynamic_cast<MsWeakSetAutomaton&>(
      const_cast<GirafProcess<ValueSet>&>(emu.process(2)).automaton());
  w0.start_add(Value(111));
  w2.start_add(Value(222));

  if (!emu.run_until_round(60)) {
    std::cout << "emulation stalled\n";
    return 1;
  }

  std::cout << "rounds completed per process: ";
  for (ProcId p = 0; p < n; ++p) std::cout << emu.round(p) << " ";
  std::cout << "\ninner weak-set adds completed: "
            << (!w0.add_blocked() && !w2.add_blocked() ? "yes" : "NO") << "\n";

  // Every inner get sees both values at every process.
  bool all_see = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto& w = dynamic_cast<const MsWeakSetAutomaton&>(
        emu.process(p).automaton());
    if (w.get().count(Value(111)) == 0 || w.get().count(Value(222)) == 0)
      all_see = false;
  }
  std::cout << "all processes see both values: " << (all_see ? "yes" : "NO")
            << "\n";

  std::vector<ProcId> correct(n);
  for (ProcId p = 0; p < n; ++p) correct[p] = p;
  auto res = check_environment(emu.trace(), n, correct);
  std::cout << "emulated environment: " << res.to_string() << "\n";

  return (res.ms_ok && all_see) ? 0 : 1;
}
