// The equivalence half of the paper, live: Algorithm 5 turns a plain
// weak-set into a full MS round environment (Theorem 4) — even when
// processes run at wildly different speeds — and the produced execution
// is machine-certified against the MS definition.
//
// We run Algorithm 4's weak-set AUTOMATON on top of the emulated MS rounds:
// a weak-set built from a weak-set, closing the MS ⟷ weak-set loop.  The
// whole stack is one emulation-family ScenarioSpec (inner "weakset", two
// injected adds) through the scenario registry.
#include <iostream>

#include "scenario/registry.hpp"

int main() {
  using namespace anon;

  ScenarioSpec spec;
  spec.name = "emulation-stack";
  spec.family = ScenarioFamily::kEmulation;
  spec.seeds = {31337};
  spec.env_kind = EnvKind::kMS;
  spec.n = 4;
  spec.emulation.inner = EmulationSpecSection::Inner::kWeakset;
  spec.emulation.rounds = 60;
  spec.emulation.skew = {1, 7, 2, 1};  // process 1 is 7x slower: round skew
  spec.emulation.adds = {{0, 111}, {2, 222}};  // inner weak-set adds

  const auto report = ScenarioRegistry::instance().run(spec);
  const auto& cell = report.emulation_cells[0];

  if (!cell.ran) {
    std::cout << "emulation stalled\n";
    return 1;
  }

  std::cout << "rounds completed per process: " << cell.rounds_min << " .. "
            << cell.rounds_max << " (skewed on purpose)\n"
            << "inner weak-set adds completed: "
            << (cell.adds_completed ? "yes" : "NO") << "\n"
            << "all processes see both values: "
            << (cell.all_see ? "yes" : "NO") << "\n"
            << "emulated environment MS-certified: "
            << (cell.ms_certified ? "yes" : "NO") << "\n";

  return (cell.ms_certified && cell.all_see) ? 0 : 1;
}
