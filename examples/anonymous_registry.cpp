// An anonymous configuration registry: the weak-set (Algorithm 4) as a
// crash-tolerant shared store for an unknown, anonymous fleet — plus the
// Proposition-1 register giving "current config version" semantics on top.
//
// Fleet members publish the feature flags they locally enabled (weak-set:
// grow-only, identity-free), while the rollout controller publishes the
// current config EPOCH through the register transformation (last write
// wins).  Works with ANY number of crashes, as long as the MS assumption
// (some timely broadcaster per round) holds — no quorums anywhere.
#include <iostream>

#include "weakset/ms_weak_set.hpp"
#include "weakset/ws_register.hpp"

int main() {
  using namespace anon;

  EnvParams env;
  env.kind = EnvKind::kMS;
  env.n = 6;
  env.seed = 99;

  // --- Part 1: the flag set (raw weak-set). -------------------------------
  std::vector<WsScriptOp> flags;
  flags.push_back({2, 0, true, Value(1001)});   // node 0 enables flag 1001
  flags.push_back({3, 1, true, Value(1002)});
  flags.push_back({5, 2, true, Value(1003)});
  flags.push_back({9, 3, false, Value()});      // node 3 lists active flags
  flags.push_back({14, 4, true, Value(1004)});
  flags.push_back({20, 5, false, Value()});     // final read

  CrashPlan crashes;
  crashes.crash_at(2, 7);  // node 2 dies right after publishing 1003

  auto run = run_ms_weak_set(env, crashes, flags);
  std::cout << "--- feature-flag weak-set ---\n";
  for (const auto& rec : run.records) {
    if (rec.kind == WsOpRecord::Kind::kGet)
      std::cout << "get by p" << rec.process << " @r" << rec.start / 4
                << " -> " << to_string(rec.result) << "\n";
  }
  auto check = check_weak_set_spec(run.records);
  std::cout << "weak-set spec: " << (check.ok ? "ok" : check.violation)
            << "\n\n";

  // --- Part 2: the config epoch (Prop-1 register over the weak-set). ------
  std::vector<RegScriptOp> epochs;
  epochs.push_back({2, 0, true, Value(1)});    // epoch 1 published by node 0
  epochs.push_back({12, 1, true, Value(2)});   // controller failover: node 1
  epochs.push_back({25, 4, false, Value()});   // reader
  epochs.push_back({30, 2, true, Value(3)});
  epochs.push_back({45, 5, false, Value()});   // reader sees the latest

  auto reg = run_register_over_ms(env, CrashPlan{}, epochs);
  std::cout << "--- config-epoch register (Proposition 1) ---\n";
  for (const auto& rec : reg.records) {
    if (rec.kind == RegOpRecord::Kind::kRead)
      std::cout << "read by p" << rec.process << " @r" << rec.start / 4
                << " -> epoch "
                << (rec.value ? rec.value->to_string() : "none") << "\n";
  }
  std::cout << "register regularity: "
            << (reg.check.ok ? "ok" : reg.check.violation) << "\n";

  return (check.ok && reg.check.ok) ? 0 : 1;
}
