// An anonymous configuration registry: the weak-set (Algorithm 4) as a
// crash-tolerant shared store for an unknown, anonymous fleet — plus the
// Proposition-1 register giving "current config version" semantics on top.
//
// Fleet members publish the feature flags they locally enabled (weak-set:
// grow-only, identity-free), while the rollout controller publishes the
// current config EPOCH through the register transformation (last write
// wins).  Works with ANY number of crashes, as long as the MS assumption
// (some timely broadcaster per round) holds — no quorums anywhere.
//
// Both stores are weakset-family ScenarioSpecs (mode "set" / "register")
// through the scenario registry; keep_records retains the timestamped op
// histories on the in-memory report for printing.
#include <iostream>

#include "scenario/registry.hpp"

int main() {
  using namespace anon;

  // --- Part 1: the flag set (raw weak-set). -------------------------------
  ScenarioSpec flags;
  flags.name = "feature-flags";
  flags.family = ScenarioFamily::kWeakset;
  flags.seeds = {99};
  flags.env_kind = EnvKind::kMS;
  flags.n = 6;
  flags.weakset.mode = WeaksetSpecSection::Mode::kSet;
  flags.weakset.script = {
      {2, 0, true, 1001},    // node 0 enables flag 1001
      {3, 1, true, 1002},
      {5, 2, true, 1003},
      {9, 3, false, 0},      // node 3 lists active flags
      {14, 4, true, 1004},
      {20, 5, false, 0},     // final read
  };
  flags.weakset.keep_records = true;
  // Node 2 dies right after publishing 1003.
  flags.crashes.kind = CrashGenSpec::Kind::kExplicit;
  flags.crashes.entries = {{2, 7}};

  const auto flag_report = ScenarioRegistry::instance().run(flags);
  const auto& flag_cell = flag_report.weakset_cells[0];
  std::cout << "--- feature-flag weak-set ---\n";
  for (const auto& rec : flag_cell.set_records) {
    if (rec.kind == WsOpRecord::Kind::kGet)
      std::cout << "get by p" << rec.process << " @r" << rec.start / 4
                << " -> " << to_string(rec.result) << "\n";
  }
  std::cout << "weak-set spec: "
            << (flag_cell.spec_ok ? "ok" : flag_cell.violation) << "\n\n";

  // --- Part 2: the config epoch (Prop-1 register over the weak-set). ------
  ScenarioSpec epochs;
  epochs.name = "config-epochs";
  epochs.family = ScenarioFamily::kWeakset;
  epochs.seeds = {99};
  epochs.env_kind = EnvKind::kMS;
  epochs.n = 6;
  epochs.weakset.mode = WeaksetSpecSection::Mode::kRegister;
  epochs.weakset.script = {
      {2, 0, true, 1},     // epoch 1 published by node 0
      {12, 1, true, 2},    // controller failover: node 1
      {25, 4, false, 0},   // reader
      {30, 2, true, 3},
      {45, 5, false, 0},   // reader sees the latest
  };
  epochs.weakset.keep_records = true;

  const auto epoch_report = ScenarioRegistry::instance().run(epochs);
  const auto& epoch_cell = epoch_report.weakset_cells[0];
  std::cout << "--- config-epoch register (Proposition 1) ---\n";
  for (const auto& rec : epoch_cell.reg_records) {
    if (rec.kind == RegOpRecord::Kind::kRead)
      std::cout << "read by p" << rec.process << " @r" << rec.start / 4
                << " -> epoch "
                << (rec.value ? rec.value->to_string() : "none") << "\n";
  }
  std::cout << "register regularity: "
            << (epoch_cell.spec_ok ? "ok" : epoch_cell.violation) << "\n";

  return (flag_cell.spec_ok && epoch_cell.spec_ok) ? 0 : 1;
}
