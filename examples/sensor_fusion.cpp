// Sensor fusion in an anonymous sensor field — the paper's motivating
// setting (§1): wireless sensors with no IDs, unknown fleet size, crashes.
//
// A field of identical temperature sensors must agree on ONE alarm
// threshold using Algorithm 3 under the ESS assumption (eventually one
// sensor's radio reaches everybody every round — e.g. the one nearest the
// gateway).  Several sensors are identical clones proposing the same
// value (true anonymity: their messages merge); some die mid-protocol.
#include <iostream>

#include "algo/ess_consensus.hpp"
#include "algo/runner.hpp"

int main() {
  using namespace anon;

  const std::size_t kSensors = 9;

  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kESS;
  cfg.env.n = kSensors;
  cfg.env.seed = 7;
  cfg.env.stabilization = 15;  // radio interference settles by round 15
  cfg.env.timely_prob = 0.2;   // flaky links before/besides the source

  // Three clone groups proposing their locally computed threshold; clones
  // are byte-identical processes — the network cannot tell them apart.
  cfg.initial = {Value(40), Value(40), Value(40),   // cluster A
                 Value(55), Value(55),              // cluster B
                 Value(47), Value(47), Value(47), Value(47)};  // cluster C

  // Two sensors run out of battery mid-run (partial final broadcast).
  cfg.crashes.crash_at(1, 9);
  cfg.crashes.crash_at(5, 21);

  auto report = run_consensus(ConsensusAlgo::kEss, cfg);

  std::cout << "sensors:           " << kSensors << " (3 anonymous clusters)\n"
            << "crashed:           2 (rounds 9 and 21)\n"
            << "agreed threshold:  "
            << (report.value ? report.value->to_string() : "-") << "\n"
            << "all correct decided: "
            << (report.all_correct_decided ? "yes" : "NO") << "\n"
            << "agreement/validity:  "
            << (report.agreement && report.validity ? "ok" : "VIOLATED")
            << "\n"
            << "rounds to finish:    " << report.last_decision_round << "\n"
            << "environment:         " << report.env_check.to_string() << "\n";

  // The decided threshold is one of the clusters' proposals.
  return report.all_correct_decided && report.agreement && report.validity
             ? 0
             : 1;
}
