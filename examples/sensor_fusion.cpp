// Sensor fusion in an anonymous sensor field — the paper's motivating
// setting (§1): wireless sensors with no IDs, unknown fleet size, crashes.
//
// A field of identical temperature sensors must agree on ONE alarm
// threshold using Algorithm 3 under the ESS assumption (eventually one
// sensor's radio reaches everybody every round — e.g. the one nearest the
// gateway).  Several sensors are identical clones proposing the same
// value (true anonymity: their messages merge); some die mid-protocol.
// The whole field is one declarative ScenarioSpec through the registry.
#include <iostream>

#include "scenario/registry.hpp"

int main() {
  using namespace anon;

  const std::size_t kSensors = 9;

  ScenarioSpec spec;
  spec.name = "sensor-fusion";
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {7};
  spec.env_kind = EnvKind::kESS;
  spec.n = kSensors;
  spec.stabilization = 15;  // radio interference settles by round 15
  spec.timely_prob = 0.2;   // flaky links before/besides the source

  // Three clone groups proposing their locally computed threshold; clones
  // are byte-identical processes — the network cannot tell them apart.
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  spec.initial.values = {40, 40, 40,            // cluster A
                         55, 55,                // cluster B
                         47, 47, 47, 47};       // cluster C

  // Two sensors run out of battery mid-run (partial final broadcast).
  spec.crashes.kind = CrashGenSpec::Kind::kExplicit;
  spec.crashes.entries = {{1, 9}, {5, 21}};

  spec.consensus.algo = ConsensusAlgo::kEss;
  spec.consensus.record_deliveries = true;
  spec.consensus.validate_env = true;

  const auto scenario = ScenarioRegistry::instance().run(spec);
  const auto& report = scenario.consensus_cells[0].report;

  std::cout << "sensors:           " << kSensors << " (3 anonymous clusters)\n"
            << "crashed:           2 (rounds 9 and 21)\n"
            << "agreed threshold:  "
            << (report.value ? report.value->to_string() : "-") << "\n"
            << "all correct decided: "
            << (report.all_correct_decided ? "yes" : "NO") << "\n"
            << "agreement/validity:  "
            << (report.agreement && report.validity ? "ok" : "VIOLATED")
            << "\n"
            << "rounds to finish:    " << report.last_decision_round << "\n"
            << "environment:         " << report.env_check.to_string() << "\n";

  // The decided threshold is one of the clusters' proposals.
  return report.all_correct_decided && report.agreement && report.validity
             ? 0
             : 1;
}
