// Real threads, real clock: anonymous consensus over an in-process
// broadcast bus with per-link jitter — the deployment-shaped runtime.
// Six OS threads (no IDs exchanged anywhere on the wire!) agree on a
// value; one of them dies three rounds in.
//
// The scenario itself arrives as a declarative spec — here parsed from
// the JSON a deployment would ship (the exact format `anonsim describe`
// prints) — and the realtime cluster is configured from it.  The lockstep
// families run inside the scenario registry; this example shows the same
// spec surface driving the wall-clock runtime instead.
#include <chrono>
#include <iostream>

#include "runtime/realtime.hpp"
#include "scenario/spec.hpp"

int main() {
  using namespace anon;

  // What an operator would put in lan.json (cf. `anonsim describe`).
  static const char kLanScenario[] = R"json({
    "name": "realtime-lan",
    "family": "consensus",
    "seeds": [2026],
    "env": {"kind": "es", "n": 6, "stabilization": 0, "max_delay": 3,
            "timely_prob": 0.25},
    "workload": {
      "initial": {"kind": "explicit", "values": [12, 55, 31, 55, 8, 47]},
      "crashes": {"kind": "explicit", "entries": [{"process": 4, "round": 3}]}
    },
    "consensus": {"algo": "es", "max_rounds": 1000}
  })json";

  auto decoded = parse_scenario_spec(kLanScenario);
  if (!decoded.ok()) {
    std::cerr << "bad scenario:\n" << decoded.errors_to_string() << "\n";
    return 2;
  }
  const ScenarioSpec& spec = *decoded.spec;
  const std::size_t n = spec.n;

  // 2 ms of per-link jitter; a 10 ms round period keeps links timely
  // (that's how a round period realizes the ES assumption in practice).
  BroadcastBus bus(n, std::make_unique<JitterPolicy>(
                          spec.seeds[0], std::chrono::milliseconds(2)));

  std::vector<RealtimeEsCluster::AutomatonFactory> factories;
  for (const Value& v : spec.initial_values())
    factories.push_back([v](HistoryArena*) {
      return std::make_unique<EsConsensus>(v);
    });

  RealtimeOptions opt;
  opt.round_period = std::chrono::milliseconds(10);
  opt.max_rounds = spec.consensus.max_rounds;
  RealtimeEsCluster cluster(std::move(factories), &bus, opt);
  for (const auto& crash : spec.crashes.entries)
    cluster.crash_before_round(crash.process, crash.round);

  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = cluster.run();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  std::cout << "threads: " << n << " (thread 4 crashed before round 3)\n";
  for (std::size_t p = 0; p < n; ++p) {
    auto d = cluster.decision(p);
    std::cout << "  thread " << p << ": rounds=" << cluster.rounds_executed(p)
              << " decision=" << (d ? d->to_string() : "(crashed)") << "\n";
  }
  std::cout << "all alive threads decided: " << (ok ? "yes" : "NO") << " in "
            << ms << " ms, " << bus.broadcasts() << " broadcasts\n";
  return ok ? 0 : 1;
}
