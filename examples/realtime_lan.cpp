// Real threads, real clock: anonymous consensus over an in-process
// broadcast bus with per-link jitter — the deployment-shaped runtime.
// Six OS threads (no IDs exchanged anywhere on the wire!) agree on a
// value; one of them dies three rounds in.
#include <chrono>
#include <iostream>

#include "runtime/realtime.hpp"

int main() {
  using namespace anon;
  const std::size_t n = 6;

  // 2 ms of per-link jitter; a 10 ms round period keeps links timely
  // (that's how a round period realizes the ES assumption in practice).
  BroadcastBus bus(n, std::make_unique<JitterPolicy>(
                          2026, std::chrono::milliseconds(2)));

  std::vector<RealtimeEsCluster::AutomatonFactory> factories;
  const std::int64_t proposals[n] = {12, 55, 31, 55, 8, 47};
  for (std::size_t i = 0; i < n; ++i)
    factories.push_back([v = proposals[i]](HistoryArena*) {
      return std::make_unique<EsConsensus>(Value(v));
    });

  RealtimeOptions opt;
  opt.round_period = std::chrono::milliseconds(10);
  opt.max_rounds = 1000;
  RealtimeEsCluster cluster(std::move(factories), &bus, opt);
  cluster.crash_before_round(4, 3);

  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = cluster.run();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  std::cout << "threads: " << n << " (thread 4 crashed before round 3)\n";
  for (std::size_t p = 0; p < n; ++p) {
    auto d = cluster.decision(p);
    std::cout << "  thread " << p << ": rounds=" << cluster.rounds_executed(p)
              << " decision=" << (d ? d->to_string() : "(crashed)") << "\n";
  }
  std::cout << "all alive threads decided: " << (ok ? "yes" : "NO") << " in "
            << ms << " ms, " << bus.broadcasts() << " broadcasts\n";
  return ok ? 0 : 1;
}
