// Real sockets, real clock: anonymous consensus over loopback UDP — the
// anonsvc deployment stack.  Six OS processes-worth of nodes (one event
// loop thread each, no IDs exchanged anywhere on the wire!) agree on a
// value; one of them dies three rounds in.
//
// The scenario arrives as the same declarative spec the simulators run —
// here with `"transport": "live"`, the knob that swaps the lockstep
// engine for a LiveCluster of UDP meshes paced by wall-clock deadlines
// (src/svc/).  A blocking SvcClient then asks each node for its decision
// exactly the way an external consumer of the service would.
#include <chrono>
#include <iostream>

#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "scenario/spec.hpp"

int main() {
  using namespace anon;
  using namespace std::chrono_literals;

  // What an operator would put in lan.json (cf. `anonsim describe`; the
  // same file runs on the simulator by flipping transport to "sim").
  static const char kLanScenario[] = R"json({
    "name": "realtime-lan",
    "family": "consensus",
    "seeds": [2026],
    "transport": "live",
    "env": {"kind": "es", "n": 6, "stabilization": 0, "max_delay": 3,
            "timely_prob": 0.25},
    "live": {"socket": "udp", "period_ms": 5, "jitter_ms": 2},
    "workload": {
      "initial": {"kind": "explicit", "values": [12, 55, 31, 55, 8, 47]},
      "crashes": {"kind": "explicit", "entries": [{"process": 4, "round": 3}]}
    },
    "consensus": {"algo": "es", "max_rounds": 1000}
  })json";

  auto decoded = parse_scenario_spec(kLanScenario);
  if (!decoded.ok()) {
    std::cerr << "bad scenario:\n" << decoded.errors_to_string() << "\n";
    return 2;
  }
  const ScenarioSpec& spec = *decoded.spec;

  // Configure the live cluster from the spec — the same mapping
  // `anonsim run --transport live` applies (scenario/runner_live.cpp).
  LiveClusterOptions opt;
  opt.n = spec.n;
  opt.seed = spec.seeds[0];
  opt.period = std::chrono::milliseconds(spec.live.period_ms);
  opt.max_jitter = std::chrono::milliseconds(spec.live.jitter_ms);
  opt.max_rounds = spec.consensus.max_rounds;
  opt.proposals = spec.initial_values();
  opt.crash_at.assign(spec.n, 0);
  for (const auto& crash : spec.crashes.entries)
    opt.crash_at[crash.process] = crash.round;

  LiveCluster cluster(opt);
  const auto t0 = std::chrono::steady_clock::now();
  if (!cluster.start()) {
    std::cerr << "cluster failed to start: " << cluster.error() << "\n";
    return 1;
  }

  // Ask every surviving node for its decision over the client socket.
  bool ok = true;
  std::vector<std::string> lines;
  for (std::size_t p = 0; p < cluster.n(); ++p) {
    if (opt.crash_at[p] != 0) {
      lines.push_back("(crashed)");
      continue;
    }
    SvcClient client;
    if (!client.connect(cluster.client_port(p))) {
      lines.push_back("(unreachable: " + client.error() + ")");
      ok = false;
      continue;
    }
    const auto r = client.decision(10s);
    if (r.ok() && r.values.size() == 1) {
      lines.push_back(r.values[0].to_string());
    } else {
      lines.push_back("(undecided)");
      ok = false;
    }
  }
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  cluster.stop_all();
  cluster.join();

  std::uint64_t frames = 0;
  for (std::size_t p = 0; p < cluster.n(); ++p)
    frames += cluster.node(p).frames_sent();
  std::cout << "nodes: " << cluster.n()
            << " over loopback UDP (node 4 crashed at round 3)\n";
  for (std::size_t p = 0; p < cluster.n(); ++p)
    std::cout << "  node " << p
              << ": rounds=" << cluster.node(p).rounds_executed()
              << " decision=" << lines[p] << "\n";
  std::cout << "all alive nodes decided: " << (ok ? "yes" : "NO") << " in "
            << ms << " ms, " << frames << " service frames\n";
  return ok ? 0 : 1;
}
