// Quickstart: five anonymous processes agree on a value with Algorithm 2
// in the ES environment — no IDs, no known n, one process crashing
// mid-run.
//
//   $ ./quickstart
//
// What to look for: every surviving process decides the same proposed
// value a couple of rounds after the network stabilizes (GST), and the
// recorded trace is machine-certified to satisfy the ES environment.
#include <iostream>

#include "algo/runner.hpp"

int main() {
  using namespace anon;

  ConsensusConfig cfg;
  cfg.env.kind = EnvKind::kES;  // eventually-synchronous network
  cfg.env.n = 5;                // the simulator knows n; the processes don't
  cfg.env.seed = 2026;
  cfg.env.stabilization = 10;   // GST: all links timely from round 11 on

  // Each anonymous process proposes a value (say, a sensor reading).
  cfg.initial = {Value(170), Value(230), Value(190), Value(230), Value(180)};

  // One process crashes during round 6, mid-broadcast.
  cfg.crashes.crash_at(/*process=*/3, /*round=*/6);

  auto report = run_consensus(ConsensusAlgo::kEs, cfg);

  std::cout << "decided:    " << (report.all_correct_decided ? "yes" : "NO")
            << "\n"
            << "value:      "
            << (report.value ? report.value->to_string() : "-") << "\n"
            << "agreement:  " << (report.agreement ? "ok" : "VIOLATED") << "\n"
            << "validity:   " << (report.validity ? "ok" : "VIOLATED") << "\n"
            << "last decision round: " << report.last_decision_round << "\n"
            << "messages delivered:  " << report.deliveries << "\n"
            << "environment check:   " << report.env_check.to_string() << "\n";
  return report.all_correct_decided && report.agreement ? 0 : 1;
}
