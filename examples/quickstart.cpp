// Quickstart: five anonymous processes agree on a value with Algorithm 2
// in the ES environment — no IDs, no known n, one process crashing
// mid-run.  The whole experiment is one declarative ScenarioSpec run
// through the scenario registry (the same surface every bench and the
// anonsim CLI use).
//
//   $ ./example_quickstart
//
// The same scenario from the command line, no C++ required:
//
//   $ anonsim list                       # every family + named preset
//   $ anonsim describe quickstart        # this scenario as JSON
//   $ anonsim run --preset quickstart    # run it, print the summary
//   $ anonsim describe quickstart > my.json
//   $ $EDITOR my.json                    # tweak n, crashes, seeds, ...
//   $ anonsim run --spec my.json --threads 4 --json report.json
//
// A spec names the family (consensus | omega | weakset | emulation |
// weakset-shm | abd), the environment (MS/ES/ESS, n, GST), the workload
// (initial values, crash plan), the backend and the seed list; the report
// comes back as one tagged JSON document.  Malformed specs return
// field-path diagnostics ("workload.initial.values: has 3 entries but
// env.n is 5") instead of aborting.
//
// What to look for: every surviving process decides the same proposed
// value a couple of rounds after the network stabilizes (GST), and the
// recorded trace is machine-certified to satisfy the ES environment.
#include <iostream>

#include "scenario/registry.hpp"

int main() {
  using namespace anon;

  ScenarioSpec spec;
  spec.name = "quickstart";
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {2026};
  spec.env_kind = EnvKind::kES;  // eventually-synchronous network
  spec.n = 5;                    // the simulator knows n; the processes don't
  spec.stabilization = 10;       // GST: all links timely from round 11 on

  // Each anonymous process proposes a value (say, a sensor reading).
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  spec.initial.values = {170, 230, 190, 230, 180};

  // One process crashes during round 6, mid-broadcast.
  spec.crashes.kind = CrashGenSpec::Kind::kExplicit;
  spec.crashes.entries = {{/*process=*/3, /*round=*/6}};

  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.record_deliveries = true;  // the validator replays the trace
  spec.consensus.validate_env = true;       // certify the trace against ES

  auto scenario = ScenarioRegistry::instance().run(spec);
  const auto& report = scenario.consensus_cells[0].report;

  std::cout << "decided:    " << (report.all_correct_decided ? "yes" : "NO")
            << "\n"
            << "value:      "
            << (report.value ? report.value->to_string() : "-") << "\n"
            << "agreement:  " << (report.agreement ? "ok" : "VIOLATED") << "\n"
            << "validity:   " << (report.validity ? "ok" : "VIOLATED") << "\n"
            << "last decision round: " << report.last_decision_round << "\n"
            << "messages delivered:  " << report.deliveries << "\n"
            << "environment check:   " << report.env_check.to_string() << "\n"
            << "\nreport JSON (what `anonsim run --json` writes):\n"
            << scenario.to_json_string();
  return report.all_correct_decided && report.agreement ? 0 : 1;
}
