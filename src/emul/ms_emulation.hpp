// Algorithm 5 — emulating the MS environment from a weak-set (Theorem 4).
//
// Round progression is driven by weak-set operations instead of timers:
//   on initialization: DELIVERED := ∅; trigger end-of-round;
//   on send(m_i, k_i):  addS(⟨m_i, k_i⟩);                     (blocking)
//                       for all ⟨m,k⟩ ∈ getS \ DELIVERED: deliver;
//                       trigger end-of-round.
//
// Why this satisfies MS: for every round k, let s be the FIRST process to
// complete its round-k add.  Any process that ends round k did so after its
// own round-k add completed (≥ s's completion), and its getS — which
// happens before that end-of-round — therefore returns s's element: s has a
// timely link in round k.  The proof is executable here: the emitted trace
// is certified by check_environment (tests, E5).
//
// The weak-set is an in-memory linearizable set with adversarially-timed
// operations (per-process latency ranges — slow processes produce genuine
// round skew, something the lock-step engine cannot express).  Elements
// are ⟨message-batch, round⟩ pairs; identical elements merge (anonymity).
// Sender provenance is tracked by the SIMULATOR only (for the validator);
// the processes never see it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "giraf/process.hpp"
#include "giraf/trace.hpp"

namespace anon {

struct MsEmulationOptions {
  std::uint64_t seed = 1;
  // Per-op add latency is drawn uniformly from [min, max] ticks; a
  // per-process multiplier (skew) lets some processes crawl.
  std::uint64_t min_add_latency = 1;
  std::uint64_t max_add_latency = 6;
  std::vector<std::uint64_t> skew;  // per-process multiplier (default 1)
  std::uint64_t max_ticks = 1000000;
};

template <GirafMessage M>
class MsEmulation {
 public:
  // The weak-set element ⟨round, batch⟩; the batch is a sorted-unique
  // message vector (canonical, so identical elements still merge).
  using Element = std::pair<Round, std::vector<M>>;

  MsEmulation(std::vector<std::unique_ptr<Automaton<M>>> automatons,
              MsEmulationOptions opt)
      : opt_(opt), rng_(opt.seed) {
    ANON_CHECK(!automatons.empty());
    n_ = automatons.size();
    if (opt_.skew.empty()) opt_.skew.assign(n_, 1);
    ANON_CHECK(opt_.skew.size() == n_);
    for (auto& a : automatons)
      procs_.push_back(std::make_unique<GirafProcess<M>>(std::move(a)));
    states_.resize(n_);
    // Line 3: trigger the first end-of-round, then start the round-1 add.
    for (ProcId p = 0; p < n_; ++p) trigger_eor_and_add(p);
  }

  // Runs until every process has completed `rounds` rounds.
  // Returns false if max_ticks elapsed first.
  bool run_until_round(Round rounds) {
    for (; tick_ < opt_.max_ticks; ++tick_) {
      bool all_done = true;
      for (ProcId p = 0; p < n_; ++p)
        if (procs_[p]->round() < rounds + 1) all_done = false;
      if (all_done) return true;
      // Two phases per tick: first make the elements of ALL adds completing
      // now visible, then run the gets/end-of-rounds.  (Same-tick
      // completers must see each other's elements, otherwise no process
      // would have a timely link in that round — a tie would break MS.)
      std::vector<ProcId> completing;
      for (ProcId p = 0; p < n_; ++p) {
        PerProcess& st = states_[p];
        if (st.add_complete_tick != 0 && st.add_complete_tick <= tick_)
          completing.push_back(p);
      }
      make_visible(tick_);
      for (ProcId p : completing) visible_.insert(states_[p].in_flight);
      for (ProcId p : completing) finish_round_step(p);
    }
    return false;
  }

  std::size_t n() const { return n_; }
  const Trace& trace() const { return trace_; }
  const GirafProcess<M>& process(ProcId p) const { return *procs_[p]; }
  Round round(ProcId p) const { return procs_[p]->round(); }

  // Content of the emulating weak-set (visible part), for tests.
  std::size_t weak_set_size() const { return visible_.size(); }

 private:
  struct PerProcess {
    std::uint64_t add_complete_tick = 0;  // 0 = no add in flight
    Element in_flight;
    std::set<Element> delivered;  // DELIVERED
  };

  void trigger_eor_and_add(ProcId p) {
    auto out = procs_[p]->end_of_round();
    trace_.record_end_of_round(p, out.round, tick_);
    PerProcess& st = states_[p];
    st.in_flight = Element{out.round, out.batch.copy_messages()};
    const std::uint64_t lat =
        opt_.min_add_latency +
        rng_.below(opt_.max_add_latency - opt_.min_add_latency + 1);
    st.add_complete_tick = tick_ + 1 + lat * opt_.skew[p];
    // The element may become visible to concurrent gets any time between
    // now and completion (weak-set: concurrent adds are maybe-visible).
    const std::uint64_t vis = tick_ + 1 + rng_.below(lat * opt_.skew[p] + 1);
    pending_visible_.insert({vis, st.in_flight});
    adders_[st.in_flight].insert(p);
  }

  void finish_round_step(ProcId p) {
    PerProcess& st = states_[p];
    st.add_complete_tick = 0;
    // (The element was made visible in the tick's first phase.)
    // getS \ DELIVERED → deliver.
    for (const Element& e : visible_) {
      if (st.delivered.count(e) > 0) continue;
      st.delivered.insert(e);
      procs_[p]->receive(e.second, e.first);
      for (ProcId adder : adders_[e]) {
        if (adder == p) continue;
        trace_.record_delivery(adder, e.first, p, procs_[p]->round(), tick_);
      }
    }
    // trigger end-of-round; then the next round's add begins.
    trigger_eor_and_add(p);
  }

  void make_visible(std::uint64_t now) {
    for (auto it = pending_visible_.begin(); it != pending_visible_.end();) {
      if (it->first <= now) {
        visible_.insert(it->second);
        it = pending_visible_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t n_;
  MsEmulationOptions opt_;
  Rng rng_;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  std::vector<PerProcess> states_;
  std::set<Element> visible_;
  std::multimap<std::uint64_t, Element> pending_visible_;
  std::map<Element, std::set<ProcId>> adders_;
  Trace trace_;
  std::uint64_t tick_ = 1;
};

}  // namespace anon
