// Algorithm 5 — emulating the MS environment from a weak-set (Theorem 4).
//
// Round progression is driven by weak-set operations instead of timers:
//   on initialization: DELIVERED := ∅; trigger end-of-round;
//   on send(m_i, k_i):  addS(⟨m_i, k_i⟩);                     (blocking)
//                       for all ⟨m,k⟩ ∈ getS \ DELIVERED: deliver;
//                       trigger end-of-round.
//
// Why this satisfies MS: for every round k, let s be the FIRST process to
// complete its round-k add.  Any process that ends round k did so after its
// own round-k add completed (≥ s's completion), and its getS — which
// happens before that end-of-round — therefore returns s's element: s has a
// timely link in round k.  The proof is executable here: the emitted trace
// is certified by check_environment (tests, E5).
//
// The weak-set is an in-memory linearizable set with adversarially-timed
// operations (per-process latency ranges — slow processes produce genuine
// round skew, something the lock-step engine cannot express).  Elements
// are ⟨message-batch, round⟩ pairs; identical elements merge (anonymity).
// Sender provenance is tracked by the SIMULATOR only (for the validator);
// the processes never see it.
//
// --- Representation (this is the emulation stack's hot path) ------------
//
// An element ⟨round, batch⟩ is INTERNED on first add: a digest-bucketed
// table maps its content to a dense id, the canonical message payload is
// built once as a `SharedBatch<M>` and every later add of equal content
// resolves to the same id (one content comparison per digest-bucket
// candidate).  The weak-set's visible part is an append-only LOG of ids;
// each process's DELIVERED set is a WATERMARK cursor into that log —
// everything before the cursor has been delivered, and a delivery step
// consumes exactly the suffix of genuinely-new ids (every step drains the
// whole suffix, so no out-of-order overflow set is needed).  Delivery
// hands the receiver the shared interned payload (a pointer append into
// its inbox window), not a fresh vector.
//
// The seed implementation — `std::set<Element>` with deep vector compares,
// a per-process `std::set<Element>` DELIVERED, and a full rescan of the
// visible set per step — is preserved as `MsEmulationRef`
// (ms_emulation_ref.hpp).  tests/emulation_regression_test.cpp proves the
// two emit byte-identical traces; within one step the new suffix is
// delivered in the reference's element order (round, then canonical
// message order), which is what makes the trace equality exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "emul/emul_faults.hpp"
#include "giraf/process.hpp"
#include "giraf/trace.hpp"

namespace anon {

struct MsEmulationOptions {
  std::uint64_t seed = 1;
  // Per-op add latency is drawn uniformly from [min, max] ticks; a
  // per-process multiplier (skew) lets some processes crawl.
  std::uint64_t min_add_latency = 1;
  std::uint64_t max_add_latency = 6;
  std::vector<std::uint64_t> skew;  // per-process multiplier (default 1)
  std::uint64_t max_ticks = 1000000;
  // Weak-set-operation fault plan (emul_faults.hpp); inactive by default.
  // The reference engine (MsEmulationRef) does not take one — it stays the
  // untouched oracle, and the spec layer rejects faults with engine=ref.
  EmulFaultModel faults;
};

template <GirafMessage M>
class MsEmulation {
 public:
  MsEmulation(std::vector<std::unique_ptr<Automaton<M>>> automatons,
              MsEmulationOptions opt)
      : opt_(opt), rng_(opt.seed) {
    ANON_CHECK(!automatons.empty());
    n_ = automatons.size();
    if (opt_.skew.empty()) opt_.skew.assign(n_, 1);
    ANON_CHECK(opt_.skew.size() == n_);
    for (auto& a : automatons)
      procs_.push_back(std::make_unique<GirafProcess<M>>(std::move(a)));
    states_.resize(n_);
    // Line 3: trigger the first end-of-round, then start the round-1 add.
    for (ProcId p = 0; p < n_; ++p) trigger_eor_and_add(p);
  }

  // Runs until every process has completed `rounds` rounds.
  // Returns false if max_ticks elapsed first.
  bool run_until_round(Round rounds) {
    for (; tick_ < opt_.max_ticks; ++tick_) {
      bool all_done = true;
      for (ProcId p = 0; p < n_; ++p)
        if (procs_[p]->round() < rounds + 1) all_done = false;
      if (all_done) return true;
      // Two phases per tick: first make the elements of ALL adds completing
      // now visible, then run the gets/end-of-rounds.  (Same-tick
      // completers must see each other's elements, otherwise no process
      // would have a timely link in that round — a tie would break MS.)
      completing_.clear();
      for (ProcId p = 0; p < n_; ++p) {
        PerProcess& st = states_[p];
        if (st.add_complete_tick != 0 && st.add_complete_tick <= tick_)
          completing_.push_back(p);
      }
      make_visible(tick_);
      for (ProcId p : completing_) log_append(states_[p].in_flight);
      for (ProcId p : completing_) finish_round_step(p);
    }
    return false;
  }

  std::size_t n() const { return n_; }
  const Trace& trace() const { return trace_; }
  const GirafProcess<M>& process(ProcId p) const { return *procs_[p]; }
  Round round(ProcId p) const { return procs_[p]->round(); }

  // Content of the emulating weak-set (visible part), for tests.
  std::size_t weak_set_size() const { return visible_log_.size(); }

  // Distinct elements ever added (visible or still pending), for tests:
  // identical adds intern to one element.
  std::size_t interned_elements() const { return elems_.size(); }

 private:
  using ElemId = std::uint32_t;

  struct ElemData {
    Round round = 0;
    SharedBatch<M> batch;        // canonical sorted-unique payload
    std::vector<ProcId> adders;  // sorted; simulator-side provenance
    bool in_log = false;
  };

  struct PerProcess {
    std::uint64_t add_complete_tick = 0;  // 0 = no add in flight
    ElemId in_flight = 0;
    std::size_t watermark = 0;  // DELIVERED ≡ visible_log_[0..watermark)
  };

  struct PendingVis {
    std::uint64_t time;
    ElemId id;
  };
  struct PendingLater {  // min-heap on time
    bool operator()(const PendingVis& a, const PendingVis& b) const {
      return a.time > b.time;
    }
  };

  struct RoundBatchKey {
    Round round;
    const MessageBatch<M>* batch;  // canonical: one pointer per content
    friend bool operator==(const RoundBatchKey&, const RoundBatchKey&) =
        default;
  };
  struct RoundBatchHash {
    std::size_t operator()(const RoundBatchKey& k) const {
      return static_cast<std::size_t>(detail::mix_digest(
          k.round, reinterpret_cast<std::uintptr_t>(k.batch)));
    }
  };

  // Interns ⟨round, batch-content⟩ to a dense id.  The payload dedup is
  // the shared BatchInterner (one content comparison per digest-bucket
  // candidate, reusing the view's cached per-message digests); never
  // round_reset here — emulation elements live forever, so the canonical
  // pointer doubles as the content key of the id map.
  ElemId intern(Round round, const InboxView<M>& view) {
    SharedBatch<M> batch = interner_.intern(view);
    auto [it, fresh] = ids_.try_emplace({round, batch.get()}, ElemId{0});
    if (fresh) {
      it->second = static_cast<ElemId>(elems_.size());
      elems_.push_back(ElemData{round, std::move(batch), {}, false});
    }
    return it->second;
  }

  void log_append(ElemId id) {
    if (elems_[id].in_log) return;
    elems_[id].in_log = true;
    visible_log_.push_back(id);
  }

  void trigger_eor_and_add(ProcId p) {
    auto out = procs_[p]->end_of_round();
    trace_.record_end_of_round(p, out.round, tick_);
    PerProcess& st = states_[p];
    st.in_flight = intern(out.round, out.batch);
    std::uint64_t lat =
        opt_.min_add_latency +
        rng_.below(opt_.max_add_latency - opt_.min_add_latency + 1);
    EmulAddFate fate;
    if (opt_.faults.active()) {
      fate = opt_.faults.add_fate(p, out.round);
      lat += fate.extra_latency;
    }
    const std::uint64_t span = lat * opt_.skew[p];
    st.add_complete_tick =
        opt_.faults.completion_tick(p, tick_ + 1 + span);
    // The element may become visible to concurrent gets any time between
    // now and completion (weak-set: concurrent adds are maybe-visible).
    // Always drawn, even when a fault suppresses the publication: the RNG
    // stream must not depend on fault fates (see emul_faults.hpp).
    const std::uint64_t vis = tick_ + 1 + rng_.below(span + 1);
    if (!fate.suppress_early_visibility) {
      pending_.push_back({vis, st.in_flight});
      std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
    }
    // A process adds each element at most once (its round strictly
    // increases), so a sorted insert never sees a duplicate.
    std::vector<ProcId>& adders = elems_[st.in_flight].adders;
    adders.insert(std::lower_bound(adders.begin(), adders.end(), p), p);
  }

  void finish_round_step(ProcId p) {
    PerProcess& st = states_[p];
    st.add_complete_tick = 0;
    // getS \ DELIVERED → deliver: exactly the log suffix past the
    // watermark, presented in element order (round, canonical messages) so
    // the trace matches the reference's sorted-set iteration.
    if (st.watermark < visible_log_.size()) {
      fresh_.assign(visible_log_.begin() +
                        static_cast<std::ptrdiff_t>(st.watermark),
                    visible_log_.end());
      st.watermark = visible_log_.size();
      std::sort(fresh_.begin(), fresh_.end(), [this](ElemId a, ElemId b) {
        const ElemData& ea = elems_[a];
        const ElemData& eb = elems_[b];
        if (ea.round != eb.round) return ea.round < eb.round;
        return std::lexicographical_compare(
            ea.batch->msgs.begin(), ea.batch->msgs.end(),
            eb.batch->msgs.begin(), eb.batch->msgs.end());
      });
      for (ElemId id : fresh_) {
        const ElemData& e = elems_[id];
        procs_[p]->receive(e.batch, e.round);  // shared payload, no copy
        for (ProcId adder : e.adders) {
          if (adder == p) continue;
          trace_.record_delivery(adder, e.round, p, procs_[p]->round(), tick_);
        }
      }
    }
    // trigger end-of-round; then the next round's add begins.
    trigger_eor_and_add(p);
  }

  void make_visible(std::uint64_t now) {
    while (!pending_.empty() && pending_.front().time <= now) {
      std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
      log_append(pending_.back().id);
      pending_.pop_back();
    }
  }

  std::size_t n_;
  MsEmulationOptions opt_;
  Rng rng_;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  std::vector<PerProcess> states_;
  std::vector<ElemData> elems_;  // id-indexed element store
  BatchInterner<M> interner_;    // content → canonical shared payload
  std::unordered_map<RoundBatchKey, ElemId, RoundBatchHash> ids_;
  std::vector<ElemId> visible_log_;  // append-only visible part
  std::vector<PendingVis> pending_;  // min-heap on visibility time
  std::vector<ProcId> completing_;   // per-tick scratch
  std::vector<ElemId> fresh_;        // per-step scratch (new suffix)
  Trace trace_;
  std::uint64_t tick_ = 1;
};

}  // namespace anon
