// Cohort-collapsed Algorithm 5: the MS-from-weak-set emulation executed
// over state-equivalence classes instead of processes.
//
// `MsEmulation` (the expanded engine) keeps one GirafProcess per process
// and walks every process at every completion tick — Θ(n) automaton steps
// and Θ(n · fresh) deliveries per round.  But anonymous processes running
// the same automaton from the same start are INDISTINGUISHABLE until the
// adversary treats them differently, and in the emulation the only
// adversarial knob is the per-add latency draw.  This engine keeps one
// representative per class of equivalent processes, where equivalence is
//
//   (rep process state, DELIVERED watermark, add-completion tick,
//    in-flight element),
//
// i.e. identical past AND identical scheduled future.  Everything a class's
// members would all do identically — receive the fresh log suffix, run
// end-of-round, intern the next element — happens once per class.
//
// What CANNOT collapse is the RNG stream: the expanded engine draws two
// values per process per round (latency, early-visibility time) from one
// sequential generator, and every report field depends on those draws.  So
// the per-member draw loop survives, replayed in the exact expanded order
// (globally ascending process id across the tick's completing classes).
// The collapse win is everything else: automaton steps, inbox merges,
// interning, and the Θ(n · fresh · |adders|) delivery accounting, which
// becomes one multiplicity-weighted count per (class, fresh element):
//
//   deliveries += m·|adders(e)| − |members ∩ adders(e)|
//
// Corner: a trigger in THIS tick can intern an element that is already in
// the visible log (a lagging class catches up to content a faster class
// already published), growing `adders` mid-phase where the expanded engine
// interleaves counting and insertion by process id.  The engine detects
// the corner exactly (any freshly produced element with in_log set) and
// falls back to the expanded per-member order for that tick.
//
// Equivalence notes (why reports are byte-identical, tested in
// tests/emulation_cohort_test.cpp):
//  * The visible log's ORDER is unobservable: watermarks are only taken at
//    post-append points (so every suffix is compared as a set), and each
//    delivery step sorts its suffix canonically by (round, batch content).
//    Hence the event-driven loop may batch make_visible calls.
//  * Ticks with no completions are no-ops in the expanded engine, so the
//    loop jumps straight to the next completion tick; `ran` keeps the
//    expanded boundary semantics exactly (a run whose last completion
//    lands on tick max_ticks − 1 still returns false, because the
//    expanded loop exits before re-checking the goal).
//  * Element ids are allocated in first-producer order in both engines
//    (class lists are kept sorted by smallest member), and ids never leak
//    into any report.
//
// The per-round cost is O(draws n + C·fresh·(m̄ + ā)) against the expanded
// engine's O(n·fresh·ā) delivery walk and Θ(n²)-growing trace (this engine
// records no trace, which is also why ms-certification requires the
// expanded engine — spec validation enforces certify=false here).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/partition.hpp"
#include "core/sweep.hpp"
#include "core/worker_pool.hpp"
#include "emul/emul_faults.hpp"
#include "emul/ms_emulation.hpp"
#include "giraf/process.hpp"

namespace anon {

// How well the run collapsed (tests, benches, `anonsim` output).
struct EmulCohortStats {
  std::size_t classes = 0;      // current number of equivalence classes
  std::size_t max_classes = 0;  // peak over the run
  std::uint64_t splits = 0;     // latency-draw partitions + injected ops
  std::uint64_t merges = 0;     // classes re-collapsed after converging
  std::uint64_t clones = 0;     // representative deep copies made
  std::uint64_t corner_ticks = 0;  // ticks on the exact per-member fallback
};

struct MsEmulationCohortOptions {
  MsEmulationOptions base;
  // Worker-pool participants for the digest / delivery-count passes
  // (1 = serial reference; 0 = one per hardware thread) and the class
  // shard count (0 = one per participant).  Reports are byte-identical at
  // any value: the parallel passes only write index-owned slots and fold
  // serially in index order.
  std::size_t engine_threads = 1;
  std::size_t engine_shards = 0;
};

template <GirafMessage M>
class MsEmulationCohort {
 public:
  // One initial equivalence class: processes starting the same automaton
  // in the same state.  Member sets must partition [0, n).
  struct InitGroup {
    std::unique_ptr<Automaton<M>> automaton;
    std::vector<ProcId> members;
  };

  MsEmulationCohort(std::vector<InitGroup> groups,
                    MsEmulationCohortOptions copt)
      : opt_(copt.base), rng_(opt_.seed) {
    ANON_CHECK(!groups.empty());
    for (const InitGroup& g : groups) n_ += g.members.size();
    ANON_CHECK(n_ > 0);
    if (opt_.skew.empty()) opt_.skew.assign(n_, 1);
    ANON_CHECK(opt_.skew.size() == n_);
    const std::size_t threads = copt.engine_threads == 0
                                    ? resolve_sweep_threads(0)
                                    : copt.engine_threads;
    participants_ = std::max<std::size_t>(threads, 1);
    shard_count_ = copt.engine_shards == 0 ? participants_ : copt.engine_shards;
    shard_count_ = std::max<std::size_t>(shard_count_, 1);
    constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};
    class_of_.assign(n_, kUnassigned);
    for (InitGroup& g : groups) {
      ANON_CHECK(!g.members.empty());
      auto c = std::make_unique<Klass>();
      c->rep = std::make_unique<GirafProcess<M>>(std::move(g.automaton));
      c->members = std::move(g.members);
      std::sort(c->members.begin(), c->members.end());
      for (ProcId p : c->members) {
        ANON_CHECK_MSG(p < n_ && class_of_[p] == kUnassigned,
                       "InitGroup members must partition [0, n)");
        class_of_[p] = 0;  // provisional; sort_and_reindex assigns real ones
      }
      classes_.push_back(std::move(c));
    }
    sort_and_reindex();
    stats_.classes = stats_.max_classes = classes_.size();
    // Expanded ctor: trigger the first end-of-round + round-1 add for every
    // process, ids ascending, at tick 1.  Here: every class completes "now".
    completing_.resize(classes_.size());
    for (std::size_t ci = 0; ci < classes_.size(); ++ci) completing_[ci] = ci;
    trigger_classes();
    split_completed();
    merge_converged();
  }

  // Pre-run (or between-run) per-process state injection: splits p into its
  // own class if needed and applies `fn` to that class's automaton.  The
  // emulation-family runner uses this for weakset-inner `start_add`s — the
  // expanded engine's "mutate process(p).automaton()" has no per-process
  // object to poke here.
  template <typename Fn>
  void mutate_member(ProcId p, Fn&& fn) {
    ANON_CHECK(p < n_);
    Klass& c = *classes_[class_of_[p]];
    if (c.members.size() == 1) {
      fn(c.rep->automaton());
      return;
    }
    ++stats_.splits;
    auto split = std::make_unique<Klass>();
    split->rep = c.rep->clone();
    ++stats_.clones;
    split->members = {p};
    split->add_complete_tick = c.add_complete_tick;
    split->in_flight = c.in_flight;
    split->watermark = c.watermark;
    c.members.erase(std::find(c.members.begin(), c.members.end(), p));
    fn(split->rep->automaton());
    classes_.push_back(std::move(split));
    sort_and_reindex();
    stats_.classes = classes_.size();
    stats_.max_classes = std::max(stats_.max_classes, stats_.classes);
  }

  // Runs until every process has completed `rounds` rounds; false if
  // max_ticks elapsed first.  Same boundary semantics as
  // MsEmulation::run_until_round (see the class comment).
  bool run_until_round(Round rounds) {
    for (;;) {
      if (tick_ >= opt_.max_ticks) return finish_false();
      bool all_done = true;
      for (const auto& c : classes_)
        if (c->rep->round() < rounds + 1) {
          all_done = false;
          break;
        }
      if (all_done) return true;
      std::uint64_t next = EmulFaultModel::kNeverCompletes;
      for (const auto& c : classes_)
        next = std::min(next, c->add_complete_tick);
      if (next >= opt_.max_ticks) {
        tick_ = opt_.max_ticks;
        return finish_false();
      }
      tick_ = next;
      process_tick();
      ++tick_;
    }
  }

  std::size_t n() const { return n_; }
  Round round(ProcId p) const {
    return classes_[class_of_[p]]->rep->round();
  }
  const GirafProcess<M>& representative(ProcId p) const {
    return *classes_[class_of_[p]]->rep;
  }
  std::size_t class_count() const { return classes_.size(); }
  const EmulCohortStats& stats() const { return stats_; }

  // Expanded-report equivalents (no Trace is kept; see the class comment).
  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t last_eor_tick() const { return last_eor_tick_; }

  // Content of the emulating weak-set, comparable to MsEmulation's.
  std::size_t weak_set_size() const { return visible_log_.size(); }
  std::size_t interned_elements() const { return elems_.size(); }

 private:
  using ElemId = std::uint32_t;

  struct ElemData {
    Round round = 0;
    SharedBatch<M> batch;
    std::vector<ProcId> adders;  // sorted; simulator-side provenance
    bool in_log = false;
  };

  struct Klass {
    std::unique_ptr<GirafProcess<M>> rep;
    std::vector<ProcId> members;  // sorted ascending
    // Every member shares one completion tick — differing draws split the
    // class at trigger time, so this is a class invariant, not an average.
    std::uint64_t add_complete_tick = 0;
    ElemId in_flight = 0;
    std::size_t watermark = 0;  // DELIVERED ≡ visible_log_[0..watermark)
    // Per-tick trigger scratch.
    ElemId new_elem = 0;
    Round new_round = 0;
    std::size_t fresh_begin = 0;
  };

  struct PendingVis {
    std::uint64_t time;
    ElemId id;
  };
  struct PendingLater {
    bool operator()(const PendingVis& a, const PendingVis& b) const {
      return a.time > b.time;
    }
  };

  struct RoundBatchKey {
    Round round;
    const MessageBatch<M>* batch;
    friend bool operator==(const RoundBatchKey&, const RoundBatchKey&) =
        default;
  };
  struct RoundBatchHash {
    std::size_t operator()(const RoundBatchKey& k) const {
      return static_cast<std::size_t>(detail::mix_digest(
          k.round, reinterpret_cast<std::uintptr_t>(k.batch)));
    }
  };

  bool finish_false() {
    // The expanded loop ran make_visible at every tick up to max_ticks − 1
    // before giving up; replay the net effect so weak_set_size matches.
    if (opt_.max_ticks > 0) make_visible(opt_.max_ticks - 1);
    return false;
  }

  ElemId intern(Round round, const InboxView<M>& view) {
    SharedBatch<M> batch = interner_.intern(view);
    auto [it, fresh] = ids_.try_emplace({round, batch.get()}, ElemId{0});
    if (fresh) {
      it->second = static_cast<ElemId>(elems_.size());
      elems_.push_back(ElemData{round, std::move(batch), {}, false});
    }
    return it->second;
  }

  void log_append(ElemId id) {
    if (elems_[id].in_log) return;
    elems_[id].in_log = true;
    visible_log_.push_back(id);
  }

  void make_visible(std::uint64_t now) {
    while (!pending_.empty() && pending_.front().time <= now) {
      std::pop_heap(pending_.begin(), pending_.end(), PendingLater{});
      log_append(pending_.back().id);
      pending_.pop_back();
    }
  }

  void process_tick() {
    completing_.clear();
    for (std::size_t ci = 0; ci < classes_.size(); ++ci)
      if (classes_[ci]->add_complete_tick == tick_) completing_.push_back(ci);
    make_visible(tick_);
    // Phase 2 (expanded: ascending process id, deduplicated): appending per
    // class in smallest-member order reproduces the log membership, and the
    // order itself is unobservable.
    for (std::size_t ci : completing_) log_append(classes_[ci]->in_flight);
    trigger_classes();
    split_completed();
    merge_converged();
  }

  // Phase 3: deliveries, end-of-rounds and the next round's adds for every
  // completing class.
  void trigger_classes() {
    const std::uint64_t t = tick_;
    // Step A — once per class: deliver the fresh log suffix to the
    // representative, run its end-of-round, intern the produced element.
    // None of this touches the RNG, the log or any element's adders, so
    // doing it up front commutes with the expanded per-process interleave.
    bool corner = false;
    for (std::size_t ci : completing_) {
      Klass& c = *classes_[ci];
      c.fresh_begin = c.watermark;
      deliver_fresh_to_rep(c);
      c.watermark = visible_log_.size();
      auto out = c.rep->end_of_round();
      last_eor_tick_ = t;
      c.new_elem = intern(out.round, out.batch);
      c.new_round = out.round;
      if (elems_[c.new_elem].in_log) corner = true;
    }
    if (corner) ++stats_.corner_ticks;
    // Step B — delivery metrics, fast path: adders are static for the rest
    // of the phase (no freshly produced element is visible), so the count
    // is one multiplicity-weighted sum per class, parallel over classes.
    if (!corner) deliveries_ += count_deliveries_fast();
    // Step C — the per-member replay, globally ascending process id: the
    // latency/visibility draws must consume the sequential RNG in exactly
    // the expanded order.  In the corner, delivery counting and adders
    // insertion interleave here too.
    build_member_order();
    tick_cand_.resize(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const ProcId p = order_[i].first;
      Klass& c = *classes_[order_[i].second];
      if (corner) deliveries_ += count_deliveries_member(c, p);
      std::uint64_t lat =
          opt_.min_add_latency +
          rng_.below(opt_.max_add_latency - opt_.min_add_latency + 1);
      EmulAddFate fate;
      if (opt_.faults.active()) {
        fate = opt_.faults.add_fate(p, c.new_round);
        lat += fate.extra_latency;
      }
      const std::uint64_t span = lat * opt_.skew[p];
      tick_cand_[i] = opt_.faults.completion_tick(p, t + 1 + span);
      const std::uint64_t vis = t + 1 + rng_.below(span + 1);
      if (!fate.suppress_early_visibility) {
        pending_.push_back({vis, c.new_elem});
        std::push_heap(pending_.begin(), pending_.end(), PendingLater{});
      }
      if (corner) {
        std::vector<ProcId>& adders = elems_[c.new_elem].adders;
        adders.insert(std::lower_bound(adders.begin(), adders.end(), p), p);
      }
    }
    if (!corner)
      for (std::size_t ci : completing_) merge_adders(*classes_[ci]);
    for (std::size_t ci : completing_)
      classes_[ci]->in_flight = classes_[ci]->new_elem;
  }

  void deliver_fresh_to_rep(Klass& c) {
    if (c.fresh_begin >= visible_log_.size()) return;
    fresh_.assign(
        visible_log_.begin() + static_cast<std::ptrdiff_t>(c.fresh_begin),
        visible_log_.end());
    // Element order (round, canonical messages) — the expanded engine's
    // per-process sort, so the representative sees identical receives.
    std::sort(fresh_.begin(), fresh_.end(), [this](ElemId a, ElemId b) {
      const ElemData& ea = elems_[a];
      const ElemData& eb = elems_[b];
      if (ea.round != eb.round) return ea.round < eb.round;
      return std::lexicographical_compare(
          ea.batch->msgs.begin(), ea.batch->msgs.end(), eb.batch->msgs.begin(),
          eb.batch->msgs.end());
    });
    for (ElemId id : fresh_) {
      const ElemData& e = elems_[id];
      c.rep->receive(e.batch, e.round);
    }
  }

  // Σ over the class's fresh suffix of m·|adders(e)| − |members ∩
  // adders(e)| — what m individual receivers would have recorded, counted
  // without expanding them.  Plain uint64 additions, so any summation
  // order (including the parallel fold) is exact.
  std::uint64_t count_deliveries_class(const Klass& c) const {
    const std::uint64_t m = c.members.size();
    std::uint64_t sum = 0;
    for (std::size_t i = c.fresh_begin; i < visible_log_.size(); ++i) {
      const std::vector<ProcId>& adders = elems_[visible_log_[i]].adders;
      sum += m * adders.size() - sorted_intersection_size(c.members, adders);
    }
    return sum;
  }

  std::uint64_t count_deliveries_fast() {
    if (participants_ <= 1 || completing_.size() < 2) {
      std::uint64_t sum = 0;
      for (std::size_t ci : completing_)
        sum += count_deliveries_class(*classes_[ci]);
      return sum;
    }
    return WorkerPool::shared().parallel_reduce(
        completing_.size(), std::uint64_t{0}, reduce_scratch_,
        [this](std::size_t i) {
          return count_deliveries_class(*classes_[completing_[i]]);
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        participants_);
  }

  std::uint64_t count_deliveries_member(const Klass& c, ProcId p) const {
    std::uint64_t sum = 0;
    for (std::size_t i = c.fresh_begin; i < visible_log_.size(); ++i) {
      const std::vector<ProcId>& adders = elems_[visible_log_[i]].adders;
      sum += adders.size();
      if (std::binary_search(adders.begin(), adders.end(), p)) --sum;
    }
    return sum;
  }

  static std::uint64_t sorted_intersection_size(
      const std::vector<ProcId>& a, const std::vector<ProcId>& b) {
    std::uint64_t count = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  // All completing members merged into one globally ascending (p, class)
  // sequence — the expanded trigger order.
  void build_member_order() {
    order_.clear();
    for (std::size_t ci : completing_)
      for (ProcId p : classes_[ci]->members)
        order_.emplace_back(p, static_cast<std::uint32_t>(ci));
    std::sort(order_.begin(), order_.end());
  }

  // Every completing member adds the class's (shared) produced element:
  // one sorted merge per class instead of m sorted inserts.  Members of
  // distinct classes are disjoint and a process never re-adds an element
  // (rounds strictly increase), so the merge never sees duplicates.
  void merge_adders(Klass& c) {
    std::vector<ProcId>& adders = elems_[c.new_elem].adders;
    if (adders.empty()) {
      adders = c.members;
      return;
    }
    merge_scratch_.resize(adders.size() + c.members.size());
    std::merge(adders.begin(), adders.end(), c.members.begin(),
               c.members.end(), merge_scratch_.begin());
    adders.swap(merge_scratch_);
  }

  // Partition each completing class by its members' freshly drawn
  // completion ticks: identical past, diverging future ⇒ split.  The
  // bucket holding the smallest member keeps the representative.
  void split_completed() {
    bool changed = false;
    bucket_of_.clear();
    for (std::size_t i = 0; i < order_.size(); ++i) {
      // order_ entries of one class are ascending-p subsequences; pair
      // each with its candidate tick and group per class below.
      bucket_of_.emplace_back(order_[i].second,
                              std::make_pair(tick_cand_[i], order_[i].first));
    }
    // Group by class, then by tick (stable in p within a bucket).
    std::sort(bucket_of_.begin(), bucket_of_.end());
    std::size_t i = 0;
    while (i < bucket_of_.size()) {
      const std::uint32_t ci = bucket_of_[i].first;
      std::size_t j = i;
      while (j < bucket_of_.size() && bucket_of_[j].first == ci) ++j;
      Klass& c = *classes_[ci];
      // [i, j) is class ci sorted by (tick, p).  First bucket = the one
      // containing the smallest tick... the rep stays with the bucket
      // holding c.members.front().
      const ProcId front = c.members.front();
      std::size_t bucket_start = i;
      buckets_.clear();
      for (std::size_t k = i + 1; k <= j; ++k) {
        if (k == j || bucket_of_[k].second.first !=
                          bucket_of_[bucket_start].second.first) {
          buckets_.emplace_back(bucket_start, k);
          bucket_start = k;
        }
      }
      const auto& buckets = buckets_;
      if (buckets.size() == 1) {
        c.add_complete_tick = bucket_of_[i].second.first;
        i = j;
        continue;
      }
      changed = true;
      stats_.splits += buckets.size() - 1;
      // Find the rep bucket, rebuild its members in place; clone for the
      // rest.
      std::size_t rep_bucket = 0;
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        bool has_front = false;
        for (std::size_t k = buckets[b].first; k < buckets[b].second; ++k)
          if (bucket_of_[k].second.second == front) has_front = true;
        if (has_front) rep_bucket = b;
      }
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (b == rep_bucket) continue;
        auto split = std::make_unique<Klass>();
        split->rep = c.rep->clone();
        ++stats_.clones;
        split->add_complete_tick = bucket_of_[buckets[b].first].second.first;
        split->in_flight = c.in_flight;
        split->watermark = c.watermark;
        split->members.reserve(buckets[b].second - buckets[b].first);
        for (std::size_t k = buckets[b].first; k < buckets[b].second; ++k)
          split->members.push_back(bucket_of_[k].second.second);
        classes_.push_back(std::move(split));
      }
      c.add_complete_tick = bucket_of_[buckets[rep_bucket].first].second.first;
      c.members.clear();
      for (std::size_t k = buckets[rep_bucket].first;
           k < buckets[rep_bucket].second; ++k)
        c.members.push_back(bucket_of_[k].second.second);
      i = j;
    }
    if (changed) {
      sort_and_reindex();
      stats_.classes = classes_.size();
      stats_.max_classes = std::max(stats_.max_classes, stats_.classes);
    }
  }

  // Re-collapse classes whose past AND scheduled future converged.  Exact:
  // digest buckets are candidates, equality is verified field-by-field
  // plus GirafProcess::same_state.
  void merge_converged() {
    if (classes_.size() < 2) return;
    digest_scratch_.resize(classes_.size());
    auto digest_range = [this](std::size_t begin, std::size_t end) {
      for (std::size_t ci = begin; ci < end; ++ci) {
        const Klass& c = *classes_[ci];
        std::uint64_t h = c.rep->state_digest();
        h = detail::mix_digest(h, c.add_complete_tick);
        h = detail::mix_digest(h, c.watermark);
        h = detail::mix_digest(h, c.in_flight);
        digest_scratch_[ci] = {h, static_cast<std::uint32_t>(ci)};
      }
    };
    if (participants_ <= 1 || classes_.size() < 2 * shard_count_) {
      digest_range(0, classes_.size());
    } else {
      balanced_ranges(classes_.size(), shard_count_, &shard_ranges_);
      WorkerPool::shared().parallel_for(
          shard_ranges_.size(),
          [&](std::size_t s) {
            digest_range(shard_ranges_[s].first, shard_ranges_[s].second);
          },
          participants_);
    }
    std::sort(digest_scratch_.begin(), digest_scratch_.end());
    bool merged_any = false;
    for (std::size_t i = 0; i < digest_scratch_.size();) {
      std::size_t j = i + 1;
      while (j < digest_scratch_.size() &&
             digest_scratch_[j].first == digest_scratch_[i].first)
        ++j;
      // Within a digest run, fold equals into the smallest class index.
      for (std::size_t a = i; a < j; ++a) {
        Klass& ca = *classes_[digest_scratch_[a].second];
        if (ca.members.empty()) continue;
        for (std::size_t b = a + 1; b < j; ++b) {
          Klass& cb = *classes_[digest_scratch_[b].second];
          if (cb.members.empty()) continue;
          if (ca.add_complete_tick != cb.add_complete_tick ||
              ca.watermark != cb.watermark || ca.in_flight != cb.in_flight ||
              !ca.rep->same_state(*cb.rep))
            continue;
          Klass& winner =
              digest_scratch_[a].second < digest_scratch_[b].second ? ca : cb;
          Klass& loser = &winner == &ca ? cb : ca;
          merge_scratch_.resize(winner.members.size() + loser.members.size());
          std::merge(winner.members.begin(), winner.members.end(),
                     loser.members.begin(), loser.members.end(),
                     merge_scratch_.begin());
          winner.members.swap(merge_scratch_);
          loser.members.clear();
          ++stats_.merges;
          merged_any = true;
          if (&winner == &cb) break;  // ca emptied; next a
        }
      }
      i = j;
    }
    if (merged_any) {
      classes_.erase(std::remove_if(classes_.begin(), classes_.end(),
                                    [](const std::unique_ptr<Klass>& c) {
                                      return c->members.empty();
                                    }),
                     classes_.end());
      sort_and_reindex();
      stats_.classes = classes_.size();
    }
  }

  // Class-list invariant: sorted by smallest member; class_of_ rebuilt.
  void sort_and_reindex() {
    std::sort(classes_.begin(), classes_.end(),
              [](const std::unique_ptr<Klass>& a,
                 const std::unique_ptr<Klass>& b) {
                return a->members.front() < b->members.front();
              });
    for (std::size_t ci = 0; ci < classes_.size(); ++ci)
      for (ProcId p : classes_[ci]->members)
        class_of_[p] = static_cast<std::uint32_t>(ci);
  }

  std::size_t n_ = 0;
  MsEmulationOptions opt_;
  Rng rng_;
  std::vector<std::unique_ptr<Klass>> classes_;
  std::vector<std::uint32_t> class_of_;
  std::vector<ElemData> elems_;
  BatchInterner<M> interner_;
  std::unordered_map<RoundBatchKey, ElemId, RoundBatchHash> ids_;
  std::vector<ElemId> visible_log_;
  std::vector<PendingVis> pending_;
  std::uint64_t tick_ = 1;
  std::uint64_t deliveries_ = 0;
  std::uint64_t last_eor_tick_ = 1;
  EmulCohortStats stats_;
  std::size_t participants_ = 1;
  std::size_t shard_count_ = 1;
  // Capacity-retaining scratch (steady-state rounds stay allocation-lean).
  std::vector<std::size_t> completing_;
  std::vector<std::pair<ProcId, std::uint32_t>> order_;
  std::vector<std::uint64_t> tick_cand_;
  std::vector<ElemId> fresh_;
  std::vector<ProcId> merge_scratch_;
  std::vector<std::pair<std::uint32_t, std::pair<std::uint64_t, ProcId>>>
      bucket_of_;
  std::vector<std::pair<std::size_t, std::size_t>> buckets_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> digest_scratch_;
  std::vector<std::uint64_t> reduce_scratch_;
  std::vector<ShardRange> shard_ranges_;
};

}  // namespace anon
