// The minimal probe automaton for emulated environments: every round it
// broadcasts the union of everything it has heard (plus its own seed
// value), so information floods the system and the emulated MS trace can
// be certified without any protocol on top.  Shared by the E5 bench and
// the scenario layer's emulation runner.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.hpp"
#include "giraf/automaton.hpp"

namespace anon {

class EchoAutomaton final : public Automaton<ValueSet> {
 public:
  explicit EchoAutomaton(std::int64_t seed) : seed_(seed) {}

  ValueSet initialize() override {
    spent_ = true;
    return ValueSet{Value(seed_)};
  }

  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k)) out.insert(m.begin(), m.end());
    return out;
  }

  // Cohort hooks.  The seed is only read by initialize(), so the whole
  // mutable state is whether it has been spent: two spent echoes behave
  // identically on every future compute (which reads the inbox alone) and
  // compare equal regardless of seed.  That is what lets distinct-seed
  // classes re-collapse once their round-1 messages leave the inbox window.
  std::uint64_t state_digest() const override {
    if (spent_) return 0x5eedc0de00000000ULL;
    return detail::mix_digest(0x11d0a704u, static_cast<std::uint64_t>(seed_));
  }

  bool state_equals(const Automaton<ValueSet>& other) const override {
    const auto* o = dynamic_cast<const EchoAutomaton*>(&other);
    if (o == nullptr || spent_ != o->spent_) return false;
    return spent_ || seed_ == o->seed_;
  }

  std::unique_ptr<Automaton<ValueSet>> clone_state() const override {
    return std::make_unique<EchoAutomaton>(*this);
  }

 private:
  std::int64_t seed_;
  bool spent_ = false;
};

inline std::vector<std::unique_ptr<Automaton<ValueSet>>> echo_automatons(
    std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<EchoAutomaton>(static_cast<std::int64_t>(i)));
  return autos;
}

}  // namespace anon
