// The minimal probe automaton for emulated environments: every round it
// broadcasts the union of everything it has heard (plus its own seed
// value), so information floods the system and the emulated MS trace can
// be certified without any protocol on top.  Shared by the E5 bench and
// the scenario layer's emulation runner.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/value.hpp"
#include "giraf/automaton.hpp"

namespace anon {

class EchoAutomaton final : public Automaton<ValueSet> {
 public:
  explicit EchoAutomaton(std::int64_t seed) : seed_(seed) {}

  ValueSet initialize() override { return ValueSet{Value(seed_)}; }

  ValueSet compute(Round k, const Inboxes<ValueSet>& inboxes) override {
    ValueSet out;
    for (const ValueSet& m : inbox_at(inboxes, k)) out.insert(m.begin(), m.end());
    return out;
  }

 private:
  std::int64_t seed_;
};

inline std::vector<std::unique_ptr<Automaton<ValueSet>>> echo_automatons(
    std::size_t n) {
  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    autos.push_back(std::make_unique<EchoAutomaton>(static_cast<std::int64_t>(i)));
  return autos;
}

}  // namespace anon
