#include "emul/sigma.hpp"

#include <map>

namespace anon {

namespace {

class RecentlyHeard final : public SigmaEmulator {
 public:
  RecentlyHeard(ProcId self, Round window) : self_(self), window_(window) {}
  void observe_round(Round k, const std::set<ProcId>& heard) override {
    now_ = k;
    for (ProcId p : heard) last_heard_[p] = k;
  }
  std::set<ProcId> trusted() const override {
    std::set<ProcId> out{self_};
    for (const auto& [p, k] : last_heard_)
      if (now_ <= k + window_) out.insert(p);
    return out;
  }

 private:
  ProcId self_;
  Round window_;
  Round now_ = 0;
  std::map<ProcId, Round> last_heard_;
};

class Cumulative final : public SigmaEmulator {
 public:
  explicit Cumulative(ProcId self) : all_{self} {}
  void observe_round(Round, const std::set<ProcId>& heard) override {
    all_.insert(heard.begin(), heard.end());
  }
  std::set<ProcId> trusted() const override { return all_; }

 private:
  std::set<ProcId> all_;
};

class FullSet final : public SigmaEmulator {
 public:
  explicit FullSet(std::size_t n) {
    for (ProcId p = 0; p < n; ++p) all_.insert(p);
  }
  void observe_round(Round, const std::set<ProcId>&) override {}
  std::set<ProcId> trusted() const override { return all_; }

 private:
  std::set<ProcId> all_;
};

}  // namespace

std::unique_ptr<SigmaEmulator> RecentlyHeardSigmaFactory::make(
    ProcId self, std::size_t) const {
  return std::make_unique<RecentlyHeard>(self, window_);
}

std::string RecentlyHeardSigmaFactory::name() const {
  return "recently-heard(w=" + std::to_string(window_) + ")";
}

std::unique_ptr<SigmaEmulator> CumulativeSigmaFactory::make(ProcId self,
                                                            std::size_t) const {
  return std::make_unique<Cumulative>(self);
}

std::unique_ptr<SigmaEmulator> FullSetSigmaFactory::make(ProcId,
                                                         std::size_t n) const {
  return std::make_unique<FullSet>(n);
}

}  // namespace anon
