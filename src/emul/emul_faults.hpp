// Fault plans for the §5 emulation stack (Algorithm 5).
//
// The lock-step engines inject faults per LINK at delivery time
// (env/faults.hpp).  The emulation has no links: a round-k "broadcast" is
// one weak-set add whose element becomes visible to everyone at once.  So
// the same declarative FaultParams surface is re-interpreted against the
// weak-set operations, each fate a pure function of (fault seed, process,
// round) — both the expanded and the cohort emulation engines call these
// and agree byte-for-byte:
//
//   loss       p's round-k add loses its EARLY visibility: concurrent gets
//              no longer see the element before the add completes.  The
//              completion-time publish still happens (a completed add is
//              durable by the weak-set contract), so the MS argument —
//              the first round-k completer is seen by every later
//              completer — survives arbitrary loss intensity; only timing
//              degrades.
//   reorder    the add takes 1..max_extra_delay extra latency ticks
//              (applied before the per-process skew multiplier), modelling
//              a retried RPC.
//   omission   a listed sender's adds NEVER publish early, every round
//              (loss with probability 1 on its add stream).
//   churn      windows are in TICKS here (the emulation clock): an add
//              whose natural completion falls in [leave, rejoin) is held
//              until `rejoin`; rejoin == 0 pins the process down forever —
//              its round stops advancing and the run degrades gracefully
//              to ran=false at max_ticks.
//   duplicate  inert: the weak-set is a SET and identical adds intern to
//              one element, so a duplicated add is definitionally
//              invisible.  Accepted (specs can share fault blocks with the
//              lock-step families) but a no-op.
//   exempt_source  inert: the emulation has no planned per-round source to
//              exempt.  The safety analogue is built in — completion-time
//              publication is never suppressed.
//
// RNG discipline: engines draw latency/visibility from their sequential
// RNG exactly as in the fault-free run and then apply these fates on top,
// so a fault plan never perturbs the draw stream — cohort-vs-expanded
// equivalence is preserved under every plan.
#pragma once

#include <cstdint>
#include <vector>

#include "env/faults.hpp"
#include "giraf/types.hpp"
#include "net/schedule.hpp"

namespace anon {

// The fate of one process's round-k add.
struct EmulAddFate {
  bool suppress_early_visibility = false;  // loss / omission
  std::uint64_t extra_latency = 0;         // reorder, pre-skew ticks
};

class EmulFaultModel {
 public:
  // add_complete_tick sentinel: compares greater than any reachable tick.
  static constexpr std::uint64_t kNeverCompletes = ~std::uint64_t{0};

  EmulFaultModel() = default;
  EmulFaultModel(const FaultParams& params, std::uint64_t run_seed,
                 std::size_t n)
      : params_(params),
        seed_(fault_stream_seed(run_seed, params.seed)),
        active_(params.active()) {
    omission_.assign(n, false);
    for (ProcId p : params_.omission_senders)
      if (p < n) omission_[p] = true;
  }

  bool active() const { return active_; }

  EmulAddFate add_fate(ProcId p, Round k) const {
    EmulAddFate f;
    if (!active_) return f;
    if ((p < omission_.size() && omission_[p]) ||
        hash_chance(hash_mix(seed_ ^ kLossSalt, k, p, 0), params_.loss_prob))
      f.suppress_early_visibility = true;
    if (params_.max_extra_delay > 0) {
      const std::uint64_t h = hash_mix(seed_ ^ kReorderSalt, k, p, 0);
      if (hash_chance(h, params_.reorder_prob))
        f.extra_latency =
            1 + hash_below(h * 0x9e3779b97f4a7c15ULL, params_.max_extra_delay);
    }
    return f;
  }

  // Churn: holds a captured completion until the window's rejoin tick.
  // Windows are scanned in declaration order, so a postponed completion
  // can be re-captured by a later window.
  std::uint64_t completion_tick(ProcId p, std::uint64_t natural) const {
    if (!active_) return natural;
    for (const ChurnSpec& c : params_.churn) {
      if (c.process != p || natural < c.leave) continue;
      if (c.rejoin == 0) return kNeverCompletes;
      if (natural < c.rejoin) natural = c.rejoin;
    }
    return natural;
  }

 private:
  // Same salts as env/faults.cpp would be fine (the key shapes differ),
  // but distinct values keep the streams obviously independent.
  static constexpr std::uint64_t kLossSalt = 0x656d6c6c6f7373ULL;  // "emlloss"
  static constexpr std::uint64_t kReorderSalt = 0x656d6c72647260ULL;

  FaultParams params_;
  std::uint64_t seed_ = 0;
  std::vector<bool> omission_;
  bool active_ = false;
};

}  // namespace anon
