#include "emul/sigma_adversary.hpp"

#include <sstream>

namespace anon {

SigmaVerdict run_prop4_scenario(const SigmaFactory& factory, Round horizon) {
  SigmaVerdict v;
  const std::size_t n = 2;

  // --- Run r1: p0 sole correct process, hears only itself. ---
  {
    auto p0 = factory.make(0, n);
    for (Round k = 1; k <= horizon; ++k) {
      p0->observe_round(k, {0});  // own heartbeat only
      if (p0->trusted() == std::set<ProcId>{0}) {
        v.completeness_r1 = true;
        v.t = k;
        break;
      }
    }
  }
  if (!v.completeness_r1) {
    v.summary = factory.name() +
                ": completeness VIOLATED in r1 (p0 never trusted only "
                "itself although p1 crashed at the start)";
    return v;
  }

  // --- Run r2: p1 sole correct; p0 behaves as in r1 up to t, then crashes.
  {
    auto p0 = factory.make(0, n);
    auto p1 = factory.make(1, n);
    std::set<ProcId> p0_at_t;
    for (Round k = 1; k <= v.t; ++k) {
      p0->observe_round(k, {0});       // indistinguishable from r1
      p1->observe_round(k, {0, 1});    // p0 is the source until t
    }
    p0_at_t = p0->trusted();           // = {p0} by indistinguishability
    // p0 crashes; p1 runs on alone.
    std::set<ProcId> p1_final;
    for (Round k = v.t + 1; k <= v.t + horizon; ++k) {
      p1->observe_round(k, {1});
      p1_final = p1->trusted();
      if (p1_final == std::set<ProcId>{1}) {
        v.completeness_r2 = true;
        break;
      }
    }
    if (!v.completeness_r2) {
      v.summary = factory.name() +
                  ": completeness VIOLATED in r2 (p1 kept trusting the "
                  "crashed p0 forever)";
      return v;
    }
    // Both completeness clauses hold → Intersection must break.
    bool intersect = false;
    for (ProcId p : p0_at_t)
      if (p1_final.count(p) > 0) intersect = true;
    v.intersection_violated = !intersect;
    std::ostringstream os;
    os << factory.name() << ": p0 output {p0} at round " << v.t
       << " of r2, p1 later output {p1} — intersection "
       << (v.intersection_violated ? "VIOLATED (as Prop 4 predicts)"
                                   : "unexpectedly held");
    v.summary = os.str();
  }
  return v;
}

}  // namespace anon
