// The two-run indistinguishability adversary of Proposition 4.
//
// Setting: n = 2, IDs known (the impossibility holds even so), MS
// environment.
//   Run r1: p0 is the only correct process, is the source in every round,
//           and receives no messages from p1.  Completeness forces some
//           round t with trusted(p0) = {p0}.
//   Run r2: p1 is the only correct process; p0 is the source until round t
//           (then crashes) and receives nothing up to t — for p0, r2 is
//           indistinguishable from r1, so at round t it outputs {p0}.
//           Completeness eventually forces trusted(p1) = {p1} forever.
//   The outputs {p0} (p0, round t, r2) and {p1} (p1, later, r2) violate
//   Intersection.
//
// For a candidate emulator the harness therefore reports which property
// broke: completeness in r1 (never narrowed to {p0}), completeness in r2
// (p1 never narrowed to {p1}), or — for candidates passing both —
// Intersection.  Proposition 4 says every candidate lands somewhere.
#pragma once

#include <string>

#include "emul/sigma.hpp"

namespace anon {

struct SigmaVerdict {
  bool completeness_r1 = false;   // p0 eventually output {p0} in r1
  Round t = 0;                    // the witness round in r1
  bool completeness_r2 = false;   // p1 eventually output {p1} in r2
  bool intersection_violated = false;
  std::string summary;
};

// Drives the candidate through r1 and r2 with the given horizon.
SigmaVerdict run_prop4_scenario(const SigmaFactory& factory, Round horizon);

}  // namespace anon
