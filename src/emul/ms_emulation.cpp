#include "emul/ms_emulation.hpp"

// MsEmulation is header-only (templated on the inner message type).

namespace anon {
static_assert(sizeof(MsEmulationOptions) > 0);
}  // namespace anon
