// Reference (seed) implementation of the Algorithm 5 emulation, kept
// verbatim: deep-comparing `std::set<Element>` weak-set state and full
// rescans of the visible set on every delivery step.
//
// `MsEmulation` (ms_emulation.hpp) replaced this with interned element
// ids and watermark delivery; this copy exists so the refactor stays
// *checkable*: tests/emulation_regression_test.cpp asserts the two
// engines emit byte-identical traces for identical options, and
// bench_e5_ms_emulation times them interleaved (the committed
// BENCH_E5.json speedup baseline).  Semantics documentation lives with
// the optimized engine.  Do not optimize this file.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "emul/ms_emulation.hpp"
#include "giraf/process.hpp"
#include "giraf/trace.hpp"

namespace anon {

template <GirafMessage M>
class MsEmulationRef {
 public:
  using Element = std::pair<Round, std::vector<M>>;

  MsEmulationRef(std::vector<std::unique_ptr<Automaton<M>>> automatons,
                 MsEmulationOptions opt)
      : opt_(opt), rng_(opt.seed) {
    ANON_CHECK(!automatons.empty());
    n_ = automatons.size();
    if (opt_.skew.empty()) opt_.skew.assign(n_, 1);
    ANON_CHECK(opt_.skew.size() == n_);
    for (auto& a : automatons)
      procs_.push_back(std::make_unique<GirafProcess<M>>(std::move(a)));
    states_.resize(n_);
    for (ProcId p = 0; p < n_; ++p) trigger_eor_and_add(p);
  }

  bool run_until_round(Round rounds) {
    for (; tick_ < opt_.max_ticks; ++tick_) {
      bool all_done = true;
      for (ProcId p = 0; p < n_; ++p)
        if (procs_[p]->round() < rounds + 1) all_done = false;
      if (all_done) return true;
      std::vector<ProcId> completing;
      for (ProcId p = 0; p < n_; ++p) {
        PerProcess& st = states_[p];
        if (st.add_complete_tick != 0 && st.add_complete_tick <= tick_)
          completing.push_back(p);
      }
      make_visible(tick_);
      for (ProcId p : completing) visible_.insert(states_[p].in_flight);
      for (ProcId p : completing) finish_round_step(p);
    }
    return false;
  }

  std::size_t n() const { return n_; }
  const Trace& trace() const { return trace_; }
  const GirafProcess<M>& process(ProcId p) const { return *procs_[p]; }
  Round round(ProcId p) const { return procs_[p]->round(); }
  std::size_t weak_set_size() const { return visible_.size(); }

 private:
  struct PerProcess {
    std::uint64_t add_complete_tick = 0;  // 0 = no add in flight
    Element in_flight;
    std::set<Element> delivered;  // DELIVERED
  };

  void trigger_eor_and_add(ProcId p) {
    auto out = procs_[p]->end_of_round();
    trace_.record_end_of_round(p, out.round, tick_);
    PerProcess& st = states_[p];
    st.in_flight = Element{out.round, out.batch.copy_messages()};
    const std::uint64_t lat =
        opt_.min_add_latency +
        rng_.below(opt_.max_add_latency - opt_.min_add_latency + 1);
    st.add_complete_tick = tick_ + 1 + lat * opt_.skew[p];
    const std::uint64_t vis = tick_ + 1 + rng_.below(lat * opt_.skew[p] + 1);
    pending_visible_.insert({vis, st.in_flight});
    adders_[st.in_flight].insert(p);
  }

  void finish_round_step(ProcId p) {
    PerProcess& st = states_[p];
    st.add_complete_tick = 0;
    for (const Element& e : visible_) {
      if (st.delivered.count(e) > 0) continue;
      st.delivered.insert(e);
      procs_[p]->receive(e.second, e.first);
      for (ProcId adder : adders_[e]) {
        if (adder == p) continue;
        trace_.record_delivery(adder, e.first, p, procs_[p]->round(), tick_);
      }
    }
    trigger_eor_and_add(p);
  }

  void make_visible(std::uint64_t now) {
    for (auto it = pending_visible_.begin(); it != pending_visible_.end();) {
      if (it->first <= now) {
        visible_.insert(it->second);
        it = pending_visible_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t n_;
  MsEmulationOptions opt_;
  Rng rng_;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  std::vector<PerProcess> states_;
  std::set<Element> visible_;
  std::multimap<std::uint64_t, Element> pending_visible_;
  std::map<Element, std::set<ProcId>> adders_;
  Trace trace_;
  std::uint64_t tick_ = 1;
};

}  // namespace anon
