// The quorum failure detector Σ (§6) and candidate emulators.
//
// Σ outputs lists of trusted process IDs satisfying:
//   Intersection: any two outputs, at any times and processes, share at
//                 least one process.
//   Completeness: eventually every trusted process is correct.
//
// Σ is the weakest failure detector for registers in known asynchronous
// networks; Proposition 4 shows it CANNOT be emulated in the MS
// environment, even with known n and IDs.  The candidates below are
// reasonable attempts; the two-run adversary (sigma_adversary.hpp) defeats
// each of them, executing the paper's indistinguishability argument.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "giraf/types.hpp"

namespace anon {

// A candidate Σ emulator for ONE process in a known network of n processes
// with IDs 0..n−1.  Each round the harness feeds the set of processes heard
// from (the paper's Prop-4 setting grants IDs); the candidate maintains its
// trusted set.
class SigmaEmulator {
 public:
  virtual ~SigmaEmulator() = default;
  virtual void observe_round(Round k, const std::set<ProcId>& heard_from) = 0;
  virtual std::set<ProcId> trusted() const = 0;
};

class SigmaFactory {
 public:
  virtual ~SigmaFactory() = default;
  virtual std::unique_ptr<SigmaEmulator> make(ProcId self,
                                              std::size_t n) const = 0;
  virtual std::string name() const = 0;
};

// Trusts self + everyone heard from within the last `window` rounds.
// Plausible: silence looks like a crash.  Defeated by Prop 4's r1/r2.
class RecentlyHeardSigmaFactory final : public SigmaFactory {
 public:
  explicit RecentlyHeardSigmaFactory(Round window) : window_(window) {}
  std::unique_ptr<SigmaEmulator> make(ProcId self, std::size_t n) const override;
  std::string name() const override;

 private:
  Round window_;
};

// Trusts self + everyone EVER heard from.  Satisfies intersection trivially
// in these runs but can never drop a crashed process: completeness fails.
class CumulativeSigmaFactory final : public SigmaFactory {
 public:
  std::unique_ptr<SigmaEmulator> make(ProcId self, std::size_t n) const override;
  std::string name() const override { return "cumulative"; }
};

// Always trusts the full process set — the "never give up" strategy;
// completeness fails as soon as anybody crashes.
class FullSetSigmaFactory final : public SigmaFactory {
 public:
  std::unique_ptr<SigmaEmulator> make(ProcId self, std::size_t n) const override;
  std::string name() const override { return "full-set"; }
};

}  // namespace anon
