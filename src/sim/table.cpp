#include "sim/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace anon {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  ANON_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = headers_.size() * 2;
  for (std::size_t w : widths) total += w;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace anon
