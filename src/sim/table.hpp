// Plain-text table printing for the benchmark harnesses: every bench binary
// first prints its experiment's series (the paper-style rows) and then runs
// the google-benchmark timings.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace anon {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

  // Cell formatting helpers.
  static std::string num(std::uint64_t v);
  static std::string num(double v, int precision = 2);
  static std::string ratio(double v) { return num(v, 2) + "x"; }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anon
