#include "sim/experiment.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace anon {

SeriesStat aggregate(std::vector<double> samples) {
  SeriesStat s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = samples[samples.size() / 2];
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

std::string SeriesStat::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << mean << " [" << min << ".." << max << "]";
  return os.str();
}

SeriesStat sweep_aggregate(const std::vector<std::uint64_t>& seeds,
                           const std::function<double(std::uint64_t)>& sample,
                           SweepOptions opt) {
  return aggregate(parallel_sweep(
      seeds.size(), [&](std::size_t i) { return sample(seeds[i]); }, opt));
}

std::string RoundSample::to_string() const {
  std::ostringstream os;
  os << "r" << round << "{sends=" << sends << ", bytes=" << bytes
     << ", deliveries=" << deliveries << "}";
  return os.str();
}

std::vector<std::uint64_t> experiment_seeds(std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(1000 + 37 * i);
  return seeds;
}

}  // namespace anon
