// BenchJson is now a thin shim over the scenario JSON core (one emitter
// for everything JSON in the tree); the flat ordered-key API and the
// rendered output are unchanged.
#include "sim/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "scenario/json.hpp"

namespace anon {

void BenchJson::set(const std::string& key, std::uint64_t v) {
  put(key, std::to_string(v));
}

void BenchJson::set(const std::string& key, double v) {
  if (!std::isfinite(v)) {
    put(key, "null");
    return;
  }
  // The historical trajectory format, verbatim: %.6g (so e.g. 2e6 stays
  // "2e+06", keeping the committed BENCH_E*.json diffs format-stable).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  put(key, buf);
}

void BenchJson::set(const std::string& key, const std::string& v) {
  put(key, json_quote(v));
}

void BenchJson::put(const std::string& key, std::string rendered) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  entries_.emplace_back(key, std::move(rendered));
}

std::string BenchJson::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  " + json_quote(entries_[i].first) + ": " + entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  return out + "}\n";
}

bool BenchJson::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace anon
