#include "sim/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace anon {

namespace {
std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}
}  // namespace

void BenchJson::set(const std::string& key, std::uint64_t v) {
  put(key, std::to_string(v));
}

void BenchJson::set(const std::string& key, double v) {
  if (!std::isfinite(v)) {
    put(key, "null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  put(key, buf);
}

void BenchJson::set(const std::string& key, const std::string& v) {
  put(key, quote(v));
}

void BenchJson::put(const std::string& key, std::string rendered) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  entries_.emplace_back(key, std::move(rendered));
}

std::string BenchJson::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  " + quote(entries_[i].first) + ": " + entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  return out + "}\n";
}

bool BenchJson::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace anon
