// Multi-seed aggregation utilities for the experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anon {

struct SeriesStat {
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  std::size_t count = 0;

  std::string to_string(int precision = 1) const;
};

SeriesStat aggregate(std::vector<double> samples);

// The standard seed list used across experiments (kept small enough for
// quick runs, large enough to expose variance).
std::vector<std::uint64_t> experiment_seeds(std::size_t count = 10);

}  // namespace anon
