// Multi-seed aggregation utilities for the experiment harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "giraf/types.hpp"

namespace anon {

struct SeriesStat {
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  std::size_t count = 0;

  std::string to_string(int precision = 1) const;
};

SeriesStat aggregate(std::vector<double> samples);

// Runs sample(seed) for every seed — sharded across threads via the core
// sweep runner — and aggregates the series.  `sample` must be thread-safe
// (every simulation in this repo is: each run owns its net/arena/RNGs).
// The aggregate is identical for any thread count.
SeriesStat sweep_aggregate(const std::vector<std::uint64_t>& seeds,
                           const std::function<double(std::uint64_t)>& sample,
                           SweepOptions opt = {});

// The standard seed list used across experiments (kept small enough for
// quick runs, large enough to expose variance).
std::vector<std::uint64_t> experiment_seeds(std::size_t count = 10);

// One engine round's cumulative transport metrics.  Engine-agnostic: both
// LockstepNet and CohortNet expose this surface, and the cohort/expanded
// equivalence property (tests/cohort_net_test.cpp) is "the two engines
// produce identical RoundSample series", not just identical end states.
struct RoundSample {
  Round round = 0;
  std::uint64_t sends = 0;
  std::uint64_t bytes = 0;
  std::uint64_t deliveries = 0;

  friend bool operator==(const RoundSample& a, const RoundSample& b) {
    return a.round == b.round && a.sends == b.sends && a.bytes == b.bytes &&
           a.deliveries == b.deliveries;
  }
  std::string to_string() const;
};

// Steps `net` one engine round at a time for `rounds` rounds, sampling the
// cumulative counters after each step.
template <typename Net>
std::vector<RoundSample> collect_round_series(Net& net, Round rounds) {
  std::vector<RoundSample> out;
  out.reserve(rounds);
  for (Round i = 0; i < rounds; ++i) {
    net.run_rounds(1);
    out.push_back(
        {net.round(), net.sends(), net.bytes_sent(), net.deliveries()});
  }
  return out;
}

}  // namespace anon
