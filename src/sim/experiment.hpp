// Multi-seed aggregation utilities for the experiment harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep.hpp"

namespace anon {

struct SeriesStat {
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  std::size_t count = 0;

  std::string to_string(int precision = 1) const;
};

SeriesStat aggregate(std::vector<double> samples);

// Runs sample(seed) for every seed — sharded across threads via the core
// sweep runner — and aggregates the series.  `sample` must be thread-safe
// (every simulation in this repo is: each run owns its net/arena/RNGs).
// The aggregate is identical for any thread count.
SeriesStat sweep_aggregate(const std::vector<std::uint64_t>& seeds,
                           const std::function<double(std::uint64_t)>& sample,
                           SweepOptions opt = {});

// The standard seed list used across experiments (kept small enough for
// quick runs, large enough to expose variance).
std::vector<std::uint64_t> experiment_seeds(std::size_t count = 10);

}  // namespace anon
