// Machine-readable experiment results: a flat ordered key→value record
// written as one JSON object, so the perf trajectory of the benches can be
// tracked across PRs (BENCH_E1.json, BENCH_E10.json at the repo root).
//
// Values are numbers (uint64/double) or strings; insertion order is
// preserved so the emitted file diffs cleanly between runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace anon {

class BenchJson {
 public:
  void set(const std::string& key, std::uint64_t v);
  void set(const std::string& key, double v);
  void set(const std::string& key, const std::string& v);

  // The serialized JSON object (two-space indent, trailing newline).
  std::string to_string() const;

  // Writes to `path`; returns false (and leaves no partial file behind at
  // success) if the file cannot be opened.
  bool write(const std::string& path) const;

 private:
  void put(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace anon
