// Digest-chain history compression (extension; the paper notes in §4.1 that
// "the space required by the variables may be unbounded").
//
// Observation: a history grows by exactly one value per round and is
// re-broadcast every round.  Instead of shipping the whole value sequence,
// a sender can ship the O(1) *increment* — ⟨digest, parent_digest, last
// value, length⟩ — and receivers reconstruct the chain in a digest-indexed
// table.  Prefix tests (what the counters of Algorithm 3 need) reduce to
// ancestor walks over reconstructed chains, so the pseudo-leader-election
// semantics are preserved bit-for-bit whenever decoding succeeds.
//
// If the receiver has never seen the parent digest (first contact, or a gap
// after missed rounds), decode fails and the sender's full sequence must be
// shipped once (`encode_full` / `decode_full`).  E10 (bench_e10) quantifies
// the bytes saved.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/history.hpp"

namespace anon {

struct WireHistory {
  std::uint64_t digest = 0;
  std::uint64_t parent_digest = 0;
  Value last;
  std::uint32_t length = 0;

  static constexpr std::size_t kWireBytes = 8 + 8 + 8 + 4;
};

// Encoder: stateless, O(1) per history.
WireHistory encode_increment(const History& h);

// Full (fallback) encoding: the whole value sequence, oldest first.
std::vector<Value> encode_full(const History& h);

// Receiver-side reconstruction table.
class HistoryDecoder {
 public:
  explicit HistoryDecoder(HistoryArena* arena);

  // Decodes an increment; nullopt if the parent digest is unknown (caller
  // must then obtain the full encoding).  Successful decodes register the
  // resulting history for future increments.
  std::optional<History> decode_increment(const WireHistory& w);

  // Registers a full sequence (and all its prefixes) and returns it.
  History decode_full(const std::vector<Value>& values);

  bool knows(std::uint64_t digest) const { return table_.count(digest) > 0; }
  std::size_t table_size() const { return table_.size(); }

 private:
  void remember(const History& h);

  HistoryArena* arena_;
  std::map<std::uint64_t, History> table_;
};

// Wire-size model for an Algorithm 3 message under digest-chain encoding:
// increments for every carried history (counter keys become 8-byte digests).
std::size_t compressed_wire_size(std::size_t proposed_values,
                                 std::size_t counter_entries);

}  // namespace anon
