// Algorithm 3 — consensus in the ESS (eventually stable source) environment
// via *pseudo leader election* (§4).
//
// Anonymity forbids electing a leader by ID, so processes are identified by
// the HISTORY of their proposal values (one appended per round).  Every
// message carries ⟨PROPOSED, HISTORY, C⟩ where C counts, per history heard
// of, how often it has been "seen to make progress":
//   * line 8 min-merges the counters across all round messages (absent = 0,
//     so only histories relayed by everybody survive),
//   * line 9 bumps the counter of each received history to 1 + the max
//     counter over its prefixes.
// The eventual source's history is received timely by everyone every round,
// so its counter grows by one per round at all processes (Lemma 4) and
// eventually dominates; processes whose own history carries a maximal
// counter consider themselves leaders and propose their VAL, everyone else
// proposes ⊥ — keeping the per-round message flow alive (required for the
// written-value safety argument) without polluting the value space.
//
// Faithfulness notes:
//  * Line 9 is applied with snapshot semantics: all bumps are computed from
//    the post-min-merge counters, then applied.  The paper's ∀m-loop is
//    order-dependent when several histories arrive in one round; snapshot
//    semantics match the prose ("counter of the old one, increased by one")
//    and are deterministic.
//  * Line 20 (`WRITTEN := PROPOSED`) is executed although it is dead code —
//    line 6 recomputes WRITTEN before any use (kept for fidelity).
//  * `WRITTENOLD := WRITTEN` (line 19) is outside the even-round block in
//    the paper's listing, i.e. executes every round; Lemma 2 needs this.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/counters.hpp"
#include "common/history.hpp"
#include "common/value.hpp"
#include "giraf/automaton.hpp"
#include "net/lockstep.hpp"

namespace anon {

struct EssMessage {
  ValueSet proposed;
  History history;
  CounterMap counters;

  friend bool operator==(const EssMessage& a, const EssMessage& b) {
    return a.proposed == b.proposed && a.history == b.history &&
           a.counters == b.counters;
  }
  friend bool operator<(const EssMessage& a, const EssMessage& b) {
    if (a.proposed != b.proposed) return a.proposed < b.proposed;
    if (!(a.history == b.history)) return a.history < b.history;
    return a.counters < b.counters;
  }
};

// Content digest for payload interning: proposed set, history identity,
// counter entries.  Collisions are harmless (the interner and the inbox
// view fall back to content comparison on digest ties).
template <>
struct MessageDigest<EssMessage> {
  static std::uint64_t of(const EssMessage& m) {
    std::uint64_t h = stable_hash(m.proposed);
    h = detail::mix_digest(h, m.history.digest());
    h = detail::mix_digest(h, m.history.length());
    for (const auto& [hist, c] : m.counters.entries()) {
      h = detail::mix_digest(h, hist.digest());
      h = detail::mix_digest(h, c);
    }
    return h;
  }
};

template <>
struct MessageSizeOf<EssMessage> {
  static std::size_t size(const EssMessage& m) {
    std::size_t bytes = 16 + 8 * m.proposed.size();
    bytes += 8 + 8 * m.history.length();  // full value sequence on the wire
    for (const auto& [h, c] : m.counters.entries()) {
      (void)c;
      bytes += 8 + 8 + 8 * h.length();
    }
    return bytes;
  }
};

class EssConsensus final : public Automaton<EssMessage> {
 public:
  struct Options {
    // Disable the decision test (lines 11–12).  Used to observe the
    // pseudo-leader-election machinery (Lemmas 4–6) in steady state, which
    // a decision would otherwise freeze within a few rounds (E3).
    // (Explicit constructor rather than an NSDMI: GCC rejects NSDMI types
    // as default arguments within the enclosing class.)
    bool decide;
    // Extension (default off = paper-faithful): garbage-collect counter
    // entries dominated by an extension after each round.  Bounds the
    // counter map to O(#live history branches) instead of O(rounds); the
    // leader-election behaviour is preserved (see CounterMap and E10).
    bool gc_counters;
    Options() : decide(true), gc_counters(false) {}
  };

  // All automatons of one simulation must share one arena.
  EssConsensus(Value initial, HistoryArena* arena, Options opts = Options());

  EssMessage initialize() override;
  EssMessage compute(Round k, const Inboxes<EssMessage>& inboxes) override;
  std::optional<Value> decision() const override { return decision_; }

  // Cohort hooks.  History comparisons are pointer-equality, so cohort
  // execution requires all automatons of a run to share one arena (already
  // the Algorithm 3 contract).  `initial_` is excluded (see EsConsensus);
  // the Options knobs steer compute() and are compared.  `bumps_` is
  // per-compute scratch, cleared before use, and carries no state.
  std::uint64_t state_digest() const override;
  bool state_equals(const Automaton<EssMessage>& other) const override;
  std::unique_ptr<Automaton<EssMessage>> clone_state() const override {
    return std::make_unique<EssConsensus>(*this);
  }

  // Introspection (tests / metrics / leader-convergence experiments).
  const Value& val() const { return val_; }
  const History& history() const { return history_; }
  const CounterMap& counters() const { return counters_; }
  const ValueSet& proposed() const { return proposed_; }
  const ValueSet& written() const { return written_; }
  // Definition: p ∈ leader(k) iff its own history's counter is maximal —
  // the line-15 predicate, captured during compute() *before* line 21
  // appends to HISTORY (afterwards the probe key would be one round newer
  // than the counters and always read 0).
  bool considers_self_leader() const { return self_leader_; }

 private:
  Value initial_;
  HistoryArena* arena_;
  Options opts_;

  Value val_;
  History history_;
  CounterMap counters_;
  ValueSet proposed_;
  ValueSet written_;
  ValueSet written_old_;
  bool self_leader_ = true;  // empty counters: everyone starts as a leader
  std::optional<Value> decision_;
  EssMessage frozen_;
  // Scratch for the line-9 snapshot bumps (avoids copying the counter map
  // every round just to get snapshot reads).
  std::vector<std::pair<History, std::uint64_t>> bumps_;
};

}  // namespace anon
