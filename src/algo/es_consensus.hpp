// Algorithm 2 — consensus in the ES (eventual synchrony) environment.
//
// Message: the process's current PROPOSED set of values.  Rounds alternate:
//   * odd-round messages are fresh proposal singletons {VAL} (reset at the
//     previous even compute),
//   * even-round messages are the *unions* of everything seen in the odd
//     round (no reset at odd computes) — these unions are what make the
//     decision test safe: deciding requires that nobody saw a foreign value.
//
// A value is *written* when it appears in every message of a round — in
// particular in the round source's message, hence (by the source's timely
// link) it is known to everybody (Lemma 1).
//
// Decision (even round k): PROPOSED = WRITTENOLD = {VAL}.
//
// Listing-ambiguity note (see DESIGN.md): `WRITTENOLD := WRITTEN` executes
// every round — Lemma 2's proof steps from WRITTENOLD^k to WRITTEN^{k−1} —
// while the `PROPOSED := {VAL}` reset is even-round-only (resetting every
// round would replace union messages with singletons and break agreement;
// tests/algo_variants_test.cpp exhibits the failure).
//
// decide/halt: after deciding, the automaton keeps returning the frozen
// {VAL} message so the environment stays satisfiable (HaltPolicy).
#pragma once

#include <optional>

#include "common/value.hpp"
#include "giraf/automaton.hpp"
#include "net/lockstep.hpp"

namespace anon {

using EsMessage = ValueSet;

template <>
struct MessageSizeOf<EsMessage> {
  static std::size_t size(const EsMessage& m) { return 16 + 8 * m.size(); }
};

class EsConsensus final : public Automaton<EsMessage> {
 public:
  explicit EsConsensus(Value initial);

  EsMessage initialize() override;
  EsMessage compute(Round k, const Inboxes<EsMessage>& inboxes) override;
  std::optional<Value> decision() const override { return decision_; }

  // Cohort hooks: digest/equality over the full mutable state (VAL, the
  // three sets, the decision).  `initial_` is deliberately excluded — it is
  // only read by initialize(), so processes that proposed differently but
  // converged are genuinely equivalent from here on.  Variant knobs DO
  // steer compute() and are compared.
  std::uint64_t state_digest() const override;
  bool state_equals(const Automaton<EsMessage>& other) const override;
  std::unique_ptr<Automaton<EsMessage>> clone_state() const override {
    return std::make_unique<EsConsensus>(*this);
  }

  // Introspection for tests/metrics.
  const Value& val() const { return val_; }
  const ValueSet& proposed() const { return proposed_; }
  const ValueSet& written() const { return written_; }
  const ValueSet& written_old() const { return written_old_; }

  // --- Variant knobs for the ablation tests (default = paper semantics) ---
  struct Variants {
    bool written_old_every_round = true;  // false: only at even rounds
    bool reset_proposed_every_round = false;  // true: broken variant
  };
  EsConsensus(Value initial, Variants variants);

 private:
  Value initial_;
  Variants variants_;

  Value val_;
  ValueSet proposed_;
  ValueSet written_;
  ValueSet written_old_;
  std::optional<Value> decision_;
};

}  // namespace anon
