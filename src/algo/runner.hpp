// Convenience harness: build a consensus instance (automatons + environment
// + crash plan + lock-step net), run it, and report the paper's three
// consensus properties plus performance metrics.  Used by tests, benches
// and examples; for bespoke instrumentation use LockstepNet directly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/value.hpp"
#include "core/sweep.hpp"
#include "env/faults.hpp"
#include "env/generate.hpp"
#include "env/validate.hpp"
#include "net/lockstep.hpp"

namespace anon {

enum class ConsensusAlgo { kEs, kEss };

const char* to_string(ConsensusAlgo a);

// Execution backend for a consensus instance.
//   kExpanded — LockstepNet: one automaton per process (the reference).
//   kCohort   — CohortNet (net/cohort.hpp): one representative per
//               state-equivalence class, grouped by initial value.  Exact
//               same decisions/rounds/metrics (property-tested), no trace:
//               validate_env must be false and trace_out null (checked).
enum class ConsensusBackend { kExpanded, kCohort };

const char* to_string(ConsensusBackend b);

struct ConsensusConfig {
  EnvParams env;                // env.n = number of processes
  CrashPlan crashes;
  std::vector<Value> initial;   // one per process; must have size env.n
  LockstepOptions net;
  bool validate_env = true;     // run the trace validator afterwards
  ConsensusBackend backend = ConsensusBackend::kExpanded;
  // Schedule override: when set, this model replaces the EnvDelayModel the
  // runner would build from `env` (the scenario layer's adversarial
  // schedules — bivalent two-camp, hostile-MS — enter here).  Expanded
  // backend only; must outlive the run.
  const DelayModel* delays = nullptr;
  // Fault plan parameters (env/faults.hpp), by value: configs are copied
  // into sweep grids, so the runner compiles the FaultPlan per run on its
  // own frame.  Inactive (the default) costs nothing.
  FaultParams faults;
  // Watchdog: stop a run that makes no decision progress for this many
  // consecutive rounds and report it `undecided` (graceful degradation for
  // fault-heavy cells that would otherwise spin to max_rounds).  0 = off.
  Round watchdog_rounds = 0;
};

struct ConsensusReport {
  // Consensus properties over the observed run.
  bool all_correct_decided = false;
  bool agreement = true;   // no two decided processes decided differently
  bool validity = true;    // every decided value was proposed
  std::optional<Value> value;       // the decided value (if any)
  Round first_decision_round = kNoRound;
  Round last_decision_round = kNoRound;  // over correct processes
  // Run metrics.
  Round rounds_executed = 0;
  bool hit_round_limit = false;
  // The watchdog stopped the run with correct processes still undecided
  // (set only by the watchdog — a plain max_rounds exhaustion keeps
  // reporting through hit_round_limit as before).
  bool undecided = false;
  std::uint64_t deliveries = 0;
  std::uint64_t sends = 0;
  std::uint64_t bytes_sent = 0;
  // Fault-plan metrics (0 on the fault-free network).
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_dups = 0;
  std::uint64_t inbox_overflow_dropped = 0;
  // Environment certification of the recorded trace.
  EnvCheckResult env_check;
  // Cohort backend only: how far the run collapsed (0/0 for expanded).
  std::size_t cohorts_max = 0;
  std::size_t cohorts_final = 0;

  std::string to_string() const;
};

// Assembles the consensus-property report of a finished run on any engine
// exposing the LockstepNet observation surface (shared by run_consensus and
// the scenario layer's probe paths, which drive nets the ConsensusConfig
// surface cannot describe).
template <typename Net>
ConsensusReport summarize_consensus_run(Net& net,
                                        const std::vector<Value>& initial,
                                        const CrashPlan& crashes,
                                        RunResult run, bool validate_env) {
  constexpr bool kHasTrace = requires { net.trace(); };
  ConsensusReport rep;
  rep.rounds_executed = run.rounds;
  rep.hit_round_limit = !run.stopped;
  rep.all_correct_decided = net.all_correct_decided();
  rep.deliveries = net.deliveries();
  rep.sends = net.sends();
  rep.bytes_sent = net.bytes_sent();

  const std::set<Value> proposed(initial.begin(), initial.end());
  for (ProcId p = 0; p < net.n(); ++p) {
    auto d = net.decision(p);
    if (!d.has_value()) continue;
    if (rep.value.has_value() && !(*rep.value == *d)) rep.agreement = false;
    if (!rep.value.has_value()) rep.value = d;
    if (proposed.count(*d) == 0) rep.validity = false;
    const Round r = net.decision_round(p);
    if (rep.first_decision_round == kNoRound || r < rep.first_decision_round)
      rep.first_decision_round = r;
    if (net.is_correct(p))
      rep.last_decision_round = std::max(rep.last_decision_round, r);
  }
  if constexpr (kHasTrace) {
    if (validate_env)
      rep.env_check =
          check_environment(net.trace(), net.n(), crashes.correct(net.n()));
  } else {
    rep.cohorts_max = net.stats().max_cohorts;
    rep.cohorts_final = net.stats().cohorts;
  }
  if constexpr (requires { net.fault_drops(); }) {
    rep.fault_drops = net.fault_drops();
    rep.fault_dups = net.fault_dups();
    rep.inbox_overflow_dropped = net.inbox_overflow_dropped();
  }
  return rep;
}

// Drives a net until all correct processes decide, with an optional
// no-progress watchdog: if no process reaches a new decision for
// `watchdog_rounds` consecutive engine rounds, the run stops and
// `*undecided` is set.  watchdog_rounds == 0 is the plain driver.
template <typename Net>
RunResult run_decided_with_watchdog(Net& net, Round watchdog_rounds,
                                    bool* undecided) {
  if (watchdog_rounds == 0) return net.run_until_all_correct_decided();
  std::size_t decided_count = 0;
  Round last_progress = net.round();
  bool fired = false;
  const RunResult run = net.run([&](const Net& n) {
    if (n.all_correct_decided()) return true;
    std::size_t count = 0;
    for (ProcId p = 0; p < n.n(); ++p)
      if (n.decision(p).has_value()) ++count;
    if (count > decided_count) {
      decided_count = count;
      last_progress = n.round();
    }
    if (n.round() - last_progress >= watchdog_rounds) {
      fired = true;
      return true;
    }
    return false;
  });
  if (fired && undecided != nullptr) *undecided = true;
  return run;
}

// `trace_out`, when given, receives the full execution trace of the run
// (used by the determinism regression tests; traces can be voluminous).
ConsensusReport run_consensus(ConsensusAlgo algo, const ConsensusConfig& cfg,
                              Trace* trace_out = nullptr);

// Runs one consensus instance per config, sharded across worker threads
// (core/sweep.hpp).  Each instance builds its own net/arena/RNGs, so cells
// are independent; the result vector is index-aligned with `configs` and
// identical for any thread count.
std::vector<ConsensusReport> run_consensus_sweep(
    ConsensusAlgo algo, const std::vector<ConsensusConfig>& configs,
    SweepOptions opt = {});

// Helpers for building workloads.
std::vector<Value> distinct_values(std::size_t n);          // 100, 101, …
std::vector<Value> identical_values(std::size_t n, std::int64_t v);
std::vector<Value> random_values(std::size_t n, std::uint64_t seed,
                                 std::int64_t lo, std::int64_t hi);

// A crash plan hitting `f` processes at hash-chosen rounds in [1, horizon].
CrashPlan random_crashes(std::size_t n, std::size_t f, Round horizon,
                         std::uint64_t seed);

}  // namespace anon
