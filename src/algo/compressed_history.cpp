#include "algo/compressed_history.hpp"

#include "common/check.hpp"

namespace anon {

WireHistory encode_increment(const History& h) {
  ANON_CHECK(!h.empty());
  WireHistory w;
  w.digest = h.digest();
  w.parent_digest = h.parent().digest();
  w.last = h.last();
  w.length = h.length();
  return w;
}

std::vector<Value> encode_full(const History& h) { return h.values(); }

HistoryDecoder::HistoryDecoder(HistoryArena* arena) : arena_(arena) {
  ANON_CHECK(arena_ != nullptr);
}

void HistoryDecoder::remember(const History& h) {
  if (!h.empty()) table_.emplace(h.digest(), h);
}

std::optional<History> HistoryDecoder::decode_increment(const WireHistory& w) {
  if (w.length == 1) {
    History h = arena_->singleton(w.last);
    if (h.digest() != w.digest) return std::nullopt;  // corrupted
    remember(h);
    return h;
  }
  auto it = table_.find(w.parent_digest);
  if (it == table_.end()) return std::nullopt;  // gap: need full encoding
  const History& parent = it->second;
  if (parent.length() + 1 != w.length) return std::nullopt;
  History h = arena_->append(parent, w.last);
  if (h.digest() != w.digest) return std::nullopt;
  remember(h);
  return h;
}

History HistoryDecoder::decode_full(const std::vector<Value>& values) {
  History h;
  for (const Value& v : values) {
    h = arena_->append(h, v);
    remember(h);
  }
  return h;
}

std::size_t compressed_wire_size(std::size_t proposed_values,
                                 std::size_t counter_entries) {
  // PROPOSED values + one increment for the sender's own history + one
  // (digest, counter) pair per counter entry.
  return 16 + 8 * proposed_values + WireHistory::kWireBytes +
         counter_entries * (8 + 8);
}

}  // namespace anon
