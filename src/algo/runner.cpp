#include "algo/runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "algo/es_consensus.hpp"
#include "algo/ess_consensus.hpp"
#include "common/check.hpp"
#include "common/history.hpp"
#include "net/cohort.hpp"

namespace anon {

const char* to_string(ConsensusAlgo a) {
  return a == ConsensusAlgo::kEs ? "ES/Alg2" : "ESS/Alg3";
}

std::string ConsensusReport::to_string() const {
  std::ostringstream os;
  os << "consensus{decided=" << (all_correct_decided ? "all" : "NOT-all")
     << ", agreement=" << (agreement ? "ok" : "VIOLATED")
     << ", validity=" << (validity ? "ok" : "VIOLATED");
  if (value) os << ", value=" << value->to_string();
  if (undecided) os << ", undecided";
  os << ", rounds=" << rounds_executed
     << ", last_decision_r=" << last_decision_round << ", msgs=" << deliveries
     << ", bytes=" << bytes_sent;
  if (fault_drops > 0 || fault_dups > 0)
    os << ", fault_drops=" << fault_drops << ", fault_dups=" << fault_dups;
  if (inbox_overflow_dropped > 0)
    os << ", inbox_dropped=" << inbox_overflow_dropped;
  os << "}";
  return os.str();
}

namespace {

// Shared between the expanded (LockstepNet) and cohort (CohortNet)
// backends: both expose the same observation surface; only the expanded
// engine records a trace (and can therefore certify the environment).
// Report assembly itself lives in summarize_consensus_run (runner.hpp),
// which the scenario layer reuses for its probe paths.
template <typename Net>
ConsensusReport finish_report(Net& net, const ConsensusConfig& cfg,
                              RunResult run, Trace* trace_out) {
  constexpr bool kHasTrace = requires { net.trace(); };
  ConsensusReport rep = summarize_consensus_run(net, cfg.initial, cfg.crashes,
                                                run, cfg.validate_env);
  if constexpr (kHasTrace) {
    if (trace_out) *trace_out = net.trace();
  } else {
    ANON_CHECK_MSG(trace_out == nullptr,
                   "the cohort backend records no trace");
  }
  return rep;
}

}  // namespace

const char* to_string(ConsensusBackend b) {
  return b == ConsensusBackend::kExpanded ? "expanded" : "cohort";
}

ConsensusReport run_consensus(ConsensusAlgo algo, const ConsensusConfig& cfg,
                              Trace* trace_out) {
  ANON_CHECK(cfg.initial.size() == cfg.env.n);
  // Lifetime: both engines alias their DelayModel for the whole run (their
  // rvalue constructor overloads are deleted, so a temporary cannot bind).
  // `env_delays` lives on this frame until after the nets below are
  // destroyed; an override (`cfg.delays`) is documented to outlive the run.
  const EnvDelayModel env_delays(cfg.env, cfg.crashes);
  const DelayModel& delays = cfg.delays != nullptr
                                 ? *cfg.delays
                                 : static_cast<const DelayModel&>(env_delays);
  ANON_CHECK_MSG(cfg.delays == nullptr ||
                     cfg.backend == ConsensusBackend::kExpanded,
                 "schedule overrides run on the expanded backend");

  // The fault plan is compiled per run on this frame (configs are copied
  // into sweep grids, so it cannot live on the config), and handed to the
  // engines by pointer via a copied option set.
  const FaultPlan fault_plan(cfg.faults, cfg.net.seed, cfg.env.n, &delays);
  LockstepOptions net_opt = cfg.net;
  if (fault_plan.active()) net_opt.faults = &fault_plan;

  bool undecided = false;
  auto drive = [&](auto& net) {
    return run_decided_with_watchdog(net, cfg.watchdog_rounds, &undecided);
  };
  auto stamp = [&](ConsensusReport rep) {
    rep.undecided = undecided;
    return rep;
  };

  if (cfg.backend == ConsensusBackend::kCohort) {
    ANON_CHECK_MSG(!cfg.validate_env,
                   "the cohort backend records no trace to certify: set "
                   "validate_env = false");
    const CohortOptions opt = CohortOptions::from(net_opt);
    if (algo == ConsensusAlgo::kEs) {
      CohortNet<EsMessage> net(
          groups_by_initial_value<EsMessage>(
              cfg.initial,
              [](const Value& v) { return std::make_unique<EsConsensus>(v); }),
          delays, cfg.crashes, opt);
      return stamp(finish_report(net, cfg, drive(net), trace_out));
    }
    HistoryArena arena;
    CohortNet<EssMessage> net(
        groups_by_initial_value<EssMessage>(cfg.initial,
                                            [&arena](const Value& v) {
                                              return std::make_unique<
                                                  EssConsensus>(v, &arena);
                                            }),
        delays, cfg.crashes, opt);
    return stamp(finish_report(net, cfg, drive(net), trace_out));
  }

  if (algo == ConsensusAlgo::kEs) {
    std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
    autos.reserve(cfg.env.n);
    for (const Value& v : cfg.initial)
      autos.push_back(std::make_unique<EsConsensus>(v));
    LockstepNet<EsMessage> net(std::move(autos), delays, cfg.crashes, net_opt);
    return stamp(finish_report(net, cfg, drive(net), trace_out));
  }

  HistoryArena arena;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  autos.reserve(cfg.env.n);
  for (const Value& v : cfg.initial)
    autos.push_back(std::make_unique<EssConsensus>(v, &arena));
  LockstepNet<EssMessage> net(std::move(autos), delays, cfg.crashes, net_opt);
  return stamp(finish_report(net, cfg, drive(net), trace_out));
}

std::vector<ConsensusReport> run_consensus_sweep(
    ConsensusAlgo algo, const std::vector<ConsensusConfig>& configs,
    SweepOptions opt) {
  return parallel_sweep(
      configs.size(),
      [&](std::size_t i) { return run_consensus(algo, configs[i]); }, opt);
}

std::vector<Value> distinct_values(std::size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(Value(100 + static_cast<std::int64_t>(i)));
  return out;
}

std::vector<Value> identical_values(std::size_t n, std::int64_t v) {
  return std::vector<Value>(n, Value(v));
}

std::vector<Value> random_values(std::size_t n, std::uint64_t seed,
                                 std::int64_t lo, std::int64_t hi) {
  Rng rng(seed);
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Value(rng.range(lo, hi)));
  return out;
}

CrashPlan random_crashes(std::size_t n, std::size_t f, Round horizon,
                         std::uint64_t seed) {
  ANON_CHECK_MSG(f < n, "at least one process must stay correct");
  Rng rng(seed);
  CrashPlan plan;
  // Choose f distinct victims.
  std::vector<ProcId> ids(n);
  for (ProcId p = 0; p < n; ++p) ids[p] = p;
  for (std::size_t i = 0; i < f; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
    std::swap(ids[i], ids[j]);
  }
  for (std::size_t i = 0; i < f; ++i) {
    CrashSpec spec;
    spec.crash_round = static_cast<Round>(rng.range(1, static_cast<std::int64_t>(horizon)));
    spec.final_fraction = rng.real();
    plan.set(ids[i], spec);
  }
  return plan;
}

}  // namespace anon
