#include "algo/es_consensus.hpp"

#include "common/check.hpp"

namespace anon {

EsConsensus::EsConsensus(Value initial) : EsConsensus(initial, Variants{}) {}

EsConsensus::EsConsensus(Value initial, Variants variants)
    : initial_(initial), variants_(variants) {
  ANON_CHECK_MSG(!initial.is_bottom(), "⊥ is not a proposable value");
}

std::uint64_t EsConsensus::state_digest() const {
  std::uint64_t h = 0x8f1bbcdcb7a56463ULL;
  h = detail::mix_digest(h, val_.stable_hash());
  h = detail::mix_digest(h, stable_hash(proposed_));
  h = detail::mix_digest(h, stable_hash(written_));
  h = detail::mix_digest(h, stable_hash(written_old_));
  h = detail::mix_digest(h, decision_ ? 1 + decision_->stable_hash() : 0);
  return h;
}

bool EsConsensus::state_equals(const Automaton<EsMessage>& other) const {
  const auto* o = dynamic_cast<const EsConsensus*>(&other);
  if (o == nullptr) return false;
  return val_ == o->val_ && proposed_ == o->proposed_ &&
         written_ == o->written_ && written_old_ == o->written_old_ &&
         decision_ == o->decision_ &&
         variants_.written_old_every_round ==
             o->variants_.written_old_every_round &&
         variants_.reset_proposed_every_round ==
             o->variants_.reset_proposed_every_round;
}

EsMessage EsConsensus::initialize() {
  val_ = initial_;
  written_.clear();
  written_old_.clear();
  proposed_.clear();
  return proposed_;
}

EsMessage EsConsensus::compute(Round k, const Inboxes<EsMessage>& inboxes) {
  if (decision_.has_value()) return proposed_;  // frozen after decide

  const InboxView<EsMessage>& msgs = inbox_at(inboxes, k);
  ANON_CHECK_MSG(!msgs.empty(), "own round message must be present");

  // Line 6: WRITTEN := ∩ m.  Flat-set assignment reuses WRITTEN's
  // capacity and the intersections run in place: no allocation in steady
  // state (the old std::set version allocated a tree per message).
  auto it = msgs.begin();
  written_ = *it;
  for (++it; it != msgs.end(); ++it) set_intersect_inplace(written_, *it);

  // Line 7: PROPOSED := (∪ m) ∪ PROPOSED.
  for (const EsMessage& m : msgs) set_union_inplace(proposed_, m);

  if (k % 2 == 0) {
    // Line 9: decide when the proposal state is unanimous and stable.
    if (proposed_ == ValueSet{val_} && written_old_ == ValueSet{val_}) {
      decision_ = val_;
      proposed_ = {val_};     // frozen final message
      written_old_ = written_;
      return proposed_;
    }
    // Line 11–12: adopt the maximum written value.
    if (!written_.empty()) val_ = *written_.rbegin();
    // Line 13: fresh proposal for the next (odd) round.
    proposed_ = {val_};
  } else if (variants_.reset_proposed_every_round) {
    proposed_ = {val_};  // deliberately broken variant (ablation)
  }

  // Line 14 — every round (see header note).
  if (variants_.written_old_every_round || k % 2 == 0) written_old_ = written_;

  return proposed_;
}

}  // namespace anon
