#include "algo/ess_consensus.hpp"

#include <vector>

#include "common/check.hpp"

namespace anon {

EssConsensus::EssConsensus(Value initial, HistoryArena* arena, Options opts)
    : initial_(initial), arena_(arena), opts_(opts) {
  ANON_CHECK_MSG(!initial.is_bottom(), "⊥ is not a proposable value");
  ANON_CHECK(arena_ != nullptr);
}

EssMessage EssConsensus::initialize() {
  // Lines 1–4: VAL := initial; ∀H C[H] := 0; HISTORY := VAL; sets empty.
  val_ = initial_;
  counters_ = CounterMap();
  history_ = arena_->singleton(val_);
  written_.clear();
  written_old_.clear();
  proposed_.clear();
  return EssMessage{proposed_, history_, counters_};
}

EssMessage EssConsensus::compute(Round k, const Inboxes<EssMessage>& inboxes) {
  if (decision_.has_value()) return frozen_;  // decide VAL; halt

  const std::set<EssMessage>& msgs = inbox_at(inboxes, k);
  ANON_CHECK_MSG(!msgs.empty(), "own round message must be present");

  // Line 6: WRITTEN := ∩ m.PROPOSED.
  auto it = msgs.begin();
  written_ = it->proposed;
  for (++it; it != msgs.end(); ++it)
    written_ = set_intersect(written_, it->proposed);

  // Line 7: PROPOSED := (∪ m.PROPOSED) ∪ PROPOSED.
  for (const EssMessage& m : msgs)
    proposed_.insert(m.proposed.begin(), m.proposed.end());

  // Line 8: ∀H, C[H] := min over messages (absent = 0).
  std::vector<const CounterMap*> maps;
  maps.reserve(msgs.size());
  for (const EssMessage& m : msgs) maps.push_back(&m.counters);
  counters_ = CounterMap::min_merge(maps);

  // Line 9: snapshot-bump each received history to 1 + its prefix max.
  {
    const CounterMap snapshot = counters_;
    for (const EssMessage& m : msgs)
      counters_.set(m.history, 1 + snapshot.prefix_max(m.history));
  }
  // Extension: drop counter entries dominated by one of their extensions.
  if (opts_.gc_counters) counters_.gc_dominated_prefixes();
  // The line-15 leader predicate, captured now for observability (after
  // line 21 below, history_ is one value longer than any counter key).
  self_leader_ = counters_.is_max(history_);

  if (k % 2 == 0) {
    // Line 11: decide when last round's writes were exactly {VAL} and no
    // foreign value is circulating.
    if (opts_.decide && written_old_ == ValueSet{val_} &&
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      decision_ = val_;
      // Halt with a frozen final message; history/counters stop evolving.
      proposed_ = {val_};
      frozen_ = EssMessage{proposed_, history_, counters_};
      written_old_ = written_;
      return frozen_;
    }
    // Lines 13–14: adopt the maximal non-⊥ written value.
    const ValueSet non_bottom = minus_bottom(written_);
    if (!non_bottom.empty()) val_ = *non_bottom.rbegin();
    // Lines 15–18: leaders (or processes whose view is already clean)
    // propose VAL; everybody else proposes ⊥ to keep the rounds flowing.
    if (self_leader_ ||
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      proposed_ = {val_};
    } else {
      proposed_ = {Value::Bottom()};
    }
  }

  // Line 19 (every round; see header).
  written_old_ = written_;
  // Line 20 — dead but faithful: line 6 recomputes WRITTEN next round.
  written_ = proposed_;
  // Line 21: the proposal history grows by VAL every round.
  history_ = arena_->append(history_, val_);

  return EssMessage{proposed_, history_, counters_};
}

}  // namespace anon
