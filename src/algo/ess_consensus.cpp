#include "algo/ess_consensus.hpp"

#include <vector>

#include "common/check.hpp"

namespace anon {

EssConsensus::EssConsensus(Value initial, HistoryArena* arena, Options opts)
    : initial_(initial), arena_(arena), opts_(opts) {
  ANON_CHECK_MSG(!initial.is_bottom(), "⊥ is not a proposable value");
  ANON_CHECK(arena_ != nullptr);
}

std::uint64_t EssConsensus::state_digest() const {
  std::uint64_t h = 0x5be0cd190e35d7c2ULL;
  h = detail::mix_digest(h, val_.stable_hash());
  h = detail::mix_digest(h, history_.digest());
  h = detail::mix_digest(h, history_.length());
  h = detail::mix_digest(h, counters_.digest());
  h = detail::mix_digest(h, stable_hash(proposed_));
  h = detail::mix_digest(h, stable_hash(written_));
  h = detail::mix_digest(h, stable_hash(written_old_));
  h = detail::mix_digest(h, (self_leader_ ? 2 : 0) |
                                (decision_.has_value() ? 1 : 0));
  if (decision_) h = detail::mix_digest(h, decision_->stable_hash());
  return h;
}

bool EssConsensus::state_equals(const Automaton<EssMessage>& other) const {
  const auto* o = dynamic_cast<const EssConsensus*>(&other);
  if (o == nullptr) return false;
  if (decision_.has_value() &&
      !(frozen_ == o->frozen_))  // frozen message only meaningful once decided
    return false;
  return arena_ == o->arena_ && val_ == o->val_ && history_ == o->history_ &&
         counters_ == o->counters_ && proposed_ == o->proposed_ &&
         written_ == o->written_ && written_old_ == o->written_old_ &&
         self_leader_ == o->self_leader_ && decision_ == o->decision_ &&
         opts_.decide == o->opts_.decide &&
         opts_.gc_counters == o->opts_.gc_counters;
}

EssMessage EssConsensus::initialize() {
  // Lines 1–4: VAL := initial; ∀H C[H] := 0; HISTORY := VAL; sets empty.
  val_ = initial_;
  counters_ = CounterMap();
  history_ = arena_->singleton(val_);
  written_.clear();
  written_old_.clear();
  proposed_.clear();
  return EssMessage{proposed_, history_, counters_};
}

EssMessage EssConsensus::compute(Round k, const Inboxes<EssMessage>& inboxes) {
  if (decision_.has_value()) return frozen_;  // decide VAL; halt

  const InboxView<EssMessage>& msgs = inbox_at(inboxes, k);
  ANON_CHECK_MSG(!msgs.empty(), "own round message must be present");

  // Line 6: WRITTEN := ∩ m.PROPOSED (capacity-reusing assignment, then
  // in-place intersections — no allocation in steady state).
  auto it = msgs.begin();
  written_ = it->proposed;
  for (++it; it != msgs.end(); ++it)
    set_intersect_inplace(written_, it->proposed);

  // Line 7: PROPOSED := (∪ m.PROPOSED) ∪ PROPOSED.
  for (const EssMessage& m : msgs) set_union_inplace(proposed_, m.proposed);

  // Line 8: ∀H, C[H] := min over messages (absent = 0).
  std::vector<const CounterMap*> maps;
  maps.reserve(msgs.size());
  for (const EssMessage& m : msgs) maps.push_back(&m.counters);
  counters_ = CounterMap::min_merge(maps);

  // Line 9: snapshot-bump each received history to 1 + its prefix max.
  // Snapshot semantics without copying the whole map: all bumps are read
  // from the post-min-merge state first, then applied (two messages with
  // the same history read the same prefix max, so write order is moot).
  {
    bumps_.clear();
    for (const EssMessage& m : msgs)
      bumps_.emplace_back(m.history, 1 + counters_.prefix_max(m.history));
    for (const auto& [h, c] : bumps_) counters_.set(h, c);
  }
  // Extension: drop counter entries dominated by one of their extensions.
  if (opts_.gc_counters) counters_.gc_dominated_prefixes();
  // The line-15 leader predicate, captured now for observability (after
  // line 21 below, history_ is one value longer than any counter key).
  self_leader_ = counters_.is_max(history_);

  if (k % 2 == 0) {
    // Line 11: decide when last round's writes were exactly {VAL} and no
    // foreign value is circulating.
    if (opts_.decide && written_old_ == ValueSet{val_} &&
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      decision_ = val_;
      // Halt with a frozen final message; history/counters stop evolving.
      proposed_ = {val_};
      frozen_ = EssMessage{proposed_, history_, counters_};
      written_old_ = written_;
      return frozen_;
    }
    // Lines 13–14: adopt the maximal non-⊥ written value.
    const ValueSet non_bottom = minus_bottom(written_);
    if (!non_bottom.empty()) val_ = *non_bottom.rbegin();
    // Lines 15–18: leaders (or processes whose view is already clean)
    // propose VAL; everybody else proposes ⊥ to keep the rounds flowing.
    if (self_leader_ ||
        subset_of(proposed_, ValueSet{val_, Value::Bottom()})) {
      proposed_ = {val_};
    } else {
      proposed_ = {Value::Bottom()};
    }
  }

  // Line 19 (every round; see header).
  written_old_ = written_;
  // Line 20 — dead but faithful: line 6 recomputes WRITTEN next round.
  written_ = proposed_;
  // Line 21: the proposal history grows by VAL every round.
  history_ = arena_->append(history_, val_);

  return EssMessage{proposed_, history_, counters_};
}

}  // namespace anon
