#include "net/schedule.hpp"

namespace anon {

std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t x = seed;
  auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
  };
  mix(a);
  mix(b);
  mix(c);
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_below(std::uint64_t h, std::uint64_t bound) {
  // Multiply-shift: maps h uniformly-enough into [0, bound) for simulation
  // purposes without division bias concerns at our tiny bounds.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * bound) >> 64);
}

bool CrashPlan::in_final_audience(ProcId sender, ProcId receiver,
                                  std::size_t n, std::uint64_t seed) const {
  auto it = specs_.find(sender);
  if (it == specs_.end()) return true;
  const CrashSpec& spec = it->second;
  if (spec.final_recipients.has_value()) {
    for (ProcId r : *spec.final_recipients)
      if (r == receiver) return true;
    return false;
  }
  (void)n;
  const std::uint64_t h =
      hash_mix(seed ^ 0xabcdef1234567890ULL, sender, receiver, spec.crash_round);
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < spec.final_fraction;
}

std::vector<ProcId> CrashPlan::correct(std::size_t n) const {
  std::vector<ProcId> out;
  for (ProcId p = 0; p < n; ++p)
    if (!ever_crashes(p)) out.push_back(p);
  return out;
}

}  // namespace anon
