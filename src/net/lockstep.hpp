// Lock-step round simulator.
//
// All alive processes advance rounds together; the adversary acts through
// the `DelayModel` (per-link, per-round delays; 0 = timely) and the
// `CrashPlan` (a crashing process's final broadcast reaches only a subset).
//
// One engine round r:
//   1. deliver every message batch due in round r (into the receivers'
//      round-indexed inboxes; timely messages have msg_round == r),
//   2. evaluate the stop condition,
//   3. every alive process executes end-of-round #(r+1): compute(r) runs
//      and its round-(r+1) message is broadcast.  A process whose crash
//      round is r+1 broadcasts to its final audience only and is dead
//      afterwards.
//
// Reliable broadcast: if `relay_partial_broadcast` is set (default), the
// non-audience of a crashed sender still receives the final message, late —
// modelling the relay performed by a uniform reliable broadcast layer.
// Disabling it yields best-effort broadcast for crashing senders; the
// paper's safety properties must (and do — see tests) hold either way.
//
// Two execution modes share this class (see DESIGN.md, "Sharded intra-run
// execution"):
//
//  * Serial reference (engine_threads == 1, engine_shards <= 1): one
//    thread walks all n processes and a single calendar holds one pending
//    entry per (sender, receiver) link.  This is the differential oracle —
//    small, obviously-faithful code.
//
//  * Sharded (engine_shards > 1, or engine_threads != 1): processes are
//    partitioned into S contiguous shards.  Each round runs two waves over
//    the shared WorkerPool with a barrier between them — the end-of-round
//    wave (compute + broadcast, per-shard interner/outboxes/trace buffers)
//    and the delivery wave (per-shard calendars) — plus a serial merge at
//    the barrier that canonicalizes freshly interned payloads by content
//    digest across shards.  In uniform-delay rounds a non-crashing
//    sender's broadcast is aggregated into a per-payload *group* delivered
//    by content once per receiver (the n² per-link entries of the serial
//    engine exist only as counter arithmetic), which is what makes
//    adversarial runs at n = 10^5 feasible at all.  Group building is
//    itself sharded: each shard pre-groups its own uniform senders during
//    the wave, the barrier only merges the few per-shard (payload,
//    member-range) summaries, and member lists are copied into the global
//    groups by a second sharded pass — no O(n) serial section remains on
//    the steady-state round path.  Barrier-local scratch lives in a
//    RoundArena (core/arena.hpp) and groups are pooled, so steady-state
//    rounds allocate nothing (tests/allocation_steady_state_test.cpp).
//    Reports, metrics and traces are byte-identical to the serial engine
//    at every shard/thread count; tests/sharded_net_test.cpp holds the two
//    modes to that bar.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/arena.hpp"
#include "core/calendar.hpp"
#include "core/partition.hpp"
#include "core/sweep.hpp"
#include "core/worker_pool.hpp"
#include "env/faults.hpp"
#include "giraf/process.hpp"
#include "giraf/trace.hpp"
#include "net/schedule.hpp"

namespace anon {

// What a decided process does next (see DESIGN.md, "decide/halt").
enum class HaltPolicy {
  // Keep executing rounds, re-broadcasting the frozen final message
  // (standard reading; keeps ES/ESS satisfiable and laggards alive).
  kContinueForever,
  // Literal "decide; halt": stop sending and receiving.  Provided to
  // demonstrate laggard starvation; not recommended.
  kStopAfterDecide,
};

struct LockstepOptions {
  std::uint64_t seed = 1;
  Round max_rounds = 100000;
  bool relay_partial_broadcast = true;
  Round relay_extra_delay = 2;  // extra rounds for relayed final messages
  bool record_trace = true;     // end-of-round / crash events
  bool record_deliveries = true;  // delivery events (can be voluminous)
  HaltPolicy halt_policy = HaltPolicy::kContinueForever;
  // Worker-pool participants driving the per-round waves.  1 = the serial
  // reference engine (unless engine_shards forces sharded mode below);
  // 0 = one per hardware thread.  Results are byte-identical at any value.
  std::size_t engine_threads = 1;
  // Shard count for the sharded engine; 0 = one shard per participant.
  // Setting engine_shards > 1 with engine_threads == 1 runs the sharded
  // engine single-threaded — the bench baseline for measuring pure thread
  // scaling, and the only way to run shapes whose per-link calendar would
  // not fit in memory (n = 10^5 is ~10^10 link entries per round on the
  // serial engine) on one thread.
  std::size_t engine_shards = 0;
  // Optional fault plan (env/faults.hpp), aliased for the run's lifetime;
  // nullptr = the fault-free reliable network.  When active, the sharded
  // engine forces the per-link path (fault fates are per-link, so uniform
  // aggregation would be wrong) — fates are pure in (round, sender,
  // receiver), so reports stay byte-identical at every thread/shard count.
  const FaultPlan* faults = nullptr;
};

struct RunResult {
  Round rounds = 0;    // engine rounds executed
  bool stopped = false;  // stop condition met (vs. max_rounds exhausted)
};

// Approximate wire size of a message, for state-growth experiments (E10).
// Specialize alongside each message type.
template <typename M>
struct MessageSizeOf {
  static std::size_t size(const M&) { return sizeof(M); }
};

template <GirafMessage M>
class LockstepNet {
 public:
  LockstepNet(std::vector<std::unique_ptr<Automaton<M>>> automatons,
              const DelayModel& delays, CrashPlan crashes,
              LockstepOptions opt = {})
      : delays_(delays), crashes_(std::move(crashes)), opt_(opt) {
    ANON_CHECK(!automatons.empty());
    n_ = automatons.size();
    procs_.reserve(n_);
    for (auto& a : automatons)
      procs_.push_back(std::make_unique<GirafProcess<M>>(std::move(a)));
    halted_.assign(n_, 0);
    decision_round_.assign(n_, kNoRound);
    crash_round_.assign(n_, kNeverCrashes);
    for (ProcId p = 0; p < n_; ++p) {
      crash_round_[p] = crashes_.crash_round(p);
      if (crash_round_[p] != kNeverCrashes)
        trace_.record_crash(p, crash_round_[p] + 1);
    }
    init_shards();
  }

  // The engine aliases `delays` for its whole lifetime (models are shared,
  // immutable and typically outlive whole sweeps); binding a temporary
  // would dangle on the first delay probe.  Deleted overload rejects the
  // temporary at compile time — construct the model in an outer scope.
  LockstepNet(std::vector<std::unique_ptr<Automaton<M>>> automatons,
              const DelayModel&& delays, CrashPlan crashes,
              LockstepOptions opt = {}) = delete;

  std::size_t n() const { return n_; }
  Round round() const { return round_; }
  const Trace& trace() const { return trace_; }
  const GirafProcess<M>& process(ProcId p) const { return *procs_[p]; }
  GirafProcess<M>& process(ProcId p) { return *procs_[p]; }

  std::optional<Value> decision(ProcId p) const { return procs_[p]->decision(); }

  bool is_correct(ProcId p) const { return !crashes_.ever_crashes(p); }

  bool all_correct_decided() const {
    for (ProcId p = 0; p < n_; ++p)
      if (is_correct(p) && !decision(p).has_value()) return false;
    return true;
  }

  // First engine round at which process p was decided (kNoRound if never).
  Round decision_round(ProcId p) const { return decision_round_[p]; }

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Messages dropped / duplicated by the fault plan.  `sends` counts every
  // attempted send (drops included), so sends == deliveries-bound traffic
  // plus fault_drops on a quiescent network; duplicates are injected by
  // the network, not the sender, and do not inflate `sends`.
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_dups() const { return fault_dups_; }

  // Shards the engine actually runs (1 = the serial reference path).
  std::size_t engine_shards() const {
    return shards_.empty() ? 1 : shards_.size();
  }

  // Largest far-early overflow parking any inbox ever reached.  Lock-step
  // delivery never runs ahead of the window, so this should stay 0 — a
  // nonzero value flags an engine/schedule bug (the window itself hard-caps
  // growth at InboxWindow::kOverflowParkLimit).
  std::size_t inbox_overflow_high_water() const {
    std::size_t hw = 0;
    for (const auto& p : procs_)
      hw = std::max(hw, p->inboxes().overflow_high_water());
    return hw;
  }

  // Far-early batches the inbox windows shed at the park limit instead of
  // parking (graceful degradation under heavy reorder/churn — a counted
  // drop, never an abort).
  std::size_t inbox_overflow_dropped() const {
    std::size_t dropped = 0;
    for (const auto& p : procs_) dropped += p->inboxes().overflow_dropped();
    return dropped;
  }

  // Runs until stop(net) is true (checked after deliveries, before the next
  // end-of-round wave) or until max_rounds engine rounds have executed.
  template <typename StopFn>
  RunResult run(StopFn stop) {
    if (round_ == 0) bootstrap();
    while (round_ < opt_.max_rounds) {
      deliver_due(round_);
      if (stop(*this)) return {round_, true};
      advance_round();   // runs compute(round_ - 1 … ) for every process
      note_decisions();  // decisions made by the computes just executed
    }
    return {round_, false};
  }

  RunResult run_until_all_correct_decided() {
    return run([](const LockstepNet& net) { return net.all_correct_decided(); });
  }

  RunResult run_rounds(Round rounds) {
    const Round target = round_ + rounds;
    return run([target](const LockstepNet& net) { return net.round() >= target; });
  }

 private:
  // A sender's round-k batch is interned once per round (shared immutable
  // payload, deduplicated ACROSS senders by content digest); each
  // receiver's calendar entry is pointer-sized and receiver-side inbox
  // dedup is a pointer/digest compare, not a set-of-sets comparison.
  struct Pending {
    ProcId receiver;
    ProcId sender;
    Round msg_round;
    SharedBatch<M> payload;
  };

  // ---- sharded-mode structures ----------------------------------------------

  // One exact per-link delivery (the sharded equivalent of Pending): used
  // for crashing senders, non-uniform rounds, and per-link trace mode.
  struct Exact {
    ProcId receiver;
    ProcId sender;
    Round msg_round;
    SharedBatch<M> payload;
  };

  // An end-of-round-wave output entry, parked in the sender shard's outbox
  // until the receiver shard merges it into its calendar (next barrier).
  struct OutEntry {
    Round due;
    Exact e;
  };

  // A uniform-delay payload group: every non-crashing sender of round
  // `msg_round` whose (canonical) batch is `payload`.  Delivery pushes the
  // payload once per alive receiver — receiver-side dedup makes the g
  // pointer-identical pushes of the serial engine and this single push
  // indistinguishable — while the transport counters still account every
  // (sender, receiver) link individually.
  struct Group {
    SharedBatch<M> payload;
    Round msg_round = 0;
    std::vector<ProcId> members;  // senders, globally ascending
  };

  // A shard's uniform senders of one (shard-local) payload this wave: the
  // shard-side half of group building.  Recycled by count, not clear(), so
  // member capacity survives rounds.
  struct PreGroup {
    SharedBatch<M> payload;       // shard-local (pre-canonicalization)
    std::vector<ProcId> members;  // this shard's senders, ascending
  };

  // Shard-local payload -> network-canonical payload, one entry per losing
  // object, sorted by raw pointer for binary-search reads.
  struct RemapEntry {
    const MessageBatch<M>* from = nullptr;
    SharedBatch<M> to;
  };

  struct Shard {
    ProcId begin = 0, end = 0;  // contiguous process range [begin, end)
    BatchInterner<M> interner;  // per-shard; canonicalized at the barrier
    RoundCalendar<Exact> calendar;           // deliveries to this shard
    std::vector<std::vector<OutEntry>> outbox;  // [receiver shard]
    std::vector<PreGroup> pregroups;  // this wave's uniform senders, grouped
    std::size_t pregroup_count = 0;   // live prefix of `pregroups`
    // Payload -> pregroup index, populated only past kGroupScanLimit
    // distinct payloads (the linear scan covers the common case for free).
    std::unordered_map<const MessageBatch<M>*, std::size_t> pregroup_index;
    // Rebuilt each round at the merge barrier; read-only (concurrently)
    // during the delivery wave.
    std::vector<RemapEntry> remap;
    std::vector<EndOfRoundEvent> eor_buf;    // spliced in shard order
    std::vector<DeliveryEvent> delivery_buf;  // sorted at the barrier
    std::vector<Exact> due_scratch;          // recycled take_due buffer
    std::uint64_t sends = 0, bytes = 0, deliveries = 0;
    std::uint64_t fdrops = 0, fdups = 0;  // folded at the merge barrier
  };

  // Above this many distinct payloads, pointer lookups (pregroups within a
  // shard, groups at the barrier) switch from linear scan to a hash index.
  // Steady-state rounds see a handful of distinct payloads and never touch
  // the maps (linear scan allocates nothing).
  static constexpr std::size_t kGroupScanLimit = 32;

  void init_shards() {
    std::size_t threads = opt_.engine_threads == 0
                              ? resolve_sweep_threads(0)
                              : opt_.engine_threads;
    std::size_t shards = opt_.engine_shards == 0 ? threads : opt_.engine_shards;
    shards = std::min(shards, n_);
    participants_ = std::max<std::size_t>(threads, 1);
    if (shards <= 1 && participants_ <= 1) return;  // serial reference path
    shards = std::max<std::size_t>(shards, 1);
    shards_.resize(shards);
    // Processes weigh equally here, so the shared balanced partition
    // (core/partition.hpp) reproduces the base/rem layout exactly — which
    // keeps shard_of() below a two-branch division instead of a search.
    shard_base_ = n_ / shards;
    shard_rem_ = n_ % shards;
    std::vector<ShardRange> ranges;
    balanced_ranges(n_, shards, &ranges);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_[s].begin = static_cast<ProcId>(ranges[s].first);
      shards_[s].end = static_cast<ProcId>(ranges[s].second);
      shards_[s].outbox.resize(shards);
    }
  }

  std::size_t shard_of(ProcId q) const {
    const ProcId wide = shard_rem_ * (shard_base_ + 1);
    if (q < wide) return q / (shard_base_ + 1);
    return shard_rem_ + (q - wide) / shard_base_;
  }

  bool receives_at(ProcId q, Round r) const {
    return r < crash_round_[q] && !halted_[q];
  }

  // ---- shared driver --------------------------------------------------------

  void bootstrap() {
    decision_round_.assign(n_, kNoRound);
    if (!shards_.empty()) {
      eor_wave(/*next=*/1);
      round_ = 1;
      return;
    }
    interner_.round_reset();
    for (ProcId p = 0; p < n_; ++p) step_eor(p, /*k=*/1);
    round_ = 1;
  }

  void advance_round() {
    const Round next = round_ + 1;
    if (!shards_.empty()) {
      eor_wave(next);
      round_ = next;
      return;
    }
    interner_.round_reset();  // payload sharing is per (content, round)
    for (ProcId p = 0; p < n_; ++p) {
      if (next > crash_round_[p]) continue;  // crashed earlier
      if (halted_[p]) continue;              // literal halt
      step_eor(p, next);
    }
    round_ = next;
  }

  void deliver_due(Round r) {
    if (!shards_.empty()) {
      deliver_wave(r);
      return;
    }
    calendar_.advance_to(r);
    calendar_.take_due_into(due_scratch_);
    for (const Pending& d : due_scratch_) {
      if (!receives_at(d.receiver, r)) continue;  // dead or halted
      procs_[d.receiver]->receive(d.payload, d.msg_round);
      deliveries_ += d.payload->size();
      if (opt_.record_trace && opt_.record_deliveries)
        trace_.record_delivery(d.sender, d.msg_round, d.receiver,
                               procs_[d.receiver]->round(), r);
    }
    due_scratch_.clear();  // drop the payload refs until the next round
  }

  void note_decisions() {
    if (!shards_.empty()) return;  // recorded inside the end-of-round wave
    // Called right after advance_round(): the computes that just ran were
    // compute(round_ - 1), so that is the deciding round.
    for (ProcId p = 0; p < n_; ++p)
      if (decision_round_[p] == kNoRound && procs_[p]->decision().has_value())
        decision_round_[p] = round_ - 1;
  }

  // ---- serial reference path ------------------------------------------------

  void step_eor(ProcId p, Round k) {
    auto out = procs_[p]->end_of_round();
    ANON_CHECK(out.round == k);
    if (opt_.record_trace) trace_.record_end_of_round(p, k, k);
    if (opt_.halt_policy == HaltPolicy::kStopAfterDecide &&
        procs_[p]->decision().has_value())
      halted_[p] = 1;

    std::size_t batch_bytes = 0;
    for (const M& m : out.batch) batch_bytes += MessageSizeOf<M>::size(m);
    const SharedBatch<M> payload = interner_.intern(out.batch);

    const bool crashing = crash_round_[p] == k;
    for (ProcId q = 0; q < n_; ++q) {
      if (q == p) continue;
      Round d = delays_.delay(k, p, q);
      if (crashing && !crashes_.in_final_audience(p, q, n_, opt_.seed)) {
        if (!opt_.relay_partial_broadcast) continue;  // lost forever
        d = std::max<Round>(d, 1) + opt_.relay_extra_delay;
      }
      // Both counters are per message on the link, so multi-message
      // batches keep the sends/bytes ratio honest (E10).
      sends_ += payload->size();
      bytes_sent_ += batch_bytes;
      if (opt_.faults != nullptr && opt_.faults->active()) {
        const LinkFate f = opt_.faults->fate(k, p, q);
        if (!f.deliver) {
          fault_drops_ += payload->size();
          continue;
        }
        d += f.extra_delay;
        calendar_.schedule(k + d, Pending{q, p, k, payload});
        if (f.duplicate) {
          // dup_delay >= 1: the copy lands in a later delivery round, so
          // it is observable (same-round copies dedup away in the set
          // view) and the per-round trace key stays unique.
          fault_dups_ += payload->size();
          calendar_.schedule(k + d + f.dup_delay, Pending{q, p, k, payload});
        }
        continue;
      }
      calendar_.schedule(k + d, Pending{q, p, k, payload});
    }
  }

  // ---- sharded path: end-of-round wave --------------------------------------

  void eor_wave(Round next) {
    // Fault fates vary per link, so an active plan forces the per-link
    // path — the uniform group aggregation assumes every link agrees.
    const std::optional<Round> ud =
        (opt_.faults != nullptr && opt_.faults->active())
            ? std::nullopt
            : delays_.uniform_delay(next);
    // Wave arguments are staged in members so the job lambda captures only
    // `this`: it stays within std::function's small-buffer optimization
    // and the dispatch itself allocates nothing.
    wave_round_ = next;
    wave_ud_ = ud;
    wave_plt_ = opt_.record_trace && opt_.record_deliveries;
    WorkerPool::shared().parallel_for(
        shards_.size(),
        [this](std::size_t s) {
          shard_eor(shards_[s], wave_round_, wave_ud_, wave_plt_);
        },
        participants_);
    merge_eor_barrier(next, ud);
  }

  void shard_eor(Shard& sh, Round next, std::optional<Round> ud,
                 bool per_link_trace) {
    sh.interner.round_reset();
    sh.pregroup_count = 0;
    for (ProcId p = sh.begin; p < sh.end; ++p) {
      if (next > crash_round_[p] || halted_[p]) continue;
      shard_step_eor(sh, p, next, ud, per_link_trace);
    }
    // The serial engine's note_decisions() scan, moved into the wave.  The
    // bootstrap wave (next == 1) must NOT record: the serial engine first
    // scans after advance_round() to round 2, stamping bootstrap-decided
    // processes with round 1 — which is exactly what the next == 2 scan
    // over the full shard range (not just the stepped processes) does.
    if (next >= 2) {
      for (ProcId p = sh.begin; p < sh.end; ++p)
        if (decision_round_[p] == kNoRound && procs_[p]->decision().has_value())
          decision_round_[p] = next - 1;
    }
  }

  void shard_step_eor(Shard& sh, ProcId p, Round k, std::optional<Round> ud,
                      bool per_link_trace) {
    auto out = procs_[p]->end_of_round();
    ANON_CHECK(out.round == k);
    if (opt_.record_trace) sh.eor_buf.push_back({p, k, k});
    if (opt_.halt_policy == HaltPolicy::kStopAfterDecide &&
        procs_[p]->decision().has_value())
      halted_[p] = 1;

    std::size_t batch_bytes = 0;
    for (const M& m : out.batch) batch_bytes += MessageSizeOf<M>::size(m);
    const SharedBatch<M> payload = sh.interner.intern(out.batch);
    const bool crashing = crash_round_[p] == k;

    if (ud.has_value() && !crashing && !per_link_trace) {
      // Uniform fast path: every link has delay *ud, so the n-1 per-link
      // calendar entries collapse to counter arithmetic plus one pregroup
      // membership (merged across shards at the barrier).  Per-link trace
      // mode opts out — it needs the individual link events.
      sh.sends += payload->size() * (n_ - 1);
      sh.bytes += static_cast<std::uint64_t>(batch_bytes) * (n_ - 1);
      sh.pregroups[find_or_add_pregroup(sh, payload)].members.push_back(p);
      return;
    }

    // Per-link fallback: exactly the serial loop, into per-shard outboxes.
    for (ProcId q = 0; q < n_; ++q) {
      if (q == p) continue;
      Round d = delays_.delay(k, p, q);
      if (crashing && !crashes_.in_final_audience(p, q, n_, opt_.seed)) {
        if (!opt_.relay_partial_broadcast) continue;  // lost forever
        d = std::max<Round>(d, 1) + opt_.relay_extra_delay;
      }
      sh.sends += payload->size();
      sh.bytes += batch_bytes;
      if (opt_.faults != nullptr && opt_.faults->active()) {
        const LinkFate f = opt_.faults->fate(k, p, q);
        if (!f.deliver) {
          sh.fdrops += payload->size();
          continue;
        }
        d += f.extra_delay;
        sh.outbox[shard_of(q)].push_back({k + d, Exact{q, p, k, payload}});
        if (f.duplicate) {
          sh.fdups += payload->size();
          sh.outbox[shard_of(q)].push_back(
              {k + d + f.dup_delay, Exact{q, p, k, payload}});
        }
        continue;
      }
      sh.outbox[shard_of(q)].push_back({k + d, Exact{q, p, k, payload}});
    }
  }

  // A shard's pregroup lookup during the wave: linear scan through the few
  // live pregroups, hash index past kGroupScanLimit.  Steady state: scan
  // hit, zero allocations (pregroups recycle by count, keeping capacity).
  std::size_t find_or_add_pregroup(Shard& sh, const SharedBatch<M>& payload) {
    if (sh.pregroup_count <= kGroupScanLimit) {
      for (std::size_t i = 0; i < sh.pregroup_count; ++i)
        if (sh.pregroups[i].payload.get() == payload.get()) return i;
    } else if (auto it = sh.pregroup_index.find(payload.get());
               it != sh.pregroup_index.end()) {
      return it->second;
    }
    const std::size_t idx = sh.pregroup_count;
    if (idx == sh.pregroups.size()) sh.pregroups.emplace_back();
    PreGroup& pg = sh.pregroups[idx];
    pg.payload = payload;
    pg.members.clear();
    ++sh.pregroup_count;
    if (sh.pregroup_count == kGroupScanLimit + 1) {
      sh.pregroup_index.clear();
      for (std::size_t i = 0; i < sh.pregroup_count; ++i)
        sh.pregroup_index.emplace(sh.pregroups[i].payload.get(), i);
    } else if (sh.pregroup_count > kGroupScanLimit + 1) {
      sh.pregroup_index.emplace(payload.get(), idx);
    }
    return idx;
  }

  // Barrier-side group lookup, same hybrid shape over this wave's groups.
  std::size_t find_or_add_group(SharedBatch<M> canon, Round next) {
    if (wave_groups_.size() <= kGroupScanLimit) {
      for (std::size_t g = 0; g < wave_groups_.size(); ++g)
        if (wave_groups_[g]->payload.get() == canon.get()) return g;
    } else if (auto it = group_index_.find(canon.get());
               it != group_index_.end()) {
      return it->second;
    }
    std::shared_ptr<Group> grp;
    if (!group_pool_.empty()) {
      grp = std::move(group_pool_.back());
      group_pool_.pop_back();
    } else {
      grp = std::make_shared<Group>();
    }
    grp->payload = std::move(canon);
    grp->msg_round = next;
    grp->members.clear();
    wave_groups_.push_back(std::move(grp));
    group_totals_.push_back(0);
    if (wave_groups_.size() == kGroupScanLimit + 1) {
      group_index_.clear();
      for (std::size_t g = 0; g < wave_groups_.size(); ++g)
        group_index_.emplace(wave_groups_[g]->payload.get(), g);
    } else if (wave_groups_.size() > kGroupScanLimit + 1) {
      group_index_.emplace(wave_groups_.back()->payload.get(),
                           wave_groups_.size() - 1);
    }
    return wave_groups_.size() - 1;
  }

  static void remap_payload(const Shard& owner, SharedBatch<M>& payload) {
    if (owner.remap.empty()) return;
    auto it = std::lower_bound(
        owner.remap.begin(), owner.remap.end(), payload.get(),
        [](const RemapEntry& e, const MessageBatch<M>* key) {
          return e.from < key;
        });
    if (it != owner.remap.end() && it->from == payload.get())
      payload = it->to;
  }

  // The serial slice between the waves: splice trace buffers and counters
  // (shard order = process order), canonicalize freshly interned payloads
  // across shards, and merge the shards' pregroups into per-payload
  // groups.  The only O(n) work left — copying member lists into the
  // global groups — runs as a second sharded pass; everything serial here
  // is O(shards × distinct payloads).  Scratch lives in the round arena,
  // reclaimed wholesale by the reset at the next barrier.
  void merge_eor_barrier(Round next, std::optional<Round> ud) {
    for (Shard& sh : shards_) {
      for (const EndOfRoundEvent& e : sh.eor_buf)
        trace_.record_end_of_round(e.process, e.round, e.time);
      sh.eor_buf.clear();
      sends_ += sh.sends;
      bytes_sent_ += sh.bytes;
      fault_drops_ += sh.fdrops;
      fault_dups_ += sh.fdups;
      sh.sends = sh.bytes = sh.fdrops = sh.fdups = 0;
    }
    arena_.reset();

    // Canonicalization, first discovery wins: the first shard (in shard
    // order) to intern a given content provides the network-wide object;
    // later shards record a remap from their local object.  Purely an
    // identity decision — every observable (metrics, inbox views, traces)
    // is content-based — but it preserves the serial engine's payload-
    // sharing invariant: one object per content network-wide, so receiver
    // dedup stays a pointer compare.  Sorting flat (digest, discovery-seq)
    // entries replaces the old per-digest hash buckets: same winner, no
    // node allocations.
    struct BarrierCanon {
      std::uint64_t digest;
      std::uint32_t seq;    // discovery order: shard order, in-shard order
      std::uint32_t shard;  // owner of `batch` (its remap gets the entry)
      SharedBatch<M> batch;
    };
    ArenaVector<BarrierCanon> canon{ArenaAlloc<BarrierCanon>(&arena_)};
    std::uint32_t seq = 0;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      shards_[s].remap.clear();
      for (const SharedBatch<M>& b : shards_[s].interner.fresh())
        canon.push_back({b->digest, seq++, s, b});
    }
    if (canon.size() > 1) {
      std::sort(canon.begin(), canon.end(),
                [](const BarrierCanon& a, const BarrierCanon& b) {
                  if (a.digest != b.digest) return a.digest < b.digest;
                  return a.seq < b.seq;
                });
      for (std::size_t i = 0; i < canon.size();) {
        std::size_t j = i + 1;
        while (j < canon.size() && canon[j].digest == canon[i].digest) ++j;
        for (std::size_t a = i; j - i >= 2 && a < j; ++a) {
          if (canon[a].batch == nullptr) continue;  // remapped already
          for (std::size_t b = a + 1; b < j; ++b) {
            if (canon[b].batch == nullptr) continue;
            if (canon[a].batch->msgs == canon[b].batch->msgs) {
              shards_[canon[b].shard].remap.push_back(
                  {canon[b].batch.get(), canon[a].batch});
              canon[b].batch = nullptr;
            }
          }
        }
        i = j;
      }
      for (Shard& sh : shards_)
        std::sort(sh.remap.begin(), sh.remap.end(),
                  [](const RemapEntry& a, const RemapEntry& b) {
                    return a.from < b.from;
                  });
    }

    // Merge the shards' pregroups by canonical payload.  Shard order then
    // in-shard order keeps every group's `members` globally ascending; the
    // serial half only assigns (group, offset) slots, and the member lists
    // themselves are copied shard-parallel below.
    if (!ud.has_value()) return;
    wave_groups_.clear();
    group_totals_.clear();
    struct BuildRef {
      std::uint32_t shard, pregroup, group;
      std::size_t offset;  // into the group's member list
    };
    ArenaVector<BuildRef> refs{ArenaAlloc<BuildRef>(&arena_)};
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = shards_[s];
      for (std::uint32_t i = 0; i < sh.pregroup_count; ++i) {
        SharedBatch<M> canonical = sh.pregroups[i].payload;
        remap_payload(sh, canonical);
        const std::size_t g = find_or_add_group(std::move(canonical), next);
        refs.push_back({s, i, static_cast<std::uint32_t>(g),
                        group_totals_[g]});
        group_totals_[g] += sh.pregroups[i].members.size();
      }
    }
    for (std::size_t g = 0; g < wave_groups_.size(); ++g)
      wave_groups_[g]->members.resize(group_totals_[g]);
    if (!refs.empty()) {
      const ArenaVector<BuildRef>* refp = &refs;
      WorkerPool::shared().parallel_for(
          shards_.size(),
          [this, refp](std::size_t s) {
            for (const BuildRef& br : *refp) {
              if (br.shard != s) continue;
              PreGroup& pg = shards_[s].pregroups[br.pregroup];
              std::copy(pg.members.begin(), pg.members.end(),
                        wave_groups_[br.group]->members.begin() + br.offset);
              pg.payload.reset();
              pg.members.clear();
            }
          },
          participants_);
    }
    for (std::shared_ptr<Group>& g : wave_groups_)
      group_cal_.schedule(next + *ud, std::move(g));
    wave_groups_.clear();
    if (!group_index_.empty()) group_index_.clear();
  }

  // ---- sharded path: delivery wave ------------------------------------------

  void deliver_wave(Round r) {
    group_cal_.advance_to(r);
    group_cal_.take_due_into(due_groups_);
    wave_round_ = r;
    wave_plt_ = opt_.record_trace && opt_.record_deliveries;
    WorkerPool::shared().parallel_for(
        shards_.size(),
        [this](std::size_t t) { shard_deliver(t, wave_round_, wave_plt_); },
        participants_);
    for (Shard& sh : shards_) {
      deliveries_ += sh.deliveries;
      sh.deliveries = 0;
    }
    if (wave_plt_) splice_delivery_events();
    // Retire this round's groups into the pool (sole-owner refs only):
    // steady-state rounds rebuild the same few groups, so group
    // construction stops allocating after warm-up.
    for (std::shared_ptr<const Group>& g : due_groups_) {
      if (g.use_count() != 1) continue;
      auto mg = std::const_pointer_cast<Group>(g);
      mg->payload.reset();
      mg->members.clear();
      group_pool_.push_back(std::move(mg));
    }
    due_groups_.clear();
  }

  void shard_deliver(std::size_t t, Round r, bool per_link_trace) {
    Shard& sh = shards_[t];
    // 1. Merge the last wave's outbox entries bound for this shard into
    //    this shard's calendar, remapping payloads to their canonical
    //    object.  Iterating sender shards in order reproduces the serial
    //    calendar's FIFO insertion order (round asc, sender asc, receiver
    //    asc) exactly, entry for entry.
    for (Shard& from : shards_) {
      std::vector<OutEntry>& box = from.outbox[t];
      for (OutEntry& oe : box) {
        remap_payload(from, oe.e.payload);
        sh.calendar.schedule(oe.due, std::move(oe.e));
      }
      box.clear();
    }
    // 2. Exact per-link deliveries due this round.
    sh.calendar.advance_to(r);
    sh.calendar.take_due_into(sh.due_scratch);
    for (Exact& e : sh.due_scratch) {
      if (!receives_at(e.receiver, r)) continue;
      procs_[e.receiver]->receive(e.payload, e.msg_round);
      sh.deliveries += e.payload->size();
      if (per_link_trace)
        sh.delivery_buf.push_back({e.sender, e.msg_round, e.receiver,
                                   procs_[e.receiver]->round(), r});
    }
    sh.due_scratch.clear();  // drop the payload refs until the next round
    // 3. Uniform payload groups (fast mode only; a group of g senders is
    //    one content push per alive receiver — the serial engine's g
    //    pointer-identical pushes dedup to the same view — plus exact link
    //    accounting: g messages per non-member, g-1 per member).
    for (const std::shared_ptr<const Group>& g : due_groups_) {
      const std::uint64_t sz = g->payload->size();
      const std::uint64_t gsize = g->members.size();
      if (gsize == 1) {
        // A lone member must not receive its own broadcast back: past the
        // inbox window's clamp horizon that content would no longer be in
        // its view, so the self-push would be observable.
        const ProcId lone = g->members[0];
        for (ProcId q = sh.begin; q < sh.end; ++q) {
          if (q == lone || !receives_at(q, r)) continue;
          procs_[q]->receive(g->payload, g->msg_round);
          sh.deliveries += sz;
        }
        continue;
      }
      for (ProcId q = sh.begin; q < sh.end; ++q) {
        if (!receives_at(q, r)) continue;
        procs_[q]->receive(g->payload, g->msg_round);
        sh.deliveries += sz * gsize;
      }
      // Members received from the other g-1 senders, not all g.
      auto it = std::lower_bound(g->members.begin(), g->members.end(),
                                 sh.begin);
      for (; it != g->members.end() && *it < sh.end; ++it)
        if (receives_at(*it, r)) sh.deliveries -= sz;
    }
  }

  // Per-link trace mode: reproduce the serial delivery-event order.  The
  // serial calendar records slot r in insertion order — msg_round asc,
  // then sender asc, then receiver asc — and (msg_round, sender, receiver)
  // is unique per round, so sorting the shards' buffers by that key yields
  // the serial trace byte for byte.
  void splice_delivery_events() {
    delivery_splice_.clear();
    for (Shard& sh : shards_) {
      delivery_splice_.insert(delivery_splice_.end(), sh.delivery_buf.begin(),
                              sh.delivery_buf.end());
      sh.delivery_buf.clear();
    }
    std::sort(delivery_splice_.begin(), delivery_splice_.end(),
              [](const DeliveryEvent& a, const DeliveryEvent& b) {
                if (a.msg_round != b.msg_round) return a.msg_round < b.msg_round;
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.receiver < b.receiver;
              });
    for (const DeliveryEvent& e : delivery_splice_)
      trace_.record_delivery(e.sender, e.msg_round, e.receiver,
                             e.receiver_round, e.time);
  }

  std::size_t n_ = 0;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  const DelayModel& delays_;
  CrashPlan crashes_;
  LockstepOptions opt_;
  Trace trace_;
  Round round_ = 0;

  // Struct-of-arrays hot state shared by both modes: the per-round scans
  // (who steps, who receives, who decided) touch these flat arrays, not
  // the process objects.  halted_ is uint8_t, not vector<bool> — shard
  // threads write disjoint indices, and bit-packing would make those
  // writes race.
  std::vector<Round> crash_round_;
  std::vector<std::uint8_t> halted_;
  std::vector<Round> decision_round_;

  // Serial reference path.
  RoundCalendar<Pending> calendar_;
  std::vector<Pending> due_scratch_;  // recycled take_due buffer (serial path)
  BatchInterner<M> interner_;

  // Sharded path (empty shards_ = serial mode).
  std::vector<Shard> shards_;
  std::size_t participants_ = 1;
  std::size_t shard_base_ = 0, shard_rem_ = 0;
  RoundCalendar<std::shared_ptr<const Group>> group_cal_;
  std::vector<std::shared_ptr<const Group>> due_groups_;
  std::vector<DeliveryEvent> delivery_splice_;
  // Wave arguments staged for the [this]-only job lambdas (read-only while
  // a wave runs), plus the barrier's group-building state: this wave's
  // groups and their member counts, a pool of retired Group objects, the
  // past-the-scan-limit hash fallback, and the barrier scratch arena.
  Round wave_round_ = 0;
  std::optional<Round> wave_ud_;
  bool wave_plt_ = false;
  std::vector<std::shared_ptr<Group>> wave_groups_;
  std::vector<std::size_t> group_totals_;
  std::vector<std::shared_ptr<Group>> group_pool_;
  std::unordered_map<const MessageBatch<M>*, std::size_t> group_index_;
  RoundArena arena_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_dups_ = 0;
};

}  // namespace anon
