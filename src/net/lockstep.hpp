// Lock-step round simulator.
//
// All alive processes advance rounds together; the adversary acts through
// the `DelayModel` (per-link, per-round delays; 0 = timely) and the
// `CrashPlan` (a crashing process's final broadcast reaches only a subset).
//
// One engine round r:
//   1. deliver every message batch due in round r (into the receivers'
//      round-indexed inboxes; timely messages have msg_round == r),
//   2. evaluate the stop condition,
//   3. every alive process executes end-of-round #(r+1): compute(r) runs
//      and its round-(r+1) message is broadcast.  A process whose crash
//      round is r+1 broadcasts to its final audience only and is dead
//      afterwards.
//
// Reliable broadcast: if `relay_partial_broadcast` is set (default), the
// non-audience of a crashed sender still receives the final message, late —
// modelling the relay performed by a uniform reliable broadcast layer.
// Disabling it yields best-effort broadcast for crashing senders; the
// paper's safety properties must (and do — see tests) hold either way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "core/calendar.hpp"
#include "giraf/process.hpp"
#include "giraf/trace.hpp"
#include "net/schedule.hpp"

namespace anon {

// What a decided process does next (see DESIGN.md, "decide/halt").
enum class HaltPolicy {
  // Keep executing rounds, re-broadcasting the frozen final message
  // (standard reading; keeps ES/ESS satisfiable and laggards alive).
  kContinueForever,
  // Literal "decide; halt": stop sending and receiving.  Provided to
  // demonstrate laggard starvation; not recommended.
  kStopAfterDecide,
};

struct LockstepOptions {
  std::uint64_t seed = 1;
  Round max_rounds = 100000;
  bool relay_partial_broadcast = true;
  Round relay_extra_delay = 2;  // extra rounds for relayed final messages
  bool record_trace = true;     // end-of-round / crash events
  bool record_deliveries = true;  // delivery events (can be voluminous)
  HaltPolicy halt_policy = HaltPolicy::kContinueForever;
};

struct RunResult {
  Round rounds = 0;    // engine rounds executed
  bool stopped = false;  // stop condition met (vs. max_rounds exhausted)
};

// Approximate wire size of a message, for state-growth experiments (E10).
// Specialize alongside each message type.
template <typename M>
struct MessageSizeOf {
  static std::size_t size(const M&) { return sizeof(M); }
};

template <GirafMessage M>
class LockstepNet {
 public:
  LockstepNet(std::vector<std::unique_ptr<Automaton<M>>> automatons,
              const DelayModel& delays, CrashPlan crashes,
              LockstepOptions opt = {})
      : delays_(delays), crashes_(std::move(crashes)), opt_(opt) {
    ANON_CHECK(!automatons.empty());
    n_ = automatons.size();
    procs_.reserve(n_);
    for (auto& a : automatons)
      procs_.push_back(std::make_unique<GirafProcess<M>>(std::move(a)));
    halted_.assign(n_, false);
    for (ProcId p = 0; p < n_; ++p)
      if (Round c = crashes_.crash_round(p); c != kNeverCrashes)
        trace_.record_crash(p, c + 1);
  }

  std::size_t n() const { return n_; }
  Round round() const { return round_; }
  const Trace& trace() const { return trace_; }
  const GirafProcess<M>& process(ProcId p) const { return *procs_[p]; }
  GirafProcess<M>& process(ProcId p) { return *procs_[p]; }

  std::optional<Value> decision(ProcId p) const { return procs_[p]->decision(); }

  bool is_correct(ProcId p) const { return !crashes_.ever_crashes(p); }

  bool all_correct_decided() const {
    for (ProcId p = 0; p < n_; ++p)
      if (is_correct(p) && !decision(p).has_value()) return false;
    return true;
  }

  // First engine round at which process p was decided (kNoRound if never).
  Round decision_round(ProcId p) const { return decision_round_[p]; }

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Largest far-early overflow parking any inbox ever reached.  Lock-step
  // delivery never runs ahead of the window, so this should stay 0 — a
  // nonzero value flags an engine/schedule bug (the window itself hard-caps
  // growth at InboxWindow::kOverflowParkLimit).
  std::size_t inbox_overflow_high_water() const {
    std::size_t hw = 0;
    for (const auto& p : procs_)
      hw = std::max(hw, p->inboxes().overflow_high_water());
    return hw;
  }

  // Runs until stop(net) is true (checked after deliveries, before the next
  // end-of-round wave) or until max_rounds engine rounds have executed.
  template <typename StopFn>
  RunResult run(StopFn stop) {
    if (round_ == 0) bootstrap();
    while (round_ < opt_.max_rounds) {
      deliver_due(round_);
      if (stop(*this)) return {round_, true};
      advance_round();   // runs compute(round_ - 1 … ) for every process
      note_decisions();  // decisions made by the computes just executed
    }
    return {round_, false};
  }

  RunResult run_until_all_correct_decided() {
    return run([](const LockstepNet& net) { return net.all_correct_decided(); });
  }

  RunResult run_rounds(Round rounds) {
    const Round target = round_ + rounds;
    return run([target](const LockstepNet& net) { return net.round() >= target; });
  }

 private:
  // A sender's round-k batch is interned once per round (shared immutable
  // payload, deduplicated ACROSS senders by content digest); each
  // receiver's calendar entry is pointer-sized and receiver-side inbox
  // dedup is a pointer/digest compare, not a set-of-sets comparison.
  struct Pending {
    ProcId receiver;
    ProcId sender;
    Round msg_round;
    SharedBatch<M> payload;
  };

  void bootstrap() {
    decision_round_.assign(n_, kNoRound);
    interner_.round_reset();
    for (ProcId p = 0; p < n_; ++p) step_eor(p, /*k=*/1);
    round_ = 1;
  }

  void advance_round() {
    const Round next = round_ + 1;
    interner_.round_reset();  // payload sharing is per (content, round)
    for (ProcId p = 0; p < n_; ++p) {
      if (!crashes_.executes_eor(p, next)) continue;  // crashed earlier
      if (halted_[p]) continue;                       // literal halt
      step_eor(p, next);
    }
    round_ = next;
  }

  void step_eor(ProcId p, Round k) {
    auto out = procs_[p]->end_of_round();
    ANON_CHECK(out.round == k);
    if (opt_.record_trace) trace_.record_end_of_round(p, k, k);
    if (opt_.halt_policy == HaltPolicy::kStopAfterDecide &&
        procs_[p]->decision().has_value())
      halted_[p] = true;

    std::size_t batch_bytes = 0;
    for (const M& m : out.batch) batch_bytes += MessageSizeOf<M>::size(m);
    const SharedBatch<M> payload = interner_.intern(out.batch);

    const bool crashing = crashes_.crash_round(p) == k;
    for (ProcId q = 0; q < n_; ++q) {
      if (q == p) continue;
      Round d = delays_.delay(k, p, q);
      if (crashing && !crashes_.in_final_audience(p, q, n_, opt_.seed)) {
        if (!opt_.relay_partial_broadcast) continue;  // lost forever
        d = std::max<Round>(d, 1) + opt_.relay_extra_delay;
      }
      // Both counters are per message on the link, so multi-message
      // batches keep the sends/bytes ratio honest (E10).
      sends_ += payload->size();
      bytes_sent_ += batch_bytes;
      calendar_.schedule(k + d, Pending{q, p, k, payload});
    }
  }

  void deliver_due(Round r) {
    calendar_.advance_to(r);
    for (const Pending& d : calendar_.take_due()) {
      if (!crashes_.receives_in_round(d.receiver, r)) continue;  // dead
      if (halted_[d.receiver]) continue;
      procs_[d.receiver]->receive(d.payload, d.msg_round);
      deliveries_ += d.payload->size();
      if (opt_.record_trace && opt_.record_deliveries)
        trace_.record_delivery(d.sender, d.msg_round, d.receiver,
                               procs_[d.receiver]->round(), r);
    }
  }

  void note_decisions() {
    // Called right after advance_round(): the computes that just ran were
    // compute(round_ - 1), so that is the deciding round.
    for (ProcId p = 0; p < n_; ++p)
      if (decision_round_[p] == kNoRound && procs_[p]->decision().has_value())
        decision_round_[p] = round_ - 1;
  }

  std::size_t n_ = 0;
  std::vector<std::unique_ptr<GirafProcess<M>>> procs_;
  const DelayModel& delays_;
  CrashPlan crashes_;
  LockstepOptions opt_;
  Trace trace_;
  Round round_ = 0;
  RoundCalendar<Pending> calendar_;
  BatchInterner<M> interner_;
  std::vector<bool> halted_;
  std::vector<Round> decision_round_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace anon
