#include "net/cohort.hpp"

#include <sstream>

namespace anon {

std::string CohortStats::to_string() const {
  std::ostringstream os;
  os << "cohorts{now=" << cohorts << ", max=" << max_cohorts
     << ", splits=" << splits << ", merges=" << merges
     << ", clones=" << clones << "}";
  return os.str();
}

}  // namespace anon
