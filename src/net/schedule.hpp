// Delivery timing and crash plans for the simulated broadcast network.
//
// The paper assumes a reliable broadcast primitive with adversarial timing.
// We factor the adversary into two orthogonal pieces:
//
//   * `DelayModel` — for every (round k, sender, receiver) link, how many
//     rounds the round-k message takes to arrive.  0 means *timely*: the
//     receiver gets it while still in round k, in time for its compute(k).
//     Environments (MS/ES/ESS, src/env) are concrete DelayModels that
//     guarantee the paper's round-based properties by construction.
//
//   * `CrashPlan` — which processes crash and when.  A process with crash
//     round c executes its c-th end-of-round (so compute(c−1) runs) but its
//     round-c broadcast reaches only a chosen subset, and it takes no
//     further steps.  This models a crash *during* a broadcast, the hard
//     case for fault tolerance.
//
// Delay models are usually stateless functions of (seed, k, sender,
// receiver) so that multi-thousand-round runs need no per-round storage.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "giraf/types.hpp"

namespace anon {

inline constexpr Round kNeverCrashes = std::numeric_limits<Round>::max();

// Stateless deterministic mixing of (seed, a, b, c) into a uint64; the
// building block for memory-free randomized delay models.
std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c);

// Uniform draw in [0, bound) from a hash (bound > 0).
std::uint64_t hash_below(std::uint64_t h, std::uint64_t bound);

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  // Rounds of delay for sender's round-k message on the link to receiver.
  // Must be finite (reliable broadcast).  0 = timely.
  virtual Round delay(Round k, ProcId sender, ProcId receiver) const = 0;

  // If EVERY link (sender ≠ receiver) of round k has the same delay, that
  // delay; nullopt when delays may vary by link.  This is a promise about
  // delay(k, ·, ·), not a preference: the cohort engine (net/cohort.hpp)
  // uses it to broadcast per equivalence class in O(1) instead of probing
  // all n² links, so a wrong override silently breaks the cohort/expanded
  // equivalence.  The conservative default opts out.
  virtual std::optional<Round> uniform_delay(Round k) const {
    (void)k;
    return std::nullopt;
  }

  // The process this model guarantees as the round-k source, if any
  // (informational; used by tests and metrics, never by algorithms).
  virtual std::optional<ProcId> planned_source(Round k) const {
    (void)k;
    return std::nullopt;
  }
};

// Everything timely: the fully synchronous baseline model.
class SynchronousDelays final : public DelayModel {
 public:
  Round delay(Round, ProcId, ProcId) const override { return 0; }
  std::optional<Round> uniform_delay(Round) const override { return Round{0}; }
};

struct CrashSpec {
  Round crash_round = kNeverCrashes;
  // Receivers of the final (round-`crash_round`) broadcast.  If unset, a
  // pseudo-random subset of `final_fraction` of the processes is chosen.
  std::optional<std::vector<ProcId>> final_recipients;
  double final_fraction = 0.5;
};

class CrashPlan {
 public:
  CrashPlan() = default;

  void set(ProcId p, CrashSpec spec) { specs_[p] = spec; }

  // Convenience: p crashes at `round` with a hash-chosen half audience.
  void crash_at(ProcId p, Round round) { specs_[p] = CrashSpec{round, {}, 0.5}; }

  Round crash_round(ProcId p) const {
    auto it = specs_.find(p);
    return it == specs_.end() ? kNeverCrashes : it->second.crash_round;
  }

  bool ever_crashes(ProcId p) const { return crash_round(p) != kNeverCrashes; }

  // Alive to execute its k-th end-of-round?  (The crash-round EOR itself
  // still executes — with a partial broadcast.)
  bool executes_eor(ProcId p, Round k) const { return k <= crash_round(p); }

  // Alive to *receive* during round k?  A process crashed at round c stops
  // taking receive steps after its c-th end-of-round, i.e. during round c.
  bool receives_in_round(ProcId p, Round k) const { return k < crash_round(p); }

  // Does `receiver` belong to the final-broadcast audience of `sender`
  // (only meaningful when k == crash_round(sender))?
  bool in_final_audience(ProcId sender, ProcId receiver, std::size_t n,
                         std::uint64_t seed) const;

  // Processes that never crash, out of n.
  std::vector<ProcId> correct(std::size_t n) const;

  std::size_t crash_count() const { return specs_.size(); }

 private:
  std::map<ProcId, CrashSpec> specs_;
};

}  // namespace anon
