// Cohort-collapsed lock-step engine.
//
// The paper's processes are anonymous: two processes in the same state
// receive the same round-k broadcast batch (a *set* — duplicates collapse)
// and therefore take the same step.  Simulating each of the n processes
// separately is pure redundancy, so `CohortNet` simulates *equivalence
// classes* instead: one representative `GirafProcess` per class of
// identically-stated processes, plus the member list.  Per-round cost is
// O(C²) in the number of distinct states instead of O(n²) — a failure-free
// post-GST run collapses to a handful of cohorts regardless of n.
//
// Exactness.  Cohort execution is not an approximation; it reproduces the
// expanded `LockstepNet` run observation-for-observation (decision values,
// decision rounds, sends/bytes/deliveries — see tests/cohort_net_test.cpp):
//
//  * State: the algorithms' computes are multiset-invariant.  WRITTEN is an
//    intersection, PROPOSED a union, Algorithm 3's line 8 a pointwise min
//    and its line-9 bumps idempotent per distinct history — m identical
//    messages act exactly like one.  That invariance is the formal content
//    of "anonymous algorithms cannot count", and it is what makes one
//    representative delivery per (sender class, receiver class) pair
//    state-exact.
//  * Metrics: transport counters DO see multiplicity.  A class of m
//    senders broadcasting one interned payload accounts m·(n−1) link sends,
//    and a delivered broadcast accounts A·m − |S ∩ A| per-link deliveries
//    (A = alive non-halted processes, S = the sender-class snapshot): the
//    receivers see a multiset of (payload, count) pairs, weighted exactly
//    as the expanded engine would count them entry by entry.
//
// Split / merge rules:
//
//  * Split (delivery asymmetry): in rounds where `DelayModel::uniform_delay`
//    opts out, per-link delays can hand class members different batch sets.
//    Deliveries are scheduled per link; at delivery time each cohort is
//    partitioned by the *set* of (payload, msg-round) pairs its members
//    received, and every class beyond the first gets a deep copy
//    (`GirafProcess::clone`) of the representative.  Worst case (fully
//    adversarial pre-GST timing) this degrades gracefully to n singleton
//    cohorts — the expanded simulation, at the expanded price.
//  * Split (crash): a member crashing at round k shares its class's final
//    compute, but its partial final broadcast is per-link (the audience is
//    per receiver) and it takes no further steps: its decision state is
//    finalized and it leaves the member list.
//  * Merge: after each delivery phase, cohorts are bucketed by state digest
//    (`Automaton::state_digest` ⊕ round ⊕ inbox content digest) and
//    buckets are confirmed with exact `state_equals`/`same_content`
//    comparison — classes whose members became indistinguishable (e.g.
//    distinct proposals converging on the decided value) re-collapse.
//
// Execution modes, mirroring LockstepNet (see DESIGN.md, "Sharded cohort
// execution"):
//
//  * Serial reference (engine_threads == 1, engine_shards <= 1): one thread
//    walks all classes — the differential oracle.
//  * Sharded: classes are partitioned into contiguous shards over the
//    process-wide WorkerPool.  Each round, the *compute wave* (one
//    representative end-of-round + per-shard intern per class), the
//    *delivery fan-out* (each class applies the round's broadcasts), the
//    merge pass's digest loop and the reindex loops run shard-parallel;
//    a serial barrier after the compute wave canonicalizes freshly interned
//    payloads by content digest across shards — one object per content
//    network-wide, so the split signatures' pointer-identity-is-content-
//    identity invariant survives sharding — and everything order-sensitive
//    (calendar scheduling, transport counters, crash bookkeeping, split and
//    merge structure) replays serially in class order, byte-for-byte the
//    serial engine's fold.  Reports are byte-identical at every
//    thread/shard count (tests/cohort_net_test.cpp).
//
// Per-round scratch that is map-shaped (receiver partitions and split maps
// of asymmetric rounds) lives in a `RoundArena` (core/arena.hpp): bump
// allocations reclaimed wholesale at the next round's reset.  Flat scratch
// (digest/merge buckets, canonicalization tables, the due-entry buffer)
// lives in capacity-retaining member vectors.  Either way the steady state
// allocates nothing (tests/allocation_steady_state_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/arena.hpp"
#include "core/calendar.hpp"
#include "core/partition.hpp"
#include "core/sweep.hpp"
#include "core/worker_pool.hpp"
#include "giraf/process.hpp"
#include "net/lockstep.hpp"
#include "net/schedule.hpp"

namespace anon {

// Counters describing how well the run collapsed (tests, benches, ops).
struct CohortStats {
  std::size_t cohorts = 0;      // current number of equivalence classes
  std::size_t max_cohorts = 0;  // peak over the run
  std::uint64_t splits = 0;     // new classes from delivery asymmetries
  std::uint64_t merges = 0;     // classes re-collapsed after converging
  std::uint64_t clones = 0;     // representative deep copies made

  std::string to_string() const;
};

struct CohortOptions {
  std::uint64_t seed = 1;
  Round max_rounds = 100000;
  bool relay_partial_broadcast = true;
  Round relay_extra_delay = 2;
  HaltPolicy halt_policy = HaltPolicy::kContinueForever;
  // Merging is semantics-preserving (exact-equality checked); the knob
  // exists for the split/merge tests and for A/B-ing its cost.
  bool merge_cohorts = true;
  // Optional fault plan (env/faults.hpp), aliased for the run's lifetime.
  // An active plan forces per-link scheduling every round (fates vary by
  // link), so fault asymmetries split cohorts through the existing
  // signature-partition machinery — degradation is principled, not
  // approximate.
  const FaultPlan* faults = nullptr;
  // Worker-pool participants driving the per-round waves (1 = the serial
  // reference engine; 0 = one per hardware thread) and the cohort-shard
  // count (0 = one per participant).  Reports are byte-identical at any
  // value — see the class comment.
  std::size_t engine_threads = 1;
  std::size_t engine_shards = 0;

  // The lock-step option set, minus the trace knobs: the cohort engine
  // records no per-process trace (a trace is exactly the per-index
  // expansion this engine exists to avoid).
  static CohortOptions from(const LockstepOptions& o) {
    CohortOptions c;
    c.seed = o.seed;
    c.max_rounds = o.max_rounds;
    c.relay_partial_broadcast = o.relay_partial_broadcast;
    c.relay_extra_delay = o.relay_extra_delay;
    c.halt_policy = o.halt_policy;
    c.faults = o.faults;
    c.engine_threads = o.engine_threads;
    c.engine_shards = o.engine_shards;
    return c;
  }
};

template <GirafMessage M>
class CohortNet {
 public:
  // One initial equivalence class: processes that start in the same state
  // (same algorithm, same initial value).  Member sets must partition
  // [0, n).  The grouping is the caller's promise — the engine checks
  // coverage, not state equality of hypothetical expanded automatons.
  struct InitGroup {
    std::unique_ptr<Automaton<M>> automaton;
    std::vector<ProcId> members;
  };

  // NOTE: the engine aliases `delays` for its whole lifetime — the model
  // is shared, immutable and typically outlives whole sweeps, so the net
  // does not take ownership.  The rvalue overload below rejects binding a
  // temporary (which would dangle on the first delay probe) at compile
  // time; construct the model in an outer scope instead.
  CohortNet(std::vector<InitGroup> groups, const DelayModel& delays,
            CrashPlan crashes, CohortOptions opt = {})
      : delays_(delays), crashes_(std::move(crashes)), opt_(opt) {
    ANON_CHECK(!groups.empty());
    for (const InitGroup& g : groups) n_ += g.members.size();
    ANON_CHECK(n_ > 0);
    const std::size_t threads = opt_.engine_threads == 0
                                    ? resolve_sweep_threads(0)
                                    : opt_.engine_threads;
    const std::size_t shards =
        opt_.engine_shards == 0 ? threads : opt_.engine_shards;
    participants_ = std::max<std::size_t>(threads, 1);
    sharded_ = shards > 1 || participants_ > 1;
    shard_count_ = sharded_ ? std::max<std::size_t>(shards, 1) : 1;
    interners_.resize(shard_count_);
    cohort_of_.assign(n_, kNoCohort);
    decision_round_.assign(n_, kNoRound);
    cohorts_.reserve(groups.size());
    for (InitGroup& g : groups) {
      ANON_CHECK(!g.members.empty());
      auto c = std::make_unique<Cohort>();
      c->rep = std::make_unique<GirafProcess<M>>(std::move(g.automaton));
      c->members = std::move(g.members);
      std::sort(c->members.begin(), c->members.end());
      for (ProcId p : c->members) {
        ANON_CHECK_MSG(p < n_ && cohort_of_[p] == kNoCohort,
                       "InitGroup members must partition [0, n)");
        cohort_of_[p] = 0;  // provisional; reindex() assigns real indices
        if (!crashes_.ever_crashes(p)) ++c->correct_members;
      }
      cohorts_.push_back(std::move(c));
    }
    sort_and_reindex();
    stats_.cohorts = stats_.max_cohorts = cohorts_.size();
    // Crash events, in firing order (ties broken by process id for
    // deterministic death bookkeeping).
    for (ProcId p = 0; p < n_; ++p)
      if (Round c = crashes_.crash_round(p); c != kNeverCrashes)
        crash_events_.emplace_back(c, p);
    std::sort(crash_events_.begin(), crash_events_.end());
    // Metric fast path: with no crashes and no halt policy nobody ever
    // leaves the alive∩non-halted set, so broadcast deliveries are a
    // closed-form count and entries need no sender snapshots.
    needs_snapshots_ = crashes_.crash_count() > 0 ||
                       opt_.halt_policy == HaltPolicy::kStopAfterDecide;
  }

  CohortNet(std::vector<InitGroup> groups, const DelayModel&& delays,
            CrashPlan crashes, CohortOptions opt = {}) = delete;

  std::size_t n() const { return n_; }
  Round round() const { return round_; }
  const CohortStats& stats() const { return stats_; }
  std::size_t cohort_count() const { return cohorts_.size(); }

  // Shards the engine partitions classes into (1 = the serial reference).
  std::size_t engine_shards() const { return shard_count_; }

  bool is_correct(ProcId p) const { return !crashes_.ever_crashes(p); }

  std::optional<Value> decision(ProcId p) const {
    ANON_CHECK(p < n_);
    if (cohort_of_[p] == kDead) return dead_decision_.at(p);
    return cohorts_[cohort_of_[p]]->rep->decision();
  }

  Round decision_round(ProcId p) const { return decision_round_[p]; }

  bool all_correct_decided() const {
    for (const auto& c : cohorts_)
      if (c->correct_members > 0 && !c->rep->decision().has_value())
        return false;
    return true;
  }

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Fault-plan metrics, matching LockstepNet's accounting exactly: drops
  // and duplicates per message on the link; `sends` counts attempts.
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_dups() const { return fault_dups_; }

  std::size_t inbox_overflow_high_water() const {
    std::size_t hw = 0;
    for (const auto& c : cohorts_)
      hw = std::max(hw, c->rep->inboxes().overflow_high_water());
    return hw;
  }

  std::size_t inbox_overflow_dropped() const {
    std::size_t dropped = 0;
    for (const auto& c : cohorts_)
      dropped += c->rep->inboxes().overflow_dropped();
    return dropped;
  }

  // The representative of p's current equivalence class (introspection).
  const GirafProcess<M>& representative(ProcId p) const {
    ANON_CHECK(p < n_ && cohort_of_[p] != kDead);
    return *cohorts_[cohort_of_[p]]->rep;
  }

  // Observable automaton state of p, dead or alive: the class
  // representative while p lives, its death-time clone afterwards.  A
  // per-index engine keeps a crashed process's automaton around frozen at
  // its final compute; the dying member's final compute was its class's
  // (finalize_death), so the clone taken there reads byte-identically.
  const Automaton<M>& automaton_view(ProcId p) const {
    ANON_CHECK(p < n_);
    if (cohort_of_[p] == kDead) {
      const auto& frozen = dead_state_.at(p);
      ANON_CHECK(frozen != nullptr);
      return *frozen;
    }
    return cohorts_[cohort_of_[p]]->rep->automaton();
  }

  // Applies an in-place state mutation to ONE member's automaton (the
  // weak-set harnesses inject start_add this way).  If p shares a class
  // with other members it is split out first — after the mutation it is no
  // longer state-equivalent to them; the next merge pass re-collapses it
  // if the mutation turns out to be state-neutral.  Safe between rounds
  // and inside a run's stop() callback: calendar entries address processes
  // (unicast) or resolve against the class list at delivery (broadcast),
  // so membership restructuring never strands a pending message.
  template <typename Fn>
  void mutate_member(ProcId p, Fn&& fn) {
    ANON_CHECK(p < n_ && cohort_of_[p] != kDead);
    Cohort& c = *cohorts_[cohort_of_[p]];
    ANON_CHECK_MSG(!c.halted, "mutate_member on a halted class");
    if (c.members.size() == 1) {
      fn(c.rep->automaton());
      return;
    }
    ++stats_.splits;
    auto split = std::make_unique<Cohort>();
    split->rep = c.rep->clone();
    ++stats_.clones;
    split->members = {p};
    split->correct_members = crashes_.ever_crashes(p) ? 0u : 1u;
    split->decided_noted = c.decided_noted;
    c.members.erase(std::find(c.members.begin(), c.members.end(), p));
    c.correct_members -= split->correct_members;
    fn(split->rep->automaton());
    cohorts_.push_back(std::move(split));
    purge_sort_reindex();
  }

  // Engine loop — identical phase order to LockstepNet::run, with an extra
  // (invisible to `stop`) merge pass after deliveries.
  template <typename StopFn>
  RunResult run(StopFn stop) {
    if (round_ == 0) bootstrap();
    while (round_ < opt_.max_rounds) {
      deliver_due(round_);
      if (opt_.merge_cohorts) merge_converged();
      if (stop(*this)) return {round_, true};
      advance_round();
      note_decisions();
    }
    return {round_, false};
  }

  RunResult run_until_all_correct_decided() {
    return run([](const CohortNet& net) { return net.all_correct_decided(); });
  }

  RunResult run_rounds(Round rounds) {
    const Round target = round_ + rounds;
    return run([target](const CohortNet& net) { return net.round() >= target; });
  }

 private:
  static constexpr std::uint32_t kNoCohort =
      std::numeric_limits<std::uint32_t>::max() - 1;
  static constexpr std::uint32_t kDead =
      std::numeric_limits<std::uint32_t>::max();

  struct Cohort {
    std::unique_ptr<GirafProcess<M>> rep;
    std::vector<ProcId> members;  // sorted ascending, all alive
    std::size_t correct_members = 0;
    bool halted = false;
    bool decided_noted = false;  // members' decision_round_ recorded
  };

  // One calendar entry.  A broadcast entry stands for `copies` identical
  // per-link sends to every other process; a unicast entry is one link
  // (per-link delays, crash audiences and relays).
  struct Pending {
    SharedBatch<M> payload;
    Round msg_round = 0;
    std::uint32_t copies = 1;
    ProcId receiver = 0;  // unicast only
    bool broadcast = false;
    // Sender-class snapshot for the delivery-count fallback; null when the
    // closed-form count applies (no crashes, no halt policy).
    std::shared_ptr<const std::vector<ProcId>> senders;
  };

  // The compute wave's per-class output, staged for the serial schedule
  // pass (and for cross-shard payload canonicalization in sharded mode).
  struct WaveOut {
    SharedBatch<M> payload;
    std::size_t bytes = 0;
    bool stepped = false;  // false = class was halted before this wave
  };

  struct CanonEntry {
    std::uint64_t digest = 0;
    std::uint32_t seq = 0;  // discovery order (shard order, in-shard order)
    SharedBatch<M> batch;
  };

  struct RemapEntry {
    const MessageBatch<M>* from = nullptr;
    SharedBatch<M> to;
  };

  void bootstrap() {
    decision_round_.assign(n_, kNoRound);
    wave(1);
    round_ = 1;
  }

  void advance_round() {
    const Round next = round_ + 1;
    wave(next);
    round_ = next;
  }

  // Shard layout over the current class list: contiguous ranges covering
  // [0, count), at most shard_count_ of them, weight-balanced by member
  // count (core/partition.hpp).  Collapsed runs are a few huge classes
  // plus singleton stragglers; an equal-width cut parks all the O(n)
  // member fan-out on one worker.  Any contiguous cover is result-safe —
  // order-sensitive work replays serially in class order at the barriers.
  void rebuild_shard_ranges(std::size_t count) {
    balanced_ranges_weighted(
        count, std::min(shard_count_, std::max<std::size_t>(count, 1)),
        [this](std::size_t ci) {
          return static_cast<std::uint64_t>(cohorts_[ci]->members.size());
        },
        &shard_ranges_);
  }

  // End-of-round wave k: one representative compute per class (sharded),
  // one broadcast per class (uniform rounds) or per link (asymmetric
  // rounds), and death bookkeeping for members whose crash round is k.
  void wave(Round k) {
    // Members crashing at k, grouped by class.
    std::map<std::uint32_t, std::vector<ProcId>> crashing;
    while (next_crash_ < crash_events_.size() &&
           crash_events_[next_crash_].first == k) {
      const ProcId p = crash_events_[next_crash_].second;
      ++next_crash_;
      ANON_CHECK(cohort_of_[p] != kDead && cohort_of_[p] != kNoCohort);
      crashing[cohort_of_[p]].push_back(p);
    }

    // An active fault plan makes every round link-asymmetric; forcing the
    // per-link branch routes faults through the split machinery.
    const std::optional<Round> ud =
        (opt_.faults != nullptr && opt_.faults->active())
            ? std::nullopt
            : delays_.uniform_delay(k);

    // Compute wave: end-of-round + intern, sharded over classes.  Mutates
    // only per-class state and the shard's own interner; everything
    // order-sensitive replays serially below.
    const std::size_t count = cohorts_.size();
    wave_out_.resize(count);
    wave_round_ = k;
    if (!sharded_) {
      interners_[0].round_reset();
      compute_range(0, count, 0);
    } else {
      rebuild_shard_ranges(count);
      WorkerPool::shared().parallel_for(
          shard_ranges_.size(),
          [this](std::size_t s) {
            interners_[s].round_reset();
            compute_range(shard_ranges_[s].first, shard_ranges_[s].second, s);
          },
          participants_);
      canonicalize_wave_payloads();
    }

    // Schedule wave: serial, in class order — byte-for-byte the serial
    // engine's fold over counters, calendar entries and crash bookkeeping.
    bool structural = false;
    for (std::uint32_t ci = 0; ci < count; ++ci) {
      Cohort& c = *cohorts_[ci];
      auto itc = crashing.find(ci);
      const std::vector<ProcId>* dying =
          itc == crashing.end() ? nullptr : &itc->second;
      if (!wave_out_[ci].stepped) {
        // A halted process never executes an end-of-round — not even its
        // crash-round one (no final broadcast); its crash only removes it
        // from the alive set.
        if (dying != nullptr) {
          for (ProcId p : *dying) finalize_death(c, p, k);
          remove_dead_members(c);
          structural = true;
        }
        continue;
      }
      schedule_eor(ci, k, ud, dying);
      if (dying != nullptr) structural = true;
    }
    if (structural) purge_sort_reindex();
  }

  void compute_range(std::size_t begin, std::size_t end, std::size_t s) {
    for (std::size_t ci = begin; ci < end; ++ci) {
      Cohort& c = *cohorts_[ci];
      WaveOut& w = wave_out_[ci];
      if (c.halted) {
        w.stepped = false;
        w.payload.reset();
        continue;
      }
      auto out = c.rep->end_of_round();
      ANON_CHECK(out.round == wave_round_);
      if (opt_.halt_policy == HaltPolicy::kStopAfterDecide &&
          c.rep->decision().has_value())
        c.halted = true;  // effective next wave; this broadcast still goes
      std::size_t batch_bytes = 0;
      for (const M& m : out.batch) batch_bytes += MessageSizeOf<M>::size(m);
      w.payload = interners_[s].intern(out.batch);
      w.bytes = batch_bytes;
      w.stepped = true;
    }
  }

  // Cross-shard payload canonicalization, first discovery wins: content
  // interned by several shards this round collapses to one object
  // network-wide — the invariant that makes the split signatures' pointer
  // comparisons content comparisons.  The *choice* of winner is
  // unobservable (every observable is content-based); determinism only
  // needs it to be a pure function of content and discovery order, which
  // sorting by (digest, seq) over shard-ordered discovery gives.  All
  // scratch is capacity-retaining members: zero steady-state allocations.
  void canonicalize_wave_payloads() {
    canon_scratch_.clear();
    std::uint32_t seq = 0;
    for (std::size_t s = 0; s < shard_ranges_.size(); ++s)
      for (const SharedBatch<M>& b : interners_[s].fresh())
        canon_scratch_.push_back({b->digest, seq++, b});
    if (canon_scratch_.size() <= 1) return;
    std::sort(canon_scratch_.begin(), canon_scratch_.end(),
              [](const CanonEntry& a, const CanonEntry& b) {
                if (a.digest != b.digest) return a.digest < b.digest;
                return a.seq < b.seq;
              });
    remap_scratch_.clear();
    for (std::size_t i = 0; i < canon_scratch_.size();) {
      std::size_t j = i + 1;
      while (j < canon_scratch_.size() &&
             canon_scratch_[j].digest == canon_scratch_[i].digest)
        ++j;
      // Within a digest run, the first entry of each distinct content is
      // canonical; later content-equal ones are remapped to it.
      for (std::size_t a = i; j - i >= 2 && a < j; ++a) {
        if (canon_scratch_[a].batch == nullptr) continue;  // remapped already
        for (std::size_t b = a + 1; b < j; ++b) {
          if (canon_scratch_[b].batch == nullptr) continue;
          if (canon_scratch_[a].batch->msgs == canon_scratch_[b].batch->msgs) {
            remap_scratch_.push_back(
                {canon_scratch_[b].batch.get(), canon_scratch_[a].batch});
            canon_scratch_[b].batch = nullptr;
          }
        }
      }
      i = j;
    }
    if (remap_scratch_.empty()) return;
    std::sort(remap_scratch_.begin(), remap_scratch_.end(),
              [](const RemapEntry& a, const RemapEntry& b) {
                return a.from < b.from;
              });
    for (WaveOut& w : wave_out_) {
      if (!w.stepped) continue;
      auto it = std::lower_bound(
          remap_scratch_.begin(), remap_scratch_.end(), w.payload.get(),
          [](const RemapEntry& e, const MessageBatch<M>* key) {
            return e.from < key;
          });
      if (it != remap_scratch_.end() && it->from == w.payload.get())
        w.payload = it->to;
    }
  }

  // The serial half of the end-of-round wave for one class: transport
  // counters, calendar scheduling and crash bookkeeping, reading the
  // staged (canonicalized) payload.
  void schedule_eor(std::uint32_t ci, Round k, const std::optional<Round>& ud,
                    const std::vector<ProcId>* dying) {
    Cohort& c = *cohorts_[ci];
    const SharedBatch<M>& payload = wave_out_[ci].payload;
    const std::size_t batch_bytes = wave_out_[ci].bytes;
    const std::uint64_t msg_count = payload->size();

    const std::size_t dying_count = dying ? dying->size() : 0;
    const std::size_t survivors = c.members.size() - dying_count;

    if (survivors > 0) {
      if (ud.has_value()) {
        // One interned broadcast for the whole class: `survivors` senders,
        // each reaching the other n-1 processes with the same delay.
        sends_ += static_cast<std::uint64_t>(survivors) * (n_ - 1) * msg_count;
        bytes_sent_ +=
            static_cast<std::uint64_t>(survivors) * (n_ - 1) * batch_bytes;
        Pending e;
        e.payload = payload;
        e.msg_round = k;
        e.copies = static_cast<std::uint32_t>(survivors);
        e.broadcast = true;
        if (needs_snapshots_) {
          if (dying_count == 0) {
            e.senders = std::make_shared<const std::vector<ProcId>>(c.members);
          } else {
            std::vector<ProcId> alive;
            alive.reserve(survivors);
            for (ProcId p : c.members)
              if (std::find(dying->begin(), dying->end(), p) == dying->end())
                alive.push_back(p);
            e.senders =
                std::make_shared<const std::vector<ProcId>>(std::move(alive));
          }
        }
        calendar_.schedule(k + *ud, std::move(e));
      } else {
        // Asymmetric round: per-link scheduling (the expanded engine's
        // cost, paid only while the adversary actually differentiates).
        for (ProcId p : c.members) {
          if (dying != nullptr &&
              std::find(dying->begin(), dying->end(), p) != dying->end())
            continue;
          for (ProcId q = 0; q < n_; ++q) {
            if (q == p) continue;
            Round d = delays_.delay(k, p, q);
            sends_ += msg_count;
            bytes_sent_ += batch_bytes;
            bool dup = false;
            Round dup_delay = 1;
            if (opt_.faults != nullptr && opt_.faults->active()) {
              const LinkFate f = opt_.faults->fate(k, p, q);
              if (!f.deliver) {
                fault_drops_ += msg_count;
                continue;
              }
              d += f.extra_delay;
              if (f.duplicate) {
                fault_dups_ += msg_count;
                dup = true;
                dup_delay = f.dup_delay;
              }
            }
            Pending e;
            e.payload = payload;
            e.msg_round = k;
            e.receiver = q;
            if (dup) calendar_.schedule(k + d + dup_delay, Pending(e));
            calendar_.schedule(k + d, std::move(e));
          }
        }
      }
    }

    // Crashing members: the final broadcast reaches only the chosen
    // audience (possibly relayed late) — inherently per link.
    if (dying != nullptr) {
      for (ProcId p : *dying) {
        for (ProcId q = 0; q < n_; ++q) {
          if (q == p) continue;
          Round d = ud.has_value() ? *ud : delays_.delay(k, p, q);
          if (!crashes_.in_final_audience(p, q, n_, opt_.seed)) {
            if (!opt_.relay_partial_broadcast) continue;  // lost forever
            d = std::max<Round>(d, 1) + opt_.relay_extra_delay;
          }
          sends_ += msg_count;
          bytes_sent_ += batch_bytes;
          bool dup = false;
          Round dup_delay = 1;
          if (opt_.faults != nullptr && opt_.faults->active()) {
            const LinkFate f = opt_.faults->fate(k, p, q);
            if (!f.deliver) {
              fault_drops_ += msg_count;
              continue;
            }
            d += f.extra_delay;
            if (f.duplicate) {
              fault_dups_ += msg_count;
              dup = true;
              dup_delay = f.dup_delay;
            }
          }
          Pending e;
          e.payload = payload;
          e.msg_round = k;
          e.receiver = q;
          if (dup) calendar_.schedule(k + d + dup_delay, Pending(e));
          calendar_.schedule(k + d, std::move(e));
        }
        finalize_death(c, p, k);
      }
      remove_dead_members(c);
    }
  }

  // Records a dying member's observable state; the class's final compute
  // of round k was its compute, so the representative speaks for it.
  void finalize_death(Cohort& c, ProcId p, Round k) {
    if (c.rep->decision().has_value() && decision_round_[p] == kNoRound)
      decision_round_[p] = k - 1;
    dead_decision_[p] = c.rep->decision();
    dead_state_[p] = c.rep->automaton().clone_state();
    cohort_of_[p] = kDead;
  }

  // Drops members already finalized as dead (cohort_of_ == kDead).
  void remove_dead_members(Cohort& c) {
    auto dead = [&](ProcId p) { return cohort_of_[p] == kDead; };
    c.members.erase(std::remove_if(c.members.begin(), c.members.end(), dead),
                    c.members.end());
  }

  void deliver_due(Round r) {
    calendar_.advance_to(r);
    calendar_.take_due_into(due_scratch_);
    if (due_scratch_.empty()) return;

    // A = alive ∩ non-halted processes, for multiplicity-weighted counts —
    // an index-ordered map-reduce over the class shards (deterministic by
    // construction; integer sums commute anyway).
    std::uint64_t alive_nonhalted = 0;
    if (!sharded_) {
      for (const auto& c : cohorts_)
        if (!c->halted) alive_nonhalted += c->members.size();
    } else {
      rebuild_shard_ranges(cohorts_.size());
      alive_nonhalted = WorkerPool::shared().parallel_reduce(
          shard_ranges_.size(), std::uint64_t{0}, reduce_scratch_,
          [this](std::size_t s) {
            std::uint64_t sum = 0;
            for (std::size_t ci = shard_ranges_[s].first;
                 ci < shard_ranges_[s].second; ++ci)
              if (!cohorts_[ci]->halted) sum += cohorts_[ci]->members.size();
            return sum;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; },
          participants_);
    }

    bool any_unicast = false;
    bool any_broadcast = false;
    for (const Pending& e : due_scratch_) {
      if (!e.broadcast) {
        any_unicast = true;
        continue;
      }
      any_broadcast = true;
      // Metrics: Σ over alive non-halted receivers q of |S \ {q}|.
      std::uint64_t in_set = e.copies;
      if (needs_snapshots_) {
        in_set = 0;
        for (ProcId p : *e.senders)
          if (cohort_of_[p] != kDead && !cohorts_[cohort_of_[p]]->halted)
            ++in_set;
      }
      deliveries_ +=
          e.payload->size() * (alive_nonhalted * e.copies - in_set);
    }
    // State fan-out, loop-exchanged and sharded over classes: each class
    // applies the round's broadcasts in calendar order.  The sender class
    // receives its own payload too — for members that ARE the sender this
    // merely re-adds their own round message (a set no-op), exactly as
    // peers' identical broadcasts would.  The exchange is unobservable:
    // per-receiver insertion order is preserved and views sort by content.
    if (any_broadcast) {
      if (!sharded_) {
        receive_broadcasts_range(0, cohorts_.size());
      } else {
        WorkerPool::shared().parallel_for(
            shard_ranges_.size(),
            [this](std::size_t s) {
              receive_broadcasts_range(shard_ranges_[s].first,
                                       shard_ranges_[s].second);
            },
            participants_);
      }
    }
    if (any_unicast) deliver_unicasts(due_scratch_, r);
    due_scratch_.clear();
  }

  void receive_broadcasts_range(std::size_t begin, std::size_t end) {
    for (std::size_t ci = begin; ci < end; ++ci) {
      Cohort& c = *cohorts_[ci];
      if (c.halted) continue;
      for (const Pending& e : due_scratch_)
        if (e.broadcast) c.rep->receive(e.payload, e.msg_round);
    }
  }

  // Per-link deliveries: count metrics per entry, then partition each
  // affected class by the SET of (msg_round, payload) pairs its members
  // received — the exact condition under which members stay equivalent.
  // The receiver partition and the split maps are arena-backed: bump
  // allocations, reclaimed wholesale at the next asymmetric round's reset
  // (every container below dies before this function returns).
  void deliver_unicasts(const std::vector<Pending>& due, Round /*r*/) {
    arena_.reset();
    auto by_receiver = make_arena_umap<ProcId, ArenaVector<const Pending*>>(
        arena_, due.size());
    for (const Pending& e : due) {
      if (e.broadcast) continue;
      const std::uint32_t ci = cohort_of_[e.receiver];
      if (ci == kDead || cohorts_[ci]->halted) continue;  // dropped silently
      deliveries_ += e.payload->size();
      auto [it, inserted] = by_receiver.try_emplace(
          e.receiver, ArenaAlloc<const Pending*>(&arena_));
      it->second.push_back(&e);
    }
    if (by_receiver.empty()) return;

    // (msg_round, payload) identifies content: payloads are interned per
    // (content, engine round) and canonicalized across shards, so pointer
    // equality is content equality.
    using Sig = std::vector<std::pair<Round, SharedBatch<M>>>;
    auto sig_less = [](const typename Sig::value_type& x,
                       const typename Sig::value_type& y) {
      if (x.first != y.first) return x.first < y.first;
      return x.second.get() < y.second.get();
    };
    auto sig_of = [&](ProcId p) {
      Sig s;
      auto it = by_receiver.find(p);
      if (it != by_receiver.end()) {
        s.reserve(it->second.size());
        for (const Pending* e : it->second)
          s.emplace_back(e->msg_round, e->payload);
        std::sort(s.begin(), s.end(), sig_less);
        s.erase(std::unique(s.begin(), s.end()), s.end());
      }
      return s;
    };

    using ClassAlloc = ArenaAlloc<std::pair<const Sig, std::vector<ProcId>>>;
    using ClassMap = std::map<Sig, std::vector<ProcId>, std::less<Sig>,
                              ClassAlloc>;

    bool structural = false;
    const std::size_t existing = cohorts_.size();
    for (std::size_t ci = 0; ci < existing; ++ci) {
      Cohort& c = *cohorts_[ci];
      if (c.halted) continue;
      // Partition members by signature, preserving member order so the
      // class layout (and hence everything downstream) is deterministic.
      ClassMap classes{std::less<Sig>(), ClassAlloc(&arena_)};
      bool any = false;
      for (ProcId p : c.members) {
        Sig s = sig_of(p);
        if (!s.empty()) any = true;
        classes[std::move(s)].push_back(p);
      }
      if (!any) continue;  // no unicast touched this class

      if (classes.size() == 1) {
        deliver_sig(c, classes.begin()->first);
        continue;
      }

      // Split: the subclass containing the class's first member keeps the
      // representative; the others get clones.
      structural = true;
      stats_.splits += classes.size() - 1;
      const ProcId anchor = c.members.front();
      std::vector<ProcId> anchor_members;
      const Sig* anchor_sig = nullptr;
      for (auto& [sig, members] : classes) {
        if (std::binary_search(members.begin(), members.end(), anchor)) {
          anchor_sig = &sig;
          anchor_members = std::move(members);
          continue;
        }
        auto split = std::make_unique<Cohort>();
        split->rep = c.rep->clone();
        ++stats_.clones;
        split->members = members;
        // halted stays false: halted cohorts never reach the split path
        // (deliveries to them are dropped above).
        split->decided_noted = c.decided_noted;
        for (ProcId p : split->members)
          if (!crashes_.ever_crashes(p)) ++split->correct_members;
        deliver_sig(*split, sig);
        cohorts_.push_back(std::move(split));
      }
      ANON_CHECK(anchor_sig != nullptr);
      deliver_sig(c, *anchor_sig);
      c.members = std::move(anchor_members);
      c.correct_members = 0;
      for (ProcId p : c.members)
        if (!crashes_.ever_crashes(p)) ++c.correct_members;
    }
    if (structural) purge_sort_reindex();
  }

  void deliver_sig(Cohort& c,
                   const std::vector<std::pair<Round, SharedBatch<M>>>& sig) {
    for (const auto& [msg_round, batch] : sig)
      c.rep->receive(batch, msg_round);
  }

  // Merge pass: digest every class (sharded), group equal digests by
  // sorting flat (digest, index) pairs — the buckets are runs in a
  // capacity-retaining scratch vector, not a node-allocating hash map —
  // confirm exact equality, absorb.  Ascending index order within a run
  // keeps the winner choice identical to the serial engine's.
  void merge_converged() {
    const std::size_t count = cohorts_.size();
    if (count <= 1) return;
    merge_digests_.resize(count);
    if (!sharded_) {
      digest_range(0, count);
    } else {
      rebuild_shard_ranges(count);
      WorkerPool::shared().parallel_for(
          shard_ranges_.size(),
          [this](std::size_t s) {
            digest_range(shard_ranges_[s].first, shard_ranges_[s].second);
          },
          participants_);
    }
    merge_scratch_.clear();
    for (std::uint32_t i = 0; i < count; ++i)
      merge_scratch_.push_back({merge_digests_[i], i});
    std::sort(merge_scratch_.begin(), merge_scratch_.end());

    bool structural = false;
    for (std::size_t i = 0; i < count;) {
      std::size_t j = i + 1;
      while (j < count && merge_scratch_[j].first == merge_scratch_[i].first)
        ++j;
      for (std::size_t a = i; j - i >= 2 && a < j; ++a) {
        Cohort& winner = *cohorts_[merge_scratch_[a].second];
        if (winner.members.empty()) continue;  // absorbed earlier this pass
        for (std::size_t b = a + 1; b < j; ++b) {
          Cohort& loser = *cohorts_[merge_scratch_[b].second];
          if (loser.members.empty()) continue;
          if (winner.halted != loser.halted ||
              !winner.rep->same_state(*loser.rep))
            continue;
          // Absorb: merge the sorted member lists; decided bookkeeping is
          // identical by state equality (equal decision ⇒ both already
          // noted or both undecided).
          std::vector<ProcId> merged;
          merged.reserve(winner.members.size() + loser.members.size());
          std::merge(winner.members.begin(), winner.members.end(),
                     loser.members.begin(), loser.members.end(),
                     std::back_inserter(merged));
          winner.members = std::move(merged);
          winner.correct_members += loser.correct_members;
          loser.members.clear();
          ++stats_.merges;
          structural = true;
        }
      }
      i = j;
    }
    if (structural) purge_sort_reindex();
  }

  void digest_range(std::size_t begin, std::size_t end) {
    for (std::size_t ci = begin; ci < end; ++ci)
      merge_digests_[ci] = detail::mix_digest(
          cohorts_[ci]->rep->state_digest(), cohorts_[ci]->halted ? 1 : 0);
  }

  void note_decisions() {
    if (!sharded_) {
      note_decisions_range(0, cohorts_.size());
      return;
    }
    rebuild_shard_ranges(cohorts_.size());
    WorkerPool::shared().parallel_for(
        shard_ranges_.size(),
        [this](std::size_t s) {
          note_decisions_range(shard_ranges_[s].first,
                               shard_ranges_[s].second);
        },
        participants_);
  }

  // Stamps decision rounds for a class range.  Classes own disjoint member
  // sets, so shard writes to decision_round_ never collide.
  void note_decisions_range(std::size_t begin, std::size_t end) {
    for (std::size_t ci = begin; ci < end; ++ci) {
      Cohort& c = *cohorts_[ci];
      if (c.decided_noted || !c.rep->decision().has_value()) continue;
      for (ProcId p : c.members)
        if (decision_round_[p] == kNoRound) decision_round_[p] = round_ - 1;
      c.decided_noted = true;
    }
  }

  // Drops emptied classes, restores the smallest-member ordering and
  // rewrites the process→class index (sharded — the one O(n) pass left on
  // structural rounds).  Only runs on structural changes (splits, merges,
  // deaths) — never on the steady-state fast path.
  void purge_sort_reindex() {
    cohorts_.erase(std::remove_if(cohorts_.begin(), cohorts_.end(),
                                  [](const std::unique_ptr<Cohort>& c) {
                                    return c->members.empty();
                                  }),
                   cohorts_.end());
    std::sort(cohorts_.begin(), cohorts_.end(),
              [](const std::unique_ptr<Cohort>& a,
                 const std::unique_ptr<Cohort>& b) {
                return a->members.front() < b->members.front();
              });
    if (!sharded_ || cohorts_.size() < 2) {
      for (std::uint32_t i = 0; i < cohorts_.size(); ++i)
        for (ProcId p : cohorts_[i]->members) cohort_of_[p] = i;
    } else {
      rebuild_shard_ranges(cohorts_.size());
      WorkerPool::shared().parallel_for(
          shard_ranges_.size(),
          [this](std::size_t s) {
            for (std::size_t ci = shard_ranges_[s].first;
                 ci < shard_ranges_[s].second; ++ci)
              for (ProcId p : cohorts_[ci]->members)
                cohort_of_[p] = static_cast<std::uint32_t>(ci);
          },
          participants_);
    }
    stats_.cohorts = cohorts_.size();
    stats_.max_cohorts = std::max(stats_.max_cohorts, cohorts_.size());
  }

  std::size_t n_ = 0;
  const DelayModel& delays_;
  CrashPlan crashes_;
  CohortOptions opt_;
  Round round_ = 0;
  std::vector<std::unique_ptr<Cohort>> cohorts_;  // sorted by members.front()
  std::vector<std::uint32_t> cohort_of_;          // per process; kDead = gone
  std::vector<Round> decision_round_;
  std::map<ProcId, std::optional<Value>> dead_decision_;
  // Frozen death-time automaton clones, for automaton_view (one per
  // crashed process, cloned once in finalize_death).
  std::map<ProcId, std::unique_ptr<Automaton<M>>> dead_state_;
  std::vector<std::pair<Round, ProcId>> crash_events_;
  std::size_t next_crash_ = 0;
  RoundCalendar<Pending> calendar_;
  bool needs_snapshots_ = false;
  CohortStats stats_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_dups_ = 0;

  // Sharded-mode machinery (shard_count_ == 1 is the serial reference) and
  // per-round scratch, all capacity-retaining across rounds.
  bool sharded_ = false;
  std::size_t shard_count_ = 1;
  std::size_t participants_ = 1;
  std::vector<std::pair<std::size_t, std::size_t>> shard_ranges_;
  std::vector<BatchInterner<M>> interners_;  // one per shard
  Round wave_round_ = 0;  // staged for the this-only-capture wave lambdas
  std::vector<WaveOut> wave_out_;  // per class, current wave
  std::vector<CanonEntry> canon_scratch_;
  std::vector<RemapEntry> remap_scratch_;
  std::vector<std::uint64_t> merge_digests_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> merge_scratch_;
  std::vector<std::uint64_t> reduce_scratch_;
  std::vector<Pending> due_scratch_;  // recycled take_due buffer
  RoundArena arena_;  // asymmetric-round receiver partitions + split maps

  void sort_and_reindex() { purge_sort_reindex(); }
};

// The standard cohort construction for consensus workloads: processes
// proposing the same value start in identical automaton state, so they
// form one initial equivalence class.  `make(v)` builds the class
// representative for proposal v.
template <GirafMessage M, typename MakeAutomaton>
std::vector<typename CohortNet<M>::InitGroup> groups_by_initial_value(
    const std::vector<Value>& initial, MakeAutomaton make) {
  std::map<Value, std::vector<ProcId>> by_value;
  for (ProcId p = 0; p < initial.size(); ++p) by_value[initial[p]].push_back(p);
  std::vector<typename CohortNet<M>::InitGroup> groups;
  groups.reserve(by_value.size());
  for (auto& [v, members] : by_value)
    groups.push_back({make(v), std::move(members)});
  return groups;
}

}  // namespace anon
