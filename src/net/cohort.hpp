// Cohort-collapsed lock-step engine.
//
// The paper's processes are anonymous: two processes in the same state
// receive the same round-k broadcast batch (a *set* — duplicates collapse)
// and therefore take the same step.  Simulating each of the n processes
// separately is pure redundancy, so `CohortNet` simulates *equivalence
// classes* instead: one representative `GirafProcess` per class of
// identically-stated processes, plus the member list.  Per-round cost is
// O(C²) in the number of distinct states instead of O(n²) — a failure-free
// post-GST run collapses to a handful of cohorts regardless of n.
//
// Exactness.  Cohort execution is not an approximation; it reproduces the
// expanded `LockstepNet` run observation-for-observation (decision values,
// decision rounds, sends/bytes/deliveries — see tests/cohort_net_test.cpp):
//
//  * State: the algorithms' computes are multiset-invariant.  WRITTEN is an
//    intersection, PROPOSED a union, Algorithm 3's line 8 a pointwise min
//    and its line-9 bumps idempotent per distinct history — m identical
//    messages act exactly like one.  That invariance is the formal content
//    of "anonymous algorithms cannot count", and it is what makes one
//    representative delivery per (sender class, receiver class) pair
//    state-exact.
//  * Metrics: transport counters DO see multiplicity.  A class of m
//    senders broadcasting one interned payload accounts m·(n−1) link sends,
//    and a delivered broadcast accounts A·m − |S ∩ A| per-link deliveries
//    (A = alive non-halted processes, S = the sender-class snapshot): the
//    receivers see a multiset of (payload, count) pairs, weighted exactly
//    as the expanded engine would count them entry by entry.
//
// Split / merge rules:
//
//  * Split (delivery asymmetry): in rounds where `DelayModel::uniform_delay`
//    opts out, per-link delays can hand class members different batch sets.
//    Deliveries are scheduled per link; at delivery time each cohort is
//    partitioned by the *set* of (payload, msg-round) pairs its members
//    received, and every class beyond the first gets a deep copy
//    (`GirafProcess::clone`) of the representative.  Worst case (fully
//    adversarial pre-GST timing) this degrades gracefully to n singleton
//    cohorts — the expanded simulation, at the expanded price.
//  * Split (crash): a member crashing at round k shares its class's final
//    compute, but its partial final broadcast is per-link (the audience is
//    per receiver) and it takes no further steps: its decision state is
//    finalized and it leaves the member list.
//  * Merge: after each delivery phase, cohorts are bucketed by state digest
//    (`Automaton::state_digest` ⊕ round ⊕ inbox content digest) and
//    buckets are confirmed with exact `state_equals`/`same_content`
//    comparison — classes whose members became indistinguishable (e.g.
//    distinct proposals converging on the decided value) re-collapse.
//
// See DESIGN.md, "Cohort-collapsed execution".
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/calendar.hpp"
#include "giraf/process.hpp"
#include "net/lockstep.hpp"
#include "net/schedule.hpp"

namespace anon {

// Counters describing how well the run collapsed (tests, benches, ops).
struct CohortStats {
  std::size_t cohorts = 0;      // current number of equivalence classes
  std::size_t max_cohorts = 0;  // peak over the run
  std::uint64_t splits = 0;     // new classes from delivery asymmetries
  std::uint64_t merges = 0;     // classes re-collapsed after converging
  std::uint64_t clones = 0;     // representative deep copies made

  std::string to_string() const;
};

struct CohortOptions {
  std::uint64_t seed = 1;
  Round max_rounds = 100000;
  bool relay_partial_broadcast = true;
  Round relay_extra_delay = 2;
  HaltPolicy halt_policy = HaltPolicy::kContinueForever;
  // Merging is semantics-preserving (exact-equality checked); the knob
  // exists for the split/merge tests and for A/B-ing its cost.
  bool merge_cohorts = true;
  // Optional fault plan (env/faults.hpp), aliased for the run's lifetime.
  // An active plan forces per-link scheduling every round (fates vary by
  // link), so fault asymmetries split cohorts through the existing
  // signature-partition machinery — degradation is principled, not
  // approximate.
  const FaultPlan* faults = nullptr;

  // The lock-step option set, minus the trace knobs: the cohort engine
  // records no per-process trace (a trace is exactly the per-index
  // expansion this engine exists to avoid).
  static CohortOptions from(const LockstepOptions& o) {
    CohortOptions c;
    c.seed = o.seed;
    c.max_rounds = o.max_rounds;
    c.relay_partial_broadcast = o.relay_partial_broadcast;
    c.relay_extra_delay = o.relay_extra_delay;
    c.halt_policy = o.halt_policy;
    c.faults = o.faults;
    return c;
  }
};

template <GirafMessage M>
class CohortNet {
 public:
  // One initial equivalence class: processes that start in the same state
  // (same algorithm, same initial value).  Member sets must partition
  // [0, n).  The grouping is the caller's promise — the engine checks
  // coverage, not state equality of hypothetical expanded automatons.
  struct InitGroup {
    std::unique_ptr<Automaton<M>> automaton;
    std::vector<ProcId> members;
  };

  // NOTE: the engine aliases `delays` for its whole lifetime — the model
  // is shared, immutable and typically outlives whole sweeps, so the net
  // does not take ownership.  The rvalue overload below rejects binding a
  // temporary (which would dangle on the first delay probe) at compile
  // time; construct the model in an outer scope instead.
  CohortNet(std::vector<InitGroup> groups, const DelayModel& delays,
            CrashPlan crashes, CohortOptions opt = {})
      : delays_(delays), crashes_(std::move(crashes)), opt_(opt) {
    ANON_CHECK(!groups.empty());
    for (const InitGroup& g : groups) n_ += g.members.size();
    ANON_CHECK(n_ > 0);
    cohort_of_.assign(n_, kNoCohort);
    decision_round_.assign(n_, kNoRound);
    cohorts_.reserve(groups.size());
    for (InitGroup& g : groups) {
      ANON_CHECK(!g.members.empty());
      auto c = std::make_unique<Cohort>();
      c->rep = std::make_unique<GirafProcess<M>>(std::move(g.automaton));
      c->members = std::move(g.members);
      std::sort(c->members.begin(), c->members.end());
      for (ProcId p : c->members) {
        ANON_CHECK_MSG(p < n_ && cohort_of_[p] == kNoCohort,
                       "InitGroup members must partition [0, n)");
        cohort_of_[p] = 0;  // provisional; reindex() assigns real indices
        if (!crashes_.ever_crashes(p)) ++c->correct_members;
      }
      cohorts_.push_back(std::move(c));
    }
    sort_and_reindex();
    stats_.cohorts = stats_.max_cohorts = cohorts_.size();
    // Crash events, in firing order (ties broken by process id for
    // deterministic death bookkeeping).
    for (ProcId p = 0; p < n_; ++p)
      if (Round c = crashes_.crash_round(p); c != kNeverCrashes)
        crash_events_.emplace_back(c, p);
    std::sort(crash_events_.begin(), crash_events_.end());
    // Metric fast path: with no crashes and no halt policy nobody ever
    // leaves the alive∩non-halted set, so broadcast deliveries are a
    // closed-form count and entries need no sender snapshots.
    needs_snapshots_ = crashes_.crash_count() > 0 ||
                       opt_.halt_policy == HaltPolicy::kStopAfterDecide;
  }

  CohortNet(std::vector<InitGroup> groups, const DelayModel&& delays,
            CrashPlan crashes, CohortOptions opt = {}) = delete;

  std::size_t n() const { return n_; }
  Round round() const { return round_; }
  const CohortStats& stats() const { return stats_; }
  std::size_t cohort_count() const { return cohorts_.size(); }

  bool is_correct(ProcId p) const { return !crashes_.ever_crashes(p); }

  std::optional<Value> decision(ProcId p) const {
    ANON_CHECK(p < n_);
    if (cohort_of_[p] == kDead) return dead_decision_.at(p);
    return cohorts_[cohort_of_[p]]->rep->decision();
  }

  Round decision_round(ProcId p) const { return decision_round_[p]; }

  bool all_correct_decided() const {
    for (const auto& c : cohorts_)
      if (c->correct_members > 0 && !c->rep->decision().has_value())
        return false;
    return true;
  }

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t sends() const { return sends_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // Fault-plan metrics, matching LockstepNet's accounting exactly: drops
  // and duplicates per message on the link; `sends` counts attempts.
  std::uint64_t fault_drops() const { return fault_drops_; }
  std::uint64_t fault_dups() const { return fault_dups_; }

  std::size_t inbox_overflow_high_water() const {
    std::size_t hw = 0;
    for (const auto& c : cohorts_)
      hw = std::max(hw, c->rep->inboxes().overflow_high_water());
    return hw;
  }

  std::size_t inbox_overflow_dropped() const {
    std::size_t dropped = 0;
    for (const auto& c : cohorts_)
      dropped += c->rep->inboxes().overflow_dropped();
    return dropped;
  }

  // The representative of p's current equivalence class (introspection).
  const GirafProcess<M>& representative(ProcId p) const {
    ANON_CHECK(p < n_ && cohort_of_[p] != kDead);
    return *cohorts_[cohort_of_[p]]->rep;
  }

  // Engine loop — identical phase order to LockstepNet::run, with an extra
  // (invisible to `stop`) merge pass after deliveries.
  template <typename StopFn>
  RunResult run(StopFn stop) {
    if (round_ == 0) bootstrap();
    while (round_ < opt_.max_rounds) {
      deliver_due(round_);
      if (opt_.merge_cohorts) merge_converged();
      if (stop(*this)) return {round_, true};
      advance_round();
      note_decisions();
    }
    return {round_, false};
  }

  RunResult run_until_all_correct_decided() {
    return run([](const CohortNet& net) { return net.all_correct_decided(); });
  }

  RunResult run_rounds(Round rounds) {
    const Round target = round_ + rounds;
    return run([target](const CohortNet& net) { return net.round() >= target; });
  }

 private:
  static constexpr std::uint32_t kNoCohort =
      std::numeric_limits<std::uint32_t>::max() - 1;
  static constexpr std::uint32_t kDead =
      std::numeric_limits<std::uint32_t>::max();

  struct Cohort {
    std::unique_ptr<GirafProcess<M>> rep;
    std::vector<ProcId> members;  // sorted ascending, all alive
    std::size_t correct_members = 0;
    bool halted = false;
    bool decided_noted = false;  // members' decision_round_ recorded
  };

  // One calendar entry.  A broadcast entry stands for `copies` identical
  // per-link sends to every other process; a unicast entry is one link
  // (per-link delays, crash audiences and relays).
  struct Pending {
    SharedBatch<M> payload;
    Round msg_round = 0;
    std::uint32_t copies = 1;
    ProcId receiver = 0;  // unicast only
    bool broadcast = false;
    // Sender-class snapshot for the delivery-count fallback; null when the
    // closed-form count applies (no crashes, no halt policy).
    std::shared_ptr<const std::vector<ProcId>> senders;
  };

  void bootstrap() {
    decision_round_.assign(n_, kNoRound);
    interner_.round_reset();
    wave(1);
    round_ = 1;
  }

  void advance_round() {
    const Round next = round_ + 1;
    interner_.round_reset();
    wave(next);
    round_ = next;
  }

  // End-of-round wave k: one representative compute per class, one
  // broadcast per class (uniform rounds) or per link (asymmetric rounds),
  // and death bookkeeping for members whose crash round is k.
  void wave(Round k) {
    // Members crashing at k, grouped by class.
    std::map<std::uint32_t, std::vector<ProcId>> crashing;
    while (next_crash_ < crash_events_.size() &&
           crash_events_[next_crash_].first == k) {
      const ProcId p = crash_events_[next_crash_].second;
      ++next_crash_;
      ANON_CHECK(cohort_of_[p] != kDead && cohort_of_[p] != kNoCohort);
      crashing[cohort_of_[p]].push_back(p);
    }

    // An active fault plan makes every round link-asymmetric; forcing the
    // per-link branch routes faults through the split machinery.
    const std::optional<Round> ud =
        (opt_.faults != nullptr && opt_.faults->active())
            ? std::nullopt
            : delays_.uniform_delay(k);
    bool structural = false;
    for (std::uint32_t ci = 0; ci < cohorts_.size(); ++ci) {
      Cohort& c = *cohorts_[ci];
      auto itc = crashing.find(ci);
      const std::vector<ProcId>* dying =
          itc == crashing.end() ? nullptr : &itc->second;
      if (c.halted) {
        // A halted process never executes an end-of-round — not even its
        // crash-round one (no final broadcast); its crash only removes it
        // from the alive set.
        if (dying != nullptr) {
          for (ProcId p : *dying) finalize_death(c, p, k);
          remove_dead_members(c);
          structural = true;
        }
        continue;
      }
      step_eor(c, k, ud, dying);
      if (dying != nullptr) structural = true;
    }
    if (structural) purge_sort_reindex();
  }

  void step_eor(Cohort& c, Round k, const std::optional<Round>& ud,
                const std::vector<ProcId>* dying) {
    auto out = c.rep->end_of_round();
    ANON_CHECK(out.round == k);
    if (opt_.halt_policy == HaltPolicy::kStopAfterDecide &&
        c.rep->decision().has_value())
      c.halted = true;

    std::size_t batch_bytes = 0;
    for (const M& m : out.batch) batch_bytes += MessageSizeOf<M>::size(m);
    const SharedBatch<M> payload = interner_.intern(out.batch);
    const std::uint64_t msg_count = payload->size();

    const std::size_t dying_count = dying ? dying->size() : 0;
    const std::size_t survivors = c.members.size() - dying_count;

    if (survivors > 0) {
      if (ud.has_value()) {
        // One interned broadcast for the whole class: `survivors` senders,
        // each reaching the other n-1 processes with the same delay.
        sends_ += static_cast<std::uint64_t>(survivors) * (n_ - 1) * msg_count;
        bytes_sent_ +=
            static_cast<std::uint64_t>(survivors) * (n_ - 1) * batch_bytes;
        Pending e;
        e.payload = payload;
        e.msg_round = k;
        e.copies = static_cast<std::uint32_t>(survivors);
        e.broadcast = true;
        if (needs_snapshots_) {
          if (dying_count == 0) {
            e.senders = std::make_shared<const std::vector<ProcId>>(c.members);
          } else {
            std::vector<ProcId> alive;
            alive.reserve(survivors);
            for (ProcId p : c.members)
              if (std::find(dying->begin(), dying->end(), p) == dying->end())
                alive.push_back(p);
            e.senders =
                std::make_shared<const std::vector<ProcId>>(std::move(alive));
          }
        }
        calendar_.schedule(k + *ud, std::move(e));
      } else {
        // Asymmetric round: per-link scheduling (the expanded engine's
        // cost, paid only while the adversary actually differentiates).
        for (ProcId p : c.members) {
          if (dying != nullptr &&
              std::find(dying->begin(), dying->end(), p) != dying->end())
            continue;
          for (ProcId q = 0; q < n_; ++q) {
            if (q == p) continue;
            Round d = delays_.delay(k, p, q);
            sends_ += msg_count;
            bytes_sent_ += batch_bytes;
            bool dup = false;
            Round dup_delay = 1;
            if (opt_.faults != nullptr && opt_.faults->active()) {
              const LinkFate f = opt_.faults->fate(k, p, q);
              if (!f.deliver) {
                fault_drops_ += msg_count;
                continue;
              }
              d += f.extra_delay;
              if (f.duplicate) {
                fault_dups_ += msg_count;
                dup = true;
                dup_delay = f.dup_delay;
              }
            }
            Pending e;
            e.payload = payload;
            e.msg_round = k;
            e.receiver = q;
            if (dup) calendar_.schedule(k + d + dup_delay, Pending(e));
            calendar_.schedule(k + d, std::move(e));
          }
        }
      }
    }

    // Crashing members: the final broadcast reaches only the chosen
    // audience (possibly relayed late) — inherently per link.
    if (dying != nullptr) {
      for (ProcId p : *dying) {
        for (ProcId q = 0; q < n_; ++q) {
          if (q == p) continue;
          Round d = ud.has_value() ? *ud : delays_.delay(k, p, q);
          if (!crashes_.in_final_audience(p, q, n_, opt_.seed)) {
            if (!opt_.relay_partial_broadcast) continue;  // lost forever
            d = std::max<Round>(d, 1) + opt_.relay_extra_delay;
          }
          sends_ += msg_count;
          bytes_sent_ += batch_bytes;
          bool dup = false;
          Round dup_delay = 1;
          if (opt_.faults != nullptr && opt_.faults->active()) {
            const LinkFate f = opt_.faults->fate(k, p, q);
            if (!f.deliver) {
              fault_drops_ += msg_count;
              continue;
            }
            d += f.extra_delay;
            if (f.duplicate) {
              fault_dups_ += msg_count;
              dup = true;
              dup_delay = f.dup_delay;
            }
          }
          Pending e;
          e.payload = payload;
          e.msg_round = k;
          e.receiver = q;
          if (dup) calendar_.schedule(k + d + dup_delay, Pending(e));
          calendar_.schedule(k + d, std::move(e));
        }
        finalize_death(c, p, k);
      }
      remove_dead_members(c);
    }
  }

  // Records a dying member's observable state; the class's final compute
  // of round k was its compute, so the representative speaks for it.
  void finalize_death(Cohort& c, ProcId p, Round k) {
    if (c.rep->decision().has_value() && decision_round_[p] == kNoRound)
      decision_round_[p] = k - 1;
    dead_decision_[p] = c.rep->decision();
    cohort_of_[p] = kDead;
  }

  // Drops members already finalized as dead (cohort_of_ == kDead).
  void remove_dead_members(Cohort& c) {
    auto dead = [&](ProcId p) { return cohort_of_[p] == kDead; };
    c.members.erase(std::remove_if(c.members.begin(), c.members.end(), dead),
                    c.members.end());
  }

  void deliver_due(Round r) {
    calendar_.advance_to(r);
    std::vector<Pending> due = calendar_.take_due();
    if (due.empty()) return;

    // A = alive ∩ non-halted processes, for multiplicity-weighted counts.
    std::uint64_t alive_nonhalted = 0;
    for (const auto& c : cohorts_)
      if (!c->halted) alive_nonhalted += c->members.size();

    bool any_unicast = false;
    for (const Pending& e : due) {
      if (!e.broadcast) {
        any_unicast = true;
        continue;
      }
      // Metrics: Σ over alive non-halted receivers q of |S \ {q}|.
      std::uint64_t in_set = e.copies;
      if (needs_snapshots_) {
        in_set = 0;
        for (ProcId p : *e.senders)
          if (cohort_of_[p] != kDead && !cohorts_[cohort_of_[p]]->halted)
            ++in_set;
      }
      deliveries_ +=
          e.payload->size() * (alive_nonhalted * e.copies - in_set);
      // State: one shared-payload receive per class.  The sender class
      // receives it too — for members that ARE the sender this merely
      // re-adds their own round message (a set no-op), exactly as peers'
      // identical broadcasts would.
      for (auto& c : cohorts_)
        if (!c->halted) c->rep->receive(e.payload, e.msg_round);
    }
    if (any_unicast) deliver_unicasts(due, r);
  }

  // Per-link deliveries: count metrics per entry, then partition each
  // affected class by the SET of (msg_round, payload) pairs its members
  // received — the exact condition under which members stay equivalent.
  void deliver_unicasts(const std::vector<Pending>& due, Round /*r*/) {
    std::unordered_map<ProcId, std::vector<const Pending*>> by_receiver;
    for (const Pending& e : due) {
      if (e.broadcast) continue;
      const std::uint32_t ci = cohort_of_[e.receiver];
      if (ci == kDead || cohorts_[ci]->halted) continue;  // dropped silently
      deliveries_ += e.payload->size();
      by_receiver[e.receiver].push_back(&e);
    }
    if (by_receiver.empty()) return;

    // (msg_round, payload) identifies content: payloads are interned per
    // (content, engine round), so pointer equality is content equality.
    using Sig = std::vector<std::pair<Round, SharedBatch<M>>>;
    auto sig_less = [](const typename Sig::value_type& x,
                       const typename Sig::value_type& y) {
      if (x.first != y.first) return x.first < y.first;
      return x.second.get() < y.second.get();
    };
    auto sig_of = [&](ProcId p) {
      Sig s;
      auto it = by_receiver.find(p);
      if (it != by_receiver.end()) {
        s.reserve(it->second.size());
        for (const Pending* e : it->second)
          s.emplace_back(e->msg_round, e->payload);
        std::sort(s.begin(), s.end(), sig_less);
        s.erase(std::unique(s.begin(), s.end()), s.end());
      }
      return s;
    };

    bool structural = false;
    const std::size_t existing = cohorts_.size();
    for (std::size_t ci = 0; ci < existing; ++ci) {
      Cohort& c = *cohorts_[ci];
      if (c.halted) continue;
      // Partition members by signature, preserving member order so the
      // class layout (and hence everything downstream) is deterministic.
      std::map<Sig, std::vector<ProcId>> classes;
      bool any = false;
      for (ProcId p : c.members) {
        Sig s = sig_of(p);
        if (!s.empty()) any = true;
        classes[std::move(s)].push_back(p);
      }
      if (!any) continue;  // no unicast touched this class

      if (classes.size() == 1) {
        deliver_sig(c, classes.begin()->first);
        continue;
      }

      // Split: the subclass containing the class's first member keeps the
      // representative; the others get clones.
      structural = true;
      stats_.splits += classes.size() - 1;
      const ProcId anchor = c.members.front();
      std::vector<ProcId> anchor_members;
      const Sig* anchor_sig = nullptr;
      for (auto& [sig, members] : classes) {
        if (std::binary_search(members.begin(), members.end(), anchor)) {
          anchor_sig = &sig;
          anchor_members = std::move(members);
          continue;
        }
        auto split = std::make_unique<Cohort>();
        split->rep = c.rep->clone();
        ++stats_.clones;
        split->members = members;
        // halted stays false: halted cohorts never reach the split path
        // (deliveries to them are dropped above).
        split->decided_noted = c.decided_noted;
        for (ProcId p : split->members)
          if (!crashes_.ever_crashes(p)) ++split->correct_members;
        deliver_sig(*split, sig);
        cohorts_.push_back(std::move(split));
      }
      ANON_CHECK(anchor_sig != nullptr);
      deliver_sig(c, *anchor_sig);
      c.members = std::move(anchor_members);
      c.correct_members = 0;
      for (ProcId p : c.members)
        if (!crashes_.ever_crashes(p)) ++c.correct_members;
    }
    if (structural) purge_sort_reindex();
  }

  void deliver_sig(Cohort& c,
                   const std::vector<std::pair<Round, SharedBatch<M>>>& sig) {
    for (const auto& [msg_round, batch] : sig)
      c.rep->receive(batch, msg_round);
  }

  // Merge pass: bucket classes by digest, confirm exact equality, absorb.
  void merge_converged() {
    if (cohorts_.size() <= 1) return;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
    buckets.reserve(cohorts_.size());
    for (std::size_t i = 0; i < cohorts_.size(); ++i) {
      std::uint64_t h = cohorts_[i]->rep->state_digest();
      h = detail::mix_digest(h, cohorts_[i]->halted ? 1 : 0);
      buckets[h].push_back(i);
    }
    if (buckets.size() == cohorts_.size()) return;

    bool structural = false;
    std::vector<char> absorbed(cohorts_.size(), 0);
    for (auto& [h, idxs] : buckets) {
      if (idxs.size() < 2) continue;
      for (std::size_t a = 0; a < idxs.size(); ++a) {
        if (absorbed[idxs[a]]) continue;
        Cohort& winner = *cohorts_[idxs[a]];
        for (std::size_t b = a + 1; b < idxs.size(); ++b) {
          if (absorbed[idxs[b]]) continue;
          Cohort& loser = *cohorts_[idxs[b]];
          if (winner.halted != loser.halted ||
              !winner.rep->same_state(*loser.rep))
            continue;
          // Absorb: merge the sorted member lists; decided bookkeeping is
          // identical by state equality (equal decision ⇒ both already
          // noted or both undecided).
          std::vector<ProcId> merged;
          merged.reserve(winner.members.size() + loser.members.size());
          std::merge(winner.members.begin(), winner.members.end(),
                     loser.members.begin(), loser.members.end(),
                     std::back_inserter(merged));
          winner.members = std::move(merged);
          winner.correct_members += loser.correct_members;
          loser.members.clear();
          absorbed[idxs[b]] = 1;
          ++stats_.merges;
          structural = true;
        }
      }
    }
    if (structural) purge_sort_reindex();
  }

  void note_decisions() {
    for (auto& c : cohorts_) {
      if (c->decided_noted || !c->rep->decision().has_value()) continue;
      for (ProcId p : c->members)
        if (decision_round_[p] == kNoRound) decision_round_[p] = round_ - 1;
      c->decided_noted = true;
    }
  }

  // Drops emptied classes, restores the smallest-member ordering and
  // rewrites the process→class index.  O(C log C + n); only runs on
  // structural changes (splits, merges, deaths) — never on the steady-state
  // fast path.
  void purge_sort_reindex() {
    cohorts_.erase(std::remove_if(cohorts_.begin(), cohorts_.end(),
                                  [](const std::unique_ptr<Cohort>& c) {
                                    return c->members.empty();
                                  }),
                   cohorts_.end());
    std::sort(cohorts_.begin(), cohorts_.end(),
              [](const std::unique_ptr<Cohort>& a,
                 const std::unique_ptr<Cohort>& b) {
                return a->members.front() < b->members.front();
              });
    for (std::uint32_t i = 0; i < cohorts_.size(); ++i)
      for (ProcId p : cohorts_[i]->members) cohort_of_[p] = i;
    stats_.cohorts = cohorts_.size();
    stats_.max_cohorts = std::max(stats_.max_cohorts, cohorts_.size());
  }

  std::size_t n_ = 0;
  const DelayModel& delays_;
  CrashPlan crashes_;
  CohortOptions opt_;
  Round round_ = 0;
  std::vector<std::unique_ptr<Cohort>> cohorts_;  // sorted by members.front()
  std::vector<std::uint32_t> cohort_of_;          // per process; kDead = gone
  std::vector<Round> decision_round_;
  std::map<ProcId, std::optional<Value>> dead_decision_;
  std::vector<std::pair<Round, ProcId>> crash_events_;
  std::size_t next_crash_ = 0;
  RoundCalendar<Pending> calendar_;
  BatchInterner<M> interner_;
  bool needs_snapshots_ = false;
  CohortStats stats_;
  std::uint64_t deliveries_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_dups_ = 0;

  void sort_and_reindex() { purge_sort_reindex(); }
};

// The standard cohort construction for consensus workloads: processes
// proposing the same value start in identical automaton state, so they
// form one initial equivalence class.  `make(v)` builds the class
// representative for proposal v.
template <GirafMessage M, typename MakeAutomaton>
std::vector<typename CohortNet<M>::InitGroup> groups_by_initial_value(
    const std::vector<Value>& initial, MakeAutomaton make) {
  std::map<Value, std::vector<ProcId>> by_value;
  for (ProcId p = 0; p < initial.size(); ++p) by_value[initial[p]].push_back(p);
  std::vector<typename CohortNet<M>::InitGroup> groups;
  groups.reserve(by_value.size());
  for (auto& [v, members] : by_value)
    groups.push_back({make(v), std::move(members)});
  return groups;
}

}  // namespace anon
