#include "net/lockstep.hpp"

// LockstepNet is header-only (templated on the message type); this
// translation unit pins the vtable-free build and hosts nothing else.

namespace anon {
static_assert(sizeof(LockstepOptions) > 0);
}  // namespace anon
