// Consensus family runner: Algorithms 2/3 on the expanded or cohort
// backend.  The env-schedule decision path is exactly the pre-redesign
// `run_consensus_sweep` pipeline (the byte-identity regression pins this);
// adversarial schedules and the convergence/state-growth probes drive
// LockstepNet directly and report through the same summarizer.
#include <memory>

#include "algo/es_consensus.hpp"
#include "algo/ess_consensus.hpp"
#include "algo/runner.hpp"
#include "common/history.hpp"
#include "env/generate.hpp"
#include "scenario/runners.hpp"

namespace anon::scenario_runners {

namespace {

ConsensusConfig config_from_spec(const ScenarioSpec& spec, std::uint64_t seed) {
  const ConsensusSpecSection& c = spec.consensus;
  ConsensusConfig cfg;
  cfg.env = spec.env_params(seed);
  cfg.initial = spec.initial_values();
  cfg.crashes = spec.crash_plan(seed);
  cfg.net.seed = seed;
  cfg.net.max_rounds = c.max_rounds;
  cfg.net.record_trace = c.record_trace;
  cfg.net.record_deliveries = c.record_deliveries;
  cfg.net.engine_threads = c.engine_threads;
  cfg.validate_env = c.validate_env;
  cfg.backend = c.backend;
  cfg.faults = spec.faults;
  cfg.watchdog_rounds = c.watchdog_rounds;
  return cfg;
}

std::unique_ptr<DelayModel> adversarial_model(const ScenarioSpec& spec,
                                              std::uint64_t seed) {
  switch (spec.consensus.schedule) {
    case ConsensusSpecSection::Schedule::kBivalentMs:
      return std::make_unique<BivalentMsModel>(spec.n);
    case ConsensusSpecSection::Schedule::kBivalentUntilGst:
      return std::make_unique<BivalentUntilGstModel>(spec.n,
                                                     spec.stabilization);
    case ConsensusSpecSection::Schedule::kHostileMs:
      return std::make_unique<HostileMsModel>(spec.n, seed);
    case ConsensusSpecSection::Schedule::kEnv:
      break;
  }
  return nullptr;
}

// Adversarial schedule, decision probe (E8.a/b, E1.b): Algorithm 2 under a
// hand-built delay model, plus the two-camp liveness check.
ConsensusCellOutcome run_adversarial_cell(const ScenarioSpec& spec,
                                          std::uint64_t seed) {
  const ConsensusSpecSection& c = spec.consensus;
  ConsensusConfig cfg = config_from_spec(spec, seed);
  const std::unique_ptr<DelayModel> model = adversarial_model(spec, seed);
  cfg.delays = model.get();

  ConsensusCellOutcome cell;
  if (c.schedule == ConsensusSpecSection::Schedule::kBivalentMs) {
    // Camp integrity needs automaton state, so drive the net here.
    std::vector<std::unique_ptr<Automaton<EsMessage>>> autos;
    for (const Value& v : cfg.initial)
      autos.push_back(std::make_unique<EsConsensus>(v));
    LockstepNet<EsMessage> net(std::move(autos), *model, cfg.crashes, cfg.net);
    const RunResult run = net.run_until_all_correct_decided();
    cell.report = summarize_consensus_run(net, cfg.initial, cfg.crashes, run,
                                          cfg.validate_env);
    bool camps =
        dynamic_cast<const EsConsensus&>(net.process(0).automaton()).val() ==
        Value(1);
    for (ProcId p = 1; p < spec.n; ++p)
      if (!(dynamic_cast<const EsConsensus&>(net.process(p).automaton())
                .val() == Value(2)))
        camps = false;
    cell.camps_intact = camps ? 1 : 0;
  } else {
    cell.report = run_consensus(ConsensusAlgo::kEs, cfg);
  }
  cell.env_checked = cfg.validate_env;
  return cell;
}

// Leader-convergence probe (E3): rounds after stabilization until the
// self-considered-leader set stabilizes on the eventual source's history.
ConsensusCellOutcome run_convergence_cell(const ScenarioSpec& spec,
                                          std::uint64_t seed) {
  const ConsensusSpecSection& c = spec.consensus;
  HistoryArena arena;
  EssConsensus::Options no_decide;
  no_decide.decide = false;
  no_decide.gc_counters = c.gc_counters;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (const Value& v : spec.initial_values())
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, no_decide));
  const CrashPlan crashes = spec.crash_plan(seed);
  EnvDelayModel delays(spec.env_params(seed), crashes);
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.seed = seed;
  opt.max_rounds = c.horizon;
  opt.record_trace = c.record_trace;
  opt.record_deliveries = c.record_deliveries;
  opt.engine_threads = c.engine_threads;
  LockstepNet<EssMessage> net(std::move(autos), delays, crashes, opt);

  Round last_bad = 0;
  const RunResult run = net.run([&](const LockstepNet<EssMessage>& nn) {
    if (nn.round() < 2) return false;
    const auto& s =
        dynamic_cast<const EssConsensus&>(nn.process(src).automaton());
    bool good = s.considers_self_leader();
    for (ProcId p = 0; p < nn.n(); ++p) {
      const auto& a =
          dynamic_cast<const EssConsensus&>(nn.process(p).automaton());
      if (a.considers_self_leader() && !(a.history() == s.history()))
        good = false;
    }
    if (!good) last_bad = nn.round();
    return false;
  });
  ConsensusCellOutcome cell;
  cell.report = summarize_consensus_run(net, spec.initial_values(), crashes,
                                        run, c.validate_env);
  cell.env_checked = c.validate_env;
  cell.convergence_round = last_bad + 1;  // first round of the converged suffix
  return cell;
}

// State-growth probe (E10's tracked workload): a no-decide ESS run to a
// fixed horizon; reports process 0's wire footprint at the horizon.
ConsensusCellOutcome run_state_growth_cell(const ScenarioSpec& spec,
                                           std::uint64_t seed) {
  const ConsensusSpecSection& c = spec.consensus;
  HistoryArena arena;
  EssConsensus::Options o;
  o.decide = false;
  o.gc_counters = c.gc_counters;
  std::vector<std::unique_ptr<Automaton<EssMessage>>> autos;
  for (const Value& v : spec.initial_values())
    autos.push_back(std::make_unique<EssConsensus>(v, &arena, o));
  const CrashPlan crashes = spec.crash_plan(seed);
  EnvDelayModel delays(spec.env_params(seed), crashes);
  LockstepOptions opt;
  opt.seed = seed;
  opt.max_rounds = c.horizon + 5;
  opt.record_trace = c.record_trace;
  opt.record_deliveries = c.record_deliveries;
  opt.engine_threads = c.engine_threads;
  LockstepNet<EssMessage> net(std::move(autos), delays, crashes, opt);
  const Round target = c.horizon;
  const RunResult run = net.run(
      [&](const LockstepNet<EssMessage>& nn) { return nn.round() >= target; });

  ConsensusCellOutcome cell;
  cell.report = summarize_consensus_run(net, spec.initial_values(), crashes,
                                        run, c.validate_env);
  cell.env_checked = c.validate_env;
  const auto& a = dynamic_cast<const EssConsensus&>(net.process(0).automaton());
  EssMessage m{a.proposed(), a.history(), a.counters()};
  cell.state_bytes = MessageSizeOf<EssMessage>::size(m);
  cell.counter_entries = a.counters().size();
  return cell;
}

}  // namespace

ScenarioReport run_consensus_family(const ScenarioSpec& spec,
                                    const SweepOptions& opt) {
  const ConsensusSpecSection& c = spec.consensus;
  ScenarioReport rep;
  if (c.schedule == ConsensusSpecSection::Schedule::kEnv &&
      c.probe == ConsensusSpecSection::Probe::kDecision) {
    // The pre-redesign pipeline, verbatim: one config per seed through
    // run_consensus_sweep.
    std::vector<ConsensusConfig> grid;
    grid.reserve(spec.seeds.size());
    for (std::uint64_t seed : spec.seeds)
      grid.push_back(config_from_spec(spec, seed));
    auto reports = run_consensus_sweep(c.algo, grid, opt);
    rep.consensus_cells.resize(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      rep.consensus_cells[i].report = std::move(reports[i]);
      rep.consensus_cells[i].env_checked = c.validate_env;
    }
    return rep;
  }

  rep.consensus_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> ConsensusCellOutcome {
        const std::uint64_t seed = spec.seeds[i];
        switch (c.probe) {
          case ConsensusSpecSection::Probe::kLeaderConvergence:
            return run_convergence_cell(spec, seed);
          case ConsensusSpecSection::Probe::kStateGrowth:
            return run_state_growth_cell(spec, seed);
          case ConsensusSpecSection::Probe::kDecision:
            break;
        }
        return run_adversarial_cell(spec, seed);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
