// The repo's one JSON core: an ordered document value (objects preserve
// insertion order so encoded specs and reports diff cleanly), a strict
// recursive-descent parser with line/column diagnostics, and a canonical
// serializer.  Everything JSON in the tree flows through this type —
// ScenarioSpec encode/decode, ScenarioReport emission, and the BENCH_E*.json
// trajectory files (sim/bench_json is a thin shim over it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace anon {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue boolean(bool b);
  static JsonValue uint(std::uint64_t v);
  static JsonValue integer(std::int64_t v);
  static JsonValue number(double v);  // non-finite renders as null
  static JsonValue str(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  // kUint, kInt and kDouble are all "number" to readers.
  bool is_number() const {
    return kind_ == Kind::kUint || kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  // An integer representable as uint64 (kUint, or a non-negative kInt).
  bool is_uint() const;
  // An integer representable as int64 (kInt, or a small-enough kUint).
  bool is_int() const;

  // Typed reads; the caller must have checked the kind (ANON_CHECKed).
  bool as_bool() const;
  std::uint64_t as_uint() const;
  std::int64_t as_int() const;
  double as_double() const;  // any number kind
  const std::string& as_string() const;

  // Object access (insertion-ordered).  set() replaces in place on key
  // collision, keeping the original position.
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& entries() const;

  // Array access.
  JsonValue& push(JsonValue v);
  const std::vector<JsonValue>& items() const;

  std::size_t size() const;  // members (object) / elements (array)

  // Canonical serialization: two-space indent, members one per line, keys
  // in insertion order, shortest round-trip double rendering.  No trailing
  // newline (file writers append one).
  std::string dump() const;
  // Single-line rendering (diagnostics).
  std::string dump_compact() const;

  // Strict JSON (no comments, no trailing commas); duplicate object keys
  // are an error.  Integer literals parse as kUint/kInt, everything else
  // numeric as kDouble.  (Defined below — JsonParseResult holds a
  // JsonValue, which must be complete first.)
  static struct JsonParseResult parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  void dump_to(std::string& out, int indent, bool pretty) const;

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  std::uint64_t u_ = 0;
  std::int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

struct JsonParseResult {
  std::optional<JsonValue> value;
  std::string error;     // empty on success
  std::size_t line = 0;  // 1-based position of the error
  std::size_t column = 0;
};

// JSON string quoting (shared with diagnostics and the bench shim).
std::string json_quote(const std::string& s);

// Shortest round-trip rendering of a finite double ("0.25", not
// "0.25000000000000001"); integral values render without a decimal point.
std::string json_render_double(double v);

}  // namespace anon
