// transport "live": runs a ScenarioSpec cell on the anonsvc stack instead
// of a simulator — one loopback LiveCluster per seed, real sockets, one
// event-loop thread per node, blocking SvcClients as the workload.
//
// The report contract is the sim one (same tagged cells, same JSON keys);
// what changes is *how* the numbers arise.  Round counts, frame totals and
// latencies are wall-clock artifacts here, so live reports are not golden-
// pinned — only the protocol outcomes (agreement, validity, checker-clean
// histories, quorum completion) are asserted by tests and CI.  Seeds run
// sequentially: each cell owns real ports and threads, and overlapping
// clusters would just contend for the loopback.
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "scenario/runners.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "weakset/weak_set.hpp"

namespace anon::scenario_runners {

namespace {

LiveClusterOptions cluster_options(const ScenarioSpec& spec,
                                   std::uint64_t seed) {
  LiveClusterOptions opt;
  opt.n = spec.n;
  opt.seed = seed;
  opt.socket = spec.live.socket == LiveSpecSection::Socket::kTcp
                   ? SvcSocketKind::kTcp
                   : SvcSocketKind::kUdp;
  opt.period = std::chrono::milliseconds(spec.live.period_ms);
  opt.max_jitter = std::chrono::milliseconds(spec.live.jitter_ms);
  opt.loss = spec.live.loss;
  opt.watchdog_rounds = spec.live.watchdog_rounds;
  // The sim's GST knob becomes the pacemaker's streak length; 0 keeps the
  // node default (the spec means "stabilization immediately", which a
  // wall-clock mesh cannot promise — 5 timely rounds is the honest floor).
  if (spec.stabilization != 0) opt.stabilize_after = spec.stabilization;
  if (spec.family == ScenarioFamily::kConsensus) {
    opt.max_rounds = spec.consensus.max_rounds;
    opt.proposals = spec.initial_values();
  }
  if (spec.family == ScenarioFamily::kConsensus ||
      spec.family == ScenarioFamily::kWeakset) {
    const CrashPlan plan = spec.crash_plan(seed);
    opt.crash_at.resize(spec.n, 0);
    for (std::size_t p = 0; p < spec.n; ++p)
      if (plan.crash_round(p) != kNeverCrashes)
        opt.crash_at[p] = plan.crash_round(p);
  }
  return opt;
}

std::chrono::milliseconds op_timeout(const ScenarioSpec& spec) {
  return std::chrono::milliseconds(spec.live.op_timeout_ms);
}

// Logical stamps for the live op histories: a shared ticket counter drawn
// at the real start/end instants, so the checkers' real-time-order premise
// (start < end, non-overlapping ops ordered) holds by construction.
std::atomic<std::uint64_t> g_stamp{1};

ConsensusCellOutcome run_consensus_cell(const ScenarioSpec& spec,
                                        std::uint64_t seed) {
  LiveCluster cluster(cluster_options(spec, seed));
  if (!cluster.start())
    throw std::runtime_error("live cluster failed to start: " +
                             cluster.error());
  const CrashPlan plan = spec.crash_plan(seed);
  const std::vector<Value> proposals = spec.initial_values();

  ConsensusCellOutcome cell;
  ConsensusReport& rep = cell.report;
  rep.all_correct_decided = true;
  bool any_timeout = false;
  std::vector<Value> decisions;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    if (plan.crash_round(i) != kNeverCrashes) continue;  // ask correct only
    SvcClient client;
    if (!client.connect(cluster.client_port(i))) {
      rep.all_correct_decided = false;
      continue;
    }
    const auto r = client.decision(op_timeout(spec));
    if (r.ok() && r.values.size() == 1) {
      decisions.push_back(r.values[0]);
    } else {
      rep.all_correct_decided = false;
      if (r.transport_ok && r.status == SvcStatus::kTimeout)
        any_timeout = true;  // the node's watchdog fired
    }
  }
  cluster.stop_all();
  cluster.join();

  for (const Value& d : decisions) {
    if (!(d == decisions[0])) rep.agreement = false;
    bool proposed = false;
    for (const Value& p : proposals) proposed |= p == d;
    if (!proposed) rep.validity = false;
  }
  if (!decisions.empty()) rep.value = decisions[0];
  rep.undecided = any_timeout && !rep.all_correct_decided;
  for (std::size_t i = 0; i < cluster.n(); ++i) {
    const LiveNode& node = cluster.node(i);
    rep.rounds_executed = std::max(rep.rounds_executed,
                                   node.rounds_executed());
    rep.sends += node.frames_sent();
    rep.bytes_sent += node.bytes_sent();
    rep.deliveries += node.frames_received();
    rep.fault_drops += node.fault_drops();
    if (node.decision().has_value()) {
      if (rep.first_decision_round == kNoRound ||
          node.decision_round() < rep.first_decision_round)
        rep.first_decision_round = node.decision_round();
      if (plan.crash_round(i) == kNeverCrashes &&
          (rep.last_decision_round == kNoRound ||
           node.decision_round() > rep.last_decision_round))
        rep.last_decision_round = node.decision_round();
    }
  }
  rep.hit_round_limit =
      !rep.all_correct_decided && rep.rounds_executed >= spec.consensus.max_rounds;
  return cell;
}

WeaksetCellOutcome run_weakset_cell(const ScenarioSpec& spec,
                                    std::uint64_t seed) {
  LiveCluster cluster(cluster_options(spec, seed));
  if (!cluster.start())
    throw std::runtime_error("live cluster failed to start: " +
                             cluster.error());

  // gen_ops adds, dealt round-robin to live.clients concurrent clients
  // (client c talks to node c mod n).  Each client finishes with a get, so
  // the history exercises cross-node visibility; add values are distinct
  // across the cell, as in the generated sim workload.
  const std::size_t clients = spec.live.clients;
  const std::size_t ops = spec.weakset.gen_ops;
  std::vector<std::vector<WsOpRecord>> histories(clients);
  std::vector<std::uint8_t> failed(clients, 0);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      SvcClient client;
      const std::size_t node = c % cluster.n();
      if (!client.connect(cluster.client_port(node))) {
        failed[c] = 1;
        return;
      }
      for (std::size_t k = c; k < ops; k += clients) {
        WsOpRecord rec;
        rec.kind = WsOpRecord::Kind::kAdd;
        rec.value = Value(static_cast<std::int64_t>(100 + k));
        rec.process = node;
        rec.start = g_stamp.fetch_add(1, std::memory_order_relaxed);
        const auto r = client.ws_add(100 + static_cast<std::int64_t>(k),
                                     op_timeout(spec));
        rec.end = g_stamp.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok()) {
          failed[c] = 1;
          return;  // an unfinished add must not enter the history
        }
        histories[c].push_back(rec);
      }
      WsOpRecord get;
      get.kind = WsOpRecord::Kind::kGet;
      get.process = node;
      get.start = g_stamp.fetch_add(1, std::memory_order_relaxed);
      const auto r = client.ws_get(op_timeout(spec));
      get.end = g_stamp.fetch_add(1, std::memory_order_relaxed);
      if (!r.ok()) {
        failed[c] = 1;
        return;
      }
      for (const Value& v : r.values) get.result.insert(v);
      histories[c].push_back(get);
    });
  }
  for (std::thread& t : workers) t.join();
  cluster.stop_all();
  cluster.join();

  WeaksetCellOutcome cell;
  cell.adds = ops;
  std::vector<WsOpRecord> records;
  for (std::size_t c = 0; c < clients; ++c) {
    if (failed[c]) cell.all_adds_completed = false;
    for (const WsOpRecord& r : histories[c]) {
      if (r.kind == WsOpRecord::Kind::kAdd)
        cell.add_latency_total += r.end - r.start;
      records.push_back(r);
    }
  }
  const WsCheckResult check = check_weak_set_spec(records);
  cell.spec_ok = check.ok;
  cell.violation = check.violation;
  for (std::size_t i = 0; i < cluster.n(); ++i)
    cell.rounds = std::max(cell.rounds, cluster.node(i).rounds_executed());
  if (spec.weakset.keep_records) cell.set_records = std::move(records);
  return cell;
}

AbdCellOutcome run_abd_cell(const ScenarioSpec& spec, std::uint64_t seed) {
  LiveClusterOptions copt = cluster_options(spec, seed);
  // The abd family's crash model: the last crash_prefix replicas are down
  // from the start (round 1 = before any service), mirroring the sim cell.
  copt.crash_at.assign(spec.n, 0);
  for (std::size_t k = 0; k < spec.abd.crash_prefix; ++k)
    copt.crash_at[spec.n - 1 - k] = 1;
  LiveCluster cluster(copt);
  if (!cluster.start())
    throw std::runtime_error("live cluster failed to start: " +
                             cluster.error());

  AbdCellOutcome cell;
  SvcClient writer, reader;
  const std::size_t reader_node =
      spec.n > spec.abd.crash_prefix + 1 ? spec.n - spec.abd.crash_prefix - 1
                                         : 0;
  if (writer.connect(cluster.client_port(0)) &&
      reader.connect(cluster.client_port(reader_node))) {
    const auto w = writer.reg_write(spec.abd.write_value, op_timeout(spec));
    if (w.ok()) {
      const auto r = reader.reg_read(op_timeout(spec));
      cell.completed = r.ok() && r.values.size() == 1 &&
                       r.values[0] == Value(spec.abd.write_value);
    }
  }
  cluster.stop_all();
  cluster.join();
  for (std::size_t i = 0; i < cluster.n(); ++i)
    cell.messages += cluster.node(i).frames_sent();
  cell.end_time = 0;  // wall-clock timing lives in the report's timing block
  return cell;
}

}  // namespace

ScenarioReport run_live_family(const ScenarioSpec& spec,
                               const SweepOptions& opt) {
  (void)opt;  // live cells are sequential — real ports, real threads
  ScenarioReport rep;
  for (std::uint64_t seed : spec.seeds) {
    switch (spec.family) {
      case ScenarioFamily::kConsensus:
        rep.consensus_cells.push_back(run_consensus_cell(spec, seed));
        break;
      case ScenarioFamily::kWeakset:
        rep.weakset_cells.push_back(run_weakset_cell(spec, seed));
        break;
      case ScenarioFamily::kAbd:
        rep.abd_cells.push_back(run_abd_cell(spec, seed));
        break;
      default:
        throw std::runtime_error(
            std::string("family ") + to_string(spec.family) +
            " has no live runner (validate_scenario_spec admits consensus, "
            "weakset, abd)");
    }
  }
  return rep;
}

}  // namespace anon::scenario_runners
