// Weakset-shm family runner: the §5 register constructions — Prop 2
// (SWMR registers, known IDs) and Prop 3 (MWMR booleans, finite domain,
// fully anonymous) — under seeded adversarial interleavings, certified by
// the weak-set spec checker (E7).
#include "scenario/runners.hpp"
#include "weakset/ws_from_mwmr.hpp"
#include "weakset/ws_from_swmr.hpp"

namespace anon::scenario_runners {

namespace {

// The E7.a generator: `ops` add/get pairs, adds cycling processes and the
// value domain.
std::vector<ShmWsScriptOp> swmr_script(std::size_t n, std::uint64_t ops,
                                       std::uint64_t domain) {
  std::vector<ShmWsScriptOp> script;
  script.reserve(2 * ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    script.push_back(
        {i * 2, i % n, true, Value(static_cast<std::int64_t>(i % domain))});
    script.push_back({i * 2 + 1, (i + 1) % n, false, Value()});
  }
  return script;
}

// The E7.b generator over `writers` script processes.
std::vector<MwmrWsScriptOp> mwmr_script(std::size_t writers, std::uint64_t ops,
                                        std::uint64_t domain) {
  std::vector<MwmrWsScriptOp> script;
  script.reserve(2 * ops);
  for (std::uint64_t k = 0; k < ops; ++k) {
    script.push_back({k * 2, k % writers, true,
                      Value(static_cast<std::int64_t>(k % domain))});
    script.push_back({k * 2 + 1, (k + 2) % writers, false, Value()});
  }
  return script;
}

ShmCellOutcome run_cell(const ScenarioSpec& spec, std::uint64_t seed) {
  const ShmSpecSection& s = spec.shm;
  std::vector<WsOpRecord> records;
  if (s.construction == ShmSpecSection::Construction::kSwmr) {
    records = run_ws_from_swmr(spec.n, swmr_script(spec.n, s.gen_ops, s.domain),
                               seed);
  } else {
    std::vector<Value> domain;
    domain.reserve(s.domain);
    for (std::uint64_t i = 0; i < s.domain; ++i)
      domain.push_back(Value(static_cast<std::int64_t>(i)));
    records =
        run_ws_from_mwmr(domain, mwmr_script(s.writers, s.gen_ops, s.domain),
                         seed);
  }
  ShmCellOutcome cell;
  auto check = check_weak_set_spec(records);
  cell.spec_ok = check.ok;
  cell.violation = check.violation;
  cell.records = records.size();
  return cell;
}

}  // namespace

ScenarioReport run_shm_family(const ScenarioSpec& spec,
                              const SweepOptions& opt) {
  ScenarioReport rep;
  rep.shm_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> ShmCellOutcome {
        return run_cell(spec, spec.seeds[i]);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
