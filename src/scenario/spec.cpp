#include "scenario/spec.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "env/generate.hpp"

namespace anon {

// ------------------------------------------------------------ enum tables --

namespace {

template <typename E>
struct EnumName {
  E value;
  const char* name;
};

constexpr EnumName<ScenarioFamily> kFamilyNames[] = {
    {ScenarioFamily::kConsensus, "consensus"},
    {ScenarioFamily::kOmega, "omega"},
    {ScenarioFamily::kWeakset, "weakset"},
    {ScenarioFamily::kEmulation, "emulation"},
    {ScenarioFamily::kWeaksetShm, "weakset-shm"},
    {ScenarioFamily::kAbd, "abd"},
};

constexpr EnumName<EnvKind> kEnvKindNames[] = {
    {EnvKind::kMS, "ms"},
    {EnvKind::kES, "es"},
    {EnvKind::kESS, "ess"},
};

constexpr EnumName<TransportKind> kTransportNames[] = {
    {TransportKind::kSim, "sim"},
    {TransportKind::kLive, "live"},
};

constexpr EnumName<LiveSpecSection::Socket> kLiveSocketNames[] = {
    {LiveSpecSection::Socket::kUdp, "udp"},
    {LiveSpecSection::Socket::kTcp, "tcp"},
};

constexpr EnumName<ConsensusAlgo> kAlgoNames[] = {
    {ConsensusAlgo::kEs, "es"},
    {ConsensusAlgo::kEss, "ess"},
};

constexpr EnumName<ConsensusBackend> kBackendNames[] = {
    {ConsensusBackend::kExpanded, "expanded"},
    {ConsensusBackend::kCohort, "cohort"},
};

constexpr EnumName<WeaksetSpecSection::Backend> kWsBackendNames[] = {
    {WeaksetSpecSection::Backend::kExpanded, "expanded"},
    {WeaksetSpecSection::Backend::kCohort, "cohort"},
};

constexpr EnumName<EmulationSpecSection::Backend> kEmuBackendNames[] = {
    {EmulationSpecSection::Backend::kExpanded, "expanded"},
    {EmulationSpecSection::Backend::kCohort, "cohort"},
};

// The emulation probe-seed default: distinct, base 0 — the historical echo
// seeds 0..n-1.  Encoded only when a spec departs from it.
const ValueGenSpec kDefaultProbeValues{ValueGenSpec::Kind::kDistinct, 0, 0, {}};

constexpr EnumName<ConsensusSpecSection::Schedule> kScheduleNames[] = {
    {ConsensusSpecSection::Schedule::kEnv, "env"},
    {ConsensusSpecSection::Schedule::kBivalentMs, "bivalent-ms"},
    {ConsensusSpecSection::Schedule::kBivalentUntilGst, "bivalent-until-gst"},
    {ConsensusSpecSection::Schedule::kHostileMs, "hostile-ms"},
};

constexpr EnumName<ConsensusSpecSection::Probe> kConsensusProbeNames[] = {
    {ConsensusSpecSection::Probe::kDecision, "decision"},
    {ConsensusSpecSection::Probe::kLeaderConvergence, "leader-convergence"},
    {ConsensusSpecSection::Probe::kStateGrowth, "state-growth"},
};

constexpr EnumName<OmegaSpecSection::Probe> kOmegaProbeNames[] = {
    {OmegaSpecSection::Probe::kDecision, "decision"},
    {OmegaSpecSection::Probe::kLeaderConvergence, "leader-convergence"},
};

constexpr EnumName<ValueGenSpec::Kind> kValueGenNames[] = {
    {ValueGenSpec::Kind::kDistinct, "distinct"},
    {ValueGenSpec::Kind::kIdentical, "identical"},
    {ValueGenSpec::Kind::kCycle, "cycle"},
    {ValueGenSpec::Kind::kBivalent, "bivalent"},
    {ValueGenSpec::Kind::kExplicit, "explicit"},
};

constexpr EnumName<CrashGenSpec::Kind> kCrashGenNames[] = {
    {CrashGenSpec::Kind::kNone, "none"},
    {CrashGenSpec::Kind::kExplicit, "explicit"},
    {CrashGenSpec::Kind::kRandom, "random"},
};

constexpr EnumName<WeaksetSpecSection::Mode> kWeaksetModeNames[] = {
    {WeaksetSpecSection::Mode::kSet, "set"},
    {WeaksetSpecSection::Mode::kRegister, "register"},
};

constexpr EnumName<EmulationSpecSection::Inner> kEmuInnerNames[] = {
    {EmulationSpecSection::Inner::kEcho, "echo"},
    {EmulationSpecSection::Inner::kWeakset, "weakset"},
};

constexpr EnumName<EmulationSpecSection::Engine> kEmuEngineNames[] = {
    {EmulationSpecSection::Engine::kInterned, "interned"},
    {EmulationSpecSection::Engine::kRef, "ref"},
};

constexpr EnumName<ShmSpecSection::Construction> kShmNames[] = {
    {ShmSpecSection::Construction::kSwmr, "swmr"},
    {ShmSpecSection::Construction::kMwmr, "mwmr"},
};

template <typename E, std::size_t N>
const char* enum_name(const EnumName<E> (&table)[N], E value) {
  for (const auto& e : table)
    if (e.value == value) return e.name;
  return "?";
}

template <typename E, std::size_t N>
bool enum_from_name(const EnumName<E> (&table)[N], const std::string& name,
                    E* out) {
  for (const auto& e : table) {
    if (name == e.name) {
      *out = e.value;
      return true;
    }
  }
  return false;
}

template <typename E, std::size_t N>
std::string enum_choices(const EnumName<E> (&table)[N]) {
  std::string out;
  for (const auto& e : table) {
    if (!out.empty()) out += " | ";
    out += std::string("\"") + e.name + "\"";
  }
  return out;
}

}  // namespace

const char* to_string(ScenarioFamily f) { return enum_name(kFamilyNames, f); }

const std::vector<ScenarioFamily>& all_scenario_families() {
  static const std::vector<ScenarioFamily> kAll = {
      ScenarioFamily::kConsensus, ScenarioFamily::kOmega,
      ScenarioFamily::kWeakset,   ScenarioFamily::kEmulation,
      ScenarioFamily::kWeaksetShm, ScenarioFamily::kAbd,
  };
  return kAll;
}

// -------------------------------------------------------- materialization --

EnvParams ScenarioSpec::env_params(std::uint64_t seed) const {
  EnvParams env;
  env.kind = env_kind;
  env.n = n;
  env.seed = seed;
  env.stabilization = stabilization;
  env.max_delay = max_delay;
  env.timely_prob = timely_prob;
  return env;
}

std::vector<Value> materialize_values(const ValueGenSpec& g, std::size_t n) {
  switch (g.kind) {
    case ValueGenSpec::Kind::kDistinct: {
      std::vector<Value> out;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(Value(g.base + static_cast<std::int64_t>(i)));
      return out;
    }
    case ValueGenSpec::Kind::kIdentical:
      return std::vector<Value>(n, Value(g.base));
    case ValueGenSpec::Kind::kCycle: {
      std::vector<Value> out;
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(Value(g.base + static_cast<std::int64_t>(i % g.period)));
      return out;
    }
    case ValueGenSpec::Kind::kBivalent:
      return BivalentMsModel::initial_values(n);
    case ValueGenSpec::Kind::kExplicit: {
      std::vector<Value> out;
      out.reserve(g.values.size());
      for (std::int64_t v : g.values) out.push_back(Value(v));
      return out;
    }
  }
  return {};
}

std::vector<Value> ScenarioSpec::initial_values() const {
  return materialize_values(initial, n);
}

CrashPlan ScenarioSpec::crash_plan(std::uint64_t seed) const {
  switch (crashes.kind) {
    case CrashGenSpec::Kind::kNone:
      return CrashPlan{};
    case CrashGenSpec::Kind::kExplicit: {
      CrashPlan plan;
      for (const auto& e : crashes.entries) plan.crash_at(e.process, e.round);
      return plan;
    }
    case CrashGenSpec::Kind::kRandom:
      return random_crashes(n, crashes.count, crashes.horizon,
                            seed + crashes.seed_offset);
  }
  return CrashPlan{};
}

// ------------------------------------------------------------------ encode --

namespace {

JsonValue encode_initial(const ValueGenSpec& g) {
  JsonValue v = JsonValue::object();
  v.set("kind", JsonValue::str(enum_name(kValueGenNames, g.kind)));
  switch (g.kind) {
    case ValueGenSpec::Kind::kDistinct:
    case ValueGenSpec::Kind::kIdentical:
      v.set("base", JsonValue::integer(g.base));
      break;
    case ValueGenSpec::Kind::kCycle:
      v.set("base", JsonValue::integer(g.base));
      v.set("period", JsonValue::uint(g.period));
      break;
    case ValueGenSpec::Kind::kBivalent:
      break;
    case ValueGenSpec::Kind::kExplicit: {
      JsonValue arr = JsonValue::array();
      for (std::int64_t x : g.values) arr.push(JsonValue::integer(x));
      v.set("values", std::move(arr));
      break;
    }
  }
  return v;
}

JsonValue encode_crashes(const CrashGenSpec& c) {
  JsonValue v = JsonValue::object();
  v.set("kind", JsonValue::str(enum_name(kCrashGenNames, c.kind)));
  switch (c.kind) {
    case CrashGenSpec::Kind::kNone:
      break;
    case CrashGenSpec::Kind::kExplicit: {
      JsonValue arr = JsonValue::array();
      for (const auto& e : c.entries) {
        JsonValue entry = JsonValue::object();
        entry.set("process", JsonValue::uint(e.process));
        entry.set("round", JsonValue::uint(e.round));
        arr.push(std::move(entry));
      }
      v.set("entries", std::move(arr));
      break;
    }
    case CrashGenSpec::Kind::kRandom:
      v.set("count", JsonValue::uint(c.count));
      v.set("horizon", JsonValue::uint(c.horizon));
      v.set("seed_offset", JsonValue::uint(c.seed_offset));
      break;
  }
  return v;
}

// Encoded field-by-field against the defaults (and only attached to the
// env object when anything differs), so every pre-existing spec and golden
// is byte-identical and encode(decode(encode(s))) stays canonical.
JsonValue encode_faults(const FaultParams& f) {
  const FaultParams defaults;
  JsonValue v = JsonValue::object();
  if (f.seed != defaults.seed) v.set("seed", JsonValue::uint(f.seed));
  if (f.loss_prob != defaults.loss_prob)
    v.set("loss_prob", JsonValue::number(f.loss_prob));
  if (f.dup_prob != defaults.dup_prob)
    v.set("dup_prob", JsonValue::number(f.dup_prob));
  if (f.dup_extra_delay != defaults.dup_extra_delay)
    v.set("dup_extra_delay", JsonValue::uint(f.dup_extra_delay));
  if (f.reorder_prob != defaults.reorder_prob)
    v.set("reorder_prob", JsonValue::number(f.reorder_prob));
  if (f.max_extra_delay != defaults.max_extra_delay)
    v.set("max_extra_delay", JsonValue::uint(f.max_extra_delay));
  if (!f.omission_senders.empty()) {
    JsonValue arr = JsonValue::array();
    for (ProcId p : f.omission_senders) arr.push(JsonValue::uint(p));
    v.set("omission_senders", std::move(arr));
  }
  if (!f.churn.empty()) {
    JsonValue arr = JsonValue::array();
    for (const ChurnSpec& c : f.churn) {
      JsonValue o = JsonValue::object();
      o.set("process", JsonValue::uint(c.process));
      o.set("leave", JsonValue::uint(c.leave));
      if (c.rejoin != 0) o.set("rejoin", JsonValue::uint(c.rejoin));
      arr.push(std::move(o));
    }
    v.set("churn", std::move(arr));
  }
  if (f.exempt_source != defaults.exempt_source)
    v.set("exempt_source", JsonValue::boolean(f.exempt_source));
  return v;
}

JsonValue encode_consensus(const ConsensusSpecSection& c) {
  JsonValue v = JsonValue::object();
  v.set("algo", JsonValue::str(enum_name(kAlgoNames, c.algo)));
  v.set("backend", JsonValue::str(enum_name(kBackendNames, c.backend)));
  // Conditional (like horizon): the serial default stays un-encoded, so
  // every pre-existing spec and golden is unchanged.
  if (c.engine_threads != 1)
    v.set("engine_threads", JsonValue::uint(c.engine_threads));
  v.set("schedule", JsonValue::str(enum_name(kScheduleNames, c.schedule)));
  v.set("probe", JsonValue::str(enum_name(kConsensusProbeNames, c.probe)));
  if (c.probe != ConsensusSpecSection::Probe::kDecision)
    v.set("horizon", JsonValue::uint(c.horizon));
  v.set("gc_counters", JsonValue::boolean(c.gc_counters));
  v.set("max_rounds", JsonValue::uint(c.max_rounds));
  if (c.watchdog_rounds != 0)
    v.set("watchdog_rounds", JsonValue::uint(c.watchdog_rounds));
  v.set("record_trace", JsonValue::boolean(c.record_trace));
  v.set("record_deliveries", JsonValue::boolean(c.record_deliveries));
  v.set("validate_env", JsonValue::boolean(c.validate_env));
  return v;
}

JsonValue encode_omega(const OmegaSpecSection& o) {
  JsonValue v = JsonValue::object();
  v.set("probe", JsonValue::str(enum_name(kOmegaProbeNames, o.probe)));
  v.set("silence_threshold", JsonValue::uint(o.silence_threshold));
  if (o.probe == OmegaSpecSection::Probe::kLeaderConvergence)
    v.set("horizon", JsonValue::uint(o.horizon));
  v.set("max_rounds", JsonValue::uint(o.max_rounds));
  return v;
}

JsonValue encode_weakset(const WeaksetSpecSection& w) {
  JsonValue v = JsonValue::object();
  v.set("mode", JsonValue::str(enum_name(kWeaksetModeNames, w.mode)));
  if (w.backend != WeaksetSpecSection::Backend::kExpanded)
    v.set("backend", JsonValue::str(enum_name(kWsBackendNames, w.backend)));
  if (w.engine_threads != 1)
    v.set("engine_threads", JsonValue::uint(w.engine_threads));
  if (!w.script.empty()) {
    JsonValue arr = JsonValue::array();
    for (const auto& op : w.script) {
      JsonValue o = JsonValue::object();
      o.set("round", JsonValue::uint(op.round));
      o.set("process", JsonValue::uint(op.process));
      o.set("mutate", JsonValue::boolean(op.is_mutation));
      if (op.is_mutation) o.set("value", JsonValue::integer(op.value));
      arr.push(std::move(o));
    }
    v.set("script", std::move(arr));
  } else {
    v.set("gen_ops", JsonValue::uint(w.gen_ops));
  }
  v.set("extra_rounds", JsonValue::uint(w.extra_rounds));
  v.set("validate_env", JsonValue::boolean(w.validate_env));
  v.set("keep_records", JsonValue::boolean(w.keep_records));
  return v;
}

JsonValue encode_emulation(const EmulationSpecSection& e) {
  JsonValue v = JsonValue::object();
  v.set("inner", JsonValue::str(enum_name(kEmuInnerNames, e.inner)));
  v.set("engine", JsonValue::str(enum_name(kEmuEngineNames, e.engine)));
  if (e.backend != EmulationSpecSection::Backend::kExpanded)
    v.set("backend", JsonValue::str(enum_name(kEmuBackendNames, e.backend)));
  if (e.engine_threads != 1)
    v.set("engine_threads", JsonValue::uint(e.engine_threads));
  v.set("rounds", JsonValue::uint(e.rounds));
  v.set("min_add_latency", JsonValue::uint(e.min_add_latency));
  v.set("max_add_latency", JsonValue::uint(e.max_add_latency));
  if (!e.skew.empty()) {
    JsonValue arr = JsonValue::array();
    for (std::uint64_t s : e.skew) arr.push(JsonValue::uint(s));
    v.set("skew", std::move(arr));
  }
  v.set("max_ticks", JsonValue::uint(e.max_ticks));
  if (!e.adds.empty()) {
    JsonValue arr = JsonValue::array();
    for (const auto& a : e.adds) {
      JsonValue o = JsonValue::object();
      o.set("process", JsonValue::uint(a.process));
      o.set("value", JsonValue::integer(a.value));
      arr.push(std::move(o));
    }
    v.set("adds", std::move(arr));
  }
  if (!(e.probe_values == kDefaultProbeValues))
    v.set("probe_values", encode_initial(e.probe_values));
  if (!e.certify) v.set("certify", JsonValue::boolean(false));
  return v;
}

JsonValue encode_shm(const ShmSpecSection& s) {
  JsonValue v = JsonValue::object();
  v.set("construction", JsonValue::str(enum_name(kShmNames, s.construction)));
  v.set("gen_ops", JsonValue::uint(s.gen_ops));
  v.set("domain", JsonValue::uint(s.domain));
  if (s.construction == ShmSpecSection::Construction::kMwmr)
    v.set("writers", JsonValue::uint(s.writers));
  return v;
}

JsonValue encode_abd(const AbdSpecSection& a) {
  JsonValue v = JsonValue::object();
  v.set("crash_prefix", JsonValue::uint(a.crash_prefix));
  v.set("write_value", JsonValue::integer(a.write_value));
  return v;
}

// Defaults-elided, like encode_faults: only attached for transport "live"
// and only departures from the defaults are written.
JsonValue encode_live(const LiveSpecSection& l) {
  const LiveSpecSection defaults;
  JsonValue v = JsonValue::object();
  if (l.socket != defaults.socket)
    v.set("socket", JsonValue::str(enum_name(kLiveSocketNames, l.socket)));
  if (l.period_ms != defaults.period_ms)
    v.set("period_ms", JsonValue::uint(l.period_ms));
  if (l.jitter_ms != defaults.jitter_ms)
    v.set("jitter_ms", JsonValue::uint(l.jitter_ms));
  if (l.loss != defaults.loss) v.set("loss", JsonValue::number(l.loss));
  if (l.op_timeout_ms != defaults.op_timeout_ms)
    v.set("op_timeout_ms", JsonValue::uint(l.op_timeout_ms));
  if (l.clients != defaults.clients)
    v.set("clients", JsonValue::uint(l.clients));
  if (l.watchdog_rounds != defaults.watchdog_rounds)
    v.set("watchdog_rounds", JsonValue::uint(l.watchdog_rounds));
  return v;
}

bool family_has_workload(ScenarioFamily f) {
  return f == ScenarioFamily::kConsensus || f == ScenarioFamily::kOmega ||
         f == ScenarioFamily::kWeakset;
}

bool family_has_initial(ScenarioFamily f) {
  return f == ScenarioFamily::kConsensus || f == ScenarioFamily::kOmega;
}

}  // namespace

JsonValue encode_scenario_spec(const ScenarioSpec& spec) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::str(spec.name));
  doc.set("family", JsonValue::str(to_string(spec.family)));
  JsonValue seeds = JsonValue::array();
  for (std::uint64_t s : spec.seeds) seeds.push(JsonValue::uint(s));
  doc.set("seeds", std::move(seeds));
  // Sim specs stay byte-identical: the transport key (and the live section
  // below) only appear for the live backend.
  if (spec.transport != TransportKind::kSim)
    doc.set("transport",
            JsonValue::str(enum_name(kTransportNames, spec.transport)));

  JsonValue env = JsonValue::object();
  env.set("kind", JsonValue::str(enum_name(kEnvKindNames, spec.env_kind)));
  env.set("n", JsonValue::uint(spec.n));
  env.set("stabilization", JsonValue::uint(spec.stabilization));
  env.set("max_delay", JsonValue::uint(spec.max_delay));
  env.set("timely_prob", JsonValue::number(spec.timely_prob));
  if (spec.faults != FaultParams{})
    env.set("faults", encode_faults(spec.faults));
  doc.set("env", std::move(env));
  if (spec.transport == TransportKind::kLive &&
      !(spec.live == LiveSpecSection{}))
    doc.set("live", encode_live(spec.live));

  if (family_has_workload(spec.family)) {
    JsonValue workload = JsonValue::object();
    if (family_has_initial(spec.family))
      workload.set("initial", encode_initial(spec.initial));
    workload.set("crashes", encode_crashes(spec.crashes));
    doc.set("workload", std::move(workload));
  }

  switch (spec.family) {
    case ScenarioFamily::kConsensus:
      doc.set("consensus", encode_consensus(spec.consensus));
      break;
    case ScenarioFamily::kOmega:
      doc.set("omega", encode_omega(spec.omega));
      break;
    case ScenarioFamily::kWeakset:
      doc.set("weakset", encode_weakset(spec.weakset));
      break;
    case ScenarioFamily::kEmulation:
      doc.set("emulation", encode_emulation(spec.emulation));
      break;
    case ScenarioFamily::kWeaksetShm:
      doc.set("shm", encode_shm(spec.shm));
      break;
    case ScenarioFamily::kAbd:
      doc.set("abd", encode_abd(spec.abd));
      break;
  }
  return doc;
}

std::string scenario_spec_to_json(const ScenarioSpec& spec) {
  return encode_scenario_spec(spec).dump() + "\n";
}

// ------------------------------------------------------------------ decode --

namespace {

// Typed field extraction with dotted-path diagnostics.  Absent fields keep
// the struct's default (specs are sparse-friendly); present-but-mistyped
// fields are errors.
class Dec {
 public:
  explicit Dec(std::vector<SpecError>* errs) : errs_(errs) {}

  void err(const std::string& path, const std::string& msg) {
    errs_->push_back({path, msg});
  }

  // Rejects keys outside `allowed` ("did you misspell…" surface).
  void check_keys(const JsonValue& obj, const std::string& path,
                  std::initializer_list<const char*> allowed) {
    for (const auto& [k, v] : obj.entries()) {
      bool ok = false;
      for (const char* a : allowed)
        if (k == a) ok = true;
      if (!ok) err(join(path, k), "unknown field");
    }
  }

  const JsonValue* object_field(const JsonValue& obj, const std::string& path,
                                const char* key, bool required = false) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) {
      if (required) err(join(path, key), "missing required object");
      return nullptr;
    }
    if (!v->is_object()) {
      err(join(path, key), "must be an object");
      return nullptr;
    }
    return v;
  }

  const JsonValue* array_field(const JsonValue& obj, const std::string& path,
                               const char* key) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return nullptr;
    if (!v->is_array()) {
      err(join(path, key), "must be an array");
      return nullptr;
    }
    return v;
  }

  bool get_string(const JsonValue& obj, const std::string& path,
                  const char* key, std::string* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return false;
    if (!v->is_string()) {
      err(join(path, key), "must be a string");
      return false;
    }
    *out = v->as_string();
    return true;
  }

  template <typename T>
  void get_uint(const JsonValue& obj, const std::string& path, const char* key,
                T* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return;
    if (!v->is_uint()) {
      err(join(path, key), "must be a non-negative integer");
      return;
    }
    *out = static_cast<T>(v->as_uint());
  }

  void get_int(const JsonValue& obj, const std::string& path, const char* key,
               std::int64_t* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return;
    if (!v->is_int()) {
      err(join(path, key), "must be an integer");
      return;
    }
    *out = v->as_int();
  }

  void get_bool(const JsonValue& obj, const std::string& path, const char* key,
                bool* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return;
    if (!v->is_bool()) {
      err(join(path, key), "must be a boolean");
      return;
    }
    *out = v->as_bool();
  }

  void get_double(const JsonValue& obj, const std::string& path,
                  const char* key, double* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return;
    if (!v->is_number()) {
      err(join(path, key), "must be a number");
      return;
    }
    *out = v->as_double();
  }

  template <typename E, std::size_t N>
  void get_enum(const JsonValue& obj, const std::string& path, const char* key,
                const EnumName<E> (&table)[N], E* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return;
    if (!v->is_string()) {
      err(join(path, key), "must be one of " + enum_choices(table));
      return;
    }
    if (!enum_from_name(table, v->as_string(), out))
      err(join(path, key), "unknown value \"" + v->as_string() +
                               "\" — expected " + enum_choices(table));
  }

  static std::string join(const std::string& path, const std::string& key) {
    return path.empty() ? key : path + "." + key;
  }

 private:
  std::vector<SpecError>* errs_;
};

void decode_initial(Dec& d, const JsonValue& obj, const std::string& path,
                    ValueGenSpec* out) {
  d.check_keys(obj, path, {"kind", "base", "period", "values"});
  d.get_enum(obj, path, "kind", kValueGenNames, &out->kind);
  d.get_int(obj, path, "base", &out->base);
  d.get_uint(obj, path, "period", &out->period);
  if (const JsonValue* arr = d.array_field(obj, path, "values")) {
    out->values.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      if (!e.is_int()) {
        d.err(path + ".values[" + std::to_string(i) + "]", "must be an integer");
        continue;
      }
      out->values.push_back(e.as_int());
    }
  }
  // Variant discipline keeps the encoding canonical.
  const bool cycle = out->kind == ValueGenSpec::Kind::kCycle;
  const bool expl = out->kind == ValueGenSpec::Kind::kExplicit;
  const bool based = out->kind == ValueGenSpec::Kind::kDistinct ||
                     out->kind == ValueGenSpec::Kind::kIdentical || cycle;
  if (obj.find("period") != nullptr && !cycle)
    d.err(path + ".period", "only valid for kind \"cycle\"");
  if (obj.find("values") != nullptr && !expl)
    d.err(path + ".values", "only valid for kind \"explicit\"");
  if (obj.find("base") != nullptr && !based)
    d.err(path + ".base", "not valid for this kind");
}

void decode_crashes(Dec& d, const JsonValue& obj, const std::string& path,
                    CrashGenSpec* out) {
  d.check_keys(obj, path, {"kind", "entries", "count", "horizon", "seed_offset"});
  d.get_enum(obj, path, "kind", kCrashGenNames, &out->kind);
  if (const JsonValue* arr = d.array_field(obj, path, "entries")) {
    out->entries.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      const std::string epath = path + ".entries[" + std::to_string(i) + "]";
      if (!e.is_object()) {
        d.err(epath, "must be an object {process, round}");
        continue;
      }
      d.check_keys(e, epath, {"process", "round"});
      CrashEntrySpec entry;
      d.get_uint(e, epath, "process", &entry.process);
      d.get_uint(e, epath, "round", &entry.round);
      out->entries.push_back(entry);
    }
  }
  d.get_uint(obj, path, "count", &out->count);
  d.get_uint(obj, path, "horizon", &out->horizon);
  d.get_uint(obj, path, "seed_offset", &out->seed_offset);
  const bool expl = out->kind == CrashGenSpec::Kind::kExplicit;
  const bool random = out->kind == CrashGenSpec::Kind::kRandom;
  if (obj.find("entries") != nullptr && !expl)
    d.err(path + ".entries", "only valid for kind \"explicit\"");
  for (const char* key : {"count", "horizon", "seed_offset"})
    if (obj.find(key) != nullptr && !random)
      d.err(path + "." + key, "only valid for kind \"random\"");
}

void decode_faults(Dec& d, const JsonValue& obj, const std::string& path,
                   FaultParams* out) {
  d.check_keys(obj, path,
               {"seed", "loss_prob", "dup_prob", "dup_extra_delay",
                "reorder_prob", "max_extra_delay", "omission_senders", "churn",
                "exempt_source"});
  d.get_uint(obj, path, "seed", &out->seed);
  d.get_double(obj, path, "loss_prob", &out->loss_prob);
  d.get_double(obj, path, "dup_prob", &out->dup_prob);
  d.get_uint(obj, path, "dup_extra_delay", &out->dup_extra_delay);
  d.get_double(obj, path, "reorder_prob", &out->reorder_prob);
  d.get_uint(obj, path, "max_extra_delay", &out->max_extra_delay);
  if (const JsonValue* arr = d.array_field(obj, path, "omission_senders")) {
    out->omission_senders.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      if (!e.is_uint()) {
        d.err(path + ".omission_senders[" + std::to_string(i) + "]",
              "must be a non-negative integer");
        continue;
      }
      out->omission_senders.push_back(static_cast<ProcId>(e.as_uint()));
    }
  }
  if (const JsonValue* arr = d.array_field(obj, path, "churn")) {
    out->churn.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      const std::string epath = path + ".churn[" + std::to_string(i) + "]";
      if (!e.is_object()) {
        d.err(epath, "must be an object {process, leave, rejoin}");
        continue;
      }
      d.check_keys(e, epath, {"process", "leave", "rejoin"});
      ChurnSpec c;
      d.get_uint(e, epath, "process", &c.process);
      d.get_uint(e, epath, "leave", &c.leave);
      d.get_uint(e, epath, "rejoin", &c.rejoin);
      out->churn.push_back(c);
    }
  }
  d.get_bool(obj, path, "exempt_source", &out->exempt_source);
}

void decode_live(Dec& d, const JsonValue& obj, const std::string& path,
                 LiveSpecSection* out) {
  d.check_keys(obj, path,
               {"socket", "period_ms", "jitter_ms", "loss", "op_timeout_ms",
                "clients", "watchdog_rounds"});
  d.get_enum(obj, path, "socket", kLiveSocketNames, &out->socket);
  d.get_uint(obj, path, "period_ms", &out->period_ms);
  d.get_uint(obj, path, "jitter_ms", &out->jitter_ms);
  d.get_double(obj, path, "loss", &out->loss);
  d.get_uint(obj, path, "op_timeout_ms", &out->op_timeout_ms);
  d.get_uint(obj, path, "clients", &out->clients);
  d.get_uint(obj, path, "watchdog_rounds", &out->watchdog_rounds);
}

void decode_consensus(Dec& d, const JsonValue& obj, const std::string& path,
                      ConsensusSpecSection* out) {
  d.check_keys(obj, path,
               {"algo", "backend", "engine_threads", "schedule", "probe",
                "horizon", "gc_counters", "max_rounds", "watchdog_rounds",
                "record_trace", "record_deliveries", "validate_env"});
  d.get_enum(obj, path, "algo", kAlgoNames, &out->algo);
  d.get_enum(obj, path, "backend", kBackendNames, &out->backend);
  d.get_uint(obj, path, "engine_threads", &out->engine_threads);
  d.get_enum(obj, path, "schedule", kScheduleNames, &out->schedule);
  d.get_enum(obj, path, "probe", kConsensusProbeNames, &out->probe);
  d.get_uint(obj, path, "horizon", &out->horizon);
  d.get_bool(obj, path, "gc_counters", &out->gc_counters);
  d.get_uint(obj, path, "max_rounds", &out->max_rounds);
  d.get_uint(obj, path, "watchdog_rounds", &out->watchdog_rounds);
  d.get_bool(obj, path, "record_trace", &out->record_trace);
  d.get_bool(obj, path, "record_deliveries", &out->record_deliveries);
  d.get_bool(obj, path, "validate_env", &out->validate_env);
  if (obj.find("horizon") != nullptr &&
      out->probe == ConsensusSpecSection::Probe::kDecision)
    d.err(path + ".horizon", "only valid for non-decision probes");
}

void decode_omega(Dec& d, const JsonValue& obj, const std::string& path,
                  OmegaSpecSection* out) {
  d.check_keys(obj, path, {"probe", "silence_threshold", "horizon", "max_rounds"});
  d.get_enum(obj, path, "probe", kOmegaProbeNames, &out->probe);
  d.get_uint(obj, path, "silence_threshold", &out->silence_threshold);
  d.get_uint(obj, path, "horizon", &out->horizon);
  d.get_uint(obj, path, "max_rounds", &out->max_rounds);
  if (obj.find("horizon") != nullptr &&
      out->probe != OmegaSpecSection::Probe::kLeaderConvergence)
    d.err(path + ".horizon", "only valid for probe \"leader-convergence\"");
}

void decode_weakset(Dec& d, const JsonValue& obj, const std::string& path,
                    WeaksetSpecSection* out) {
  d.check_keys(obj, path, {"mode", "backend", "engine_threads", "script",
                           "gen_ops", "extra_rounds", "validate_env",
                           "keep_records"});
  d.get_enum(obj, path, "mode", kWeaksetModeNames, &out->mode);
  d.get_enum(obj, path, "backend", kWsBackendNames, &out->backend);
  d.get_uint(obj, path, "engine_threads", &out->engine_threads);
  if (const JsonValue* arr = d.array_field(obj, path, "script")) {
    out->script.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      const std::string epath = path + ".script[" + std::to_string(i) + "]";
      if (!e.is_object()) {
        d.err(epath, "must be an object {round, process, mutate, value}");
        continue;
      }
      d.check_keys(e, epath, {"round", "process", "mutate", "value"});
      WeaksetOpSpec op;
      d.get_uint(e, epath, "round", &op.round);
      d.get_uint(e, epath, "process", &op.process);
      d.get_bool(e, epath, "mutate", &op.is_mutation);
      d.get_int(e, epath, "value", &op.value);
      if (e.find("value") != nullptr && !op.is_mutation)
        d.err(epath + ".value", "only valid for mutations");
      out->script.push_back(op);
    }
  }
  d.get_uint(obj, path, "gen_ops", &out->gen_ops);
  d.get_uint(obj, path, "extra_rounds", &out->extra_rounds);
  d.get_bool(obj, path, "validate_env", &out->validate_env);
  d.get_bool(obj, path, "keep_records", &out->keep_records);
  if (obj.find("script") != nullptr && obj.find("gen_ops") != nullptr)
    d.err(path + ".gen_ops", "mutually exclusive with an explicit script");
}

void decode_emulation(Dec& d, const JsonValue& obj, const std::string& path,
                      EmulationSpecSection* out) {
  d.check_keys(obj, path, {"inner", "engine", "backend", "engine_threads",
                           "rounds", "min_add_latency", "max_add_latency",
                           "skew", "max_ticks", "adds", "probe_values",
                           "certify"});
  d.get_enum(obj, path, "inner", kEmuInnerNames, &out->inner);
  d.get_enum(obj, path, "engine", kEmuEngineNames, &out->engine);
  d.get_enum(obj, path, "backend", kEmuBackendNames, &out->backend);
  d.get_uint(obj, path, "engine_threads", &out->engine_threads);
  d.get_uint(obj, path, "rounds", &out->rounds);
  d.get_uint(obj, path, "min_add_latency", &out->min_add_latency);
  d.get_uint(obj, path, "max_add_latency", &out->max_add_latency);
  if (const JsonValue* arr = d.array_field(obj, path, "skew")) {
    out->skew.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      if (!e.is_uint()) {
        d.err(path + ".skew[" + std::to_string(i) + "]",
              "must be a non-negative integer");
        continue;
      }
      out->skew.push_back(e.as_uint());
    }
  }
  d.get_uint(obj, path, "max_ticks", &out->max_ticks);
  if (const JsonValue* arr = d.array_field(obj, path, "adds")) {
    out->adds.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      const std::string epath = path + ".adds[" + std::to_string(i) + "]";
      if (!e.is_object()) {
        d.err(epath, "must be an object {process, value}");
        continue;
      }
      d.check_keys(e, epath, {"process", "value"});
      EmulationAddSpec add;
      d.get_uint(e, epath, "process", &add.process);
      d.get_int(e, epath, "value", &add.value);
      out->adds.push_back(add);
    }
  }
  if (const JsonValue* pv = d.object_field(obj, path, "probe_values"))
    decode_initial(d, *pv, path + ".probe_values", &out->probe_values);
  d.get_bool(obj, path, "certify", &out->certify);
}

void decode_shm(Dec& d, const JsonValue& obj, const std::string& path,
                ShmSpecSection* out) {
  d.check_keys(obj, path, {"construction", "gen_ops", "domain", "writers"});
  d.get_enum(obj, path, "construction", kShmNames, &out->construction);
  d.get_uint(obj, path, "gen_ops", &out->gen_ops);
  d.get_uint(obj, path, "domain", &out->domain);
  d.get_uint(obj, path, "writers", &out->writers);
  if (obj.find("writers") != nullptr &&
      out->construction != ShmSpecSection::Construction::kMwmr)
    d.err(path + ".writers", "only valid for construction \"mwmr\"");
}

void decode_abd(Dec& d, const JsonValue& obj, const std::string& path,
                AbdSpecSection* out) {
  d.check_keys(obj, path, {"crash_prefix", "write_value"});
  d.get_uint(obj, path, "crash_prefix", &out->crash_prefix);
  d.get_int(obj, path, "write_value", &out->write_value);
}

}  // namespace

std::string SpecDecodeResult::errors_to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) os << "\n";
    os << errors[i].to_string();
  }
  return os.str();
}

SpecDecodeResult decode_scenario_spec(const JsonValue& doc) {
  SpecDecodeResult res;
  Dec d(&res.errors);
  if (!doc.is_object()) {
    d.err("", "spec must be a JSON object");
    return res;
  }
  ScenarioSpec spec;
  d.check_keys(doc, "",
               {"name", "family", "seeds", "transport", "live", "env",
                "workload", "consensus", "omega", "weakset", "emulation",
                "shm", "abd"});
  d.get_string(doc, "", "name", &spec.name);
  d.get_enum(doc, "", "family", kFamilyNames, &spec.family);
  d.get_enum(doc, "", "transport", kTransportNames, &spec.transport);
  if (const JsonValue* live = d.object_field(doc, "", "live")) {
    if (spec.transport != TransportKind::kLive)
      d.err("live", "only valid for transport \"live\"");
    else
      decode_live(d, *live, "live", &spec.live);
  }
  if (const JsonValue* arr = d.array_field(doc, "", "seeds")) {
    spec.seeds.clear();
    for (std::size_t i = 0; i < arr->items().size(); ++i) {
      const JsonValue& e = arr->items()[i];
      if (!e.is_uint()) {
        d.err("seeds[" + std::to_string(i) + "]",
              "must be a non-negative integer");
        continue;
      }
      spec.seeds.push_back(e.as_uint());
    }
  }
  if (const JsonValue* env = d.object_field(doc, "", "env")) {
    d.check_keys(*env, "env",
                 {"kind", "n", "stabilization", "max_delay", "timely_prob",
                  "faults"});
    d.get_enum(*env, "env", "kind", kEnvKindNames, &spec.env_kind);
    d.get_uint(*env, "env", "n", &spec.n);
    d.get_uint(*env, "env", "stabilization", &spec.stabilization);
    d.get_uint(*env, "env", "max_delay", &spec.max_delay);
    d.get_double(*env, "env", "timely_prob", &spec.timely_prob);
    if (const JsonValue* faults = d.object_field(*env, "env", "faults"))
      decode_faults(d, *faults, "env.faults", &spec.faults);
  }
  if (const JsonValue* workload = d.object_field(doc, "", "workload")) {
    if (!family_has_workload(spec.family)) {
      d.err("workload", std::string("not valid for family \"") +
                            to_string(spec.family) + "\"");
    } else {
      d.check_keys(*workload, "workload", {"initial", "crashes"});
      if (const JsonValue* initial =
              d.object_field(*workload, "workload", "initial")) {
        if (!family_has_initial(spec.family))
          d.err("workload.initial", std::string("not valid for family \"") +
                                        to_string(spec.family) + "\"");
        else
          decode_initial(d, *initial, "workload.initial", &spec.initial);
      }
      if (const JsonValue* crashes =
              d.object_field(*workload, "workload", "crashes"))
        decode_crashes(d, *crashes, "workload.crashes", &spec.crashes);
    }
  }

  struct SectionSlot {
    const char* key;
    ScenarioFamily family;
  };
  constexpr SectionSlot kSections[] = {
      {"consensus", ScenarioFamily::kConsensus},
      {"omega", ScenarioFamily::kOmega},
      {"weakset", ScenarioFamily::kWeakset},
      {"emulation", ScenarioFamily::kEmulation},
      {"shm", ScenarioFamily::kWeaksetShm},
      {"abd", ScenarioFamily::kAbd},
  };
  for (const auto& slot : kSections) {
    const JsonValue* section = d.object_field(doc, "", slot.key);
    if (section == nullptr) continue;
    if (slot.family != spec.family) {
      d.err(slot.key, std::string("section belongs to family \"") +
                          to_string(slot.family) + "\" but this spec's family is \"" +
                          to_string(spec.family) + "\"");
      continue;
    }
    switch (spec.family) {
      case ScenarioFamily::kConsensus:
        decode_consensus(d, *section, slot.key, &spec.consensus);
        break;
      case ScenarioFamily::kOmega:
        decode_omega(d, *section, slot.key, &spec.omega);
        break;
      case ScenarioFamily::kWeakset:
        decode_weakset(d, *section, slot.key, &spec.weakset);
        break;
      case ScenarioFamily::kEmulation:
        decode_emulation(d, *section, slot.key, &spec.emulation);
        break;
      case ScenarioFamily::kWeaksetShm:
        decode_shm(d, *section, slot.key, &spec.shm);
        break;
      case ScenarioFamily::kAbd:
        decode_abd(d, *section, slot.key, &spec.abd);
        break;
    }
  }

  if (res.errors.empty()) {
    auto validation = validate_scenario_spec(spec);
    res.errors.insert(res.errors.end(), validation.begin(), validation.end());
  }
  if (res.errors.empty()) res.spec = std::move(spec);
  return res;
}

SpecDecodeResult parse_scenario_spec(std::string_view json_text) {
  auto parsed = JsonValue::parse(json_text);
  if (!parsed.value.has_value()) {
    SpecDecodeResult res;
    res.errors.push_back(
        {"(json)", parsed.error + " at line " + std::to_string(parsed.line) +
                       ", column " + std::to_string(parsed.column)});
    return res;
  }
  return decode_scenario_spec(*parsed.value);
}

// ---------------------------------------------------------------- validate --

bool family_live_supported(ScenarioFamily f) {
  // The anonsvc daemon serves the paper's three objects: consensus,
  // weak-set add/get, and the ABD register.
  return f == ScenarioFamily::kConsensus || f == ScenarioFamily::kWeakset ||
         f == ScenarioFamily::kAbd;
}

std::vector<SpecError> validate_scenario_spec(const ScenarioSpec& spec) {
  std::vector<SpecError> errs;
  auto err = [&](const std::string& path, const std::string& msg) {
    errs.push_back({path, msg});
  };

  if (spec.seeds.empty()) err("seeds", "at least one seed is required");
  if (spec.n == 0) err("env.n", "must be >= 1");
  if (spec.timely_prob < 0 || spec.timely_prob > 1)
    err("env.timely_prob", "must be in [0, 1]");

  // Live transport consistency.
  if (spec.transport == TransportKind::kLive) {
    if (!family_live_supported(spec.family))
      err("transport", "the live service serves the consensus, weakset and "
                       "abd families");
    if (spec.env_kind != EnvKind::kES)
      err("env.kind", "the live pacemaker realizes the ES round-source "
                      "property — set \"es\"");
    if (spec.faults.active())
      err("env.faults", "the live transport models faults with live.loss / "
                        "live.jitter_ms");
    if (spec.family == ScenarioFamily::kConsensus) {
      if (spec.consensus.schedule != ConsensusSpecSection::Schedule::kEnv)
        err("consensus.schedule",
            "live rounds are paced by wall-clock deadlines — adversarial "
            "schedules are sim-only; set \"env\"");
      if (spec.consensus.probe != ConsensusSpecSection::Probe::kDecision)
        err("consensus.probe", "the live service observes decisions only");
    }
    if (spec.family == ScenarioFamily::kWeakset) {
      if (spec.weakset.mode != WeaksetSpecSection::Mode::kSet)
        err("weakset.mode",
            "the live register is the abd family — set mode \"set\"");
      if (!spec.weakset.script.empty())
        err("weakset.script", "live adds are generated (weakset.gen_ops "
                              "spread across live.clients) — leave empty");
    }
    const LiveSpecSection& l = spec.live;
    if (l.loss < 0 || l.loss > 1) err("live.loss", "must be in [0, 1]");
    if (l.loss > 0 && l.socket == LiveSpecSection::Socket::kTcp)
      err("live.loss",
          "TCP inbound cannot attribute senders, so the exempt-source "
          "safety contract is unenforceable under loss — use socket "
          "\"udp\"");
    if (l.period_ms == 0) err("live.period_ms", "must be >= 1");
    if (l.clients == 0) err("live.clients", "must be >= 1");
    if (l.op_timeout_ms == 0) err("live.op_timeout_ms", "must be >= 1");
  } else if (!(spec.live == LiveSpecSection{})) {
    err("live", "only valid for transport \"live\"");
  }

  // Fault plan consistency (env.faults).
  {
    const FaultParams& f = spec.faults;
    for (const auto& [key, prob] :
         {std::pair<const char*, double>{"loss_prob", f.loss_prob},
          {"dup_prob", f.dup_prob},
          {"reorder_prob", f.reorder_prob}})
      if (prob < 0 || prob > 1)
        err(std::string("env.faults.") + key, "must be in [0, 1]");
    if (f.dup_extra_delay == 0)
      err("env.faults.dup_extra_delay",
          "must be >= 1 (inbox views are sets — a same-round copy would be "
          "invisible)");
    if (f.reorder_prob > 0 && f.max_extra_delay == 0)
      err("env.faults.max_extra_delay", "must be >= 1 when reorder_prob > 0");
    for (std::size_t i = 0; i < f.omission_senders.size(); ++i)
      if (f.omission_senders[i] >= spec.n)
        err("env.faults.omission_senders[" + std::to_string(i) + "]",
            "process " + std::to_string(f.omission_senders[i]) +
                " out of range (env.n = " + std::to_string(spec.n) + ")");
    for (std::size_t i = 0; i < f.churn.size(); ++i) {
      const ChurnSpec& c = f.churn[i];
      const std::string path = "env.faults.churn[" + std::to_string(i) + "]";
      if (c.process >= spec.n)
        err(path + ".process", "process " + std::to_string(c.process) +
                                   " out of range (env.n = " +
                                   std::to_string(spec.n) + ")");
      if (c.leave == 0) err(path + ".leave", "rounds are 1-based");
      if (c.rejoin != 0 && c.rejoin <= c.leave)
        err(path + ".rejoin",
            "must be > leave (or 0 for a permanent departure)");
    }
    if (f.active()) {
      switch (spec.family) {
        case ScenarioFamily::kConsensus:
          if (spec.consensus.schedule != ConsensusSpecSection::Schedule::kEnv)
            err("env.faults",
                "fault plans run on the env schedule (the adversarial "
                "schedules are their own fault model)");
          else if (spec.consensus.probe !=
                   ConsensusSpecSection::Probe::kDecision)
            err("env.faults", "fault plans observe the decision probe");
          break;
        case ScenarioFamily::kWeakset:
          break;  // both backends thread FaultPlan through the harness
        case ScenarioFamily::kEmulation:
          if (spec.emulation.engine == EmulationSpecSection::Engine::kRef)
            err("env.faults",
                "the reference emulation engine is the untouched oracle; "
                "pick engine \"interned\"");
          break;
        case ScenarioFamily::kAbd:
          // The async point-to-point net takes loss/dup/reorder/omission
          // (AsyncNet::set_faults, keyed on message sequence); churn is a
          // round-window concept and this network has no rounds.
          if (!f.churn.empty())
            err("env.faults.churn",
                "churn windows are round-based; the abd family's async "
                "network has no rounds");
          break;
        default:
          err("env.faults",
              "fault plans are wired into the consensus, weakset, emulation "
              "and abd families");
          break;
      }
    }
  }

  // Workload consistency.
  if (family_has_initial(spec.family)) {
    if (spec.initial.kind == ValueGenSpec::Kind::kExplicit &&
        spec.initial.values.size() != spec.n)
      err("workload.initial.values",
          "has " + std::to_string(spec.initial.values.size()) +
              " entries but env.n is " + std::to_string(spec.n));
    if (spec.initial.kind == ValueGenSpec::Kind::kCycle &&
        spec.initial.period == 0)
      err("workload.initial.period", "must be >= 1 for kind \"cycle\"");
  }
  if (family_has_workload(spec.family)) {
    if (spec.crashes.kind == CrashGenSpec::Kind::kExplicit) {
      std::set<std::size_t> victims;
      for (std::size_t i = 0; i < spec.crashes.entries.size(); ++i) {
        const auto& e = spec.crashes.entries[i];
        const std::string path =
            "workload.crashes.entries[" + std::to_string(i) + "]";
        if (e.process >= spec.n)
          err(path + ".process", "process " + std::to_string(e.process) +
                                     " out of range (env.n = " +
                                     std::to_string(spec.n) + ")");
        else
          victims.insert(e.process);
        if (e.round == 0) err(path + ".round", "rounds are 1-based");
      }
      if (victims.size() >= spec.n)
        err("workload.crashes.entries",
            "must leave at least one correct process (env.n = " +
                std::to_string(spec.n) + ")");
    }
    if (spec.crashes.kind == CrashGenSpec::Kind::kRandom) {
      if (spec.crashes.count >= spec.n)
        err("workload.crashes.count",
            "must leave at least one correct process (env.n = " +
                std::to_string(spec.n) + ")");
      if (spec.crashes.horizon == 0)
        err("workload.crashes.horizon", "must be >= 1");
    }
  }

  switch (spec.family) {
    case ScenarioFamily::kConsensus: {
      const auto& c = spec.consensus;
      const bool adversarial =
          c.schedule != ConsensusSpecSection::Schedule::kEnv;
      if (c.backend == ConsensusBackend::kCohort) {
        if (c.record_trace || c.validate_env)
          err("consensus.backend",
              "the cohort backend records no trace to certify — set "
              "consensus.record_trace = false and consensus.validate_env = "
              "false");
        if (adversarial)
          err("consensus.schedule",
              "adversarial schedules require the expanded backend");
        if (c.probe != ConsensusSpecSection::Probe::kDecision)
          err("consensus.probe",
              "non-decision probes require the expanded backend");
      }
      const bool bivalent =
          c.schedule == ConsensusSpecSection::Schedule::kBivalentMs ||
          c.schedule == ConsensusSpecSection::Schedule::kBivalentUntilGst;
      if (bivalent && spec.initial.kind != ValueGenSpec::Kind::kBivalent)
        err("workload.initial.kind",
            std::string("schedule \"") +
                enum_name(kScheduleNames, c.schedule) +
                "\" requires kind \"bivalent\"");
      if (bivalent && spec.n < 3)
        err("env.n", "the two-camp schedules need env.n >= 3 (one camp-A "
                     "process and at least two in camp B)");
      if (adversarial && c.algo != ConsensusAlgo::kEs)
        err("consensus.algo",
            std::string("schedule \"") + enum_name(kScheduleNames, c.schedule) +
                "\" drives Algorithm 2 — set algo \"es\"");
      if (spec.initial.kind == ValueGenSpec::Kind::kBivalent &&
          c.schedule != ConsensusSpecSection::Schedule::kBivalentMs &&
          c.schedule != ConsensusSpecSection::Schedule::kBivalentUntilGst)
        err("workload.initial.kind",
            "kind \"bivalent\" pairs with the bivalent schedules");
      if (c.probe != ConsensusSpecSection::Probe::kDecision) {
        if (c.algo != ConsensusAlgo::kEss)
          err("consensus.algo",
              std::string("probe \"") +
                  enum_name(kConsensusProbeNames, c.probe) +
                  "\" observes Algorithm 3 — set algo \"ess\"");
        if (c.horizon == 0) err("consensus.horizon", "must be >= 1");
        if (adversarial)
          err("consensus.schedule",
              "non-decision probes run on the env schedule");
      }
      if (c.probe == ConsensusSpecSection::Probe::kLeaderConvergence &&
          spec.env_kind != EnvKind::kESS)
        err("env.kind",
            "the leader-convergence probe measures stabilization on the "
            "eventual source — only ESS has one; set \"ess\"");
      if (c.gc_counters && c.algo != ConsensusAlgo::kEss)
        err("consensus.gc_counters", "the counter GC extension is ESS-only");
      if (c.validate_env && (!c.record_trace || !c.record_deliveries))
        err("consensus.validate_env",
            "environment certification replays the recorded trace — set "
            "consensus.record_trace = true and consensus.record_deliveries = "
            "true");
      if (c.max_rounds == 0) err("consensus.max_rounds", "must be >= 1");
      if (adversarial && spec.crashes.kind != CrashGenSpec::Kind::kNone)
        err("workload.crashes.kind",
            "adversarial schedules run crash-free (the schedule is the "
            "adversary)");
      break;
    }
    case ScenarioFamily::kOmega: {
      const auto& o = spec.omega;
      if (o.probe == OmegaSpecSection::Probe::kLeaderConvergence) {
        if (o.horizon == 0) err("omega.horizon", "must be >= 1");
        if (spec.env_kind != EnvKind::kESS)
          err("env.kind",
              "the leader-convergence probe measures stabilization on the "
              "eventual source — only ESS has one; set \"ess\"");
      }
      if (o.max_rounds == 0) err("omega.max_rounds", "must be >= 1");
      break;
    }
    case ScenarioFamily::kWeakset: {
      // Any MS-class environment is fine (ES/ESS are strictly stronger
      // than the MS assumption Algorithm 4 needs).
      const auto& w = spec.weakset;
      if (w.script.empty() && w.gen_ops == 0)
        err("weakset.gen_ops", "an empty script needs gen_ops >= 1");
      for (std::size_t i = 0; i < w.script.size(); ++i) {
        const auto& op = w.script[i];
        const std::string path = "weakset.script[" + std::to_string(i) + "]";
        if (op.process >= spec.n)
          err(path + ".process", "process " + std::to_string(op.process) +
                                     " out of range (env.n = " +
                                     std::to_string(spec.n) + ")");
        if (op.round == 0) err(path + ".round", "rounds are 1-based");
      }
      if (w.mode == WeaksetSpecSection::Mode::kRegister && spec.n < 3 &&
          w.gen_ops > 0)
        err("env.n", "the generated register workload reads via process 2 — "
                     "needs env.n >= 3");
      if (w.backend == WeaksetSpecSection::Backend::kCohort && w.validate_env)
        err("weakset.validate_env",
            "backend \"cohort\" records no per-process trace — set false");
      break;
    }
    case ScenarioFamily::kEmulation: {
      const auto& e = spec.emulation;
      if (spec.env_kind != EnvKind::kMS)
        err("env.kind",
            "the emulation family produces an MS environment — set \"ms\"");
      if (spec.stabilization != 0)
        err("env.stabilization", "the emulated environment has no GST — must "
                                 "be 0");
      if (e.rounds == 0) err("emulation.rounds", "must be >= 1");
      if (e.min_add_latency > e.max_add_latency)
        err("emulation.min_add_latency", "must be <= max_add_latency");
      if (!e.skew.empty() && e.skew.size() != spec.n)
        err("emulation.skew", "has " + std::to_string(e.skew.size()) +
                                  " entries but env.n is " +
                                  std::to_string(spec.n));
      for (std::size_t i = 0; i < e.skew.size(); ++i)
        if (e.skew[i] == 0)
          err("emulation.skew[" + std::to_string(i) + "]", "must be >= 1");
      if (!e.adds.empty() && e.inner != EmulationSpecSection::Inner::kWeakset)
        err("emulation.adds", "only valid for inner \"weakset\"");
      for (std::size_t i = 0; i < e.adds.size(); ++i)
        if (e.adds[i].process >= spec.n)
          err("emulation.adds[" + std::to_string(i) + "].process",
              "process " + std::to_string(e.adds[i].process) +
                  " out of range (env.n = " + std::to_string(spec.n) + ")");
      if (e.backend == EmulationSpecSection::Backend::kCohort) {
        if (e.engine != EmulationSpecSection::Engine::kInterned)
          err("emulation.engine",
              "backend \"cohort\" collapses the interned engine — set "
              "\"interned\"");
        if (e.certify)
          err("emulation.certify",
              "backend \"cohort\" records no trace to certify — set false");
      }
      if (!(e.probe_values == kDefaultProbeValues)) {
        if (e.inner != EmulationSpecSection::Inner::kEcho)
          err("emulation.probe_values", "only valid for inner \"echo\"");
        if (e.probe_values.kind == ValueGenSpec::Kind::kBivalent)
          err("emulation.probe_values.kind",
              "\"bivalent\" shapes consensus proposals, not probe seeds");
        if (e.probe_values.kind == ValueGenSpec::Kind::kCycle &&
            e.probe_values.period == 0)
          err("emulation.probe_values.period",
              "must be >= 1 for kind \"cycle\"");
        if (e.probe_values.kind == ValueGenSpec::Kind::kExplicit &&
            e.probe_values.values.size() != spec.n)
          err("emulation.probe_values.values",
              "has " + std::to_string(e.probe_values.values.size()) +
                  " entries but env.n is " + std::to_string(spec.n));
      }
      break;
    }
    case ScenarioFamily::kWeaksetShm: {
      const auto& s = spec.shm;
      if (s.gen_ops == 0) err("shm.gen_ops", "must be >= 1");
      if (s.domain == 0) err("shm.domain", "must be >= 1");
      if (s.construction == ShmSpecSection::Construction::kMwmr &&
          s.writers == 0)
        err("shm.writers", "must be >= 1");
      break;
    }
    case ScenarioFamily::kAbd: {
      if (spec.abd.crash_prefix >= spec.n)
        err("abd.crash_prefix",
            "must leave at least one live process (env.n = " +
                std::to_string(spec.n) + ")");
      break;
    }
  }
  return errs;
}

}  // namespace anon
