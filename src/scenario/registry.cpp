#include "scenario/registry.hpp"

#include <chrono>

#include "common/check.hpp"
#include "scenario/runners.hpp"

namespace anon {

namespace {

std::string render_errors(const std::vector<SpecError>& errors) {
  std::string out = "invalid scenario spec:";
  for (const auto& e : errors) out += "\n  " + e.to_string();
  return out;
}

}  // namespace

ScenarioSpecError::ScenarioSpecError(std::vector<SpecError> errors)
    : std::runtime_error(render_errors(errors)), errors_(std::move(errors)) {}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* reg = [] {
    auto* r = new ScenarioRegistry();
    register_builtin_families(*r);
    register_builtin_presets(*r);
    return r;
  }();
  return *reg;
}

void ScenarioRegistry::register_family(ScenarioFamily family,
                                       ScenarioRunner runner) {
  runners_[family] = std::move(runner);
}

void ScenarioRegistry::register_preset(ScenarioPreset preset) {
  ANON_CHECK_MSG(find_preset(preset.name) == nullptr,
                 "duplicate preset name " + preset.name);
  // Presets must be valid by construction — a broken preset is a bug, not
  // a user error.
  const auto errors = validate_scenario_spec(preset.spec);
  ANON_CHECK_MSG(errors.empty(), "preset " + preset.name + " invalid: " +
                                     (errors.empty() ? std::string()
                                                     : errors[0].to_string()));
  presets_.push_back(std::move(preset));
}

bool ScenarioRegistry::has_family(ScenarioFamily family) const {
  return runners_.count(family) > 0;
}

ScenarioReport ScenarioRegistry::run(const ScenarioSpec& spec,
                                     SweepOptions opt) const {
  auto errors = validate_scenario_spec(spec);
  if (!errors.empty()) throw ScenarioSpecError(std::move(errors));
  const auto it = runners_.find(spec.family);
  if (it == runners_.end())
    throw std::out_of_range(std::string("no runner registered for family ") +
                            to_string(spec.family));

  const auto start = std::chrono::steady_clock::now();
  ScenarioReport rep = spec.transport == TransportKind::kLive
                           ? scenario_runners::run_live_family(spec, opt)
                           : it->second(spec, opt);
  rep.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  rep.name = spec.name;
  rep.family = spec.family;
  rep.seeds = spec.seeds;
  rep.threads = resolve_sweep_threads(opt.threads);

  // Shared rollup over the family's cells.
  rep.rounds = rep.sends = rep.bytes = rep.deliveries = 0;
  for (const auto& c : rep.consensus_cells) {
    rep.rounds += c.report.rounds_executed;
    rep.sends += c.report.sends;
    rep.bytes += c.report.bytes_sent;
    rep.deliveries += c.report.deliveries;
  }
  for (const auto& c : rep.omega_cells) {
    rep.rounds += c.rounds;
    rep.sends += c.sends;
    rep.bytes += c.bytes;
    rep.deliveries += c.deliveries;
  }
  for (const auto& c : rep.weakset_cells) rep.rounds += c.rounds;
  for (const auto& c : rep.emulation_cells) {
    rep.rounds += c.rounds_max;
    rep.deliveries += c.trace_deliveries;
  }
  (void)rep.shm_cells;  // step-counted, not round-counted
  for (const auto& c : rep.abd_cells) {
    rep.sends += c.messages;
    rep.deliveries += c.messages;
  }
  return rep;
}

ScenarioReport ScenarioRegistry::run_preset(const std::string& name,
                                            SweepOptions opt) const {
  const ScenarioPreset* p = find_preset(name);
  if (p == nullptr)
    throw std::out_of_range("unknown preset \"" + name + "\"");
  return run(p->spec, opt);
}

const ScenarioPreset* ScenarioRegistry::find_preset(
    const std::string& name) const {
  for (const auto& p : presets_)
    if (p.name == name) return &p;
  return nullptr;
}

void register_builtin_families(ScenarioRegistry& reg) {
  using namespace scenario_runners;
  reg.register_family(ScenarioFamily::kConsensus, run_consensus_family);
  reg.register_family(ScenarioFamily::kOmega, run_omega_family);
  reg.register_family(ScenarioFamily::kWeakset, run_weakset_family);
  reg.register_family(ScenarioFamily::kEmulation, run_emulation_family);
  reg.register_family(ScenarioFamily::kWeaksetShm, run_shm_family);
  reg.register_family(ScenarioFamily::kAbd, run_abd_family);
}

}  // namespace anon
