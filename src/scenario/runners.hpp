// Internal: the built-in family runner entry points (one translation unit
// per family).  Registered with the registry by register_builtin_families;
// not part of the public surface — go through ScenarioRegistry::run.
#pragma once

#include "core/sweep.hpp"
#include "scenario/report.hpp"
#include "scenario/spec.hpp"

namespace anon::scenario_runners {

ScenarioReport run_consensus_family(const ScenarioSpec& spec,
                                    const SweepOptions& opt);
ScenarioReport run_omega_family(const ScenarioSpec& spec,
                                const SweepOptions& opt);
ScenarioReport run_weakset_family(const ScenarioSpec& spec,
                                  const SweepOptions& opt);
ScenarioReport run_emulation_family(const ScenarioSpec& spec,
                                    const SweepOptions& opt);
ScenarioReport run_shm_family(const ScenarioSpec& spec,
                              const SweepOptions& opt);
ScenarioReport run_abd_family(const ScenarioSpec& spec,
                              const SweepOptions& opt);

// transport "live": dispatched by family from ScenarioRegistry::run —
// boots a loopback LiveCluster per seed instead of a sim engine.
ScenarioReport run_live_family(const ScenarioSpec& spec,
                               const SweepOptions& opt);

}  // namespace anon::scenario_runners
