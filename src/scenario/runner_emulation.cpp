// Emulation family runner: Algorithm 5's MS-from-weak-set emulation
// (Theorem 4), on the interned watermark engine or the retained seed
// engine, with echo probes (E5) or Algorithm 4's weak-set automaton on
// top (the emulation-stack example: a weak-set built from a weak-set).
// Either expanded engine can run cohort-collapsed (backend "cohort",
// emul/ms_emulation_cohort.hpp) with byte-identical cells.
#include <map>

#include "emul/echo.hpp"
#include "emul/ms_emulation.hpp"
#include "emul/ms_emulation_cohort.hpp"
#include "emul/ms_emulation_ref.hpp"
#include "env/validate.hpp"
#include "scenario/runners.hpp"
#include "weakset/ms_weak_set.hpp"

namespace anon::scenario_runners {

namespace {

MsEmulationOptions options_from_spec(const ScenarioSpec& spec,
                                     std::uint64_t seed) {
  MsEmulationOptions opt;
  opt.seed = seed;
  opt.min_add_latency = spec.emulation.min_add_latency;
  opt.max_add_latency = spec.emulation.max_add_latency;
  opt.skew = spec.emulation.skew;
  opt.max_ticks = spec.emulation.max_ticks;
  // Validation rejects faults with engine=ref; the ref engine ignores the
  // member either way.
  opt.faults = EmulFaultModel(spec.faults, seed, spec.n);
  return opt;
}

std::vector<ProcId> all_processes(std::size_t n) {
  std::vector<ProcId> v(n);
  for (ProcId p = 0; p < n; ++p) v[p] = p;
  return v;
}

// The echo-probe seeds: historically 0..n-1, now any ValueGenSpec shape
// (emulation.probe_values) so specs can bound the seed support.
std::vector<std::int64_t> probe_seeds(const ScenarioSpec& spec) {
  std::vector<std::int64_t> seeds;
  for (const Value& v : materialize_values(spec.emulation.probe_values, spec.n))
    seeds.push_back(v.get());
  return seeds;
}

template <template <typename> class Engine>
EmulationCellOutcome run_cell(const ScenarioSpec& spec, std::uint64_t seed) {
  const EmulationSpecSection& e = spec.emulation;
  const std::size_t n = spec.n;
  const bool weakset_inner = e.inner == EmulationSpecSection::Inner::kWeakset;

  std::vector<std::unique_ptr<Automaton<ValueSet>>> autos;
  autos.reserve(n);
  if (weakset_inner) {
    for (std::size_t i = 0; i < n; ++i)
      autos.push_back(std::make_unique<MsWeakSetAutomaton>());
  } else {
    for (std::int64_t s : probe_seeds(spec))
      autos.push_back(std::make_unique<EchoAutomaton>(s));
  }

  Engine<ValueSet> emu(std::move(autos), options_from_spec(spec, seed));

  if (weakset_inner) {
    for (const auto& add : e.adds) {
      auto& w = dynamic_cast<MsWeakSetAutomaton&>(
          const_cast<GirafProcess<ValueSet>&>(emu.process(add.process))
              .automaton());
      w.start_add(Value(add.value));
    }
  }

  EmulationCellOutcome cell;
  cell.ran = emu.run_until_round(e.rounds);
  const Trace& trace = emu.trace();
  cell.trace_deliveries = trace.deliveries().size();
  if (!trace.end_of_rounds().empty())
    cell.ticks = trace.end_of_rounds().back().time;
  cell.rounds_min = kNeverCrashes;
  for (ProcId p = 0; p < n; ++p) {
    const Round r = trace.rounds_completed(p, n);
    cell.rounds_min = std::min(cell.rounds_min, r);
    cell.rounds_max = std::max(cell.rounds_max, r);
    cell.rounds_total += r;
  }
  if (cell.rounds_min == kNeverCrashes) cell.rounds_min = 0;
  cell.ms_certified =
      e.certify && cell.ran && check_environment(trace, n, all_processes(n)).ms_ok;

  if (weakset_inner) {
    cell.weakset_inner = true;
    cell.adds_completed = true;
    cell.all_see = true;
    for (ProcId p = 0; p < n; ++p) {
      const auto& w =
          dynamic_cast<const MsWeakSetAutomaton&>(emu.process(p).automaton());
      if (w.add_blocked()) cell.adds_completed = false;
      for (const auto& add : e.adds)
        if (w.get().count(Value(add.value)) == 0) cell.all_see = false;
    }
  }
  return cell;
}

// Cohort-collapsed cell: the same outcome fields read engine-side, without
// a trace (validation pins certify = false, so ms_certified is false on
// both backends and the cells stay byte-identical).
EmulationCellOutcome run_cohort_cell(const ScenarioSpec& spec,
                                     std::uint64_t seed) {
  const EmulationSpecSection& e = spec.emulation;
  const std::size_t n = spec.n;
  const bool weakset_inner = e.inner == EmulationSpecSection::Inner::kWeakset;

  std::vector<MsEmulationCohort<ValueSet>::InitGroup> groups;
  if (weakset_inner) {
    groups.resize(1);
    groups[0].automaton = std::make_unique<MsWeakSetAutomaton>();
    for (ProcId p = 0; p < n; ++p) groups[0].members.push_back(p);
  } else {
    // Echo probes carrying the same seed are indistinguishable: one class
    // per distinct seed value (members ascend within each group, and the
    // engine orders classes by smallest member).
    std::map<std::int64_t, std::vector<ProcId>> by_seed;
    const std::vector<std::int64_t> seeds = probe_seeds(spec);
    for (ProcId p = 0; p < n; ++p) by_seed[seeds[p]].push_back(p);
    for (auto& [s, members] : by_seed) {
      MsEmulationCohort<ValueSet>::InitGroup g;
      g.automaton = std::make_unique<EchoAutomaton>(s);
      g.members = std::move(members);
      groups.push_back(std::move(g));
    }
  }

  MsEmulationCohortOptions copt;
  copt.base = options_from_spec(spec, seed);
  copt.engine_threads = e.engine_threads;
  MsEmulationCohort<ValueSet> emu(std::move(groups), copt);

  if (weakset_inner) {
    for (const auto& add : e.adds)
      emu.mutate_member(add.process, [&add](Automaton<ValueSet>& a) {
        dynamic_cast<MsWeakSetAutomaton&>(a).start_add(Value(add.value));
      });
  }

  EmulationCellOutcome cell;
  cell.ran = emu.run_until_round(e.rounds);
  cell.trace_deliveries = emu.deliveries();
  cell.ticks = emu.last_eor_tick();
  cell.rounds_min = kNeverCrashes;
  for (ProcId p = 0; p < n; ++p) {
    const Round r = emu.round(p);
    cell.rounds_min = std::min(cell.rounds_min, r);
    cell.rounds_max = std::max(cell.rounds_max, r);
    cell.rounds_total += r;
  }
  if (cell.rounds_min == kNeverCrashes) cell.rounds_min = 0;
  cell.ms_certified = false;  // certify = false enforced by validation

  if (weakset_inner) {
    cell.weakset_inner = true;
    cell.adds_completed = true;
    cell.all_see = true;
    for (ProcId p = 0; p < n; ++p) {
      const auto& w = dynamic_cast<const MsWeakSetAutomaton&>(
          emu.representative(p).automaton());
      if (w.add_blocked()) cell.adds_completed = false;
      for (const auto& add : e.adds)
        if (w.get().count(Value(add.value)) == 0) cell.all_see = false;
    }
  }
  return cell;
}

}  // namespace

ScenarioReport run_emulation_family(const ScenarioSpec& spec,
                                    const SweepOptions& opt) {
  ScenarioReport rep;
  rep.emulation_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> EmulationCellOutcome {
        if (spec.emulation.backend == EmulationSpecSection::Backend::kCohort)
          return run_cohort_cell(spec, spec.seeds[i]);
        return spec.emulation.engine == EmulationSpecSection::Engine::kRef
                   ? run_cell<MsEmulationRef>(spec, spec.seeds[i])
                   : run_cell<MsEmulation>(spec, spec.seeds[i]);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
