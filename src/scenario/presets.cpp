// Named scenario presets reproducing the paper's experiment grids.  Every
// bench family has (a) its tracked trajectory workload (the BENCH_E*.json
// hot path) and (b) a seconds-fast variant the CI smoke job drives through
// `anonsim run`.  Tests pin each preset's canonical spec encoding against
// a golden file, so editing one here is a deliberate, reviewed act.
#include "scenario/registry.hpp"
#include "sim/experiment.hpp"

namespace anon {

namespace {

ScenarioSpec base_spec(const std::string& name, ScenarioFamily family,
                       std::size_t seed_count) {
  ScenarioSpec spec;
  spec.name = name;
  spec.family = family;
  spec.seeds = experiment_seeds(seed_count);
  return spec;
}

// --- consensus ---------------------------------------------------------------

ScenarioSpec e1_spec(const std::string& name, std::size_t n,
                     std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, seed_count);
  spec.env_kind = EnvKind::kES;
  spec.n = n;
  spec.consensus.algo = ConsensusAlgo::kEs;
  return spec;
}

ScenarioSpec e2_spec(const std::string& name, std::size_t n,
                     std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, seed_count);
  spec.env_kind = EnvKind::kESS;
  spec.n = n;
  spec.consensus.algo = ConsensusAlgo::kEss;
  return spec;
}

ScenarioSpec e3_pseudo_spec() {
  ScenarioSpec spec = base_spec("e3-pseudo", ScenarioFamily::kConsensus, 8);
  spec.env_kind = EnvKind::kESS;
  spec.n = 5;
  spec.consensus.algo = ConsensusAlgo::kEss;
  spec.consensus.probe = ConsensusSpecSection::Probe::kLeaderConvergence;
  spec.consensus.horizon = 300;
  spec.consensus.record_trace = false;  // probe runs are trace-free
  return spec;
}

ScenarioSpec e8_spec(const std::string& name, std::size_t n, Round horizon) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, 1);
  spec.seeds = {1};
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.initial.kind = ValueGenSpec::Kind::kBivalent;
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.schedule = ConsensusSpecSection::Schedule::kBivalentMs;
  spec.consensus.max_rounds = horizon;
  spec.consensus.record_deliveries = true;
  spec.consensus.validate_env = true;
  return spec;
}

ScenarioSpec e9_alg3_spec(const std::string& name, std::size_t n,
                          std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, seed_count);
  spec.env_kind = EnvKind::kESS;
  spec.n = n;
  spec.stabilization = 10;
  spec.consensus.algo = ConsensusAlgo::kEss;
  return spec;
}

ScenarioSpec e10_spec(const std::string& name, bool gc, Round horizon) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, 1);
  spec.seeds = {23};
  spec.env_kind = EnvKind::kESS;
  spec.n = 5;
  spec.stabilization = 6;
  spec.consensus.algo = ConsensusAlgo::kEss;
  spec.consensus.probe = ConsensusSpecSection::Probe::kStateGrowth;
  spec.consensus.horizon = horizon;
  spec.consensus.gc_counters = gc;
  spec.consensus.record_trace = false;  // probe runs are trace-free
  return spec;
}

ScenarioSpec e12_spec(const std::string& name, std::size_t n) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, 1);
  spec.seeds = {42};
  spec.env_kind = EnvKind::kES;
  spec.n = n;
  spec.initial.kind = ValueGenSpec::Kind::kCycle;
  spec.initial.period = 8;
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.backend = ConsensusBackend::kCohort;
  spec.consensus.record_trace = false;
  return spec;
}

// E13: sharded intra-run execution on the expanded backend — an E1-shaped
// ES run with mid-flight random crashes (so the per-link audience fallback
// gets exercised, not just the uniform fast path), engine_threads=0 = one
// shard per hardware thread.  The report is byte-identical to the serial
// engine; the preset exists so CI's smoke job and the sharded engine's
// bench A/B have a named shape to drive.
ScenarioSpec e13_spec(const std::string& name, std::size_t n,
                      std::size_t crashes) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, 1);
  spec.seeds = {42};
  spec.env_kind = EnvKind::kES;
  spec.n = n;
  spec.initial.kind = ValueGenSpec::Kind::kCycle;
  spec.initial.period = 8;
  spec.crashes.kind = CrashGenSpec::Kind::kRandom;
  spec.crashes.count = crashes;
  spec.crashes.horizon = 6;
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.engine_threads = 0;
  spec.consensus.record_trace = false;
  return spec;
}

// E14: the fault-injection survival map — an E1-shaped ES run with a seeded
// loss/duplication/reorder/omission/churn plan (env/faults.hpp) layered over
// the env schedule, the no-progress watchdog armed so fault-starved cells
// degrade to a graceful `undecided` instead of spinning to max_rounds.  With
// the planned source exempt (the default) the safety contract holds at any
// intensity and only termination degrades; the -hostile variant clears the
// exemption to map where the guarantees break (bench_e14_faults sweeps the
// full intensity × env grid).
ScenarioSpec e14_spec(const std::string& name, std::size_t n,
                      std::size_t seed_count, double intensity,
                      bool exempt_source) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kConsensus, seed_count);
  spec.env_kind = EnvKind::kES;
  spec.n = n;
  spec.stabilization = 4;
  spec.initial.kind = ValueGenSpec::Kind::kCycle;
  spec.initial.period = 8;
  spec.faults.loss_prob = intensity;
  spec.faults.dup_prob = intensity / 2;
  spec.faults.dup_extra_delay = 2;
  spec.faults.reorder_prob = intensity;
  spec.faults.max_extra_delay = 3;
  spec.faults.omission_senders = {3};
  spec.faults.churn = {{5, 8, 20}};
  spec.faults.exempt_source = exempt_source;
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.max_rounds = 4000;
  spec.consensus.watchdog_rounds = 500;
  spec.consensus.record_trace = false;
  return spec;
}

// --- omega -------------------------------------------------------------------

ScenarioSpec e3_omega_spec() {
  ScenarioSpec spec = base_spec("e3-omega", ScenarioFamily::kOmega, 8);
  spec.env_kind = EnvKind::kESS;
  spec.n = 5;
  spec.omega.probe = OmegaSpecSection::Probe::kLeaderConvergence;
  spec.omega.horizon = 300;
  return spec;
}

ScenarioSpec e9_omega_spec(const std::string& name, std::size_t n,
                           std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kOmega, seed_count);
  spec.env_kind = EnvKind::kESS;
  spec.n = n;
  spec.stabilization = 10;
  return spec;
}

// --- weakset -----------------------------------------------------------------

ScenarioSpec e4_spec(const std::string& name, std::size_t n, std::size_t ops,
                     std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kWeakset, seed_count);
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.weakset.gen_ops = ops;
  spec.weakset.validate_env = false;
  return spec;
}

ScenarioSpec e6_register_spec(const std::string& name, std::size_t n,
                              std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kWeakset, seed_count);
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.weakset.mode = WeaksetSpecSection::Mode::kRegister;
  spec.weakset.gen_ops = 8;
  spec.weakset.extra_rounds = 60;
  spec.weakset.validate_env = false;
  return spec;
}

// --- emulation ---------------------------------------------------------------

ScenarioSpec e5_spec(const std::string& name,
                     EmulationSpecSection::Engine engine, std::size_t n,
                     Round rounds, std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kEmulation, seed_count);
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.emulation.engine = engine;
  spec.emulation.rounds = rounds;
  return spec;
}

// E16: the cohort-collapsed §5 stack.  The weakset shape is e4's workload
// on backend=cohort (validate_env off — the cohort engine records no
// per-process trace) over the all-timely MS parameterization: with
// timely_prob = 1 every link delay is provably 0, EnvDelayModel's
// uniform_delay() kicks in, and CohortNet broadcasts once per CLASS
// instead of probing all Θ(n²) links (an admissible MS run — MS merely
// permits late links, it does not require them).  The emulation shape
// bounds the echo-probe seed support with an 8-value cycle so the class
// count stays O(1) and the engine scales to n ≫ the expanded engine's
// Θ(r·n²) trace budget.  Running either preset with `--backend expanded`
// is the byte-identity A/B: the trace switches are already off in the
// preset, so the reports must match exactly (bench_e16_emulcohort and CI
// both diff them).
ScenarioSpec e16_weakset_spec(const std::string& name, std::size_t n,
                              std::size_t ops) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kWeakset, 1);
  spec.seeds = {42};
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.timely_prob = 1.0;
  spec.weakset.backend = WeaksetSpecSection::Backend::kCohort;
  spec.weakset.gen_ops = ops;
  // The horizon is 3·ops + extra: the serial expanded engine pays Θ(n²)
  // per round, so the A/B's reference runs are budgeted by this knob.
  spec.weakset.extra_rounds = 12;
  spec.weakset.validate_env = false;
  return spec;
}

ScenarioSpec e16_emulation_spec(const std::string& name, std::size_t n,
                                Round rounds) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kEmulation, 1);
  spec.seeds = {42};
  spec.env_kind = EnvKind::kMS;
  spec.n = n;
  spec.emulation.backend = EmulationSpecSection::Backend::kCohort;
  spec.emulation.rounds = rounds;
  spec.emulation.certify = false;
  spec.emulation.probe_values.kind = ValueGenSpec::Kind::kCycle;
  spec.emulation.probe_values.base = 0;
  spec.emulation.probe_values.period = 8;
  return spec;
}

// --- weakset-shm -------------------------------------------------------------

ScenarioSpec e7_swmr_spec(const std::string& name, std::size_t n,
                          std::uint64_t ops, std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kWeaksetShm, seed_count);
  spec.n = n;
  spec.shm.construction = ShmSpecSection::Construction::kSwmr;
  spec.shm.gen_ops = ops;
  return spec;
}

ScenarioSpec e7_mwmr_spec() {
  ScenarioSpec spec = base_spec("e7-mwmr", ScenarioFamily::kWeaksetShm, 10);
  spec.n = 5;
  spec.shm.construction = ShmSpecSection::Construction::kMwmr;
  spec.shm.gen_ops = 100;
  spec.shm.domain = 64;
  return spec;
}

// --- abd ---------------------------------------------------------------------

ScenarioSpec e6_abd_spec(const std::string& name, std::size_t n,
                         std::size_t crash_prefix, std::size_t seed_count) {
  ScenarioSpec spec = base_spec(name, ScenarioFamily::kAbd, seed_count);
  spec.n = n;
  spec.abd.crash_prefix = crash_prefix;
  return spec;
}

// --- E17: the anonsvc live service -------------------------------------------

// E17 runs cells on the real-socket stack (transport "live"): a loopback
// LiveCluster of UDP meshes paced by wall-clock deadlines instead of a
// lockstep simulator, with blocking SvcClients as the workload.  Live
// reports are NOT deterministic (round counts and frame totals are timing
// artifacts), so E17 presets are exercised by the CI loopback smoke job
// and BENCH_E17, never by byte-identity goldens.  The 2 ms period keeps a
// smoke cell in the hundreds of milliseconds; a single seed keeps port
// and thread churn bounded.
ScenarioSpec e17_base(const std::string& name, ScenarioFamily family,
                      std::size_t n) {
  ScenarioSpec spec = base_spec(name, family, 1);
  spec.seeds = {42};
  spec.transport = TransportKind::kLive;
  spec.n = n;
  spec.live.period_ms = 2;
  return spec;
}

ScenarioSpec e17_consensus_spec(const std::string& name, std::size_t n,
                                double loss, std::uint64_t jitter_ms) {
  ScenarioSpec spec = e17_base(name, ScenarioFamily::kConsensus, n);
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.live.loss = loss;
  spec.live.jitter_ms = jitter_ms;
  return spec;
}

ScenarioSpec e17_weakset_spec(const std::string& name, std::size_t n,
                              std::size_t ops, std::size_t clients) {
  ScenarioSpec spec = e17_base(name, ScenarioFamily::kWeakset, n);
  spec.weakset.gen_ops = ops;
  spec.live.clients = clients;
  return spec;
}

ScenarioSpec e17_abd_spec(const std::string& name, std::size_t n) {
  return e17_base(name, ScenarioFamily::kAbd, n);
}

// A watchdog deadline tighter than the earliest possible decision: with
// distinct proposals, round 2's PROPOSED still holds foreign values, so no
// node can have decided when the round-2 watchdog fires — every decision
// probe must come back a clean kTimeout and the run must report
// `undecided` instead of hanging.  This is the live face of the sim's
// graceful-degradation contract (CI asserts `anonsim run --preset
// e17-live-stall --fail-undecided` exits 4).  Loss cannot play the
// stalling villain here: the exempt-source rule keeps every node hearing
// the rotating source, so consensus terminates under any UDP loss rate —
// which is the safety contract, not a gap in it.
ScenarioSpec e17_stall_spec(const std::string& name) {
  ScenarioSpec spec = e17_consensus_spec(name, 5, 0.0, 0);
  spec.live.watchdog_rounds = 2;
  return spec;
}

// --- the quickstart scenario (examples/quickstart.cpp) -----------------------

ScenarioSpec quickstart_spec() {
  ScenarioSpec spec;
  spec.name = "quickstart";
  spec.family = ScenarioFamily::kConsensus;
  spec.seeds = {2026};
  spec.env_kind = EnvKind::kES;
  spec.n = 5;
  spec.stabilization = 10;
  spec.initial.kind = ValueGenSpec::Kind::kExplicit;
  spec.initial.values = {170, 230, 190, 230, 180};
  spec.crashes.kind = CrashGenSpec::Kind::kExplicit;
  spec.crashes.entries = {{3, 6}};
  spec.consensus.algo = ConsensusAlgo::kEs;
  spec.consensus.record_deliveries = true;
  spec.consensus.validate_env = true;
  return spec;
}

}  // namespace

void register_builtin_presets(ScenarioRegistry& reg) {
  auto add = [&](std::string description, ScenarioSpec spec) {
    reg.register_preset({spec.name, std::move(description), std::move(spec)});
  };

  add("E1 tracked workload: Alg 2 (ES) n=64 sweep, GST=0, 10 seeds",
      e1_spec("e1", 64, 10));
  add("E1 smoke cell: Alg 2 (ES) n=8, 3 seeds", e1_spec("e1-fast", 8, 3));
  add("E2 tracked workload: Alg 3 (ESS) n=32 sweep, stab=0, 10 seeds",
      e2_spec("e2", 32, 10));
  add("E2 smoke cell: Alg 3 (ESS) n=8, 3 seeds", e2_spec("e2-fast", 8, 3));
  add("E3 pseudo-leader convergence probe (ESS n=5, horizon 300)",
      e3_pseudo_spec());
  add("E3 Omega accusation-tracker convergence probe (ESS n=5, horizon 300)",
      e3_omega_spec());
  add("E4 tracked workload: Alg 4 weak-set over MS, n=16, 48 op pairs",
      e4_spec("e4", 16, 48, 10));
  add("E4 smoke cell: Alg 4 weak-set over MS, n=4, 12 op pairs",
      e4_spec("e4-fast", 4, 12, 3));
  add("E5 tracked workload: Alg 5 MS emulation (interned engine), n=32, 160 "
      "rounds",
      e5_spec("e5", EmulationSpecSection::Engine::kInterned, 32, 160, 10));
  add("E5 A/B side: the retained seed engine on the e5 workload",
      e5_spec("e5-ref", EmulationSpecSection::Engine::kRef, 32, 160, 10));
  add("E5 smoke cell: interned engine, n=8, 25 rounds",
      e5_spec("e5-fast", EmulationSpecSection::Engine::kInterned, 8, 25, 3));
  add("E6 weak-set register (Prop 1) over MS, n=9, 8 write/read pairs",
      e6_register_spec("e6-register", 9, 10));
  add("E6 register smoke cell: n=5, 3 seeds",
      e6_register_spec("e6-register-fast", 5, 3));
  add("E6 ABD baseline write probe, n=9, majority alive",
      e6_abd_spec("e6-abd", 9, 0, 10));
  add("E6 ABD smoke cell: n=5, 3 seeds", e6_abd_spec("e6-abd-fast", 5, 0, 3));
  add("E7 tracked workload: Prop 2 SWMR construction, n=16, 1000 op pairs",
      e7_swmr_spec("e7-swmr", 16, 1000, 10));
  add("E7 Prop 3 MWMR construction, |domain|=64, 100 op pairs",
      e7_mwmr_spec());
  add("E7 smoke cell: Prop 2, n=4, 100 op pairs",
      e7_swmr_spec("e7-fast", 4, 100, 3));
  add("E8 bivalent two-camp MS schedule vs Alg 2 (n=9, horizon 4000; decides "
      "never, trace MS-certified)",
      e8_spec("e8-bivalent", 9, 4000));
  add("E8 smoke cell: n=5, horizon 500", e8_spec("e8-fast", 5, 500));
  add("E9 tracked workload: Alg 3 (anonymous) in ESS stab=10, n=17",
      e9_alg3_spec("e9-alg3", 17, 10));
  add("E9 A/B side: Omega-with-IDs on the e9 workload",
      e9_omega_spec("e9-omega", 17, 10));
  add("E9 Omega smoke cell: n=5, 3 seeds",
      e9_omega_spec("e9-omega-fast", 5, 3));
  add("E10 tracked workload: ESS no-decide state growth, n=5, 750 rounds",
      e10_spec("e10", false, 750));
  add("E10 counter-GC variant of the e10 workload", e10_spec("e10-gc", true, 750));
  add("E10 smoke cell: 150 rounds", e10_spec("e10-fast", false, 150));
  add("E12 cohort-collapsed E1-shaped run, n=4096 (8 proposal values)",
      e12_spec("e12-cohort", 4096));
  add("E12 smoke cell: n=256", e12_spec("e12-fast", 256));
  {
    // E12 at scale: the cohort engine with intra-run sharding
    // (engine_threads=0 = one shard per hardware thread).  The 8-value
    // proposal cycle keeps the class count tiny, so the run's cost is the
    // O(n) setup/metric passes — the part the shards absorb.
    ScenarioSpec huge = e12_spec("e12-huge", 100'000'000);
    huge.consensus.engine_threads = 0;
    add("E12 at scale: cohort-collapsed failure-free run at n=10^8, "
        "sharded intra-run",
        std::move(huge));
  }
  add("E13 sharded intra-run E1-shaped run, n=4096, 8 mid-flight crashes",
      e13_spec("e13-sharded", 4096, 8));
  add("E13 smoke cell: n=256, 4 crashes", e13_spec("e13-fast", 256, 4));
  add("E14 tracked workload: fault survival map — ES n=32 under seeded "
      "loss/dup/reorder + omission + churn, source exempt, watchdog 500",
      e14_spec("e14-survival", 32, 10, 0.15, true));
  add("E14 smoke cell: n=8, intensity 0.1, 3 seeds",
      e14_spec("e14-fast", 8, 3, 0.1, true));
  add("E14 hostile variant: source exemption OFF — maps where safety breaks",
      e14_spec("e14-hostile", 8, 5, 0.3, false));
  add("E16 cohort-collapsed weak-set: e4's workload on backend=cohort, "
      "n=4096",
      e16_weakset_spec("e16-ws-cohort", 4096, 12));
  add("E16 weakset smoke cell: n=64, cohort backend (run with --backend "
      "expanded for the byte-identity A/B)",
      e16_weakset_spec("e16-ws-fast", 64, 12));
  add("E16 cohort-collapsed MS emulation: 8-value echo-probe cycle, n=4096, "
      "40 rounds",
      e16_emulation_spec("e16-emul-cohort", 4096, 40));
  add("E16 emulation smoke cell: n=64, cohort backend, 25 rounds",
      e16_emulation_spec("e16-emul-fast", 64, 25));
  add("E17 live consensus: 5-node loopback UDP cluster decides over real "
      "sockets (anonsvc stack)",
      e17_consensus_spec("e17-live-consensus", 5, 0.0, 0));
  add("E17 live consensus under fire: loss 0.2 + 1 ms ingress jitter — "
      "safety by source-gated rounds, termination slows only",
      e17_consensus_spec("e17-live-lossy", 5, 0.2, 1));
  add("E17 live weak-set: 8 adds from 4 concurrent clients, history "
      "checked against the weak-set spec",
      e17_weakset_spec("e17-live-weakset", 5, 8, 4));
  add("E17 live ABD register: write/read probe over the loopback quorum",
      e17_abd_spec("e17-live-abd", 5));
  add("E17 stalled cluster: a watchdog tighter than the earliest decision "
      "degrades the run to `undecided` instead of hanging",
      e17_stall_spec("e17-live-stall"));
  add("The quickstart scenario: 5 anonymous processes, one mid-run crash "
      "(examples/quickstart.cpp)",
      quickstart_spec());
}

}  // namespace anon
