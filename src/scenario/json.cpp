#include "scenario/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace anon {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

std::string json_render_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

JsonValue JsonValue::uint(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::kUint;
  v.u_ = u;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.d_ = d;
  return v;
}

JsonValue JsonValue::str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.s_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::is_uint() const {
  if (kind_ == Kind::kUint) return true;
  return kind_ == Kind::kInt && i_ >= 0;
}

bool JsonValue::is_int() const {
  if (kind_ == Kind::kInt) return true;
  return kind_ == Kind::kUint &&
         u_ <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
}

bool JsonValue::as_bool() const {
  ANON_CHECK(kind_ == Kind::kBool);
  return b_;
}

std::uint64_t JsonValue::as_uint() const {
  ANON_CHECK(is_uint());
  return kind_ == Kind::kUint ? u_ : static_cast<std::uint64_t>(i_);
}

std::int64_t JsonValue::as_int() const {
  ANON_CHECK(is_int());
  return kind_ == Kind::kInt ? i_ : static_cast<std::int64_t>(u_);
}

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kUint: return static_cast<double>(u_);
    case Kind::kInt: return static_cast<double>(i_);
    case Kind::kDouble: return d_;
    default: ANON_CHECK_MSG(false, "not a number"); return 0;
  }
}

const std::string& JsonValue::as_string() const {
  ANON_CHECK(kind_ == Kind::kString);
  return s_;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  ANON_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  ANON_CHECK(kind_ == Kind::kObject);
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::entries() const {
  ANON_CHECK(kind_ == Kind::kObject);
  return obj_;
}

JsonValue& JsonValue::push(JsonValue v) {
  ANON_CHECK(kind_ == Kind::kArray);
  arr_.push_back(std::move(v));
  return *this;
}

const std::vector<JsonValue>& JsonValue::items() const {
  ANON_CHECK(kind_ == Kind::kArray);
  return arr_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

void JsonValue::dump_to(std::string& out, int indent, bool pretty) const {
  const std::string pad(pretty ? 2 * (indent + 1) : 0, ' ');
  const std::string close_pad(pretty ? 2 * indent : 0, ' ');
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += b_ ? "true" : "false"; break;
    case Kind::kUint: out += std::to_string(u_); break;
    case Kind::kInt: out += std::to_string(i_); break;
    case Kind::kDouble: out += json_render_double(d_); break;
    case Kind::kString: out += json_quote(s_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_to(out, indent + 1, pretty);
        if (i + 1 < arr_.size()) out += ",";
        out += nl;
      }
      out += close_pad + "]";
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad + json_quote(obj_[i].first) + colon;
        obj_[i].second.dump_to(out, indent + 1, pretty);
        if (i + 1 < obj_.size()) out += ",";
        out += nl;
      }
      out += close_pad + "}";
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0, /*pretty=*/true);
  return out;
}

std::string JsonValue::dump_compact() const {
  std::string out;
  dump_to(out, 0, /*pretty=*/false);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  // Numeric kinds compare by value (1 == 1.0); everything else structurally.
  if (a.is_number() && b.is_number()) {
    if (a.is_uint() && b.is_uint()) return a.as_uint() == b.as_uint();
    if (a.is_int() && b.is_int()) return a.as_int() == b.as_int();
    return a.as_double() == b.as_double();
  }
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.b_ == b.b_;
    case JsonValue::Kind::kString: return a.s_ == b.s_;
    case JsonValue::Kind::kArray: return a.arr_ == b.arr_;
    case JsonValue::Kind::kObject: return a.obj_ == b.obj_;
    default: return false;  // numbers handled above
  }
}

// ---------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult res;
    JsonValue v;
    if (!parse_value(&v)) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after JSON value";
      return fail();
    }
    res.value = std::move(v);
    return res;
  }

 private:
  JsonParseResult fail() const {
    JsonParseResult res;
    res.error = error_.empty() ? "invalid JSON" : error_;
    res.line = 1;
    res.column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++res.line;
        res.column = 1;
      } else {
        ++res.column;
      }
    }
    return res;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect(char c, const char* what) {
    if (eat(c)) return true;
    error_ = std::string("expected '") + c + "' " + what;
    return false;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
      return false;
    }
    if (depth_ > kMaxDepth) {
      error_ = "exceeded maximum nesting depth (" +
               std::to_string(kMaxDepth) + ")";
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = JsonValue::str(std::move(s));
      return true;
    }
    if (c == 't' || c == 'f' || c == 'n') return parse_keyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    error_ = std::string("unexpected character '") + c + "'";
    return false;
  }

  bool parse_keyword(JsonValue* out) {
    auto match = [&](std::string_view kw) {
      if (text_.substr(pos_, kw.size()) == kw) {
        pos_ += kw.size();
        return true;
      }
      return false;
    };
    if (match("true")) {
      *out = JsonValue::boolean(true);
      return true;
    }
    if (match("false")) {
      *out = JsonValue::boolean(false);
      return true;
    }
    if (match("null")) {
      *out = JsonValue();
      return true;
    }
    error_ = "invalid literal";
    return false;
  }

  bool parse_number(JsonValue* out) {
    // RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)? —
    // leading zeros, bare signs and trailing dots are rejected, matching
    // what every conforming tool downstream of a spec file accepts.
    const std::size_t start = pos_;
    const auto digits = [&]() -> std::size_t {
      const std::size_t from = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ - from;
    };
    bool negative = false, fractional = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    const std::size_t int_start = pos_;
    if (digits() == 0) {
      error_ = "invalid number: expected digits";
      return false;
    }
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      error_ = "invalid number: leading zeros are not allowed";
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      fractional = true;
      ++pos_;
      if (digits() == 0) {
        error_ = "invalid number: expected digits after '.'";
        return false;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fractional = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) {
        error_ = "invalid number: expected exponent digits";
        return false;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    if (!fractional) {
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          *out = JsonValue::integer(v);
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          *out = JsonValue::uint(v);
          return true;
        }
      }
      errno = 0;  // out of integer range: fall through to double
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      error_ = "invalid number '" + token + "'";
      return false;
    }
    *out = JsonValue::number(d);
    return true;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      error_ = "expected string";
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              error_ = "truncated \\u escape";
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                error_ = "invalid \\u escape";
                return false;
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported — the
            // spec/report vocabulary is ASCII).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            error_ = std::string("invalid escape '\\") + esc + "'";
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        error_ = "unescaped control character in string";
        return false;
      } else {
        *out += c;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool parse_array(JsonValue* out) {
    if (!expect('[', "to open array")) return false;
    const DepthGuard guard(this);
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (eat(']')) {
      *out = std::move(arr);
      return true;
    }
    for (;;) {
      JsonValue elem;
      if (!parse_value(&elem)) return false;
      arr.push(std::move(elem));
      if (eat(',')) continue;
      if (!expect(']', "to close array")) return false;
      *out = std::move(arr);
      return true;
    }
  }

  bool parse_object(JsonValue* out) {
    if (!expect('{', "to open object")) return false;
    const DepthGuard guard(this);
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (eat('}')) {
      *out = std::move(obj);
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      if (obj.find(key) != nullptr) {
        error_ = "duplicate object key \"" + key + "\"";
        return false;
      }
      if (!expect(':', "after object key")) return false;
      JsonValue value;
      if (!parse_value(&value)) return false;
      obj.set(key, std::move(value));
      if (eat(',')) continue;
      if (!expect('}', "to close object")) return false;
      *out = std::move(obj);
      return true;
    }
  }

  // Containers bound recursion: a hostile/degenerate file errors out
  // instead of overflowing the stack (specs are a handful of levels deep).
  static constexpr std::size_t kMaxDepth = 64;
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) { ++parser->depth_; }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace anon
