// The one run surface: every experiment family registers a
// `run(ScenarioSpec) -> ScenarioReport` runner here, plus named presets
// reproducing the paper's experiment grids.  Benches, examples, tests and
// the `anonsim` CLI all dispatch through this registry — adding scenario
// #13 is one spec plus one registration, not a new bespoke binary.
#pragma once

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "scenario/report.hpp"
#include "scenario/spec.hpp"

namespace anon {

struct ScenarioPreset {
  std::string name;
  std::string description;
  ScenarioSpec spec;
};

// Thrown by ScenarioRegistry::run on an invalid spec; carries the
// field-path diagnostics (the CLI and tests render them — nothing
// CHECK-aborts on user input).
class ScenarioSpecError : public std::runtime_error {
 public:
  explicit ScenarioSpecError(std::vector<SpecError> errors);
  const std::vector<SpecError>& errors() const { return errors_; }

 private:
  std::vector<SpecError> errors_;
};

// A family runner: one independent simulation per seed, sharded across
// worker threads via core/sweep.hpp (cells are index-aligned with the
// seed list; results are identical at any thread count).  The runner
// fills only its family's cell vector; the registry stamps identity,
// rollup metrics and timing.
using ScenarioRunner =
    std::function<ScenarioReport(const ScenarioSpec&, const SweepOptions&)>;

class ScenarioRegistry {
 public:
  // The process-wide registry with every built-in family and preset
  // registered (first use registers them).
  static ScenarioRegistry& instance();

  void register_family(ScenarioFamily family, ScenarioRunner runner);
  void register_preset(ScenarioPreset preset);

  bool has_family(ScenarioFamily family) const;

  // Validate → dispatch → stamp.  Throws ScenarioSpecError on an invalid
  // spec and std::out_of_range on an unregistered family.
  ScenarioReport run(const ScenarioSpec& spec, SweepOptions opt = {}) const;
  ScenarioReport run_preset(const std::string& name, SweepOptions opt = {}) const;

  const ScenarioPreset* find_preset(const std::string& name) const;
  const std::vector<ScenarioPreset>& presets() const { return presets_; }

 private:
  ScenarioRegistry() = default;
  std::map<ScenarioFamily, ScenarioRunner> runners_;
  std::vector<ScenarioPreset> presets_;
};

// Built-in registrations (scenario/runner_*.cpp, scenario/presets.cpp).
void register_builtin_families(ScenarioRegistry& reg);
void register_builtin_presets(ScenarioRegistry& reg);

}  // namespace anon
