// The unified result of running a ScenarioSpec: one tagged report over the
// per-family outcomes with shared rollup metrics, and one JSON emitter.
//
// Everything in the emitted JSON except the "timing" section is a pure
// function of (spec, seeds) — the determinism regression pins that the
// deterministic emission is byte-identical at any thread count.  The
// committed BENCH_E*.json trajectory files are produced by the same
// emitter via `add_report_totals` on a BenchJson (itself a shim over the
// scenario JSON core).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "scenario/json.hpp"
#include "scenario/spec.hpp"
#include "weakset/weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon {

class BenchJson;

// ---- Per-family per-seed outcomes ------------------------------------------

struct ConsensusCellOutcome {
  ConsensusReport report;
  // Extras by probe/schedule; sentinel values mean "not probed".
  int camps_intact = -1;          // bivalent-ms schedule: both camps alive?
  Round convergence_round = 0;    // leader-convergence probe
  std::uint64_t state_bytes = 0;  // state-growth probe: wire size at horizon
  std::uint64_t counter_entries = 0;  // state-growth probe: |C| at horizon
  bool env_checked = false;       // report.env_check is meaningful
};

struct OmegaCellOutcome {
  bool decided = false;
  Round last_decision_round = 0;
  Round rounds = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t sends = 0;
  std::uint64_t bytes = 0;
  Round convergence_round = 0;  // leader-convergence probe only
};

struct WeaksetCellOutcome {
  bool spec_ok = true;
  std::string violation;
  Round rounds = 0;
  // Set mode.
  std::size_t adds = 0;
  bool all_adds_completed = true;
  std::uint64_t add_latency_total = 0;
  // Register mode.
  std::size_t writes_completed = 0;
  std::uint64_t write_latency_total = 0;
  // Environment certification (validate_env).
  bool env_checked = false;
  bool env_ms_ok = false;
  // keep_records only — not part of the JSON emission.
  std::vector<WsOpRecord> set_records;
  std::vector<RegOpRecord> reg_records;
};

struct EmulationCellOutcome {
  bool ran = false;          // reached the target round within max_ticks
  bool ms_certified = false;
  std::uint64_t trace_deliveries = 0;
  Round rounds_min = 0;      // completed rounds over processes
  Round rounds_max = 0;
  std::uint64_t rounds_total = 0;  // summed over processes
  std::uint64_t ticks = 0;   // virtual time at the last end-of-round
  // Weakset inner only (weakset_inner gates the JSON keys, so a failing
  // run and a passing run of the same spec share one schema).
  bool weakset_inner = false;
  bool adds_completed = false;
  bool all_see = false;      // every process's get contains every added value
};

struct ShmCellOutcome {
  bool spec_ok = true;
  std::string violation;
  std::uint64_t records = 0;
};

struct AbdCellOutcome {
  bool completed = false;    // the probed write finished (majority alive)
  std::uint64_t messages = 0;
  std::uint64_t end_time = 0;
};

// ---- The report -------------------------------------------------------------

struct ScenarioReport {
  std::string name;
  ScenarioFamily family = ScenarioFamily::kConsensus;
  std::vector<std::uint64_t> seeds;

  // Shared rollup over all cells (transport totals where the family has
  // them; zero otherwise).
  std::uint64_t rounds = 0;
  std::uint64_t sends = 0;
  std::uint64_t bytes = 0;
  std::uint64_t deliveries = 0;

  // Timing (excluded from the deterministic emission).
  double wall_s = 0;
  std::size_t threads = 1;

  // Exactly the family's vector is populated, one cell per seed.
  std::vector<ConsensusCellOutcome> consensus_cells;
  std::vector<OmegaCellOutcome> omega_cells;
  std::vector<WeaksetCellOutcome> weakset_cells;
  std::vector<EmulationCellOutcome> emulation_cells;
  std::vector<ShmCellOutcome> shm_cells;
  std::vector<AbdCellOutcome> abd_cells;

  std::size_t cells() const { return seeds.size(); }

  // include_timing=false drops the "timing" section: the remainder is a
  // pure function of the spec and is what the determinism tests compare.
  JsonValue to_json(bool include_timing = true) const;
  std::string to_json_string(bool include_timing = true) const;

  // One-line human summary ("consensus e1: 10/10 decided, ...").
  std::string summary() const;
};

// Adds the report's shared rollup (cells/rounds/sends/bytes/deliveries) to
// a bench trajectory object — the bridge between the driver and the
// committed BENCH_E*.json files.
void add_report_totals(BenchJson& j, const ScenarioReport& rep);

// Sorted unique key paths ("outcome.cells[].decided", "timing.wall_s", …)
// of the report's JSON — the schema the CI smoke job diffs against its
// golden.  Array indices collapse to "[]" so the schema is cell-count
// independent.
std::vector<std::string> report_schema(const JsonValue& report_json);

}  // namespace anon
