// Declarative scenario descriptions — the one experiment surface.
//
// A `ScenarioSpec` names an experiment family (consensus | omega |
// emulation | weakset | weakset-shm | abd), the environment it runs in,
// the workload (initial values / scripts / crash plan), the execution
// backend, the seed list (multi-seed specs shard across threads via
// core/sweep.hpp) and the round/tick limits.  Specs round-trip through
// JSON canonically — encode(decode(encode(s))) is byte-identical — and
// validation returns field-path diagnostics instead of aborting, so a
// malformed spec file is a first-class user error.
//
// Families and the constructions they drive:
//   consensus    Algorithms 2/3 (ES/ESS), expanded or cohort backend,
//                env-generated or adversarial (bivalent/hostile) schedules,
//                decision / leader-convergence / state-growth probes.
//   omega        The Ω-with-IDs baseline consensus (cost-of-anonymity).
//   weakset      Algorithm 4's weak-set over MS, raw set or the Prop-1
//                register transformation.
//   emulation    Algorithm 5's MS-from-weak-set emulation (Theorem 4).
//   weakset-shm  The §5 register constructions (Prop 2 SWMR / Prop 3 MWMR).
//   abd          The ABD majority-register baseline (quorums + IDs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "env/environment.hpp"
#include "scenario/json.hpp"

namespace anon {

enum class ScenarioFamily {
  kConsensus,
  kOmega,
  kWeakset,
  kEmulation,
  kWeaksetShm,
  kAbd,
};

const char* to_string(ScenarioFamily f);
// All families, in registry/order of the paper's constructions.
const std::vector<ScenarioFamily>& all_scenario_families();

// ---- Transport --------------------------------------------------------------

// Which backend executes the spec: the deterministic simulators (default),
// or the anonsvc live service (src/svc/) — real loopback sockets, one
// event-loop thread per node, wall-clock GIRAF rounds.  Live runs emit the
// same tagged ScenarioReport; wall-clock effects live only in fields the
// deterministic emission already excludes or that sim reports gate off.
enum class TransportKind { kSim, kLive };

// True for the families the live service hosts (consensus / weakset / abd
// — the three objects a LiveNode serves).
bool family_live_supported(ScenarioFamily f);

// Live-transport knobs.  Only encoded for transport "live" (and then
// defaults-elided), so every existing sim spec is byte-identical.
struct LiveSpecSection {
  enum class Socket { kUdp, kTcp };  // datagrams vs framed loopback streams
  Socket socket = Socket::kUdp;
  std::uint64_t period_ms = 4;       // pacemaker round cadence
  std::uint64_t jitter_ms = 0;       // ingress JitterPolicy max extra delay
  double loss = 0.0;                 // ingress loss (round-source exempt)
  std::uint64_t op_timeout_ms = 10000;  // per client operation
  std::size_t clients = 4;           // concurrent clients (weakset / abd)
  Round watchdog_rounds = 0;  // decision waits degrade to undecided; 0 = off

  friend bool operator==(const LiveSpecSection&,
                         const LiveSpecSection&) = default;
};

// ---- Workload building blocks ---------------------------------------------

// How the per-process initial/proposed values are produced.
struct ValueGenSpec {
  enum class Kind {
    kDistinct,   // base, base+1, …  (the experiments' default)
    kIdentical,  // n copies of base (fully symmetric anonymity)
    kCycle,      // base + (i % period): bounded proposal domain (E12)
    kBivalent,   // BivalentMsModel::initial_values(n) two-camp split (E8)
    kExplicit,   // the `values` list verbatim (must have size env.n)
  };
  Kind kind = Kind::kDistinct;
  std::int64_t base = 100;
  std::size_t period = 0;                // kCycle only
  std::vector<std::int64_t> values;      // kExplicit only

  friend bool operator==(const ValueGenSpec&, const ValueGenSpec&) = default;
};

// Materializes a ValueGenSpec into n per-process values (consensus
// proposals, emulation probe seeds, …).
std::vector<Value> materialize_values(const ValueGenSpec& g, std::size_t n);

struct CrashEntrySpec {
  std::size_t process = 0;
  Round round = 0;

  friend bool operator==(const CrashEntrySpec&, const CrashEntrySpec&) = default;
};

// The crash plan: none, an explicit (process, round) list, or f random
// victims at hash-chosen rounds (runner::random_crashes, seeded from the
// cell seed plus `seed_offset`).
struct CrashGenSpec {
  enum class Kind { kNone, kExplicit, kRandom };
  Kind kind = Kind::kNone;
  std::vector<CrashEntrySpec> entries;  // kExplicit
  std::size_t count = 0;                // kRandom: f victims
  Round horizon = 0;                    // kRandom: crash rounds in [1, horizon]
  std::uint64_t seed_offset = 7;        // kRandom: crash RNG = cell seed + offset

  friend bool operator==(const CrashGenSpec&, const CrashGenSpec&) = default;
};

// ---- Per-family sections ---------------------------------------------------

struct ConsensusSpecSection {
  // The network schedule: the env-generated model (EnvDelayModel), or one
  // of the adversarial models behind E1.b / E8.
  enum class Schedule { kEnv, kBivalentMs, kBivalentUntilGst, kHostileMs };
  // What the run observes: the decision (default), the round the pseudo
  // leader set converges (E3; ESS, no decisions), or a no-decide run to a
  // fixed horizon (E10's state-growth workload).
  enum class Probe { kDecision, kLeaderConvergence, kStateGrowth };

  ConsensusAlgo algo = ConsensusAlgo::kEs;
  ConsensusBackend backend = ConsensusBackend::kExpanded;
  // Worker-pool participants for either backend's intra-run waves
  // (LockstepOptions::engine_threads / CohortOptions::engine_threads):
  // 1 = the serial reference engine, 0 = one per hardware thread, N = the
  // N-shard parallel engine.  Results are byte-identical at any value on
  // both backends — the cohort engine shards its class list the same way
  // the expanded engine shards processes.
  std::size_t engine_threads = 1;
  Schedule schedule = Schedule::kEnv;
  Probe probe = Probe::kDecision;
  Round horizon = 0;           // probes != decision: rounds to execute
  bool gc_counters = false;    // ESS state-growth extension
  Round max_rounds = 60000;
  bool record_trace = true;
  bool record_deliveries = false;
  bool validate_env = false;
  // No-progress watchdog (ConsensusConfig::watchdog_rounds): stop a run
  // that reaches no new decision for this many rounds and report the cell
  // `undecided`.  0 = off (the default keeps existing specs unchanged).
  Round watchdog_rounds = 0;

  friend bool operator==(const ConsensusSpecSection&,
                         const ConsensusSpecSection&) = default;
};

struct OmegaSpecSection {
  enum class Probe { kDecision, kLeaderConvergence };
  Probe probe = Probe::kDecision;  // convergence probe disables decisions
  Round silence_threshold = 2;
  Round horizon = 300;         // convergence probe: observation window
  Round max_rounds = 60000;

  friend bool operator==(const OmegaSpecSection&, const OmegaSpecSection&) = default;
};

struct WeaksetOpSpec {
  Round round = 0;
  std::size_t process = 0;
  bool is_mutation = false;  // add (set mode) / write (register mode)
  std::int64_t value = 0;    // mutations only

  friend bool operator==(const WeaksetOpSpec&, const WeaksetOpSpec&) = default;
};

struct WeaksetSpecSection {
  enum class Mode { kSet, kRegister };  // raw Alg-4 set vs the Prop-1 register
  // Per-index LockstepNet vs the cohort-collapsed engine.  Cohort records
  // no per-process trace, so it requires validate_env = false; reports are
  // otherwise byte-identical (tests/weakset_cohort_test.cpp).
  enum class Backend { kExpanded, kCohort };
  Mode mode = Mode::kSet;
  Backend backend = Backend::kExpanded;
  // Worker-pool participants for either backend's intra-run waves
  // (1 = serial reference, 0 = one per hardware thread); byte-identical
  // results at any value.
  std::size_t engine_threads = 1;
  std::vector<WeaksetOpSpec> script;  // explicit; empty ⇒ generated
  // Generated workload (`gen_ops` mutation/observation pairs, the E4/E6
  // bench shapes: adds at rounds 2+3i cycling processes, gets one round
  // later / writes at 2+5i alternating two writers, reads by process 2).
  std::size_t gen_ops = 0;
  Round extra_rounds = 50;   // rounds past the last scripted op
  bool validate_env = true;
  bool keep_records = false;  // retain the op records on the in-memory report

  friend bool operator==(const WeaksetSpecSection&, const WeaksetSpecSection&) = default;
};

struct EmulationAddSpec {
  std::size_t process = 0;
  std::int64_t value = 0;

  friend bool operator==(const EmulationAddSpec&, const EmulationAddSpec&) = default;
};

struct EmulationSpecSection {
  enum class Inner { kEcho, kWeakset };     // the automaton run on emulated rounds
  enum class Engine { kInterned, kRef };    // watermark engine vs seed engine
  // Per-index execution vs the cohort-collapsed engine
  // (emul/ms_emulation_cohort.hpp).  Cohort pairs with the interned
  // engine, records no trace (so requires certify = false), and emits
  // byte-identical cells otherwise (tests/emulation_cohort_test.cpp).
  enum class Backend { kExpanded, kCohort };
  Inner inner = Inner::kEcho;
  Engine engine = Engine::kInterned;
  Backend backend = Backend::kExpanded;
  std::size_t engine_threads = 1;           // cohort: worker participants
  Round rounds = 40;                        // emulated rounds to reach
  std::uint64_t min_add_latency = 1;
  std::uint64_t max_add_latency = 6;
  std::vector<std::uint64_t> skew;          // per-process tick multiplier
  std::uint64_t max_ticks = 1000000;
  std::vector<EmulationAddSpec> adds;       // kWeakset inner: injected adds
  // Echo-probe seed shape (inner "echo" only).  The default — distinct,
  // base 0 — is exactly the historical seeds 0..n-1; "identical" or
  // "cycle" bound the seed support so the cohort backend can collapse
  // probe classes.
  ValueGenSpec probe_values{ValueGenSpec::Kind::kDistinct, 0, 0, {}};
  // Certify the emitted trace against the MS environment definition
  // (check_environment).  Requires a trace: expanded/ref backends only.
  bool certify = true;

  friend bool operator==(const EmulationSpecSection&,
                         const EmulationSpecSection&) = default;
};

struct ShmSpecSection {
  enum class Construction { kSwmr, kMwmr };  // Prop 2 (IDs) vs Prop 3 (domain)
  Construction construction = Construction::kSwmr;
  std::uint64_t gen_ops = 100;   // generated add/get pairs
  std::uint64_t domain = 13;     // value domain (|domain| registers for MWMR)
  std::size_t writers = 5;       // MWMR generator: processes cycling the script

  friend bool operator==(const ShmSpecSection&, const ShmSpecSection&) = default;
};

struct AbdSpecSection {
  std::size_t crash_prefix = 0;  // crash processes n-1 … n-crash_prefix up front
  std::int64_t write_value = 1;  // the probed write

  friend bool operator==(const AbdSpecSection&, const AbdSpecSection&) = default;
};

// ---- The spec ---------------------------------------------------------------

struct ScenarioSpec {
  std::string name;  // optional label (presets set it)
  ScenarioFamily family = ScenarioFamily::kConsensus;
  // One independent simulation per seed; multi-seed specs shard across
  // worker threads (results are index-aligned and thread-count invariant).
  std::vector<std::uint64_t> seeds = {1};

  // Execution backend: the simulators (default) or the anonsvc live stack.
  // Live seeds run sequentially — each one owns real sockets and threads.
  TransportKind transport = TransportKind::kSim;
  LiveSpecSection live;  // transport "live" only

  // Environment (EnvParams minus the seed, which comes from `seeds`).
  EnvKind env_kind = EnvKind::kES;
  std::size_t n = 3;
  Round stabilization = 0;
  Round max_delay = 3;
  double timely_prob = 0.25;
  // Fault plan layered over the environment (env/faults.hpp); inactive by
  // default and only encoded when active, so existing specs are unchanged.
  FaultParams faults;

  // Workload.
  ValueGenSpec initial;   // consensus / omega proposals
  CrashGenSpec crashes;   // consensus / weakset

  // Exactly one per-family section is meaningful (and encoded).
  ConsensusSpecSection consensus;
  OmegaSpecSection omega;
  WeaksetSpecSection weakset;
  EmulationSpecSection emulation;
  ShmSpecSection shm;
  AbdSpecSection abd;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  // Materialization helpers (validated specs only).
  EnvParams env_params(std::uint64_t seed) const;
  std::vector<Value> initial_values() const;
  CrashPlan crash_plan(std::uint64_t seed) const;
};

// ---- JSON encode / decode / validation -------------------------------------

// One diagnostic: a dotted field path ("consensus.backend",
// "workload.initial.values") plus a human message.
struct SpecError {
  std::string path;
  std::string message;

  std::string to_string() const { return path + ": " + message; }

  friend bool operator==(const SpecError&, const SpecError&) = default;
};

struct SpecDecodeResult {
  std::optional<ScenarioSpec> spec;  // set iff errors is empty
  std::vector<SpecError> errors;

  bool ok() const { return errors.empty(); }
  std::string errors_to_string() const;
};

// Canonical encoding: every field in a fixed order, only the active
// family's section.  encode(decode(encode(s))) is byte-identical.
JsonValue encode_scenario_spec(const ScenarioSpec& spec);
std::string scenario_spec_to_json(const ScenarioSpec& spec);  // dump() + '\n'

// Decode + validate.  Unknown keys, wrong types, out-of-family sections and
// inconsistent values all produce SpecErrors (never CHECK aborts).
SpecDecodeResult decode_scenario_spec(const JsonValue& doc);
SpecDecodeResult parse_scenario_spec(std::string_view json_text);

// Validation only (already-built specs — benches construct specs in code).
std::vector<SpecError> validate_scenario_spec(const ScenarioSpec& spec);

}  // namespace anon
