// Weakset family runner: Algorithm 4's weak-set over an MS-class
// environment (E4), raw or wrapped in the Proposition-1 register
// transformation (E6.a, the anonymous-registry example).
#include "scenario/runners.hpp"
#include "weakset/ms_weak_set.hpp"
#include "weakset/ws_register.hpp"

namespace anon::scenario_runners {

namespace {

// The E4 bench workload shape: `ops` add/get pairs cycling processes.
std::vector<WsScriptOp> generated_set_script(std::size_t n, std::size_t ops) {
  std::vector<WsScriptOp> script;
  script.reserve(2 * ops);
  for (std::size_t i = 0; i < ops; ++i) {
    script.push_back({static_cast<Round>(2 + 3 * i), i % n, true,
                      Value(100 + static_cast<std::int64_t>(i))});
    script.push_back(
        {static_cast<Round>(3 + 3 * i), (i + 1) % n, false, Value()});
  }
  return script;
}

// The E6.a bench workload shape: writes alternating two writers, reads by
// process 2.
std::vector<RegScriptOp> generated_reg_script(std::size_t ops) {
  std::vector<RegScriptOp> script;
  script.reserve(2 * ops);
  for (std::size_t i = 0; i < ops; ++i) {
    script.push_back({static_cast<Round>(2 + 5 * i), i % 2, true,
                      Value(10 + static_cast<std::int64_t>(i))});
    script.push_back({static_cast<Round>(4 + 5 * i), 2, false, Value()});
  }
  return script;
}

// The harness-side options for either backend: the section's knobs plus the
// spec-level fault plan (validated to be weakset-compatible by
// validate_scenario_spec).
WsRunOptions run_options(const ScenarioSpec& spec) {
  const WeaksetSpecSection& w = spec.weakset;
  WsRunOptions opt;
  opt.extra_rounds = w.extra_rounds;
  opt.validate_env = w.validate_env;
  opt.backend = w.backend == WeaksetSpecSection::Backend::kCohort
                    ? WsBackend::kCohort
                    : WsBackend::kExpanded;
  opt.engine_threads = w.engine_threads;
  opt.faults = spec.faults;
  return opt;
}

WeaksetCellOutcome run_set_cell(const ScenarioSpec& spec, std::uint64_t seed) {
  const WeaksetSpecSection& w = spec.weakset;
  std::vector<WsScriptOp> script;
  if (!w.script.empty()) {
    script.reserve(w.script.size());
    for (const auto& op : w.script)
      script.push_back({op.round, op.process, op.is_mutation, Value(op.value)});
  } else {
    script = generated_set_script(spec.n, w.gen_ops);
  }
  auto run = run_ms_weak_set(spec.env_params(seed), spec.crash_plan(seed),
                             std::move(script), run_options(spec));

  WeaksetCellOutcome cell;
  auto check = check_weak_set_spec(run.records);
  cell.spec_ok = check.ok;
  cell.violation = check.violation;
  cell.rounds = run.rounds_executed;
  cell.adds = run.adds;
  cell.all_adds_completed = run.all_adds_completed;
  cell.add_latency_total = run.add_latency_rounds_total;
  cell.env_checked = w.validate_env;
  cell.env_ms_ok = run.env_check.ms_ok;
  if (w.keep_records) cell.set_records = std::move(run.records);
  return cell;
}

WeaksetCellOutcome run_register_cell(const ScenarioSpec& spec,
                                     std::uint64_t seed) {
  const WeaksetSpecSection& w = spec.weakset;
  std::vector<RegScriptOp> script;
  if (!w.script.empty()) {
    script.reserve(w.script.size());
    for (const auto& op : w.script)
      script.push_back({op.round, op.process, op.is_mutation, Value(op.value)});
  } else {
    script = generated_reg_script(w.gen_ops);
  }
  auto run = run_register_over_ms(spec.env_params(seed), spec.crash_plan(seed),
                                  std::move(script), run_options(spec));

  WeaksetCellOutcome cell;
  cell.spec_ok = run.check.ok;
  cell.violation = run.check.violation;
  cell.rounds = run.rounds_executed;
  cell.writes_completed = run.writes_completed;
  cell.write_latency_total = run.write_latency_rounds_total;
  cell.env_checked = w.validate_env;
  cell.env_ms_ok = run.env_check.ms_ok;
  if (w.keep_records) cell.reg_records = std::move(run.records);
  return cell;
}

}  // namespace

ScenarioReport run_weakset_family(const ScenarioSpec& spec,
                                  const SweepOptions& opt) {
  ScenarioReport rep;
  rep.weakset_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> WeaksetCellOutcome {
        return spec.weakset.mode == WeaksetSpecSection::Mode::kRegister
                   ? run_register_cell(spec, spec.seeds[i])
                   : run_set_cell(spec, spec.seeds[i]);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
