#include "scenario/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/bench_json.hpp"

namespace anon {

namespace {

JsonValue consensus_cell_json(const ConsensusCellOutcome& c,
                              std::uint64_t seed) {
  const ConsensusReport& r = c.report;
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("decided", JsonValue::boolean(r.all_correct_decided));
  v.set("agreement", JsonValue::boolean(r.agreement));
  v.set("validity", JsonValue::boolean(r.validity));
  if (r.value.has_value())
    v.set("value", JsonValue::str(r.value->to_string()));
  v.set("first_decision_round", JsonValue::uint(r.first_decision_round));
  v.set("last_decision_round", JsonValue::uint(r.last_decision_round));
  v.set("rounds", JsonValue::uint(r.rounds_executed));
  v.set("hit_round_limit", JsonValue::boolean(r.hit_round_limit));
  // Conditional (like cohorts_max below): fault-free cells keep their
  // pre-fault-layer report bytes, so every existing golden is unchanged.
  if (r.undecided) v.set("outcome", JsonValue::str("undecided"));
  v.set("deliveries", JsonValue::uint(r.deliveries));
  v.set("sends", JsonValue::uint(r.sends));
  v.set("bytes", JsonValue::uint(r.bytes_sent));
  if (r.fault_drops > 0 || r.fault_dups > 0) {
    v.set("fault_drops", JsonValue::uint(r.fault_drops));
    v.set("fault_dups", JsonValue::uint(r.fault_dups));
  }
  if (r.inbox_overflow_dropped > 0)
    v.set("inbox_overflow_dropped", JsonValue::uint(r.inbox_overflow_dropped));
  if (r.cohorts_max > 0) {
    v.set("cohorts_max", JsonValue::uint(r.cohorts_max));
    v.set("cohorts_final", JsonValue::uint(r.cohorts_final));
  }
  if (c.env_checked) v.set("env", JsonValue::str(r.env_check.to_string()));
  if (c.camps_intact >= 0)
    v.set("camps_intact", JsonValue::boolean(c.camps_intact != 0));
  if (c.convergence_round > 0)
    v.set("convergence_round", JsonValue::uint(c.convergence_round));
  if (c.state_bytes > 0) {
    v.set("state_bytes", JsonValue::uint(c.state_bytes));
    v.set("counter_entries", JsonValue::uint(c.counter_entries));
  }
  return v;
}

JsonValue omega_cell_json(const OmegaCellOutcome& c, std::uint64_t seed) {
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("decided", JsonValue::boolean(c.decided));
  v.set("last_decision_round", JsonValue::uint(c.last_decision_round));
  v.set("rounds", JsonValue::uint(c.rounds));
  v.set("deliveries", JsonValue::uint(c.deliveries));
  v.set("sends", JsonValue::uint(c.sends));
  v.set("bytes", JsonValue::uint(c.bytes));
  if (c.convergence_round > 0)
    v.set("convergence_round", JsonValue::uint(c.convergence_round));
  return v;
}

JsonValue weakset_cell_json(const WeaksetCellOutcome& c, std::uint64_t seed) {
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("spec_ok", JsonValue::boolean(c.spec_ok));
  if (!c.spec_ok) v.set("violation", JsonValue::str(c.violation));
  v.set("rounds", JsonValue::uint(c.rounds));
  v.set("adds", JsonValue::uint(c.adds));
  v.set("all_adds_completed", JsonValue::boolean(c.all_adds_completed));
  v.set("add_latency_total", JsonValue::uint(c.add_latency_total));
  v.set("writes_completed", JsonValue::uint(c.writes_completed));
  v.set("write_latency_total", JsonValue::uint(c.write_latency_total));
  if (c.env_checked) v.set("env_ms_ok", JsonValue::boolean(c.env_ms_ok));
  return v;
}

JsonValue emulation_cell_json(const EmulationCellOutcome& c,
                              std::uint64_t seed) {
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("ran", JsonValue::boolean(c.ran));
  v.set("ms_certified", JsonValue::boolean(c.ms_certified));
  v.set("trace_deliveries", JsonValue::uint(c.trace_deliveries));
  v.set("rounds_min", JsonValue::uint(c.rounds_min));
  v.set("rounds_max", JsonValue::uint(c.rounds_max));
  v.set("rounds_total", JsonValue::uint(c.rounds_total));
  v.set("ticks", JsonValue::uint(c.ticks));
  if (c.weakset_inner) {
    v.set("adds_completed", JsonValue::boolean(c.adds_completed));
    v.set("all_see", JsonValue::boolean(c.all_see));
  }
  return v;
}

JsonValue shm_cell_json(const ShmCellOutcome& c, std::uint64_t seed) {
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("spec_ok", JsonValue::boolean(c.spec_ok));
  if (!c.spec_ok) v.set("violation", JsonValue::str(c.violation));
  v.set("records", JsonValue::uint(c.records));
  return v;
}

JsonValue abd_cell_json(const AbdCellOutcome& c, std::uint64_t seed) {
  JsonValue v = JsonValue::object();
  v.set("seed", JsonValue::uint(seed));
  v.set("completed", JsonValue::boolean(c.completed));
  v.set("messages", JsonValue::uint(c.messages));
  v.set("end_time", JsonValue::uint(c.end_time));
  return v;
}

// %.6g pre-rounding keeps the trajectory files short; the parsed-back value
// round-trips exactly, so re-emission stays byte-stable.
double round6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::strtod(buf, nullptr);
}

}  // namespace

JsonValue ScenarioReport::to_json(bool include_timing) const {
  JsonValue doc = JsonValue::object();
  JsonValue scenario = JsonValue::object();
  scenario.set("name", JsonValue::str(name));
  scenario.set("family", JsonValue::str(to_string(family)));
  doc.set("scenario", std::move(scenario));
  doc.set("cells", JsonValue::uint(cells()));

  JsonValue metrics = JsonValue::object();
  metrics.set("rounds", JsonValue::uint(rounds));
  metrics.set("sends", JsonValue::uint(sends));
  metrics.set("bytes", JsonValue::uint(bytes));
  metrics.set("deliveries", JsonValue::uint(deliveries));
  doc.set("metrics", std::move(metrics));

  JsonValue cell_arr = JsonValue::array();
  auto seed_at = [&](std::size_t i) {
    return i < seeds.size() ? seeds[i] : 0;
  };
  switch (family) {
    case ScenarioFamily::kConsensus:
      for (std::size_t i = 0; i < consensus_cells.size(); ++i)
        cell_arr.push(consensus_cell_json(consensus_cells[i], seed_at(i)));
      break;
    case ScenarioFamily::kOmega:
      for (std::size_t i = 0; i < omega_cells.size(); ++i)
        cell_arr.push(omega_cell_json(omega_cells[i], seed_at(i)));
      break;
    case ScenarioFamily::kWeakset:
      for (std::size_t i = 0; i < weakset_cells.size(); ++i)
        cell_arr.push(weakset_cell_json(weakset_cells[i], seed_at(i)));
      break;
    case ScenarioFamily::kEmulation:
      for (std::size_t i = 0; i < emulation_cells.size(); ++i)
        cell_arr.push(emulation_cell_json(emulation_cells[i], seed_at(i)));
      break;
    case ScenarioFamily::kWeaksetShm:
      for (std::size_t i = 0; i < shm_cells.size(); ++i)
        cell_arr.push(shm_cell_json(shm_cells[i], seed_at(i)));
      break;
    case ScenarioFamily::kAbd:
      for (std::size_t i = 0; i < abd_cells.size(); ++i)
        cell_arr.push(abd_cell_json(abd_cells[i], seed_at(i)));
      break;
  }
  JsonValue outcome = JsonValue::object();
  outcome.set("kind", JsonValue::str(to_string(family)));
  outcome.set("cells", std::move(cell_arr));
  doc.set("outcome", std::move(outcome));

  if (include_timing) {
    JsonValue timing = JsonValue::object();
    timing.set("wall_s", JsonValue::number(round6(wall_s)));
    timing.set("threads", JsonValue::uint(threads));
    doc.set("timing", std::move(timing));
  }
  return doc;
}

std::string ScenarioReport::to_json_string(bool include_timing) const {
  return to_json(include_timing).dump() + "\n";
}

std::string ScenarioReport::summary() const {
  std::ostringstream os;
  os << to_string(family) << (name.empty() ? "" : " " + name) << ": ";
  const std::size_t k = cells();
  switch (family) {
    case ScenarioFamily::kConsensus: {
      std::size_t decided = 0, agree = 0, undecided = 0;
      Round last = 0;
      for (const auto& c : consensus_cells) {
        decided += c.report.all_correct_decided ? 1 : 0;
        agree += c.report.agreement ? 1 : 0;
        undecided += c.report.undecided ? 1 : 0;
        last = std::max(last, c.report.last_decision_round);
      }
      os << decided << "/" << k << " decided, " << agree << "/" << k
         << " agreement, last decision round " << last;
      if (undecided > 0) os << ", " << undecided << " undecided (watchdog)";
      break;
    }
    case ScenarioFamily::kOmega: {
      std::size_t decided = 0;
      for (const auto& c : omega_cells) decided += c.decided ? 1 : 0;
      os << decided << "/" << k << " decided";
      break;
    }
    case ScenarioFamily::kWeakset: {
      std::size_t ok = 0;
      for (const auto& c : weakset_cells) ok += c.spec_ok ? 1 : 0;
      os << ok << "/" << k << " spec-clean";
      break;
    }
    case ScenarioFamily::kEmulation: {
      std::size_t cert = 0;
      for (const auto& c : emulation_cells) cert += c.ms_certified ? 1 : 0;
      os << cert << "/" << k << " MS-certified";
      break;
    }
    case ScenarioFamily::kWeaksetShm: {
      std::size_t ok = 0;
      for (const auto& c : shm_cells) ok += c.spec_ok ? 1 : 0;
      os << ok << "/" << k << " spec-clean";
      break;
    }
    case ScenarioFamily::kAbd: {
      std::size_t done = 0;
      for (const auto& c : abd_cells) done += c.completed ? 1 : 0;
      os << done << "/" << k << " writes completed";
      break;
    }
  }
  os << ", " << deliveries << " deliveries, wall " << round6(wall_s) << "s";
  return os.str();
}

void add_report_totals(BenchJson& j, const ScenarioReport& rep) {
  j.set("cells", static_cast<std::uint64_t>(rep.cells()));
  j.set("rounds", rep.rounds);
  j.set("sends", rep.sends);
  j.set("bytes", rep.bytes);
  j.set("deliveries", rep.deliveries);
}

namespace {

void collect_schema(const JsonValue& v, const std::string& path,
                    std::vector<std::string>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kObject:
      for (const auto& [k, child] : v.entries())
        collect_schema(child, path.empty() ? k : path + "." + k, out);
      break;
    case JsonValue::Kind::kArray:
      for (const auto& child : v.items()) collect_schema(child, path + "[]", out);
      break;
    default:
      out.push_back(path);
      break;
  }
}

}  // namespace

std::vector<std::string> report_schema(const JsonValue& report_json) {
  std::vector<std::string> out;
  collect_schema(report_json, "", out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace anon
