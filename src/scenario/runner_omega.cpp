// Omega family runner: the Ω-with-IDs consensus baseline (the
// cost-of-anonymity comparison, E9) and its accusation-tracker
// leader-convergence probe (E3).
#include <memory>

#include "algo/runner.hpp"
#include "baseline/omega_consensus.hpp"
#include "env/generate.hpp"
#include "scenario/runners.hpp"

namespace anon::scenario_runners {

namespace {

std::vector<std::unique_ptr<Automaton<OmegaMessage>>> omega_automatons(
    const ScenarioSpec& spec, bool decide) {
  const std::vector<Value> initial = spec.initial_values();
  std::vector<std::unique_ptr<Automaton<OmegaMessage>>> autos;
  autos.reserve(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i)
    autos.push_back(std::make_unique<OmegaConsensus>(
        initial[i], i, spec.omega.silence_threshold, decide));
  return autos;
}

OmegaCellOutcome run_decision_cell(const ScenarioSpec& spec,
                                   std::uint64_t seed) {
  const CrashPlan crashes = spec.crash_plan(seed);
  EnvDelayModel delays(spec.env_params(seed), crashes);
  LockstepOptions opt;
  opt.seed = seed;
  opt.max_rounds = spec.omega.max_rounds;
  opt.record_trace = false;
  LockstepNet<OmegaMessage> net(omega_automatons(spec, /*decide=*/true),
                                delays, crashes, opt);
  const RunResult run = net.run_until_all_correct_decided();

  OmegaCellOutcome cell;
  cell.decided = net.all_correct_decided();
  for (ProcId p = 0; p < net.n(); ++p)
    cell.last_decision_round = std::max(cell.last_decision_round,
                                        net.decision_round(p));
  cell.rounds = run.rounds;
  cell.deliveries = net.deliveries();
  cell.sends = net.sends();
  cell.bytes = net.bytes_sent();
  return cell;
}

// E3's Ω convergence probe: rounds until everyone's leader estimate equals
// the eventual source and stays so.
OmegaCellOutcome run_convergence_cell(const ScenarioSpec& spec,
                                      std::uint64_t seed) {
  const CrashPlan crashes = spec.crash_plan(seed);
  EnvDelayModel delays(spec.env_params(seed), crashes);
  const ProcId src = delays.stable_source();
  LockstepOptions opt;
  opt.seed = seed;
  opt.max_rounds = spec.omega.horizon;
  opt.record_trace = false;
  LockstepNet<OmegaMessage> net(omega_automatons(spec, /*decide=*/false),
                                delays, crashes, opt);
  Round last_bad = 0;
  const RunResult run = net.run([&](const LockstepNet<OmegaMessage>& nn) {
    for (ProcId p = 0; p < nn.n(); ++p) {
      const auto& a =
          dynamic_cast<const OmegaConsensus&>(nn.process(p).automaton());
      if (a.current_leader() != src) last_bad = nn.round();
    }
    return false;
  });

  OmegaCellOutcome cell;
  cell.rounds = run.rounds;
  cell.deliveries = net.deliveries();
  cell.sends = net.sends();
  cell.bytes = net.bytes_sent();
  cell.convergence_round = last_bad + 1;
  return cell;
}

}  // namespace

ScenarioReport run_omega_family(const ScenarioSpec& spec,
                                const SweepOptions& opt) {
  ScenarioReport rep;
  rep.omega_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> OmegaCellOutcome {
        return spec.omega.probe == OmegaSpecSection::Probe::kLeaderConvergence
                   ? run_convergence_cell(spec, spec.seeds[i])
                   : run_decision_cell(spec, spec.seeds[i]);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
