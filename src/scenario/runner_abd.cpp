// ABD family runner: the majority-quorum register baseline (IDs, async,
// needs f < n/2) — the other side of E6's synchrony-for-quorums trade.
// The probed operation is one write; with a crashed majority it never
// completes (the event queue drains), which is exactly ABD's liveness
// limit and is reported rather than treated as an error.
#include "baseline/abd.hpp"
#include "baseline/async_net.hpp"
#include "scenario/runners.hpp"

namespace anon::scenario_runners {

namespace {

AbdCellOutcome run_cell(const ScenarioSpec& spec, std::uint64_t seed) {
  AsyncNet net(spec.n, seed);
  // env.faults rides the message layer here too (loss/dup/reorder/omission
  // keyed on the message sequence — async, so no rounds and no churn); a
  // crashed-majority OR fault-starved write just never completes, which is
  // reported, not an error.
  if (spec.faults.active()) net.set_faults(spec.faults, seed);
  for (std::size_t i = 0; i < spec.abd.crash_prefix; ++i)
    net.crash(spec.n - 1 - i);
  AbdRegister reg(&net);
  AbdCellOutcome cell;
  reg.write(0, Value(spec.abd.write_value), [&](std::uint64_t end) {
    cell.completed = true;
    cell.end_time = end;
  });
  net.events().run();
  cell.messages = reg.messages();
  return cell;
}

}  // namespace

ScenarioReport run_abd_family(const ScenarioSpec& spec,
                              const SweepOptions& opt) {
  ScenarioReport rep;
  rep.abd_cells = parallel_sweep(
      spec.seeds.size(),
      [&](std::size_t i) -> AbdCellOutcome {
        return run_cell(spec, spec.seeds[i]);
      },
      opt);
  return rep;
}

}  // namespace anon::scenario_runners
